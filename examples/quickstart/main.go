// Quickstart: start a three-server Yesquel cluster in-process, create a
// table, and run a few queries through the embedded query processor.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"yesquel/internal/cluster"
	"yesquel/internal/core"
	"yesquel/internal/kv/kvserver"
)

func main() {
	ctx := context.Background()

	// Start three storage servers (in production these run as
	// `yesqueld` processes on separate machines).
	cl, err := cluster.Start(3, kvserver.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Println("storage servers:", cl.Addrs)

	// Connect a Yesquel client: SQL query processing happens here, in
	// this process; only storage operations go to the servers.
	yc, err := core.Connect(cl.Addrs, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer yc.Close()
	db := yc.Session()

	for _, q := range []string{
		"CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT, karma INTEGER)",
		"CREATE INDEX users_karma ON users (karma)",
	} {
		if _, err := db.Exec(ctx, q); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}

	names := []string{"ada", "grace", "barbara", "katherine", "hedy"}
	for i, n := range names {
		if _, err := db.Exec(ctx, "INSERT INTO users VALUES (?, ?, ?)",
			core.Int(int64(i+1)), core.Text(n), core.Int(int64(10*(i+1)))); err != nil {
			log.Fatal(err)
		}
	}

	rows, err := db.Query(ctx, "SELECT name, karma FROM users WHERE karma >= ? ORDER BY karma DESC", core.Int(30))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("users with karma >= 30:")
	for rows.Next() {
		r := rows.Row()
		fmt.Printf("  %-10s %d\n", r[0].S, r[1].I)
	}

	// Transactions: transfer karma atomically.
	for _, q := range []string{
		"BEGIN",
		"UPDATE users SET karma = karma - 15 WHERE name = 'hedy'",
		"UPDATE users SET karma = karma + 15 WHERE name = 'ada'",
		"COMMIT",
	} {
		if _, err := db.Exec(ctx, q); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}
	rows, err = db.Query(ctx, "SELECT sum(karma) FROM users")
	if err != nil {
		log.Fatal(err)
	}
	rows.Next()
	fmt.Println("total karma (conserved):", rows.Row()[0].I)
}
