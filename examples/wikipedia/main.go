// Wikipedia: the paper's flagship SQL application — a wiki served by
// many Web servers, each linking Yesquel's embedded query processor,
// all sharing the distributed storage engine.
//
// The example loads a small wiki (pages, revisions, links with a
// zipfian popularity), then serves a read-heavy mix (90% page renders,
// 10% edits) from several concurrent workers and prints throughput.
//
//	go run ./examples/wikipedia
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"yesquel/internal/cluster"
	"yesquel/internal/core"
	"yesquel/internal/dbt"
	"yesquel/internal/kv/kvserver"
	"yesquel/internal/wiki"
)

const (
	servers  = 4
	pages    = 200
	links    = 4
	workers  = 8
	duration = 3 * time.Second
)

func main() {
	ctx := context.Background()
	cl, err := cluster.Start(servers, kvserver.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	yc, err := core.Connect(cl.Addrs, core.Options{TreeConfig: dbt.Config{}})
	if err != nil {
		log.Fatal(err)
	}
	defer yc.Close()

	fmt.Printf("loading %d pages with %d links each...\n", pages, links)
	loadStart := time.Now()
	if err := wiki.Load(ctx, wiki.DBExecutor{DB: yc.Session()}, pages, links); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %v\n", time.Since(loadStart).Round(time.Millisecond))

	fmt.Printf("serving with %d web workers for %v...\n", workers, duration)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	ws := make([]*wiki.Worker, workers)
	for i := 0; i < workers; i++ {
		ws[i] = wiki.NewWorker(wiki.DBExecutor{DB: yc.Session()}, pages, 0.1, int64(i+1))
		wg.Add(1)
		go func(w *wiki.Worker) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if err := w.Step(ctx); err != nil {
					log.Printf("step: %v", err)
				}
			}
		}(ws[i])
	}
	wg.Wait()

	var reads, edits, errors uint64
	for _, w := range ws {
		reads += w.Reads
		edits += w.Edits
		errors += w.Errors
	}
	total := reads + edits
	fmt.Printf("page renders: %d\n", reads)
	fmt.Printf("edits:        %d\n", edits)
	fmt.Printf("errors:       %d\n", errors)
	fmt.Printf("throughput:   %.0f ops/s\n", float64(total)/duration.Seconds())

	// Show the hottest page's revision history grew.
	rows, err := yc.Session().Query(ctx,
		"SELECT count(*) FROM revision WHERE page_id = 0")
	if err != nil {
		log.Fatal(err)
	}
	rows.Next()
	fmt.Printf("revisions of hottest page: %d\n", rows.Row()[0].I)
}
