// kvdirect: using Yesquel below SQL — the distributed balanced tree and
// the transactional key-value store directly. This is the "NOSQL mode"
// the architecture enables: the same storage servers, the same
// transactions, no query processing at all.
//
// The example maintains a leaderboard (score-ordered DBT) and a profile
// store, updated atomically in one distributed transaction, then scans
// the top of the leaderboard.
//
//	go run ./examples/kvdirect
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math/rand"

	"yesquel/internal/cluster"
	"yesquel/internal/core"
	"yesquel/internal/dbt"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvserver"
)

const (
	leaderboardTree = 1
	profileTree     = 2
	players         = 100
)

// scoreKey encodes (score DESC, player) order-preservingly: higher
// scores sort first.
func scoreKey(score uint32, player string) []byte {
	k := make([]byte, 4, 4+len(player))
	binary.BigEndian.PutUint32(k, ^score) // invert: descending
	return append(k, player...)
}

func decodeScoreKey(k []byte) (uint32, string) {
	return ^binary.BigEndian.Uint32(k[:4]), string(k[4:])
}

func main() {
	ctx := context.Background()
	cl, err := cluster.Start(3, kvserver.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	yc, err := core.Connect(cl.Addrs, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer yc.Close()

	board, err := yc.CreateTree(ctx, leaderboardTree, dbt.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer board.Close()
	profiles, err := yc.CreateTree(ctx, profileTree, dbt.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer profiles.Close()

	kvc := yc.KV()
	rng := rand.New(rand.NewSource(1))

	// Insert players: profile + leaderboard entry in one transaction,
	// atomic across whichever servers the two tree nodes live on.
	var firstPlayerScore uint32
	for p := 0; p < players; p++ {
		name := fmt.Sprintf("player-%03d", p)
		score := uint32(rng.Intn(10000))
		if p == 0 {
			firstPlayerScore = score
		}
		for {
			tx := kvc.Begin()
			if err := profiles.Put(ctx, tx, []byte(name), []byte(fmt.Sprintf("score=%d", score))); err != nil {
				log.Fatal(err)
			}
			if err := board.Put(ctx, tx, scoreKey(score, name), nil); err != nil {
				log.Fatal(err)
			}
			if err := tx.Commit(ctx); err == nil {
				break
			} else if !errors.Is(err, kv.ErrConflict) {
				log.Fatal(err)
			}
		}
	}

	// A score update moves the leaderboard entry: delete old, insert
	// new, update profile — still one transaction.
	updateScore := func(name string, old, new uint32) error {
		for {
			tx := kvc.Begin()
			if err := board.Delete(ctx, tx, scoreKey(old, name)); err != nil && !errors.Is(err, dbt.ErrKeyNotFound) {
				tx.Abort()
				return err
			}
			if err := board.Put(ctx, tx, scoreKey(new, name), nil); err != nil {
				tx.Abort()
				return err
			}
			if err := profiles.Put(ctx, tx, []byte(name), []byte(fmt.Sprintf("score=%d", new))); err != nil {
				tx.Abort()
				return err
			}
			err := tx.Commit(ctx)
			if err == nil {
				return nil
			}
			if !errors.Is(err, kv.ErrConflict) {
				return err
			}
		}
	}
	if err := updateScore("player-000", firstPlayerScore, 99999); err != nil {
		log.Fatal(err)
	}

	// Top 5: a short ordered scan — the reason the storage engine is a
	// tree and not a hash table.
	tx := kvc.Begin()
	defer tx.Abort()
	top, err := board.Scan(ctx, tx, nil, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top of the leaderboard:")
	for i, cell := range top {
		score, name := decodeScoreKey(cell.Key)
		fmt.Printf("  %d. %-12s %5d\n", i+1, name, score)
	}

	// Structural sanity, courtesy of the tree checker.
	res, err := board.Check(ctx, tx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leaderboard tree: height=%d nodes=%d leaves=%d entries=%d\n",
		res.Height, res.Nodes, res.Leaves, res.Cells)
}
