// Webstore: the shopping-cart scenario from the paper's motivation —
// dynamic Web content backed by SQL, with many concurrent application
// servers sharing one storage engine.
//
// Eight "application servers" (goroutines, each with its own embedded
// query processor session) serve customers browsing a catalog, filling
// carts, and checking out. Checkout is a multi-statement transaction:
// it must atomically empty the cart, decrement stock, and record the
// order; snapshot isolation plus first-committer-wins turns oversells
// into retries.
//
//	go run ./examples/webstore
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"yesquel/internal/cluster"
	"yesquel/internal/core"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvserver"
	"yesquel/internal/sql"
)

const (
	products   = 50
	appServers = 8
	customers  = 100 // sessions per app server
	stockEach  = 40
)

func main() {
	ctx := context.Background()
	cl, err := cluster.Start(4, kvserver.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	yc, err := core.Connect(cl.Addrs, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer yc.Close()

	setup := yc.Session()
	for _, q := range []string{
		`CREATE TABLE product (id INTEGER PRIMARY KEY, name TEXT, price REAL, stock INTEGER)`,
		`CREATE TABLE cart (id INTEGER PRIMARY KEY, customer INTEGER, product INTEGER, qty INTEGER)`,
		`CREATE INDEX cart_customer ON cart (customer)`,
		`CREATE TABLE orders (id INTEGER PRIMARY KEY, customer INTEGER, total REAL)`,
	} {
		if _, err := setup.Exec(ctx, q); err != nil {
			log.Fatal(err)
		}
	}
	for p := 1; p <= products; p++ {
		if _, err := setup.Exec(ctx, "INSERT INTO product VALUES (?, ?, ?, ?)",
			core.Int(int64(p)), core.Text(fmt.Sprintf("widget-%02d", p)),
			core.Float(float64(p)+0.99), core.Int(stockEach)); err != nil {
			log.Fatal(err)
		}
	}

	var orders, retries, soldOut atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < appServers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			db := yc.Session() // one embedded query processor per app server
			rng := rand.New(rand.NewSource(int64(s)))
			for c := 0; c < customers; c++ {
				customer := int64(s*customers + c)
				if err := shop(ctx, db, rng, customer, &retries, &soldOut); err != nil {
					log.Printf("customer %d: %v", customer, err)
					continue
				}
				orders.Add(1)
			}
		}(s)
	}
	wg.Wait()

	// Verify conservation: units sold + units in stock == initial stock.
	rows, err := setup.Query(ctx, "SELECT sum(stock) FROM product")
	if err != nil {
		log.Fatal(err)
	}
	rows.Next()
	remaining := rows.Row()[0].I
	rows, err = setup.Query(ctx, "SELECT count(*), sum(total) FROM orders")
	if err != nil {
		log.Fatal(err)
	}
	rows.Next()
	nOrders, revenue := rows.Row()[0].I, rows.Row()[1]

	fmt.Printf("app servers:        %d\n", appServers)
	fmt.Printf("customers served:   %d\n", orders.Load())
	fmt.Printf("orders recorded:    %d\n", nOrders)
	fmt.Printf("checkout retries:   %d\n", retries.Load())
	fmt.Printf("sold-out rejections:%d\n", soldOut.Load())
	fmt.Printf("stock remaining:    %d of %d\n", remaining, products*stockEach)
	fmt.Printf("revenue:            %.2f\n", revenue.F)
	if remaining < 0 {
		log.Fatal("OVERSOLD: negative stock — isolation broken")
	}
}

// shop fills a cart with 1-3 items and checks out.
func shop(ctx context.Context, db *sql.DB, rng *rand.Rand, customer int64, retries, soldOut *atomic.Int64) error {
	items := 1 + rng.Intn(3)
	for i := 0; i < items; i++ {
		cartID := customer*10 + int64(i)
		if _, err := db.Exec(ctx, "INSERT INTO cart VALUES (?, ?, ?, ?)",
			core.Int(cartID), core.Int(customer),
			core.Int(int64(1+rng.Intn(products))), core.Int(int64(1+rng.Intn(2)))); err != nil {
			return err
		}
	}
	// Checkout transaction with conflict retries.
	for attempt := 0; ; attempt++ {
		err := checkout(ctx, db, customer)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, errSoldOut):
			soldOut.Add(1)
			// Abandon the cart.
			_, derr := db.Exec(ctx, "DELETE FROM cart WHERE customer = ?", core.Int(customer))
			return derr
		case errors.Is(err, kv.ErrConflict) && attempt < 50:
			retries.Add(1)
			continue
		default:
			return err
		}
	}
}

var errSoldOut = errors.New("sold out")

func checkout(ctx context.Context, db *sql.DB, customer int64) error {
	if _, err := db.Exec(ctx, "BEGIN"); err != nil {
		return err
	}
	abort := func(e error) error {
		db.Exec(ctx, "ROLLBACK")
		return e
	}
	items, err := db.Query(ctx, "SELECT product, qty FROM cart WHERE customer = ?", core.Int(customer))
	if err != nil {
		return abort(err)
	}
	total := 0.0
	for _, it := range items.All() {
		prod, qty := it[0].I, it[1].I
		rows, err := db.Query(ctx, "SELECT price, stock FROM product WHERE id = ?", core.Int(prod))
		if err != nil {
			return abort(err)
		}
		if rows.Len() != 1 {
			return abort(fmt.Errorf("product %d missing", prod))
		}
		price, stock := rows.All()[0][0].F, rows.All()[0][1].I
		if stock < qty {
			return abort(errSoldOut)
		}
		if _, err := db.Exec(ctx, "UPDATE product SET stock = stock - ? WHERE id = ?",
			core.Int(qty), core.Int(prod)); err != nil {
			return abort(err)
		}
		total += price * float64(qty)
	}
	if _, err := db.Exec(ctx, "INSERT INTO orders VALUES (?, ?, ?)",
		core.Int(customer), core.Int(customer), core.Float(total)); err != nil {
		return abort(err)
	}
	if _, err := db.Exec(ctx, "DELETE FROM cart WHERE customer = ?", core.Int(customer)); err != nil {
		return abort(err)
	}
	_, err = db.Exec(ctx, "COMMIT")
	return err
}
