// Package yesquel_test wires the paper-reproduction experiments E1–E8
// (internal/bench, DESIGN.md experiment index) into `go test -bench`.
// Each benchmark runs the corresponding experiment once per b.N with
// scaled-down parameters and reports ops/sec for its headline metric;
// the full parameter sweeps with paper-style tables come from
// `go run ./cmd/ybench`.
package yesquel_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"yesquel/internal/bench"
	"yesquel/internal/cluster"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
)

// benchParams keeps -bench wall time reasonable while preserving each
// experiment's shape. ybench uses bigger defaults.
func benchParams() bench.Params {
	return bench.Params{
		Duration: 500 * time.Millisecond,
		Records:  2000,
		Workers:  8,
		Servers:  []int{1, 2, 4},
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	var exp bench.Experiment
	for _, e := range bench.All() {
		if e.ID == id {
			exp = e
		}
	}
	if exp.Run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		table, err := exp.Run(ctx, benchParams())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			fmt.Println(table.Render())
		}
	}
}

// BenchmarkE1_DBTMicro regenerates E1 (YDBT operation microbenchmark:
// per-op latency on one server).
func BenchmarkE1_DBTMicro(b *testing.B) { runExperiment(b, "e1") }

// BenchmarkE2_DBTScalability regenerates E2 (aggregate DBT throughput
// as servers are added).
func BenchmarkE2_DBTScalability(b *testing.B) { runExperiment(b, "e2") }

// BenchmarkE3_YCSB regenerates E3 (YCSB A–F, Yesquel vs the NOSQL
// comparator).
func BenchmarkE3_YCSB(b *testing.B) { runExperiment(b, "e3") }

// BenchmarkE4_Wikipedia regenerates E4 (Wikipedia application, Yesquel
// vs the centralized SQL comparator).
func BenchmarkE4_Wikipedia(b *testing.B) { runExperiment(b, "e4") }

// BenchmarkE5_Ablation regenerates E5 (YDBT optimizations disabled one
// at a time).
func BenchmarkE5_Ablation(b *testing.B) { runExperiment(b, "e5") }

// BenchmarkE6_CommitLatency regenerates E6 (commit latency vs number of
// 2PC participants).
func BenchmarkE6_CommitLatency(b *testing.B) { runExperiment(b, "e6") }

// BenchmarkE7_Scans regenerates E7 (scan throughput vs the naive DBT).
func BenchmarkE7_Scans(b *testing.B) { runExperiment(b, "e7") }

// BenchmarkE8_SQLMicro regenerates E8 (per-statement SQL latency).
func BenchmarkE8_SQLMicro(b *testing.B) { runExperiment(b, "e8") }

// BenchmarkE9_Replication regenerates E9 (replicated vs plain writes).
func BenchmarkE9_Replication(b *testing.B) { runExperiment(b, "e9") }

// BenchmarkFailover measures availability through a failover: the wall
// time from killing a replicated slot's primary until the first write
// acknowledged under the new epoch (kill → forced promotion → client
// redirect → acked commit). Reported as ms/failover; this is the first
// trajectory point for the availability metric. Each iteration
// re-forms the pair (Restart) outside the timed section.
func BenchmarkFailover(b *testing.B) {
	cl, err := cluster.StartReplicated(1, 2, kvserver.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	c, err := cl.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	// Seed one write so the pair has history.
	tx := c.Begin()
	tx.Put(c.NewOID(0), kv.NewPlain([]byte("seed")))
	if err := tx.Commit(ctx); err != nil {
		b.Fatal(err)
	}

	var total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if err := cl.KillPrimary(0); err != nil {
			b.Fatal(err)
		}
		// First acked write on the new epoch: retry until the redirect
		// lands it (uncertain one-shots are abandoned, as an application
		// would).
		for {
			tx := c.Begin()
			tx.Put(c.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("fo-%d", i))))
			err := tx.Commit(ctx)
			if err == nil {
				break
			}
			if !errors.Is(err, kv.ErrUncertain) {
				b.Fatalf("write after failover: %v", err)
			}
		}
		total += time.Since(start)
		b.StopTimer()
		if err := cl.Restart(0); err != nil {
			b.Fatal(err)
		}
		// Heartbeat ping outside the timed section: an idle client
		// learns the re-formed membership from the ack piggyback (an
		// active client would learn it from its next redirect), so the
		// next iteration's kill finds the client knowing both members.
		if err := c.Ping(ctx, 0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "ms/failover")
	}
}

// BenchmarkResync measures backup catch-up: the wall time from
// attaching a fresh, empty backup until it holds the primary's full
// state, under two log policies. "full-replay" keeps the unbounded
// replication log, so the backup replays every record since the
// beginning of time; "snapshot" truncates the log at checkpoints, so
// the backup installs a state-transfer snapshot plus the retained
// tail. With MVCC history (most records superseding earlier versions)
// the snapshot path ships the current state, not the write history —
// the gap widens with the primary's age.
func BenchmarkResync(b *testing.B) {
	const history = 2000
	run := func(b *testing.B, cfg kvserver.Config) {
		cfg.ReplicationLog = true
		primary := kvserver.NewServer(kvserver.NewStore(nil, cfg))
		if err := primary.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		go primary.Serve()
		defer primary.Close()
		c, err := kvclient.Open([]string{primary.Addr()})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		ctx := context.Background()
		// A hot-key history: most records are superseded versions, the
		// shape that separates state size from history length.
		oids := make([]kv.OID, 64)
		for i := range oids {
			oids[i] = c.NewOID(0)
		}
		for i := 0; i < history; i++ {
			tx := c.Begin()
			tx.Put(oids[i%len(oids)], kv.NewPlain([]byte(fmt.Sprintf("v%d", i))))
			if err := tx.Commit(ctx); err != nil {
				b.Fatal(err)
			}
		}
		want := primary.Store().StateDigest()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			backup := kvserver.NewServer(kvserver.NewStore(nil, kvserver.Config{ReplicationLog: true}))
			if err := backup.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			go backup.Serve()
			backup.Store().StartResync()
			watermark, err := primary.AttachBackup(backup.Addr())
			if err != nil {
				b.Fatal(err)
			}
			if err := backup.SyncFrom(primary.Addr(), watermark); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if got := backup.Store().StateDigest(); got != want {
				b.Fatalf("resynced digest %x != primary %x", got, want)
			}
			primary.SetMirror("")
			backup.Close()
			b.StartTimer()
		}
	}
	b.Run("full-replay", func(b *testing.B) { run(b, kvserver.Config{}) })
	b.Run("snapshot", func(b *testing.B) {
		run(b, kvserver.Config{ReplicationLogMaxRecords: 128})
	})
}
