// Package yesquel_test wires the paper-reproduction experiments E1–E8
// (internal/bench, DESIGN.md experiment index) into `go test -bench`.
// Each benchmark runs the corresponding experiment once per b.N with
// scaled-down parameters and reports ops/sec for its headline metric;
// the full parameter sweeps with paper-style tables come from
// `go run ./cmd/ybench`.
package yesquel_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"yesquel/internal/bench"
	"yesquel/internal/cluster"
	"yesquel/internal/dbt"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
	"yesquel/internal/ycsb"
)

// benchParams keeps -bench wall time reasonable while preserving each
// experiment's shape. ybench uses bigger defaults.
func benchParams() bench.Params {
	return bench.Params{
		Duration: 500 * time.Millisecond,
		Records:  2000,
		Workers:  8,
		Servers:  []int{1, 2, 4},
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	var exp bench.Experiment
	for _, e := range bench.All() {
		if e.ID == id {
			exp = e
		}
	}
	if exp.Run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		table, err := exp.Run(ctx, benchParams())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			fmt.Println(table.Render())
		}
	}
}

// BenchmarkE1_DBTMicro regenerates E1 (YDBT operation microbenchmark:
// per-op latency on one server).
func BenchmarkE1_DBTMicro(b *testing.B) { runExperiment(b, "e1") }

// BenchmarkE2_DBTScalability regenerates E2 (aggregate DBT throughput
// as servers are added).
func BenchmarkE2_DBTScalability(b *testing.B) { runExperiment(b, "e2") }

// BenchmarkE3_YCSB regenerates E3 (YCSB A–F, Yesquel vs the NOSQL
// comparator).
func BenchmarkE3_YCSB(b *testing.B) { runExperiment(b, "e3") }

// BenchmarkE4_Wikipedia regenerates E4 (Wikipedia application, Yesquel
// vs the centralized SQL comparator).
func BenchmarkE4_Wikipedia(b *testing.B) { runExperiment(b, "e4") }

// BenchmarkE5_Ablation regenerates E5 (YDBT optimizations disabled one
// at a time).
func BenchmarkE5_Ablation(b *testing.B) { runExperiment(b, "e5") }

// BenchmarkE6_CommitLatency regenerates E6 (commit latency vs number of
// 2PC participants).
func BenchmarkE6_CommitLatency(b *testing.B) { runExperiment(b, "e6") }

// BenchmarkE7_Scans regenerates E7 (scan throughput vs the naive DBT).
func BenchmarkE7_Scans(b *testing.B) { runExperiment(b, "e7") }

// BenchmarkE8_SQLMicro regenerates E8 (per-statement SQL latency).
func BenchmarkE8_SQLMicro(b *testing.B) { runExperiment(b, "e8") }

// BenchmarkE9_Replication regenerates E9 (replicated vs plain writes).
func BenchmarkE9_Replication(b *testing.B) { runExperiment(b, "e9") }

// replWorkload drives `writers` concurrent clients against a 1-slot
// cluster with the given replication factor for the given duration and
// reports aggregate ops plus the slot's primary counters. It is the
// shared harness behind BenchmarkReplicationConcurrent and the
// BENCH_replication.json artifact: single-writer numbers hide the
// write path's serialization entirely (one synchronous client observes
// the same latency either way), so the concurrent variant is the one
// that shows whether group commit is amortizing mirror round trips and
// fsyncs — and, at rf=3, what the quorum fan-out costs over the pair.
func replWorkload(tb testing.TB, writers, rf int, scfg kvserver.Config, d time.Duration) (ops int, st kvserver.StatsSnapshot) {
	cl, err := cluster.StartReplicated(1, rf, scfg)
	if err != nil {
		tb.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	var total atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(d)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := cl.NewClient()
			if err != nil {
				tb.Errorf("worker %d: %v", w, err)
				return
			}
			defer c.Close()
			n := int64(0)
			for time.Now().Before(deadline) {
				tx := c.Begin()
				tx.Put(c.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("w%d-%d", w, n))))
				if err := tx.Commit(ctx); err != nil {
					tb.Errorf("worker %d: %v", w, err)
					return
				}
				n++
			}
			total.Add(n)
		}(w)
	}
	wg.Wait()
	return int(total.Load()), cl.Stats()
}

// scaleOutResult summarizes the elastic scale-out run: ops counted in
// fixed windows before and after a mid-run server join, ops during the
// join itself, and commit latency percentiles during the join — what
// the live migration costs the workload while it runs.
type scaleOutResult struct {
	before, during, after int
	windowSecs            float64
	joinSecs              float64
	durP50, durP99        time.Duration
}

// scaleOutWorkload is the bench-artifact version of the elastic
// scale-out demo (internal/cluster TestScaleOutLive): a 2-group
// cluster formed with 6 routes runs a sustained put workload, a third
// group joins mid-run, and Rebalance migrates its fair share (two
// routes) onto it live. MirrorSendDelay makes each group's replication
// pipeline a bounded-capacity resource so the windows measure CAPACITY
// — which the join grows — rather than host CPU, which it cannot.
func scaleOutWorkload(tb testing.TB, window time.Duration) scaleOutResult {
	const nroutes = 6
	const workers = 32
	cl, err := cluster.StartElastic(2, 3, 2, kvserver.Config{
		MaxVersions:           4,
		MirrorBatchMaxRecords: 8,
		MirrorSendDelay:       2 * time.Millisecond,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	stop := make(chan struct{})
	var opsN atomic.Int64
	var recording atomic.Bool
	var latMu sync.Mutex
	var lats []time.Duration
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := cl.NewClient()
			if err != nil {
				tb.Errorf("worker %d: %v", w, err)
				return
			}
			defer c.Close()
			// Bounded working set: reused OIDs keep the store's size flat
			// so the windows compare steady states.
			oids := make([]kv.OID, nroutes*8)
			for k := range oids {
				oids[k] = c.NewOID(uint16(k % nroutes))
			}
			var myLats []time.Duration
			defer func() {
				latMu.Lock()
				lats = append(lats, myLats...)
				latMu.Unlock()
			}()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := c.Begin()
				tx.Put(oids[(w+i)%len(oids)], kv.NewPlain([]byte(fmt.Sprintf("w%d-%d", w, i))))
				t0 := time.Now()
				if err := tx.Commit(ctx); err != nil {
					tb.Errorf("worker %d: %v", w, err)
					return
				}
				if recording.Load() {
					myLats = append(myLats, time.Since(t0))
				}
				opsN.Add(1)
			}
		}(w)
	}
	time.Sleep(300 * time.Millisecond) // warmup
	res := scaleOutResult{windowSecs: window.Seconds()}
	b0 := opsN.Load()
	time.Sleep(window)
	res.before = int(opsN.Load() - b0)
	recording.Store(true)
	joinStart := time.Now()
	gi, err := cl.AddServer()
	if err != nil {
		tb.Fatal(err)
	}
	m0 := opsN.Load()
	if _, err := cl.Rebalance(gi); err != nil {
		tb.Fatal(err)
	}
	res.during = int(opsN.Load() - m0)
	res.joinSecs = time.Since(joinStart).Seconds()
	recording.Store(false)
	a0 := opsN.Load()
	time.Sleep(window)
	res.after = int(opsN.Load() - a0)
	close(stop)
	wg.Wait()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.durP50 = latPercentile(lats, 50)
	res.durP99 = latPercentile(lats, 99)
	return res
}

// replReadResult summarizes one read-mostly replication workload run.
type replReadResult struct {
	reads, writes int
	readsPerSec   float64
	p50, p95, p99 time.Duration
	st            kvserver.StatsSnapshot
}

// latPercentile picks the p-th percentile (0..100) from a sorted
// latency sample, nearest-rank on the sample index.
func latPercentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted)-1) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// replReadWorkload drives `workers` concurrent clients running a YCSB
// read-mostly mix (B = 95/5 read/update, C = read-only) against a
// 1-slot cluster at the given replication factor. With followerReads
// set, read transactions begin at the client's learned durability
// frontier (BeginFollower) and route to backups, so the group's read
// capacity is every replica; without it, every read goes to the
// primary. Workers ping once before the run so even the read-only
// WorkloadC clients learn a frontier from the heartbeat ack piggyback
// before their first read. Reports read/write counts, read ops/sec
// over the measured window, read latency percentiles, and the slot's
// aggregated server counters (FollowerReads shows where reads landed).
func replReadWorkload(tb testing.TB, workers, rf int, wl ycsb.Workload, followerReads bool, d time.Duration) replReadResult {
	// Follower reads run at the durability frontier, which trails the
	// newest commits; a hot zipfian key takes enough updates per
	// second that the default 64-version chain cap would prune the
	// version a frontier read needs. Deepen the cap so the retention
	// window, not the chain length, bounds readable staleness.
	cl, err := cluster.StartReplicated(1, rf, kvserver.Config{MaxVersions: 4096})
	if err != nil {
		tb.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Seed the keyspace; replicate it fully before the run starts so
	// every backup can serve any key at the frontier.
	const records = 256
	seed, err := cl.NewClient()
	if err != nil {
		tb.Fatal(err)
	}
	defer seed.Close()
	oids := make([]kv.OID, records)
	for i := range oids {
		oids[i] = seed.NewOID(0)
	}
	for i := 0; i < records; i += 32 {
		tx := seed.Begin()
		for j := i; j < i+32 && j < records; j++ {
			tx.Put(oids[j], kv.NewPlain(ycsb.Value(int64(j))))
		}
		if err := tx.Commit(ctx); err != nil {
			tb.Fatal(err)
		}
	}
	if followerReads {
		// Wait until a backup actually SERVES a follower read of the
		// last seeded object: a successful read alone isn't enough
		// (the client falls back to the primary transparently while
		// the backups' remote watermark — carried by mirror batches
		// and lease renewals — still trails the seeding). Once the
		// FollowerReads counter moves, the backups' own frontiers
		// cover the full seed, so the workers start against a group
		// whose every replica can serve every key.
		seed.SetFollowerReads(true)
		for wait := time.Now().Add(10 * time.Second); ; {
			if err := seed.Ping(ctx, 0); err != nil {
				tb.Fatal(err)
			}
			if seed.FollowerSnapshot() > 0 {
				tx := seed.BeginFollower()
				if _, err := tx.Read(ctx, oids[records-1]); err != nil && !errors.Is(err, kv.ErrNotFound) {
					tb.Fatal(err)
				}
				if cl.Stats().FollowerReads > 0 {
					break
				}
			}
			if time.Now().After(wait) {
				tb.Fatal("backups never served a follower read of the seed writes")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	var reads, writes atomic.Int64
	var wg sync.WaitGroup
	latCh := make(chan []time.Duration, workers)
	start := time.Now()
	deadline := start.Add(d)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := cl.NewClient()
			if err != nil {
				tb.Errorf("worker %d: %v", w, err)
				return
			}
			defer c.Close()
			c.SetFollowerReads(followerReads)
			// Learn the slot's durability frontier before the first
			// read (the ping ack piggybacks it), then keep it fresh
			// with the heartbeat: the follower snapshot must advance
			// through the run or reads pin to an ever-staler
			// timestamp and eventually fall out of the hot keys'
			// retained version history.
			if err := c.Ping(ctx, 0); err != nil {
				tb.Errorf("worker %d: ping: %v", w, err)
				return
			}
			c.StartHeartbeat(50 * time.Millisecond)
			gen, err := ycsb.NewGenerator(wl, records, int64(w)+1)
			if err != nil {
				tb.Errorf("worker %d: %v", w, err)
				return
			}
			var lats []time.Duration
			nr, nw := int64(0), int64(0)
			for time.Now().Before(deadline) {
				op := gen.Next()
				oid := oids[int(op.Key%records)]
				if op.Kind == ycsb.OpRead || op.Kind == ycsb.OpScan {
					t0 := time.Now()
					var tx *kvclient.Tx
					if followerReads {
						tx = c.BeginFollower()
					} else {
						tx = c.Begin()
					}
					if _, err := tx.Read(ctx, oid); err != nil {
						tb.Errorf("worker %d: read: %v", w, err)
						return
					}
					lats = append(lats, time.Since(t0))
					nr++
				} else {
					tx := c.Begin()
					tx.Put(oid, kv.NewPlain(ycsb.Value(op.Key)))
					switch err := tx.Commit(ctx); {
					case err == nil:
						nw++
					case errors.Is(err, kv.ErrConflict) || errors.Is(err, kv.ErrUncertain):
						// Zipfian hot keys under first-committer-wins:
						// losing a race is part of the workload, not a
						// harness failure.
					default:
						tb.Errorf("worker %d: commit: %v", w, err)
						return
					}
				}
			}
			reads.Add(nr)
			writes.Add(nw)
			latCh <- lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(latCh)
	var all []time.Duration
	for l := range latCh {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return replReadResult{
		reads:       int(reads.Load()),
		writes:      int(writes.Load()),
		readsPerSec: float64(reads.Load()) / elapsed.Seconds(),
		p50:         latPercentile(all, 50),
		p95:         latPercentile(all, 95),
		p99:         latPercentile(all, 99),
		st:          cl.Stats(),
	}
}

// scanRunResult summarizes one scan workload run.
type scanRunResult struct {
	scans         int
	scansPerSec   float64
	p50, p95, p99 time.Duration
}

// scanWorkload drives tree scans from a single consumer for d and
// reports throughput plus per-scan latency percentiles. One worker on
// purpose: scan readahead is a per-iterator pipeline, and a single
// consumer shows its effect undiluted by CPU contention between
// workers. With e1 set the shape is E1's scan100 (uniform start, 100
// cells); otherwise it is YCSB-E's scan mix (zipfian start, length
// uniform in 1..100) with the generator's 5% inserts skipped — the
// row measures the read pipeline, and the write path has its own rows.
func scanWorkload(tb testing.TB, c *kvclient.Client, tree *dbt.Tree, records int, e1 bool, d time.Duration) scanRunResult {
	tb.Helper()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	gen, err := ycsb.NewGenerator(ycsb.WorkloadE, int64(records), 1)
	if err != nil {
		tb.Fatal(err)
	}
	var lats []time.Duration
	n := 0
	start := time.Now()
	deadline := start.Add(d)
	for time.Now().Before(deadline) {
		var key string
		var scanLen int
		if e1 {
			key = ycsb.KeyName(rng.Int63n(int64(records)))
			scanLen = 100
		} else {
			op := gen.Next()
			if op.Kind != ycsb.OpScan {
				continue
			}
			key = ycsb.KeyName(op.Key)
			scanLen = op.ScanLen
		}
		t0 := time.Now()
		tx := c.Begin()
		if _, err := tree.Scan(ctx, tx, []byte(key), scanLen); err != nil {
			tb.Fatalf("scan: %v", err)
		}
		tx.Abort()
		lats = append(lats, time.Since(t0))
		n++
	}
	elapsed := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return scanRunResult{
		scans:       n,
		scansPerSec: float64(n) / elapsed.Seconds(),
		p50:         latPercentile(lats, 50),
		p95:         latPercentile(lats, 95),
		p99:         latPercentile(lats, 99),
	}
}

// scanBenchPair seeds a fresh single-server tree and measures the same
// scan workload through the synchronous iterator (NoReadahead) and the
// readahead pipeline, back to back against the identical data. Small
// leaves (MaxCells=8) make a scan100 cross ~13 leaves, the regime the
// leaf pipeline targets; a single server keeps adjacent leaves
// co-located so the prefetcher's batched run fetch (two leaves per
// MethodReadBatch RPC) actually consolidates round trips.
func scanBenchPair(tb testing.TB, e1 bool, d time.Duration) (syncRes, raRes scanRunResult) {
	tb.Helper()
	const records = 2000
	const maxCells = 8
	cl, err := cluster.Start(1, kvserver.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.NewClient()
	if err != nil {
		tb.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	loader, err := dbt.Create(ctx, c, 1, dbt.Config{MaxCells: maxCells, SyncSplit: true})
	if err != nil {
		tb.Fatal(err)
	}
	defer loader.Close()
	for i := 0; i < records; i++ {
		for attempt := 0; ; attempt++ {
			tx := c.Begin()
			if err := loader.Put(ctx, tx, []byte(ycsb.KeyName(int64(i))), ycsb.Value(int64(i))); err != nil {
				tb.Fatalf("seed put: %v", err)
			}
			err := tx.Commit(ctx)
			if err == nil {
				break
			}
			if !errors.Is(err, kv.ErrConflict) || attempt > 20 {
				tb.Fatalf("seed commit: %v", err)
			}
		}
	}
	syncTree, err := dbt.Open(ctx, c, 1, dbt.Config{MaxCells: maxCells, NoReadahead: true})
	if err != nil {
		tb.Fatal(err)
	}
	defer syncTree.Close()
	raTree, err := dbt.Open(ctx, c, 1, dbt.Config{MaxCells: maxCells})
	if err != nil {
		tb.Fatal(err)
	}
	defer raTree.Close()
	// Warm both handles' inner-node caches: the comparison is about
	// leaf fetching, not cold-cache descent costs.
	for _, tr := range []*dbt.Tree{syncTree, raTree} {
		tx := c.Begin()
		if _, err := tr.Scan(ctx, tx, nil, -1); err != nil {
			tb.Fatalf("warm scan: %v", err)
		}
		tx.Abort()
	}
	syncRes = scanWorkload(tb, c, syncTree, records, e1, d)
	raRes = scanWorkload(tb, c, raTree, records, e1, d)
	return syncRes, raRes
}

// BenchmarkReplicationConcurrent measures the replicated write path
// under concurrency — the workload BenchmarkE9_Replication's
// per-commit latency view cannot show. Sub-benchmarks cover 1 and 8
// writers, plain and with a per-commit-durable WAL (-log-sync
// equivalent); reported metrics are ops/sec, achieved mirror batch
// depth, and fsyncs per commit (group commit drives the latter below
// 1 under load).
func BenchmarkReplicationConcurrent(b *testing.B) {
	run := func(b *testing.B, writers, rf int, logSync bool) {
		// One fixed-duration workload per iteration; each iteration
		// gets a FRESH log directory — sharing one would make later
		// iterations replay (and inherit) earlier iterations' WALs,
		// counting replay time as write-path throughput.
		for i := 0; i < b.N; i++ {
			scfg := kvserver.Config{}
			if logSync {
				scfg.LogPath = b.TempDir()
				scfg.LogSync = true
			}
			start := time.Now()
			ops, st := replWorkload(b, writers, rf, scfg, 500*time.Millisecond)
			elapsed := time.Since(start).Seconds()
			b.ReportMetric(float64(ops)/elapsed, "ops/s")
			if st.MirrorBatches > 0 {
				b.ReportMetric(float64(st.MirrorBatchRecords)/float64(st.MirrorBatches), "batch-depth")
			}
			if commits := st.Commits + st.FastCommits; logSync && commits > 0 {
				b.ReportMetric(float64(st.WALSyncs)/float64(commits), "fsync/commit")
			}
		}
	}
	for _, rf := range []int{2, 3} {
		for _, w := range []int{1, 8} {
			b.Run(fmt.Sprintf("rf=%d/writers=%d", rf, w), func(b *testing.B) { run(b, w, rf, false) })
		}
		for _, w := range []int{1, 8} {
			b.Run(fmt.Sprintf("rf=%d/logsync/writers=%d", rf, w), func(b *testing.B) { run(b, w, rf, true) })
		}
	}
	// Read-mostly (YCSB-B, 95/5) at rf=3: primary-only vs
	// watermark-gated follower reads. The follower variant's reads
	// fan out across all three replicas at the durability frontier;
	// reported latencies are per-read (begin→value).
	for _, fr := range []bool{false, true} {
		fr := fr
		b.Run(fmt.Sprintf("rf=3/readmostly/follower=%v", fr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := replReadWorkload(b, 8, 3, ycsb.WorkloadB, fr, 500*time.Millisecond)
				b.ReportMetric(res.readsPerSec, "read-ops/s")
				b.ReportMetric(float64(res.p50.Microseconds()), "p50-µs")
				b.ReportMetric(float64(res.p95.Microseconds()), "p95-µs")
				b.ReportMetric(float64(res.p99.Microseconds()), "p99-µs")
				if fr && res.st.FollowerReads == 0 {
					b.Fatalf("follower reads enabled but none served (frontier never learned?)")
				}
			}
		})
	}
}

// replBenchPoint is one row of BENCH_replication.json. The write-path
// rows fill OpsPerSec and the batching fields; the read-mostly rows
// fill the read fields instead (ReadOpsPerSec, latency percentiles,
// and FollowerReads — how many of the reads backups served).
type replBenchPoint struct {
	Config          string  `json:"config"`
	Writers         int     `json:"writers"`
	OpsPerSec       float64 `json:"ops_per_sec,omitempty"`
	MirrorBatches   uint64  `json:"mirror_batches,omitempty"`
	BatchDepth      float64 `json:"batch_depth,omitempty"`
	FsyncsPerCommit float64 `json:"fsyncs_per_commit,omitempty"`
	ReadOpsPerSec   float64 `json:"read_ops_per_sec,omitempty"`
	ScanOpsPerSec   float64 `json:"scan_ops_per_sec,omitempty"`
	FollowerReads   uint64  `json:"follower_reads,omitempty"`
	P50Micros       float64 `json:"read_p50_us,omitempty"`
	P95Micros       float64 `json:"read_p95_us,omitempty"`
	P99Micros       float64 `json:"read_p99_us,omitempty"`
	CommitP50Micros float64 `json:"commit_p50_us,omitempty"`
	CommitP99Micros float64 `json:"commit_p99_us,omitempty"`
}

// TestReplicationBenchArtifact emits BENCH_replication.json — the
// replication write path's performance trajectory (ops/sec single and
// concurrent, achieved batch depth, fsyncs per commit) — when
// YESQUEL_BENCH_JSON names an output path. CI runs it and uploads the
// file as a build artifact so regressions in the replicated write
// path are visible per commit; it is skipped in plain `go test` runs
// to keep the tier-1 suite fast.
func TestReplicationBenchArtifact(t *testing.T) {
	out := os.Getenv("YESQUEL_BENCH_JSON")
	if out == "" {
		t.Skip("set YESQUEL_BENCH_JSON=<path> to emit the replication bench artifact")
	}
	const d = 2 * time.Second
	var points []replBenchPoint
	for _, rf := range []int{2, 3} {
		for _, w := range []int{1, 8} {
			start := time.Now()
			ops, st := replWorkload(t, w, rf, kvserver.Config{}, d)
			p := replBenchPoint{Config: fmt.Sprintf("rf%d", rf), Writers: w, OpsPerSec: float64(ops) / time.Since(start).Seconds(), MirrorBatches: st.MirrorBatches}
			if st.MirrorBatches > 0 {
				p.BatchDepth = float64(st.MirrorBatchRecords) / float64(st.MirrorBatches)
			}
			points = append(points, p)
		}
		for _, w := range []int{1, 8} {
			start := time.Now()
			ops, st := replWorkload(t, w, rf, kvserver.Config{LogPath: t.TempDir(), LogSync: true}, d)
			p := replBenchPoint{Config: fmt.Sprintf("rf%d+logsync", rf), Writers: w, OpsPerSec: float64(ops) / time.Since(start).Seconds(), MirrorBatches: st.MirrorBatches}
			if st.MirrorBatches > 0 {
				p.BatchDepth = float64(st.MirrorBatchRecords) / float64(st.MirrorBatches)
			}
			if commits := st.Commits + st.FastCommits; commits > 0 {
				p.FsyncsPerCommit = float64(st.WALSyncs) / float64(commits)
			}
			points = append(points, p)
		}
	}
	// Read-mostly column (rf=3, YCSB-B 95/5 and YCSB-C read-only, 8
	// workers): primary-only routing vs watermark-gated follower
	// reads. The follower rows should show strictly more read ops/s —
	// reads fan out across the replicas instead of queueing on the
	// primary behind the write path. The two configurations run as
	// back-to-back pairs and the reported pair is the one with the
	// MEDIAN follower/primary ratio: slow-machine drift between reps
	// hits both numbers of a pair alike, so the comparison reflects
	// the typical relative performance, not which rep drew the fast
	// scheduling.
	const readReps = 5
	for _, wl := range []ycsb.Workload{ycsb.WorkloadB, ycsb.WorkloadC} {
		type pair struct{ primary, follower replReadResult }
		pairs := make([]pair, 0, readReps)
		for rep := 0; rep < readReps; rep++ {
			pairs = append(pairs, pair{
				primary:  replReadWorkload(t, 8, 3, wl, false, d),
				follower: replReadWorkload(t, 8, 3, wl, true, d),
			})
		}
		sort.Slice(pairs, func(i, j int) bool {
			return pairs[i].follower.readsPerSec/pairs[i].primary.readsPerSec <
				pairs[j].follower.readsPerSec/pairs[j].primary.readsPerSec
		})
		med := pairs[len(pairs)/2]
		if med.follower.st.FollowerReads == 0 {
			t.Errorf("rf3+ycsb-%c+follower-reads: no follower reads served", wl)
		}
		for _, m := range []struct {
			cfg string
			res replReadResult
		}{
			{fmt.Sprintf("rf3+ycsb-%c+primary-only", wl), med.primary},
			{fmt.Sprintf("rf3+ycsb-%c+follower-reads", wl), med.follower},
		} {
			points = append(points, replBenchPoint{
				Config:        m.cfg,
				Writers:       8,
				ReadOpsPerSec: m.res.readsPerSec,
				FollowerReads: m.res.st.FollowerReads,
				P50Micros:     float64(m.res.p50.Microseconds()),
				P95Micros:     float64(m.res.p95.Microseconds()),
				P99Micros:     float64(m.res.p99.Microseconds()),
			})
		}
	}
	// Scan column (single server, 8-cell leaves): the client read
	// pipeline of this PR — scan readahead with batched leaf-run
	// fetches vs the synchronous leaf-at-a-time iterator, over
	// identical seeded trees. Same pairing discipline as the
	// read-mostly rows: each rep runs both configurations back to
	// back and the reported pair is the one with the MEDIAN
	// readahead/synchronous throughput ratio.
	const scanReps = 5
	for _, sw := range []struct {
		name string
		e1   bool
	}{
		{"scan100", true},
		{"ycsb-e", false},
	} {
		type scanPair struct{ syncRes, raRes scanRunResult }
		spairs := make([]scanPair, 0, scanReps)
		for rep := 0; rep < scanReps; rep++ {
			s, r := scanBenchPair(t, sw.e1, d)
			spairs = append(spairs, scanPair{syncRes: s, raRes: r})
		}
		sort.Slice(spairs, func(i, j int) bool {
			return spairs[i].raRes.scansPerSec/spairs[i].syncRes.scansPerSec <
				spairs[j].raRes.scansPerSec/spairs[j].syncRes.scansPerSec
		})
		smed := spairs[len(spairs)/2]
		for _, m := range []struct {
			cfg string
			res scanRunResult
		}{
			{sw.name + "+no-readahead", smed.syncRes},
			{sw.name + "+readahead", smed.raRes},
		} {
			points = append(points, replBenchPoint{
				Config:        m.cfg,
				Writers:       1,
				ScanOpsPerSec: m.res.scansPerSec,
				P50Micros:     float64(m.res.p50.Microseconds()),
				P95Micros:     float64(m.res.p95.Microseconds()),
				P99Micros:     float64(m.res.p99.Microseconds()),
			})
		}
	}
	// Scale-out column: the elastic-sharding demo as a trajectory row.
	// The before/after rows bracket a mid-run server join (2 groups →
	// 3, two of six routes migrated live by the rebalancer); the
	// during-join row shows the workload's throughput and commit
	// latency percentiles while the migration itself runs. After-join
	// ops/s exceeding before-join is the point of the feature.
	so := scaleOutWorkload(t, d)
	points = append(points,
		replBenchPoint{Config: "scale-out+before-join", Writers: 32,
			OpsPerSec: float64(so.before) / so.windowSecs},
		replBenchPoint{Config: "scale-out+during-join", Writers: 32,
			OpsPerSec:       float64(so.during) / so.joinSecs,
			CommitP50Micros: float64(so.durP50.Microseconds()),
			CommitP99Micros: float64(so.durP99.Microseconds())},
		replBenchPoint{Config: "scale-out+after-join", Writers: 32,
			OpsPerSec: float64(so.after) / so.windowSecs},
	)

	doc := map[string]any{
		"bench":       "replication",
		"description": "replicated write path: 1-slot loopback cluster at rf=2 (pair) and rf=3 (quorum group: ack once a majority — primary + 1 of 2 backups — holds the record), single-object puts; concurrent writers share mirror batches and WAL fsyncs (group commit); read-mostly rows run YCSB-B/C with reads either pinned to the primary or served by any replica at the durability watermark's frontier (follower reads); scan rows run E1-style scan100 and YCSB-E scans on a single-server 8-cell-leaf tree, comparing the synchronous leaf-at-a-time iterator against scan readahead with batched leaf-run fetches (MethodReadBatch); scale-out rows run the elastic-sharding demo (2 groups/6 routes under sustained load, a third group joins mid-run, the rebalancer migrates two routes live) with MirrorSendDelay emulating a bounded-capacity replication link so added groups add measurable capacity",
		"cpus":        runtime.NumCPU(),
		"points":      points,
		// The same workload measured immediately before group commit
		// landed (PR 5), on a 1-CPU host: the pre-PR write path held
		// repMu across a per-record mirror RPC and fsync, so 8 writers
		// ran no faster than 1. Kept here as the fixed reference point
		// for the trajectory.
		"pre_group_commit_reference": map[string]float64{
			"rf2/writers=1":         20534,
			"rf2/writers=8":         21427,
			"rf2+logsync/writers=1": 3355,
			"rf2+logsync/writers=8": 3662,
		},
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", out, enc)
}

// BenchmarkFailover measures availability through a failover: the wall
// time from killing a replicated slot's primary until the first write
// acknowledged under the new epoch (kill → forced promotion → client
// redirect → acked commit). Reported as ms/failover; this is the first
// trajectory point for the availability metric. Each iteration
// re-forms the pair (Restart) outside the timed section.
func BenchmarkFailover(b *testing.B) {
	cl, err := cluster.StartReplicated(1, 2, kvserver.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	c, err := cl.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	// Seed one write so the pair has history.
	tx := c.Begin()
	tx.Put(c.NewOID(0), kv.NewPlain([]byte("seed")))
	if err := tx.Commit(ctx); err != nil {
		b.Fatal(err)
	}

	var total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if err := cl.KillPrimary(0); err != nil {
			b.Fatal(err)
		}
		// First acked write on the new epoch: retry until the redirect
		// lands it (uncertain one-shots are abandoned, as an application
		// would).
		for {
			tx := c.Begin()
			tx.Put(c.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("fo-%d", i))))
			err := tx.Commit(ctx)
			if err == nil {
				break
			}
			if !errors.Is(err, kv.ErrUncertain) {
				b.Fatalf("write after failover: %v", err)
			}
		}
		total += time.Since(start)
		b.StopTimer()
		if err := cl.Restart(0); err != nil {
			b.Fatal(err)
		}
		// Heartbeat ping outside the timed section: an idle client
		// learns the re-formed membership from the ack piggyback (an
		// active client would learn it from its next redirect), so the
		// next iteration's kill finds the client knowing both members.
		if err := c.Ping(ctx, 0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "ms/failover")
	}
}

// BenchmarkResync measures backup catch-up: the wall time from
// attaching a fresh, empty backup until it holds the primary's full
// state, under two log policies. "full-replay" keeps the unbounded
// replication log, so the backup replays every record since the
// beginning of time; "snapshot" truncates the log at checkpoints, so
// the backup installs a state-transfer snapshot plus the retained
// tail. With MVCC history (most records superseding earlier versions)
// the snapshot path ships the current state, not the write history —
// the gap widens with the primary's age.
func BenchmarkResync(b *testing.B) {
	const history = 2000
	run := func(b *testing.B, cfg kvserver.Config) {
		cfg.ReplicationLog = true
		primary := kvserver.NewServer(kvserver.NewStore(nil, cfg))
		if err := primary.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		go primary.Serve()
		defer primary.Close()
		c, err := kvclient.Open([]string{primary.Addr()})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		ctx := context.Background()
		// A hot-key history: most records are superseded versions, the
		// shape that separates state size from history length.
		oids := make([]kv.OID, 64)
		for i := range oids {
			oids[i] = c.NewOID(0)
		}
		for i := 0; i < history; i++ {
			tx := c.Begin()
			tx.Put(oids[i%len(oids)], kv.NewPlain([]byte(fmt.Sprintf("v%d", i))))
			if err := tx.Commit(ctx); err != nil {
				b.Fatal(err)
			}
		}
		want := primary.Store().StateDigest()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			backup := kvserver.NewServer(kvserver.NewStore(nil, kvserver.Config{ReplicationLog: true}))
			if err := backup.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			go backup.Serve()
			backup.Store().StartResync()
			watermark, err := primary.AttachBackup(backup.Addr())
			if err != nil {
				b.Fatal(err)
			}
			if err := backup.SyncFrom(primary.Addr(), watermark); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if got := backup.Store().StateDigest(); got != want {
				b.Fatalf("resynced digest %x != primary %x", got, want)
			}
			primary.SetMirror("")
			backup.Close()
			b.StartTimer()
		}
	}
	b.Run("full-replay", func(b *testing.B) { run(b, kvserver.Config{}) })
	b.Run("snapshot", func(b *testing.B) {
		run(b, kvserver.Config{ReplicationLogMaxRecords: 128})
	})
}
