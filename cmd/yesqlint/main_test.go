package main

import (
	"os/exec"
	"strings"
	"testing"

	"yesquel/internal/lint"
)

// The package under testdata/ is invisible to ./... wildcards but is a
// valid module package when named explicitly — the suite must flag its
// planted violations.
const brokenPkg = "yesquel/cmd/yesqlint/testdata/src/broken"

func TestSuiteFlagsInjectedViolations(t *testing.T) {
	findings, err := lint.Run(".", suite, brokenPkg)
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
	}
	if byAnalyzer["errsentinel"] == 0 {
		t.Errorf("planted errsentinel violation not flagged; findings: %v", findings)
	}
	if byAnalyzer["timerloop"] == 0 {
		t.Errorf("planted timerloop violation not flagged; findings: %v", findings)
	}
}

// TestCLIExitsNonZero pins the contract CI relies on: the yesqlint
// binary itself exits 1 when findings survive.
func TestCLIExitsNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI via go run")
	}
	cmd := exec.Command("go", "run", ".", brokenPkg)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run on a broken package: err = %v (output %q), want exit error", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(string(out), "errsentinel") || !strings.Contains(string(out), "timerloop") {
		t.Fatalf("output missing expected findings:\n%s", out)
	}
}
