// Command yesqlint runs the repository's invariant analyzers (see
// internal/lint and its subpackages) over the given package patterns
// and exits non-zero if any finding survives the //yesqlint:allow
// suppressions.
//
// Usage:
//
//	go run ./cmd/yesqlint ./...
//	go run ./cmd/yesqlint ./internal/kv/... ./internal/rpc
//
// The suite enforces, mechanically, the replication stack's safety
// rules: no blocking under Store.repMu (repmublock), the
// repMu → txMu → epochMu → snapMu → dirMu acquisition order
// (lockorder), no
// error classification by string matching (errsentinel),
// Encode/Decode wire symmetry and the trailing-optional
// backward-compat contract (wirecodec), and no per-iteration timer
// allocation (timerloop).
package main

import (
	"fmt"
	"os"

	"yesquel/internal/lint"
	"yesquel/internal/lint/analysis"
	"yesquel/internal/lint/errsentinel"
	"yesquel/internal/lint/lockorder"
	"yesquel/internal/lint/repmublock"
	"yesquel/internal/lint/timerloop"
	"yesquel/internal/lint/wirecodec"
)

// Suite is the full analyzer set, exported for the CLI test.
var suite = []*analysis.Analyzer{
	repmublock.Analyzer,
	lockorder.Analyzer,
	errsentinel.Analyzer,
	wirecodec.Analyzer,
	timerloop.Analyzer,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(".", suite, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yesqlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "yesqlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
