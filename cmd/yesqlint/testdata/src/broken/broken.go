// Package broken exists to be caught: it violates several yesqlint
// invariants on purpose so the CLI test can assert a non-zero exit.
package broken

import (
	"errors"
	"strings"
	"time"
)

var ErrBoom = errors.New("broken: boom")

// ClassifyByText compares error text — the errsentinel violation.
func ClassifyByText(err error) bool {
	return err != nil && strings.Contains(err.Error(), ErrBoom.Error())
}

// WaitAll allocates a timer every iteration — the timerloop violation.
func WaitAll(stop <-chan struct{}, n int) {
	for i := 0; i < n; i++ {
		select {
		case <-stop:
			return
		case <-time.After(time.Millisecond):
		}
	}
}
