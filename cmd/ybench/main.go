// ybench regenerates the paper's evaluation tables and figures (E1–E8
// in DESIGN.md) against in-process clusters.
//
//	ybench -exp all
//	ybench -exp e2 -servers 1,2,4 -duration 3s
//	ybench -exp e3 -records 20000 -workers 32
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"yesquel/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e8) or 'all'")
	duration := flag.Duration("duration", 2*time.Second, "measurement duration per point")
	records := flag.Int("records", 10000, "dataset size")
	workers := flag.Int("workers", 16, "client goroutines (where applicable)")
	serversFlag := flag.String("servers", "1,2,4,8", "server counts for scaling experiments")
	flag.Parse()

	var servers []int
	for _, s := range strings.Split(*serversFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("ybench: bad -servers value %q", s)
		}
		servers = append(servers, n)
	}
	p := bench.Params{
		Duration: *duration,
		Records:  *records,
		Workers:  *workers,
		Servers:  servers,
	}

	ctx := context.Background()
	ran := false
	for _, e := range bench.All() {
		if *exp != "all" && *exp != e.ID {
			continue
		}
		ran = true
		fmt.Fprintf(os.Stderr, "running %s: %s...\n", e.ID, e.Name)
		start := time.Now()
		table, err := e.Run(ctx, p)
		if err != nil {
			log.Fatalf("ybench %s: %v", e.ID, err)
		}
		fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(table.Render())
	}
	if !ran {
		log.Fatalf("ybench: unknown experiment %q (want e1..e8 or all)", *exp)
	}
}
