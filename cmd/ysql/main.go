// ysql is an interactive SQL shell for Yesquel. It embeds the full
// query processor (the paper's architecture: query processing happens
// in the client) and talks to the storage servers listed on the
// command line.
//
//	ysql -servers 127.0.0.1:7000,127.0.0.1:7001
//	ysql -servers 127.0.0.1:7000 -e "SELECT * FROM users"
//	ysql -local 3        # spin up 3 in-process servers (demo mode)
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"yesquel/internal/cluster"
	"yesquel/internal/core"
	"yesquel/internal/kv/kvserver"
	"yesquel/internal/sql"
)

func main() {
	serversFlag := flag.String("servers", "", "comma-separated storage server addresses")
	local := flag.Int("local", 0, "start N in-process storage servers instead of connecting")
	execStmt := flag.String("e", "", "execute one statement and exit")
	flag.Parse()

	var addrs []string
	if *local > 0 {
		cl, err := cluster.Start(*local, kvserver.Config{})
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		addrs = cl.Addrs
		fmt.Fprintf(os.Stderr, "started %d local servers: %s\n", *local, strings.Join(addrs, ", "))
	} else {
		if *serversFlag == "" {
			log.Fatal("ysql: need -servers host:port[,host:port...] or -local N")
		}
		addrs = strings.Split(*serversFlag, ",")
	}

	yc, err := core.Connect(addrs, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer yc.Close()
	db := yc.Session()
	ctx := context.Background()

	if *execStmt != "" {
		if err := runStatement(ctx, db, *execStmt); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Fprintln(os.Stderr, "ysql — Yesquel SQL shell (end statements with ';', \\q to quit)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if db.InTx() {
			fmt.Fprint(os.Stderr, "ysql*> ")
		} else {
			fmt.Fprint(os.Stderr, "ysql> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "\\q" || trimmed == "exit" || trimmed == "quit" {
			return
		}
		if strings.HasPrefix(trimmed, ".") {
			if err := dotCommand(ctx, db, trimmed); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(strings.TrimSpace(buf.String()), ";") {
			stmt := strings.TrimSpace(buf.String())
			buf.Reset()
			if err := runStatement(ctx, db, stmt); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
		}
		prompt()
	}
}

// dotCommand handles the shell's meta commands.
func dotCommand(ctx context.Context, db *sql.DB, cmd string) error {
	switch {
	case cmd == ".tables":
		tables, err := db.Tables(ctx)
		if err != nil {
			return err
		}
		for _, ts := range tables {
			fmt.Println(ts.Name)
		}
		return nil
	case cmd == ".indexes":
		idxs, err := db.Indexes(ctx)
		if err != nil {
			return err
		}
		for _, is := range idxs {
			unique := ""
			if is.Unique {
				unique = " UNIQUE"
			}
			fmt.Printf("%s ON %s (%s)%s\n", is.Name, is.Table, is.Col, unique)
		}
		return nil
	case strings.HasPrefix(cmd, ".schema"):
		name := strings.TrimSpace(strings.TrimPrefix(cmd, ".schema"))
		tables, err := db.Tables(ctx)
		if err != nil {
			return err
		}
		for _, ts := range tables {
			if name != "" && ts.Name != name {
				continue
			}
			fmt.Printf("CREATE TABLE %s (\n", ts.Name)
			for i, c := range ts.Cols {
				line := fmt.Sprintf("  %s %s", c.Name, c.Type)
				if c.PrimaryKey {
					line += " PRIMARY KEY"
				}
				if c.NotNull {
					line += " NOT NULL"
				}
				if i < len(ts.Cols)-1 {
					line += ","
				}
				fmt.Println(line)
			}
			fmt.Println(");")
		}
		return nil
	case cmd == ".help":
		fmt.Fprintln(os.Stderr, ".tables        list tables\n.indexes       list indexes\n.schema [tbl]  show DDL\n\\q             quit")
		return nil
	}
	return fmt.Errorf("unknown command %q (try .help)", cmd)
}

func runStatement(ctx context.Context, db *sql.DB, stmt string) error {
	start := time.Now()
	rows, err := db.Query(ctx, stmt)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if len(rows.Columns) > 0 {
		printTable(rows)
	}
	fmt.Fprintf(os.Stderr, "(%d rows, %v)\n", rows.Len(), elapsed.Round(time.Microsecond))
	return nil
}

func printTable(rows *sql.Rows) {
	widths := make([]int, len(rows.Columns))
	for i, c := range rows.Columns {
		widths[i] = len(c)
	}
	all := rows.All()
	rendered := make([][]string, len(all))
	for r, row := range all {
		rendered[r] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			rendered[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, c := range rows.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	fmt.Println(strings.TrimRight(sb.String(), " "))
	sb.Reset()
	for i := range rows.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	fmt.Println(strings.TrimRight(sb.String(), " "))
	for _, row := range rendered {
		sb.Reset()
		for i, s := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], s)
		}
		fmt.Println(strings.TrimRight(sb.String(), " "))
	}
}
