// yesqueld is the Yesquel storage server daemon: one instance of the
// transactional key-value store (boxes 3 in Figure 1 of the paper).
// Start one per storage machine and hand the full address list to the
// clients.
//
//	yesqueld -addr :7000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"yesquel/internal/kv/kvserver"
)

func main() {
	addr := flag.String("addr", ":7000", "listen address")
	retention := flag.Duration("retention", 10*time.Second, "how long superseded MVCC versions remain readable")
	maxVersions := flag.Int("max-versions", 64, "hard cap on a hot object's version chain")
	logPath := flag.String("log", "", "write-ahead log path (empty = in-memory only)")
	logSync := flag.Bool("log-sync", false, "fsync the log on every commit")
	mirror := flag.String("mirror", "", "backup server address(es) to replicate commits to, comma-separated (two or more form a quorum group: commits are acknowledged once a majority of the group — this primary plus its backups — holds them)")
	replLog := flag.String("replication-log", "auto", "keep the in-memory replication log so backups can resync from this server (auto/on/off; auto = on when replication flags are set)")
	replLogMax := flag.Int("replication-log-max", 0, "bound the in-memory replication log to this many records: beyond it the server checkpoints (state snapshot + WAL rotation) and truncates, and backups too far behind catch up by snapshot transfer (0 = unbounded)")
	syncFrom := flag.String("sync-from", "", "primary address to stream missed commits from before serving (join or rejoin a replication group as its backup)")
	lease := flag.Duration("lease", 2*time.Second, "primary lease duration (epoch-bearing groups: how long the primary may serve after its last backup ack, and how long a promotion must wait)")
	mirrorBatch := flag.Int("mirror-batch", 256, "max stream records per group-commit mirror batch RPC (batches are also byte-capped under the frame limit)")
	groupCommitInterval := flag.Duration("group-commit-interval", 0, "how long the replication pipeline waits after waking before flushing, letting a batch build (0 = flush as soon as free)")
	followerReads := flag.Bool("follower-reads", true, "serve snapshot reads from this server while it is a backup, up to its durability watermark's frontier (false = redirect every read to the primary)")
	statsEvery := flag.Duration("stats", 0, "periodically log epoch, role, lease state, and activity counters (0 = off)")
	flag.Parse()

	if *replLog != "auto" && *replLog != "on" && *replLog != "off" {
		log.Fatalf("yesqueld: -replication-log must be auto, on, or off (got %q)", *replLog)
	}
	keepRepLog := *replLog == "on" || (*replLog == "auto" && (*mirror != "" || *syncFrom != "" || *replLogMax > 0))
	store, err := kvserver.OpenStore(nil, kvserver.Config{
		RetentionMillis:          uint64(retention.Milliseconds()),
		MaxVersions:              *maxVersions,
		LogPath:                  *logPath,
		LogSync:                  *logSync,
		ReplicationLog:           keepRepLog,
		ReplicationLogMaxRecords: *replLogMax,
		LeaseDuration:            *lease,
		MirrorBatchMaxRecords:    *mirrorBatch,
		GroupCommitInterval:      *groupCommitInterval,
		NoFollowerReads:          !*followerReads,
	})
	if err != nil {
		log.Fatalf("yesqueld: %v", err)
	}
	srv := kvserver.NewServer(store)
	if *syncFrom != "" {
		// Catch up before serving or mirroring starts. Attach this
		// server on the primary (its -mirror flag, or restart it) only
		// after the catch-up completes; commits the primary acknowledges
		// between this sync and that attach are not replicated here.
		store.StartResync()
		log.Printf("yesqueld: syncing history from %s", *syncFrom)
		if err := srv.SyncFrom(*syncFrom, 0); err != nil {
			log.Fatalf("yesqueld: %v", err)
		}
		log.Printf("yesqueld: synced %d commits", store.ReplSeq())
	}
	if *mirror != "" {
		backups := strings.Split(*mirror, ",")
		for _, b := range backups {
			b = strings.TrimSpace(b)
			if b == "" {
				continue
			}
			if _, err := srv.AttachBackupMember(b); err != nil {
				log.Fatalf("yesqueld: %v", err)
			}
		}
		log.Printf("yesqueld: replicating commits to %s", *mirror)
	}
	if err := srv.Listen(*addr); err != nil {
		log.Fatalf("yesqueld: %v", err)
	}
	log.Printf("yesqueld: serving on %s (retention %v, max versions %d, lease %v)", srv.Addr(), *retention, *maxVersions, *lease)

	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for range t.C {
				st := srv.Stats()
				replicas := ""
				for _, r := range st.Replicas {
					lag := st.ReplHead - r.AckedSeq
					state := "ok"
					if r.Broken {
						state = "broken"
					}
					replicas += fmt.Sprintf(" replica=%s acked=%d lag=%d state=%s", r.Member, r.AckedSeq, lag, state)
				}
				log.Printf("yesqueld: epoch=%d role=%s members=%v lease_valid=%v repl_head=%d quorum_mark=%d watermark_lag=%d frontier=%d quorum_need=%d%s bumps=%d wrong_epoch_rejects=%d reads=%d follower_reads=%d durable_read_waits=%d commits=%d fastcommits=%d conflicts=%d orphan_aborts=%d checkpoints=%d ckpt_failures=%d log_truncated=%d snaps_served=%d snaps_installed=%d mirror_batches=%d mirror_batch_records=%d wal_syncs=%d wal_failures=%d",
					st.Epoch, st.Role, st.Members, st.LeaseValid, st.ReplHead, st.QuorumMark, st.WatermarkLag, st.Frontier, st.QuorumNeed, replicas, st.EpochBumps, st.WrongEpochRejects,
					st.Reads, st.FollowerReads, st.DurableReadWaits, st.Commits, st.FastCommits, st.Conflicts, st.OrphanAborts,
					st.Checkpoints, st.CheckpointFailures, st.LogRecordsTruncated, st.SnapshotsServed, st.SnapshotsInstalled,
					st.MirrorBatches, st.MirrorBatchRecords, st.WALSyncs, st.WALFailures)
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		st := srv.Stats()
		fmt.Fprintf(os.Stderr, "yesqueld: shutting down; epoch=%d role=%s reads=%d commits=%d fastcommits=%d conflicts=%d gc=%d wrong_epoch_rejects=%d\n",
			st.Epoch, st.Role, st.Reads, st.Commits, st.FastCommits, st.Conflicts, st.GCVersions, st.WrongEpochRejects)
		srv.Close()
		store.CloseLog()
	}()
	if err := srv.Serve(); err != nil {
		log.Fatalf("yesqueld: %v", err)
	}
}
