// yesqueld is the Yesquel storage server daemon: one instance of the
// transactional key-value store (boxes 3 in Figure 1 of the paper).
// Start one per storage machine and hand the full address list to the
// clients.
//
//	yesqueld -addr :7000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"yesquel/internal/kv/kvserver"
)

func main() {
	addr := flag.String("addr", ":7000", "listen address")
	retention := flag.Duration("retention", 10*time.Second, "how long superseded MVCC versions remain readable")
	maxVersions := flag.Int("max-versions", 64, "hard cap on a hot object's version chain")
	logPath := flag.String("log", "", "write-ahead log path (empty = in-memory only)")
	logSync := flag.Bool("log-sync", false, "fsync the log on every commit")
	mirror := flag.String("mirror", "", "backup server address to replicate commits to")
	replLog := flag.String("replication-log", "auto", "keep the in-memory replication log so backups can resync from this server (auto/on/off; auto = on when replication flags are set)")
	syncFrom := flag.String("sync-from", "", "primary address to stream missed commits from before serving (join or rejoin a replication group as its backup)")
	flag.Parse()

	if *replLog != "auto" && *replLog != "on" && *replLog != "off" {
		log.Fatalf("yesqueld: -replication-log must be auto, on, or off (got %q)", *replLog)
	}
	keepRepLog := *replLog == "on" || (*replLog == "auto" && (*mirror != "" || *syncFrom != ""))
	store, err := kvserver.OpenStore(nil, kvserver.Config{
		RetentionMillis: uint64(retention.Milliseconds()),
		MaxVersions:     *maxVersions,
		LogPath:         *logPath,
		LogSync:         *logSync,
		ReplicationLog:  keepRepLog,
	})
	if err != nil {
		log.Fatalf("yesqueld: %v", err)
	}
	srv := kvserver.NewServer(store)
	if *syncFrom != "" {
		// Catch up before serving or mirroring starts. Attach this
		// server on the primary (its -mirror flag, or restart it) only
		// after the catch-up completes; commits the primary acknowledges
		// between this sync and that attach are not replicated here.
		store.StartResync()
		log.Printf("yesqueld: syncing history from %s", *syncFrom)
		if err := srv.SyncFrom(*syncFrom, 0); err != nil {
			log.Fatalf("yesqueld: %v", err)
		}
		log.Printf("yesqueld: synced %d commits", store.ReplSeq())
	}
	if *mirror != "" {
		if err := srv.SetMirror(*mirror); err != nil {
			log.Fatalf("yesqueld: %v", err)
		}
		log.Printf("yesqueld: replicating commits to %s", *mirror)
	}
	if err := srv.Listen(*addr); err != nil {
		log.Fatalf("yesqueld: %v", err)
	}
	log.Printf("yesqueld: serving on %s (retention %v, max versions %d)", srv.Addr(), *retention, *maxVersions)

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "yesqueld: shutting down; reads=%d commits=%d fastcommits=%d conflicts=%d gc=%d\n",
			st.Reads, st.Commits, st.FastCommits, st.Conflicts, st.GCVersions)
		srv.Close()
		store.CloseLog()
	}()
	if err := srv.Serve(); err != nil {
		log.Fatalf("yesqueld: %v", err)
	}
}
