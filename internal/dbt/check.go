package dbt

import (
	"bytes"
	"context"
	"fmt"

	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
)

// Check walks the whole tree at tx's snapshot and verifies its
// structural invariants. It is used by tests (including property
// tests) and by operators debugging a cluster; it reads every node, so
// do not run it on a hot production tree casually.
//
// Invariants verified:
//
//  1. every node belongs to this tree and is a supervalue;
//  2. heights decrease by exactly one per level, reaching 0 at leaves;
//  3. a node's cells are strictly sorted and lie inside its fences;
//  4. a child's fence interval is exactly the range its parent routes
//     to it (low = routing cell key, high = next routing key or the
//     parent's high fence);
//  5. inner nodes have at least one child; child pointers resolve;
//  6. leaf fence intervals tile the key space: consecutive leaves meet
//     exactly, starting at -inf and ending at +inf.
//
// It returns tree-wide statistics.
type CheckResult struct {
	Height    uint64
	Nodes     int
	Leaves    int
	Cells     int // cells in leaves (rows)
	MinFanout int
	MaxFanout int
}

// Check verifies the tree's invariants at tx's snapshot.
func (t *Tree) Check(ctx context.Context, tx *kvclient.Tx) (*CheckResult, error) {
	root, err := tx.Read(ctx, t.root)
	if err != nil {
		return nil, fmt.Errorf("dbt: check: reading root: %w", err)
	}
	res := &CheckResult{Height: root.Attrs[AttrHeight], MinFanout: int(^uint(0) >> 1)}
	var leafLow []byte // expected low fence of the next leaf; nil means -inf expected first
	first := true
	var walk func(oid kv.OID, node *kv.Value, low, high []byte) error
	walk = func(oid kv.OID, node *kv.Value, low, high []byte) error {
		if node.Kind != kv.KindSuper {
			return fmt.Errorf("dbt: check: node %v is not a supervalue", oid)
		}
		if node.Attrs[AttrTree] != t.id {
			return fmt.Errorf("dbt: check: node %v belongs to tree %d", oid, node.Attrs[AttrTree])
		}
		res.Nodes++
		if !bytes.Equal(node.LowKey, low) || !bytes.Equal(node.HighKey, high) {
			return fmt.Errorf("dbt: check: node %v fences [%q,%q) want [%q,%q)",
				oid, node.LowKey, node.HighKey, low, high)
		}
		for i, c := range node.Cells {
			if i > 0 && bytes.Compare(node.Cells[i-1].Key, c.Key) >= 0 {
				return fmt.Errorf("dbt: check: node %v cells out of order at %d", oid, i)
			}
			if !node.InBounds(c.Key) {
				return fmt.Errorf("dbt: check: node %v cell %q outside fences", oid, c.Key)
			}
		}
		h := node.Attrs[AttrHeight]
		if h == 0 {
			res.Leaves++
			res.Cells += node.NumCells()
			// Leaf tiling.
			if first {
				if len(node.LowKey) != 0 {
					return fmt.Errorf("dbt: check: first leaf low fence %q, want -inf", node.LowKey)
				}
				first = false
			} else if !bytes.Equal(node.LowKey, leafLow) {
				return fmt.Errorf("dbt: check: leaf gap: expected low %q, got %q", leafLow, node.LowKey)
			}
			leafLow = node.HighKey
			return nil
		}
		// Inner node.
		if node.NumCells() == 0 {
			return fmt.Errorf("dbt: check: inner node %v has no children", oid)
		}
		if node.NumCells() < res.MinFanout {
			res.MinFanout = node.NumCells()
		}
		if node.NumCells() > res.MaxFanout {
			res.MaxFanout = node.NumCells()
		}
		// First routing key must equal the node's low fence.
		lowCell := node.LowKey
		if lowCell == nil {
			lowCell = []byte{}
		}
		if !bytes.Equal(node.Cells[0].Key, lowCell) {
			return fmt.Errorf("dbt: check: inner %v first routing key %q != low fence %q",
				oid, node.Cells[0].Key, lowCell)
		}
		for i, c := range node.Cells {
			childO, err := childOID(c)
			if err != nil {
				return fmt.Errorf("dbt: check: inner %v cell %d: %w", oid, i, err)
			}
			child, err := tx.Read(ctx, childO)
			if err != nil {
				return fmt.Errorf("dbt: check: child %v of %v: %w", childO, oid, err)
			}
			if child.Attrs[AttrHeight] != h-1 {
				return fmt.Errorf("dbt: check: child %v height %d under parent height %d",
					childO, child.Attrs[AttrHeight], h)
			}
			childLow := c.Key
			var childHigh []byte
			if i+1 < node.NumCells() {
				childHigh = node.Cells[i+1].Key
			} else {
				childHigh = node.HighKey
			}
			if err := walk(childO, child, childLow, childHigh); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, root, []byte{}, nil); err != nil {
		return nil, err
	}
	if leafLow != nil {
		return nil, fmt.Errorf("dbt: check: last leaf high fence %q, want +inf", leafLow)
	}
	if res.MinFanout == int(^uint(0)>>1) {
		res.MinFanout = 0
	}
	return res, nil
}
