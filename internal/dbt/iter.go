package dbt

import (
	"context"

	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
)

// Iterator walks the tree's cells in ascending key order within one
// transaction's snapshot. Iteration navigates by fence keys: after
// exhausting a leaf, it descends for the leaf's high fence. Because
// inner-node descents are served by the cache, advancing to the next
// leaf costs one transactional leaf read — the same as following a
// sibling pointer, but immune to stale links.
type Iterator struct {
	t   *Tree
	tx  *kvclient.Tx
	ctx context.Context

	cells []kv.Cell
	pos   int
	next  []byte // low key of the next leaf to fetch; nil = exhausted
	done  bool
	err   error
}

// NewIterator returns an iterator positioned at the first key >= start
// (use nil or empty to scan from the beginning).
func (t *Tree) NewIterator(ctx context.Context, tx *kvclient.Tx, start []byte) *Iterator {
	if start == nil {
		start = []byte{}
	}
	it := &Iterator{t: t, tx: tx, ctx: ctx}
	it.load(start)
	return it
}

// load fetches the leaf containing key and positions at the first cell
// >= key.
func (it *Iterator) load(key []byte) {
	for {
		li, err := it.t.descend(it.ctx, it.tx, key, tailWindow(key))
		if err != nil {
			it.err = err
			it.done = true
			return
		}
		leaf := li.node
		it.cells = leaf.Cells
		// First cell >= key.
		lo, hi := 0, len(it.cells)
		for lo < hi {
			mid := (lo + hi) / 2
			if compare(it.cells[mid].Key, key) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		it.pos = lo
		if leaf.HighKey == nil {
			it.next = nil
		} else {
			it.next = append([]byte(nil), leaf.HighKey...)
		}
		if it.pos < len(it.cells) {
			return
		}
		// Empty tail in this leaf: move on, or finish.
		if it.next == nil {
			it.done = true
			return
		}
		key = it.next
	}
}

// Valid reports whether the iterator is positioned at a cell.
func (it *Iterator) Valid() bool { return !it.done && it.err == nil }

// Err returns the first error the iterator encountered, if any.
func (it *Iterator) Err() error { return it.err }

// Key returns the current cell's key. Valid must be true.
func (it *Iterator) Key() []byte { return it.cells[it.pos].Key }

// Value returns the current cell's value. Valid must be true.
func (it *Iterator) Value() []byte { return it.cells[it.pos].Value }

// Next advances to the following cell, fetching the next leaf when the
// current one is exhausted.
func (it *Iterator) Next() {
	if it.done || it.err != nil {
		return
	}
	it.pos++
	if it.pos < len(it.cells) {
		return
	}
	if it.next == nil {
		it.done = true
		return
	}
	it.load(it.next)
}

// Scan collects up to limit cells starting at the first key >= start.
// A negative limit collects everything. It is a convenience wrapper
// over the iterator.
func (t *Tree) Scan(ctx context.Context, tx *kvclient.Tx, start []byte, limit int) ([]kv.Cell, error) {
	var out []kv.Cell
	it := t.NewIterator(ctx, tx, start)
	for ; it.Valid(); it.Next() {
		if limit >= 0 && len(out) >= limit {
			break
		}
		out = append(out, kv.Cell{Key: it.Key(), Value: it.Value()})
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
