package dbt

import (
	"bytes"
	"context"

	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
)

// Iterator walks the tree's cells in ascending key order within one
// transaction's snapshot. Iteration navigates by fence keys: after
// exhausting a leaf, it descends for the leaf's high fence. Because
// inner-node descents are served by the cache, advancing to the next
// leaf costs one transactional leaf read — the same as following a
// sibling pointer, but immune to stale links.
//
// With readahead enabled (the default; see the package doc's "Scan
// readahead" section) that leaf read is pipelined: a background
// goroutine resolves upcoming leaves by fence key on a snapshot
// ReadView while the consumer drains the current one, and the
// synchronous path remains the fallback whenever a prefetch cannot be
// used. Call Close on an iterator abandoned before exhaustion so the
// prefetcher is released promptly.
type Iterator struct {
	t   *Tree
	tx  *kvclient.Tx
	ctx context.Context

	cells []kv.Cell
	pos   int
	next  []byte // low key of the next leaf to fetch; nil = exhausted
	done  bool
	err   error

	ra    *readahead
	raOff bool // readahead permanently disabled for this iterator
}

// readahead is the iterator's leaf prefetcher: one goroutine following
// the fence-key chain on a snapshot ReadView, delivering each leaf on
// a channel whose capacity (plus the descent in flight) bounds how far
// it runs ahead of the consumer.
type readahead struct {
	cancel context.CancelFunc
	ch     chan raResult
}

// raResult is one prefetched leaf: the fence key it was descended for,
// so the consumer can verify it is being handed the leaf it wants.
type raResult struct {
	key []byte
	li  leafInfo
	err error
}

// NewIterator returns an iterator positioned at the first key >= start
// (use nil or empty to scan from the beginning).
func (t *Tree) NewIterator(ctx context.Context, tx *kvclient.Tx, start []byte) *Iterator {
	if start == nil {
		start = []byte{}
	}
	it := &Iterator{t: t, tx: tx, ctx: ctx}
	it.raOff = t.cfg.NoReadahead || t.cfg.Ablated()
	it.load(start)
	return it
}

// load fetches the leaf containing key and positions at the first cell
// >= key.
func (it *Iterator) load(key []byte) {
	for {
		li, ok := it.takeReadahead(key)
		if !ok {
			var err error
			li, err = it.t.descend(it.ctx, it.tx, key, tailWindow(key))
			if err != nil {
				it.err = err
				it.done = true
				return
			}
		}
		leaf := li.node
		it.cells = leaf.Cells
		// First cell >= key.
		lo, hi := 0, len(it.cells)
		for lo < hi {
			mid := (lo + hi) / 2
			if compare(it.cells[mid].Key, key) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		it.pos = lo
		if leaf.HighKey == nil {
			it.next = nil
		} else {
			it.next = append([]byte(nil), leaf.HighKey...)
		}
		it.maybeReadahead()
		if it.pos < len(it.cells) {
			return
		}
		// Empty tail in this leaf: move on, or finish.
		if it.next == nil {
			it.done = true
			return
		}
		key = it.next
	}
}

// maybeReadahead starts the prefetcher for the upcoming leaves, unless
// one is already running or the iterator must stay synchronous. Staged
// writes disable readahead for good: the prefetcher reads the bare
// snapshot, and from the first staged write on, every leaf must be
// overlaid through the transaction.
func (it *Iterator) maybeReadahead() {
	if it.ra != nil || it.raOff || it.next == nil {
		return
	}
	if it.tx.NumWrites() > 0 {
		it.raOff = true
		return
	}
	ctx, cancel := context.WithCancel(it.ctx)
	// Channel capacity plus the fetch in flight = ReadaheadLeaves (1–2)
	// leaves ahead of the consumer, at most.
	ch := make(chan raResult, it.t.cfg.ReadaheadLeaves-1)
	view := it.tx.View()
	t := it.t
	batch := it.t.cfg.ReadaheadLeaves
	go func(key []byte) {
		// deliver sends one prefetched leaf; false means the iterator is
		// gone (context cancelled) or the chain ended at this leaf.
		deliver := func(key []byte, li leafInfo, err error) bool {
			select {
			case ch <- raResult{key: key, li: li, err: err}:
			case <-ctx.Done():
				return false
			}
			return err == nil && li.node.HighKey != nil
		}
		for {
			// Fast path: when the inner-node cache can predict a run of
			// upcoming leaves on ONE server slot, fetch the whole run
			// with one batched RPC instead of one round trip per leaf.
			// The run is trimmed to the leading same-slot prefix because
			// batching pays off only by consolidating RPCs — a cross-slot
			// pair costs the same two RPCs either way, plus fan-out
			// overhead. Prediction is routing only — each fetched leaf is
			// fence-checked against the chain and the run is abandoned
			// (falling back to a validated descent) the moment a leaf is
			// missing, foreign, or no longer covers its fence key. Extra
			// cells a whole-leaf read returns below the fence are
			// harmless: the consumer positions by binary search inside
			// every leaf.
			if run := t.sameSlotPrefix(t.leafRunFromCache(key, batch)); len(run) >= 2 {
				items := make([]kv.ReadBatchItem, len(run))
				for i, oid := range run {
					items[i] = kv.ReadBatchItem{OID: oid}
				}
				t.stats.NodeReads.Add(uint64(len(items)))
				results, err := view.ReadBatch(ctx, items)
				if err != nil {
					// Transport trouble: let the synchronous path report it.
					deliver(key, leafInfo{}, err)
					return
				}
				advanced := false
				for i := range results {
					leaf := results[i].Value
					if !results[i].Found || leaf.Kind != kv.KindSuper ||
						leaf.Attrs[AttrTree] != t.id || leaf.Attrs[AttrHeight] != 0 ||
						!leaf.InBounds(key) {
						break
					}
					if !deliver(key, leafInfo{oid: run[i], node: leaf, total: leaf.NumCells()}, nil) {
						return
					}
					advanced = true
					key = append([]byte(nil), leaf.HighKey...)
				}
				if advanced {
					continue
				}
				// The first predicted leaf was already stale: descend.
			}
			li, err := t.descend(ctx, view, key, tailWindow(key))
			if !deliver(key, li, err) {
				return
			}
			key = append([]byte(nil), li.node.HighKey...)
		}
	}(it.next)
	it.ra = &readahead{cancel: cancel, ch: ch}
}

// takeReadahead consumes the prefetched leaf for key, if one is (or
// will shortly be) available and still usable. A miss of any kind —
// no prefetcher running, staged writes appeared (the prefetch carries
// no overlay), the prefetcher failed, or it answered a different fence
// key — shuts the pipeline down and sends the caller to the
// synchronous path, which recomputes the same leaf under the full
// overlay and back-down rules. Discarding is always safe: prefetched
// leaves are plain snapshot reads the synchronous descent reproduces
// byte for byte.
func (it *Iterator) takeReadahead(key []byte) (leafInfo, bool) {
	if it.ra == nil {
		return leafInfo{}, false
	}
	if it.tx.NumWrites() > 0 {
		it.stopReadahead()
		return leafInfo{}, false
	}
	var res raResult
	select {
	case res = <-it.ra.ch:
	case <-it.ctx.Done():
		it.stopReadahead()
		return leafInfo{}, false
	}
	if res.err != nil || !bytes.Equal(res.key, key) {
		it.stopReadahead()
		return leafInfo{}, false
	}
	if res.li.node.HighKey == nil {
		// Final leaf delivered; the prefetcher has already exited.
		it.stopReadahead()
	}
	return res.li, true
}

// stopReadahead tears the prefetcher down (it exits on the cancelled
// context even if parked on a send) and pins the iterator to the
// synchronous path.
func (it *Iterator) stopReadahead() {
	if it.ra != nil {
		it.ra.cancel()
		it.ra = nil
	}
	it.raOff = true
}

// Close releases the iterator's background resources. It is idempotent
// and safe on exhausted iterators; call it whenever an iterator may be
// abandoned before exhaustion (e.g. a LIMITed scan), or the prefetch
// goroutine lingers until the surrounding context ends.
func (it *Iterator) Close() {
	it.stopReadahead()
	it.done = true
}

// Valid reports whether the iterator is positioned at a cell.
func (it *Iterator) Valid() bool { return !it.done && it.err == nil }

// Err returns the first error the iterator encountered, if any.
func (it *Iterator) Err() error { return it.err }

// Key returns the current cell's key. Valid must be true.
func (it *Iterator) Key() []byte { return it.cells[it.pos].Key }

// Value returns the current cell's value. Valid must be true.
func (it *Iterator) Value() []byte { return it.cells[it.pos].Value }

// Next advances to the following cell, fetching the next leaf when the
// current one is exhausted.
func (it *Iterator) Next() {
	if it.done || it.err != nil {
		return
	}
	it.pos++
	if it.pos < len(it.cells) {
		return
	}
	if it.next == nil {
		it.done = true
		return
	}
	it.load(it.next)
}

// Scan collects up to limit cells starting at the first key >= start.
// A negative limit collects everything. It is a convenience wrapper
// over the iterator.
func (t *Tree) Scan(ctx context.Context, tx *kvclient.Tx, start []byte, limit int) ([]kv.Cell, error) {
	var out []kv.Cell
	it := t.NewIterator(ctx, tx, start)
	defer it.Close()
	for ; it.Valid(); it.Next() {
		if limit >= 0 && len(out) >= limit {
			break
		}
		out = append(out, kv.Cell{Key: it.Key(), Value: it.Value()})
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
