// Package dbt implements YDBT, Yesquel's distributed balanced tree —
// the paper's storage engine (box 2 in Figure 1). A tree is a B+-tree
// whose nodes are supervalues in the transactional key-value store, so
// every structural change (a split, a root grow) is an ordinary
// distributed transaction and is atomic by construction: "the Yesquel
// DBT uses transactions to atomically move data across DBT nodes".
//
// Performance mechanisms, each individually switchable for the ablation
// experiment (E5 in DESIGN.md):
//
//   - Client-side caching of inner nodes. Descents consult the cache
//     without any server communication; only the leaf is read
//     transactionally.
//   - Back-down searches. Cached nodes may be stale; the leaf's fence
//     keys expose staleness, and the search invalidates the cached path
//     and descends again with transactional reads.
//   - Delta operations. Inserts and deletes stage one-cell supervalue
//     deltas (ListAdd / ListDelRange) instead of rewriting the node.
//   - Delegated (asynchronous) splits. Writers enqueue oversized
//     leaves; a splitter goroutine splits them in separate
//     transactions, off the insert's critical path.
//
// # Scan readahead
//
// Iterators additionally pipeline leaf fetches: while the consumer
// drains the current leaf, a background goroutine resolves the next
// leaf by its fence key (Config.ReadaheadLeaves bounds how far ahead).
// When the inner-node cache can predict the run of upcoming leaves,
// the prefetcher fetches the whole run with one batched RPC
// (MethodReadBatch) instead of one round trip per leaf, validating
// each leaf's fences against the chain and falling back to an ordinary
// descent on any staleness.
// The prefetch reads a concurrency-safe snapshot view at the owning
// transaction's timestamp — plain MVCC snapshot reads, never the
// transaction itself — so a prefetched leaf is byte-identical to what
// a synchronous descent would have returned, and always safe to
// discard: stale-cache back-downs, prefetch errors, and staged writes
// appearing mid-scan all just fall back to the synchronous path.
// Readahead is off under NoReadahead and whenever an ablation switch
// is active (Ablated), since ablation baselines must measure the
// un-pipelined path.
package dbt

import "yesquel/internal/kv"

// Supervalue attribute slots used for tree nodes.
const (
	// AttrHeight is 0 for leaves and grows toward the root.
	AttrHeight = 0
	// AttrNext holds the OID of the leaf to the right (0 = none); kept
	// for diagnostics, scans navigate by fence keys.
	AttrNext = 1
	// AttrTree holds the tree id, for integrity checking.
	AttrTree = 2
)

// Config tunes one tree handle. The zero value gives the full Yesquel
// behaviour with default sizes.
type Config struct {
	// MaxCells is the split threshold: a node holding more cells gets
	// split. Default 128.
	MaxCells int

	// NoCache disables the client-side inner-node cache: every descent
	// reads every level transactionally (ablation a).
	NoCache bool

	// NoDelta disables delta operations: updates read the whole leaf
	// and write it back with Put (ablation b).
	NoDelta bool

	// NoPartial disables partial node reads: every leaf access ships
	// the whole node over the network instead of just the cells the
	// operation needs (ablation d).
	NoPartial bool

	// SyncSplit makes the writer split oversized leaves synchronously
	// after its transaction commits, instead of delegating to the
	// background splitter (ablation c). Tests also use it for
	// determinism.
	SyncSplit bool

	// Placement picks the server slot for a newly created node, given
	// the number of servers. Nil defaults to round-robin, which spreads
	// the tree across the cluster — the paper's reason for
	// distribution: "to scale the performance of the DBT".
	Placement func(numServers int) uint16

	// MaxDescentRetries bounds back-down retries before the search
	// gives up caching entirely. Default 6.
	MaxDescentRetries int

	// ReadaheadLeaves bounds how many leaves ahead of the consumer a
	// scan iterator may prefetch (see the package doc's "Scan
	// readahead" section). It is also the batching depth: when the
	// inner-node cache can predict a run of that many upcoming leaves,
	// the prefetcher fetches the run with one batched RPC. Default 2
	// (set 1 for a strictly leaf-at-a-time pipeline); clamped to at
	// most 2 — deeper pipelines would only pile up leaves the consumer
	// hasn't asked for yet.
	ReadaheadLeaves int

	// NoReadahead disables scan readahead: the iterator fetches every
	// leaf synchronously when the consumer reaches it. Also implied by
	// any ablation switch (Ablated).
	NoReadahead bool

	// CacheMaxNodes caps the inner-node cache in entries. When full,
	// admitting a fresh node evicts a random resident one — eviction
	// order does not matter for correctness (stale entries are caught
	// by fence checks either way), so cheap beats clever. Default
	// 4096; negative = unlimited.
	CacheMaxNodes int
}

func (c Config) withDefaults() Config {
	if c.MaxCells == 0 {
		c.MaxCells = 128
	}
	if c.MaxDescentRetries == 0 {
		c.MaxDescentRetries = 6
	}
	if c.ReadaheadLeaves <= 0 {
		c.ReadaheadLeaves = 2
	}
	if c.ReadaheadLeaves > 2 {
		c.ReadaheadLeaves = 2
	}
	if c.CacheMaxNodes == 0 {
		c.CacheMaxNodes = 4096
	}
	return c
}

// Ablated reports whether any of the paper's ablation switches is
// active. Scan readahead turns itself off then: the ablation
// experiments measure the cost of each mechanism in isolation, and a
// pipelined leaf fetch would mask exactly the serialization they are
// trying to expose.
func (c Config) Ablated() bool {
	return c.NoCache || c.NoDelta || c.NoPartial || c.SyncSplit
}

// NaiveConfig returns the configuration of the naive-DBT baseline used
// in the ablation benchmarks: no caching, no deltas, no partial reads,
// writer-side splits. Every descent reads every level, whole, over the
// network.
func NaiveConfig() Config {
	return Config{NoCache: true, NoDelta: true, NoPartial: true, SyncSplit: true}
}

// RootOID returns the well-known OID of the root node of tree id for a
// cluster with numServers servers. Roots use a reserved local-id range
// (top local bit set) so they never collide with allocated node ids.
//
// numServers must be stable for a given cluster or different clients
// would disagree on where tree roots live. Client.NumServers provides
// that stability: once a slot directory is adopted it reports the
// directory's route count, which is frozen at cluster formation —
// scale-out repoints routes to new groups without changing the count,
// so root OIDs (and Placement results) stay valid across migrations.
func RootOID(id uint64, numServers int) kv.OID {
	slot := uint16(id % uint64(numServers))
	return kv.MakeOID(slot, 1<<46|id&((1<<46)-1))
}
