package dbt

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
)

// Errors returned by tree operations.
var (
	// ErrKeyNotFound reports a Get or Delete of an absent key.
	ErrKeyNotFound = errors.New("dbt: key not found")
	// ErrTreeNotFound reports opening a tree whose root does not exist.
	ErrTreeNotFound = errors.New("dbt: tree not found")
	// errStale is an internal signal that a descent followed stale
	// routing information and must back down.
	errStale = errors.New("dbt: stale descent")
)

// Stats counts tree-level activity for one handle.
type Stats struct {
	Descents      atomic.Uint64
	BackDowns     atomic.Uint64 // descents retried due to stale cache
	CacheHits     atomic.Uint64 // inner-node reads served from cache
	NodeReads     atomic.Uint64 // transactional node reads (RPC)
	SplitsDone    atomic.Uint64
	SplitConflict atomic.Uint64
}

// StatsSnapshot is a plain copy of the counters. Evictions counts
// inner-node cache entries displaced by the CacheMaxNodes bound.
type StatsSnapshot struct {
	Descents, BackDowns, CacheHits, NodeReads, SplitsDone, SplitConflict uint64
	Evictions                                                            uint64
}

// nodeReader is the read capability a descent needs. *kvclient.Tx
// satisfies it (reads overlay the transaction's staged writes); so
// does *kvclient.ReadView, which is what lets the scan readahead
// prefetch leaves from a plain goroutine — a ReadView reads the same
// MVCC snapshot with no overlay and is safe for concurrent use, while
// a Tx is not.
type nodeReader interface {
	Read(ctx context.Context, oid kv.OID) (*kv.Value, error)
	ReadPart(ctx context.Context, oid kv.OID, from, to []byte, max uint32) (*kv.Value, int, error)
}

// Tree is a client handle to one distributed balanced tree. Handles are
// safe for concurrent use; each operation runs inside a caller-supplied
// kv transaction, so one SQL statement can touch many trees atomically.
type Tree struct {
	c    *kvclient.Client
	id   uint64
	root kv.OID
	cfg  Config

	cache    *nodeCache
	stats    Stats
	place    atomic.Uint64 // round-robin placement counter
	splitter *splitter
}

// Create writes an empty tree with the given id and returns a handle to
// it. The root starts as an empty leaf covering the whole key space.
func Create(ctx context.Context, c *kvclient.Client, id uint64, cfg Config) (*Tree, error) {
	t := newTree(c, id, cfg)
	root := kv.NewSuper()
	root.Attrs[AttrHeight] = 0
	root.Attrs[AttrTree] = id
	root.LowKey = []byte{} // "" is the minimum key: unbounded below
	root.HighKey = nil     // unbounded above
	tx := c.Begin()
	tx.Put(t.root, root)
	if err := tx.Commit(ctx); err != nil {
		return nil, fmt.Errorf("dbt: creating tree %d: %w", id, err)
	}
	t.startSplitter()
	return t, nil
}

// Open returns a handle to an existing tree, verifying the root exists.
func Open(ctx context.Context, c *kvclient.Client, id uint64, cfg Config) (*Tree, error) {
	t := newTree(c, id, cfg)
	tx := c.Begin()
	if _, err := tx.Read(ctx, t.root); err != nil {
		if errors.Is(err, kv.ErrNotFound) {
			return nil, ErrTreeNotFound
		}
		return nil, err
	}
	t.startSplitter()
	return t, nil
}

// OpenUnchecked returns a handle without verifying the root exists.
// Used when the tree's root was created inside a not-yet-committed
// transaction (e.g. CREATE INDEX backfill): operations through that
// transaction see the staged root, while a fresh verification
// transaction would not.
func OpenUnchecked(c *kvclient.Client, id uint64, cfg Config) (*Tree, error) {
	t := newTree(c, id, cfg)
	t.startSplitter()
	return t, nil
}

func newTree(c *kvclient.Client, id uint64, cfg Config) *Tree {
	return &Tree{
		c:     c,
		id:    id,
		root:  RootOID(id, c.NumServers()),
		cfg:   cfg.withDefaults(),
		cache: newNodeCache(cfg.withDefaults().CacheMaxNodes),
	}
}

// ID returns the tree id.
func (t *Tree) ID() uint64 { return t.id }

// Client returns the underlying kv client.
func (t *Tree) Client() *kvclient.Client { return t.c }

// Close stops the background splitter. The tree data is unaffected.
func (t *Tree) Close() {
	if t.splitter != nil {
		t.splitter.stop()
	}
}

// Stats returns a snapshot of the handle's counters.
func (t *Tree) Stats() StatsSnapshot {
	return StatsSnapshot{
		Descents:      t.stats.Descents.Load(),
		BackDowns:     t.stats.BackDowns.Load(),
		CacheHits:     t.stats.CacheHits.Load(),
		NodeReads:     t.stats.NodeReads.Load(),
		SplitsDone:    t.stats.SplitsDone.Load(),
		SplitConflict: t.stats.SplitConflict.Load(),
		Evictions:     t.cache.evicted.Load(),
	}
}

// CacheSize reports the number of cached inner nodes (tests).
func (t *Tree) CacheSize() int { return t.cache.len() }

// ClearCache drops the inner-node cache (tests and ablations).
func (t *Tree) ClearCache() { t.cache.clear() }

// newNodeOID mints an OID for a fresh node, choosing its server with
// the placement policy.
func (t *Tree) newNodeOID() kv.OID {
	n := t.c.NumServers()
	var slot uint16
	if t.cfg.Placement != nil {
		slot = t.cfg.Placement(n)
	} else {
		slot = uint16(t.place.Add(1) % uint64(n))
	}
	return t.c.NewOID(slot)
}

// childOID decodes the child pointer stored in an inner-node cell.
func childOID(cell kv.Cell) (kv.OID, error) {
	if len(cell.Value) != 8 {
		return 0, fmt.Errorf("dbt: corrupt child pointer (%d bytes)", len(cell.Value))
	}
	return kv.OID(binary.BigEndian.Uint64(cell.Value)), nil
}

// encodeChild encodes a child pointer for an inner-node cell.
func encodeChild(oid kv.OID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(oid))
	return b[:]
}

// childFor routes key through inner node v: the child is the cell with
// the greatest key <= search key (cell keys are the children's
// inclusive lower bounds).
func childFor(v *kv.Value, key []byte) (kv.OID, error) {
	idx, found := cellFloor(v, key)
	if idx < 0 {
		return 0, fmt.Errorf("%w: key below first separator", errStale)
	}
	_ = found
	return childOID(v.Cells[idx])
}

// cellFloor returns the index of the last cell with Key <= key, or -1.
func cellFloor(v *kv.Value, key []byte) (int, bool) {
	// cellIndex-equivalent search over the sorted cells.
	lo, hi := 0, len(v.Cells)
	for lo < hi {
		mid := (lo + hi) / 2
		if compare(v.Cells[mid].Key, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return -1, false
	}
	idx := lo - 1
	return idx, compare(v.Cells[idx].Key, key) == 0
}

func compare(a, b []byte) int { return bytes.Compare(a, b) }

// window describes which cells of the leaf a descent actually needs.
// Point operations request a single-key window; iterators request a
// tail; full forces whole-node reads (NoDelta rewrites, ablations).
type window struct {
	from, to []byte
	max      uint32
	full     bool
}

func pointWindow(key []byte) window {
	// Max 2: the floor cell (possibly the predecessor) plus the key's
	// own cell.
	return window{from: key, to: upperBoundExclusive(key), max: 2}
}

func tailWindow(start []byte) window { return window{from: start} }

// leafInfo is the result of a descent: the leaf (possibly a windowed
// view of it) and its total cell count for split heuristics.
type leafInfo struct {
	oid   kv.OID
	node  *kv.Value
	total int
}

// descend is the core search. It walks from the root to the leaf whose
// fence interval contains key, using cached inner nodes when allowed
// and validating at the leaf. On stale routing (fence miss, dangling
// pointer) it invalidates the cached path and retries — the back-down
// search. The final cache-free attempt is guaranteed to terminate
// because transactional reads see a consistent snapshot of the tree.
// Leaf reads fetch only the requested window unless the configuration
// disables partial reads.
func (t *Tree) descend(ctx context.Context, r nodeReader, key []byte, win window) (leafInfo, error) {
	t.stats.Descents.Add(1)
	maxAttempts := t.cfg.MaxDescentRetries
	for attempt := 0; attempt < maxAttempts; attempt++ {
		// The last two attempts bypass the cache entirely.
		useCache := !t.cfg.NoCache && attempt < maxAttempts-2
		li, err := t.descendOnce(ctx, r, key, win, useCache)
		if err == nil {
			return li, nil
		}
		if !errors.Is(err, errStale) {
			return leafInfo{}, err
		}
		t.stats.BackDowns.Add(1)
	}
	return leafInfo{}, fmt.Errorf("dbt: descent for key %q did not converge", key)
}

// readNode fetches cur, windowed when the caller expects a leaf and the
// configuration allows. It returns the node and its total cell count.
func (t *Tree) readNode(ctx context.Context, r nodeReader, cur kv.OID, win window, expectLeaf bool) (*kv.Value, int, error) {
	t.stats.NodeReads.Add(1)
	if expectLeaf && !win.full && !t.cfg.NoPartial {
		node, total, err := r.ReadPart(ctx, cur, win.from, win.to, win.max)
		return node, total, err
	}
	node, err := r.Read(ctx, cur)
	if err != nil {
		return nil, 0, err
	}
	return node, node.NumCells(), nil
}

func (t *Tree) descendOnce(ctx context.Context, r nodeReader, key []byte, win window, useCache bool) (leafInfo, error) {
	cur := t.root
	var path []kv.OID
	expectLeaf := false // unknown height at the root: read it whole
	const maxDepth = 64
	for depth := 0; depth < maxDepth; depth++ {
		var node *kv.Value
		total := 0
		fromCache := false
		partial := false
		if useCache {
			if v, ok := t.cache.get(cur); ok {
				node = v
				total = v.NumCells()
				fromCache = true
				t.stats.CacheHits.Add(1)
			}
		}
		if node == nil {
			v, n, err := t.readNode(ctx, r, cur, win, expectLeaf)
			if err != nil {
				if errors.Is(err, kv.ErrNotFound) {
					// Dangling pointer: the node was moved by a split
					// newer than our routing information.
					t.cache.invalidate(append(path, cur)...)
					return leafInfo{}, fmt.Errorf("%w: dangling node %v", errStale, cur)
				}
				return leafInfo{}, err
			}
			node, total = v, n
			partial = expectLeaf && !win.full && !t.cfg.NoPartial
		}
		if node.Kind != kv.KindSuper || node.Attrs[AttrTree] != t.id {
			t.cache.invalidate(append(path, cur)...)
			return leafInfo{}, fmt.Errorf("%w: foreign node %v", errStale, cur)
		}
		if node.Attrs[AttrHeight] == 0 {
			// Leaf: always read transactionally, and the fence check is
			// what validates the whole (possibly stale) cached path.
			if fromCache {
				// Leaves are never cached; a cached leaf means the node
				// shrank from inner to leaf under an old OID — treat as
				// stale routing.
				t.cache.invalidate(append(path, cur)...)
				return leafInfo{}, fmt.Errorf("%w: cached node became leaf", errStale)
			}
			if !node.InBounds(key) {
				t.cache.invalidate(append(path, cur)...)
				return leafInfo{}, fmt.Errorf("%w: leaf fence miss", errStale)
			}
			return leafInfo{oid: cur, node: node, total: total}, nil
		}
		// Inner node. Freshly full-read nodes are validated by their
		// own fences and enter the cache; windowed reads that turned
		// out to be inner nodes still route via their floor cell but
		// are not cacheable.
		if !fromCache {
			if !node.InBounds(key) {
				t.cache.invalidate(append(path, cur)...)
				return leafInfo{}, fmt.Errorf("%w: inner fence miss", errStale)
			}
			if useCache && !partial {
				t.cache.put(cur, node)
			}
		}
		child, err := childFor(node, key)
		if err != nil {
			t.cache.invalidate(append(path, cur)...)
			return leafInfo{}, err
		}
		path = append(path, cur)
		cur = child
		expectLeaf = node.Attrs[AttrHeight] == 1
	}
	t.cache.clear()
	return leafInfo{}, fmt.Errorf("%w: descent exceeded max depth", errStale)
}

// Get returns the value stored under key, as seen by tx's snapshot
// (including tx's own buffered writes).
func (t *Tree) Get(ctx context.Context, tx *kvclient.Tx, key []byte) ([]byte, error) {
	li, err := t.descend(ctx, tx, key, pointWindow(key))
	if err != nil {
		return nil, err
	}
	v, ok := li.node.ListGet(key)
	if !ok {
		return nil, ErrKeyNotFound
	}
	return v, nil
}

// Put inserts or replaces key's value within tx. The write is staged as
// a one-cell delta (unless NoDelta), so committing it costs no
// read-modify-write of the leaf.
func (t *Tree) Put(ctx context.Context, tx *kvclient.Tx, key, value []byte) error {
	win := pointWindow(key)
	if t.cfg.NoDelta {
		win.full = true // rewriting the node needs all of it
	}
	li, err := t.descend(ctx, tx, key, win)
	if err != nil {
		return err
	}
	if t.cfg.NoDelta {
		// Ablation: rewrite the whole leaf.
		clone := li.node.Clone()
		clone.ListAdd(key, value)
		tx.Put(li.oid, clone)
	} else {
		tx.ListAdd(li.oid, key, value)
	}
	if li.total+1 > t.cfg.MaxCells {
		t.noteOversized(li.oid)
	}
	return nil
}

// Delete removes key within tx. Deleting an absent key returns
// ErrKeyNotFound (and stages nothing).
func (t *Tree) Delete(ctx context.Context, tx *kvclient.Tx, key []byte) error {
	win := pointWindow(key)
	if t.cfg.NoDelta {
		win.full = true
	}
	li, err := t.descend(ctx, tx, key, win)
	if err != nil {
		return err
	}
	if _, ok := li.node.ListGet(key); !ok {
		return ErrKeyNotFound
	}
	if t.cfg.NoDelta {
		clone := li.node.Clone()
		clone.ListDelRange(key, upperBoundExclusive(key))
		tx.Put(li.oid, clone)
	} else {
		tx.ListDelRange(li.oid, key, upperBoundExclusive(key))
	}
	return nil
}

// upperBoundExclusive returns the smallest key greater than key, so
// [key, bound) covers exactly key.
func upperBoundExclusive(key []byte) []byte {
	out := make([]byte, len(key)+1)
	copy(out, key)
	return out
}
