package dbt

import (
	"context"
	"errors"

	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
)

// GetBatch returns the values stored under keys, as seen by tx's
// snapshot (including tx's own buffered writes). Results are
// positional; an absent key yields a nil entry rather than an error —
// multi-key lookups routinely include misses.
//
// Keys whose leaf the inner-node cache can predict are served with one
// batched point-window read per server slot (kvclient.Tx.ReadBatch),
// turning the N serial leaf round trips of N Gets into a handful of
// parallel RPCs. The prediction is only routing: each returned leaf is
// validated against its fences exactly like a descent validates, and
// any key the cache cannot place — or whose predicted leaf turns out
// stale — falls back to an ordinary Get, whose back-down search
// repairs the cache.
func (t *Tree) GetBatch(ctx context.Context, tx *kvclient.Tx, keys [][]byte) ([][]byte, error) {
	out := make([][]byte, len(keys))
	var (
		items   []kv.ReadBatchItem
		itemKey []int // items[j] serves keys[itemKey[j]]
		syncIdx []int
	)
	useBatch := !t.cfg.NoCache && !t.cfg.NoPartial
	for i, key := range keys {
		if useBatch {
			if oid, ok := t.leafFromCache(key); ok {
				win := pointWindow(key)
				items = append(items, kv.ReadBatchItem{OID: oid, Part: true, From: win.from, To: win.to, Max: win.max})
				itemKey = append(itemKey, i)
				continue
			}
		}
		syncIdx = append(syncIdx, i)
	}
	if len(items) > 0 {
		t.stats.NodeReads.Add(uint64(len(items)))
		results, err := tx.ReadBatch(ctx, items)
		if err != nil {
			return nil, err
		}
		for j := range results {
			res := &results[j]
			i := itemKey[j]
			key := keys[i]
			leaf := res.Value
			if !res.Found || leaf.Kind != kv.KindSuper || leaf.Attrs[AttrTree] != t.id ||
				leaf.Attrs[AttrHeight] != 0 || !leaf.InBounds(key) {
				// Stale routing (the leaf split, moved, or grew into an
				// inner node since it was cached): back down to a full
				// descent for this key.
				syncIdx = append(syncIdx, i)
				continue
			}
			if v, ok := leaf.ListGet(key); ok {
				out[i] = v
			}
		}
	}
	for _, i := range syncIdx {
		v, err := t.Get(ctx, tx, keys[i])
		if err != nil {
			if errors.Is(err, ErrKeyNotFound) {
				continue
			}
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// leafRunFromCache routes key through cached inner nodes to its
// height-1 parent and returns the run of consecutive child leaf OIDs
// starting at the one that should hold key, up to n. The run stops at
// the parent's last child — crossing into the next parent would need
// another cached route, and the caller re-predicts from the following
// fence key anyway. Like leafFromCache, a non-empty answer is routing
// only: the caller validates the fetched leaves' fences and falls back
// to a descent when the route turns out stale. Returns nil when any
// level of the path is uncached.
func (t *Tree) leafRunFromCache(key []byte, n int) []kv.OID {
	cur := t.root
	const maxDepth = 64
	for depth := 0; depth < maxDepth; depth++ {
		v, ok := t.cache.get(cur)
		if !ok {
			return nil
		}
		if v.Kind != kv.KindSuper || v.Attrs[AttrTree] != t.id || v.Attrs[AttrHeight] == 0 {
			return nil
		}
		idx, _ := cellFloor(v, key)
		if idx < 0 {
			return nil
		}
		if v.Attrs[AttrHeight] == 1 {
			run := make([]kv.OID, 0, n)
			for ; idx < len(v.Cells) && len(run) < n; idx++ {
				oid, err := childOID(v.Cells[idx])
				if err != nil {
					return nil
				}
				run = append(run, oid)
			}
			return run
		}
		child, err := childFor(v, key)
		if err != nil {
			return nil
		}
		cur = child
	}
	return nil
}

// sameSlotPrefix trims run to its leading same-server prefix.
func (t *Tree) sameSlotPrefix(run []kv.OID) []kv.OID {
	if len(run) == 0 {
		return run
	}
	slot := t.c.ServerFor(run[0])
	for i := 1; i < len(run); i++ {
		if t.c.ServerFor(run[i]) != slot {
			return run[:i]
		}
	}
	return run
}

// leafFromCache routes key through cached inner nodes only, returning
// the OID of the leaf that SHOULD hold it. ok is false when any level
// of the path is uncached or the cached route is unusable; a true
// result may still be stale — callers validate the fetched leaf's
// fences and back down, exactly as a descent would.
func (t *Tree) leafFromCache(key []byte) (kv.OID, bool) {
	cur := t.root
	const maxDepth = 64
	for depth := 0; depth < maxDepth; depth++ {
		v, ok := t.cache.get(cur)
		if !ok {
			return 0, false
		}
		// Cached nodes are inner by construction, but the tree id and a
		// positive height are re-checked before trusting the route.
		if v.Kind != kv.KindSuper || v.Attrs[AttrTree] != t.id || v.Attrs[AttrHeight] == 0 {
			return 0, false
		}
		child, err := childFor(v, key)
		if err != nil {
			return 0, false
		}
		if v.Attrs[AttrHeight] == 1 {
			return child, true
		}
		cur = child
	}
	return 0, false
}
