package dbt_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"yesquel/internal/cluster"
	"yesquel/internal/dbt"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
)

func startTree(t *testing.T, servers int, cfg dbt.Config) (*cluster.Cluster, *kvclient.Client, *dbt.Tree) {
	t.Helper()
	cl, err := cluster.Start(servers, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	tree, err := dbt.Create(context.Background(), c, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	return cl, c, tree
}

// putAuto inserts in an auto-commit transaction, retrying conflicts
// (splits race with writers by design).
func putAuto(t *testing.T, c *kvclient.Client, tree *dbt.Tree, key, value string) {
	t.Helper()
	ctx := context.Background()
	for i := 0; ; i++ {
		tx := c.Begin()
		if err := tree.Put(ctx, tx, []byte(key), []byte(value)); err != nil {
			tx.Abort()
			t.Fatalf("Put %q: %v", key, err)
		}
		err := tx.Commit(ctx)
		if err == nil {
			return
		}
		if !errors.Is(err, kv.ErrConflict) || i > 20 {
			t.Fatalf("Put %q commit: %v", key, err)
		}
	}
}

func getAuto(t *testing.T, c *kvclient.Client, tree *dbt.Tree, key string) (string, bool) {
	t.Helper()
	ctx := context.Background()
	tx := c.Begin()
	defer tx.Abort()
	v, err := tree.Get(ctx, tx, []byte(key))
	if errors.Is(err, dbt.ErrKeyNotFound) {
		return "", false
	}
	if err != nil {
		t.Fatalf("Get %q: %v", key, err)
	}
	return string(v), true
}

func TestPutGetSmall(t *testing.T) {
	_, c, tree := startTree(t, 1, dbt.Config{SyncSplit: true})
	putAuto(t, c, tree, "hello", "world")
	putAuto(t, c, tree, "foo", "bar")
	if v, ok := getAuto(t, c, tree, "hello"); !ok || v != "world" {
		t.Fatalf("get hello: %q %v", v, ok)
	}
	if v, ok := getAuto(t, c, tree, "foo"); !ok || v != "bar" {
		t.Fatalf("get foo: %q %v", v, ok)
	}
	if _, ok := getAuto(t, c, tree, "missing"); ok {
		t.Fatal("missing key found")
	}
	// Overwrite.
	putAuto(t, c, tree, "hello", "mundo")
	if v, _ := getAuto(t, c, tree, "hello"); v != "mundo" {
		t.Fatalf("overwrite: %q", v)
	}
}

func TestDelete(t *testing.T) {
	_, c, tree := startTree(t, 1, dbt.Config{SyncSplit: true})
	ctx := context.Background()
	putAuto(t, c, tree, "a", "1")
	putAuto(t, c, tree, "b", "2")

	tx := c.Begin()
	if err := tree.Delete(ctx, tx, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := getAuto(t, c, tree, "a"); ok {
		t.Fatal("deleted key still present")
	}
	if _, ok := getAuto(t, c, tree, "b"); !ok {
		t.Fatal("unrelated key vanished")
	}
	// Deleting an absent key reports ErrKeyNotFound.
	tx = c.Begin()
	defer tx.Abort()
	if err := tree.Delete(ctx, tx, []byte("a")); !errors.Is(err, dbt.ErrKeyNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

// fillSequential inserts n keys k000000..k(n-1), committing each, and
// running synchronous maintenance so the tree actually splits.
func fillSequential(t *testing.T, c *kvclient.Client, tree *dbt.Tree, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		putAuto(t, c, tree, fmt.Sprintf("k%06d", i), fmt.Sprintf("v%d", i))
		if err := tree.MaintainNow(ctx); err != nil && !errors.Is(err, kv.ErrConflict) {
			t.Fatalf("MaintainNow: %v", err)
		}
	}
}

func TestSplitsSequentialInsert(t *testing.T) {
	_, c, tree := startTree(t, 1, dbt.Config{MaxCells: 8, SyncSplit: true})
	const n = 200
	fillSequential(t, c, tree, n)
	if tree.Stats().SplitsDone == 0 {
		t.Fatal("no splits happened with MaxCells=8 and 200 keys")
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%06d", i)
		if v, ok := getAuto(t, c, tree, key); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %s after splits: %q %v", key, v, ok)
		}
	}
}

func TestSplitsRandomInsertMultiServer(t *testing.T) {
	_, c, tree := startTree(t, 4, dbt.Config{MaxCells: 8, SyncSplit: true})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	keys := make(map[string]string)
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%08x", rng.Uint32())
		v := fmt.Sprintf("val-%d", i)
		keys[k] = v
		putAuto(t, c, tree, k, v)
		if i%10 == 0 {
			if err := tree.MaintainNow(ctx); err != nil && !errors.Is(err, kv.ErrConflict) {
				t.Fatal(err)
			}
		}
	}
	if err := tree.MaintainNow(ctx); err != nil && !errors.Is(err, kv.ErrConflict) {
		t.Fatal(err)
	}
	for k, v := range keys {
		if got, ok := getAuto(t, c, tree, k); !ok || got != v {
			t.Fatalf("get %s: %q %v (want %q)", k, got, ok, v)
		}
	}
}

func TestScanOrderedAfterSplits(t *testing.T) {
	_, c, tree := startTree(t, 2, dbt.Config{MaxCells: 6, SyncSplit: true})
	ctx := context.Background()
	const n = 150
	fillSequential(t, c, tree, n)

	tx := c.Begin()
	defer tx.Abort()
	cells, err := tree.Scan(ctx, tx, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != n {
		t.Fatalf("scan returned %d cells, want %d", len(cells), n)
	}
	for i := 1; i < len(cells); i++ {
		if bytes.Compare(cells[i-1].Key, cells[i].Key) >= 0 {
			t.Fatalf("scan out of order at %d: %q >= %q", i, cells[i-1].Key, cells[i].Key)
		}
	}
	if string(cells[0].Key) != "k000000" || string(cells[n-1].Key) != fmt.Sprintf("k%06d", n-1) {
		t.Fatalf("scan endpoints: %q .. %q", cells[0].Key, cells[n-1].Key)
	}
}

func TestScanFromMiddleAndLimit(t *testing.T) {
	_, c, tree := startTree(t, 1, dbt.Config{MaxCells: 6, SyncSplit: true})
	ctx := context.Background()
	fillSequential(t, c, tree, 100)

	tx := c.Begin()
	defer tx.Abort()
	cells, err := tree.Scan(ctx, tx, []byte("k000050"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 10 {
		t.Fatalf("limit: got %d", len(cells))
	}
	if string(cells[0].Key) != "k000050" {
		t.Fatalf("start: %q", cells[0].Key)
	}
	// Start between keys.
	cells, err = tree.Scan(ctx, tx, []byte("k000050x"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(cells[0].Key) != "k000051" {
		t.Fatalf("between keys: %q", cells[0].Key)
	}
	// Start beyond the end.
	cells, err = tree.Scan(ctx, tx, []byte("zzz"), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Fatalf("past end: %d cells", len(cells))
	}
}

func TestScanSeesOwnWrites(t *testing.T) {
	_, c, tree := startTree(t, 1, dbt.Config{SyncSplit: true})
	ctx := context.Background()
	putAuto(t, c, tree, "b", "committed")

	tx := c.Begin()
	defer tx.Abort()
	if err := tree.Put(ctx, tx, []byte("a"), []byte("own")); err != nil {
		t.Fatal(err)
	}
	cells, err := tree.Scan(ctx, tx, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || string(cells[0].Key) != "a" || string(cells[1].Key) != "b" {
		t.Fatalf("own write not in scan: %v", cells)
	}
}

func TestSnapshotScanDuringSplit(t *testing.T) {
	// A scan at an old snapshot must see the pre-split tree even after
	// splits rearrange the nodes (MVCC protects structural changes).
	_, c, tree := startTree(t, 2, dbt.Config{MaxCells: 8, SyncSplit: true})
	ctx := context.Background()
	fillSequential(t, c, tree, 20)

	// Freeze a snapshot, then grow the tree massively.
	snapTx := c.BeginAt(c.Clock().Now())
	fillSequential(t, c, tree, 200) // re-inserts 0..199, overwriting 0..19

	cells, err := tree.Scan(ctx, snapTx, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 20 {
		t.Fatalf("old snapshot scan: %d cells, want 20", len(cells))
	}
}

func TestCacheEffectiveness(t *testing.T) {
	_, c, tree := startTree(t, 1, dbt.Config{MaxCells: 8, SyncSplit: true})
	fillSequential(t, c, tree, 200)

	// Warm: one lookup per key. Descents should mostly hit the cache
	// for inner nodes, reading only the leaf.
	before := tree.Stats()
	for i := 0; i < 200; i++ {
		getAuto(t, c, tree, fmt.Sprintf("k%06d", i))
	}
	after := tree.Stats()
	reads := after.NodeReads - before.NodeReads
	descents := after.Descents - before.Descents
	if descents != 200 {
		t.Fatalf("descents = %d", descents)
	}
	// Allow some slack for back-downs, but on a warm cache the read
	// amplification must be far below the tree height.
	if reads > 250 {
		t.Fatalf("warm-cache lookups did %d node reads for 200 descents", reads)
	}
	if after.CacheHits == before.CacheHits {
		t.Fatal("cache never hit")
	}
}

func TestNoCacheAblation(t *testing.T) {
	_, c, tree := startTree(t, 1, dbt.Config{MaxCells: 8, SyncSplit: true, NoCache: true})
	fillSequential(t, c, tree, 100)
	before := tree.Stats()
	for i := 0; i < 50; i++ {
		getAuto(t, c, tree, fmt.Sprintf("k%06d", i))
	}
	after := tree.Stats()
	if after.CacheHits != before.CacheHits {
		t.Fatal("NoCache still hit the cache")
	}
	// Every descent reads every level: strictly more than one read per
	// lookup on a multi-level tree.
	reads := after.NodeReads - before.NodeReads
	if reads <= 50 {
		t.Fatalf("NoCache lookups did only %d reads for 50 descents on a split tree", reads)
	}
}

func TestNoDeltaAblation(t *testing.T) {
	_, c, tree := startTree(t, 1, dbt.Config{SyncSplit: true, NoDelta: true})
	putAuto(t, c, tree, "k", "v")
	if v, ok := getAuto(t, c, tree, "k"); !ok || v != "v" {
		t.Fatalf("NoDelta put/get: %q %v", v, ok)
	}
	putAuto(t, c, tree, "k", "v2")
	if v, _ := getAuto(t, c, tree, "k"); v != "v2" {
		t.Fatalf("NoDelta overwrite: %q", v)
	}
	ctx := context.Background()
	tx := c.Begin()
	if err := tree.Delete(ctx, tx, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := getAuto(t, c, tree, "k"); ok {
		t.Fatal("NoDelta delete failed")
	}
}

func TestStaleCacheAcrossClients(t *testing.T) {
	// Client A caches the tree, client B splits it; A's next operations
	// must back down and still find every key.
	cl, cA, tree := startTree(t, 2, dbt.Config{MaxCells: 8, SyncSplit: true})
	fillSequential(t, cA, tree, 30)

	// Warm A's cache.
	for i := 0; i < 30; i++ {
		getAuto(t, cA, tree, fmt.Sprintf("k%06d", i))
	}

	// Client B grows the tree a lot, forcing many splits.
	cB, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cB.Close()
	treeB, err := dbt.Open(context.Background(), cB, 1, dbt.Config{MaxCells: 8, SyncSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer treeB.Close()
	fillSequential(t, cB, treeB, 300)

	// A (stale cache) must still find everything via back-down.
	for i := 0; i < 300; i += 7 {
		key := fmt.Sprintf("k%06d", i)
		if v, ok := getAuto(t, cA, tree, key); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("stale client get %s: %q %v", key, v, ok)
		}
	}
	if tree.Stats().BackDowns == 0 {
		t.Fatal("expected back-downs after foreign splits")
	}
}

func TestConcurrentWritersBackgroundSplitter(t *testing.T) {
	_, c, tree := startTree(t, 4, dbt.Config{MaxCells: 16}) // async splitter
	ctx := context.Background()
	const workers = 4
	const perWorker = 100
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-%06d", w, i)
				for attempt := 0; ; attempt++ {
					tx := c.Begin()
					err := tree.Put(ctx, tx, []byte(key), []byte("x"))
					if err == nil {
						err = tx.Commit(ctx)
					} else {
						tx.Abort()
					}
					if err == nil {
						break
					}
					if !errors.Is(err, kv.ErrConflict) || attempt > 50 {
						errCh <- fmt.Errorf("put %s: %w", key, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// Everything must be present and ordered.
	tx := c.Begin()
	defer tx.Abort()
	cells, err := tree.Scan(ctx, tx, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != workers*perWorker {
		t.Fatalf("scan found %d keys, want %d", len(cells), workers*perWorker)
	}
	if !sort.SliceIsSorted(cells, func(i, j int) bool {
		return bytes.Compare(cells[i].Key, cells[j].Key) < 0
	}) {
		t.Fatal("scan out of order")
	}
}

func TestMultiTreeTransaction(t *testing.T) {
	// One transaction spanning two trees (as a SQL statement updating a
	// table and its index does) must be atomic.
	cl, c, tree1 := startTree(t, 2, dbt.Config{SyncSplit: true})
	_ = cl
	ctx := context.Background()
	tree2, err := dbt.Create(ctx, c, 2, dbt.Config{SyncSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tree2.Close()

	tx := c.Begin()
	if err := tree1.Put(ctx, tx, []byte("row"), []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := tree2.Put(ctx, tx, []byte("index"), []byte("row")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if v, ok := getAuto(t, c, tree1, "row"); !ok || v != "data" {
		t.Fatalf("tree1: %q %v", v, ok)
	}
	if v, ok := getAuto(t, c, tree2, "index"); !ok || v != "row" {
		t.Fatalf("tree2: %q %v", v, ok)
	}
}

func TestOpenMissingTree(t *testing.T) {
	cl, err := cluster.Start(1, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := dbt.Open(context.Background(), c, 999, dbt.Config{}); !errors.Is(err, dbt.ErrTreeNotFound) {
		t.Fatalf("open missing tree: %v", err)
	}
}

func TestNodesDistributedAcrossServers(t *testing.T) {
	cl, c, tree := startTree(t, 4, dbt.Config{MaxCells: 8, SyncSplit: true})
	fillSequential(t, c, tree, 400)
	// After many splits, every server should hold some objects.
	for i, srv := range cl.Servers {
		if srv.Store().NumObjects() == 0 {
			t.Fatalf("server %d holds no nodes; placement not distributing", i)
		}
	}
	_ = tree
}

func TestEmptyTreeScanAndGet(t *testing.T) {
	_, c, tree := startTree(t, 1, dbt.Config{})
	ctx := context.Background()
	tx := c.Begin()
	defer tx.Abort()
	cells, err := tree.Scan(ctx, tx, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Fatalf("empty tree scan: %d", len(cells))
	}
	if _, err := tree.Get(ctx, tx, []byte("k")); !errors.Is(err, dbt.ErrKeyNotFound) {
		t.Fatalf("empty tree get: %v", err)
	}
}

func TestBinaryKeysAndValues(t *testing.T) {
	_, c, tree := startTree(t, 1, dbt.Config{SyncSplit: true})
	ctx := context.Background()
	keys := [][]byte{
		{},
		{0},
		{0, 0},
		{0xff},
		{0xff, 0xff, 0xff},
		[]byte("mixed\x00binary\xff"),
	}
	tx := c.Begin()
	for i, k := range keys {
		if err := tree.Put(ctx, tx, k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	tx = c.Begin()
	defer tx.Abort()
	for i, k := range keys {
		v, err := tree.Get(ctx, tx, k)
		if err != nil || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("binary key %x: %v %v", k, v, err)
		}
	}
	cells, err := tree.Scan(ctx, tx, nil, -1)
	if err != nil || len(cells) != len(keys) {
		t.Fatalf("scan: %d %v", len(cells), err)
	}
}

func TestQuickRandomOpsMatchModel(t *testing.T) {
	// Property test: random Put/Delete/Get/Scan against a map+sort
	// model, with small nodes to exercise splits heavily.
	_, c, tree := startTree(t, 2, dbt.Config{MaxCells: 4, SyncSplit: true})
	ctx := context.Background()
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(7))

	for step := 0; step < 400; step++ {
		k := fmt.Sprintf("k%03d", rng.Intn(120))
		switch rng.Intn(4) {
		case 0, 1: // put
			v := fmt.Sprintf("v%d", step)
			putAuto(t, c, tree, k, v)
			model[k] = v
		case 2: // delete
			tx := c.Begin()
			err := tree.Delete(ctx, tx, []byte(k))
			if errors.Is(err, dbt.ErrKeyNotFound) {
				tx.Abort()
				if _, ok := model[k]; ok {
					t.Fatalf("step %d: model has %s but tree does not", step, k)
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(ctx); err != nil {
				if errors.Is(err, kv.ErrConflict) {
					continue // deletion lost a race with a split; key stays
				}
				t.Fatal(err)
			}
			delete(model, k)
		case 3: // get
			want, wantOK := model[k]
			got, ok := getAuto(t, c, tree, k)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("step %d: get %s = %q,%v want %q,%v", step, k, got, ok, want, wantOK)
			}
		}
		if step%50 == 0 {
			if err := tree.MaintainNow(ctx); err != nil && !errors.Is(err, kv.ErrConflict) {
				t.Fatal(err)
			}
		}
	}
	if err := tree.MaintainNow(ctx); err != nil && !errors.Is(err, kv.ErrConflict) {
		t.Fatal(err)
	}

	// Final scan must equal the sorted model.
	var wantKeys []string
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	tx := c.Begin()
	defer tx.Abort()
	cells, err := tree.Scan(ctx, tx, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(wantKeys) {
		t.Fatalf("final scan %d keys, model %d", len(cells), len(wantKeys))
	}
	for i, k := range wantKeys {
		if string(cells[i].Key) != k || string(cells[i].Value) != model[k] {
			t.Fatalf("final scan[%d] = %q=%q, want %q=%q", i, cells[i].Key, cells[i].Value, k, model[k])
		}
	}
}
