package dbt

import (
	"sync"
	"sync/atomic"

	"yesquel/internal/kv"
)

// nodeCache holds inner nodes fetched by this client. Entries may be
// arbitrarily stale — the back-down search validates against leaf
// fences — so the cache needs no coherence protocol, which is what
// makes it cheap: a hit costs zero communication.
//
// The cache is bounded: admitting a node past maxNodes evicts a
// random resident entry first (Go's map iteration order serves as the
// random pick). Random replacement is deliberate — evicting the
// "wrong" node costs one extra transactional read on a later descent,
// never a wrong answer, so the bound can be enforced without any
// recency bookkeeping on the hit path.
//
// Values stored here are committed versions and are treated as
// immutable by the whole client.
type nodeCache struct {
	mu       sync.RWMutex
	nodes    map[kv.OID]*kv.Value
	maxNodes int // <= 0 = unlimited
	hits     atomic.Uint64
	miss     atomic.Uint64
	evicted  atomic.Uint64
}

func newNodeCache(maxNodes int) *nodeCache {
	return &nodeCache{nodes: make(map[kv.OID]*kv.Value), maxNodes: maxNodes}
}

func (c *nodeCache) get(oid kv.OID) (*kv.Value, bool) {
	c.mu.RLock()
	v, ok := c.nodes[oid]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.miss.Add(1)
	}
	return v, ok
}

func (c *nodeCache) put(oid kv.OID, v *kv.Value) {
	c.mu.Lock()
	if _, resident := c.nodes[oid]; !resident && c.maxNodes > 0 {
		for len(c.nodes) >= c.maxNodes {
			for victim := range c.nodes {
				delete(c.nodes, victim)
				c.evicted.Add(1)
				break
			}
		}
	}
	c.nodes[oid] = v
	c.mu.Unlock()
}

func (c *nodeCache) invalidate(oids ...kv.OID) {
	c.mu.Lock()
	for _, oid := range oids {
		delete(c.nodes, oid)
	}
	c.mu.Unlock()
}

func (c *nodeCache) clear() {
	c.mu.Lock()
	c.nodes = make(map[kv.OID]*kv.Value)
	c.mu.Unlock()
}

func (c *nodeCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}
