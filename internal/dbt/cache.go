package dbt

import (
	"sync"
	"sync/atomic"

	"yesquel/internal/kv"
)

// nodeCache holds inner nodes fetched by this client. Entries may be
// arbitrarily stale — the back-down search validates against leaf
// fences — so the cache needs no coherence protocol, which is what
// makes it cheap: a hit costs zero communication.
//
// Values stored here are committed versions and are treated as
// immutable by the whole client.
type nodeCache struct {
	mu    sync.RWMutex
	nodes map[kv.OID]*kv.Value
	hits  atomic.Uint64
	miss  atomic.Uint64
}

func newNodeCache() *nodeCache {
	return &nodeCache{nodes: make(map[kv.OID]*kv.Value)}
}

func (c *nodeCache) get(oid kv.OID) (*kv.Value, bool) {
	c.mu.RLock()
	v, ok := c.nodes[oid]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.miss.Add(1)
	}
	return v, ok
}

func (c *nodeCache) put(oid kv.OID, v *kv.Value) {
	c.mu.Lock()
	c.nodes[oid] = v
	c.mu.Unlock()
}

func (c *nodeCache) invalidate(oids ...kv.OID) {
	c.mu.Lock()
	for _, oid := range oids {
		delete(c.nodes, oid)
	}
	c.mu.Unlock()
}

func (c *nodeCache) clear() {
	c.mu.Lock()
	c.nodes = make(map[kv.OID]*kv.Value)
	c.mu.Unlock()
}

func (c *nodeCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}
