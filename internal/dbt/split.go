package dbt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
)

// Splits. An oversized node is split in its own transaction, separate
// from the transaction that grew it — the paper's "delegated splits":
// clients never block on structural maintenance, and because the split
// runs under the same snapshot-isolation transactions as everything
// else, readers either see the tree entirely before or entirely after
// the split.
//
// A split of node X with fences [l, h) at a mid key m:
//   - creates a fresh right sibling R on a server chosen by the
//     placement policy, holding X's cells >= m with fences [m, h);
//   - shrinks X in place to [l, m) by deleting the moved cells and
//     updating its fence (delta operations, so the left half is not
//     rewritten);
//   - adds the routing cell (m -> R) to X's parent.
//
// Splitting the root grows the tree instead: the root's cells move into
// two fresh children and the root is rewritten in place as an inner
// node of height+1, so the root OID never changes.

type splitter struct {
	t      *Tree
	mu     sync.Mutex
	queued map[kv.OID]bool
	ch     chan kv.OID
	stopCh chan struct{}
	wg     sync.WaitGroup
}

func (t *Tree) startSplitter() {
	s := &splitter{
		t:      t,
		queued: make(map[kv.OID]bool),
		ch:     make(chan kv.OID, 1024),
		stopCh: make(chan struct{}),
	}
	t.splitter = s
	if !t.cfg.SyncSplit {
		s.wg.Add(1)
		go s.run()
	}
}

// noteOversized reports that a node looked oversized; the splitter will
// verify against committed state and split if warranted. With SyncSplit
// the caller must invoke MaintainNow after committing.
func (t *Tree) noteOversized(oid kv.OID) {
	s := t.splitter
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.queued[oid] {
		s.mu.Unlock()
		return
	}
	s.queued[oid] = true
	s.mu.Unlock()
	if t.cfg.SyncSplit {
		return // drained by MaintainNow
	}
	select {
	case s.ch <- oid:
	default:
		// Queue full: drop; the next write to the node re-triggers.
		s.mu.Lock()
		delete(s.queued, oid)
		s.mu.Unlock()
	}
}

// MaintainNow synchronously splits every queued node (and any parents
// that overflow as a result). Used with SyncSplit and by tests.
func (t *Tree) MaintainNow(ctx context.Context) error {
	s := t.splitter
	if s == nil {
		return nil
	}
	for {
		s.mu.Lock()
		var oid kv.OID
		found := false
		for o := range s.queued {
			oid, found = o, true
			break
		}
		if found {
			delete(s.queued, oid)
		}
		s.mu.Unlock()
		if !found {
			return nil
		}
		if err := t.splitNode(ctx, oid); err != nil {
			return err
		}
	}
}

func (s *splitter) run() {
	defer s.wg.Done()
	ctx := context.Background()
	// One reusable backoff timer across all retries the goroutine ever
	// makes; allocated on first use, Reset per retry.
	var backoff *time.Timer
	defer func() {
		if backoff != nil {
			backoff.Stop()
		}
	}()
	for {
		select {
		case <-s.stopCh:
			return
		case oid := <-s.ch:
			s.mu.Lock()
			delete(s.queued, oid)
			s.mu.Unlock()
			// Conflicts with concurrent writers are expected; retry a
			// few times with a small pause, then give up — the next
			// write re-triggers the split.
			for i := 0; i < 5; i++ {
				err := s.t.splitNode(ctx, oid)
				if err == nil || !errors.Is(err, kv.ErrConflict) {
					break
				}
				s.t.stats.SplitConflict.Add(1)
				d := time.Duration(i+1) * time.Millisecond
				if backoff == nil {
					backoff = time.NewTimer(d)
				} else {
					backoff.Reset(d)
				}
				select {
				case <-s.stopCh:
					return
				case <-backoff.C:
				}
			}
		}
	}
}

func (s *splitter) stop() {
	s.mu.Lock()
	select {
	case <-s.stopCh:
		s.mu.Unlock()
		return
	default:
	}
	close(s.stopCh)
	s.mu.Unlock()
	s.wg.Wait()
}

// splitNode splits oid if its committed state is oversized. A split
// that would overflow the parent queues the parent too.
func (t *Tree) splitNode(ctx context.Context, oid kv.OID) error {
	tx := t.c.Begin()
	defer func() {
		// Commit is explicit below; Abort on a committed tx is a no-op
		// guard for early returns.
		tx.Abort()
	}()
	node, err := tx.Read(ctx, oid)
	if err != nil {
		if errors.Is(err, kv.ErrNotFound) {
			return nil // already split away or deleted
		}
		return err
	}
	if node.Kind != kv.KindSuper || node.Attrs[AttrTree] != t.id {
		return nil
	}
	if node.NumCells() <= t.cfg.MaxCells {
		return nil // shrank since it was queued
	}

	mid := node.NumCells() / 2
	midKey := node.Cells[mid].Key
	// Degenerate: all cells share a prefix region such that midKey
	// equals the low fence; cannot split there.
	if compare(midKey, node.LowKey) == 0 {
		return nil
	}

	if oid == t.root {
		err = t.growRoot(ctx, tx, node, mid)
	} else {
		err = t.splitNonRoot(ctx, tx, oid, node, mid)
	}
	if err != nil {
		return err
	}
	if err := tx.Commit(ctx); err != nil {
		return err
	}
	t.stats.SplitsDone.Add(1)
	// Routing changed: drop cached copies of what we rewrote.
	t.cache.invalidate(oid)
	return nil
}

// growRoot turns the (oversized) root into an inner node with two fresh
// children. The root OID is preserved — clients hold it statically.
func (t *Tree) growRoot(ctx context.Context, tx *kvclient.Tx, root *kv.Value, mid int) error {
	midKey := root.Cells[mid].Key

	left := kv.NewSuper()
	left.Attrs[AttrHeight] = root.Attrs[AttrHeight]
	left.Attrs[AttrTree] = t.id
	left.LowKey = root.LowKey
	left.HighKey = append([]byte(nil), midKey...)
	left.Cells = append([]kv.Cell(nil), root.Cells[:mid]...)

	right := kv.NewSuper()
	right.Attrs[AttrHeight] = root.Attrs[AttrHeight]
	right.Attrs[AttrTree] = t.id
	right.LowKey = append([]byte(nil), midKey...)
	right.HighKey = root.HighKey
	right.Cells = append([]kv.Cell(nil), root.Cells[mid:]...)

	leftOID := t.newNodeOID()
	rightOID := t.newNodeOID()
	left.Attrs[AttrNext] = uint64(rightOID)
	right.Attrs[AttrNext] = root.Attrs[AttrNext]

	newRoot := kv.NewSuper()
	newRoot.Attrs[AttrHeight] = root.Attrs[AttrHeight] + 1
	newRoot.Attrs[AttrTree] = t.id
	newRoot.LowKey = root.LowKey
	newRoot.HighKey = root.HighKey
	lowCell := root.LowKey
	if lowCell == nil {
		lowCell = []byte{}
	}
	newRoot.ListAdd(lowCell, encodeChild(leftOID))
	newRoot.ListAdd(midKey, encodeChild(rightOID))

	tx.Put(leftOID, left)
	tx.Put(rightOID, right)
	tx.Put(t.root, newRoot)
	return nil
}

// splitNonRoot moves the upper half of node into a fresh sibling and
// links it into the parent.
func (t *Tree) splitNonRoot(ctx context.Context, tx *kvclient.Tx, oid kv.OID, node *kv.Value, mid int) error {
	midKey := node.Cells[mid].Key

	rightOID := t.newNodeOID()
	right := kv.NewSuper()
	right.Attrs[AttrHeight] = node.Attrs[AttrHeight]
	right.Attrs[AttrTree] = t.id
	right.Attrs[AttrNext] = node.Attrs[AttrNext]
	right.LowKey = append([]byte(nil), midKey...)
	right.HighKey = node.HighKey
	right.Cells = append([]kv.Cell(nil), node.Cells[mid:]...)
	tx.Put(rightOID, right)

	// Shrink the left half in place with deltas: the surviving cells
	// are not rewritten.
	tx.ListDelRange(oid, midKey, nil)
	tx.SetBounds(oid, node.LowKey, midKey)
	tx.AttrSet(oid, AttrNext, uint64(rightOID))

	// Link the new sibling into the parent. The parent is found by a
	// fully transactional descent to height+1 — splits are rare enough
	// that the uncached walk does not matter.
	parentOID, parent, err := t.findParent(ctx, tx, node, oid)
	if err != nil {
		return err
	}
	tx.ListAdd(parentOID, midKey, encodeChild(rightOID))
	if parent.NumCells()+1 > t.cfg.MaxCells {
		t.noteOversized(parentOID)
	}
	return nil
}

// findParent locates the node at child's height+1 whose range covers
// child's low fence, reading transactionally within tx.
func (t *Tree) findParent(ctx context.Context, tx *kvclient.Tx, child *kv.Value, childOIDv kv.OID) (kv.OID, *kv.Value, error) {
	wantHeight := child.Attrs[AttrHeight] + 1
	key := child.LowKey
	if key == nil {
		key = []byte{}
	}
	cur := t.root
	const maxDepth = 64
	for depth := 0; depth < maxDepth; depth++ {
		node, err := tx.Read(ctx, cur)
		if err != nil {
			return 0, nil, err
		}
		h := node.Attrs[AttrHeight]
		if h == wantHeight {
			// Verify it actually routes to the child.
			c, err := childFor(node, key)
			if err != nil || c != childOIDv {
				return 0, nil, fmt.Errorf("%w: parent does not route to child", kv.ErrConflict)
			}
			return cur, node, nil
		}
		if h < wantHeight {
			return 0, nil, fmt.Errorf("%w: child deeper than tree", kv.ErrConflict)
		}
		next, err := childFor(node, key)
		if err != nil {
			return 0, nil, err
		}
		cur = next
	}
	return 0, nil, fmt.Errorf("dbt: findParent exceeded max depth")
}
