package dbt_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"yesquel/internal/cluster"
	"yesquel/internal/dbt"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
)

func scanAllAt(t *testing.T, tree *dbt.Tree, tx *kvclient.Tx) []kv.Cell {
	t.Helper()
	cells, err := tree.Scan(context.Background(), tx, nil, -1)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return cells
}

func requireSameCells(t *testing.T, got, want []kv.Cell) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("scan lengths differ: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("cell %d differs: got %q=%q, want %q=%q",
				i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
}

// TestReadaheadScanMatchesSync is the core determinism check: the same
// snapshot scanned through a readahead iterator and through a
// synchronous (NoReadahead) iterator must produce byte-identical
// cells.
func TestReadaheadScanMatchesSync(t *testing.T) {
	_, c, loader := startTree(t, 3, dbt.Config{MaxCells: 8, SyncSplit: true})
	fillSequential(t, c, loader, 120)
	ctx := context.Background()

	ra, err := dbt.Open(ctx, c, 1, dbt.Config{MaxCells: 8, ReadaheadLeaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	tx1 := c.Begin()
	defer tx1.Abort()
	tx2 := c.BeginAt(tx1.Snapshot())
	defer tx2.Abort()
	got := scanAllAt(t, ra, tx1)
	want := scanAllAt(t, loader, tx2)
	if len(want) != 120 {
		t.Fatalf("sync scan saw %d cells, want 120", len(want))
	}
	requireSameCells(t, got, want)
}

// TestReadaheadScanDuringSplits starts a readahead scan, lets another
// handle commit inserts that split leaves mid-scan, and checks the
// scan still returns exactly its snapshot — identical to a synchronous
// scan at the same snapshot taken after the splits.
func TestReadaheadScanDuringSplits(t *testing.T) {
	_, c, loader := startTree(t, 3, dbt.Config{MaxCells: 8, SyncSplit: true})
	fillSequential(t, c, loader, 100)
	ctx := context.Background()

	ra, err := dbt.Open(ctx, c, 1, dbt.Config{MaxCells: 8, ReadaheadLeaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	tx := c.Begin()
	defer tx.Abort()
	it := ra.NewIterator(ctx, tx, nil)
	defer it.Close()
	var got []kv.Cell
	for i := 0; i < 5 && it.Valid(); i++ {
		got = append(got, kv.Cell{Key: it.Key(), Value: it.Value()})
		it.Next()
	}
	// Splits land while the iterator (and its prefetcher) are mid-tree.
	for i := 100; i < 160; i++ {
		putAuto(t, c, loader, fmt.Sprintf("k%06d", i), fmt.Sprintf("v%d", i))
	}
	for ; it.Valid(); it.Next() {
		got = append(got, kv.Cell{Key: it.Key(), Value: it.Value()})
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator: %v", err)
	}

	check := c.BeginAt(tx.Snapshot())
	defer check.Abort()
	want := scanAllAt(t, loader, check)
	if len(want) != 100 {
		t.Fatalf("snapshot scan saw %d cells, want 100", len(want))
	}
	requireSameCells(t, got, want)
}

// TestReadaheadScanSeesStagedWrites stages a write mid-scan: the
// prefetched leaves carry no overlay, so the iterator must shut the
// pipeline down and keep serving the transaction's own writes.
func TestReadaheadScanSeesStagedWrites(t *testing.T) {
	_, c, loader := startTree(t, 2, dbt.Config{MaxCells: 8, SyncSplit: true})
	fillSequential(t, c, loader, 100)
	ctx := context.Background()

	ra, err := dbt.Open(ctx, c, 1, dbt.Config{MaxCells: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	tx := c.Begin()
	defer tx.Abort()
	it := ra.NewIterator(ctx, tx, nil)
	defer it.Close()
	var got []kv.Cell
	for i := 0; i < 3 && it.Valid(); i++ {
		got = append(got, kv.Cell{Key: it.Key(), Value: it.Value()})
		it.Next()
	}
	staged := "k000050a" // well ahead of the current position
	if err := ra.Put(ctx, tx, []byte(staged), []byte("staged")); err != nil {
		t.Fatalf("staged Put: %v", err)
	}
	for ; it.Valid(); it.Next() {
		got = append(got, kv.Cell{Key: it.Key(), Value: it.Value()})
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator: %v", err)
	}
	if len(got) != 101 {
		t.Fatalf("scan saw %d cells, want 101", len(got))
	}
	seen := false
	for i, cell := range got {
		if i > 0 && bytes.Compare(got[i-1].Key, cell.Key) >= 0 {
			t.Fatalf("scan out of order at %d: %q then %q", i, got[i-1].Key, cell.Key)
		}
		if string(cell.Key) == staged {
			seen = true
			if string(cell.Value) != "staged" {
				t.Fatalf("staged cell value %q", cell.Value)
			}
		}
	}
	if !seen {
		t.Fatalf("staged key %q missing from scan", staged)
	}
}

// TestReadaheadFollowerReads checks readahead-on and readahead-off
// scans stay byte-identical when reads route to followers: the
// prefetcher's ReadView must obey the same watermark-gated routing as
// the transaction it serves.
func TestReadaheadFollowerReads(t *testing.T) {
	cl, err := cluster.StartReplicated(1, 3, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ctx := context.Background()
	loader, err := dbt.Create(ctx, c, 1, dbt.Config{MaxCells: 8, SyncSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(loader.Close)
	fillSequential(t, c, loader, 80)

	ra, err := dbt.Open(ctx, c, 1, dbt.Config{MaxCells: 8, ReadaheadLeaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	c.SetFollowerReads(true)
	last := []byte(fmt.Sprintf("k%06d", 79))
	// Wait for the durability frontier to cover the fill: primary reads
	// teach the client the frontier, and once a frontier-snapshot read
	// sees the last key, every filled write is below the watermark.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := getAuto(t, c, loader, string(last)); !ok {
			t.Fatal("seed key missing")
		}
		if snap := c.FollowerSnapshot(); uint64(snap) > 0 {
			tx := c.BeginAt(snap)
			_, err := loader.Get(ctx, tx, last)
			tx.Abort()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("durability frontier never covered the fill")
		}
		time.Sleep(10 * time.Millisecond)
	}

	snap := c.FollowerSnapshot()
	tx1 := c.BeginAt(snap)
	defer tx1.Abort()
	tx2 := c.BeginAt(snap)
	defer tx2.Abort()
	got := scanAllAt(t, ra, tx1)
	want := scanAllAt(t, loader, tx2)
	if len(want) != 80 {
		t.Fatalf("follower scan saw %d cells, want 80", len(want))
	}
	requireSameCells(t, got, want)
}

// TestGetBatch covers the batched multi-key read path: warm-cache
// batched lookups, cold-cache fallback, staleness repair after
// another handle splits leaves, and staged-write overlay.
func TestGetBatch(t *testing.T) {
	_, c, loader := startTree(t, 3, dbt.Config{MaxCells: 8, SyncSplit: true})
	fillSequential(t, c, loader, 120)
	ctx := context.Background()

	warm, err := dbt.Open(ctx, c, 1, dbt.Config{MaxCells: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()

	mixed := [][]byte{
		[]byte("k000003"), []byte("zzz-absent"), []byte("k000077"),
		[]byte("k000110"), []byte("a-absent"), []byte("k000042"),
	}
	check := func(tree *dbt.Tree, label string) {
		tx := c.Begin()
		defer tx.Abort()
		got, err := tree.GetBatch(ctx, tx, mixed)
		if err != nil {
			t.Fatalf("%s GetBatch: %v", label, err)
		}
		for i, key := range mixed {
			want, ok := getAuto(t, c, loader, string(key))
			if !ok {
				if got[i] != nil {
					t.Fatalf("%s key %q: got %q, want absent", label, key, got[i])
				}
				continue
			}
			if string(got[i]) != want {
				t.Fatalf("%s key %q: got %q, want %q", label, key, got[i], want)
			}
		}
	}

	// Cold cache: every key falls back to a synchronous Get.
	check(warm, "cold")
	// Warm the cache so leaves are predictable, then batch for real.
	{
		tx := c.Begin()
		scanAllAt(t, warm, tx)
		tx.Abort()
	}
	check(warm, "warm")

	// Staleness: splits committed by the loader invalidate warm's
	// cached routing; the fence check must catch it and fall back.
	for i := 120; i < 200; i++ {
		putAuto(t, c, loader, fmt.Sprintf("k%06d", i), fmt.Sprintf("v%d", i))
	}
	mixed = append(mixed, []byte("k000185"))
	check(warm, "stale")

	// Staged writes: GetBatch runs through the transaction's overlay.
	tx := c.Begin()
	defer tx.Abort()
	if err := warm.Put(ctx, tx, []byte("k000077"), []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if err := warm.Put(ctx, tx, []byte("brand-new"), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	got, err := warm.GetBatch(ctx, tx, [][]byte{[]byte("k000077"), []byte("brand-new"), []byte("k000003")})
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "mine" || string(got[1]) != "fresh" || string(got[2]) != "v3" {
		t.Fatalf("staged GetBatch: %q %q %q", got[0], got[1], got[2])
	}
}

// TestCacheEviction bounds the inner-node cache and checks eviction
// keeps it at the cap while lookups stay correct.
func TestCacheEviction(t *testing.T) {
	_, c, tree := startTree(t, 1, dbt.Config{MaxCells: 4, CacheMaxNodes: 2, SyncSplit: true})
	fillSequential(t, c, tree, 80)
	for i := 0; i < 80; i += 7 {
		key := fmt.Sprintf("k%06d", i)
		if v, ok := getAuto(t, c, tree, key); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get %q under eviction: %q %v", key, v, ok)
		}
	}
	if n := tree.CacheSize(); n > 2 {
		t.Fatalf("cache holds %d nodes, cap is 2", n)
	}
	if ev := tree.Stats().Evictions; ev == 0 {
		t.Fatal("no evictions recorded despite tiny cap")
	}
}
