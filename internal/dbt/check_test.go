package dbt_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"yesquel/internal/dbt"
	"yesquel/internal/kv"
)

func TestCheckEmptyTree(t *testing.T) {
	_, c, tree := startTree(t, 1, dbt.Config{})
	tx := c.Begin()
	defer tx.Abort()
	res, err := tree.Check(context.Background(), tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 1 || res.Leaves != 1 || res.Cells != 0 || res.Height != 0 {
		t.Fatalf("empty tree: %+v", res)
	}
}

func TestCheckAfterHeavySplits(t *testing.T) {
	_, c, tree := startTree(t, 4, dbt.Config{MaxCells: 4, SyncSplit: true})
	fillSequential(t, c, tree, 300)
	tx := c.Begin()
	defer tx.Abort()
	res, err := tree.Check(context.Background(), tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 300 {
		t.Fatalf("cells = %d, want 300", res.Cells)
	}
	if res.Height < 2 {
		t.Fatalf("tree too shallow for MaxCells=4 and 300 keys: height %d", res.Height)
	}
	if res.Leaves < 50 {
		t.Fatalf("too few leaves: %d", res.Leaves)
	}
}

func TestCheckUnderConcurrentMutation(t *testing.T) {
	// A snapshot Check must pass even while the tree is being grown
	// concurrently (MVCC isolates the walk).
	_, c, tree := startTree(t, 2, dbt.Config{MaxCells: 8})
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		putAuto(t, c, tree, fmt.Sprintf("base-%04d", i), "v")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(5))
		for {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("grow-%06d", rng.Intn(100000))
			tx := c.Begin()
			if err := tree.Put(ctx, tx, []byte(key), []byte("x")); err == nil {
				if err := tx.Commit(ctx); err != nil && !errors.Is(err, kv.ErrConflict) {
					t.Error(err)
					return
				}
			} else {
				tx.Abort()
			}
		}
	}()

	for i := 0; i < 5; i++ {
		tx := c.Begin()
		res, err := tree.Check(ctx, tx)
		tx.Abort()
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("check %d under mutation: %v", i, err)
		}
		if res.Cells < 100 {
			close(stop)
			wg.Wait()
			t.Fatalf("check %d lost cells: %d", i, res.Cells)
		}
	}
	close(stop)
	wg.Wait()
}

func TestCheckRandomizedWorkloads(t *testing.T) {
	// Property: after any sequence of puts/deletes/maintenance, every
	// structural invariant holds and the cell count matches the model.
	for seed := int64(1); seed <= 4; seed++ {
		_, c, tree := startTree(t, 2, dbt.Config{MaxCells: 5, SyncSplit: true})
		ctx := context.Background()
		rng := rand.New(rand.NewSource(seed))
		live := make(map[string]bool)
		for step := 0; step < 250; step++ {
			k := fmt.Sprintf("k%03d", rng.Intn(150))
			if rng.Intn(3) > 0 {
				putAuto(t, c, tree, k, "v")
				live[k] = true
			} else if live[k] {
				tx := c.Begin()
				if err := tree.Delete(ctx, tx, []byte(k)); err != nil {
					tx.Abort()
					t.Fatal(err)
				}
				if err := tx.Commit(ctx); err == nil {
					delete(live, k)
				} else if !errors.Is(err, kv.ErrConflict) {
					t.Fatal(err)
				}
			}
			if step%40 == 0 {
				if err := tree.MaintainNow(ctx); err != nil && !errors.Is(err, kv.ErrConflict) {
					t.Fatal(err)
				}
			}
		}
		if err := tree.MaintainNow(ctx); err != nil && !errors.Is(err, kv.ErrConflict) {
			t.Fatal(err)
		}
		tx := c.Begin()
		res, err := tree.Check(ctx, tx)
		tx.Abort()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Cells != len(live) {
			t.Fatalf("seed %d: tree has %d cells, model has %d", seed, res.Cells, len(live))
		}
	}
}
