package kv

import (
	"fmt"
	"testing"
)

func TestWireErrorCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want uint64
	}{
		{nil, 0},
		{ErrConflict, CodeConflict},
		{ErrAborted, CodeAborted},
		{ErrNotFound, CodeNotFound},
		{ErrBadRequest, CodeBadRequest},
		{ErrUncertain, CodeUncertain},
		{ErrDiverged, CodeDiverged},
		{ErrWrongEpoch, CodeWrongEpoch},
		{fmt.Errorf("wrapped: %w", ErrConflict), CodeConflict},
		{&WrongEpochError{Epoch: 3, Members: []string{"a"}}, CodeWrongEpoch},
		{fmt.Errorf("unclassified"), 0},
	}
	for _, c := range cases {
		if got := WireErrorCode(c.err); got != c.want {
			t.Errorf("WireErrorCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// An uncertain commit wraps the batch error that caused it, which may
// itself be a sentinel promising "not executed". Uncertain must win:
// the operation DID reach the primary's stream.
func TestWireErrorCodeUncertainFirst(t *testing.T) {
	err := fmt.Errorf("%w: replication wait: %w", ErrUncertain, ErrWrongEpoch)
	if got := WireErrorCode(err); got != CodeUncertain {
		t.Fatalf("WireErrorCode(uncertain∘wrongepoch) = %d, want CodeUncertain=%d", got, CodeUncertain)
	}
	err = fmt.Errorf("%w: %w", ErrUncertain, ErrConflict)
	if got := WireErrorCode(err); got != CodeUncertain {
		t.Fatalf("WireErrorCode(uncertain∘conflict) = %d, want CodeUncertain=%d", got, CodeUncertain)
	}
}
