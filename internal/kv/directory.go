package kv

import (
	"fmt"

	"yesquel/internal/wire"
)

// Directory is the versioned slot→group map that replaces the implicit
// `oid % n` routing rule. Routes has a FIXED length chosen when the
// cluster first forms (the initial server count): an OID's route index
// is `slot % len(Routes)`, and Routes[route] names the group that owns
// every OID on that route. Scale-out never changes len(Routes) — a new
// machine joins as a new GROUP and the rebalancer repoints route
// entries at it — so an OID's route, and therefore the placement the
// DBT computed when it allocated the OID, is stable forever; only the
// route's owner moves.
//
// Groups[g] lists group g's replica addresses, acting primary first —
// the same shape as an epoch membership list, and like it advisory: the
// authoritative membership of a group is its epoch state, learned
// through ErrWrongEpoch redirects and ack piggybacks. The directory
// only says which group to talk to, not who currently leads it.
//
// Version is monotonic, like an epoch. Version 0 means "no directory":
// servers piggyback their version on every Ack (Ack.DirVersion), reject
// requests for routes they no longer own with the typed
// WrongSlotError, and serve the full map via MethodDirectory. A client
// holding version v adopts any directory with a larger version and
// never moves backwards.
type Directory struct {
	Version uint64
	Routes  []uint32   // route index (slot % len(Routes)) → group index
	Groups  [][]string // group index → replica addresses, primary first
}

// maxRoutes bounds a decoded route table (sanity, not policy — real
// directories have one route per initial server).
const maxRoutes = 1 << 16

// RouteFor returns the directory route index oid maps to.
func (d *Directory) RouteFor(oid OID) uint32 {
	return uint32(int(oid.Slot()) % len(d.Routes))
}

// GroupFor returns the index of the group that owns oid.
func (d *Directory) GroupFor(oid OID) uint32 {
	return d.Routes[d.RouteFor(oid)]
}

// Clone returns a deep copy of d (nil-safe), so an installed directory
// can be shared read-only while the authority mutates its own copy.
func (d *Directory) Clone() *Directory {
	if d == nil {
		return nil
	}
	out := &Directory{
		Version: d.Version,
		Routes:  append([]uint32(nil), d.Routes...),
		Groups:  make([][]string, len(d.Groups)),
	}
	for i, g := range d.Groups {
		out.Groups[i] = append([]string(nil), g...)
	}
	return out
}

// EncodeDirectory appends d's canonical serialization to b.
func EncodeDirectory(b *wire.Buffer, d *Directory) {
	b.PutUvarint(d.Version)
	b.PutUvarint(uint64(len(d.Routes)))
	for _, g := range d.Routes {
		b.PutUvarint(uint64(g))
	}
	b.PutUvarint(uint64(len(d.Groups)))
	for _, g := range d.Groups {
		encodeMembers(b, g)
	}
}

// DecodeDirectory is the inverse of EncodeDirectory. Trailing bytes are
// left unread, so messages may append optional fields after the
// directory without breaking old decoders.
func DecodeDirectory(r *wire.Reader) (*Directory, error) {
	d := &Directory{}
	var err error
	if d.Version, err = r.Uvarint(); err != nil {
		return nil, err
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > maxRoutes {
		return nil, fmt.Errorf("%w: directory with %d routes", ErrBadRequest, n)
	}
	d.Routes = make([]uint32, 0, n)
	for i := uint64(0); i < n; i++ {
		g, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		d.Routes = append(d.Routes, uint32(g))
	}
	ng, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if ng > maxRoutes {
		return nil, fmt.Errorf("%w: directory with %d groups", ErrBadRequest, ng)
	}
	d.Groups = make([][]string, 0, ng)
	for i := uint64(0); i < ng; i++ {
		g, err := decodeMembers(r)
		if err != nil {
			return nil, err
		}
		d.Groups = append(d.Groups, g)
	}
	for _, g := range d.Routes {
		if uint64(g) >= ng {
			return nil, fmt.Errorf("%w: route names group %d of %d", ErrBadRequest, g, ng)
		}
	}
	return d, nil
}

// DirectoryResp is the MethodDirectory response: the server's current
// directory plus the usual clock piggyback. The request is empty.
type DirectoryResp struct {
	Dir   *Directory
	Clock Timestamp
}

func (m *DirectoryResp) Encode() []byte {
	b := wire.NewBuffer(64)
	EncodeDirectory(b, m.Dir)
	b.PutUint64(uint64(m.Clock))
	return b.Bytes()
}

func DecodeDirectoryResp(p []byte) (*DirectoryResp, error) {
	r := wire.NewReader(p)
	d, err := DecodeDirectory(r)
	if err != nil {
		return nil, err
	}
	v, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	return &DirectoryResp{Dir: d, Clock: Timestamp(v)}, nil
}
