package kvclient_test

import (
	"testing"

	"yesquel/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running:
// client read loops, heartbeats, and the servers the tests spin up
// must all be torn down by the test that started them.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
