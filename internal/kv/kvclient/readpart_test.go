package kvclient_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"yesquel/internal/kv"
)

func TestTxReadPartBasic(t *testing.T) {
	_, c := startCluster(t, 2)
	ctx := context.Background()
	oid := c.NewOID(1)

	init := c.Begin()
	v := kv.NewSuper()
	for i := 0; i < 20; i++ {
		v.ListAdd([]byte(fmt.Sprintf("c%02d", i)), []byte{byte(i)})
	}
	init.Put(oid, v)
	if err := init.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	tx := c.Begin()
	defer tx.Abort()
	part, total, err := tx.ReadPart(ctx, oid, []byte("c05"), []byte("c05\x00"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if total != 20 {
		t.Fatalf("total = %d", total)
	}
	if got, ok := part.ListGet([]byte("c05")); !ok || got[0] != 5 {
		t.Fatalf("cell: %v %v", got, ok)
	}
	if part.NumCells() > 2 {
		t.Fatalf("window too big: %d cells shipped", part.NumCells())
	}
}

func TestTxReadPartSeesOwnDeltas(t *testing.T) {
	_, c := startCluster(t, 1)
	ctx := context.Background()
	oid := c.NewOID(0)

	init := c.Begin()
	v := kv.NewSuper()
	v.ListAdd([]byte("a"), []byte("old"))
	init.Put(oid, v)
	if err := init.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	tx := c.Begin()
	defer tx.Abort()
	tx.ListAdd(oid, []byte("a"), []byte("mine"))
	tx.ListAdd(oid, []byte("b"), []byte("new"))
	part, total, err := tx.ReadPart(ctx, oid, []byte("a"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := part.ListGet([]byte("a")); string(got) != "mine" {
		t.Fatalf("own overwrite invisible: %q", got)
	}
	if got, ok := part.ListGet([]byte("b")); !ok || string(got) != "new" {
		t.Fatalf("own insert invisible: %q %v", got, ok)
	}
	if total < 2 {
		t.Fatalf("total %d does not reflect staged inserts", total)
	}
}

func TestTxReadPartAfterOwnPut(t *testing.T) {
	_, c := startCluster(t, 1)
	ctx := context.Background()
	oid := c.NewOID(0)

	tx := c.Begin()
	defer tx.Abort()
	v := kv.NewSuper()
	v.ListAdd([]byte("x"), []byte("1"))
	v.ListAdd([]byte("y"), []byte("2"))
	tx.Put(oid, v) // never committed: ReadPart must materialize locally
	part, total, err := tx.ReadPart(ctx, oid, []byte("y"), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 {
		t.Fatalf("total = %d", total)
	}
	if got, ok := part.ListGet([]byte("y")); !ok || string(got) != "2" {
		t.Fatalf("windowed own put: %q %v", got, ok)
	}
}

func TestTxReadPartMissing(t *testing.T) {
	_, c := startCluster(t, 1)
	tx := c.Begin()
	defer tx.Abort()
	if _, _, err := tx.ReadPart(context.Background(), c.NewOID(0), nil, nil, 0); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("missing object: %v", err)
	}
}
