// Package kvclient is the client library of Yesquel's transactional
// key-value storage system (the "client lib" box in Figure 1 of the
// paper). It connects to the storage servers, places objects by the
// server slot embedded in their OIDs, and runs transactions under
// snapshot isolation: buffered writes, first-committer-wins conflict
// detection, one-round-trip fast commit for single-participant
// transactions, and two-phase commit otherwise.
package kvclient

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"yesquel/internal/clock"
	"yesquel/internal/kv"
	"yesquel/internal/rpc"
)

// Client is a connection to a set of storage servers. It is safe for
// concurrent use; transactions created from it are not (a transaction
// belongs to one goroutine, as in the paper's per-client query
// processor).
type Client struct {
	// mu guards groups growth, the adopted slot directory, and the
	// teardown/fetch bookkeeping below. groups is append-only — a
	// *replicaGroup, once created, is stable for the client's lifetime —
	// so holding mu only for the slice access (never across an RPC) is
	// enough. Lock order: mu before any replicaGroup.mu.
	mu     sync.Mutex
	groups []*replicaGroup
	// dir is the adopted slot directory (nil until one is learned — the
	// client then routes by the legacy slot-modulo rule). Replaced
	// wholesale on adoption, never mutated in place; version-gated so
	// the view only moves forward. Learned from Ack.DirVersion
	// piggybacks (async fetch) and WrongSlotError redirects (in-place
	// route patch plus a refresh).
	dir         *kv.Directory
	dirFetching bool
	dirWG       sync.WaitGroup
	closed      bool

	hlc *clock.HLC

	nextTx  atomic.Uint64
	nextOID atomic.Uint64

	// followerReads routes snapshot reads whose timestamp lies at or
	// below a group's learned durability frontier to that group's
	// backups, round-robin — read throughput scales with the
	// replication factor instead of pinning every read on the primary.
	// durableReads stamps every read Durable: the serving replica holds
	// the answer until the durability frontier passes the snapshot, so
	// the transaction never observes a write a failover could erase
	// (closing the group-commit visibility window at the price of the
	// in-flight batch's round trip). See SetFollowerReads /
	// SetDurableReads.
	followerReads atomic.Bool
	durableReads  atomic.Bool

	// hbStop terminates the membership heartbeat goroutine (see
	// StartHeartbeat); hbMu guards restarts.
	hbMu   sync.Mutex
	hbStop chan struct{}
}

// SetFollowerReads toggles routing of frontier-covered snapshot reads
// to backup replicas. Safe to flip at any time; in-flight reads finish
// on the path they started.
func (c *Client) SetFollowerReads(on bool) { c.followerReads.Store(on) }

// SetDurableReads toggles durable-read mode: every read waits out the
// durability watermark, so no transaction observes a write that is not
// quorum-durable. Reads below the frontier are unaffected (the wait is
// a no-op there).
func (c *Client) SetDurableReads(on bool) { c.durableReads.Store(on) }

// replicaGroup is one server slot's replica set: the membership the
// client currently believes (acting primary first), the group's epoch,
// and the connection in use. On a transport failure the group rotates
// to the next replica; on an ErrWrongEpoch redirect it adopts the
// carried epoch and membership, so a client opened before a failover
// or re-formation follows the group to addresses it was never
// configured with.
type replicaGroup struct {
	mu       sync.Mutex
	addrs    []string
	epoch    uint64 // group epoch last learned (0 = unaware / legacy)
	cur      int    // index into addrs the connection (or next dial) uses
	conn     *rpc.Client
	connAddr string // address conn was dialed to
	// closed marks the client torn down: no further dials. Without it,
	// a heartbeat ping racing Close could re-dial after the teardown
	// and leak the fresh connection.
	closed bool

	// Follower-read state: the highest durability frontier any ack from
	// this group has piggybacked (monotone — the frontier only ever
	// covers quorum-durable prefixes, which every successor epoch
	// preserves), the backup this client's reads are pinned to, and
	// one dedicated connection per backup (the primary connection
	// above stays reserved for writes and fallback). Reads stick to
	// one backup and rotate only on failure: clients spread across
	// backups via the process-wide seed, while each individual client
	// keeps a single warm read connection.
	frontier  uint64
	readCur   int
	readConns map[string]*rpc.Client

	// readFrontier is the highest durability frontier a BACKUP of this
	// group has reported on a read response. The primary-fresh frontier
	// above always runs slightly ahead of the backups' watermark copies
	// (the copy rides the NEXT mirror batch), so a transaction
	// snapshotted at it arrives early and parks in the backup's
	// patience wait. Snapshotting at what a backup has actually
	// reported keeps steady-state follower reads wait-free; it is just
	// as monotone-safe, being the same quorum-durable bound one hop
	// later.
	readFrontier uint64

	// noBatch remembers that a replica of this group rejected
	// MethodReadBatch as unknown (the peer predates the method), so
	// later batches skip straight to the per-object fallback instead of
	// paying a doomed round trip each time. Reset when the membership
	// changes: a new configuration may be all upgraded servers.
	noBatch atomic.Bool
}

// readSeed staggers which backup each successive client pins its
// reads to, so a process full of follower-reading clients spreads
// load across the group instead of piling onto backup #1.
var readSeed atomic.Uint64

// noteFrontier adopts a durability frontier learned from an ack.
func (g *replicaGroup) noteFrontier(f clock.Timestamp) {
	g.mu.Lock()
	if uint64(f) > g.frontier {
		g.frontier = uint64(f)
	}
	g.mu.Unlock()
}

// frontierNow returns the highest durability frontier learned so far.
func (g *replicaGroup) frontierNow() clock.Timestamp {
	g.mu.Lock()
	defer g.mu.Unlock()
	return clock.Timestamp(g.frontier)
}

// noteReadFrontier adopts a durability frontier a backup reported on a
// read response.
func (g *replicaGroup) noteReadFrontier(f clock.Timestamp) {
	g.mu.Lock()
	if uint64(f) > g.readFrontier {
		g.readFrontier = uint64(f)
	}
	g.mu.Unlock()
}

// followerSnapNow returns the snapshot BeginFollower should use for
// this group: the backup-reported frontier once one is known (reads at
// it are served without waiting), otherwise the primary-fresh one.
func (g *replicaGroup) followerSnapNow() clock.Timestamp {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.readFrontier > 0 {
		return clock.Timestamp(g.readFrontier)
	}
	return clock.Timestamp(g.frontier)
}

// routeFrontierNow returns the highest snapshot worth routing to a
// backup: the freshest durability frontier learned from either side.
func (g *replicaGroup) routeFrontierNow() clock.Timestamp {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.readFrontier > g.frontier {
		return clock.Timestamp(g.readFrontier)
	}
	return clock.Timestamp(g.frontier)
}

// followerConn returns a connection to this client's pinned backup
// (addrs[0] is the believed primary and is skipped), dialing on
// demand; an undialable backup rotates the pin to the next one. ok is
// false when the group has no reachable backup.
func (g *replicaGroup) followerConn() (conn *rpc.Client, addr string, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed || len(g.addrs) < 2 {
		return nil, "", false
	}
	n := len(g.addrs) - 1
	for i := 0; i < n; i++ {
		idx := 1 + (g.readCur+i)%n
		a := g.addrs[idx]
		c := g.readConns[a]
		if c == nil {
			dialed, err := rpc.DialTimeout(a, dialTimeout)
			if err != nil {
				continue
			}
			if g.readConns == nil {
				g.readConns = make(map[string]*rpc.Client)
			}
			g.readConns[a] = dialed
			c = dialed
		}
		g.readCur = (g.readCur + i) % n
		return c, a, true
	}
	return nil, "", false
}

// invalidateFollower drops a failed backup connection and rotates the
// read pin off it; the identity check keeps concurrent callers from
// closing a fresh redial.
func (g *replicaGroup) invalidateFollower(addr string, bad *rpc.Client) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.readConns[addr] == bad {
		bad.Close()
		delete(g.readConns, addr)
	}
	if n := len(g.addrs) - 1; n > 0 && g.addrs[1+g.readCur%n] == addr {
		g.readCur = (g.readCur + 1) % n
	}
}

// dialTimeout bounds each replica dial during failover: a blackholed
// primary must cost seconds, not the kernel connect timeout, before
// the group rotates to a reachable backup.
const dialTimeout = 3 * time.Second

// get returns the group's live connection, dialing replicas starting
// at the preferred one until one answers.
func (g *replicaGroup) get() (*rpc.Client, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, errors.New("kvclient: client closed")
	}
	if g.conn != nil {
		return g.conn, nil
	}
	var lastErr error
	for i := 0; i < len(g.addrs); i++ {
		idx := (g.cur + i) % len(g.addrs)
		conn, err := rpc.DialTimeout(g.addrs[idx], dialTimeout)
		if err == nil {
			g.cur, g.conn, g.connAddr = idx, conn, g.addrs[idx]
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("kvclient: no reachable replica in %v: %w", g.addrs, lastErr)
}

// size returns the current number of known replicas.
func (g *replicaGroup) size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.addrs)
}

// epochNow returns the epoch requests should be stamped with.
func (g *replicaGroup) epochNow() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// noteEpoch adopts a newer configuration learned from an ack piggyback
// or a wrong-epoch redirect. It reports whether anything changed. The
// current connection is kept only if it points at the new primary;
// otherwise the group redials preferring the new members[0].
func (g *replicaGroup) noteEpoch(epoch uint64, members []string) bool {
	if len(members) == 0 {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if epoch <= g.epoch {
		return false
	}
	g.epoch = epoch
	g.addrs = append([]string(nil), members...)
	g.cur = 0
	if g.conn != nil && g.connAddr != members[0] {
		g.conn.Close()
		g.conn = nil
	}
	// Drop backup read connections: the membership changed, and a
	// connection to a retired member would keep bouncing reads off it.
	// (Reconfiguration is rare; redialing survivors is cheap.) The
	// learned frontier is KEPT — it covers only quorum-durable prefixes,
	// which the new epoch preserves.
	for a, rc := range g.readConns {
		rc.Close()
		delete(g.readConns, a)
	}
	g.readCur = int(readSeed.Add(1))
	g.noBatch.Store(false)
	return true
}

// invalidate drops a failed connection and points the group at the
// next replica. The identity check keeps concurrent callers that hit
// the same dead connection from rotating past a healthy replica.
func (g *replicaGroup) invalidate(bad *rpc.Client) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.conn == bad {
		bad.Close()
		g.conn = nil
		g.cur = (g.cur + 1) % len(g.addrs)
	}
}

func (g *replicaGroup) close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closed = true
	if g.conn != nil {
		g.conn.Close()
		g.conn = nil
	}
	for a, rc := range g.readConns {
		rc.Close()
		delete(g.readConns, a)
	}
}

// Open dials every storage server. The order of addrs defines server
// slots: an OID with slot s lives on addrs[s % len(addrs)]. Each slot
// has a single replica; use OpenReplicated for failover.
func Open(addrs []string) (*Client, error) {
	groups := make([][]string, len(addrs))
	for i, a := range addrs {
		groups[i] = []string{a}
	}
	return OpenReplicated(groups)
}

// OpenReplicated dials a cluster of replicated server slots: groups[s]
// lists the replica addresses for slot s, preferred (primary) first.
// Reads and other idempotent operations transparently fail over to a
// backup when the current replica dies; commits whose acknowledgment
// is lost surface kv.ErrUncertain instead of retrying.
//
// Open also merges every server's clock into the client's before the
// first transaction: a fresh client's wall clock may trail the
// servers' hybrid logical clocks (their logical component runs ahead
// under load), and a snapshot taken below already-committed timestamps
// would silently miss that data.
func OpenReplicated(groups [][]string) (*Client, error) {
	if len(groups) == 0 {
		return nil, errors.New("kvclient: no servers")
	}
	c := &Client{hlc: clock.New()}
	// Random bases make transaction ids and OIDs unique across client
	// processes without coordination.
	var seed [16]byte
	if _, err := crand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("kvclient: seeding ids: %v", err)
	}
	c.nextTx.Store(binary.LittleEndian.Uint64(seed[0:8]))
	c.nextOID.Store(binary.LittleEndian.Uint64(seed[8:16]) & ((1 << 40) - 1))
	for s, addrs := range groups {
		if len(addrs) == 0 {
			return nil, fmt.Errorf("kvclient: server slot %d has no replicas", s)
		}
		c.groups = append(c.groups, &replicaGroup{addrs: addrs, readCur: int(readSeed.Add(1))})
	}
	ctx := context.Background()
	for s := range c.groups {
		// One ping per slot merges the slot's clock and learns its
		// current epoch and membership from the ack piggyback. The ping
		// rotates across the slot's replicas, so a down replica is
		// tolerated as long as ANY member of the group answers — a
		// backup is enough (it carries the group's clock and knows the
		// configuration), even though it would reject data operations.
		if err := c.Ping(ctx, s); err != nil {
			c.Close()
			return nil, fmt.Errorf("kvclient: merging clock of server %d: %w", s, err)
		}
	}
	// A client that stays idle across an entire epoch's lifetime would
	// otherwise strand on dead addresses: ack piggybacks and redirects
	// only reach a client that is talking. The heartbeat keeps an idle
	// client's group view fresh from the same ping that seeded it —
	// but only where there is a membership to follow: single-replica
	// slots have no failover, and taxing every unreplicated client
	// with a ping-per-second-per-slot would buy nothing. (Replicas
	// learned later via piggybacks don't retrigger this; call
	// StartHeartbeat manually for that unusual topology.)
	for _, g := range c.groups {
		if g.size() > 1 {
			c.StartHeartbeat(DefaultHeartbeatInterval)
			break
		}
	}
	return c, nil
}

// DefaultHeartbeatInterval is how often an otherwise idle client pings
// each server slot to refresh its epoch and membership view (see
// StartHeartbeat).
const DefaultHeartbeatInterval = time.Second

// heartbeatTimeout bounds one heartbeat ping's RPC time. Dialing a
// blackholed replica is bounded separately by dialTimeout per replica
// (get ignores the context), so a fully dead slot's ping can take a
// few seconds — which is why the sweep pings slots concurrently: one
// dead slot must not starve the others' refresh cadence.
const heartbeatTimeout = 2 * time.Second

// StartHeartbeat (re)starts the background membership heartbeat: every
// interval, the client pings each server slot (kv.MethodPing answers
// from any replica, regardless of role), merging clocks and adopting
// the epoch and membership the ack piggybacks. An ACTIVE client learns
// configuration changes from its ordinary traffic; the heartbeat is
// for the idle one — without it, a client that sleeps through a
// failover AND the re-formation that retires the addresses it knows
// wakes up stranded, with every replica it ever heard of dead.
// OpenReplicated starts it at DefaultHeartbeatInterval; tests shorten
// it to compress failover timelines. An interval <= 0 stops the
// heartbeat without starting a new one.
func (c *Client) StartHeartbeat(interval time.Duration) {
	c.hbMu.Lock()
	defer c.hbMu.Unlock()
	if c.hbStop != nil {
		close(c.hbStop)
		c.hbStop = nil
	}
	if interval <= 0 {
		return
	}
	stop := make(chan struct{})
	c.hbStop = stop
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			// One concurrent ping per multi-replica slot (single-replica
			// slots have no membership to follow): a slot whose replicas
			// are all unreachable costs its own dial timeouts, not the
			// others' freshness. The wait between ticks keeps at most
			// one sweep in flight.
			var wg sync.WaitGroup
			for s, g := range c.groupList() {
				if g.size() <= 1 {
					continue
				}
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), heartbeatTimeout)
					c.Ping(ctx, s) // best-effort: a dead slot stays dead until it answers
					cancel()
				}(s)
			}
			wg.Wait()
		}
	}()
}

// StopHeartbeat stops the background membership heartbeat.
func (c *Client) StopHeartbeat() { c.StartHeartbeat(0) }

// Close tears down all server connections, after waiting out any
// in-flight background directory fetch.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.StopHeartbeat()
	c.dirWG.Wait()
	for _, g := range c.groupList() {
		g.close()
	}
	return nil
}

// NumServers returns the number of placement slots OIDs spread across.
// With a slot directory adopted this is the directory's fixed route
// count — frozen at cluster formation, unchanged by scale-out — so
// placement computed from it (dbt root OIDs) stays stable when servers
// join. Without a directory it is the number of known groups (the
// legacy modulo rule).
func (c *Client) NumServers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir != nil {
		return len(c.dir.Routes)
	}
	return len(c.groups)
}

// Clock exposes the client's hybrid logical clock.
func (c *Client) Clock() *clock.HLC { return c.hlc }

// ServerFor maps an OID to the index of the replica group that owns it:
// through the adopted slot directory when one is known, by the legacy
// slot-modulo rule otherwise.
func (c *Client) ServerFor(oid kv.OID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir != nil {
		return int(c.dir.GroupFor(oid))
	}
	return int(oid.Slot()) % len(c.groups)
}

// group returns the replica group at index i (stable pointer).
func (c *Client) group(i int) *replicaGroup {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.groups[i]
}

// groupList snapshots the current groups for iteration.
func (c *Client) groupList() []*replicaGroup {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*replicaGroup(nil), c.groups...)
}

// DirectoryVersion returns the adopted slot directory's version (0 =
// none adopted; routing falls back to slot modulo).
func (c *Client) DirectoryVersion() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir == nil {
		return 0
	}
	return c.dir.Version
}

// adoptDirectory installs d as the client's routing directory if it is
// newer than the adopted one, creating replica groups for any group
// index the client has not seen yet. Reports whether it was adopted.
func (c *Client) adoptDirectory(d *kv.Directory) bool {
	if d == nil || len(d.Routes) == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir != nil && d.Version <= c.dir.Version {
		return false
	}
	d = d.Clone()
	c.ensureGroupsLocked(d)
	c.dir = d
	return true
}

// ensureGroupsLocked grows c.groups to cover every group d names. The
// directory's address lists seed NEW groups only; a group the client
// already tracks keeps its epoch-learned membership (the directory is
// advisory about who serves a group — epoch state is authoritative).
// Caller holds c.mu.
func (c *Client) ensureGroupsLocked(d *kv.Directory) {
	for gi := len(c.groups); gi < len(d.Groups); gi++ {
		c.groups = append(c.groups, &replicaGroup{
			addrs:   append([]string(nil), d.Groups[gi]...),
			readCur: int(readSeed.Add(1)),
		})
	}
}

// FetchDirectory fetches the slot directory from server's group and
// adopts it if newer — an eager, synchronous alternative to learning it
// from ack piggybacks. Old peers answer unknown-method; the error
// leaves modulo routing in force.
func (c *Client) FetchDirectory(ctx context.Context, server int) error {
	return c.fetchDirectory(ctx, server)
}

// fetchDirectory fetches the slot directory from server's group and
// adopts it if newer. Old peers answer unknown-method; the error is the
// caller's signal to keep modulo routing.
func (c *Client) fetchDirectory(ctx context.Context, server int) error {
	respB, err := c.call(ctx, server, kv.MethodDirectory, func(uint64) []byte { return nil }, retryAlways)
	if err != nil {
		return err
	}
	resp, err := kv.DecodeDirectoryResp(respB)
	if err != nil {
		return err
	}
	c.hlc.Observe(resp.Clock)
	c.adoptDirectory(resp.Dir)
	return nil
}

// fetchDirectoryAsync starts a single-flight background directory fetch
// from server's group (the one whose ack advertised a newer version).
// The goroutine is tracked so Close can wait it out.
func (c *Client) fetchDirectoryAsync(server int) {
	c.mu.Lock()
	if c.closed || c.dirFetching {
		c.mu.Unlock()
		return
	}
	c.dirFetching = true
	c.dirWG.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.dirWG.Done()
		ctx, cancel := context.WithTimeout(context.Background(), heartbeatTimeout)
		c.fetchDirectory(ctx, server) // best-effort: the next ack re-triggers
		cancel()
		c.mu.Lock()
		c.dirFetching = false
		c.mu.Unlock()
	}()
}

// noteWrongSlot reacts to a WrongSlotError redirect from server: it
// patches the adopted directory's route in place (keeping the adopted
// version, so the follow-up full fetch — which carries the rejecting
// server's newer version — still lands), and triggers that fetch. A
// client with no directory yet fetches synchronously: it cannot patch
// what it does not have, and without the map every retry would bounce.
func (c *Client) noteWrongSlot(server int, ws *kv.WrongSlotError) {
	c.mu.Lock()
	cur := uint64(0)
	if c.dir != nil {
		cur = c.dir.Version
	}
	if c.dir != nil && ws.Version > cur &&
		int(ws.Route) < len(c.dir.Routes) && c.dir.Routes[ws.Route] != ws.Group {
		d := c.dir.Clone()
		for int(ws.Group) >= len(d.Groups) {
			d.Groups = append(d.Groups, nil)
		}
		if len(ws.Members) > 0 {
			d.Groups[ws.Group] = append([]string(nil), ws.Members...)
		}
		d.Routes[ws.Route] = ws.Group
		c.ensureGroupsLocked(d)
		c.dir = d
	}
	c.mu.Unlock()
	if ws.Version <= cur {
		return
	}
	if cur == 0 {
		ctx, cancel := context.WithTimeout(context.Background(), heartbeatTimeout)
		c.fetchDirectory(ctx, server)
		cancel()
		return
	}
	c.fetchDirectoryAsync(server)
}

// Wrong-slot redirects are transient by design: during a migration
// cutover there is a window where the source group already rejects a
// moved route and the destination has not yet installed the directory
// that says it owns it — both sides bounce. Data paths therefore retry
// redirects patiently (re-resolving placement each attempt) instead of
// surfacing them; the budget only bounds a pathological ping-pong.
const (
	wrongSlotRetries = 2000
	wrongSlotPause   = 2 * time.Millisecond
)

// retryWrongSlot reports whether err is a wrong-slot redirect the
// caller should retry (after adopting what the redirect teaches and a
// short pause). tries counts the caller's attempts so far.
func (c *Client) retryWrongSlot(ctx context.Context, server int, err error, tries int) bool {
	var ws *kv.WrongSlotError
	if !errors.As(err, &ws) {
		return false
	}
	c.noteWrongSlot(server, ws)
	if ctx.Err() != nil || tries >= wrongSlotRetries {
		return false
	}
	time.Sleep(wrongSlotPause)
	return true
}

// NewOID mints a fresh OID on server slot. Local ids combine a random
// per-client base with a counter, so distinct clients do not collide.
func (c *Client) NewOID(slot uint16) kv.OID {
	return kv.MakeOID(slot, c.nextOID.Add(1))
}

// callPolicy says how call handles a transport failure after the
// request may have reached the server.
type callPolicy int

const (
	// retryAlways: the operation is idempotent; retry on the next
	// replica regardless of whether the first attempt was delivered.
	// (Caveat: a read retried on the backup while the primary is still
	// alive skips the primary's prepare locks and the Clock-SI wait
	// they enforce; the window only exists for a connection failure
	// without a primary crash — see ROADMAP "quorum reads".)
	retryAlways callPolicy = iota
	// retryUnsent: retry only when the request provably never left this
	// process (rpc.ErrNotSent); a sent-but-unacknowledged attempt fails
	// with the transport error. Used for Prepare: re-preparing on a
	// backup while the primary may still hold the first vote would
	// stage the transaction on two replicas at once.
	retryUnsent
	// retryUnsentUncertain: like retryUnsent, but a sent-but-
	// unacknowledged attempt surfaces kv.ErrUncertain. Used for fast
	// commits, which may have been applied and replicated before the
	// acknowledgment was lost and are not idempotent (a one-shot
	// transaction leaves no prepared state to retry against). Phase-two
	// decisions of two-phase commit, by contrast, retry with
	// retryAlways: prepares and decisions are replicated and
	// remembered, so a duplicate is acknowledged server-side.
	retryUnsentUncertain
)

// maxEpochHops bounds how many ErrWrongEpoch redirects one call will
// follow. Each productive hop strictly increases the group's known
// epoch; the bound only guards against a pathological ping-pong.
const maxEpochHops = 4

// call issues method(enc(epoch)) against server slot's current
// replica; enc re-encodes the request on every attempt so retries
// always carry the freshest known group epoch. Transport failures
// rotate the group to the next replica and retry according to policy.
// An ErrWrongEpoch rejection guarantees the operation was not
// executed, so — for every policy — the client adopts the carried
// configuration (or rotates, if it learned nothing new) and retries.
// Other application errors and context cancellation never fail over.
func (c *Client) call(ctx context.Context, server int, method string, enc func(epoch uint64) []byte, policy callPolicy) ([]byte, error) {
	g := c.group(server)
	var lastErr error
	epochHops := 0
	for attempt := 0; attempt <= g.size(); attempt++ {
		conn, err := g.get()
		if err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		resp, err := conn.Call(ctx, method, enc(g.epochNow()))
		if err == nil {
			return resp, nil
		}
		var app *rpc.AppError
		if errors.As(err, &app) {
			if ts, ok := kv.ParseClockMark(app.Msg); ok {
				// A commit-path failure that still installed state at the
				// server: merge its clock so this client's next snapshot
				// covers whatever the failed call left behind.
				c.hlc.Observe(ts)
			}
			we, ok := kv.ParseWrongEpoch(app.Msg)
			if !ok || epochHops >= maxEpochHops {
				return nil, err
			}
			epochHops++
			lastErr = err
			if g.noteEpoch(we.Epoch, we.Members) {
				// New configuration adopted: start the replica walk over
				// (the preferred member changed under us).
				attempt = -1
				continue
			}
			// Nothing new learned (a backup bounced us, or a primary
			// without a lease): try the next replica.
			g.invalidate(conn)
			continue
		}
		if ctx.Err() != nil {
			return nil, err
		}
		g.invalidate(conn)
		lastErr = err
		if policy != retryAlways && !errors.Is(err, rpc.ErrNotSent) {
			if policy == retryUnsentUncertain {
				return nil, fmt.Errorf("%w: %v", kv.ErrUncertain, err)
			}
			return nil, err
		}
	}
	return nil, lastErr
}

// observeAck merges an ack's clock, configuration, durability-frontier,
// and directory-version piggybacks. A newer directory version triggers
// a background fetch of the full map — so every client touching a
// group, even only through its heartbeat ping, converges on the new
// routing without a redirect.
func (c *Client) observeAck(server int, ack *kv.Ack) {
	c.hlc.Observe(ack.Clock)
	g := c.group(server)
	g.noteEpoch(ack.Epoch, ack.Members)
	g.noteFrontier(ack.Frontier)
	if ack.DirVersion > c.DirectoryVersion() {
		c.fetchDirectoryAsync(server)
	}
}

// Ping round-trips to server slot i, merging clocks and learning the
// slot's current epoch and membership from the ack piggyback.
func (c *Client) Ping(ctx context.Context, server int) error {
	resp, err := c.call(ctx, server, kv.MethodPing, func(uint64) []byte { return nil }, retryAlways)
	if err != nil {
		return err
	}
	ack, err := kv.DecodeAck(resp)
	if err != nil {
		return err
	}
	c.observeAck(server, ack)
	return nil
}

// FollowerSnapshot returns the newest snapshot timestamp every
// replicated server slot can currently serve as a follower read: the
// minimum durability frontier learned across multi-replica groups
// (single-replica slots always serve at any snapshot and don't cap
// it). Once a group's backups have reported their own frontier on
// read responses, that bound is used — reads at it never park in a
// backup's patience wait. Zero until any frontier has been learned —
// callers fall back to a current-time snapshot then.
func (c *Client) FollowerSnapshot() clock.Timestamp {
	snap, any := clock.Timestamp(0), false
	for _, g := range c.groupList() {
		if g.size() < 2 {
			continue
		}
		f := g.followerSnapNow()
		if !any || f < snap {
			snap, any = f, true
		}
	}
	return snap
}

// BeginFollower starts a transaction at the FollowerSnapshot, so with
// follower reads enabled every read it performs can be served by a
// backup. The snapshot trails the newest commits by the watermark lag
// (bounded staleness: everything visible is quorum-durable, but this
// transaction may not see this client's own most recent writes). Use
// it for read-only work that values throughput over freshness; it
// falls back to an ordinary Begin until a frontier is known.
func (c *Client) BeginFollower() *Tx {
	if snap := c.FollowerSnapshot(); snap > 0 {
		return c.BeginAt(snap)
	}
	return c.Begin()
}

// readCall routes one snapshot read. With follower reads on and the
// snapshot at or below the group's learned durability frontier, it
// first tries this client's pinned backup — the backup's own
// CheckClientRead re-verifies the bound against ITS frontier, so a
// stale client view costs a redirect, never a stale answer. Any
// follower failure (unreachable, wrong epoch, behind) falls back to
// the ordinary primary path; epoch redirects learned on the way are
// adopted first, so the fallback already walks the fresh membership.
// viaFollower reports which side answered, so the caller can file the
// response's frontier under the right bound.
func (c *Client) readCall(ctx context.Context, server int, snap clock.Timestamp, method string, enc func(epoch uint64) []byte) (respB []byte, viaFollower bool, err error) {
	g := c.group(server)
	if c.followerReads.Load() && snap <= g.routeFrontierNow() {
		if conn, addr, ok := g.followerConn(); ok {
			resp, err := conn.Call(ctx, method, enc(g.epochNow()))
			if err == nil {
				return resp, true, nil
			}
			var app *rpc.AppError
			if errors.As(err, &app) {
				if we, ok := kv.ParseWrongEpoch(app.Msg); ok {
					g.noteEpoch(we.Epoch, we.Members)
				}
			} else if ctx.Err() == nil {
				g.invalidateFollower(addr, conn)
			}
		}
	}
	respB, err = c.call(ctx, server, method, enc, retryAlways)
	return respB, false, err
}

// noteReadResp files the durability frontier a read response carried:
// a backup's answer vouches for the backup-reported bound, a primary's
// for the fresh one.
func (c *Client) noteReadResp(server int, frontier clock.Timestamp, viaFollower bool) {
	if frontier == 0 {
		return
	}
	g := c.group(server)
	if viaFollower {
		g.noteReadFrontier(frontier)
	} else {
		g.noteFrontier(frontier)
	}
}

// readAt fetches the newest version of oid visible at snap, re-routing
// through the directory on wrong-slot redirects (the owning group moved
// mid-migration).
func (c *Client) readAt(ctx context.Context, oid kv.OID, snap clock.Timestamp) (*kv.Value, error) {
	durable := c.durableReads.Load()
	var (
		respB       []byte
		viaFollower bool
		server      int
	)
	for tries := 0; ; tries++ {
		server = c.ServerFor(oid)
		var err error
		respB, viaFollower, err = c.readCall(ctx, server, snap, kv.MethodRead, func(epoch uint64) []byte {
			return (&kv.ReadReq{OID: oid, Snap: snap, Epoch: epoch, Durable: durable}).Encode()
		})
		if err != nil {
			terr := translateRPCErr(err)
			if c.retryWrongSlot(ctx, server, terr, tries) {
				continue
			}
			return nil, terr
		}
		break
	}
	resp, err := kv.DecodeReadResp(respB)
	if err != nil {
		return nil, err
	}
	c.hlc.Observe(resp.Clock)
	c.noteReadResp(server, resp.Frontier, viaFollower)
	if !resp.Found {
		return nil, kv.ErrNotFound
	}
	return resp.Value, nil
}

// readPartAt fetches a windowed view of oid at snap: cells in
// [floor(from), to) capped at max (0 = unlimited), plus the node's
// total cell count. Like readAt it carries no staged-write overlay.
func (c *Client) readPartAt(ctx context.Context, oid kv.OID, snap clock.Timestamp, from, to []byte, max uint32) (*kv.Value, int, error) {
	durable := c.durableReads.Load()
	var (
		respB       []byte
		viaFollower bool
		server      int
	)
	for tries := 0; ; tries++ {
		server = c.ServerFor(oid)
		var err error
		respB, viaFollower, err = c.readCall(ctx, server, snap, kv.MethodReadPart, func(epoch uint64) []byte {
			return (&kv.ReadPartReq{OID: oid, Snap: snap, From: from, To: to, Max: max, Epoch: epoch, Durable: durable}).Encode()
		})
		if err != nil {
			terr := translateRPCErr(err)
			if c.retryWrongSlot(ctx, server, terr, tries) {
				continue
			}
			return nil, 0, terr
		}
		break
	}
	resp, err := kv.DecodeReadPartResp(respB)
	if err != nil {
		return nil, 0, err
	}
	c.hlc.Observe(resp.Clock)
	c.noteReadResp(server, resp.Frontier, viaFollower)
	if !resp.Found {
		return nil, 0, kv.ErrNotFound
	}
	return resp.Value, int(resp.Total), nil
}

// readBatchAt serves items — all living on server slot server — at
// snap with one MethodReadBatch RPC, routed like any other snapshot
// read (follower pinning, primary fallback, frontier bookkeeping).
// Against a peer that predates the method it downgrades to per-object
// reads, remembering the downgrade on the group so later batches skip
// the doomed attempt. Results are positional; absent objects come back
// Found=false (Version is zero on the fallback path).
func (c *Client) readBatchAt(ctx context.Context, server int, snap clock.Timestamp, items []kv.ReadBatchItem) ([]kv.ReadBatchResult, error) {
	g := c.group(server)
	if !g.noBatch.Load() {
		durable := c.durableReads.Load()
		respB, viaFollower, err := c.readCall(ctx, server, snap, kv.MethodReadBatch, func(epoch uint64) []byte {
			return (&kv.ReadBatchReq{Snap: snap, Epoch: epoch, Durable: durable, Items: items}).Encode()
		})
		switch {
		case err == nil:
			resp, err := kv.DecodeReadBatchResp(respB)
			if err != nil {
				return nil, err
			}
			if len(resp.Results) != len(items) {
				return nil, fmt.Errorf("kvclient: read batch answered %d of %d items", len(resp.Results), len(items))
			}
			c.hlc.Observe(resp.Clock)
			c.noteReadResp(server, resp.Frontier, viaFollower)
			return resp.Results, nil
		case isUnknownMethod(err):
			g.noBatch.Store(true)
		default:
			return nil, translateRPCErr(err)
		}
	}
	results := make([]kv.ReadBatchResult, len(items))
	for i := range items {
		item := &items[i]
		var (
			val   *kv.Value
			total int
			err   error
		)
		if item.Part {
			val, total, err = c.readPartAt(ctx, item.OID, snap, item.From, item.To, item.Max)
		} else {
			val, err = c.readAt(ctx, item.OID, snap)
		}
		switch {
		case err == nil:
			results[i] = kv.ReadBatchResult{Found: true, Value: val, Total: uint32(total)}
		case errors.Is(err, kv.ErrNotFound):
			// Found=false result: one absent object must not fail the batch.
		default:
			return nil, err
		}
	}
	return results, nil
}

// readBatchSlots partitions items by owning group, sends each group's
// sub-batch with one readBatchAt call — the sub-batches in parallel
// when more than one group is involved — and merges the answers
// positionally. A wrong-slot redirect from any group re-partitions the
// whole batch under the directory the redirect taught and retries: the
// grouping itself, not just one item's placement, is stale.
func (c *Client) readBatchSlots(ctx context.Context, snap clock.Timestamp, items []kv.ReadBatchItem) ([]kv.ReadBatchResult, error) {
	for tries := 0; ; tries++ {
		results, server, err := c.readBatchSlotsOnce(ctx, snap, items)
		if err != nil && c.retryWrongSlot(ctx, server, err, tries) {
			continue
		}
		return results, err
	}
}

// readBatchSlotsOnce runs one partition-and-fan-out round; server is
// the group whose sub-batch produced err (for the redirect machinery).
func (c *Client) readBatchSlotsOnce(ctx context.Context, snap clock.Timestamp, items []kv.ReadBatchItem) ([]kv.ReadBatchResult, int, error) {
	bySlot := make(map[int][]int)
	for i := range items {
		s := c.ServerFor(items[i].OID)
		bySlot[s] = append(bySlot[s], i)
	}
	if len(bySlot) == 1 {
		for s := range bySlot {
			res, err := c.readBatchAt(ctx, s, snap, items)
			return res, s, err
		}
	}
	results := make([]kv.ReadBatchResult, len(items))
	type slotResult struct {
		server int
		idx    []int
		res    []kv.ReadBatchResult
		err    error
	}
	ch := make(chan slotResult, len(bySlot))
	for s, idx := range bySlot {
		sub := make([]kv.ReadBatchItem, len(idx))
		for j, i := range idx {
			sub[j] = items[i]
		}
		go func(s int, idx []int, sub []kv.ReadBatchItem) {
			res, err := c.readBatchAt(ctx, s, snap, sub)
			ch <- slotResult{server: s, idx: idx, res: res, err: err}
		}(s, idx, sub)
	}
	var firstErr error
	errServer := 0
	for range bySlot {
		sr := <-ch
		if sr.err != nil {
			// Prefer reporting a wrong-slot failure: it is the one the
			// caller can fix by re-partitioning.
			var ws *kv.WrongSlotError
			if firstErr == nil || (errors.As(sr.err, &ws) && !errors.Is(firstErr, kv.ErrWrongSlot)) {
				firstErr, errServer = sr.err, sr.server
			}
			continue
		}
		for j, i := range sr.idx {
			results[i] = sr.res[j]
		}
	}
	if firstErr != nil {
		return nil, errServer, firstErr
	}
	return results, 0, nil
}

// isUnknownMethod reports that the server answered "no such RPC
// method" — the signal that a peer predates a newer method and the
// caller should fall back to older ones.
func isUnknownMethod(err error) bool {
	return rpc.AppErrIs(err, kv.CodeUnknownMethod, rpc.ErrUnknownMethod)
}

// ReadView is a concurrency-safe, read-only view of the store at a
// fixed snapshot timestamp. Unlike a Tx it stages no writes and
// overlays nothing, so it may be shared across goroutines; the dbt
// scan readahead uses one to prefetch leaves on a background goroutine
// while the owning transaction's goroutine keeps consuming. Reads
// route exactly like transaction reads (follower pinning, primary
// fallback, frontier bookkeeping), and — reading a fixed MVCC snapshot
// — return the same bytes a transaction at the same snapshot with no
// staged writes would see, no matter which goroutine or replica serves
// them.
type ReadView struct {
	c    *Client
	snap clock.Timestamp
}

// View returns a read view of the store at snap.
func (c *Client) View(snap clock.Timestamp) *ReadView {
	return &ReadView{c: c, snap: snap}
}

// View returns a concurrency-safe read view at this transaction's
// snapshot. The view does NOT see the transaction's staged writes —
// callers that may have writes pending must overlay via the Tx.
func (t *Tx) View() *ReadView { return t.c.View(t.start) }

// Snapshot returns the view's snapshot timestamp.
func (v *ReadView) Snapshot() clock.Timestamp { return v.snap }

// Read fetches the newest version of oid visible at the snapshot.
func (v *ReadView) Read(ctx context.Context, oid kv.OID) (*kv.Value, error) {
	return v.c.readAt(ctx, oid, v.snap)
}

// ReadPart fetches a window of the supervalue at oid: cells in
// [floor(from), to) capped at max, plus the node's total cell count.
func (v *ReadView) ReadPart(ctx context.Context, oid kv.OID, from, to []byte, max uint32) (*kv.Value, int, error) {
	return v.c.readPartAt(ctx, oid, v.snap, from, to, max)
}

// ReadBatch performs len(items) snapshot reads in as few RPCs as the
// data's placement allows: one MethodReadBatch per involved server
// slot, in parallel. The same contract as Tx.ReadBatch minus any
// overlay: results are positional, absent objects come back
// Found=false. The dbt scan readahead uses this to fetch runs of
// predicted leaves with one round trip.
func (v *ReadView) ReadBatch(ctx context.Context, items []kv.ReadBatchItem) ([]kv.ReadBatchResult, error) {
	return v.c.readBatchSlots(ctx, v.snap, items)
}

// translateRPCErr maps application errors from the server back to the
// package's sentinel errors so callers can match with errors.Is. The
// match is by wire code (rpc.AppError.Code, assigned by the server's
// error coder); rpc.AppErrIs falls back to text matching only for a
// response from a server predating codes.
func translateRPCErr(err error) error {
	var app *rpc.AppError
	if errors.As(err, &app) {
		switch {
		case rpc.AppErrIs(err, kv.CodeUncertain, kv.ErrUncertain):
			// A commit that failed its replication/durability wait: the
			// record is in the primary's local stream but the backup's
			// acknowledgment never came, so whether it survives a
			// failover is unknown — the same contract as a lost ack.
			// Matched FIRST: the message embeds the underlying batch
			// error, which may itself name wrong-epoch/conflict/bad-
			// request — sentinels whose contracts promise the operation
			// was NOT executed, the opposite of what happened here.
			// (Coded responses already resolve this precedence on the
			// server; the legacy text fallback still relies on it.)
			return fmt.Errorf("%w: %s", kv.ErrUncertain, app.Msg)
		case rpc.AppErrIs(err, kv.CodeConflict, kv.ErrConflict):
			return fmt.Errorf("%w: %s", kv.ErrConflict, app.Msg)
		case rpc.AppErrIs(err, kv.CodeWrongEpoch, kv.ErrWrongEpoch):
			return fmt.Errorf("%w: %s", kv.ErrWrongEpoch, app.Msg)
		case rpc.AppErrIs(err, kv.CodeWrongSlot, kv.ErrWrongSlot):
			// Keep the typed redirect: the data paths re-route on it
			// (retryWrongSlot) instead of surfacing it.
			if ws, ok := kv.ParseWrongSlot(app.Msg); ok {
				return ws
			}
			return fmt.Errorf("%w: %s", kv.ErrWrongSlot, app.Msg)
		case rpc.AppErrIs(err, kv.CodeBadRequest, kv.ErrBadRequest):
			return fmt.Errorf("%w: %s", kv.ErrBadRequest, app.Msg)
		}
	}
	return err
}
