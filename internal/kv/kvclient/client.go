// Package kvclient is the client library of Yesquel's transactional
// key-value storage system (the "client lib" box in Figure 1 of the
// paper). It connects to the storage servers, places objects by the
// server slot embedded in their OIDs, and runs transactions under
// snapshot isolation: buffered writes, first-committer-wins conflict
// detection, one-round-trip fast commit for single-participant
// transactions, and two-phase commit otherwise.
package kvclient

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"yesquel/internal/clock"
	"yesquel/internal/kv"
	"yesquel/internal/rpc"
)

// Client is a connection to a set of storage servers. It is safe for
// concurrent use; transactions created from it are not (a transaction
// belongs to one goroutine, as in the paper's per-client query
// processor).
type Client struct {
	addrs []string
	conns []*rpc.Client
	hlc   *clock.HLC

	nextTx  atomic.Uint64
	nextOID atomic.Uint64
}

// Open dials every storage server. The order of addrs defines server
// slots: an OID with slot s lives on addrs[s % len(addrs)].
func Open(addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("kvclient: no servers")
	}
	c := &Client{addrs: addrs, hlc: clock.New()}
	// Random bases make transaction ids and OIDs unique across client
	// processes without coordination.
	var seed [16]byte
	if _, err := crand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("kvclient: seeding ids: %v", err)
	}
	c.nextTx.Store(binary.LittleEndian.Uint64(seed[0:8]))
	c.nextOID.Store(binary.LittleEndian.Uint64(seed[8:16]) & ((1 << 40) - 1))
	for _, a := range addrs {
		conn, err := rpc.Dial(a)
		if err != nil {
			for _, prev := range c.conns {
				prev.Close()
			}
			return nil, fmt.Errorf("kvclient: dial %s: %w", a, err)
		}
		c.conns = append(c.conns, conn)
	}
	return c, nil
}

// Close tears down all server connections.
func (c *Client) Close() error {
	for _, conn := range c.conns {
		conn.Close()
	}
	return nil
}

// NumServers returns the number of storage servers.
func (c *Client) NumServers() int { return len(c.addrs) }

// Clock exposes the client's hybrid logical clock.
func (c *Client) Clock() *clock.HLC { return c.hlc }

// ServerFor maps an OID to the index of its storage server.
func (c *Client) ServerFor(oid kv.OID) int {
	return int(oid.Slot()) % len(c.conns)
}

// NewOID mints a fresh OID on server slot. Local ids combine a random
// per-client base with a counter, so distinct clients do not collide.
func (c *Client) NewOID(slot uint16) kv.OID {
	return kv.MakeOID(slot, c.nextOID.Add(1))
}

func (c *Client) conn(server int) *rpc.Client { return c.conns[server] }

// Ping round-trips to server i, merging clocks.
func (c *Client) Ping(ctx context.Context, server int) error {
	resp, err := c.conns[server].Call(ctx, kv.MethodPing, nil)
	if err != nil {
		return err
	}
	ack, err := kv.DecodeAck(resp)
	if err != nil {
		return err
	}
	c.hlc.Observe(ack.Clock)
	return nil
}

// readAt fetches the newest version of oid visible at snap.
func (c *Client) readAt(ctx context.Context, oid kv.OID, snap clock.Timestamp) (*kv.Value, error) {
	req := kv.ReadReq{OID: oid, Snap: snap}
	respB, err := c.conn(c.ServerFor(oid)).Call(ctx, kv.MethodRead, req.Encode())
	if err != nil {
		return nil, translateRPCErr(err)
	}
	resp, err := kv.DecodeReadResp(respB)
	if err != nil {
		return nil, err
	}
	c.hlc.Observe(resp.Clock)
	if !resp.Found {
		return nil, kv.ErrNotFound
	}
	return resp.Value, nil
}

// translateRPCErr maps application errors from the server back to the
// package's sentinel errors so callers can match with errors.Is.
func translateRPCErr(err error) error {
	var app *rpc.AppError
	if errors.As(err, &app) {
		switch {
		case strings.Contains(app.Msg, kv.ErrConflict.Error()):
			return fmt.Errorf("%w: %s", kv.ErrConflict, app.Msg)
		case strings.Contains(app.Msg, kv.ErrBadRequest.Error()):
			return fmt.Errorf("%w: %s", kv.ErrBadRequest, app.Msg)
		}
	}
	return err
}
