package kvclient_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"

	"yesquel/internal/cluster"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
	"yesquel/internal/rpc"
)

// seedBatchObjects commits one plain object and one supervalue per
// server slot and returns their OIDs (plain first).
func seedBatchObjects(t *testing.T, c *kvclient.Client, servers int) (plain, super []kv.OID) {
	t.Helper()
	ctx := context.Background()
	tx := c.Begin()
	for s := 0; s < servers; s++ {
		p := c.NewOID(uint16(s))
		tx.Put(p, kv.NewPlain([]byte(fmt.Sprintf("plain-%d", s))))
		plain = append(plain, p)
		sv := kv.NewSuper()
		for i := 0; i < 10; i++ {
			sv.ListAdd([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(s), byte(i)})
		}
		o := c.NewOID(uint16(s))
		tx.Put(o, sv)
		super = append(super, o)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	return plain, super
}

// checkBatchAgainstSingles asserts that a ReadBatch answers exactly
// what per-object Read/ReadPart at the same snapshot answer.
func checkBatchAgainstSingles(t *testing.T, tx *kvclient.Tx, items []kv.ReadBatchItem, results []kv.ReadBatchResult) {
	t.Helper()
	ctx := context.Background()
	if len(results) != len(items) {
		t.Fatalf("got %d results for %d items", len(results), len(items))
	}
	for i, item := range items {
		res := results[i]
		if item.Part {
			want, total, err := tx.ReadPart(ctx, item.OID, item.From, item.To, item.Max)
			if err != nil {
				if !res.Found {
					continue
				}
				t.Fatalf("item %d: batch found, single errored: %v", i, err)
			}
			if !res.Found || !res.Value.Equal(want) || int(res.Total) != total {
				t.Fatalf("item %d: batch %+v/%d != single %+v/%d", i, res.Value, res.Total, want, total)
			}
			continue
		}
		want, err := tx.Read(ctx, item.OID)
		if err != nil {
			if !res.Found {
				continue
			}
			t.Fatalf("item %d: batch found, single errored: %v", i, err)
		}
		if !res.Found || !res.Value.Equal(want) {
			t.Fatalf("item %d: batch %+v != single %+v", i, res.Value, want)
		}
	}
}

func TestTxReadBatchAcrossServers(t *testing.T) {
	const servers = 3
	_, c := startCluster(t, servers)
	plain, super := seedBatchObjects(t, c, servers)

	tx := c.Begin()
	defer tx.Abort()
	var items []kv.ReadBatchItem
	for s := 0; s < servers; s++ {
		items = append(items,
			kv.ReadBatchItem{OID: plain[s]},
			kv.ReadBatchItem{OID: super[s], Part: true, From: []byte("k03"), To: []byte("k07"), Max: 2},
			kv.ReadBatchItem{OID: c.NewOID(uint16(s))}, // absent
		)
	}
	results, err := tx.ReadBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < servers; s++ {
		if !results[3*s].Found || results[3*s+2].Found {
			t.Fatalf("slot %d: found flags %v %v", s, results[3*s].Found, results[3*s+2].Found)
		}
	}
	checkBatchAgainstSingles(t, tx, items, results)
}

func TestTxReadBatchStagedOverlay(t *testing.T) {
	_, c := startCluster(t, 2)
	ctx := context.Background()
	plain, super := seedBatchObjects(t, c, 2)

	tx := c.Begin()
	defer tx.Abort()
	// Staged writes of every flavour: a delta on a committed
	// supervalue, a full overwrite of a committed plain value, and a
	// write to an OID that does not exist yet.
	tx.ListAdd(super[0], []byte("k99"), []byte("mine"))
	tx.Put(plain[1], kv.NewPlain([]byte("overwritten")))
	fresh := c.NewOID(0)
	tx.Put(fresh, kv.NewPlain([]byte("unborn")))

	items := []kv.ReadBatchItem{
		{OID: super[0], Part: true, From: []byte("k90"), To: nil},
		{OID: plain[1]},
		{OID: fresh},
		{OID: plain[0]}, // clean item sharing the batch
	}
	results, err := tx.ReadBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := results[0].Value.ListGet([]byte("k99")); !ok || !bytes.Equal(v, []byte("mine")) {
		t.Fatalf("staged delta invisible: %v %v", v, ok)
	}
	if string(results[1].Value.Data) != "overwritten" || string(results[2].Value.Data) != "unborn" {
		t.Fatalf("staged overwrites invisible: %+v %+v", results[1].Value, results[2].Value)
	}
	checkBatchAgainstSingles(t, tx, items, results)
}

// startOldServerProxy fronts addr with an RPC server that forwards
// every method EXCEPT MethodReadBatch — the wire behaviour of a peer
// that predates the method, which answers rpc.ErrUnknownMethod.
func startOldServerProxy(t *testing.T, addr string) string {
	t.Helper()
	up, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { up.Close() })
	srv := rpc.NewServer()
	forward := func(method string) rpc.Handler {
		return func(ctx context.Context, req []byte) ([]byte, error) {
			return up.Call(ctx, method, req)
		}
	}
	for _, m := range []string{
		kv.MethodRead, kv.MethodReadPart, kv.MethodPrepare, kv.MethodCommit,
		kv.MethodAbort, kv.MethodFastCommit, kv.MethodPing,
	} {
		srv.Register(m, forward(m))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestTxReadBatchFallbackOldServer runs a batch against a server
// without the MethodReadBatch handler, end to end: the client must
// detect the unknown method, downgrade to per-object reads, remember
// the downgrade, and still answer correctly.
func TestTxReadBatchFallbackOldServer(t *testing.T) {
	cl, err := cluster.Start(1, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	oldAddr := startOldServerProxy(t, cl.Addrs[0])
	c, err := kvclient.Open([]string{oldAddr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	plain, super := seedBatchObjects(t, c, 1)
	for round := 0; round < 2; round++ { // round 2 exercises the memoized downgrade
		tx := c.Begin()
		items := []kv.ReadBatchItem{
			{OID: plain[0]},
			{OID: super[0], Part: true, From: []byte("k02"), To: []byte("k05")},
			{OID: c.NewOID(0)}, // absent
		}
		results, err := tx.ReadBatch(context.Background(), items)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !results[0].Found || !results[1].Found || results[2].Found {
			t.Fatalf("round %d: found flags %v %v %v", round,
				results[0].Found, results[1].Found, results[2].Found)
		}
		checkBatchAgainstSingles(t, tx, items, results)
		tx.Abort()
	}
}

// TestReadViewMatchesTx asserts a ReadView answers exactly what a
// clean transaction at the same snapshot answers — the property the
// dbt readahead relies on.
func TestReadViewMatchesTx(t *testing.T) {
	_, c := startCluster(t, 2)
	ctx := context.Background()
	plain, super := seedBatchObjects(t, c, 2)

	tx := c.Begin()
	defer tx.Abort()
	view := tx.View()
	if view.Snapshot() != tx.Snapshot() {
		t.Fatalf("view snapshot %v != tx snapshot %v", view.Snapshot(), tx.Snapshot())
	}
	for _, oid := range plain {
		got, err := view.Read(ctx, oid)
		want, werr := tx.Read(ctx, oid)
		if err != nil || werr != nil || !got.Equal(want) {
			t.Fatalf("view read %v: %+v (%v) vs %+v (%v)", oid, got, err, want, werr)
		}
	}
	for _, oid := range super {
		got, gt, err := view.ReadPart(ctx, oid, []byte("k02"), []byte("k08"), 3)
		want, wt, werr := tx.ReadPart(ctx, oid, []byte("k02"), []byte("k08"), 3)
		if err != nil || werr != nil || !got.Equal(want) || gt != wt {
			t.Fatalf("view readpart %v: %+v/%d (%v) vs %+v/%d (%v)", oid, got, gt, err, want, wt, werr)
		}
	}
}
