package kvclient

import (
	"context"
	"errors"
	"fmt"
	"time"

	"yesquel/internal/clock"
	"yesquel/internal/kv"
)

// Tx is a snapshot-isolation transaction. Reads see the state as of the
// start timestamp plus the transaction's own buffered writes; writes
// are staged locally and sent to the servers only at Commit. A Tx is
// not safe for concurrent use.
type Tx struct {
	c     *Client
	txid  uint64
	start clock.Timestamp
	done  bool

	// Staged operations in program order, plus a per-OID index used for
	// read-your-own-writes.
	ops   []*kv.Op
	byOID map[kv.OID][]*kv.Op

	// TestHookAfterVote, when non-nil, runs once after every
	// participant voted yes and before any phase-two request is sent.
	// Chaos tests use it to crash servers at the 2PC decision point;
	// production code leaves it nil.
	TestHookAfterVote func()
	// TestHookBeforeAbort, when non-nil, runs before the abort fan-out
	// that follows a failed prepare round. Tests use it to cancel the
	// commit's context at the moment abortAll starts.
	TestHookBeforeAbort func()
}

// Begin starts a transaction at a fresh snapshot. The snapshot reflects
// everything this client has previously observed (reads merge server
// clocks), so a client sees its own earlier commits.
func (c *Client) Begin() *Tx {
	return c.BeginAt(c.hlc.Now())
}

// BeginAt starts a transaction reading at the given snapshot. Used for
// time-travel reads and by layers that coordinate snapshots themselves.
func (c *Client) BeginAt(snap clock.Timestamp) *Tx {
	return &Tx{
		c:     c,
		txid:  c.nextTx.Add(1),
		start: snap,
		byOID: make(map[kv.OID][]*kv.Op),
	}
}

// Snapshot returns the transaction's start timestamp.
func (t *Tx) Snapshot() clock.Timestamp { return t.start }

// NumWrites reports how many operations are staged.
func (t *Tx) NumWrites() int { return len(t.ops) }

// stage appends a write operation.
func (t *Tx) stage(op *kv.Op) {
	t.ops = append(t.ops, op)
	t.byOID[op.OID] = append(t.byOID[op.OID], op)
}

// Put stages a full overwrite of oid with v.
func (t *Tx) Put(oid kv.OID, v *kv.Value) {
	t.stage(&kv.Op{Kind: kv.OpPut, OID: oid, Value: v})
}

// Delete stages removal of oid.
func (t *Tx) Delete(oid kv.OID) {
	t.stage(&kv.Op{Kind: kv.OpDelete, OID: oid})
}

// ListAdd stages insertion of one cell into the supervalue at oid. The
// operation is "blind": it requires no prior read, so a DBT leaf insert
// costs zero read round trips.
func (t *Tx) ListAdd(oid kv.OID, key, value []byte) {
	t.stage(&kv.Op{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: key, Value: value}})
}

// ListDelRange stages deletion of cells with keys in [from, to).
func (t *Tx) ListDelRange(oid kv.OID, from, to []byte) {
	t.stage(&kv.Op{Kind: kv.OpListDelRange, OID: oid, From: from, To: to})
}

// AttrSet stages setting attribute attr of the supervalue at oid.
func (t *Tx) AttrSet(oid kv.OID, attr uint8, num uint64) {
	t.stage(&kv.Op{Kind: kv.OpAttrSet, OID: oid, Attr: attr, Num: num})
}

// SetBounds stages replacement of the supervalue's fence keys.
func (t *Tx) SetBounds(oid kv.OID, low, high []byte) {
	t.stage(&kv.Op{Kind: kv.OpSetBounds, OID: oid, Low: low, High: high})
}

// Read returns oid's value as this transaction sees it: the snapshot
// version overlaid with the transaction's own staged operations.
func (t *Tx) Read(ctx context.Context, oid kv.OID) (*kv.Value, error) {
	if t.done {
		return nil, kv.ErrAborted
	}
	staged := t.byOID[oid]
	// If the last full overwrite (Put/Delete) precedes some suffix of
	// delta ops, the base below that point is irrelevant.
	baseNeeded := true
	from := 0
	for i := len(staged) - 1; i >= 0; i-- {
		if staged[i].Kind == kv.OpPut || staged[i].Kind == kv.OpDelete {
			baseNeeded = false
			from = i
			break
		}
	}
	var base *kv.Value
	if baseNeeded {
		v, err := t.c.readAt(ctx, oid, t.start)
		if err != nil && !errors.Is(err, kv.ErrNotFound) {
			return nil, err
		}
		base = v
	}
	for _, op := range staged[from:] {
		next, err := op.Apply(base)
		if err != nil {
			return nil, err
		}
		base = next
	}
	if base == nil {
		return nil, kv.ErrNotFound
	}
	return base, nil
}

// ReadPart returns a windowed view of a supervalue as this transaction
// sees it: cells in [floor(from), to) capped at max, plus the node's
// (approximate, see below) total cell count. Compared with Read it
// ships only the needed cells over the network — the mechanism that
// keeps DBT point operations off the bandwidth cliff for large nodes.
//
// The transaction's own staged delta operations are overlaid on the
// window. The returned total is exact for clean objects; staged inserts
// make it an upper-bound estimate (callers use it only as a split
// heuristic).
func (t *Tx) ReadPart(ctx context.Context, oid kv.OID, from, to []byte, max uint32) (*kv.Value, int, error) {
	if t.done {
		return nil, 0, kv.ErrAborted
	}
	staged := t.byOID[oid]
	// A staged full overwrite makes the server state irrelevant from
	// that op onward: materialize locally via Read and slice.
	for i := len(staged) - 1; i >= 0; i-- {
		if staged[i].Kind == kv.OpPut || staged[i].Kind == kv.OpDelete {
			full, err := t.Read(ctx, oid)
			if err != nil {
				return nil, 0, err
			}
			if full.Kind != kv.KindSuper {
				return full, 0, nil
			}
			part := &kv.Value{Kind: kv.KindSuper, Attrs: full.Attrs, LowKey: full.LowKey, HighKey: full.HighKey}
			part.Cells = full.WindowCells(from, to, max)
			return part, full.NumCells(), nil
		}
	}

	base, total, err := t.c.readPartAt(ctx, oid, t.start, from, to, max)
	if err != nil {
		if !errors.Is(err, kv.ErrNotFound) {
			return nil, 0, err
		}
		if len(staged) == 0 {
			return nil, 0, kv.ErrNotFound
		}
		base, total = nil, 0
	}
	if len(staged) == 0 {
		return base, total, nil
	}
	// Overlay staged deltas. Extra cells outside the window are
	// harmless for the callers (they select by key anyway).
	v := base
	for _, op := range staged {
		next, err := op.Apply(v)
		if err != nil {
			return nil, 0, err
		}
		v = next
		if op.Kind == kv.OpListAdd {
			total++ // upper bound: the key may have existed already
		}
	}
	if v == nil {
		return nil, 0, kv.ErrNotFound
	}
	return v, total, nil
}

// ReadBatch performs len(items) reads at the transaction's snapshot in
// as few RPCs as the data's placement allows: items free of staged
// writes are grouped by server slot and each slot's sub-batch goes out
// as one MethodReadBatch call, the sub-batches in parallel over the
// existing read connections (follower pinning and primary fallback
// included — the client layer downgrades to per-object reads against a
// peer that predates the method). Items whose OIDs carry staged
// operations are served through the ordinary overlay paths on the
// calling goroutine, so read-your-own-writes holds item by item.
//
// Results are positional: results[i] answers items[i], with Found=false
// for absent objects (never an error, unlike Read). Version may be zero
// on the per-object fallback path; Total is meaningful only for
// windowed (Part) items.
func (t *Tx) ReadBatch(ctx context.Context, items []kv.ReadBatchItem) ([]kv.ReadBatchResult, error) {
	if t.done {
		return nil, kv.ErrAborted
	}
	results := make([]kv.ReadBatchResult, len(items))
	var stagedIdx, cleanIdx []int
	for i := range items {
		if len(t.byOID[items[i].OID]) > 0 {
			stagedIdx = append(stagedIdx, i)
		} else {
			cleanIdx = append(cleanIdx, i)
		}
	}
	type cleanResult struct {
		res []kv.ReadBatchResult
		err error
	}
	var ch chan cleanResult
	if len(cleanIdx) > 0 {
		sub := make([]kv.ReadBatchItem, len(cleanIdx))
		for j, i := range cleanIdx {
			sub[j] = items[i]
		}
		ch = make(chan cleanResult, 1)
		// The goroutine touches only the concurrency-safe Client (and
		// the immutable snapshot), never the Tx; readBatchSlots fans the
		// sub-batch out per server slot from there.
		go func() {
			res, err := t.c.readBatchSlots(ctx, t.start, sub)
			ch <- cleanResult{res: res, err: err}
		}()
	}
	// Staged items overlay on the calling goroutine while the sub-batches
	// are in flight.
	var stagedErr error
	for _, i := range stagedIdx {
		item := &items[i]
		var (
			val   *kv.Value
			total int
			err   error
		)
		if item.Part {
			val, total, err = t.ReadPart(ctx, item.OID, item.From, item.To, item.Max)
		} else {
			val, err = t.Read(ctx, item.OID)
		}
		switch {
		case err == nil:
			results[i] = kv.ReadBatchResult{Found: true, Value: val, Total: uint32(total)}
		case errors.Is(err, kv.ErrNotFound):
		default:
			if stagedErr == nil {
				stagedErr = err
			}
		}
	}
	var firstErr error
	if ch != nil {
		cr := <-ch
		if cr.err != nil {
			firstErr = cr.err
		} else {
			for j, i := range cleanIdx {
				results[i] = cr.res[j]
			}
		}
	}
	if firstErr == nil {
		firstErr = stagedErr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// Commit atomically applies the staged writes. Read-only transactions
// commit locally with no communication. Transactions touching one
// server use the one-round-trip fast path; otherwise two-phase commit
// runs across the participants. On conflict, Commit returns
// kv.ErrConflict and the transaction has no effect.
func (t *Tx) Commit(ctx context.Context) error {
	if t.done {
		return kv.ErrAborted
	}
	t.done = true
	if len(t.ops) == 0 {
		return nil // read-only: snapshot isolation needs nothing more
	}

	// A wrong-slot redirect restarts the whole commit: the rejection
	// guarantees the rejecting participant executed nothing, a failed
	// prepare round aborts the rest, and the writes are still buffered
	// here — so the retry re-partitions under the directory the redirect
	// taught and runs as a fresh transaction (new txid: an aborted
	// round may have left the old id in participants' decided tables).
	for tries := 0; ; tries++ {
		err := t.commitOnce(ctx)
		if errors.Is(err, kv.ErrWrongSlot) &&
			t.c.retryWrongSlot(ctx, t.c.ServerFor(t.ops[0].OID), err, tries) {
			t.txid = t.c.nextTx.Add(1)
			continue
		}
		return err
	}
}

// commitOnce runs one commit attempt: partition staged ops by
// participant group, then fast-commit (one participant) or two-phase
// commit (several).
func (t *Tx) commitOnce(ctx context.Context) error {
	byServer := make(map[int][]*kv.Op)
	var servers []int
	for _, op := range t.ops {
		s := t.c.ServerFor(op.OID)
		if _, ok := byServer[s]; !ok {
			servers = append(servers, s)
		}
		byServer[s] = append(byServer[s], op)
	}

	if len(servers) == 1 {
		return t.fastCommit(ctx, servers[0], byServer[servers[0]])
	}
	return t.twoPhaseCommit(ctx, servers, byServer)
}

// fastCommit is not idempotent: if the request was sent and the
// connection died before the acknowledgment, the commit may have been
// applied (and replicated), so call surfaces kv.ErrUncertain. When the
// request provably never left (the primary died earlier), call retries
// on the backup, which re-executes the whole one-shot transaction.
func (t *Tx) fastCommit(ctx context.Context, server int, ops []*kv.Op) error {
	respB, err := t.c.call(ctx, server, kv.MethodFastCommit, func(epoch uint64) []byte {
		return (&kv.FastCommitReq{TxID: t.txid, Start: t.start, Ops: ops, Epoch: epoch}).Encode()
	}, retryUnsentUncertain)
	if err != nil {
		return translateRPCErr(err)
	}
	resp, err := kv.DecodeFastCommitResp(respB)
	if err != nil {
		return err
	}
	t.c.hlc.Observe(resp.Clock)
	t.c.group(server).noteFrontier(resp.Frontier)
	if !resp.OK {
		return kv.ErrConflict
	}
	t.c.hlc.Observe(resp.CommitTS)
	return nil
}

func (t *Tx) twoPhaseCommit(ctx context.Context, servers []int, byServer map[int][]*kv.Op) error {
	type voteResult struct {
		server   int
		ok       bool
		proposed clock.Timestamp
		err      error
	}
	votes := make(chan voteResult, len(servers))
	for _, s := range servers {
		go func(s int) {
			// Prepare retries on a backup only when the request provably
			// never reached the primary (it was already dead) — or when
			// it was rejected with ErrWrongEpoch, which guarantees
			// nothing was staged. If the ack was merely lost, the
			// primary may hold the vote, and re-preparing elsewhere
			// would stage the transaction twice; the transaction aborts
			// instead.
			respB, err := t.c.call(ctx, s, kv.MethodPrepare, func(epoch uint64) []byte {
				return (&kv.PrepareReq{TxID: t.txid, Start: t.start, Ops: byServer[s], Epoch: epoch}).Encode()
			}, retryUnsent)
			if err != nil {
				votes <- voteResult{server: s, err: translateRPCErr(err)}
				return
			}
			resp, err := kv.DecodePrepareResp(respB)
			if err != nil {
				votes <- voteResult{server: s, err: err}
				return
			}
			t.c.hlc.Observe(resp.Clock)
			votes <- voteResult{server: s, ok: resp.OK, proposed: resp.Proposed}
		}(s)
	}

	commitTS := clock.Timestamp(0)
	allOK := true
	var firstErr error
	for range servers {
		v := <-votes
		switch {
		case v.err != nil:
			allOK = false
			if firstErr == nil {
				firstErr = v.err
			}
		case !v.ok:
			allOK = false
			if firstErr == nil {
				firstErr = kv.ErrConflict
			}
		default:
			if v.proposed > commitTS {
				commitTS = v.proposed
			}
		}
	}

	if !allOK {
		t.abortAll(ctx, servers)
		if firstErr == nil {
			firstErr = kv.ErrConflict
		}
		return firstErr
	}

	// Decision point: all participants voted yes. The transaction is
	// now decided-committed, and the coordinator's job is to drive that
	// decision to every participant's replica group — on a detached,
	// timeout-bounded context: the caller's context expiring mid-drive
	// must not stop the fan-out halfway, or a decided-commit ends up
	// applied on some participants and orphan-aborted on the rest.
	if t.TestHookAfterVote != nil {
		t.TestHookAfterVote()
	}
	ctx, cancelDecide := context.WithTimeout(context.WithoutCancel(ctx), decideTimeout)
	defer cancelDecide()
	errs := make(chan error, len(servers))
	for _, s := range servers {
		go func(s int) {
			// The decision may be retried on any replica: prepares are
			// replicated before the yes vote, so a promoted backup holds
			// the prepared transaction, and decided outcomes are
			// remembered server-side, so a duplicate CommitReq (lost
			// acknowledgment, then retry) is acknowledged rather than
			// rejected. (A retry reaching an unpromoted backup while the
			// primary is alive but unreachable is answered with
			// ErrWrongEpoch, so split brain is prevented, not merely
			// detected: the decision lands only on the epoch's primary.)
			respB, err := t.c.call(ctx, s, kv.MethodCommit, func(epoch uint64) []byte {
				return (&kv.CommitReq{TxID: t.txid, CommitTS: commitTS, Epoch: epoch}).Encode()
			}, retryAlways)
			if err != nil {
				errs <- fmt.Errorf("commit on server %d: %w", s, err)
				return
			}
			if ack, err := kv.DecodeAck(respB); err == nil {
				t.c.observeAck(s, ack)
			}
			errs <- nil
		}(s)
	}
	var commitErr error
	for range servers {
		if err := <-errs; err != nil && commitErr == nil {
			commitErr = err
		}
	}
	t.c.hlc.Observe(commitTS)
	if commitErr != nil {
		// The transaction is decided-committed but a participant's
		// whole replica group was unreachable for the full drive
		// window. Surface the error: callers must not assume the write
		// is readable everywhere — and if the group stays dark past
		// PrepareTTL, the orphan sweep there aborts against the
		// decision (the documented gap until leases/epochs).
		return fmt.Errorf("kv: commit incomplete: %w", commitErr)
	}
	return nil
}

// abortTimeout bounds the abort fan-out after a failed prepare round.
const abortTimeout = 5 * time.Second

// decideTimeout bounds the phase-two decision drive: long enough to
// ride out a failover to the backup, bounded so a caller is not
// wedged on a fully dark replica group.
const decideTimeout = 10 * time.Second

func (t *Tx) abortAll(ctx context.Context, servers []int) {
	if t.TestHookBeforeAbort != nil {
		t.TestHookBeforeAbort()
	}
	// Run the abort RPCs on a detached, timeout-bounded context: the
	// caller's context is often already cancelled or past its deadline
	// when prepares fail (that may be *why* they failed), and dying
	// with it would leave reachable participants holding their prepare
	// locks until the orphan sweep.
	ctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), abortTimeout)
	defer cancel()
	done := make(chan struct{}, len(servers))
	for _, s := range servers {
		go func(s int) {
			defer func() { done <- struct{}{} }()
			respB, err := t.c.call(ctx, s, kv.MethodAbort, func(epoch uint64) []byte {
				return (&kv.AbortReq{TxID: t.txid, Epoch: epoch}).Encode()
			}, retryAlways)
			if err == nil {
				if ack, err := kv.DecodeAck(respB); err == nil {
					t.c.observeAck(s, ack)
				}
			}
		}(s)
	}
	for range servers {
		<-done
	}
}

// Abort discards the transaction. Since writes are buffered
// client-side, nothing is on the servers yet; Abort is local.
func (t *Tx) Abort() {
	t.done = true
	t.ops = nil
	t.byOID = nil
}
