package kvclient_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"yesquel/internal/cluster"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
)

func startCluster(t *testing.T, n int) (*cluster.Cluster, *kvclient.Client) {
	t.Helper()
	cl, err := cluster.Start(n, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return cl, c
}

func TestPutReadAcrossTransactions(t *testing.T) {
	_, c := startCluster(t, 1)
	ctx := context.Background()
	oid := c.NewOID(0)

	tx := c.Begin()
	tx.Put(oid, kv.NewPlain([]byte("hello")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatalf("commit: %v", err)
	}

	tx2 := c.Begin()
	v, err := tx2.Read(ctx, oid)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(v.Data) != "hello" {
		t.Fatalf("read %q", v.Data)
	}
	if err := tx2.Commit(ctx); err != nil {
		t.Fatalf("read-only commit: %v", err)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	_, c := startCluster(t, 1)
	ctx := context.Background()
	oid := c.NewOID(0)

	tx := c.Begin()
	// Not yet written anywhere: read must miss.
	if _, err := tx.Read(ctx, oid); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("read before write: %v", err)
	}
	tx.ListAdd(oid, []byte("k1"), []byte("v1"))
	tx.AttrSet(oid, 2, 77)
	v, err := tx.Read(ctx, oid)
	if err != nil {
		t.Fatalf("read own writes: %v", err)
	}
	if v.NumCells() != 1 || v.Attrs[2] != 77 {
		t.Fatalf("own writes not visible: %+v", v)
	}
	// Delete then re-add within the same transaction.
	tx.Delete(oid)
	if _, err := tx.Read(ctx, oid); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("read after own delete: %v", err)
	}
	tx.ListAdd(oid, []byte("k2"), []byte("v2"))
	v, err = tx.Read(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.ListGet([]byte("k1")); ok {
		t.Fatal("cell from before own delete survived")
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Committed state matches the transaction's final view.
	tx2 := c.Begin()
	v, err = tx2.Read(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.ListGet([]byte("k2")); !ok || v.NumCells() != 1 {
		t.Fatalf("committed state wrong: %+v", v)
	}
}

func TestIsolationUncommittedInvisible(t *testing.T) {
	_, c := startCluster(t, 1)
	ctx := context.Background()
	oid := c.NewOID(0)

	tx := c.Begin()
	tx.Put(oid, kv.NewPlain([]byte("uncommitted")))
	// A concurrent transaction must not see the buffered write.
	tx2 := c.Begin()
	if _, err := tx2.Read(ctx, oid); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("uncommitted write visible: %v", err)
	}
	tx.Abort()
	tx3 := c.Begin()
	if _, err := tx3.Read(ctx, oid); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("aborted write visible: %v", err)
	}
}

func TestSnapshotIsolationRepeatableRead(t *testing.T) {
	_, c := startCluster(t, 1)
	ctx := context.Background()
	oid := c.NewOID(0)

	tx := c.Begin()
	tx.Put(oid, kv.NewPlain([]byte("v1")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	reader := c.Begin()
	v, err := reader.Read(ctx, oid)
	if err != nil || string(v.Data) != "v1" {
		t.Fatalf("first read: %v %v", v, err)
	}

	writer := c.Begin()
	writer.Put(oid, kv.NewPlain([]byte("v2")))
	if err := writer.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// The reader's snapshot must still return v1.
	v, err = reader.Read(ctx, oid)
	if err != nil || string(v.Data) != "v1" {
		t.Fatalf("repeatable read broken: %v %v", v, err)
	}
	// A fresh transaction sees v2.
	fresh := c.Begin()
	v, err = fresh.Read(ctx, oid)
	if err != nil || string(v.Data) != "v2" {
		t.Fatalf("fresh read: %v %v", v, err)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	_, c := startCluster(t, 1)
	ctx := context.Background()
	oid := c.NewOID(0)
	init := c.Begin()
	init.Put(oid, kv.NewPlain([]byte("base")))
	if err := init.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Classic lost-update shape: both transactions read the object at
	// their snapshot, then both try to overwrite it. Reading pins the
	// snapshot on the server (Clock-SI), so the second committer must
	// conflict. (A *blind* concurrent overwrite may instead be ordered
	// after the first commit under generalized SI — that is legal and
	// loses no update.)
	tx1 := c.Begin()
	tx2 := c.Begin()
	if _, err := tx1.Read(ctx, oid); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Read(ctx, oid); err != nil {
		t.Fatal(err)
	}
	tx1.Put(oid, kv.NewPlain([]byte("one")))
	tx2.Put(oid, kv.NewPlain([]byte("two")))
	if err := tx1.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(ctx); !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("second writer: got %v, want ErrConflict", err)
	}
	v, err := c.Begin().Read(ctx, oid)
	if err != nil || string(v.Data) != "one" {
		t.Fatalf("final state: %v %v", v, err)
	}
}

func TestMultiServer2PC(t *testing.T) {
	_, c := startCluster(t, 4)
	ctx := context.Background()

	// One OID per server: the commit must span all four participants.
	oids := make([]kv.OID, 4)
	for i := range oids {
		oids[i] = c.NewOID(uint16(i))
		if c.ServerFor(oids[i]) != i {
			t.Fatalf("placement: oid slot %d on server %d", i, c.ServerFor(oids[i]))
		}
	}
	tx := c.Begin()
	for i, oid := range oids {
		tx.Put(oid, kv.NewPlain([]byte(fmt.Sprintf("server-%d", i))))
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatalf("2PC commit: %v", err)
	}

	check := c.Begin()
	for i, oid := range oids {
		v, err := check.Read(ctx, oid)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(v.Data) != fmt.Sprintf("server-%d", i) {
			t.Fatalf("read %d: %q", i, v.Data)
		}
	}
}

func TestMultiServer2PCConflictAbortsEverywhere(t *testing.T) {
	_, c := startCluster(t, 2)
	ctx := context.Background()
	a := c.NewOID(0)
	b := c.NewOID(1)
	init := c.Begin()
	init.Put(a, kv.NewPlain([]byte("a0")))
	init.Put(b, kv.NewPlain([]byte("b0")))
	if err := init.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// tx1 updates only b, committing first; tx2 reads and updates both a
	// and b (the reads pin its snapshot below tx1's commit).
	tx1 := c.Begin()
	tx2 := c.Begin()
	if _, err := tx2.Read(ctx, a); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Read(ctx, b); err != nil {
		t.Fatal(err)
	}
	tx1.Put(b, kv.NewPlain([]byte("b1")))
	tx2.Put(a, kv.NewPlain([]byte("a2")))
	tx2.Put(b, kv.NewPlain([]byte("b2")))
	if err := tx1.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(ctx); !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("tx2 commit: got %v, want conflict", err)
	}
	// tx2's write to a must have been rolled back on server 0.
	check := c.Begin()
	v, err := check.Read(ctx, a)
	if err != nil || string(v.Data) != "a0" {
		t.Fatalf("partial commit leaked: a=%v err=%v", v, err)
	}
	v, err = check.Read(ctx, b)
	if err != nil || string(v.Data) != "b1" {
		t.Fatalf("b=%v err=%v", v, err)
	}
}

func TestAtomicityAcrossServers(t *testing.T) {
	_, c := startCluster(t, 2)
	ctx := context.Background()
	a := c.NewOID(0) // bank account on server 0
	b := c.NewOID(1) // bank account on server 1

	setBalance := func(tx *kvclient.Tx, oid kv.OID, n uint64) {
		v := kv.NewSuper()
		v.Attrs[0] = n
		tx.Put(oid, v)
	}
	init := c.Begin()
	setBalance(init, a, 100)
	setBalance(init, b, 0)
	if err := init.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Transfer loop in one goroutine; invariant checker in another.
	const transfers = 50
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < transfers; i++ {
			for {
				tx := c.Begin()
				va, err1 := tx.Read(ctx, a)
				vb, err2 := tx.Read(ctx, b)
				if err1 != nil || err2 != nil {
					tx.Abort()
					continue
				}
				tx.AttrSet(a, 0, va.Attrs[0]-1)
				tx.AttrSet(b, 0, vb.Attrs[0]+1)
				if err := tx.Commit(ctx); err == nil {
					break
				}
			}
		}
		close(stop)
	}()

	checkFailures := 0
	for {
		select {
		case <-stop:
			wg.Wait()
			final := c.Begin()
			va, _ := final.Read(ctx, a)
			vb, _ := final.Read(ctx, b)
			if va.Attrs[0]+vb.Attrs[0] != 100 {
				t.Fatalf("conservation violated: %d + %d", va.Attrs[0], vb.Attrs[0])
			}
			if va.Attrs[0] != 100-transfers {
				t.Fatalf("a = %d, want %d", va.Attrs[0], 100-transfers)
			}
			return
		default:
			tx := c.Begin()
			va, err1 := tx.Read(ctx, a)
			vb, err2 := tx.Read(ctx, b)
			if err1 == nil && err2 == nil {
				if va.Attrs[0]+vb.Attrs[0] != 100 {
					checkFailures++
					t.Fatalf("snapshot saw partial transfer: %d + %d = %d",
						va.Attrs[0], vb.Attrs[0], va.Attrs[0]+vb.Attrs[0])
				}
			}
		}
	}
}

func TestCommitAfterAbortFails(t *testing.T) {
	_, c := startCluster(t, 1)
	tx := c.Begin()
	tx.Put(c.NewOID(0), kv.NewPlain([]byte("x")))
	tx.Abort()
	if err := tx.Commit(context.Background()); !errors.Is(err, kv.ErrAborted) {
		t.Fatalf("commit after abort: %v", err)
	}
}

func TestBeginAtTimeTravel(t *testing.T) {
	_, c := startCluster(t, 1)
	ctx := context.Background()
	oid := c.NewOID(0)

	tx := c.Begin()
	tx.Put(oid, kv.NewPlain([]byte("v1")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	tsAfterV1 := c.Clock().Now()

	tx = c.Begin()
	tx.Put(oid, kv.NewPlain([]byte("v2")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	old := c.BeginAt(tsAfterV1)
	v, err := old.Read(ctx, oid)
	if err != nil || string(v.Data) != "v1" {
		t.Fatalf("time travel read: %v %v", v, err)
	}
}

func TestDeltaOpsOverNetwork(t *testing.T) {
	_, c := startCluster(t, 2)
	ctx := context.Background()
	oid := c.NewOID(1)

	// Blind delta inserts: no reads at all before commit.
	tx := c.Begin()
	for i := 0; i < 10; i++ {
		tx.ListAdd(oid, []byte{byte('a' + i)}, []byte{byte(i)})
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := c.Begin().Read(ctx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumCells() != 10 {
		t.Fatalf("cells = %d", v.NumCells())
	}

	tx = c.Begin()
	tx.ListDelRange(oid, []byte("c"), []byte("f"))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	v, _ = c.Begin().Read(ctx, oid)
	if v.NumCells() != 7 {
		t.Fatalf("after delrange: %d cells", v.NumCells())
	}
}

func TestPing(t *testing.T) {
	_, c := startCluster(t, 3)
	for i := 0; i < 3; i++ {
		if err := c.Ping(context.Background(), i); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
}

func TestOIDUniqueAcrossClients(t *testing.T) {
	cl, c1 := startCluster(t, 1)
	c2, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	seen := make(map[kv.OID]bool)
	for i := 0; i < 1000; i++ {
		o1, o2 := c1.NewOID(0), c2.NewOID(0)
		if seen[o1] || seen[o2] || o1 == o2 {
			t.Fatal("OID collision")
		}
		seen[o1], seen[o2] = true, true
	}
}
