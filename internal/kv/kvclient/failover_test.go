package kvclient_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"yesquel/internal/clock"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
	"yesquel/internal/wire"
)

// startPair launches a mirrored primary+backup pair and a client whose
// server slot 0 knows both replicas.
func startPair(t *testing.T) (*kvserver.Server, *kvserver.Server, *kvclient.Client) {
	t.Helper()
	newSrv := func() *kvserver.Server {
		srv := kvserver.NewServer(kvserver.NewStore(nil, kvserver.Config{}))
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		go srv.Serve()
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	primary, backup := newSrv(), newSrv()
	if err := primary.SetMirror(backup.Addr()); err != nil {
		t.Fatal(err)
	}
	c, err := kvclient.OpenReplicated([][]string{{primary.Addr(), backup.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return primary, backup, c
}

// TestFailoverToBackup drives each idempotent operation through a
// primary crash: the same client must transparently retry on the
// backup and see every acknowledged write.
func TestFailoverToBackup(t *testing.T) {
	primary, _, c := startPair(t)
	ctx := context.Background()

	plain := c.NewOID(0)
	super := c.NewOID(0)
	tx := c.Begin()
	tx.Put(plain, kv.NewPlain([]byte("mirrored")))
	tx.ListAdd(super, []byte("k1"), []byte("v1"))
	tx.AttrSet(super, 2, 77)
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	primary.Close()

	cases := []struct {
		name string
		op   func(tx *kvclient.Tx) error
	}{
		{"read plain", func(tx *kvclient.Tx) error {
			v, err := tx.Read(ctx, plain)
			if err != nil {
				return err
			}
			if string(v.Data) != "mirrored" {
				t.Fatalf("read plain after failover: %q", v.Data)
			}
			return nil
		}},
		{"read supervalue", func(tx *kvclient.Tx) error {
			v, err := tx.Read(ctx, super)
			if err != nil {
				return err
			}
			if v.NumCells() != 1 || v.Attrs[2] != 77 {
				t.Fatalf("read super after failover: %+v", v)
			}
			return nil
		}},
		{"readpart window", func(tx *kvclient.Tx) error {
			v, total, err := tx.ReadPart(ctx, super, []byte("k1"), nil, 10)
			if err != nil {
				return err
			}
			if total != 1 || v.NumCells() != 1 {
				t.Fatalf("readpart after failover: total=%d %+v", total, v)
			}
			return nil
		}},
	}
	for _, tc := range cases {
		tx := c.Begin()
		if err := tc.op(tx); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		tx.Abort()
	}

	// A commit attempted after the crash finds the connection already
	// dead (provably unsent), retries on the backup, and succeeds.
	oid2 := c.NewOID(0)
	tx2 := c.Begin()
	tx2.Put(oid2, kv.NewPlain([]byte("post-failover")))
	if err := tx2.Commit(ctx); err != nil {
		t.Fatalf("commit after failover: %v", err)
	}
	check := c.Begin()
	defer check.Abort()
	if v, err := check.Read(ctx, oid2); err != nil || string(v.Data) != "post-failover" {
		t.Fatalf("read own post-failover write: %v %v", v, err)
	}
}

// stubServer speaks just enough of the rpc frame protocol to answer
// pings, then kills the connection upon the first request of the named
// method — after reading it, so the client's request was definitely
// sent and the outcome is genuinely unknown.
func stubServer(t *testing.T, dieOn string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	hlc := clock.New()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					p, err := wire.ReadFrame(conn)
					if err != nil {
						return
					}
					r := wire.NewReader(p)
					r.Byte() // frame kind (request)
					id, _ := r.Uvarint()
					method, err := r.String()
					if err != nil || method == dieOn {
						return // hang up without responding
					}
					// Minimal response frame: kind=response(1), id,
					// status=ok(0), body = Ack{Clock}.
					b := wire.NewBuffer(32)
					b.PutByte(1)
					b.PutUvarint(id)
					b.PutByte(0)
					b.PutBytes((&kv.Ack{Clock: hlc.Now()}).Encode())
					if err := wire.WriteFrame(conn, b.Bytes()); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestCommitUncertainOnLostAck pins the commit-ack contract: when the
// connection dies after the commit request was sent but before the
// acknowledgment arrives, the commit may have been applied and
// replicated, so the client must report kv.ErrUncertain — not retry it
// blindly, and not claim failure.
func TestCommitUncertainOnLostAck(t *testing.T) {
	addr := stubServer(t, kv.MethodFastCommit)
	c, err := kvclient.Open([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tx := c.Begin()
	tx.Put(c.NewOID(0), kv.NewPlain([]byte("limbo")))
	err = tx.Commit(context.Background())
	if !errors.Is(err, kv.ErrUncertain) {
		t.Fatalf("commit with lost ack: got %v, want kv.ErrUncertain", err)
	}
}

// TestReadRetriesThroughLostConnection: the same lost-connection
// scenario on a read is idempotent, so it must NOT surface
// ErrUncertain; with no backup to fail over to it errors, with a
// healthy backup it succeeds (covered by TestFailoverToBackup).
func TestReadRetriesThroughLostConnection(t *testing.T) {
	addr := stubServer(t, kv.MethodRead)
	c, err := kvclient.Open([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tx := c.Begin()
	defer tx.Abort()
	_, err = tx.Read(context.Background(), c.NewOID(0))
	if err == nil {
		t.Fatal("read against dying stub succeeded")
	}
	if errors.Is(err, kv.ErrUncertain) {
		t.Fatalf("idempotent read reported ErrUncertain: %v", err)
	}
}

// TestAbortFanOutSurvivesCancelledContext: when a prepare round fails
// and the commit's context is already cancelled (often the very reason
// the round failed), the abort fan-out must still reach the
// participants that did vote yes — otherwise their prepare locks
// strand until the orphan sweep. The abort runs on a detached,
// timeout-bounded context.
func TestAbortFanOutSurvivesCancelledContext(t *testing.T) {
	newSrv := func() *kvserver.Server {
		srv := kvserver.NewServer(kvserver.NewStore(nil, kvserver.Config{}))
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		go srv.Serve()
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	srvA, srvB := newSrv(), newSrv()
	c, err := kvclient.Open([]string{srvA.Addr(), srvB.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	oidA, oidB := c.NewOID(0), c.NewOID(1)
	// A foreign prepare holds oidB's lock, so the transaction's prepare
	// on server B votes no while server A votes yes.
	if _, err := srvB.Store().Prepare(424242, srvB.Store().Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: oidB, Value: kv.NewPlain([]byte("blocker"))},
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	tx := c.Begin()
	tx.Put(oidA, kv.NewPlain([]byte("a")))
	tx.Put(oidB, kv.NewPlain([]byte("b")))
	// Cancel the caller's context at the instant the abort fan-out
	// starts: the prepares already ran, server A holds the lock.
	tx.TestHookBeforeAbort = cancel
	if err := tx.Commit(ctx); !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("commit with locked participant: %v, want ErrConflict", err)
	}
	// Commit returns only after the fan-out completes, so the yes
	// voter's lock must already be free.
	if srvA.Store().IsLocked(oidA) {
		t.Fatal("abort fan-out died with the cancelled context; server A lock stranded")
	}
}

// TestOpenMergesServerClocks is the root-cause regression test for the
// seed's failing mirror tests: a server whose hybrid logical clock
// runs ahead of real time (here: 60s of skew, standing in for the
// logical component racing ahead under load) has committed data at
// "future" timestamps. A fresh client's first snapshot must not
// predate those commits, so Open pings every server and merges the
// returned clocks before the first Begin.
func TestOpenMergesServerClocks(t *testing.T) {
	store := kvserver.NewStore(nil, kvserver.Config{})
	store.Clock().SetPhysical(func() uint64 {
		return uint64(time.Now().UnixMilli()) + 60_000
	})
	srv := kvserver.NewServer(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	ctx := context.Background()

	c1, err := kvclient.Open([]string{srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	oid := c1.NewOID(0)
	tx := c1.Begin()
	tx.Put(oid, kv.NewPlain([]byte("from-the-future")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// The fresh client's wall clock trails the commit timestamp by a
	// minute; only the Open-time clock merge makes the write visible.
	c2, err := kvclient.Open([]string{srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Clock().Last() < store.Clock().Last()-clock.Make(1000, 0) {
		t.Fatalf("client clock %v did not converge toward server clock %v",
			c2.Clock().Last(), store.Clock().Last())
	}
	check := c2.Begin()
	defer check.Abort()
	v, err := check.Read(ctx, oid)
	if err != nil || string(v.Data) != "from-the-future" {
		t.Fatalf("fresh client missed committed data: %v %v", v, err)
	}
}
