package kvclient_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"yesquel/internal/cluster"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvserver"
)

// TestReadTimesOutOnAbandonedPrepare covers the coordinator-failure
// window: a transaction prepared but never committed or aborted blocks
// conflicting readers only up to the configured lock-wait timeout, then
// they fail with a retryable conflict instead of hanging.
func TestReadTimesOutOnAbandonedPrepare(t *testing.T) {
	cl, err := cluster.Start(1, kvserver.Config{LockWaitTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	oid := c.NewOID(0)

	// Prepare directly against the store and abandon the transaction,
	// simulating a client that died between phases.
	store := cl.Servers[0].Store()
	if _, err := store.Prepare(424242, store.Clock().Now(),
		[]*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("zombie"))}}); err != nil {
		t.Fatal(err)
	}

	// Advance the client clock past the server's proposed timestamp so
	// the read's snapshot could be affected by the pending commit and
	// must wait (a snapshot below the proposal may correctly skip it).
	if err := c.Ping(ctx, 0); err != nil {
		t.Fatal(err)
	}
	tx := c.Begin()
	defer tx.Abort()
	start := time.Now()
	_, err = tx.Read(ctx, oid)
	elapsed := time.Since(start)
	if !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("read of abandoned-locked object: %v", err)
	}
	if elapsed < 80*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("timeout fired after %v, want ~100ms", elapsed)
	}
}

// TestCallsFailFastAfterServerDown verifies operations surface errors
// (rather than hanging) once a storage server is gone.
func TestCallsFailFastAfterServerDown(t *testing.T) {
	cl, err := cluster.Start(2, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	oid0 := c.NewOID(0)
	oid1 := c.NewOID(1)
	tx := c.Begin()
	tx.Put(oid0, kv.NewPlain([]byte("a")))
	tx.Put(oid1, kv.NewPlain([]byte("b")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	cl.Servers[1].Close()

	// Reads from the dead server error out.
	tx2 := c.Begin()
	defer tx2.Abort()
	if _, err := tx2.Read(ctx, oid1); err == nil {
		t.Fatal("read from dead server succeeded")
	}
	// The surviving server still works through the same client.
	tx3 := c.Begin()
	defer tx3.Abort()
	if v, err := tx3.Read(ctx, oid0); err != nil || string(v.Data) != "a" {
		t.Fatalf("surviving server read: %v %v", v, err)
	}
	// A 2PC spanning the dead server fails and leaves the survivor
	// consistent.
	tx4 := c.Begin()
	tx4.Put(oid0, kv.NewPlain([]byte("a2")))
	tx4.Put(oid1, kv.NewPlain([]byte("b2")))
	if err := tx4.Commit(ctx); err == nil {
		t.Fatal("commit spanning dead server succeeded")
	}
	tx5 := c.Begin()
	defer tx5.Abort()
	if v, err := tx5.Read(ctx, oid0); err != nil || string(v.Data) != "a" {
		t.Fatalf("partial commit leaked to survivor: %v %v", v, err)
	}
}

// TestContextDeadlineOnRead verifies per-call deadlines propagate.
func TestContextDeadlineOnRead(t *testing.T) {
	cl, err := cluster.Start(1, kvserver.Config{LockWaitTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	oid := c.NewOID(0)

	// Abandoned lock with a long server-side wait: the client's context
	// must cut the call short.
	store := cl.Servers[0].Store()
	if _, err := store.Prepare(53535, store.Clock().Now(),
		[]*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("x"))}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	tx := c.Begin()
	defer tx.Abort()
	start := time.Now()
	_, err = tx.Read(ctx, oid)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline did not cut the call short")
	}
}
