package kv

import (
	"bytes"
	"sort"
)

// Supervalue cell-list manipulation. Cells are kept sorted by Key under
// bytes.Compare with unique keys; these methods maintain that
// invariant. They mutate the receiver, so the MVCC store applies them
// only to a fresh Clone of the latest version.

// cellIndex returns the position of key in the cell list and whether an
// exact match exists. Without a match, the position is the insertion
// point.
func (v *Value) cellIndex(key []byte) (int, bool) {
	i := sort.Search(len(v.Cells), func(i int) bool {
		return bytes.Compare(v.Cells[i].Key, key) >= 0
	})
	if i < len(v.Cells) && bytes.Equal(v.Cells[i].Key, key) {
		return i, true
	}
	return i, false
}

// ListAdd inserts a cell, replacing the value if the key exists.
func (v *Value) ListAdd(key, value []byte) {
	key = append([]byte(nil), key...)
	value = append([]byte(nil), value...)
	i, found := v.cellIndex(key)
	if found {
		v.Cells[i].Value = value
		return
	}
	v.Cells = append(v.Cells, Cell{})
	copy(v.Cells[i+1:], v.Cells[i:])
	v.Cells[i] = Cell{Key: key, Value: value}
}

// ListDelRange removes all cells with keys in [from, to). A nil from
// means unbounded below; a nil to means unbounded above.
func (v *Value) ListDelRange(from, to []byte) {
	lo := 0
	if from != nil {
		lo, _ = v.cellIndex(from)
	}
	hi := len(v.Cells)
	if to != nil {
		hi, _ = v.cellIndex(to)
	}
	if lo >= hi {
		return
	}
	v.Cells = append(v.Cells[:lo], v.Cells[hi:]...)
}

// ListGet returns the value of the cell with the given key.
func (v *Value) ListGet(key []byte) ([]byte, bool) {
	i, found := v.cellIndex(key)
	if !found {
		return nil, false
	}
	return v.Cells[i].Value, true
}

// ListCeil returns the first cell with Key >= key, if any.
func (v *Value) ListCeil(key []byte) (Cell, bool) {
	i, _ := v.cellIndex(key)
	if i >= len(v.Cells) {
		return Cell{}, false
	}
	return v.Cells[i], true
}

// NumCells returns the number of cells.
func (v *Value) NumCells() int { return len(v.Cells) }

// InBounds reports whether key falls within the supervalue's fence
// interval [LowKey, HighKey).
func (v *Value) InBounds(key []byte) bool {
	if v.LowKey != nil && bytes.Compare(key, v.LowKey) < 0 {
		return false
	}
	if v.HighKey != nil && bytes.Compare(key, v.HighKey) >= 0 {
		return false
	}
	return true
}
