package kvserver

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"yesquel/internal/clock"
	"yesquel/internal/kv"
)

var nextTxID atomic.Uint64

func newTxID() uint64 { return nextTxID.Add(1) }

// commitPut writes a plain value through the full prepare/commit path
// and returns the commit timestamp.
func commitPut(t *testing.T, s *Store, oid kv.OID, data string) clock.Timestamp {
	t.Helper()
	txid := newTxID()
	start := s.Clock().Now()
	ops := []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte(data))}}
	proposed, err := s.Prepare(txid, start, ops)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if err := s.Commit(txid, proposed); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return proposed
}

func TestPutReadVisibility(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)

	before := s.Clock().Now()
	commitTS := commitPut(t, s, oid, "v1")

	// A snapshot taken before the commit must not see it.
	if _, _, err := s.Read(oid, before); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("read before commit: %v", err)
	}
	// A snapshot at/after the commit sees it.
	v, ver, err := s.Read(oid, s.Clock().Now())
	if err != nil {
		t.Fatalf("read after commit: %v", err)
	}
	if string(v.Data) != "v1" || ver != commitTS {
		t.Fatalf("got %q at %d, want v1 at %d", v.Data, ver, commitTS)
	}
}

func TestSnapshotStability(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	commitPut(t, s, oid, "v1")
	snap := s.Clock().Now()
	commitPut(t, s, oid, "v2")

	// The old snapshot still reads v1 (MVCC).
	v, _, err := s.Read(oid, snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Data) != "v1" {
		t.Fatalf("snapshot read %q, want v1", v.Data)
	}
	// A fresh snapshot reads v2.
	v, _, err = s.Read(oid, s.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Data) != "v2" {
		t.Fatalf("fresh read %q, want v2", v.Data)
	}
}

func TestFirstCommitterWins(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	commitPut(t, s, oid, "base")

	// Two transactions snapshot the same state and both write oid.
	start1 := s.Clock().Now()
	start2 := s.Clock().Now()

	tx1 := newTxID()
	p1, err := s.Prepare(tx1, start1, []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("tx1"))}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(tx1, p1); err != nil {
		t.Fatal(err)
	}

	// tx2 must now fail prepare: a version newer than its snapshot exists.
	tx2 := newTxID()
	_, err = s.Prepare(tx2, start2, []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("tx2"))}})
	if !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("second committer: got %v, want ErrConflict", err)
	}
	if s.IsLocked(oid) {
		t.Fatal("failed prepare left a lock behind")
	}
}

func TestLockConflict(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)

	tx1 := newTxID()
	if _, err := s.Prepare(tx1, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("a"))}}); err != nil {
		t.Fatal(err)
	}
	// A second prepare on the same object conflicts immediately.
	tx2 := newTxID()
	_, err := s.Prepare(tx2, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("b"))}})
	if !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("want lock conflict, got %v", err)
	}
	s.Abort(tx1)
	if s.IsLocked(oid) {
		t.Fatal("abort did not release the lock")
	}
	// After the abort, tx3 can write.
	commitPut(t, s, oid, "c")
}

func TestAbortDiscardsWrites(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	commitPut(t, s, oid, "keep")

	tx := newTxID()
	if _, err := s.Prepare(tx, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("discard"))}}); err != nil {
		t.Fatal(err)
	}
	s.Abort(tx)
	v, _, err := s.Read(oid, s.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Data) != "keep" {
		t.Fatalf("aborted write became visible: %q", v.Data)
	}
	// Abort is idempotent.
	s.Abort(tx)
}

func TestReadWaitsForPreparedTx(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)

	tx := newTxID()
	proposed, err := s.Prepare(tx, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("pending"))}})
	if err != nil {
		t.Fatal(err)
	}
	// A snapshot above the proposed timestamp could be affected by the
	// pending commit, so the read must block until resolution.
	snap := s.Clock().Now()
	if snap < proposed {
		t.Fatalf("test setup: snap %d < proposed %d", snap, proposed)
	}
	readDone := make(chan error, 1)
	go func() {
		_, _, err := s.Read(oid, snap)
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("read returned %v before the transaction resolved", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := s.Commit(tx, proposed); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-readDone:
		if err != nil {
			t.Fatalf("read after commit: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not unblock after commit")
	}
}

func TestReadBelowProposedDoesNotWait(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	commitPut(t, s, oid, "old")
	snap := s.Clock().Now()

	tx := newTxID()
	if _, err := s.Prepare(tx, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("new"))}}); err != nil {
		t.Fatal(err)
	}
	defer s.Abort(tx)
	// snap predates the prepare's proposed timestamp: must not block.
	done := make(chan struct{})
	go func() {
		v, _, err := s.Read(oid, snap)
		if err != nil || string(v.Data) != "old" {
			t.Errorf("read below proposed: %v %v", v, err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("read below proposed timestamp blocked")
	}
}

func TestDeleteTombstone(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	commitPut(t, s, oid, "v")
	snap := s.Clock().Now()

	tx := newTxID()
	p, err := s.Prepare(tx, s.Clock().Now(), []*kv.Op{{Kind: kv.OpDelete, OID: oid}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(tx, p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Read(oid, s.Clock().Now()); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("read after delete: %v", err)
	}
	// The old snapshot still sees the value.
	if v, _, err := s.Read(oid, snap); err != nil || string(v.Data) != "v" {
		t.Fatalf("old snapshot after delete: %v %v", v, err)
	}
}

func TestFastCommit(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	tx := newTxID()
	start := s.Clock().Now()
	commitTS, err := s.FastCommit(tx, start, []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("fast"))}})
	if err != nil {
		t.Fatal(err)
	}
	if commitTS <= start {
		t.Fatalf("commitTS %d <= start %d", commitTS, start)
	}
	v, _, err := s.Read(oid, s.Clock().Now())
	if err != nil || string(v.Data) != "fast" {
		t.Fatalf("read after fast commit: %v %v", v, err)
	}
}

func TestDeltaOpsThroughCommit(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 9)

	// Blind ListAdds on an absent object create the supervalue.
	tx := newTxID()
	ops := []*kv.Op{
		{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: []byte("b"), Value: []byte("2")}},
		{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: []byte("a"), Value: []byte("1")}},
		{Kind: kv.OpAttrSet, OID: oid, Attr: 0, Num: 42},
	}
	if _, err := s.FastCommit(tx, s.Clock().Now(), ops); err != nil {
		t.Fatal(err)
	}
	v, _, err := s.Read(oid, s.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != kv.KindSuper || v.NumCells() != 2 || v.Attrs[0] != 42 {
		t.Fatalf("supervalue after deltas: %+v", v)
	}
	if val, ok := v.ListGet([]byte("a")); !ok || string(val) != "1" {
		t.Fatalf("cell a: %q %v", val, ok)
	}

	// Delta on top of the existing supervalue; old snapshot unaffected.
	snap := s.Clock().Now()
	tx2 := newTxID()
	ops2 := []*kv.Op{{Kind: kv.OpListDelRange, OID: oid, From: []byte("a"), To: []byte("b")}}
	if _, err := s.FastCommit(tx2, s.Clock().Now(), ops2); err != nil {
		t.Fatal(err)
	}
	vNew, _, _ := s.Read(oid, s.Clock().Now())
	if vNew.NumCells() != 1 {
		t.Fatalf("after DelRange: %d cells", vNew.NumCells())
	}
	vOld, _, _ := s.Read(oid, snap)
	if vOld.NumCells() != 2 {
		t.Fatalf("old snapshot mutated: %d cells", vOld.NumCells())
	}
}

func TestPrepareRejectsBadDelta(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	commitPut(t, s, oid, "plain")
	tx := newTxID()
	_, err := s.Prepare(tx, s.Clock().Now(), []*kv.Op{{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: []byte("k")}}})
	if !errors.Is(err, kv.ErrBadRequest) {
		t.Fatalf("delta on plain at prepare: %v", err)
	}
	if s.IsLocked(oid) {
		t.Fatal("rejected prepare left lock")
	}
}

func TestGCTrimsVersions(t *testing.T) {
	s := NewStore(nil, Config{MaxVersions: 4, RetentionMillis: 1})
	oid := kv.MakeOID(0, 1)
	for i := 0; i < 20; i++ {
		commitPut(t, s, oid, fmt.Sprintf("v%d", i))
	}
	if n := s.VersionCount(oid); n > 4 {
		t.Fatalf("version chain not trimmed: %d", n)
	}
	// Latest version must survive GC.
	v, _, err := s.Read(oid, s.Clock().Now())
	if err != nil || string(v.Data) != "v19" {
		t.Fatalf("latest after GC: %v %v", v, err)
	}
	if s.Stats().GCVersions == 0 {
		t.Fatal("GC counter not incremented")
	}
}

func TestCommitUnknownTx(t *testing.T) {
	s := NewStore(nil, Config{})
	if err := s.Commit(12345678, s.Clock().Now()); err == nil {
		t.Fatal("commit of unknown tx must fail")
	}
}

func TestDuplicatePrepare(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	tx := newTxID()
	if _, err := s.Prepare(tx, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain(nil)}}); err != nil {
		t.Fatal(err)
	}
	oid2 := kv.MakeOID(0, 2)
	if _, err := s.Prepare(tx, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid2, Value: kv.NewPlain(nil)}}); err == nil {
		t.Fatal("duplicate prepare must fail")
	}
	s.Abort(tx)
}

func TestMultiObjectAtomicity(t *testing.T) {
	s := NewStore(nil, Config{})
	a, b := kv.MakeOID(0, 1), kv.MakeOID(0, 2)
	tx := newTxID()
	ops := []*kv.Op{
		{Kind: kv.OpPut, OID: a, Value: kv.NewPlain([]byte("A"))},
		{Kind: kv.OpPut, OID: b, Value: kv.NewPlain([]byte("B"))},
	}
	p, err := s.Prepare(tx, s.Clock().Now(), ops)
	if err != nil {
		t.Fatal(err)
	}
	// Before commit, neither is visible.
	if _, _, err := s.Read(a, p-1); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("a visible before commit: %v", err)
	}
	if err := s.Commit(tx, p); err != nil {
		t.Fatal(err)
	}
	// After commit, both appear at the same timestamp.
	va, ta, _ := s.Read(a, s.Clock().Now())
	vb, tb, _ := s.Read(b, s.Clock().Now())
	if string(va.Data) != "A" || string(vb.Data) != "B" {
		t.Fatalf("values: %q %q", va.Data, vb.Data)
	}
	if ta != tb || ta != p {
		t.Fatalf("commit timestamps differ: %d %d (want %d)", ta, tb, p)
	}
}

// TestConcurrentIncrementsNoLostUpdates exercises SI's write-write
// conflict detection: concurrent read-modify-write transactions with
// retry must not lose updates.
func TestConcurrentIncrementsNoLostUpdates(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	{
		tx := newTxID()
		v := kv.NewSuper()
		if _, err := s.FastCommit(tx, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: v}}); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					start := s.Clock().Now()
					cur, _, err := s.Read(oid, start)
					if err != nil {
						continue
					}
					op := &kv.Op{Kind: kv.OpAttrSet, OID: oid, Attr: 0, Num: cur.Attrs[0] + 1}
					if _, err := s.FastCommit(newTxID(), start, []*kv.Op{op}); err == nil {
						break
					}
					// conflict: retry with a fresh snapshot
				}
			}
		}()
	}
	wg.Wait()
	v, _, err := s.Read(oid, s.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	if v.Attrs[0] != workers*perWorker {
		t.Fatalf("lost updates: counter = %d, want %d", v.Attrs[0], workers*perWorker)
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	commitPut(t, s, oid, "x")
	s.Read(oid, s.Clock().Now())
	st := s.Stats()
	if st.Reads != 1 || st.Prepares != 1 || st.Commits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestCommitFastCommitCountersDisjoint pins the counter fix: one
// logical commit increments exactly one of Commits / FastCommits, so
// their sum is the total number of committed transactions.
func TestCommitFastCommitCountersDisjoint(t *testing.T) {
	s := NewStore(nil, Config{})
	if _, err := s.FastCommit(newTxID(), s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: kv.MakeOID(0, 1), Value: kv.NewPlain([]byte("fast"))},
	}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FastCommits != 1 || st.Commits != 0 {
		t.Fatalf("after fast commit: Commits=%d FastCommits=%d, want 0/1", st.Commits, st.FastCommits)
	}
	commitPut(t, s, kv.MakeOID(0, 2), "two-phase")
	st = s.Stats()
	if st.FastCommits != 1 || st.Commits != 1 {
		t.Fatalf("after both paths: Commits=%d FastCommits=%d, want 1/1", st.Commits, st.FastCommits)
	}
}

// TestCommitIdempotentReplay is the targeted regression for the
// phase-two retry: commit a transaction, replay the same commit
// request, and expect an acknowledgment (nil) instead of
// "commit of unknown tx".
func TestCommitIdempotentReplay(t *testing.T) {
	s := NewStore(nil, Config{ReplicationLog: true})
	oid := kv.MakeOID(0, 1)
	txid := newTxID()
	proposed, err := s.Prepare(txid, s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("once"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(txid, proposed); err != nil {
		t.Fatal(err)
	}
	// The retried decision acks with the recorded outcome.
	if err := s.Commit(txid, proposed); err != nil {
		t.Fatalf("replayed commit: %v, want ack", err)
	}
	// The replay neither double-applies nor double-counts.
	if n := s.VersionCount(oid); n != 1 {
		t.Fatalf("replay created %d versions, want 1", n)
	}
	if st := s.Stats(); st.Commits != 1 {
		t.Fatalf("replay double-counted: Commits=%d", st.Commits)
	}
	// A decision for a transaction this store never prepared is still
	// an error.
	if err := s.Commit(txid+999, proposed); !errors.Is(err, kv.ErrBadRequest) {
		t.Fatalf("commit of truly unknown tx: %v, want ErrBadRequest", err)
	}
	// The other outcome is reported too: a commit retried after an
	// abort decision must not silently ack.
	txid2 := newTxID()
	if _, err := s.Prepare(txid2, s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: kv.MakeOID(0, 2), Value: kv.NewPlain([]byte("doomed"))},
	}); err != nil {
		t.Fatal(err)
	}
	s.Abort(txid2)
	if err := s.Commit(txid2, s.Clock().Now()); !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("commit after abort decision: %v, want ErrConflict", err)
	}
}

// TestOrphanPrepareTTL covers the stranded-lock cleanup on a LEGACY
// (epoch-0) store: a prepare whose coordinator never sends phase two
// is unilaterally aborted after the TTL, its locks come free, and the
// abort is a recorded decision — while a decided transaction is never
// swept. Epoch-bearing groups replace the unconditional TTL with the
// superseded-epoch rule (TestSweepOrphansEpochGuard).
func TestOrphanPrepareTTL(t *testing.T) {
	s := NewStore(nil, Config{PrepareTTL: 10 * time.Millisecond})
	oid := kv.MakeOID(0, 1)
	txid := newTxID()
	if _, err := s.Prepare(txid, s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("orphan"))},
	}); err != nil {
		t.Fatal(err)
	}
	if n := s.SweepOrphans(); n != 0 {
		t.Fatalf("fresh prepare swept: %d", n)
	}
	time.Sleep(20 * time.Millisecond)
	if n := s.SweepOrphans(); n != 1 {
		t.Fatalf("expired prepare not swept: %d", n)
	}
	if s.IsLocked(oid) {
		t.Fatal("orphan abort did not release the lock")
	}
	if st := s.Stats(); st.OrphanAborts != 1 || st.Aborts != 1 {
		t.Fatalf("orphan counters: %+v", st)
	}
	// The late coordinator's commit is answered with the abort outcome.
	if err := s.Commit(txid, s.Clock().Now()); !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("late commit after orphan abort: %v, want ErrConflict", err)
	}
	// A decided transaction never gets orphan-swept, even long past the
	// TTL: it left the prepared table with its decision.
	commitPut(t, s, kv.MakeOID(0, 2), "decided")
	time.Sleep(20 * time.Millisecond)
	if n := s.SweepOrphans(); n != 0 {
		t.Fatalf("decided tx swept as orphan: %d", n)
	}
}

// TestWALRecoversPreparedState: a participant that crashes between
// its yes vote and phase two restarts with the prepared transaction
// intact (staged ops and locks reconstructed from the RecPrepare log
// record), so the coordinator's decision still lands; a decision in
// the log is replayed to completion.
func TestWALRecoversPreparedState(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{LogPath: dir + "/wal.log"}
	s, err := OpenStore(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	undecided, decided := newTxID(), newTxID()
	oidU, oidD := kv.MakeOID(0, 1), kv.MakeOID(0, 2)
	if _, err := s.Prepare(undecided, s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: oidU, Value: kv.NewPlain([]byte("in-flight"))},
	}); err != nil {
		t.Fatal(err)
	}
	proposed, err := s.Prepare(decided, s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: oidD, Value: kv.NewPlain([]byte("committed"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(decided, proposed); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseLog(); err != nil {
		t.Fatal(err)
	}

	// "Restart": replay the log into a fresh store.
	s2, err := OpenStore(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseLog()
	if v, _, err := s2.Read(oidD, s2.Clock().Now()); err != nil || string(v.Data) != "committed" {
		t.Fatalf("decided tx after replay: %v %v", v, err)
	}
	if !s2.IsLocked(oidU) {
		t.Fatal("undecided prepare lost in replay")
	}
	// The coordinator's late decision still applies after the restart.
	if err := s2.Commit(undecided, s2.Clock().Now()); err != nil {
		t.Fatalf("commit of recovered prepare: %v", err)
	}
	if v, _, err := s2.Read(oidU, s2.Clock().Now()); err != nil || string(v.Data) != "in-flight" {
		t.Fatalf("recovered tx not applied: %v %v", v, err)
	}
}

// TestDecidedTableEviction: outcomes age out of the decided table
// after DecidedTTL, and a decision retried after that is back to
// "unknown tx" (the table is a bounded cache, not a permanent log).
func TestDecidedTableEviction(t *testing.T) {
	s := NewStore(nil, Config{DecidedTTL: 10 * time.Millisecond})
	oid := kv.MakeOID(0, 1)
	txid := newTxID()
	proposed, err := s.Prepare(txid, s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("v"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(txid, proposed); err != nil {
		t.Fatal(err)
	}
	if known, committed := s.Decided(txid); !known || !committed {
		t.Fatalf("decision not recorded: known=%v committed=%v", known, committed)
	}
	time.Sleep(20 * time.Millisecond)
	s.SweepDecided()
	if known, _ := s.Decided(txid); known {
		t.Fatal("decision survived its TTL")
	}
	if err := s.Commit(txid, proposed); !errors.Is(err, kv.ErrBadRequest) {
		t.Fatalf("commit after eviction: %v, want ErrBadRequest", err)
	}
}
