package kvserver

import (
	"testing"

	"yesquel/internal/kv"
)

// TestSnapshotSkipsUnreplicatedLockOnlyObjects: an in-flight
// unreplicated prepare (mid-FastCommit, or a 2PC prepare whose record
// has not entered the stream yet) stages its lock on a bare
// zero-version object. A state snapshot captured in that window must
// not materialize the object on the installer: if the transaction
// later aborts without a stream decision, nothing would ever delete
// the installer's copy, and the phantom would diverge StateDigest
// forever.
func TestSnapshotSkipsUnreplicatedLockOnlyObjects(t *testing.T) {
	s := NewStore(nil, Config{ReplicationLog: true})
	commitPut(t, s, kv.MakeOID(0, 1), "real")

	// Reproduce the mid-FastCommit state deterministically: lock staged
	// with replicate=false, commit not yet run.
	txid := newTxID()
	inflight := kv.MakeOID(0, 2)
	if _, err := s.prepare(txid, s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: inflight, Value: kv.NewPlain([]byte("inflight"))},
	}, false); err != nil {
		t.Fatal(err)
	}

	_, _, chunks, data, err := s.ServeSnapshotChunk(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if chunks != 1 {
		t.Fatalf("test snapshot unexpectedly split into %d chunks", chunks)
	}
	r := NewStore(nil, Config{ReplicationLog: true})
	if err := r.InstallSnapshot(data); err != nil {
		t.Fatal(err)
	}
	if r.NumObjects() != 1 {
		t.Fatalf("installer holds %d objects, want 1 (the phantom lock-only object leaked)", r.NumObjects())
	}

	// The in-flight transaction aborts with no stream decision (its
	// record never entered the stream); both replicas must agree.
	s.Abort(txid)
	if got, want := r.StateDigest(), s.StateDigest(); got != want {
		t.Fatalf("installer digest %x != source digest %x after no-decision abort", got, want)
	}
}
