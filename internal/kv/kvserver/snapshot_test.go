package kvserver_test

// Tests for the bounded replication log: snapshot checkpoints, log
// truncation, state-transfer resync, WAL checkpoint rotation, and the
// diverged-ahead guard.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
)

// startBoundedReplServer launches a kvserver whose replication log
// truncates at maxRecords, with small snapshot chunks so transfers
// exercise the multi-chunk path.
func startBoundedReplServer(t *testing.T, maxRecords int) *kvserver.Server {
	t.Helper()
	srv := kvserver.NewServer(kvserver.NewStore(nil, kvserver.Config{
		ReplicationLog:           true,
		ReplicationLogMaxRecords: maxRecords,
		SnapshotChunkBytes:       512,
	}))
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestCheckpointBoundsReplicationLog is the acceptance bound: under
// sustained writes with ReplicationLogMaxRecords set, the in-memory
// log length never exceeds the cap (the emit paths truncate inline,
// not on a sweeper's schedule).
func TestCheckpointBoundsReplicationLog(t *testing.T) {
	const max = 32
	st := kvserver.NewStore(nil, kvserver.Config{ReplicationLog: true, ReplicationLogMaxRecords: max})
	for i := 0; i < 10*max; i++ {
		oid := kv.MakeOID(0, uint64(i))
		if _, err := st.FastCommit(uint64(i+1), st.Clock().Now(), []*kv.Op{
			{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte(fmt.Sprintf("v%d", i)))},
		}); err != nil {
			t.Fatal(err)
		}
		if base, head := st.LogBounds(); head-base > max {
			t.Fatalf("after %d commits the log holds %d records (max %d)", i+1, head-base, max)
		}
	}
	stats := st.Stats()
	if stats.Checkpoints == 0 || stats.LogRecordsTruncated == 0 {
		t.Fatalf("sustained writes never checkpointed: checkpoints=%d truncated=%d", stats.Checkpoints, stats.LogRecordsTruncated)
	}
	base, head := st.LogBounds()
	if base == 0 || head != 10*max {
		t.Fatalf("log bounds [%d, %d), want base > 0 and head %d", base, head, 10*max)
	}
}

// TestCheckpointBoundsReplicationLogBytes covers the byte-measured
// policy: a log of large records truncates long before any record
// count would trip.
func TestCheckpointBoundsReplicationLogBytes(t *testing.T) {
	st := kvserver.NewStore(nil, kvserver.Config{ReplicationLog: true, ReplicationLogMaxBytes: 4096})
	big := make([]byte, 1024)
	for i := 0; i < 64; i++ {
		if _, err := st.FastCommit(uint64(i+1), st.Clock().Now(), []*kv.Op{
			{Kind: kv.OpPut, OID: kv.MakeOID(0, uint64(i)), Value: kv.NewPlain(big)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if stats := st.Stats(); stats.Checkpoints == 0 {
		t.Fatal("byte-bounded log never checkpointed")
	}
	if base, head := st.LogBounds(); head-base > 8 {
		t.Fatalf("byte-bounded log retains %d one-KiB records", head-base)
	}
}

// TestMirroredBackupLogStaysBounded: a live-mirror backup appends
// every mirrored record to its own replication log; its bound is
// enforced by the server's checkpoint ticker plus a hard inline
// ceiling at mirrorCheckpointSlack (4x) — sustained mirrored writes
// must not grow it past that ceiling.
func TestMirroredBackupLogStaysBounded(t *testing.T) {
	const max = 16
	primary := startBoundedReplServer(t, max)
	backup := startBoundedReplServer(t, max)
	if err := primary.SetMirror(backup.Addr()); err != nil {
		t.Fatal(err)
	}
	c, err := kvclient.Open([]string{primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		tx := c.Begin()
		tx.Put(c.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("m%d", i))))
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		if base, head := backup.Store().LogBounds(); head-base > 4*max {
			t.Fatalf("after %d mirrored commits the backup log holds %d records (hard ceiling %d)", i+1, head-base, 4*max)
		}
	}
	if st := backup.Store().Stats(); st.Checkpoints == 0 {
		t.Fatal("mirrored backup never checkpointed")
	}
}

// TestSnapshotResyncByteForByte is the state-transfer half of the
// acceptance criteria: a backup whose requested seq predates the
// truncated log catches up via snapshot + tail to an identical
// StateDigest, and live mirroring continues on top of the installed
// snapshot.
func TestSnapshotResyncByteForByte(t *testing.T) {
	primary := startBoundedReplServer(t, 16)
	c, err := kvclient.Open([]string{primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	writeBatch(t, c, "history", 40)
	if base, _ := primary.Store().LogBounds(); base == 0 {
		t.Fatal("history did not trigger truncation; the test needs the snapshot path")
	}

	// Fresh backup at seq 0: its position predates logBase, so SyncFrom
	// must fall back to install-snapshot-then-tail.
	backup := startReplServer(t)
	backup.Store().StartResync()
	watermark, err := primary.AttachBackup(backup.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := backup.SyncFrom(primary.Addr(), watermark); err != nil {
		t.Fatal(err)
	}
	if got, want := backup.Store().StateDigest(), primary.Store().StateDigest(); got != want {
		t.Fatalf("after snapshot resync: backup digest %x != primary digest %x", got, want)
	}
	if got, want := backup.Store().ReplSeq(), primary.Store().ReplSeq(); got != want {
		t.Fatalf("after snapshot resync: backup seq %d != primary seq %d", got, want)
	}
	if st := backup.Store().Stats(); st.SnapshotsInstalled != 1 {
		t.Fatalf("backup installed %d snapshots, want 1", st.SnapshotsInstalled)
	}
	if st := primary.Store().Stats(); st.SnapshotsServed == 0 {
		t.Fatal("primary served no snapshot")
	}

	// Live mirroring stacks on the installed state.
	writeBatch(t, c, "after", 10)
	if got, want := backup.Store().StateDigest(), primary.Store().StateDigest(); got != want {
		t.Fatalf("after live mirroring: backup digest %x != primary digest %x", got, want)
	}

	// And the rebuilt backup serves the data to a failover client.
	oid := c.NewOID(0)
	tx := c.Begin()
	tx.Put(oid, kv.NewPlain([]byte("visible")))
	if err := tx.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	primary.Close()
	c2, err := kvclient.Open([]string{backup.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	check := c2.Begin()
	defer check.Abort()
	if v, err := check.Read(context.Background(), oid); err != nil || string(v.Data) != "visible" {
		t.Fatalf("read on snapshot-rebuilt backup: %v %v", v, err)
	}
}

// TestSnapshotCarriesPreparedAndDecidedState: a checkpoint can bury an
// in-flight prepare (and a decided outcome) below logBase; the
// snapshot must carry both, so a snapshot-built backup still holds the
// staged locks for the coordinator's decision and still answers a
// retried phase-two request from its decided table.
func TestSnapshotCarriesPreparedAndDecidedState(t *testing.T) {
	primary := startBoundedReplServer(t, 8)
	c, err := kvclient.Open([]string{primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	writeBatch(t, c, "history", 10)

	store := primary.Store()
	// A decided two-phase transaction...
	decidedOID := kv.MakeOID(0, 111111)
	decidedTx := uint64(1<<40 + 1)
	proposed, err := store.Prepare(decidedTx, store.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: decidedOID, Value: kv.NewPlain([]byte("done"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Commit(decidedTx, proposed); err != nil {
		t.Fatal(err)
	}
	// ...and an undecided one, both forced below logBase by an explicit
	// checkpoint.
	pendingOID := kv.MakeOID(0, 222222)
	pendingTx := uint64(1<<40 + 2)
	pendingTS, err := store.Prepare(pendingTx, store.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: pendingOID, Value: kv.NewPlain([]byte("mid-2pc"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	ckptSeq, err := store.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if base, _ := store.LogBounds(); base != ckptSeq {
		t.Fatalf("logBase %d after checkpoint at %d", base, ckptSeq)
	}

	backup := startReplServer(t)
	backup.Store().StartResync()
	watermark, err := primary.AttachBackup(backup.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := backup.SyncFrom(primary.Addr(), watermark); err != nil {
		t.Fatal(err)
	}
	if !backup.Store().IsLocked(pendingOID) {
		t.Fatal("snapshot did not carry the prepared transaction's lock")
	}
	if known, committed := backup.Store().Decided(decidedTx); !known || !committed {
		t.Fatalf("snapshot decided table: known=%v committed=%v", known, committed)
	}
	// The coordinator's decision mirrors to the snapshot-built backup
	// like any record and releases the staged lock there.
	if err := store.Commit(pendingTx, pendingTS); err != nil {
		t.Fatal(err)
	}
	if backup.Store().IsLocked(pendingOID) {
		t.Fatal("mirrored decision did not release the backup's lock")
	}
	if got, want := backup.Store().StateDigest(), primary.Store().StateDigest(); got != want {
		t.Fatalf("after decision: backup digest %x != primary digest %x", got, want)
	}
}

// TestSyncFromRejectsDivergedAheadBackup pins the loud-failure
// satellite: a backup that is AHEAD of its sync source (it applied
// records the source never emitted) must fail resync with a typed
// divergence error — the old behavior returned an empty batch and the
// backup reported resync complete over irreconcilable histories.
func TestSyncFromRejectsDivergedAheadBackup(t *testing.T) {
	primary := startReplServer(t)
	c, err := kvclient.Open([]string{primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	writeBatch(t, c, "short", 3)

	diverged := startReplServer(t)
	c2, err := kvclient.Open([]string{diverged.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	writeBatch(t, c2, "longer", 10)

	diverged.Store().StartResync()
	err = diverged.SyncFrom(primary.Addr(), 0)
	if err == nil {
		t.Fatal("resync of an ahead-of-source backup reported success")
	}
	if !errors.Is(err, kv.ErrDiverged) {
		t.Fatalf("want kv.ErrDiverged, got: %v", err)
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("divergence should be named: %v", err)
	}
}

// TestWALCheckpointRestartReplaysSnapshotPlusTail: after a checkpoint
// rotates the write-ahead log, a restart rebuilds the identical store
// from the snapshot frame plus the record tail — not the full history
// — and keeps appending to the rotated log.
func TestWALCheckpointRestartReplaysSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	cfg := kvserver.Config{LogPath: dir + "/wal.log", ReplicationLog: true}
	st, err := kvserver.OpenStore(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	put := func(s *kvserver.Store, tx, i uint64, val string) {
		t.Helper()
		if _, err := s.FastCommit(tx, s.Clock().Now(), []*kv.Op{
			{Kind: kv.OpPut, OID: kv.MakeOID(0, i), Value: kv.NewPlain([]byte(val))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 20; i++ {
		put(st, i+1, i, fmt.Sprintf("pre-%d", i))
	}
	ckptSeq, err := st.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(20); i < 30; i++ {
		put(st, i+1, i, fmt.Sprintf("tail-%d", i))
	}
	digest, seq := st.StateDigest(), st.ReplSeq()
	if err := st.CloseLog(); err != nil {
		t.Fatal(err)
	}

	st2, err := kvserver.OpenStore(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.StateDigest(); got != digest {
		t.Fatalf("restart digest %x != pre-restart %x", got, digest)
	}
	if got := st2.ReplSeq(); got != seq {
		t.Fatalf("restart seq %d != pre-restart %d", got, seq)
	}
	if base, _ := st2.LogBounds(); base != ckptSeq {
		t.Fatalf("restart logBase %d != checkpoint seq %d", base, ckptSeq)
	}
	if stats := st2.Stats(); stats.SnapshotsInstalled != 1 {
		t.Fatalf("restart installed %d snapshots, want 1", stats.SnapshotsInstalled)
	}
	// The rotated log keeps accepting appends across another restart.
	put(st2, 31, 99, "post-restart")
	st2.CloseLog()
	st3, err := kvserver.OpenStore(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.CloseLog()
	if v, _, err := st3.Read(kv.MakeOID(0, 99), st3.Clock().Now()); err != nil || string(v.Data) != "post-restart" {
		t.Fatalf("post-rotation append lost: %v %v", v, err)
	}
}

// TestKillPrimaryMidSnapshotInstallNoAckedWriteLoss is the chaos
// drill: the primary dies while a joining backup is mid-way through
// installing its state snapshot. The half-fed backup must fail its
// resync loudly (it is NOT a usable replica), and every acknowledged
// write must still be readable once the primary restarts from its
// checkpoint-rotated WAL.
func TestKillPrimaryMidSnapshotInstallNoAckedWriteLoss(t *testing.T) {
	dir := t.TempDir()
	pcfg := kvserver.Config{
		LogPath:                  dir + "/primary.log",
		ReplicationLog:           true,
		ReplicationLogMaxRecords: 8,
		SnapshotChunkBytes:       256,
	}
	pstore, err := kvserver.OpenStore(nil, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	primary := kvserver.NewServer(pstore)
	if err := primary.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go primary.Serve()

	c, err := kvclient.Open([]string{primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	acked := make(map[kv.OID]string, 60)
	for i := 0; i < 60; i++ {
		oid := c.NewOID(0)
		val := fmt.Sprintf("acked-%d", i)
		tx := c.Begin()
		tx.Put(oid, kv.NewPlain([]byte(val)))
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		acked[oid] = val
	}
	c.Close()
	digestBefore := pstore.StateDigest()
	if base, _ := pstore.LogBounds(); base == 0 {
		t.Fatal("no truncation happened; the test needs the snapshot path")
	}

	backup := kvserver.NewServer(kvserver.NewStore(nil, kvserver.Config{ReplicationLog: true}))
	if err := backup.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go backup.Serve()
	t.Cleanup(func() { backup.Close() })
	killed := false
	backup.TestHookSnapChunk = func(chunk uint32) {
		if chunk == 1 {
			primary.Close() // the source dies mid-transfer
			killed = true
		}
	}
	backup.Store().StartResync()
	watermark, err := primary.AttachBackup(backup.Addr())
	if err != nil {
		t.Fatal(err)
	}
	err = backup.SyncFrom(primary.Addr(), watermark)
	if err == nil {
		t.Fatal("resync against a primary killed mid-snapshot reported success")
	}
	if !killed {
		t.Fatal("snapshot fit one chunk; shrink SnapshotChunkBytes so the kill lands mid-transfer")
	}
	// The half-fed backup installed nothing: its stream is untouched.
	if got := backup.Store().ReplSeq(); got != 0 {
		t.Fatalf("aborted install advanced the backup to seq %d", got)
	}

	// Recovery: the primary restarts from its checkpoint-rotated WAL
	// with every acknowledged write intact.
	pstore.CloseLog()
	rstore, err := kvserver.OpenStore(nil, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rstore.StateDigest(); got != digestBefore {
		t.Fatalf("restart digest %x != pre-kill digest %x: acked state lost", got, digestBefore)
	}
	rsrv := kvserver.NewServer(rstore)
	if err := rsrv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go rsrv.Serve()
	t.Cleanup(func() { rsrv.Close(); rstore.CloseLog() })
	c2, err := kvclient.Open([]string{rsrv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	check := c2.Begin()
	defer check.Abort()
	for oid, want := range acked {
		v, err := check.Read(ctx, oid)
		if err != nil || string(v.Data) != want {
			t.Fatalf("acked write %v lost after mid-install kill: %v %v", oid, v, err)
		}
	}

	// And a fresh resync from the recovered primary completes.
	backup2 := startReplServer(t)
	backup2.Store().StartResync()
	wm2, err := rsrv.AttachBackup(backup2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := backup2.SyncFrom(rsrv.Addr(), wm2); err != nil {
		t.Fatal(err)
	}
	if got, want := backup2.Store().StateDigest(), rstore.StateDigest(); got != want {
		t.Fatalf("post-recovery resync digest %x != primary %x", got, want)
	}
}
