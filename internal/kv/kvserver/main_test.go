package kvserver

import (
	"testing"

	"yesquel/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running:
// every server, store, and sync loop started by a test must be torn
// down by that test. No allowances — the package's goroutines (WAL
// flusher, mirror senders, sweeper, lease loops) all terminate on
// Close/Detach, and a survivor is a real bug.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
