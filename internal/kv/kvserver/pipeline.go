package kvserver

// Group-commit replication pipeline. Record EMISSION (under repMu:
// sequence assignment, epoch stamp, replication-log append, applying
// the record's effects) is decoupled from the DURABILITY WAIT: instead
// of a synchronous per-record mirror RPC and WAL fsync inside the
// stream lock, emission enqueues the record here and a per-store
// flusher goroutine coalesces whatever accumulated into one
// MirrorBatchReq RPC (one round trip, one lease extension, one
// backup-side contiguous apply) and one batched WAL append (one
// buffer, one file write, one fsync). Committers block on the
// DURABILITY WATERMARK — the highest sequence number both acknowledged
// by the backup and fsynced — before acknowledging the client, so the
// guarantee "an acked write survives primary failure" is unchanged
// while N concurrent writers share each round trip and fsync.
//
// Failure semantics are watermark semantics, replacing the strict
// per-record mirror: a batch that fails (backup dead, gap, divergence,
// epoch reject) fails every waiter whose record rode in it, with the
// batch's error; the records stay in the primary's local stream
// (their effects were applied at emission), so the failed waiters'
// clients must treat the outcome as uncertain — exactly the guarantee
// they already get from a lost acknowledgment. Whether the backup
// applied the batch or not, the next batch is loud: either it
// continues contiguously (the ack was lost, the stream is intact) or
// the backup reports the gap/divergence per its existing checks.
// Waiters never succeed on a record the backup did not apply: the only
// ack path is a successful batch RPC covering the record's sequence
// number (or an explicit operator detach, which removes the
// replication requirement itself and fails — not acks — the waiters
// already in flight).

import (
	"fmt"
	"sync"
	"time"

	"yesquel/internal/kv"
)

// mirrorBatchBytes caps one mirror batch's estimated payload,
// comfortably under the wire frame limit (mirroring syncBatchBytes).
const mirrorBatchBytes = 4 << 20

// replWaitTimeout bounds a durability wait. The worst legitimate case
// is a record emitted just after a batch departed toward a slow (but
// within-timeout) backup: it waits out that in-flight round trip, a
// coalescing interval, and its own batch's round trip — so the bound
// must exceed two mirror timeouts plus the maximum interval, or a
// healthy-but-slow backup would fail every commit spuriously. A
// waiter whose record is never covered by an ack (e.g. the batch
// carrying it failed after the waiter registered, or the backup
// silently swallowed a batch) fails loudly at this bound instead of
// wedging the client forever.
const replWaitTimeout = 2*mirrorTimeout + maxGroupCommitInterval + 2*time.Second

// pipeWaiter is one durability wait: ch receives nil once seq is
// durable, or the error that made it impossible.
type pipeWaiter struct {
	seq uint64
	ch  chan error
}

// replPipe is the per-store pipeline state. Lock order: repMu before
// pipe.mu before wal.mu; pipe.mu is never held across network or disk
// I/O except by the checkpoint drain, which holds repMu anyway.
type replPipe struct {
	mu sync.Mutex
	// walDone signals walFlushing transitions (checkpoint drains wait
	// for the in-flight WAL write so rotation cannot strand records).
	walDone *sync.Cond

	// sendQ holds emitted records awaiting a mirror batch (only
	// populated while a sender is attached); walQ holds records
	// awaiting the batched write-ahead-log append.
	sendQ []kv.SyncRec
	walQ  []kv.ReplRecord
	// walQEnd is the sequence number after walQ's last record.
	walQEnd uint64

	// Watermarks: acks cover seq < mirrored, the WAL covers seq <
	// synced (fsynced when LogSync). durableLocked combines them.
	mirrored uint64
	synced   uint64

	// mirrorOn: a sender is attached, waiters require the mirror ack.
	// needWAL: the store has a write-ahead log, waiters require the
	// synced watermark — which advances only once a batch is WRITTEN
	// to the file (and fsynced, when LogSync is set), so an acked
	// commit is never still sitting in the in-memory queue when the
	// process dies (the pre-batching write-then-ack contract).
	mirrorOn bool
	needWAL  bool
	sender   func([]kv.SyncRec) error

	waiters []pipeWaiter

	// failRanges records sequence windows whose replication can never
	// complete — records emitted under a mirror that was detached or
	// replaced before acknowledging them. A waiter for such a record
	// must FAIL (uncertain) even if it registers after the detach
	// already ran: the detach drops the records from the send queue
	// and clears mirrorOn, so without this record the late waiter
	// would see "no mirror required" and ack a record no backup ever
	// applied. Bounded: one entry per detach/replace event, oldest
	// dropped past failRangesMax (by then every possible waiter has
	// long timed out).
	failRanges []failRange

	// wal mirrors s.wal for the flusher: s.wal is written under repMu
	// (OpenStore, snapshot-install failure), which the flusher never
	// holds, so it reads this copy under pipe.mu instead.
	wal *wal

	// walFlushing marks an in-flight batched WAL write (the flusher
	// holds it across appendBatch only, never across the mirror RPC).
	walFlushing bool

	// flushMu serializes whole flush passes (batch grab + I/O +
	// watermark update): a stop/start race (detach then prompt
	// re-attach) can briefly leave an old flusher goroutine finishing
	// its drain while the new one starts, and two concurrent passes
	// could otherwise send mirror batches out of sequence order.
	flushMu sync.Mutex

	// stopCh is non-nil while the flusher goroutine runs.
	stopCh chan struct{}
	wake   chan struct{}
}

func (s *Store) initPipe() {
	s.pipe.walDone = sync.NewCond(&s.pipe.mu)
	s.pipe.wake = make(chan struct{}, 1)
}

// failRange is one permanently unackable window of the stream (see
// replPipe.failRanges).
type failRange struct {
	from, to uint64
	err      error
}

const failRangesMax = 32

// failureFor returns the permanent failure covering seq, if any.
// Caller holds pipe.mu.
func (p *replPipe) failureFor(seq uint64) error {
	for i := range p.failRanges {
		if seq >= p.failRanges[i].from && seq < p.failRanges[i].to {
			return p.failRanges[i].err
		}
	}
	return nil
}

// durableLocked reports whether the record at seq satisfies every
// durability requirement currently in force. Caller holds pipe.mu.
func (p *replPipe) durableLocked(seq uint64) bool {
	if p.mirrorOn && seq >= p.mirrored {
		return false
	}
	if p.needWAL && seq >= p.synced {
		return false
	}
	return true
}

// enqueueLocked hands one emitted record to the pipeline. Caller holds
// repMu (emission order is queue order is stream order).
func (s *Store) enqueueLocked(seq uint64, rec kv.ReplRecord) {
	p := &s.pipe
	p.mu.Lock()
	queued := false
	if p.sender != nil {
		p.sendQ = append(p.sendQ, kv.SyncRec{Seq: seq, Rec: rec})
		queued = true
	}
	if s.wal != nil {
		p.walQ = append(p.walQ, rec)
		p.walQEnd = seq + 1
		queued = true
	}
	p.mu.Unlock()
	if queued {
		s.wakeFlusher()
	}
}

func (s *Store) wakeFlusher() {
	select {
	case s.pipe.wake <- struct{}{}:
	default:
	}
}

// waitReplicated blocks until the record at seq is durable under the
// store's configured guarantees — acknowledged by the attached mirror,
// and fsynced when LogSync — or returns the error that failed it.
// Callers must NOT hold repMu: the wait happening outside the stream
// lock is the whole point of group commit.
func (s *Store) waitReplicated(seq uint64) error {
	p := &s.pipe
	p.mu.Lock()
	if err := p.failureFor(seq); err != nil {
		p.mu.Unlock()
		return err
	}
	if p.durableLocked(seq) {
		p.mu.Unlock()
		return nil
	}
	w := pipeWaiter{seq: seq, ch: make(chan error, 1)}
	p.waiters = append(p.waiters, w)
	p.mu.Unlock()
	t := time.NewTimer(replWaitTimeout)
	defer t.Stop()
	select {
	case err := <-w.ch:
		return err
	case <-t.C:
		p.mu.Lock()
		for i := range p.waiters {
			if p.waiters[i].ch == w.ch {
				p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
				break
			}
		}
		p.mu.Unlock()
		// The waiter may have been completed between the timeout and
		// the removal; prefer that result.
		select {
		case err := <-w.ch:
			return err
		default:
		}
		return fmt.Errorf("kvserver: timed out awaiting replication of seq %d", seq)
	}
}

// completeWaitersLocked answers every waiter that is now durable, and
// fails those in [failFrom, failTo) with failErr (a failed batch).
// Caller holds pipe.mu.
func (p *replPipe) completeWaitersLocked(failErr error, failFrom, failTo uint64) {
	keep := p.waiters[:0]
	for _, w := range p.waiters {
		switch {
		case failErr != nil && w.seq >= failFrom && w.seq < failTo:
			w.ch <- failErr
		case p.durableLocked(w.seq):
			w.ch <- nil
		default:
			keep = append(keep, w)
		}
	}
	// Zero the tail so completed waiters' channels are collectable.
	for i := len(keep); i < len(p.waiters); i++ {
		p.waiters[i] = pipeWaiter{}
	}
	p.waiters = keep
}

// AttachMirrorBatch installs send as the replication batch sender and
// returns the sequence number the next stream record will carry — the
// watermark a backup attached mid-life must sync up to. The pipeline's
// mirror watermark restarts at the stream head (nothing below it needs
// this backup's ack; a resync is responsible for the history). Pass
// nil to detach: queued-but-unsent records are dropped from the send
// queue and waiters still awaiting a mirror ack FAIL — detaching must
// never ack a record the (now removed) backup did not apply; new
// records emitted after the detach simply no longer require an ack.
func (s *Store) AttachMirrorBatch(send func([]kv.SyncRec) error) uint64 {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	p := &s.pipe
	p.mu.Lock()
	if send != nil {
		if p.mirrorOn {
			// Replacing a live mirror: records still awaiting the OLD
			// backup's ack must fail (uncertain), not be silently
			// re-homed — the new backup only receives them later, via
			// the resync the returned watermark demands, and an ack
			// must never race that.
			p.failMirrorWindowLocked(s.repSeq, fmt.Errorf("kvserver: mirror replaced while awaiting replication"))
		}
		p.sender = send
		p.mirrorOn = true
		p.mirrored = s.repSeq
		p.sendQ = nil
		p.mu.Unlock()
		s.hasMirror.Store(true)
		s.startFlusherLocked()
		return s.repSeq
	}
	p.sender = nil
	p.sendQ = nil
	if p.mirrorOn {
		// Fail — do not ack — records that were still awaiting the old
		// backup's acknowledgment; records emitted from here on simply
		// no longer require one.
		p.failMirrorWindowLocked(s.repSeq, fmt.Errorf("kvserver: mirror detached while awaiting replication"))
		p.mirrorOn = false
		// Remaining waiters no longer need a mirror ack; some may be
		// durable already.
		p.completeWaitersLocked(nil, 0, 0)
	}
	p.mu.Unlock()
	s.hasMirror.Store(false)
	if s.wal == nil {
		s.stopFlusher()
	}
	return s.repSeq
}

// failMirrorWindowLocked permanently fails the unacknowledged window
// [mirrored, head): registered waiters in it get err now, and the
// window is recorded so a waiter registering later (its committer had
// released repMu but not yet called waitReplicated when the mirror
// went away) fails identically instead of slipping past a cleared
// mirrorOn. Caller holds pipe.mu.
func (p *replPipe) failMirrorWindowLocked(head uint64, err error) {
	if head > p.mirrored {
		p.failRanges = append(p.failRanges, failRange{from: p.mirrored, to: head, err: err})
		if len(p.failRanges) > failRangesMax {
			p.failRanges = append(p.failRanges[:0], p.failRanges[len(p.failRanges)-failRangesMax:]...)
		}
	}
	keep := p.waiters[:0]
	for _, w := range p.waiters {
		if w.seq >= p.mirrored {
			w.ch <- err
			continue
		}
		keep = append(keep, w)
	}
	for i := len(keep); i < len(p.waiters); i++ {
		p.waiters[i] = pipeWaiter{}
	}
	p.waiters = keep
}

// AttachMirror installs fn as a per-record replication hook — the
// pre-batching interface, kept for tests and hand-wired pairs. It
// adapts fn into a batch sender that replays the batch record by
// record; semantics are otherwise identical to AttachMirrorBatch.
func (s *Store) AttachMirror(fn func(seq uint64, rec kv.ReplRecord) error) uint64 {
	if fn == nil {
		return s.AttachMirrorBatch(nil)
	}
	return s.AttachMirrorBatch(func(recs []kv.SyncRec) error {
		for i := range recs {
			if err := fn(recs[i].Seq, recs[i].Rec); err != nil {
				return err
			}
		}
		return nil
	})
}

// startFlusherLocked starts the flusher goroutine if it is not already
// running. Caller holds repMu (OpenStore and attach paths).
func (s *Store) startFlusherLocked() {
	p := &s.pipe
	p.mu.Lock()
	if p.stopCh == nil {
		p.stopCh = make(chan struct{})
		go s.flushLoop(p.stopCh)
	}
	p.mu.Unlock()
}

func (s *Store) stopFlusher() {
	p := &s.pipe
	p.mu.Lock()
	stop := p.stopCh
	p.stopCh = nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}

// flushLoop is the pipeline's sender: woken by emissions, it drains
// the queues in batches until empty, then sleeps. With a configured
// GroupCommitInterval it waits that long after the first wake to let a
// batch build; at the default (0) it flushes as soon as it is free —
// a lone writer pays no added latency, while concurrent writers
// naturally coalesce into whatever accumulated during the previous
// batch's round trip.
func (s *Store) flushLoop(stopCh chan struct{}) {
	for {
		select {
		case <-stopCh:
			return
		case <-s.pipe.wake:
		}
		if d := s.cfg.GroupCommitInterval; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-stopCh:
				t.Stop()
				return
			case <-t.C:
			}
		}
		for s.flushOnce() {
			select {
			case <-stopCh:
				return
			default:
			}
		}
	}
}

// flushOnce sends one mirror batch and performs one batched WAL append
// (in parallel — their order never mattered: the old path mirrored
// before logging), then advances the watermarks and completes waiters.
// It reports whether it did any work.
func (s *Store) flushOnce() bool {
	p := &s.pipe
	p.flushMu.Lock()
	defer p.flushMu.Unlock()
	p.mu.Lock()
	send, sendFrom, sendTo := p.takeSendBatchLocked(s.cfg.MirrorBatchMaxRecords)
	walRecs := p.walQ
	walTo := p.walQEnd
	p.walQ = nil
	sender := p.sender
	w := p.wal
	if len(walRecs) > 0 {
		p.walFlushing = true
	}
	p.mu.Unlock()
	if len(send) == 0 && len(walRecs) == 0 {
		return false
	}

	var mirrorErr, walErr error
	walSynced := false
	var wg sync.WaitGroup
	if len(walRecs) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			walSynced, walErr = walAppendBatch(w, walRecs)
		}()
	}
	if len(send) > 0 && sender != nil {
		mirrorErr = sender(send)
	}
	wg.Wait()

	p.mu.Lock()
	if len(walRecs) > 0 {
		p.walFlushing = false
		p.walDone.Broadcast()
		if walErr == nil {
			if walTo > p.synced {
				p.synced = walTo
			}
			if walSynced {
				s.stats.WALSyncs.Add(1)
			}
		} else {
			// Re-queue the failed batch AT THE FRONT: the records must
			// reach the file in stream order with no gap (the wal's
			// torn-tail repair assumes the retry starts exactly where
			// the clean prefix ends), so they go out again before
			// anything emitted since. Their waiters keep waiting — the
			// retry may well succeed (transient disk error) and ack
			// them; if the disk stays broken they time out as
			// uncertain. A delayed self-wake drives the retry even if
			// no new emission comes.
			s.stats.WALFailures.Add(1)
			p.walQ = append(walRecs, p.walQ...)
			time.AfterFunc(walRetryDelay, s.wakeFlusher)
		}
	}
	if len(send) > 0 {
		if mirrorErr == nil {
			if sendTo > p.mirrored {
				p.mirrored = sendTo
			}
			s.stats.MirrorBatches.Add(1)
			s.stats.MirrorBatchRecords.Add(uint64(len(send)))
		}
	}
	// A failed mirror batch fails exactly the waiters whose records
	// rode in it; later waiters are judged by their own batches (the
	// backup's contiguity checks make a silent gap impossible).
	if mirrorErr != nil {
		p.completeWaitersLocked(mirrorErr, sendFrom, sendTo)
	} else {
		p.completeWaitersLocked(nil, 0, 0)
	}
	p.mu.Unlock()
	return true
}

// walRetryDelay paces retries of a failed batched WAL append, so a
// persistently broken disk does not spin the flusher.
const walRetryDelay = 100 * time.Millisecond

// takeSendBatchLocked slices the next mirror batch off sendQ, bounded
// by maxRecs and mirrorBatchBytes (at least one record always goes —
// it crossed the wire once already, so it fits a frame). Caller holds
// pipe.mu.
func (p *replPipe) takeSendBatchLocked(maxRecs int) (batch []kv.SyncRec, from, to uint64) {
	if len(p.sendQ) == 0 || p.sender == nil {
		return nil, 0, 0
	}
	if maxRecs <= 0 || maxRecs > len(p.sendQ) {
		maxRecs = len(p.sendQ)
	}
	n, bytes := 0, 0
	for n < maxRecs {
		sz := recordSize(&p.sendQ[n].Rec)
		if n > 0 && bytes+sz > mirrorBatchBytes {
			break
		}
		bytes += sz
		n++
	}
	batch = p.sendQ[:n:n]
	p.sendQ = p.sendQ[n:]
	if len(p.sendQ) == 0 {
		p.sendQ = nil
	}
	return batch, batch[0].Seq, batch[n-1].Seq + 1
}

// walAppendBatch writes recs to the WAL in one batched append and
// reports whether the append ended in an fsync. The wal pointer is the
// caller's snapshot (pipe.wal under pipe.mu, or s.wal under repMu) —
// the flusher must not read s.wal directly, which is written under
// repMu.
func walAppendBatch(w *wal, recs []kv.ReplRecord) (synced bool, err error) {
	if w == nil {
		return false, nil
	}
	return w.appendBatch(recs)
}

// discardWALLocked waits out any in-flight batched append and drops
// the queued records without writing them — used when a snapshot
// install supersedes them (the snapshot covers their effects, and the
// log file is about to be replaced wholesale). Caller holds repMu.
func (s *Store) discardWALLocked() {
	if s.wal == nil {
		return
	}
	p := &s.pipe
	p.mu.Lock()
	for p.walFlushing {
		p.walDone.Wait()
	}
	p.walQ = nil
	p.mu.Unlock()
}

// drainWALLocked forces every queued WAL record into the file before a
// checkpoint rotation: a record left in the queue across the rotation
// would be appended AFTER a snapshot that already covers it and
// double-apply on replay. It waits out any in-flight batched append
// (bounded: one file write + fsync, never a network call), then writes
// the remainder itself. Caller holds repMu, so no new records can be
// emitted while it runs. It reports whether the file now holds every
// queued record — false means the records were re-queued for the
// flusher's retry and the caller MUST NOT rotate (the still-queued
// records are below the would-be snapshot's coverage; teed into its
// tail by a later flush they would double-apply on replay).
func (s *Store) drainWALLocked() bool {
	if s.wal == nil {
		return true
	}
	p := &s.pipe
	p.mu.Lock()
	for p.walFlushing {
		p.walDone.Wait()
	}
	recs := p.walQ
	to := p.walQEnd
	p.walQ = nil
	p.mu.Unlock()
	if len(recs) == 0 {
		return true
	}
	synced, err := walAppendBatch(s.wal, recs)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		s.stats.WALFailures.Add(1)
		p.walQ = append(recs, p.walQ...)
		time.AfterFunc(walRetryDelay, s.wakeFlusher)
		return false
	}
	if to > p.synced {
		p.synced = to
	}
	if synced {
		s.stats.WALSyncs.Add(1)
	}
	p.completeWaitersLocked(nil, 0, 0)
	return true
}
