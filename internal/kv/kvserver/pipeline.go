package kvserver

// Group-commit replication pipeline, generalized to quorum groups.
// Record EMISSION (under repMu: sequence assignment, epoch stamp,
// replication-log append, applying the record's effects) is decoupled
// from the DURABILITY WAIT: emission enqueues the record here, and the
// pipeline coalesces whatever accumulated into batched MirrorBatchReq
// RPCs (one round trip, one lease extension, one backup-side
// contiguous apply per batch) and one batched WAL append (one buffer,
// one file write, one fsync). Committers block on the DURABILITY
// WATERMARK before acknowledging the client.
//
// With one backup the watermark is "the backup acked ∧ fsynced" —
// the original mirror-pair rule. With N backups each member has its
// own send queue and its own sender goroutine (a slow or dead member
// must not stall the others' batches), and the watermark generalizes
// to the QUORUM rule: a record is replication-durable once at least
// need = (members+1)/2 members have acknowledged it — together with
// the primary's own copy, a majority of the group of members+1, so any
// majority that survives a failure intersects the ack set and the
// most-caught-up survivor holds every acknowledged record. For a pair
// (one member) need is 1 and nothing changes.
//
// Failure semantics are watermark semantics. A batch that fails marks
// its member BROKEN: the member's queue is dropped and no further
// batches go to it (whether it applied the batch or not, its next
// contiguity check on rejoin is loud — it re-enters via resync, never
// silently). Waiters are then judged by the surviving quorum: with
// enough live members they simply stop counting on the broken one;
// when live members fall below need the quorum is LOST and every
// waiter at or above the watermark fails with the member's error
// (uncertain — their records are in the primary's local stream, their
// effects visible, surviving a failover only if enough members applied
// them after all). Waiters never succeed on a record too few members
// applied: the only ack path is a quorum of per-member batch
// acknowledgments covering the record's sequence number (or an
// explicit operator detach, which removes the replication requirement
// itself and fails — not acks — the waiters already in flight).
//
// One deliberate optimism, inherited from the pair design: a member
// attached mid-life starts its ack accounting at the attach watermark,
// and the orchestrator owes the stream a resync of the history below
// it. The quorum count treats that member as holding the history once
// its resync was MANDATED, not once it completed — exactly the
// contract AttachMirrorBatch's returned watermark always expressed.
// Orchestrators must complete the resync before treating the member
// as promotable.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"yesquel/internal/kv"
)

// mirrorBatchBytes caps one mirror batch's estimated payload,
// comfortably under the wire frame limit (mirroring syncBatchBytes).
const mirrorBatchBytes = 4 << 20

// replWaitTimeout bounds a durability wait. The worst legitimate case
// is a record emitted just after a batch departed toward a slow (but
// within-timeout) member: it waits out that in-flight round trip, a
// coalescing interval, and its own batch's round trip — so the bound
// must exceed two mirror timeouts plus the maximum interval, or a
// healthy-but-slow member would fail every commit spuriously. A
// waiter whose record is never covered by a quorum of acks fails
// loudly at this bound instead of wedging the client forever.
const replWaitTimeout = 2*mirrorTimeout + maxGroupCommitInterval + 2*time.Second

// soloMirrorID names the member installed by the single-backup
// compatibility interfaces (AttachMirrorBatch / AttachMirror), which
// have no member identity of their own.
const soloMirrorID = "mirror"

// pipeWaiter is one durability wait: ch receives nil once seq is
// durable, or the error that made it impossible.
type pipeWaiter struct {
	seq uint64
	ch  chan error
}

// mirrorMember is one attached replication member: its own send queue
// (drained by its own goroutine, so a dead member's timeout never
// stalls a healthy one's batches), its ack watermark, and its failure
// state. All fields except id/send/stopCh/wake are guarded by pipe.mu;
// send runs outside the lock.
type mirrorMember struct {
	id   string
	send func([]kv.SyncRec) error
	// queue holds emitted records awaiting this member's next batch.
	queue []kv.SyncRec
	// acked: this member has acknowledged every record with seq <
	// acked. Starts at the attach watermark (the history below it is
	// the mandated resync's responsibility).
	acked uint64
	// broken: a batch to this member failed; its queue was dropped and
	// its sender goroutine exited. It rejoins only by re-attach (which
	// mandates a resync); its past acks still count — the records ARE
	// on it.
	broken bool
	err    error

	stopCh chan struct{}
	wake   chan struct{}
}

// replPipe is the per-store pipeline state. Lock order: repMu before
// pipe.mu before wal.mu; pipe.mu is never held across network or disk
// I/O except by the checkpoint drain, which holds repMu anyway.
type replPipe struct {
	mu sync.Mutex
	// walDone signals walFlushing transitions (checkpoint drains wait
	// for the in-flight WAL write so rotation cannot strand records).
	walDone *sync.Cond

	// members are the attached replication members, in attach order.
	members []*mirrorMember
	// need is how many member acks complete a majority of the group
	// (members plus the primary itself): (len(members)+1)/2.
	need int

	// walQ holds records awaiting the batched write-ahead-log append.
	walQ []kv.ReplRecord
	// walQEnd is the sequence number after walQ's last record.
	walQEnd uint64

	// Watermarks: a quorum of member acks covers seq < mirrored
	// (monotone — membership changes never move it backwards), the WAL
	// covers seq < synced (fsynced when LogSync). durableLocked
	// combines them.
	mirrored uint64
	synced   uint64

	// mirrorOn: at least one member is attached, waiters require the
	// quorum watermark. needWAL: the store has a write-ahead log,
	// waiters require the synced watermark — which advances only once a
	// batch is WRITTEN to the file (and fsynced, when LogSync is set).
	mirrorOn bool
	needWAL  bool

	// quorumErr is set while fewer than need members are live: no
	// record at or above quorumFrom can ever gather a quorum, so its
	// waiters (present and future) fail immediately with this error
	// instead of timing out. Cleared when an attach or detach restores
	// live >= need.
	quorumErr  error
	quorumFrom uint64

	waiters []pipeWaiter

	// failRanges records sequence windows whose replication can never
	// complete — records emitted under a mirror that was detached or
	// replaced before a quorum acknowledged them. A waiter for such a
	// record must FAIL (uncertain) even if it registers after the
	// detach already ran: the detach clears mirrorOn, so without this
	// record the late waiter would see "no mirror required" and ack a
	// record too few members applied. Bounded: one entry per
	// detach/replace event, oldest dropped past failRangesMax (by then
	// every possible waiter has long timed out).
	failRanges []failRange

	// wal mirrors s.wal for the flusher: s.wal is written under repMu
	// (OpenStore, snapshot-install failure), which the flusher never
	// holds, so it reads this copy under pipe.mu instead.
	wal *wal

	// walFlushing marks an in-flight batched WAL write (the flusher
	// holds it across appendBatch only).
	walFlushing bool

	// flushMu serializes whole WAL flush passes (batch grab + I/O +
	// watermark update): a stop/start race can briefly leave an old
	// flusher goroutine finishing its drain while the new one starts.
	flushMu sync.Mutex

	// stopCh is non-nil while the WAL flusher goroutine runs.
	stopCh chan struct{}
	wake   chan struct{}

	// Follower-read frontier bookkeeping. head is the sequence number
	// after the last record handed to the pipeline — the pipe's view of
	// the stream head, on primaries and backups alike. marks are the
	// pending frontier advances: once the durable prefix of the stream
	// reaches mark.head, the frontier may rise to mark.ts (marks are
	// strictly increasing in both fields; maxTS is the prefix-max commit
	// timestamp that decides when a record pushes one). remoteW is the
	// highest durability watermark the primary has piggybacked on mirror
	// batches and lease renewals; follower marks that this store's OWN
	// mirrored/synced positions do not prove quorum durability (a backup
	// or a restarted replica holds records a majority may never have
	// acked) — only remoteW does. All under pipe.mu.
	head     uint64
	maxTS    kv.Timestamp
	marks    []tsMark
	remoteW  uint64
	follower bool

	// frontier is the published durability frontier: the highest commit
	// timestamp t such that every committed version at or below t is
	// applied here AND quorum-durable, so a snapshot read at ts <= t can
	// be served by this replica and can never observe a write a failover
	// erases. Written only under pipe.mu (monotone); read lock-free by
	// the read path.
	frontier atomic.Uint64

	// frontierCh, when non-nil, is closed at the next frontier advance
	// and replaced by nil; frontierChanged lazily recreates it. Lets a
	// read that arrived moments ahead of the watermark piggyback park
	// until the frontier catches up instead of sleep-polling.
	frontierCh chan struct{}
}

// tsMark is one pending frontier advance: once the durable prefix of
// the stream reaches head, the frontier may rise to ts.
type tsMark struct {
	head uint64
	ts   kv.Timestamp
}

// marksMax bounds the pending-marks slice. Past it, adjacent marks
// merge pairwise keeping the later of each pair: the frontier then
// advances in coarser steps — later than it could, never earlier.
const marksMax = 1024

func (s *Store) initPipe() {
	s.pipe.walDone = sync.NewCond(&s.pipe.mu)
	s.pipe.wake = make(chan struct{}, 1)
}

// failRange is one permanently unackable window of the stream (see
// replPipe.failRanges).
type failRange struct {
	from, to uint64
	err      error
}

const failRangesMax = 32

// failureFor returns the permanent failure covering seq, if any.
// Caller holds pipe.mu.
func (p *replPipe) failureFor(seq uint64) error {
	for i := range p.failRanges {
		if seq >= p.failRanges[i].from && seq < p.failRanges[i].to {
			return p.failRanges[i].err
		}
	}
	if p.quorumErr != nil && seq >= p.quorumFrom {
		return p.quorumErr
	}
	return nil
}

// durableLocked reports whether the record at seq satisfies every
// durability requirement currently in force. Caller holds pipe.mu.
func (p *replPipe) durableLocked(seq uint64) bool {
	if p.mirrorOn && seq >= p.mirrored {
		return false
	}
	if p.needWAL && seq >= p.synced {
		return false
	}
	return true
}

// recomputeQuorumLocked refreshes need, advances the quorum watermark
// to the need-th largest member ack (never backwards), and maintains
// the quorum-lost state: with fewer live (non-broken) members than
// need, no new record can ever gather a quorum, so waiters at or above
// the watermark must fail now rather than time out. Broken members'
// PAST acks still count — the records are on them. Caller holds
// pipe.mu.
func (p *replPipe) recomputeQuorumLocked() {
	defer p.advanceFrontierLocked()
	if len(p.members) == 0 {
		p.need = 0
		p.quorumErr = nil
		return
	}
	p.need = (len(p.members) + 1) / 2
	acks := make([]uint64, len(p.members))
	live := 0
	var memberErr error
	for i, m := range p.members {
		acks[i] = m.acked
		if m.broken {
			memberErr = m.err
		} else {
			live++
		}
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] > acks[j] })
	if w := acks[p.need-1]; w > p.mirrored {
		p.mirrored = w
	}
	if live < p.need {
		if p.quorumErr == nil {
			if memberErr == nil {
				memberErr = fmt.Errorf("kvserver: replication member unavailable")
			}
			p.quorumErr = fmt.Errorf("kvserver: replication quorum lost (%d of %d members live, need %d): %w", live, len(p.members), p.need, memberErr)
			p.quorumFrom = p.mirrored
		}
	} else {
		p.quorumErr = nil
	}
}

// noteRecordLocked tracks one stream record for the frontier: it moves
// the pipe's head past seq and, when the record carries a commit whose
// timestamp raises the prefix-max, pushes a frontier mark for it.
// Caller holds pipe.mu.
func (p *replPipe) noteRecordLocked(seq uint64, rec *kv.ReplRecord) {
	if seq+1 > p.head {
		p.head = seq + 1
	}
	committing := rec.Kind == kv.RecCommit || (rec.Kind == kv.RecDecide && rec.Commit)
	if committing && rec.TS > p.maxTS {
		p.maxTS = rec.TS
		p.marks = append(p.marks, tsMark{head: seq + 1, ts: rec.TS})
		if len(p.marks) > marksMax {
			kept := p.marks[:0]
			for i := 1; i < len(p.marks); i += 2 {
				kept = append(kept, p.marks[i])
			}
			if len(p.marks)%2 == 1 {
				kept = append(kept, p.marks[len(p.marks)-1])
			}
			p.marks = kept
		}
	}
	p.advanceFrontierLocked()
}

// durableSeqLocked is the durable prefix of the stream as this replica
// may claim it: on a follower, what the primary has vouched for (capped
// at what has actually been applied here); otherwise the local quorum
// and WAL watermarks, capped at the head. Caller holds pipe.mu.
func (p *replPipe) durableSeqLocked() uint64 {
	if p.follower {
		d := p.remoteW
		if p.head < d {
			d = p.head
		}
		return d
	}
	d := p.head
	if p.mirrorOn && p.mirrored < d {
		d = p.mirrored
	}
	if p.needWAL && p.synced < d {
		d = p.synced
	}
	return d
}

// advanceFrontierLocked pops every mark the durable prefix has reached
// and publishes the last one's timestamp as the new frontier (monotone:
// a rewind of the inputs never lowers what was already published).
// Caller holds pipe.mu.
func (p *replPipe) advanceFrontierLocked() {
	d := p.durableSeqLocked()
	n := 0
	for n < len(p.marks) && p.marks[n].head <= d {
		n++
	}
	if n == 0 {
		return
	}
	ts := p.marks[n-1].ts
	p.marks = append(p.marks[:0], p.marks[n:]...)
	if uint64(ts) > p.frontier.Load() {
		p.frontier.Store(uint64(ts))
		if p.frontierCh != nil {
			close(p.frontierCh)
			p.frontierCh = nil
		}
	}
}

// frontierChanged returns a channel that is closed at the next frontier
// advance. Callers must obtain the channel BEFORE re-checking
// DurableFrontier, or an advance between check and park is lost.
func (p *replPipe) frontierChanged() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.frontierCh == nil {
		p.frontierCh = make(chan struct{})
	}
	return p.frontierCh
}

// InstallRemoteWatermark records the primary's durability watermark (as
// piggybacked on mirror batches and lease renewals) and marks this
// store a FOLLOWER: from here on its own mirrored/synced positions no
// longer prove quorum durability — only the primary's word does — and
// the follower-read frontier advances exactly as far as the primary
// vouches.
func (s *Store) InstallRemoteWatermark(w uint64) {
	p := &s.pipe
	p.mu.Lock()
	p.follower = true
	if w > p.remoteW {
		p.remoteW = w
	}
	p.advanceFrontierLocked()
	p.mu.Unlock()
}

// DurableWatermark returns the durability watermark this store can
// vouch for: every record with seq below it is held by a majority of
// the group (and fsynced, when the WAL demands it). A primary
// piggybacks it on every mirror batch and lease renewal.
func (s *Store) DurableWatermark() uint64 {
	p := &s.pipe
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.durableSeqLocked()
}

// DurableFrontier returns the durability frontier: the highest commit
// timestamp at which a snapshot read served here is both complete and
// quorum-durable. Lock-free.
func (s *Store) DurableFrontier() kv.Timestamp {
	return kv.Timestamp(s.pipe.frontier.Load())
}

// setFollower flips the pipe's follower flag as the store's role
// changes. Becoming a follower resets the remote watermark: whatever a
// previous primary vouched for may not survive the regime change, so
// the frontier freezes until the current primary vouches afresh.
// Promotion clears the flag — the new primary's own quorum machinery
// governs durability from here on.
func (s *Store) setFollower(f bool) {
	p := &s.pipe
	p.mu.Lock()
	if p.follower != f {
		p.follower = f
		if f {
			p.remoteW = 0
		}
	}
	p.advanceFrontierLocked()
	p.mu.Unlock()
}

// resetFrontierLocked reinstalls the frontier bookkeeping after a
// snapshot install replaced (or rewound) the stream: the snapshot
// covers every record below seq, with commit timestamps at or below
// maxTS. The remote watermark is dropped — it described the previous
// stream — so on a follower the frontier waits for the current
// primary's next piggyback before advancing over the installed state.
// Caller holds repMu.
func (s *Store) resetFrontierLocked(seq uint64, maxTS kv.Timestamp) {
	p := &s.pipe
	p.mu.Lock()
	p.head = seq
	p.maxTS = maxTS
	p.marks = p.marks[:0]
	if maxTS > 0 {
		p.marks = append(p.marks, tsMark{head: seq, ts: maxTS})
	}
	p.remoteW = 0
	p.advanceFrontierLocked()
	p.mu.Unlock()
}

// enqueueLocked hands one emitted record to the pipeline. Caller holds
// repMu (emission order is queue order is stream order).
func (s *Store) enqueueLocked(seq uint64, rec kv.ReplRecord) {
	p := &s.pipe
	p.mu.Lock()
	p.noteRecordLocked(seq, &rec)
	sr := kv.SyncRec{Seq: seq, Rec: rec}
	for _, m := range p.members {
		if m.broken {
			continue
		}
		m.queue = append(m.queue, sr)
		select {
		case m.wake <- struct{}{}:
		default:
		}
	}
	walQueued := false
	if s.wal != nil {
		p.walQ = append(p.walQ, rec)
		p.walQEnd = seq + 1
		walQueued = true
	}
	p.mu.Unlock()
	if walQueued {
		s.wakeFlusher()
	}
}

func (s *Store) wakeFlusher() {
	select {
	case s.pipe.wake <- struct{}{}:
	default:
	}
}

// waitReplicated blocks until the record at seq is durable under the
// store's configured guarantees — acknowledged by a quorum of attached
// members, and fsynced when LogSync — or returns the error that failed
// it. Callers must NOT hold repMu: the wait happening outside the
// stream lock is the whole point of group commit.
func (s *Store) waitReplicated(seq uint64) error {
	p := &s.pipe
	p.mu.Lock()
	if err := p.failureFor(seq); err != nil {
		p.mu.Unlock()
		return err
	}
	if p.durableLocked(seq) {
		p.mu.Unlock()
		return nil
	}
	w := pipeWaiter{seq: seq, ch: make(chan error, 1)}
	p.waiters = append(p.waiters, w)
	p.mu.Unlock()
	t := time.NewTimer(replWaitTimeout)
	defer t.Stop()
	select {
	case err := <-w.ch:
		return err
	case <-t.C:
		p.mu.Lock()
		for i := range p.waiters {
			if p.waiters[i].ch == w.ch {
				p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
				break
			}
		}
		p.mu.Unlock()
		// The waiter may have been completed between the timeout and
		// the removal; prefer that result.
		select {
		case err := <-w.ch:
			return err
		default:
		}
		return fmt.Errorf("kvserver: timed out awaiting replication of seq %d", seq)
	}
}

// completeWaitersLocked answers every waiter that is now durable, and
// fails those covered by a permanent failure (a detach window or a
// lost quorum). Caller holds pipe.mu.
//
//yesqlint:allow repmublock -- each waiter channel is buffered (cap 1) and receives exactly one completion; the send cannot block
func (p *replPipe) completeWaitersLocked() {
	keep := p.waiters[:0]
	for _, w := range p.waiters {
		switch {
		case p.failureFor(w.seq) != nil:
			w.ch <- p.failureFor(w.seq)
		case p.durableLocked(w.seq):
			w.ch <- nil
		default:
			keep = append(keep, w)
		}
	}
	// Zero the tail so completed waiters' channels are collectable.
	for i := len(keep); i < len(p.waiters); i++ {
		p.waiters[i] = pipeWaiter{}
	}
	p.waiters = keep
}

// AttachMirrorMember adds (or replaces) the replication member id and
// returns the sequence number the next stream record will carry — the
// watermark the member must resync up to before it can be considered
// a complete replica (nothing below it needs this member's ack; the
// mandated resync is responsible for the history). The member's acks
// count toward the quorum watermark from here on; the required quorum
// (need) is recomputed from the new member count.
func (s *Store) AttachMirrorMember(id string, send func([]kv.SyncRec) error) uint64 {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	return s.attachMemberLocked(id, send)
}

// attachMemberLocked implements AttachMirrorMember. Caller holds repMu.
func (s *Store) attachMemberLocked(id string, send func([]kv.SyncRec) error) uint64 {
	p := &s.pipe
	p.mu.Lock()
	for i, m := range p.members {
		if m.id != id {
			continue
		}
		if !m.broken {
			// Replacing a live member: records still awaiting the OLD
			// incarnation's ack must fail (uncertain), not be silently
			// re-homed — the new incarnation only receives them later,
			// via the resync the returned watermark demands, and an ack
			// must never race that.
			p.failMirrorWindowLocked(s.repSeq, fmt.Errorf("kvserver: mirror member %s replaced while awaiting replication", id))
		}
		close(m.stopCh)
		p.members = append(p.members[:i], p.members[i+1:]...)
		break
	}
	m := &mirrorMember{
		id:     id,
		send:   send,
		acked:  s.repSeq,
		stopCh: make(chan struct{}),
		wake:   make(chan struct{}, 1),
	}
	p.members = append(p.members, m)
	p.mirrorOn = true
	p.recomputeQuorumLocked()
	p.completeWaitersLocked()
	p.mu.Unlock()
	s.hasMirror.Store(true)
	go s.memberLoop(m)
	return s.repSeq
}

// DetachMirrorMember removes the replication member id: its sender
// stops and its queued records are dropped. Detaching the LAST member
// removes the replication requirement itself — waiters still awaiting
// a quorum FAIL (a detach must never ack a record too few members
// applied), and records emitted from here on simply no longer require
// acks. Detaching one of several members re-judges waiters against the
// smaller group's quorum.
func (s *Store) DetachMirrorMember(id string) {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	p := &s.pipe
	p.mu.Lock()
	found := false
	for i, m := range p.members {
		if m.id != id {
			continue
		}
		close(m.stopCh)
		p.members = append(p.members[:i], p.members[i+1:]...)
		found = true
		break
	}
	if !found {
		p.mu.Unlock()
		return
	}
	if len(p.members) == 0 && p.mirrorOn {
		p.failMirrorWindowLocked(s.repSeq, fmt.Errorf("kvserver: mirror detached while awaiting replication"))
		p.mirrorOn = false
	}
	p.recomputeQuorumLocked()
	p.completeWaitersLocked()
	empty := len(p.members) == 0
	p.mu.Unlock()
	if empty {
		s.hasMirror.Store(false)
	}
}

// MirrorMembers returns the attached members' ids (diagnostics).
func (s *Store) MirrorMembers() []string {
	p := &s.pipe
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.members))
	for i, m := range p.members {
		out[i] = m.id
	}
	return out
}

// ReplicaStatus is one attached replication member's progress, for
// stats: how far its acks reach, and whether it is broken (a batch
// failed; it needs a re-attach and resync). Lag is Head - AckedSeq at
// snapshot time.
type ReplicaStatus struct {
	Member   string
	AckedSeq uint64
	Broken   bool
}

// ReplicationStatus reports the stream head, the quorum durability
// watermark, the required member-ack count, and each attached member's
// progress — what makes a permanently-behind minority member
// observable instead of silent.
func (s *Store) ReplicationStatus() (head, watermark uint64, need int, members []ReplicaStatus) {
	s.repMu.Lock()
	head = s.repSeq
	p := &s.pipe
	p.mu.Lock()
	watermark = p.mirrored
	need = p.need
	members = make([]ReplicaStatus, len(p.members))
	for i, m := range p.members {
		members[i] = ReplicaStatus{Member: m.id, AckedSeq: m.acked, Broken: m.broken}
	}
	p.mu.Unlock()
	s.repMu.Unlock()
	return head, watermark, need, members
}

// AttachMirrorBatch installs send as the sole replication member,
// detaching any members already attached — the single-backup
// interface, kept for hand-wired pairs and tests. Pass nil to detach
// every member. Semantics of the returned watermark and of detaching
// match AttachMirrorMember / DetachMirrorMember.
func (s *Store) AttachMirrorBatch(send func([]kv.SyncRec) error) uint64 {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	if send == nil {
		s.detachAllMembersLocked(fmt.Errorf("kvserver: mirror detached while awaiting replication"))
		return s.repSeq
	}
	s.detachAllMembersLocked(fmt.Errorf("kvserver: mirror replaced while awaiting replication"))
	return s.attachMemberLocked(soloMirrorID, send)
}

// detachAllMembersLocked stops and removes every member, failing —
// not acking — the waiters still awaiting a quorum. Caller holds
// repMu.
func (s *Store) detachAllMembersLocked(err error) {
	p := &s.pipe
	p.mu.Lock()
	for _, m := range p.members {
		close(m.stopCh)
	}
	p.members = nil
	if p.mirrorOn {
		p.failMirrorWindowLocked(s.repSeq, err)
		p.mirrorOn = false
	}
	p.recomputeQuorumLocked()
	p.completeWaitersLocked()
	p.mu.Unlock()
	s.hasMirror.Store(false)
}

// failMirrorWindowLocked permanently fails the unacknowledged window
// [mirrored, head): registered waiters in it get err now, and the
// window is recorded so a waiter registering later (its committer had
// released repMu but not yet called waitReplicated when the mirror
// went away) fails identically instead of slipping past a cleared
// mirrorOn. Caller holds pipe.mu.
//
//yesqlint:allow repmublock -- each waiter channel is buffered (cap 1) and receives exactly one completion; the send cannot block
func (p *replPipe) failMirrorWindowLocked(head uint64, err error) {
	if head > p.mirrored {
		p.failRanges = append(p.failRanges, failRange{from: p.mirrored, to: head, err: err})
		if len(p.failRanges) > failRangesMax {
			p.failRanges = append(p.failRanges[:0], p.failRanges[len(p.failRanges)-failRangesMax:]...)
		}
	}
	keep := p.waiters[:0]
	for _, w := range p.waiters {
		if w.seq >= p.mirrored {
			w.ch <- err
			continue
		}
		keep = append(keep, w)
	}
	for i := len(keep); i < len(p.waiters); i++ {
		p.waiters[i] = pipeWaiter{}
	}
	p.waiters = keep
}

// AttachMirror installs fn as a per-record replication hook — the
// pre-batching interface, kept for tests and hand-wired pairs. It
// adapts fn into a batch sender that replays the batch record by
// record; semantics are otherwise identical to AttachMirrorBatch.
func (s *Store) AttachMirror(fn func(seq uint64, rec kv.ReplRecord) error) uint64 {
	if fn == nil {
		return s.AttachMirrorBatch(nil)
	}
	return s.AttachMirrorBatch(func(recs []kv.SyncRec) error {
		for i := range recs {
			if err := fn(recs[i].Seq, recs[i].Rec); err != nil {
				return err
			}
		}
		return nil
	})
}

// memberLoop is one member's sender goroutine: woken by emissions, it
// drains the member's queue in batches until empty, then sleeps. With
// a configured GroupCommitInterval it waits that long after the first
// wake to let a batch build; at the default (0) it flushes as soon as
// it is free — a lone writer pays no added latency, while concurrent
// writers naturally coalesce into whatever accumulated during the
// previous batch's round trip. A failed batch breaks the member and
// ends the loop: batches to one member must stay in sequence order,
// and after a failure only a resync (via re-attach) can restore the
// contiguity contract.
func (s *Store) memberLoop(m *mirrorMember) {
	p := &s.pipe
	// One reusable batching timer for the loop's lifetime; allocated on
	// the first wake that needs it, Reset on every later one.
	var batchTimer *time.Timer
	defer func() {
		if batchTimer != nil {
			batchTimer.Stop()
		}
	}()
	for {
		select {
		case <-m.stopCh:
			return
		case <-m.wake:
		}
		if d := s.cfg.GroupCommitInterval; d > 0 {
			if batchTimer == nil {
				batchTimer = time.NewTimer(d)
			} else {
				batchTimer.Reset(d)
			}
			select {
			case <-m.stopCh:
				return
			case <-batchTimer.C:
			}
		}
		for {
			if d := s.cfg.MirrorSendDelay; d > 0 {
				// Emulated link/storage latency: each batch occupies the
				// member's one send slot for the whole delay, bounding
				// the pipeline at MirrorBatchMaxRecords per
				// MirrorSendDelay. The delay elapses BEFORE the batch is
				// sliced so records emitted while it runs still ride
				// this batch — like a real link, whose transmission time
				// is exactly when the next frame accumulates.
				if batchTimer == nil {
					batchTimer = time.NewTimer(d)
				} else {
					batchTimer.Reset(d)
				}
				select {
				case <-m.stopCh:
					return
				case <-batchTimer.C:
				}
			}
			p.mu.Lock()
			batch, _, to := m.takeBatchLocked(s.cfg.MirrorBatchMaxRecords)
			p.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			err := m.send(batch)
			p.mu.Lock()
			if err != nil {
				m.broken = true
				m.err = err
				m.queue = nil
				p.recomputeQuorumLocked()
				p.completeWaitersLocked()
				p.mu.Unlock()
				return
			}
			if to > m.acked {
				m.acked = to
			}
			s.stats.MirrorBatches.Add(1)
			s.stats.MirrorBatchRecords.Add(uint64(len(batch)))
			p.recomputeQuorumLocked()
			p.completeWaitersLocked()
			p.mu.Unlock()
			select {
			case <-m.stopCh:
				return
			default:
			}
		}
	}
}

// takeBatchLocked slices the next batch off the member's queue,
// bounded by maxRecs and mirrorBatchBytes (at least one record always
// goes — it crossed the wire once already, so it fits a frame).
// Caller holds pipe.mu.
func (m *mirrorMember) takeBatchLocked(maxRecs int) (batch []kv.SyncRec, from, to uint64) {
	if len(m.queue) == 0 {
		return nil, 0, 0
	}
	if maxRecs <= 0 || maxRecs > len(m.queue) {
		maxRecs = len(m.queue)
	}
	n, bytes := 0, 0
	for n < maxRecs {
		sz := recordSize(&m.queue[n].Rec)
		if n > 0 && bytes+sz > mirrorBatchBytes {
			break
		}
		bytes += sz
		n++
	}
	batch = m.queue[:n:n]
	m.queue = m.queue[n:]
	if len(m.queue) == 0 {
		m.queue = nil
	}
	return batch, batch[0].Seq, batch[n-1].Seq + 1
}

// startFlusherLocked starts the WAL flusher goroutine if it is not
// already running. Caller holds repMu (OpenStore and attach paths).
func (s *Store) startFlusherLocked() {
	p := &s.pipe
	p.mu.Lock()
	if p.stopCh == nil {
		p.stopCh = make(chan struct{})
		go s.flushLoop(p.stopCh)
	}
	p.mu.Unlock()
}

func (s *Store) stopFlusher() {
	p := &s.pipe
	p.mu.Lock()
	stop := p.stopCh
	p.stopCh = nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}

// flushLoop is the write-ahead log's batcher: woken by emissions, it
// drains the WAL queue in batched appends until empty, then sleeps.
// With a configured GroupCommitInterval it waits that long after the
// first wake to let a batch build. (Mirror batches have per-member
// sender goroutines; see memberLoop.)
func (s *Store) flushLoop(stopCh chan struct{}) {
	// One reusable batching timer for the loop's lifetime; allocated on
	// the first wake that needs it, Reset on every later one.
	var batchTimer *time.Timer
	defer func() {
		if batchTimer != nil {
			batchTimer.Stop()
		}
	}()
	for {
		select {
		case <-stopCh:
			return
		case <-s.pipe.wake:
		}
		if d := s.cfg.GroupCommitInterval; d > 0 {
			if batchTimer == nil {
				batchTimer = time.NewTimer(d)
			} else {
				batchTimer.Reset(d)
			}
			select {
			case <-stopCh:
				return
			case <-batchTimer.C:
			}
		}
		for s.flushOnce() {
			select {
			case <-stopCh:
				return
			default:
			}
		}
	}
}

// flushOnce performs one batched WAL append, then advances the synced
// watermark and completes waiters. It reports whether it did any work.
func (s *Store) flushOnce() bool {
	p := &s.pipe
	p.flushMu.Lock()
	defer p.flushMu.Unlock()
	p.mu.Lock()
	walRecs := p.walQ
	walTo := p.walQEnd
	p.walQ = nil
	w := p.wal
	if len(walRecs) > 0 {
		p.walFlushing = true
	}
	p.mu.Unlock()
	if len(walRecs) == 0 {
		return false
	}

	walSynced, walErr := walAppendBatch(w, walRecs)

	p.mu.Lock()
	p.walFlushing = false
	p.walDone.Broadcast()
	if walErr == nil {
		if walTo > p.synced {
			p.synced = walTo
			p.advanceFrontierLocked()
		}
		if walSynced {
			s.stats.WALSyncs.Add(1)
		}
	} else {
		// Re-queue the failed batch AT THE FRONT: the records must
		// reach the file in stream order with no gap (the wal's
		// torn-tail repair assumes the retry starts exactly where
		// the clean prefix ends), so they go out again before
		// anything emitted since. Their waiters keep waiting — the
		// retry may well succeed (transient disk error) and ack
		// them; if the disk stays broken they time out as
		// uncertain. A delayed self-wake drives the retry even if
		// no new emission comes.
		s.stats.WALFailures.Add(1)
		p.walQ = append(walRecs, p.walQ...)
		time.AfterFunc(walRetryDelay, s.wakeFlusher)
	}
	p.completeWaitersLocked()
	p.mu.Unlock()
	return true
}

// walRetryDelay paces retries of a failed batched WAL append, so a
// persistently broken disk does not spin the flusher.
const walRetryDelay = 100 * time.Millisecond

// walAppendBatch writes recs to the WAL in one batched append and
// reports whether the append ended in an fsync. The wal pointer is the
// caller's snapshot (pipe.wal under pipe.mu, or s.wal under repMu) —
// the flusher must not read s.wal directly, which is written under
// repMu.
func walAppendBatch(w *wal, recs []kv.ReplRecord) (synced bool, err error) {
	if w == nil {
		return false, nil
	}
	return w.appendBatch(recs)
}

// discardWALLocked waits out any in-flight batched append and drops
// the queued records without writing them — used when a snapshot
// install supersedes them (the snapshot covers their effects, and the
// log file is about to be replaced wholesale). Caller holds repMu.
//
//yesqlint:allow repmublock -- deliberate bounded wait under repMu: at most one in-flight file write + fsync, never a network call
func (s *Store) discardWALLocked() {
	if s.wal == nil {
		return
	}
	p := &s.pipe
	p.mu.Lock()
	for p.walFlushing {
		p.walDone.Wait()
	}
	p.walQ = nil
	p.mu.Unlock()
}

// drainWALLocked forces every queued WAL record into the file before a
// checkpoint rotation: a record left in the queue across the rotation
// would be appended AFTER a snapshot that already covers it and
// double-apply on replay. It waits out any in-flight batched append
// (bounded: one file write + fsync, never a network call), then writes
// the remainder itself. Caller holds repMu, so no new records can be
// emitted while it runs. It reports whether the file now holds every
// queued record — false means the records were re-queued for the
// flusher's retry and the caller MUST NOT rotate (the still-queued
// records are below the would-be snapshot's coverage; teed into its
// tail by a later flush they would double-apply on replay).
//
//yesqlint:allow repmublock -- deliberate bounded wait under repMu: one file write + fsync, never a network call (the PR 5 checkpoint contract)
func (s *Store) drainWALLocked() bool {
	if s.wal == nil {
		return true
	}
	p := &s.pipe
	p.mu.Lock()
	for p.walFlushing {
		p.walDone.Wait()
	}
	recs := p.walQ
	to := p.walQEnd
	p.walQ = nil
	p.mu.Unlock()
	if len(recs) == 0 {
		return true
	}
	synced, err := walAppendBatch(s.wal, recs)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		s.stats.WALFailures.Add(1)
		p.walQ = append(recs, p.walQ...)
		time.AfterFunc(walRetryDelay, s.wakeFlusher)
		return false
	}
	if to > p.synced {
		p.synced = to
		p.advanceFrontierLocked()
	}
	if synced {
		s.stats.WALSyncs.Add(1)
	}
	p.completeWaitersLocked()
	return true
}
