package kvserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"yesquel/internal/kv"
	"yesquel/internal/rpc"
)

// Server exposes a Store over the RPC stack. One Server corresponds to
// one storage-server process in Figure 1 of the paper.
type Server struct {
	store      *Store
	rpc        *rpc.Server
	ln         net.Listener
	sweeper    *time.Ticker
	stopCh     chan struct{}
	mirrorConn *rpc.Client
}

// NewServer wraps store in an RPC service. Call Serve (or ListenAndServe)
// to start it.
func NewServer(store *Store) *Server {
	s := &Server{store: store, rpc: rpc.NewServer(), stopCh: make(chan struct{})}
	// Background hygiene: tombstone sweeping at half the retention
	// period, plus orphaned-prepare and decided-table eviction (their
	// TTLs are far coarser than the tick, so sharing the ticker only
	// costs a cheap scan).
	s.sweeper = time.NewTicker(time.Duration(store.cfg.RetentionMillis/2+1) * time.Millisecond)
	go func() {
		for {
			select {
			case <-s.stopCh:
				return
			case <-s.sweeper.C:
				s.store.SweepTombstones()
				s.store.SweepOrphans()
				s.store.SweepDecided()
			}
		}
	}()
	s.rpc.Register(kv.MethodRead, s.handleRead)
	s.rpc.Register(kv.MethodReadPart, s.handleReadPart)
	s.rpc.Register(kv.MethodPrepare, s.handlePrepare)
	s.rpc.Register(kv.MethodCommit, s.handleCommit)
	s.rpc.Register(kv.MethodAbort, s.handleAbort)
	s.rpc.Register(kv.MethodFastCommit, s.handleFastCommit)
	s.rpc.Register(kv.MethodPing, s.handlePing)
	s.rpc.Register(kv.MethodMirror, s.handleMirror)
	s.rpc.Register(kv.MethodSync, s.handleSync)
	return s
}

// AttachBackup makes this server a primary that synchronously
// replicates every stream record — commits, two-phase prepares, and
// phase-two decisions — to the backup at addr before acknowledging it;
// on primary failure, clients fail over to the backup and see every
// acknowledged write, and the backup holds every prepared in-flight
// transaction, so a coordinator can still drive (or the orphan sweep
// eventually aborts) cross-server transactions caught between the vote
// and phase two. It returns the replication-stream watermark: the
// backup holds every acknowledged record once it has synced up to that
// sequence number (a fresh pair starts at 0 and needs no sync; a
// backup attached mid-life calls SyncFrom with it).
func (s *Server) AttachBackup(addr string) (uint64, error) {
	conn, err := rpc.Dial(addr)
	if err != nil {
		return 0, fmt.Errorf("kvserver: dialing backup: %w", err)
	}
	if s.mirrorConn != nil {
		s.mirrorConn.Close()
	}
	s.mirrorConn = conn
	watermark := s.store.AttachMirror(func(seq uint64, rec kv.ReplRecord) error {
		// The mirror call runs while the record holds the replication
		// stream; a frozen backup (hung process, partition without a
		// reset) must fail the operation after a bounded wait, not
		// wedge the primary's whole write path forever.
		ctx, cancel := context.WithTimeout(context.Background(), mirrorTimeout)
		defer cancel()
		req := kv.MirrorReq{Seq: seq, Rec: rec}
		respB, err := conn.Call(ctx, kv.MethodMirror, req.Encode())
		if err != nil {
			return err
		}
		if ack, err := kv.DecodeAck(respB); err == nil {
			s.store.Clock().Observe(ack.Clock)
		}
		return nil
	})
	return watermark, nil
}

// mirrorTimeout bounds one synchronous mirror round trip.
const mirrorTimeout = 5 * time.Second

// SetMirror attaches (or, with "", detaches) a backup. It is the
// flag-friendly wrapper around AttachBackup for pairs formed before
// any writes, where the watermark is necessarily zero.
func (s *Server) SetMirror(addr string) error {
	if addr == "" {
		s.store.AttachMirror(nil)
		if s.mirrorConn != nil {
			s.mirrorConn.Close()
			s.mirrorConn = nil
		}
		return nil
	}
	_, err := s.AttachBackup(addr)
	return err
}

func (s *Server) handleMirror(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeMirrorReq(p)
	if err != nil {
		return nil, err
	}
	if err := s.store.ApplyMirrored(req.Seq, req.Rec); err != nil {
		return nil, err
	}
	return (&kv.Ack{Clock: s.store.Clock().Now()}).Encode(), nil
}

func (s *Server) handleSync(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeSyncReq(p)
	if err != nil {
		return nil, err
	}
	recs, head, err := s.store.SyncRecords(req.From, int(req.Max))
	if err != nil {
		return nil, err
	}
	resp := &kv.SyncResp{Records: recs, Head: head, Clock: s.store.Clock().Now()}
	return resp.Encode(), nil
}

// SyncFrom streams missed commits from the primary at addr into this
// server's store until the local stream head reaches the given
// watermark (0 = the primary's head at call time), then leaves resync
// mode. Call StartResync on the store *before* the primary attaches
// this server as its mirror, so live mirrored commits arriving during
// the catch-up are buffered and applied in sequence once the history
// below them lands.
func (s *Server) SyncFrom(addr string, until uint64) error {
	conn, err := rpc.Dial(addr)
	if err != nil {
		return fmt.Errorf("kvserver: dialing sync source: %w", err)
	}
	defer conn.Close()
	ctx := context.Background()
	for {
		from := s.store.ReplSeq()
		req := kv.SyncReq{From: from, Max: 512}
		respB, err := conn.Call(ctx, kv.MethodSync, req.Encode())
		if err != nil {
			return fmt.Errorf("kvserver: sync from %s: %w", addr, err)
		}
		resp, err := kv.DecodeSyncResp(respB)
		if err != nil {
			return err
		}
		s.store.Clock().Observe(resp.Clock)
		for i := range resp.Records {
			rec := &resp.Records[i]
			if err := s.store.ApplyReplicatedSeq(rec.Seq, rec.Rec); err != nil {
				return err
			}
		}
		if until == 0 {
			until = resp.Head
		}
		now := s.store.ReplSeq()
		if now >= until {
			break
		}
		if len(resp.Records) == 0 {
			return fmt.Errorf("kvserver: sync stalled at seq %d (source head %d, want %d)", now, resp.Head, until)
		}
	}
	return s.store.FinishResync()
}

// Store returns the underlying storage engine.
func (s *Server) Store() *Store { return s.store }

// ListenAndServe binds addr and serves until Close. It returns the
// bound address on a channel-free API: call Addr after it returns nil
// from Listen. For tests, use Listen + Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return s.rpc.Serve(ln)
}

// Listen binds addr without serving. Serve must be called next.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Serve runs the accept loop on the listener from Listen. It blocks.
func (s *Server) Serve() error { return s.rpc.Serve(s.ln) }

// Addr returns the bound address (valid after Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts down the RPC server and all connections.
func (s *Server) Close() error {
	select {
	case <-s.stopCh:
	default:
		close(s.stopCh)
		s.sweeper.Stop()
	}
	if s.mirrorConn != nil {
		s.mirrorConn.Close()
		s.mirrorConn = nil
	}
	return s.rpc.Close()
}

func (s *Server) handleRead(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeReadReq(p)
	if err != nil {
		return nil, err
	}
	resp := &kv.ReadResp{}
	val, ver, err := s.store.Read(req.OID, req.Snap)
	switch {
	case err == nil:
		resp.Found = true
		resp.Version = ver
		resp.Value = val
	case errors.Is(err, kv.ErrNotFound):
		// Found=false response, not an RPC error: absence is a normal
		// outcome for reads.
	default:
		return nil, err
	}
	resp.Clock = s.store.Clock().Now()
	return resp.Encode(), nil
}

func (s *Server) handleReadPart(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeReadPartReq(p)
	if err != nil {
		return nil, err
	}
	resp := &kv.ReadPartResp{}
	val, total, ver, err := s.store.ReadPart(req.OID, req.Snap, req.From, req.To, req.Max)
	switch {
	case err == nil:
		resp.Found = true
		resp.Version = ver
		resp.Value = val
		resp.Total = uint32(total)
	case errors.Is(err, kv.ErrNotFound):
	default:
		return nil, err
	}
	resp.Clock = s.store.Clock().Now()
	return resp.Encode(), nil
}

func (s *Server) handlePrepare(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodePrepareReq(p)
	if err != nil {
		return nil, err
	}
	resp := &kv.PrepareResp{}
	proposed, err := s.store.Prepare(req.TxID, req.Start, req.Ops)
	if err == nil {
		resp.OK = true
		resp.Proposed = proposed
	} else if !errors.Is(err, kv.ErrConflict) && !errors.Is(err, kv.ErrBadRequest) {
		return nil, err
	}
	resp.Clock = s.store.Clock().Now()
	return resp.Encode(), nil
}

func (s *Server) handleCommit(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeCommitReq(p)
	if err != nil {
		return nil, err
	}
	if err := s.store.Commit(req.TxID, req.CommitTS); err != nil {
		return nil, err
	}
	return (&kv.Ack{Clock: s.store.Clock().Now()}).Encode(), nil
}

func (s *Server) handleAbort(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeAbortReq(p)
	if err != nil {
		return nil, err
	}
	s.store.Abort(req.TxID)
	return (&kv.Ack{Clock: s.store.Clock().Now()}).Encode(), nil
}

func (s *Server) handleFastCommit(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeFastCommitReq(p)
	if err != nil {
		return nil, err
	}
	resp := &kv.FastCommitResp{}
	commitTS, err := s.store.FastCommit(req.TxID, req.Start, req.Ops)
	if err == nil {
		resp.OK = true
		resp.CommitTS = commitTS
	} else if !errors.Is(err, kv.ErrConflict) && !errors.Is(err, kv.ErrBadRequest) {
		return nil, err
	}
	resp.Clock = s.store.Clock().Now()
	return resp.Encode(), nil
}

func (s *Server) handlePing(_ context.Context, _ []byte) ([]byte, error) {
	return (&kv.Ack{Clock: s.store.Clock().Now()}).Encode(), nil
}
