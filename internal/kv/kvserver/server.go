package kvserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"yesquel/internal/kv"
	"yesquel/internal/rpc"
)

// Server exposes a Store over the RPC stack. One Server corresponds to
// one storage-server process in Figure 1 of the paper.
type Server struct {
	store      *Store
	rpc        *rpc.Server
	ln         net.Listener
	sweeper    *time.Ticker
	stopCh     chan struct{}
	mirrorConn *rpc.Client
}

// NewServer wraps store in an RPC service. Call Serve (or ListenAndServe)
// to start it.
func NewServer(store *Store) *Server {
	s := &Server{store: store, rpc: rpc.NewServer(), stopCh: make(chan struct{})}
	// Background hygiene: tombstone sweeping at half the retention
	// period.
	s.sweeper = time.NewTicker(time.Duration(store.cfg.RetentionMillis/2+1) * time.Millisecond)
	go func() {
		for {
			select {
			case <-s.stopCh:
				return
			case <-s.sweeper.C:
				s.store.SweepTombstones()
			}
		}
	}()
	s.rpc.Register(kv.MethodRead, s.handleRead)
	s.rpc.Register(kv.MethodReadPart, s.handleReadPart)
	s.rpc.Register(kv.MethodPrepare, s.handlePrepare)
	s.rpc.Register(kv.MethodCommit, s.handleCommit)
	s.rpc.Register(kv.MethodAbort, s.handleAbort)
	s.rpc.Register(kv.MethodFastCommit, s.handleFastCommit)
	s.rpc.Register(kv.MethodPing, s.handlePing)
	s.rpc.Register(kv.MethodMirror, s.handleMirror)
	return s
}

// SetMirror makes this server a primary that synchronously replicates
// every commit to the backup at addr before acknowledging it. The
// backup is a plain kvserver that applies mirrored commits; on primary
// failure, clients reconnect to the backup and see every acknowledged
// write (in-flight prepares are lost, so open transactions abort).
// Pass "" to detach.
func (s *Server) SetMirror(addr string) error {
	if addr == "" {
		s.store.SetMirror(nil)
		if s.mirrorConn != nil {
			s.mirrorConn.Close()
			s.mirrorConn = nil
		}
		return nil
	}
	conn, err := rpc.Dial(addr)
	if err != nil {
		return fmt.Errorf("kvserver: dialing backup: %w", err)
	}
	s.mirrorConn = conn
	s.store.SetMirror(func(commitTS kv.Timestamp, ops []*kv.Op) error {
		req := kv.MirrorReq{CommitTS: commitTS, Ops: ops}
		_, err := conn.Call(context.Background(), kv.MethodMirror, req.Encode())
		return err
	})
	return nil
}

func (s *Server) handleMirror(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeMirrorReq(p)
	if err != nil {
		return nil, err
	}
	s.store.ApplyReplicated(req.CommitTS, req.Ops)
	return (&kv.Ack{Clock: s.store.Clock().Now()}).Encode(), nil
}

// Store returns the underlying storage engine.
func (s *Server) Store() *Store { return s.store }

// ListenAndServe binds addr and serves until Close. It returns the
// bound address on a channel-free API: call Addr after it returns nil
// from Listen. For tests, use Listen + Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return s.rpc.Serve(ln)
}

// Listen binds addr without serving. Serve must be called next.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Serve runs the accept loop on the listener from Listen. It blocks.
func (s *Server) Serve() error { return s.rpc.Serve(s.ln) }

// Addr returns the bound address (valid after Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts down the RPC server and all connections.
func (s *Server) Close() error {
	select {
	case <-s.stopCh:
	default:
		close(s.stopCh)
		s.sweeper.Stop()
	}
	return s.rpc.Close()
}

func (s *Server) handleRead(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeReadReq(p)
	if err != nil {
		return nil, err
	}
	resp := &kv.ReadResp{}
	val, ver, err := s.store.Read(req.OID, req.Snap)
	switch {
	case err == nil:
		resp.Found = true
		resp.Version = ver
		resp.Value = val
	case errors.Is(err, kv.ErrNotFound):
		// Found=false response, not an RPC error: absence is a normal
		// outcome for reads.
	default:
		return nil, err
	}
	resp.Clock = s.store.Clock().Now()
	return resp.Encode(), nil
}

func (s *Server) handleReadPart(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeReadPartReq(p)
	if err != nil {
		return nil, err
	}
	resp := &kv.ReadPartResp{}
	val, total, ver, err := s.store.ReadPart(req.OID, req.Snap, req.From, req.To, req.Max)
	switch {
	case err == nil:
		resp.Found = true
		resp.Version = ver
		resp.Value = val
		resp.Total = uint32(total)
	case errors.Is(err, kv.ErrNotFound):
	default:
		return nil, err
	}
	resp.Clock = s.store.Clock().Now()
	return resp.Encode(), nil
}

func (s *Server) handlePrepare(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodePrepareReq(p)
	if err != nil {
		return nil, err
	}
	resp := &kv.PrepareResp{}
	proposed, err := s.store.Prepare(req.TxID, req.Start, req.Ops)
	if err == nil {
		resp.OK = true
		resp.Proposed = proposed
	} else if !errors.Is(err, kv.ErrConflict) && !errors.Is(err, kv.ErrBadRequest) {
		return nil, err
	}
	resp.Clock = s.store.Clock().Now()
	return resp.Encode(), nil
}

func (s *Server) handleCommit(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeCommitReq(p)
	if err != nil {
		return nil, err
	}
	if err := s.store.Commit(req.TxID, req.CommitTS); err != nil {
		return nil, err
	}
	return (&kv.Ack{Clock: s.store.Clock().Now()}).Encode(), nil
}

func (s *Server) handleAbort(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeAbortReq(p)
	if err != nil {
		return nil, err
	}
	s.store.Abort(req.TxID)
	return (&kv.Ack{Clock: s.store.Clock().Now()}).Encode(), nil
}

func (s *Server) handleFastCommit(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeFastCommitReq(p)
	if err != nil {
		return nil, err
	}
	resp := &kv.FastCommitResp{}
	commitTS, err := s.store.FastCommit(req.TxID, req.Start, req.Ops)
	if err == nil {
		resp.OK = true
		resp.CommitTS = commitTS
	} else if !errors.Is(err, kv.ErrConflict) && !errors.Is(err, kv.ErrBadRequest) {
		return nil, err
	}
	resp.Clock = s.store.Clock().Now()
	return resp.Encode(), nil
}

func (s *Server) handlePing(_ context.Context, _ []byte) ([]byte, error) {
	return (&kv.Ack{Clock: s.store.Clock().Now()}).Encode(), nil
}
