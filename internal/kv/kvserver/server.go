package kvserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"yesquel/internal/kv"
	"yesquel/internal/rpc"
)

// Server exposes a Store over the RPC stack. One Server corresponds to
// one storage-server process in Figure 1 of the paper.
type Server struct {
	store   *Store
	rpc     *rpc.Server
	ln      net.Listener
	sweeper *time.Ticker
	ckpt    *time.Ticker
	stopCh  chan struct{}
	// mirrorMu guards the backup-connection and lease-loop maps, both
	// keyed by backup address (the member identity everywhere: the
	// pipeline's member id, the epoch membership entry, and the lease
	// grant all use it).
	mirrorMu    sync.Mutex
	mirrorConns map[string]*rpc.Client
	// leaseStops terminates each member's lease-renewal loop.
	leaseStops map[string]chan struct{}
	// isolated simulates an outbound network partition: while set, the
	// mirror hook and lease renewals fail without sending, so the
	// server's lease expires and its strict-mirror writes fail exactly
	// as they would behind a real partition. Chaos tests use it; see
	// Isolate.
	isolated atomic.Bool
	// TestHookSnapChunk, when non-nil, runs after each snapshot chunk
	// fetched during a state-transfer resync (SyncFrom's install path).
	// Chaos tests kill the snapshot source mid-install with it. Set
	// before starting the sync; never in production.
	TestHookSnapChunk func(chunk uint32)
}

// errorCode classifies handler errors for the wire (rpc.AppError.Code):
// the kvserver-local sentinels first, then the shared kv registry.
// Installed on the RPC server at construction, it also stamps the RPC
// layer's own unknown-method rejection so version-probing clients can
// match it without text comparison.
func errorCode(err error) uint64 {
	switch {
	case errors.Is(err, ErrSnapshotSessionExpired):
		return kv.CodeSnapSessionExpired
	case errors.Is(err, rpc.ErrUnknownMethod):
		return kv.CodeUnknownMethod
	}
	return kv.WireErrorCode(err)
}

// NewServer wraps store in an RPC service. Call Serve (or ListenAndServe)
// to start it.
func NewServer(store *Store) *Server {
	s := &Server{store: store, rpc: rpc.NewServer(), stopCh: make(chan struct{})}
	s.rpc.SetErrorCoder(errorCode)
	// Background hygiene: tombstone sweeping at half the retention
	// period, plus orphaned-prepare and decided-table eviction (their
	// TTLs are far coarser than the tick, so sharing the ticker only
	// costs a cheap scan).
	s.sweeper = time.NewTicker(time.Duration(store.cfg.RetentionMillis/2+1) * time.Millisecond)
	// The replication-log bound gets its own short ticker, independent
	// of the retention-sized sweep: a primary enforces it inline in the
	// emit paths, but a live-mirror backup defers routine truncation
	// off the ack path (see applyReplicated), so this ticker is what
	// keeps a backup's overshoot to about one second of writes rather
	// than half a retention period.
	s.ckpt = time.NewTicker(time.Second)
	go func() {
		for {
			select {
			case <-s.stopCh:
				return
			case <-s.sweeper.C:
				s.store.SweepTombstones()
				s.store.SweepOrphans()
				s.store.SweepDecided()
			case <-s.ckpt.C:
				s.store.MaybeCheckpoint()
				s.store.SweepSnapshotSessions()
			}
		}
	}()
	s.rpc.Register(kv.MethodRead, s.handleRead)
	s.rpc.Register(kv.MethodReadPart, s.handleReadPart)
	s.rpc.Register(kv.MethodReadBatch, s.handleReadBatch)
	s.rpc.Register(kv.MethodPrepare, s.handlePrepare)
	s.rpc.Register(kv.MethodCommit, s.handleCommit)
	s.rpc.Register(kv.MethodAbort, s.handleAbort)
	s.rpc.Register(kv.MethodFastCommit, s.handleFastCommit)
	s.rpc.Register(kv.MethodPing, s.handlePing)
	s.rpc.Register(kv.MethodMirror, s.handleMirror)
	s.rpc.Register(kv.MethodMirrorBatch, s.handleMirrorBatch)
	s.rpc.Register(kv.MethodSync, s.handleSync)
	s.rpc.Register(kv.MethodSnap, s.handleSnap)
	s.rpc.Register(kv.MethodLease, s.handleLease)
	s.rpc.Register(kv.MethodDirectory, s.handleDirectory)
	return s
}

// ack builds the generic acknowledgment, piggybacking the current
// epoch and membership — and the durability frontier, so clients keep
// their group view AND their follower-read routing bound fresh from
// ordinary traffic (any ack, including the ping a fully idle client's
// heartbeat sends).
func (s *Server) ack() []byte {
	return (&kv.Ack{
		Clock:      s.store.Clock().Now(),
		Epoch:      s.store.Epoch(),
		Members:    s.store.Members(),
		Frontier:   s.store.DurableFrontier(),
		DirVersion: s.store.DirVersion(),
	}).Encode()
}

// handleDirectory serves the full slot directory (MethodDirectory). A
// client that learns of a newer version — from an Ack piggyback or a
// WrongSlotError redirect — fetches the map here; servers without a
// directory answer BadRequest and the client stays on modulo routing.
func (s *Server) handleDirectory(_ context.Context, _ []byte) ([]byte, error) {
	dir := s.store.Directory()
	if dir == nil {
		return nil, fmt.Errorf("%w: no slot directory installed", kv.ErrBadRequest)
	}
	return (&kv.DirectoryResp{Dir: dir, Clock: s.store.Clock().Now()}).Encode(), nil
}

// AttachBackup makes this server a primary that replicates every
// stream record — commits, two-phase prepares, and phase-two decisions
// — to the backup at addr before acknowledging it; on primary failure,
// clients fail over to the backup and see every acknowledged write,
// and the backup holds every prepared in-flight transaction, so a
// coordinator can still drive (or the orphan sweep eventually aborts)
// cross-server transactions caught between the vote and phase two.
// Replication is pipelined group commit: the store's batcher coalesces
// concurrently emitted records into one MirrorBatchReq round trip
// whose single acknowledgment covers — and extends the lease for —
// the whole batch; committers are acknowledged only once their record
// is covered (see pipeline.go). It returns the replication-stream
// watermark: the backup holds every acknowledged record once it has
// synced up to that sequence number (a fresh pair starts at 0 and
// needs no sync; a backup attached mid-life calls SyncFrom with it).
func (s *Server) AttachBackup(addr string) (uint64, error) {
	s.DetachAllBackups()
	return s.AttachBackupMember(addr)
}

// AttachBackupMember adds the backup at addr to this primary's
// replication group WITHOUT detaching the members already attached —
// the rf >= 3 interface. Each member gets its own connection, its own
// batch sender (a dead member's timeout never stalls the others), and
// its own lease-renewal loop; committers are acknowledged once a
// MAJORITY of the group (the primary plus a quorum of backups) holds
// their record. Like AttachBackup, it returns the replication-stream
// watermark the new member must SyncFrom up to.
func (s *Server) AttachBackupMember(addr string) (uint64, error) {
	conn, err := rpc.Dial(addr)
	if err != nil {
		return 0, fmt.Errorf("kvserver: dialing backup: %w", err)
	}
	s.mirrorMu.Lock()
	if old := s.mirrorConns[addr]; old != nil {
		old.Close()
	}
	if s.mirrorConns == nil {
		s.mirrorConns = make(map[string]*rpc.Client)
	}
	s.mirrorConns[addr] = conn
	s.mirrorMu.Unlock()
	watermark := s.store.AttachMirrorMember(addr, func(recs []kv.SyncRec) error {
		// Piggyback the durability watermark the primary can vouch for
		// RIGHT NOW (it trails this batch, which is not yet acked): the
		// backup uses it to advance its follower-read frontier.
		req := kv.MirrorBatchReq{Recs: recs, Watermark: s.store.DurableWatermark()}
		return s.callExtendingLease(conn, addr, kv.MethodMirrorBatch, req.Encode())
	})
	s.startLeaseLoop(addr, conn)
	return watermark, nil
}

// DetachBackupMember removes the backup at addr from the replication
// group: its sender and lease loop stop and its connection closes.
// Waiters are re-judged against the remaining members' quorum (see
// Store.DetachMirrorMember).
func (s *Server) DetachBackupMember(addr string) {
	s.store.DetachMirrorMember(addr)
	s.mirrorMu.Lock()
	if stop, ok := s.leaseStops[addr]; ok {
		close(stop)
		delete(s.leaseStops, addr)
	}
	if conn, ok := s.mirrorConns[addr]; ok {
		conn.Close()
		delete(s.mirrorConns, addr)
	}
	s.mirrorMu.Unlock()
}

// DetachAllBackups removes every attached backup; in-flight durability
// waiters fail (they are uncertain, not acked).
func (s *Server) DetachAllBackups() {
	s.store.AttachMirrorBatch(nil)
	s.mirrorMu.Lock()
	for addr, stop := range s.leaseStops {
		close(stop)
		delete(s.leaseStops, addr)
	}
	for addr, conn := range s.mirrorConns {
		conn.Close()
		delete(s.mirrorConns, addr)
	}
	s.mirrorMu.Unlock()
}

// callExtendingLease performs one RPC to the backup at member whose
// acknowledgment doubles as that member's lease grant (mirror records
// and MethodLease renewals alike): the call is timeout-bounded — it
// runs while the caller may hold the replication stream, and a frozen
// backup must fail the operation after a bounded wait, not wedge the
// primary's write path — the member's grant is extended from before
// the request was sent (the backup's grant, measured from receipt,
// necessarily outlasts it), and the ack's clock is merged. While
// Isolate is in effect, the call fails without sending.
func (s *Server) callExtendingLease(conn *rpc.Client, member, method string, payload []byte) error {
	if s.isolated.Load() {
		return errIsolated
	}
	ctx, cancel := context.WithTimeout(context.Background(), mirrorTimeout)
	defer cancel()
	t0 := time.Now()
	respB, err := conn.Call(ctx, method, payload)
	if err != nil {
		return err
	}
	s.store.ExtendLease(member, t0.Add(s.store.cfg.LeaseDuration))
	if ack, err := kv.DecodeAck(respB); err == nil {
		s.store.Clock().Observe(ack.Clock)
	}
	return nil
}

// errIsolated marks replication traffic suppressed by Isolate.
var errIsolated = errors.New("kvserver: outbound replication isolated (simulated partition)")

// Isolate simulates an outbound network partition for chaos tests:
// mirror records and lease renewals fail without being sent, so this
// server's lease expires and, once the group establishes a new epoch,
// it can never acknowledge another write. Inbound RPCs still work —
// clients on the "wrong side" of the partition can still reach the
// server and must be turned away by the lease/epoch checks, which is
// precisely what the tests assert.
func (s *Server) Isolate() { s.isolated.Store(true) }

// startLeaseLoop begins periodic lease renewals to the backup member
// at addr over conn, replacing any previous loop for that member.
// Renewals keep the member's grant fresh through write-idle periods
// (mirror acks cover the busy ones); each member renews on its own
// loop, so one unreachable member blocking on its timeout never
// starves the others' renewals — exactly what lets a quorum lease
// survive any minority of down members.
func (s *Server) startLeaseLoop(addr string, conn *rpc.Client) {
	stop := make(chan struct{})
	s.mirrorMu.Lock()
	if old, ok := s.leaseStops[addr]; ok {
		close(old)
	}
	if s.leaseStops == nil {
		s.leaseStops = make(map[string]chan struct{})
	}
	s.leaseStops[addr] = stop
	s.mirrorMu.Unlock()
	go func() {
		interval := s.store.cfg.LeaseDuration / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-s.stopCh:
				return
			case <-t.C:
				if !s.renewLease(addr, conn) {
					return
				}
			}
		}
	}()
}

// renewLease sends one lease renewal to the backup member at addr and
// reports whether that member's renewal loop should keep running. A
// wrong-epoch rejection means the group moved on while we were away:
// adopt the new configuration (dropping to RoleRemoved if deposed) so
// clients are redirected instead of served stale data — and stop
// renewing; a deposed member hammering the new primary with doomed
// renewals forever would only pollute its WrongEpochRejects signal.
// Any other failure simply leaves that member's grant to expire on its
// own — with rf >= 3 the lease survives on the remaining members'
// grants as long as they form a majority.
func (s *Server) renewLease(addr string, conn *rpc.Client) bool {
	epoch := s.store.Epoch()
	if epoch == 0 {
		return true // legacy pair: no lease discipline (yet)
	}
	if s.store.Role() != RolePrimary {
		return false // deposed or reconfigured away: nothing to renew
	}
	req := &kv.LeaseReq{Epoch: epoch, Watermark: s.store.DurableWatermark()}
	err := s.callExtendingLease(conn, addr, kv.MethodLease, req.Encode())
	var app *rpc.AppError
	if errors.As(err, &app) {
		if we, ok := kv.ParseWrongEpoch(app.Msg); ok {
			s.store.AdoptEpoch(we.Epoch, we.Members)
			return s.store.Role() == RolePrimary
		}
	}
	return true
}

// handleLease grants (or refuses) a primary's lease renewal. Only a
// member that still believes in the renewal's epoch — and is not
// mid-promotion — grants; otherwise it answers with the current
// configuration, deposing the caller.
func (s *Server) handleLease(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeLeaseReq(p)
	if err != nil {
		return nil, err
	}
	if err := s.store.RenewLeaseGrant(req.Epoch); err != nil {
		return nil, err
	}
	// The grant succeeded, so the sender is this epoch's primary: its
	// piggybacked watermark is authoritative. This is what keeps a
	// backup's follower-read frontier advancing through write-idle
	// periods, when no mirror batches flow.
	s.store.InstallRemoteWatermark(req.Watermark)
	return s.ack(), nil
}

// Promote makes this member the primary of a new epoch whose sole
// member is itself: the epoch bump that completes a failover. Unless
// force is set, it first freezes its grant clock (BeginPromotion — so
// no in-flight mirror ack or renewal can re-arm the lease mid-wait)
// and waits out any lease it granted, so a live-but-partitioned old
// primary has provably stopped serving before the new epoch
// acknowledges its first write. force is for orchestrators that know
// the old primary is dead (they killed it) — fencing by certainty
// instead of by clock. It returns the new epoch.
func (s *Server) Promote(force bool) (uint64, error) {
	st := s.store
	st.BeginPromotion()
	if !force {
		for {
			wait := time.Until(st.GrantExpiry())
			if wait <= 0 {
				break
			}
			time.Sleep(wait)
		}
	}
	newEpoch := st.Epoch() + 1
	if err := st.InstallEpoch(newEpoch, []string{s.Addr()}); err != nil {
		st.AbandonPromotion()
		return 0, err
	}
	return newEpoch, nil
}

// BumpEpoch moves this primary's group to a fresh configuration with
// the given membership (this server first). cluster.Restart uses it
// after re-attaching a backup: the RecEpoch record flows through the
// mirror like any other, so the new member installs the configuration
// at the right point in its stream.
func (s *Server) BumpEpoch(members []string) (uint64, error) {
	newEpoch := s.store.Epoch() + 1
	if err := s.store.InstallEpoch(newEpoch, members); err != nil {
		return 0, err
	}
	return newEpoch, nil
}

// BumpEpochTo installs the given epoch with the given membership (this
// server first) — the failover promotion path, where the new epoch
// must exceed whatever ANY live member has seen, not merely this
// member's own epoch plus one. The store still refuses an epoch at or
// below its current one.
func (s *Server) BumpEpochTo(epoch uint64, members []string) error {
	return s.store.InstallEpoch(epoch, members)
}

// mirrorTimeout bounds one synchronous mirror round trip.
const mirrorTimeout = 5 * time.Second

// SetMirror attaches (or, with "", detaches) a backup. It is the
// flag-friendly wrapper around AttachBackup for pairs formed before
// any writes, where the watermark is necessarily zero.
func (s *Server) SetMirror(addr string) error {
	if addr == "" {
		s.DetachAllBackups()
		return nil
	}
	_, err := s.AttachBackup(addr)
	return err
}

func (s *Server) handleMirror(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeMirrorReq(p)
	if err != nil {
		return nil, err
	}
	if err := s.store.ApplyMirrored(req.Seq, req.Rec); err != nil {
		return nil, err
	}
	return s.ack(), nil
}

// handleMirrorBatch applies one group-commit batch; the single ack
// covers (and, via callExtendingLease on the primary, renews the lease
// for) every record in it.
func (s *Server) handleMirrorBatch(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeMirrorBatchReq(p)
	if err != nil {
		return nil, err
	}
	if err := s.store.ApplyMirroredBatch(req.Recs); err != nil {
		return nil, err
	}
	// Batch applied under the stream's epoch checks, so the sender is
	// the live primary: adopt its piggybacked durability watermark
	// (InstallRemoteWatermark caps the effective value at the local
	// head, so a watermark above what this replica holds never vouches
	// for records it hasn't applied).
	s.store.InstallRemoteWatermark(req.Watermark)
	return s.ack(), nil
}

func (s *Server) handleSync(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeSyncReq(p)
	if err != nil {
		return nil, err
	}
	recs, head, base, err := s.store.SyncRecords(req.From, int(req.Max), req.Epoch)
	if err != nil {
		return nil, err
	}
	resp := &kv.SyncResp{
		Records: recs,
		Head:    head,
		Clock:   s.store.Clock().Now(),
		TooOld:  req.From < base,
		LogBase: base,
	}
	return resp.Encode(), nil
}

// handleSnap serves one chunk of a state snapshot to a peer whose sync
// position predates the truncated replication log (see SyncResp.TooOld
// and Store.ServeSnapshotChunk).
func (s *Server) handleSnap(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeSnapReq(p)
	if err != nil {
		return nil, err
	}
	id, seq, chunks, data, err := s.store.ServeSnapshotChunk(req.ID, req.Chunk)
	if err != nil {
		return nil, err
	}
	resp := &kv.SnapResp{
		ID:     id,
		Seq:    seq,
		Chunk:  req.Chunk,
		Chunks: chunks,
		Data:   data,
		Clock:  s.store.Clock().Now(),
	}
	return resp.Encode(), nil
}

// SyncFrom streams missed commits from the primary at addr into this
// server's store until the local stream head reaches the given
// watermark (0 = the primary's head at call time), then leaves resync
// mode. Call StartResync on the store *before* the primary attaches
// this server as its mirror, so live mirrored commits arriving during
// the catch-up are buffered and applied in sequence once the history
// below them lands.
//
// When the requested position predates the source's replication log
// (truncated at a snapshot checkpoint), SyncFrom falls back to state
// transfer: it installs a chunked snapshot of the source's full state
// (MethodSnap) and resumes the log-tail sync from the sequence number
// the snapshot covers — a late-joining or long-dead replica costs the
// current state's size, not the stream's full history.
//
// A source that reports this replica AHEAD of its own stream
// (kv.ErrDiverged) fails the sync loudly: the histories are
// irreconcilable and the group must be re-formed, never papered over.
func (s *Server) SyncFrom(addr string, until uint64) error {
	conn, err := rpc.Dial(addr)
	if err != nil {
		return fmt.Errorf("kvserver: dialing sync source: %w", err)
	}
	defer conn.Close()
	ctx := context.Background()
	installs := 0
	for {
		from := s.store.ReplSeq()
		req := kv.SyncReq{From: from, Max: 512, Epoch: s.store.StreamEpoch()}
		respB, err := conn.Call(ctx, kv.MethodSync, req.Encode())
		if err != nil {
			if rpc.AppErrIs(err, kv.CodeDiverged, kv.ErrDiverged) {
				return fmt.Errorf("%w: sync source %s rejected seq %d: %v", kv.ErrDiverged, addr, from, err)
			}
			return fmt.Errorf("kvserver: sync from %s: %w", addr, err)
		}
		resp, err := kv.DecodeSyncResp(respB)
		if err != nil {
			return err
		}
		s.store.Clock().Observe(resp.Clock)
		if resp.TooOld {
			// Each install strictly advances the local head (a snapshot
			// covers the source's head at capture time), but a source
			// that truncates faster than one transfer completes could
			// demand a fresh full-state transfer every iteration. Bound
			// the spiral loudly instead of re-shipping state forever.
			if installs++; installs > maxSnapshotInstalls {
				return fmt.Errorf("kvserver: sync from %s installed %d snapshots without catching up: the source truncates faster than state transfers complete (raise its replication-log bound or quiesce writes)", addr, maxSnapshotInstalls)
			}
			if err := s.installSnapshotFrom(ctx, conn, addr); err != nil {
				return err
			}
			continue
		}
		for i := range resp.Records {
			rec := &resp.Records[i]
			if err := s.store.ApplyReplicatedSeq(rec.Seq, rec.Rec); err != nil {
				return err
			}
		}
		if until == 0 {
			until = resp.Head
		}
		now := s.store.ReplSeq()
		if now >= until {
			break
		}
		if len(resp.Records) == 0 {
			return fmt.Errorf("kvserver: sync stalled at seq %d (source head %d, want %d)", now, resp.Head, until)
		}
	}
	return s.store.FinishResync()
}

// snapTransferAttempts bounds how many times one install restarts a
// transfer whose server-side session expired or was evicted (a slow
// link, or concurrent transfers past the session cap). Each restart
// begins a fresh consistent snapshot, so partial progress is discarded
// but never spliced. maxSnapshotInstalls bounds how many SUCCESSFUL
// installs one SyncFrom performs before concluding the source
// truncates faster than transfers complete.
const (
	snapTransferAttempts = 3
	maxSnapshotInstalls  = 5
)

// installSnapshotFrom transfers a complete state snapshot over conn,
// chunk by chunk, and installs it: this store's state is replaced and
// its stream position jumps to the snapshot's coverage. The caller
// (SyncFrom) then continues the log-tail sync from there. An expired
// or evicted server-side session restarts the transfer from scratch
// (bounded by snapTransferAttempts) rather than failing the resync.
func (s *Server) installSnapshotFrom(ctx context.Context, conn *rpc.Client, addr string) error {
	return s.transferSnapshotFrom(ctx, conn, addr, s.store.InstallSnapshot)
}

// installSnapshotDiscardingTailFrom is installSnapshotFrom for the
// diverged-replica path: the transferred snapshot replaces the local
// state even when it lies behind the local stream head.
func (s *Server) installSnapshotDiscardingTailFrom(ctx context.Context, conn *rpc.Client, addr string) error {
	return s.transferSnapshotFrom(ctx, conn, addr, s.store.InstallSnapshotDiscardingTail)
}

func (s *Server) transferSnapshotFrom(ctx context.Context, conn *rpc.Client, addr string, install func([]byte) error) error {
	var lastErr error
	for attempt := 0; attempt < snapTransferAttempts; attempt++ {
		var data []byte
		var id uint64
		expired := false
		for chunk := uint32(0); ; chunk++ {
			req := kv.SnapReq{ID: id, Chunk: chunk}
			respB, err := conn.Call(ctx, kv.MethodSnap, req.Encode())
			if err != nil {
				if rpc.AppErrIs(err, kv.CodeSnapSessionExpired, ErrSnapshotSessionExpired) {
					lastErr = err
					expired = true
					break
				}
				return fmt.Errorf("kvserver: snapshot chunk %d from %s: %w", chunk, addr, err)
			}
			resp, err := kv.DecodeSnapResp(respB)
			if err != nil {
				return err
			}
			s.store.Clock().Observe(resp.Clock)
			id = resp.ID
			data = append(data, resp.Data...)
			if s.TestHookSnapChunk != nil {
				s.TestHookSnapChunk(chunk)
			}
			if chunk+1 >= resp.Chunks {
				break
			}
		}
		if expired {
			continue
		}
		if err := install(data); err != nil {
			return fmt.Errorf("kvserver: installing snapshot from %s: %w", addr, err)
		}
		return nil
	}
	return fmt.Errorf("kvserver: snapshot transfer from %s restarted %d times without completing: %w", addr, snapTransferAttempts, lastErr)
}

// StateTransferFrom rejoins this replica to the group at addr by full
// state transfer, abandoning its own history: a complete snapshot of
// the source replaces the local state wholesale — even when the local
// stream head is AHEAD of the snapshot (the diverged-but-behind old
// primary: its stranded tail is discarded, never merged) — and the
// log-tail sync then follows the source to the given watermark (0 =
// the source's head). This is the only road back for a replica whose
// SyncFrom failed with kv.ErrDiverged.
func (s *Server) StateTransferFrom(addr string, until uint64) error {
	conn, err := rpc.Dial(addr)
	if err != nil {
		return fmt.Errorf("kvserver: dialing state-transfer source: %w", err)
	}
	err = s.installSnapshotDiscardingTailFrom(context.Background(), conn, addr)
	conn.Close()
	if err != nil {
		return err
	}
	return s.SyncFrom(addr, until)
}

// Store returns the underlying storage engine.
func (s *Server) Store() *Store { return s.store }

// ServerStats combines the store's activity counters with the
// replication-group state an operator needs during a failover drill:
// which epoch this member is in, its role, the membership it believes,
// and whether it currently holds serving authority.
type ServerStats struct {
	StatsSnapshot
	Epoch      uint64
	Role       string
	Members    []string
	LeaseValid bool
	// Replication-group progress (meaningful on a primary with
	// attached backups): the stream head, the quorum durability
	// watermark, how many member acks complete a quorum, and each
	// member's individual progress — AckLag = ReplHead - AckedSeq is
	// the signal that flags a permanently-behind minority member.
	ReplHead   uint64
	QuorumMark uint64
	QuorumNeed int
	Replicas   []ReplicaStatus
	// Follower-read health: the durability frontier this member serves
	// snapshot reads up to, and how far the stream head runs ahead of
	// the quorum watermark (WatermarkLag = ReplHead - QuorumMark; a
	// growing lag means follower reads are falling behind the primary's
	// emissions).
	Frontier     uint64
	WatermarkLag uint64
}

// Stats reports counters plus epoch/lease/replication state (see
// ServerStats).
func (s *Server) Stats() ServerStats {
	head, mark, need, replicas := s.store.ReplicationStatus()
	var lag uint64
	if head > mark {
		lag = head - mark
	}
	return ServerStats{
		StatsSnapshot: s.store.Stats(),
		Epoch:         s.store.Epoch(),
		Role:          s.store.Role(),
		Members:       s.store.Members(),
		LeaseValid:    s.store.LeaseValid(),
		ReplHead:      head,
		QuorumMark:    mark,
		QuorumNeed:    need,
		Replicas:      replicas,
		Frontier:      uint64(s.store.DurableFrontier()),
		WatermarkLag:  lag,
	}
}

// ListenAndServe binds addr and serves until Close. It returns the
// bound address on a channel-free API: call Addr after it returns nil
// from Listen. For tests, use Listen + Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.store.SetSelf(ln.Addr().String())
	return s.rpc.Serve(ln)
}

// Listen binds addr without serving. Serve must be called next. The
// bound address becomes the store's member identity for epoch roles.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.store.SetSelf(ln.Addr().String())
	return nil
}

// Serve runs the accept loop on the listener from Listen. It blocks.
func (s *Server) Serve() error { return s.rpc.Serve(s.ln) }

// Addr returns the bound address (valid after Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts down the RPC server and all connections.
func (s *Server) Close() error {
	select {
	case <-s.stopCh:
	default:
		close(s.stopCh)
		s.sweeper.Stop()
		s.ckpt.Stop()
	}
	// Shut the RPC server down BEFORE detaching the replication
	// pipeline, and in this order only. rpc.Close closes every
	// connection and then waits for in-flight handlers to drain; any
	// commit still executing keeps its full durability requirement (the
	// members are still attached) and, whatever its outcome, cannot
	// deliver an acknowledgment on a closed connection. Detaching first
	// would empty the member set under those handlers — durableLocked
	// with no members and no WAL demand is trivially satisfied — and a
	// late commit would be acked as if this were an unreplicated store:
	// an acknowledged write existing only on a dying primary, exactly
	// the loss the quorum is there to prevent.
	err := s.rpc.Close()
	// Handlers drained: now stop the member senders and lease loops.
	// Remaining durability waiters (none can ack a client anymore) fail
	// as uncertain.
	s.DetachAllBackups()
	return err
}

func (s *Server) handleRead(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeReadReq(p)
	if err != nil {
		return nil, err
	}
	// Reads pass the watermark-aware authority check: the primary under
	// the usual epoch/lease rules, a backup whenever the snapshot is at
	// or below its durability frontier.
	if err := s.store.CheckClientRead(req.Epoch, req.Snap); err != nil {
		return nil, err
	}
	if err := s.store.CheckClientSlot(req.OID); err != nil {
		return nil, err
	}
	if req.Durable {
		if err := s.store.WaitDurable(req.Snap); err != nil {
			return nil, err
		}
	}
	resp := &kv.ReadResp{}
	val, ver, err := s.store.Read(req.OID, req.Snap)
	switch {
	case err == nil:
		resp.Found = true
		resp.Version = ver
		resp.Value = val
	case errors.Is(err, kv.ErrNotFound):
		// Found=false response, not an RPC error: absence is a normal
		// outcome for reads.
	default:
		return nil, err
	}
	resp.Clock = s.store.Clock().Now()
	resp.Frontier = s.store.DurableFrontier()
	return resp.Encode(), nil
}

func (s *Server) handleReadPart(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeReadPartReq(p)
	if err != nil {
		return nil, err
	}
	if err := s.store.CheckClientRead(req.Epoch, req.Snap); err != nil {
		return nil, err
	}
	if err := s.store.CheckClientSlot(req.OID); err != nil {
		return nil, err
	}
	if req.Durable {
		if err := s.store.WaitDurable(req.Snap); err != nil {
			return nil, err
		}
	}
	resp := &kv.ReadPartResp{}
	val, total, ver, err := s.store.ReadPart(req.OID, req.Snap, req.From, req.To, req.Max)
	switch {
	case err == nil:
		resp.Found = true
		resp.Version = ver
		resp.Value = val
		resp.Total = uint32(total)
	case errors.Is(err, kv.ErrNotFound):
	default:
		return nil, err
	}
	resp.Clock = s.store.Clock().Now()
	resp.Frontier = s.store.DurableFrontier()
	return resp.Encode(), nil
}

// handleReadBatch serves N reads at one snapshot in a single RPC. The
// admission checks — epoch, follower-read frontier, and the optional
// durability wait — run ONCE for the whole batch; the per-item reads
// then take their per-shard locks exactly as N single reads would, so
// batches ride the follower-read path unchanged.
func (s *Server) handleReadBatch(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeReadBatchReq(p)
	if err != nil {
		return nil, err
	}
	if err := s.store.CheckClientRead(req.Epoch, req.Snap); err != nil {
		return nil, err
	}
	// One stale item rejects the whole batch: the client regroups every
	// item under the directory version the redirect carries, so a
	// partial answer would only be re-fetched anyway.
	for i := range req.Items {
		if err := s.store.CheckClientSlot(req.Items[i].OID); err != nil {
			return nil, err
		}
	}
	if req.Durable {
		if err := s.store.WaitDurable(req.Snap); err != nil {
			return nil, err
		}
	}
	resp := &kv.ReadBatchResp{Results: make([]kv.ReadBatchResult, len(req.Items))}
	for i := range req.Items {
		item := &req.Items[i]
		res := &resp.Results[i]
		var (
			val   *kv.Value
			total int
			ver   kv.Timestamp
			err   error
		)
		if item.Part {
			val, total, ver, err = s.store.ReadPart(item.OID, req.Snap, item.From, item.To, item.Max)
		} else {
			val, ver, err = s.store.Read(item.OID, req.Snap)
		}
		switch {
		case err == nil:
			res.Found = true
			res.Version = ver
			res.Value = val
			res.Total = uint32(total)
		case errors.Is(err, kv.ErrNotFound):
			// Found=false result, not an RPC error: absence is a normal
			// outcome, and one missing object must not fail the batch.
		default:
			return nil, err
		}
	}
	resp.Clock = s.store.Clock().Now()
	resp.Frontier = s.store.DurableFrontier()
	return resp.Encode(), nil
}

func (s *Server) handlePrepare(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodePrepareReq(p)
	if err != nil {
		return nil, err
	}
	if err := s.store.CheckClientOp(req.Epoch); err != nil {
		return nil, err
	}
	// Early redirect before any lock work; the authoritative fence is
	// the in-store ownership re-check under repMu (see store.prepare).
	for _, op := range req.Ops {
		if err := s.store.CheckClientSlot(op.OID); err != nil {
			return nil, err
		}
	}
	resp := &kv.PrepareResp{}
	proposed, err := s.store.Prepare(req.TxID, req.Start, req.Ops)
	if err == nil {
		resp.OK = true
		resp.Proposed = proposed
	} else if !errors.Is(err, kv.ErrConflict) && !errors.Is(err, kv.ErrBadRequest) {
		// The prepare may have locked and replicated state at this
		// clock; the error response must carry it (see kv.MarkClock).
		return nil, kv.MarkClock(err, s.store.Clock().Now())
	}
	resp.Clock = s.store.Clock().Now()
	return resp.Encode(), nil
}

func (s *Server) handleCommit(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeCommitReq(p)
	if err != nil {
		return nil, err
	}
	if err := s.store.CheckClientOp(req.Epoch); err != nil {
		return nil, err
	}
	if err := s.store.Commit(req.TxID, req.CommitTS); err != nil {
		// An uncertain commit is applied locally: stamp the clock so the
		// client's next snapshot lands above it (see kv.MarkClock).
		return nil, kv.MarkClock(err, s.store.Clock().Now())
	}
	return s.ack(), nil
}

func (s *Server) handleAbort(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeAbortReq(p)
	if err != nil {
		return nil, err
	}
	if err := s.store.CheckClientOp(req.Epoch); err != nil {
		return nil, err
	}
	s.store.Abort(req.TxID)
	return s.ack(), nil
}

func (s *Server) handleFastCommit(_ context.Context, p []byte) ([]byte, error) {
	req, err := kv.DecodeFastCommitReq(p)
	if err != nil {
		return nil, err
	}
	if err := s.store.CheckClientOp(req.Epoch); err != nil {
		return nil, err
	}
	for _, op := range req.Ops {
		if err := s.store.CheckClientSlot(op.OID); err != nil {
			return nil, err
		}
	}
	resp := &kv.FastCommitResp{}
	commitTS, err := s.store.FastCommit(req.TxID, req.Start, req.Ops)
	resp.Frontier = s.store.DurableFrontier()
	if err == nil {
		resp.OK = true
		resp.CommitTS = commitTS
	} else if !errors.Is(err, kv.ErrConflict) && !errors.Is(err, kv.ErrBadRequest) {
		// The one-shot transaction is applied locally even when its
		// durability wait fails (ErrUncertain): stamp the clock so the
		// client's next snapshot lands above it (see kv.MarkClock).
		return nil, kv.MarkClock(err, s.store.Clock().Now())
	}
	resp.Clock = s.store.Clock().Now()
	return resp.Encode(), nil
}

// handlePing answers from any member regardless of role: pings merge
// clocks and report the current configuration (via the ack piggyback),
// both of which a client must be able to get from whichever replica
// still answers.
func (s *Server) handlePing(_ context.Context, _ []byte) ([]byte, error) {
	return s.ack(), nil
}
