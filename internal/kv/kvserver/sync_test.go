package kvserver_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
)

// startReplServer launches a kvserver that keeps the replication log.
func startReplServer(t *testing.T) *kvserver.Server {
	t.Helper()
	srv := kvserver.NewServer(kvserver.NewStore(nil, kvserver.Config{ReplicationLog: true}))
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv
}

// writeBatch commits n transactions with a mix of op shapes through c.
func writeBatch(t *testing.T, c *kvclient.Client, tag string, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		tx := c.Begin()
		switch i % 4 {
		case 0:
			tx.Put(c.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("%s-%d", tag, i))))
		case 1:
			oid := c.NewOID(0)
			tx.ListAdd(oid, []byte("cell"), []byte(tag))
			tx.AttrSet(oid, 1, uint64(i))
		case 2:
			oid := c.NewOID(0)
			tx.Put(oid, kv.NewPlain([]byte("doomed")))
			if err := tx.Commit(ctx); err != nil {
				t.Fatal(err)
			}
			tx = c.Begin()
			tx.Delete(oid)
		case 3:
			tx.SetBounds(c.NewOID(0), []byte("lo"), []byte("hi"))
		}
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSyncRebuildsBackupByteForByte covers the resync path: a backup
// dies, the primary keeps committing alone, and a fresh backup catches
// up via MethodSync until its multi-version state digests equal the
// primary's — then live mirroring keeps them equal.
func TestSyncRebuildsBackupByteForByte(t *testing.T) {
	primary := startReplServer(t)
	backup1 := startReplServer(t)
	if err := primary.SetMirror(backup1.Addr()); err != nil {
		t.Fatal(err)
	}
	c, err := kvclient.Open([]string{primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	writeBatch(t, c, "before", 20)

	// Backup dies; the operator detaches it and the primary serves alone.
	backup1.Close()
	if err := primary.SetMirror(""); err != nil {
		t.Fatal(err)
	}
	writeBatch(t, c, "alone", 20)

	// A fresh backup re-forms the pair: resync mode first, then attach
	// (so live commits buffer), then stream the missed history.
	backup2 := startReplServer(t)
	backup2.Store().StartResync()
	watermark, err := primary.AttachBackup(backup2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if watermark == 0 {
		t.Fatal("watermark = 0 after 50 commits")
	}
	if err := backup2.SyncFrom(primary.Addr(), watermark); err != nil {
		t.Fatal(err)
	}
	if got, want := backup2.Store().StateDigest(), primary.Store().StateDigest(); got != want {
		t.Fatalf("after sync: backup digest %x != primary digest %x", got, want)
	}
	if got, want := backup2.Store().ReplSeq(), primary.Store().ReplSeq(); got != want {
		t.Fatalf("after sync: backup seq %d != primary seq %d", got, want)
	}

	// The re-formed pair mirrors live commits again.
	writeBatch(t, c, "after", 20)
	if got, want := backup2.Store().StateDigest(), primary.Store().StateDigest(); got != want {
		t.Fatalf("after live mirroring: backup digest %x != primary digest %x", got, want)
	}

	// And the rebuilt backup serves the data to a failover client.
	oid := c.NewOID(0)
	tx := c.Begin()
	tx.Put(oid, kv.NewPlain([]byte("visible")))
	if err := tx.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	primary.Close()
	c2, err := kvclient.Open([]string{backup2.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	check := c2.Begin()
	defer check.Abort()
	if v, err := check.Read(context.Background(), oid); err != nil || string(v.Data) != "visible" {
		t.Fatalf("read on rebuilt backup: %v %v", v, err)
	}
}

// TestSyncCarriesPreparedState: a backup re-formed mid-2PC receives
// the in-flight prepared transaction through the resync stream — not
// just committed history — so a subsequent failover can still apply
// the coordinator's decision.
func TestSyncCarriesPreparedState(t *testing.T) {
	primary := startReplServer(t)
	c, err := kvclient.Open([]string{primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	writeBatch(t, c, "history", 8)

	// An in-flight two-phase transaction: prepared, not yet decided.
	store := primary.Store()
	oid := kv.MakeOID(0, 999)
	txid := uint64(1 << 40)
	proposed, err := store.Prepare(txid, store.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("mid-2pc"))},
	})
	if err != nil {
		t.Fatal(err)
	}

	// A fresh backup re-forms the pair while the prepare is pending.
	backup := startReplServer(t)
	backup.Store().StartResync()
	watermark, err := primary.AttachBackup(backup.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := backup.SyncFrom(primary.Addr(), watermark); err != nil {
		t.Fatal(err)
	}
	if !backup.Store().IsLocked(oid) {
		t.Fatal("resync did not carry the prepared transaction's lock")
	}

	// The decision mirrors to the re-formed backup like any record.
	if err := store.Commit(txid, proposed); err != nil {
		t.Fatal(err)
	}
	if backup.Store().IsLocked(oid) {
		t.Fatal("mirrored decision did not release the backup's lock")
	}
	if got, want := backup.Store().StateDigest(), primary.Store().StateDigest(); got != want {
		t.Fatalf("after mid-2PC resync: backup digest %x != primary digest %x", got, want)
	}
	if known, committed := backup.Store().Decided(txid); !known || !committed {
		t.Fatalf("backup decision table: known=%v committed=%v", known, committed)
	}
}

// TestMirrorGapFailsLoudly pins the divergence guard: attaching a
// stale, empty backup to a primary with history (without a resync)
// must fail the primary's next commit instead of silently mirroring a
// stream with a gap.
func TestMirrorGapFailsLoudly(t *testing.T) {
	primary := startReplServer(t)
	c, err := kvclient.Open([]string{primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	writeBatch(t, c, "history", 8)

	stale := startReplServer(t)
	if _, err := primary.AttachBackup(stale.Addr()); err != nil {
		t.Fatal(err)
	}
	tx := c.Begin()
	tx.Put(c.NewOID(0), kv.NewPlain([]byte("x")))
	err = tx.Commit(context.Background())
	if err == nil {
		t.Fatal("commit mirrored into a gapped backup succeeded")
	}
	if !strings.Contains(err.Error(), "resync") {
		t.Fatalf("gap error should demand a resync, got: %v", err)
	}
	// The stale backup stayed empty rather than diverging.
	if stale.Store().ReplSeq() != 0 {
		t.Fatalf("stale backup applied %d records", stale.Store().ReplSeq())
	}
}

// TestMirrorDetectsDivergedBackup pins the split-brain guard on the
// other side: a backup that served native client writes of its own
// (e.g. a client failed over while the primary was still alive) is
// ahead of the primary's stream. The next mirrored commit must fail
// loudly instead of being acknowledged and silently dropped.
func TestMirrorDetectsDivergedBackup(t *testing.T) {
	primary := startReplServer(t)
	backup := startReplServer(t)
	if err := primary.SetMirror(backup.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c, err := kvclient.Open([]string{primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tx := c.Begin()
	tx.Put(c.NewOID(0), kv.NewPlain([]byte("replicated")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// A stray client writes directly to the backup: its stream head
	// advances past the primary's.
	stray, err := kvclient.Open([]string{backup.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer stray.Close()
	stx := stray.Begin()
	stx.Put(stray.NewOID(0), kv.NewPlain([]byte("split-brain")))
	if err := stx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// The primary's next commit mirrors a sequence number the backup
	// already consumed — it must be rejected, failing the commit.
	tx = c.Begin()
	tx.Put(c.NewOID(0), kv.NewPlain([]byte("rejected")))
	err = tx.Commit(ctx)
	if err == nil {
		t.Fatal("commit mirrored into a diverged backup succeeded")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("divergence should be named, got: %v", err)
	}
}

// TestSyncFromRequiresReplicationLog verifies the sync source refuses
// when it has no log to serve from.
func TestSyncFromRequiresReplicationLog(t *testing.T) {
	plain := startServer(t) // no ReplicationLog
	backup := startReplServer(t)
	backup.Store().StartResync()
	err := backup.SyncFrom(plain.Addr(), 1)
	if err == nil {
		t.Fatal("sync from a server without a replication log succeeded")
	}
	if !errors.Is(err, kv.ErrBadRequest) && !strings.Contains(err.Error(), "replication log") {
		t.Fatalf("unexpected error: %v", err)
	}
}
