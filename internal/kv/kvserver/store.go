// Package kvserver implements a Yesquel storage server: a multi-version
// key-value store with snapshot-isolation transactions (prepare /
// commit / abort participant logic) exposed over RPC.
//
// Concurrency control follows the paper's description of the lowest
// layer: multi-version concurrency control with versions managed "at
// the layer that stores the actual data". Writers stage operations
// under per-object write locks during prepare; readers never block
// writers; a reader blocks only in the narrow window where a prepared
// transaction could commit below the reader's snapshot (the Clock-SI
// read rule), which lasts one commit round trip.
//
// # Replication
//
// Fault tolerance lives in this layer, as the paper prescribes: the
// SQL layer above is stateless and the client library fails over, so
// only the storage server needs to replicate. A server can run as the
// primary of a primary-backup pair (Server.AttachBackup): every stream
// record is assigned a sequence number in the primary's replication
// stream and mirrored to the backup, and the client's acknowledgment
// is withheld until the backup has acknowledged the record, so a
// failover to the backup never loses an acknowledged write. Backups
// apply the stream in strict sequence order; a gap (the backup missed
// records, e.g. it restarted) makes mirroring fail loudly instead of
// silently diverging, and the backup re-joins by streaming the missed
// records from the primary's replication log (Server.SyncFrom /
// MethodSync, the same records the write-ahead log holds).
//
// # Group commit and pipelined mirroring
//
// Emission and the durability wait are decoupled (pipeline.go). What
// still happens under repMu — the invariants every consumer of the
// stream relies on:
//
//   - sequence assignment and the epoch stamp;
//   - the in-memory replication-log append;
//   - the application of the record's effects (commit versions,
//     staged prepares, epoch installs) — so visible state always
//     equals the stream position when repMu is free, which is what
//     lets snapshot captures and resyncs claim exact coverage.
//
// What no longer happens under repMu: the mirror RPC and the
// write-ahead-log write/fsync. Emitted records are queued to a
// per-store flusher goroutine that coalesces whatever accumulated —
// at any concurrency, everything emitted during the previous batch's
// round trip — into ONE MirrorBatchReq RPC (one round trip, one lease
// extension, one backup-side contiguous apply under one stream-lock
// acquisition) and ONE batched WAL append (one buffer, one lock, one
// write, one fsync). Config.MirrorBatchMaxRecords caps a batch;
// Config.GroupCommitInterval optionally lets one build.
//
// The WATERMARK ACK RULE replaces the old strict per-record mirror: a
// commit, prepare, or epoch change is acknowledged only once its
// sequence number clears the durability watermark — covered by a
// backup batch acknowledgment (when a mirror is attached) AND by a
// WAL fsync (when LogSync is set). A batch that fails (backup dead,
// gap, divergence, epoch reject) fails every waiter whose record rode
// in it: commits surface kv.ErrUncertain (the record is in the local
// stream, its effects visible; whether it survives a failover depends
// on whether the batch landed — exactly a lost ack's contract), and
// prepares vote no and abort, emitting the owed decision record.
// Waiters never succeed on a record the backup did not apply, so "an
// acked write survives primary failure" holds unchanged while N
// concurrent writers share each round trip and fsync. Abort decisions
// remain fire-and-forget, as before. Throughput under concurrency now
// scales with the batch depth instead of serializing on one
// round-trip-plus-fsync per record; BenchmarkReplicationConcurrent
// and BENCH_replication.json track it.
//
// One tradeoff is deliberate and worth stating precisely: effects
// become VISIBLE at emission (under repMu), before the batch is
// acknowledged or fsynced. The guarantee is therefore two-tiered.
// VISIBLE-AT-EMISSION: a default read on the primary observes every
// record emitted so far — including commits still awaiting their
// quorum ack — so it can observe a write whose writer later gets
// ErrUncertain and which a failover then erases (the classic
// group-commit visibility window; it exists only while the primary is
// alive but failing its mirror). DURABLE-AT-WATERMARK: everything at
// or below the durability watermark is held by a majority and fsynced
// when LogSync demands it, so no failover can erase it. The DURABLE
// READ mode (ReadReq.Durable on the wire, kvclient's DurableReads
// option) is what closes the window: the server blocks such a read
// until the durability frontier passes its snapshot (Store.WaitDurable),
// so the response reflects quorum-durable state only. Default primary
// reads keep the window; follower reads never had it — a backup only
// serves at or below its frontier (see the follower-reads section).
//
// # Two-phase commit outcome recovery
//
// The replication stream carries three record kinds (kv.ReplRecord),
// not just whole commits, so in-flight two-phase transactions survive
// a primary failure:
//
//   - RecCommit: a whole committed transaction (one-shot fast commits,
//     and commits whose prepare predates replication).
//   - RecPrepare: a participant's phase-one vote — the staged ops and
//     write locks, replicated before the yes vote is returned. A
//     promoted backup therefore reconstructs the prepared-transaction
//     table instead of starting empty, and a MethodSync resync carries
//     prepared state to a re-formed backup.
//   - RecDecide: the phase-two outcome (commit at a timestamp, or
//     abort) for a previously replicated prepare.
//
// Decisions are remembered in a bounded, time-evicted decided-
// transaction table, making Commit/Abort idempotent: a coordinator
// whose phase-two acknowledgment was lost re-sends the decision — to
// the same server or to a promoted backup — and gets the recorded
// outcome instead of "unknown transaction". Prepares whose decision
// never arrives are handled by SweepOrphans under the epoch rules
// below; a decided transaction is never swept.
//
// # Epochs and leases
//
// A replication group carries a monotonically increasing configuration
// **epoch** with a membership list (acting primary first). Every
// membership change — promoting the backup after a failure, re-forming
// the pair with a fresh member — is an explicit epoch bump, recorded
// as a RecEpoch record in the same totally ordered replication stream
// as data (so it is mirrored, resynced, and WAL-persisted like any
// commit, and a replayed or resynced member finishes at the epoch the
// stream left it at). Every other stream record is stamped with the
// epoch in effect when it was emitted, and every client request is
// stamped with the epoch the client believes current.
//
// The serving rules (Store.CheckClientOp, enforced at the RPC
// boundary):
//
//   - Only the current epoch's primary serves client operations; a
//     backup answers every data request with a typed kv.ErrWrongEpoch
//     redirect naming the current epoch and membership. The PR 1
//     failure mode — a client blip sending retries to the backup while
//     the primary lives — is therefore prevented, not detected: the
//     stray write never lands.
//   - A multi-member primary serves only while it holds a **lease**:
//     every mirror ack and MethodLease renewal from the backup extends
//     its authority to send-time + Config.LeaseDuration, and the
//     backup symmetrically promises (its grant, recorded atomically
//     with accepting the record or renewal and measured from receipt,
//     so the grant always outlasts the authority) not to accept a
//     promotion before the grant expires. A promotion therefore waits
//     out the grant (Server.Promote without force), which guarantees a
//     partitioned stale primary stopped acknowledging reads AND writes
//     before the new epoch acknowledges its first one. Orchestrators
//     that killed the primary themselves may force-promote — fencing
//     by certainty instead of clocks. A sole-member primary needs no
//     lease (no one else could be promoted).
//   - A live mirror record stamped with an older epoch than the
//     replica's is rejected (the sender is a deposed primary); the
//     rejection carries the new configuration, deposing it gracefully.
//   - An ErrWrongEpoch rejection guarantees the request was NOT
//     executed, so clients retry it safely after adopting the carried
//     membership — including non-idempotent prepares and commits.
//
// Epochs close the PR 2 orphan-abort gap: in an epoch-bearing group,
// SweepOrphans may TTL-abort a prepare only when the epoch under which
// it was accepted is provably superseded (and the TTL, restarted at
// the bump, has given the coordinator a redirect window). A prepare
// whose epoch is still current is never unilaterally aborted — the
// abort-after-decided-commit window is gone; within a stable epoch 2PC
// blocks, safely, and an operator can bump the epoch to reap a
// provably dead coordinator's locks. Legacy (epoch-0) stores — an
// unreplicated server, or a hand-wired SetMirror pair — keep all
// pre-epoch behavior, including the availability-first TTL abort.
//
// # Quorum groups
//
// The mirror pair generalizes to replication factors above 2: a
// primary fans each batch out to N backup members in parallel (one
// member loop, queue, and connection per member — pipeline.go), and
// the durability watermark becomes "a MAJORITY of members have
// acknowledged the sequence number, and it is fsynced locally when
// LogSync demands it". With rf = 3 that means one backup ack
// suffices, so a minority of backups being down, slow, or broken
// stalls nothing: writes keep flowing at the speed of the fastest
// majority, and a broken member's past acks still count toward
// watermarks they already covered. Only when fewer live members
// remain than a majority requires does the pipeline fail fast,
// surfacing kv.ErrUncertain to in-flight commits instead of hanging.
//
// The lease generalizes the same way: a multi-member primary serves
// while it holds unexpired grants from a MAJORITY of its backups
// (every member's batch ack and lease renewal is a grant), and a
// promotion without force waits out the grants it observed. The two
// majorities intersect, which is the whole safety argument: any
// acknowledged write lives on at least one member of any electing
// majority, and the member chosen by promotion is the MOST CAUGHT-UP
// live member — the orchestrator freezes every live member
// (BeginPromotion), compares stream heads, promotes the maximum, and
// re-joins the rest as backups of the winner (cluster.promote). A
// member whose head is behind the winner's syncs the missing tail; a
// member whose history DIVERGED — it holds records at positions the
// winner's stream stamped with a different epoch, the classic
// isolated-old-primary-with-stranded-writes case — is rejected with
// kv.ErrDiverged at every splice point and re-joins by state transfer
// only:
//
//   - the sync source compares the requester's stream epoch against
//     the epoch its own log held at the requested position;
//   - every applied record's epoch stamp must equal the epoch the
//     replica's stream installed at that position (the per-record
//     splice guard), so stranded old-epoch records can never be
//     overlaid by a successor's re-stamped history, nor vice versa;
//   - a record arriving BELOW the replica's head is acknowledged as a
//     duplicate only if the retained log proves identity (same kind,
//     epoch, transaction, timestamp at that position) — the
//     attach-before-sync overlap ships some records twice by design,
//     and content, not timing, is what tells a benign duplicate from
//     a split brain.
//
// # Follower reads and the durability watermark
//
// Backups serve snapshot reads, so read capacity scales with the
// replication factor instead of idling at 1/rf of it. The machinery
// is the durability FRONTIER: the highest commit timestamp t such
// that every committed version at or below t is applied locally AND
// quorum-durable. The pipeline tracks the prefix-max commit timestamp
// per stream position (pipeline.go's tsMark) and publishes the
// frontier as the durable prefix advances — on a primary from its own
// quorum and WAL watermarks, on a backup from the watermark the
// primary piggybacks on every mirror batch and lease renewal. A
// backup never treats its OWN stream position as durable: records it
// holds may have been acked by no one else, and a replica restarted
// from its WAL cannot know how far the group's quorum reached — its
// frontier is frozen until the current primary vouches afresh.
//
// A backup serves Read/ReadPart when the request's snapshot is at or
// below its frontier (Store.CheckClientRead); above it — or for any
// write — it answers with the usual ErrWrongEpoch redirect, so the
// client falls back to the primary instead of reading maybe-durable
// state (no silently stale data). Safety is two rules composed:
// (1) every commit with ts <= frontier is durable, by construction of
// the marks; (2) no commit with ts <= frontier can arrive later,
// because proposed timestamps are drawn from a clock that has
// observed every earlier record's timestamp, and a two-phase decision
// whose prepare sits below the watermark has that prepare's locks
// applied on the backup, where the Clock-SI read rule makes readers
// at or above the proposed timestamp wait the decision out. A
// follower read is therefore exactly a primary snapshot read at the
// same timestamp — minus the visibility window. kvclient pins each
// client's eligible read-only snapshot ops to one backup (staggered
// across clients, rotating on failure) and learns each group's
// frontier for free from the Ack piggyback (including the idle
// heartbeat ping) and from fast-commit and read responses; read-only
// transactions snapshot at the frontier a backup last REPORTED, so in
// steady state a follower read never arrives ahead of the backup's
// own watermark copy.
//
// Batched reads (MethodReadBatch) ride these rules unchanged: the
// batch carries ONE snapshot for its N object reads, so the epoch and
// frontier admission checks and the optional durable-read wait run
// once for the whole batch, and a replica that may serve one of the
// reads may serve them all. The per-item reads then take their
// per-shard locks exactly as N single Read/ReadPart calls would —
// including the Clock-SI wait on prepared transactions — so a batch
// answers precisely what N single reads at the same snapshot would
// have answered, in one round trip; the response piggybacks the
// serving replica's frontier like any read response.
//
// # Log truncation and snapshots
//
// The replication log that serves MethodSync resyncs is bounded. When
// it exceeds Config.ReplicationLogMaxRecords (or MaxBytes) the store
// CHECKPOINTS: it captures a consistent snapshot of its full state —
// every object's version history with conflict metadata, the prepared-
// and decided-transaction tables, the epoch and membership — tagged
// with the stream sequence number it covers, rotates the write-ahead
// log onto that snapshot (a restart replays snapshot + tail instead of
// the full history, and the file stays bounded by the checkpoint
// cadence), and truncates the in-memory log, advancing its base to the
// stream head. A primary enforces the bound inline in its emit-and-
// apply paths, so its log never exceeds the cap. A live-mirror backup
// defers routine truncation off the ack path (an O(state) checkpoint
// while the primary synchronously awaits the mirror ack could outlast
// the mirror timeout): a one-second server ticker bounds its overshoot
// to about a second of writes, with a hard inline ceiling at four
// times the cap so memory never rests on the ticker alone.
//
// Consistency of the capture comes from the stream lock: the native
// write paths hold repMu across a record's emission AND the
// application of its effects, so a snapshot taken under repMu always
// equals "every record below repSeq applied, none above" — the
// contract a resyncing replica needs. Prepares whose record has not
// entered the stream yet are skipped (their records arrive in the
// tail).
//
// A backup that asks to sync from a position below the truncated log's
// base gets SyncResp.TooOld and falls back to STATE TRANSFER
// (Server.SyncFrom does this automatically): it streams a chunked
// snapshot (MethodSnap), installs it — replacing its own stale state,
// which is a prefix of the source's — and resumes the normal log-tail
// sync from the snapshot's sequence number. This is what makes a
// late-joining or long-dead replica cost the current state's size
// rather than the primary's full write history, and it removes blocker
// (c) for replication factors above 2 (see ROADMAP). A backup that is
// AHEAD of its sync source is rejected with kv.ErrDiverged — an
// irreconcilable history must be re-formed, never papered over.
//
// # Invariants and linting
//
// The rules above lean on conventions no compiler checks, so the repo
// carries its own analyzer suite (internal/lint, run as
// `go run ./cmd/yesqlint ./...`, blocking in CI) that enforces them
// mechanically:
//
//   - repmublock: no blocking operation on a path holding repMu — no
//     channel waits, selects, time.Sleep, RPC calls, or fsyncs.
//     Blocking leaf functions are marked //yesqlint:blocking (e.g.
//     rpc.(*Client).Call, the wal's batched fsync append) and the
//     property propagates through same-package call chains. The few
//     deliberate bounded waits under repMu (the checkpoint drain, the
//     snapshot-install rotation) each carry a //yesqlint:allow with
//     the justification inline.
//   - lockorder: the store's mutexes nest in one global order —
//     repMu, then txMu, then epochMu, then snapMu, then dirMu.
//     Acquiring them in any other order (directly or via a
//     same-package call) is flagged.
//   - errsentinel: errors are classified by errors.Is/errors.As or by
//     the typed RPC code (rpc.AppError.Code, kv.WireErrorCode), never
//     by comparing message text. rpc.AppErrIs holds the single
//     sanctioned legacy-text fallback for pre-code peers.
//   - wirecodec: hand-rolled Encode/Decode pairs must read fields in
//     the exact order they were written, and optional
//     backward-compatible fields (guarded by Reader.Remaining) must
//     be trailing.
//   - timerloop: no per-iteration time.After/NewTimer allocation in
//     wait loops; hoist one reusable timer.
//
// Annotations: //yesqlint:blocking marks a leaf that blocks;
// //yesqlint:allow <analyzer> -- <reason> suppresses one finding (on
// the doc comment for a whole function, or on/above the line).
package kvserver

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"yesquel/internal/clock"
	"yesquel/internal/kv"
	"yesquel/internal/wire"
)

const numShards = 64

// Config tunes a Store. Zero values select defaults.
type Config struct {
	// MaxVersions caps the length of a version chain (default 64).
	MaxVersions int
	// RetentionMillis is how long superseded versions stay readable
	// (default 10000). Snapshots older than this may miss versions.
	RetentionMillis uint64
	// LockWaitTimeout bounds how long a read waits for a prepared
	// transaction to resolve (default 2s).
	LockWaitTimeout time.Duration
	// PrepareTTL bounds how long an undecided prepare may hold its
	// write locks (default 60s). A coordinator that dies between phase
	// one and phase two strands its participants' locks forever;
	// SweepOrphans unilaterally aborts local prepares older than the
	// TTL (and replicates the abort decision), never one that already
	// received a decision. The TTL must comfortably exceed a
	// coordinator's worst-case phase-two drive time: a participant that
	// times out and aborts after the coordinator decided commit breaks
	// atomicity — the blocking weakness 2PC has without leases/epochs.
	PrepareTTL time.Duration
	// DecidedTTL is how long phase-two outcomes stay in the decided-
	// transaction table (default 60s), which makes Commit/Abort
	// idempotent: a retried decision for an already-decided transaction
	// is acknowledged with the recorded outcome instead of rejected.
	DecidedTTL time.Duration
	// LogPath enables the write-ahead log: committed operations are
	// appended there and replayed by OpenStore after a restart. Empty
	// disables durability (pure in-memory server).
	LogPath string
	// LogSync fsyncs the log on every commit. Off, the log is still
	// written in commit order but a host crash can lose the tail.
	LogSync bool
	// ReplicationLog keeps the stream's records in memory so the store
	// can serve MethodSync resyncs to a fresh or restarted backup.
	// Enable it on every member of a replication group. Without a
	// truncation policy (below) the log grows without bound.
	ReplicationLog bool
	// ReplicationLogMaxRecords bounds the in-memory replication log: when
	// it exceeds this many records the store checkpoints — captures a
	// state snapshot at the stream head, rotates the write-ahead log onto
	// it, and truncates the log — so a backup that falls behind the
	// retained tail catches up by snapshot install (MethodSnap) + tail
	// instead of a full-history replay. 0 = unbounded (legacy behavior).
	ReplicationLogMaxRecords int
	// ReplicationLogMaxBytes is the same policy measured in estimated
	// record bytes. Either limit triggers a checkpoint. 0 = unbounded.
	ReplicationLogMaxBytes int
	// SnapshotChunkBytes sizes MethodSnap transfer chunks (default 1 MiB,
	// comfortably under the wire frame limit). Tests shrink it to force
	// multi-chunk transfers.
	SnapshotChunkBytes int
	// LeaseDuration is how long a primary's authority to serve lasts
	// after its last acknowledgment from the backup (default 2s). Every
	// mirror ack and lease-renewal ack extends the primary's lease; the
	// backup symmetrically promises not to accept a promotion until the
	// grant expires. Shorter leases mean faster failover but less
	// tolerance for mirror-path hiccups. Only meaningful once the group
	// carries an epoch (InstallEpoch) with more than one member.
	LeaseDuration time.Duration
	// MirrorBatchMaxRecords caps how many stream records one mirror
	// batch RPC carries (default 256; batches are also byte-capped
	// below the wire frame limit). Larger batches amortize the round
	// trip further at the cost of per-batch latency under bursts.
	MirrorBatchMaxRecords int
	// GroupCommitInterval is how long the replication pipeline waits
	// after waking before it flushes, letting a batch build (default 0:
	// flush as soon as the flusher is free — a lone writer pays no
	// added latency, and concurrent writers still coalesce into
	// whatever accumulated during the previous batch's round trip).
	GroupCommitInterval time.Duration
	// MirrorSendDelay inserts a fixed wall-clock delay before every
	// mirror batch send, emulating a slow replication link or storage
	// device. Combined with MirrorBatchMaxRecords it turns a group's
	// replication pipeline into a bounded-capacity resource
	// (MaxRecords/Delay records per second per member), which the
	// elastic-sharding drills and benchmarks use to demonstrate
	// capacity scaling on hosts whose core count cannot — on a
	// one-core CI box a purely in-memory pipeline measures CPU, and
	// added groups cannot add CPU. 0 (the default) disables it.
	MirrorSendDelay time.Duration
	// NoFollowerReads disables serving snapshot reads from this store
	// while it is a BACKUP (CheckClientRead then redirects every read
	// to the primary, watermark or not). Off by default: a backup
	// serves reads at or below its durability frontier. The yesqueld
	// -follower-reads=false flag sets it.
	NoFollowerReads bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxVersions == 0 {
		out.MaxVersions = 64
	}
	if out.RetentionMillis == 0 {
		out.RetentionMillis = 10000
	}
	if out.LockWaitTimeout == 0 {
		out.LockWaitTimeout = 2 * time.Second
	}
	if out.PrepareTTL == 0 {
		out.PrepareTTL = 60 * time.Second
	}
	if out.DecidedTTL == 0 {
		out.DecidedTTL = 60 * time.Second
	}
	if out.LeaseDuration == 0 {
		out.LeaseDuration = 2 * time.Second
	}
	if out.SnapshotChunkBytes == 0 {
		out.SnapshotChunkBytes = 1 << 20
	}
	if out.MirrorBatchMaxRecords == 0 {
		out.MirrorBatchMaxRecords = 256
	}
	// The durability wait times out at replWaitTimeout; an interval at
	// or above it would fail every commit while the batch lands fine
	// moments later. Clamp well below, where coalescing gains flattened
	// out long ago.
	if out.GroupCommitInterval > maxGroupCommitInterval {
		out.GroupCommitInterval = maxGroupCommitInterval
	}
	return out
}

// maxGroupCommitInterval caps the configured coalescing delay far
// below the pipeline's durability-wait timeout.
const maxGroupCommitInterval = time.Second

// Stats counts store activity; read with Snapshot. Commits counts
// two-phase (prepare/commit) transactions and FastCommits one-shot
// transactions; the two are disjoint, so Commits+FastCommits is the
// total number of logical commits.
type Stats struct {
	Reads        atomic.Uint64
	ReadWaits    atomic.Uint64
	Prepares     atomic.Uint64
	Commits      atomic.Uint64
	FastCommits  atomic.Uint64
	Aborts       atomic.Uint64
	OrphanAborts atomic.Uint64
	Conflicts    atomic.Uint64
	GCVersions   atomic.Uint64
	// EpochBumps counts configuration changes installed on this member
	// (promotions, group re-formations); WrongEpochRejects counts
	// requests and stream records turned away by the epoch/lease
	// discipline — a nonzero value after a failover is the split-brain
	// prevention working, a steadily climbing one means a stale client
	// or deposed primary keeps knocking.
	EpochBumps        atomic.Uint64
	WrongEpochRejects atomic.Uint64
	// Checkpoints counts snapshot checkpoints (log truncations + WAL
	// rotations); LogRecordsTruncated the replication-log records they
	// dropped. CheckpointFailures counts WAL rotations that failed —
	// the in-memory log bound still holds (truncation proceeds
	// regardless), but restart-replay cost is no longer bounded and
	// the disk needs attention. SnapshotsServed counts state-transfer
	// snapshots captured for a resyncing peer, SnapshotsInstalled
	// snapshots this member installed in place of a full-history
	// replay.
	Checkpoints         atomic.Uint64
	CheckpointFailures  atomic.Uint64
	LogRecordsTruncated atomic.Uint64
	SnapshotsServed     atomic.Uint64
	SnapshotsInstalled  atomic.Uint64
	// MirrorBatches counts group-commit batch RPCs sent to the backup;
	// MirrorBatchRecords the stream records they carried, so
	// MirrorBatchRecords/MirrorBatches is the achieved batch depth.
	// WALSyncs counts write-ahead-log fsyncs on the record path (group
	// commit amortizes them: WALSyncs/(Commits+FastCommits) < 1 under
	// concurrent load). WALFailures counts batched WAL appends that
	// failed — with LogSync the affected committers saw the error; off
	// it, durability of those records silently degraded and the disk
	// needs attention.
	MirrorBatches      atomic.Uint64
	MirrorBatchRecords atomic.Uint64
	WALSyncs           atomic.Uint64
	WALFailures        atomic.Uint64
	// FollowerReads counts snapshot reads this member served as a
	// backup under the durability-frontier gate (zero on a primary).
	// FollowerReadWaits counts the subset that arrived ahead of this
	// member's watermark copy and parked for the piggyback race to
	// close — a climbing share of FollowerReads means clients outrun
	// the mirror stream. DurableReadWaits counts durable-mode reads
	// that found the frontier below their snapshot and had to wait out
	// the watermark — a climbing value means readers routinely outrun
	// durability and the mirror/fsync path is the read path's
	// bottleneck.
	FollowerReads     atomic.Uint64
	FollowerReadWaits atomic.Uint64
	DurableReadWaits  atomic.Uint64
	// WrongSlotRejects counts requests turned away by the slot-directory
	// fence — a stale client routing to a group that no longer owns the
	// OID's route. A burst during a migration cutover is the fence
	// working; a steadily climbing value means some client never adopts
	// the new directory. MigratedVersions counts object versions this
	// store ingested as a migration DESTINATION (bulk capture plus live
	// tail).
	WrongSlotRejects atomic.Uint64
	MigratedVersions atomic.Uint64
}

// StatsSnapshot is a plain copy of the counters.
type StatsSnapshot struct {
	Reads, ReadWaits, Prepares, Commits, FastCommits, Aborts, OrphanAborts, Conflicts, GCVersions uint64
	EpochBumps, WrongEpochRejects                                                                 uint64
	Checkpoints, CheckpointFailures, LogRecordsTruncated, SnapshotsServed, SnapshotsInstalled     uint64
	MirrorBatches, MirrorBatchRecords, WALSyncs, WALFailures                                      uint64
	FollowerReads, FollowerReadWaits, DurableReadWaits                                            uint64
	WrongSlotRejects, MigratedVersions                                                            uint64
}

type version struct {
	ts  clock.Timestamp
	val *kv.Value // nil = tombstone
	// Conflict metadata: structural commits (full writes, fence
	// changes, range deletes) conflict with every concurrent write;
	// commutative commits record the cell/attr keys they touched and
	// conflict only with overlapping touches.
	structural bool
	touched    map[string]struct{}
}

// classifyOps computes the conflict metadata for a set of ops on one
// object.
func classifyOps(ops []*kv.Op) (structural bool, touched map[string]struct{}) {
	touched = make(map[string]struct{}, len(ops))
	for _, op := range ops {
		key, ok := op.CommutativeTouch()
		if !ok {
			return true, nil
		}
		touched[string(key)] = struct{}{}
	}
	return false, touched
}

type lockState struct {
	txid     uint64
	proposed clock.Timestamp
	ops      []*kv.Op
	done     chan struct{} // closed when the transaction resolves
}

type object struct {
	versions []version // ascending by ts; values are immutable once stored
	lock     *lockState
	// gcFloor is the highest timestamp whose version was garbage-
	// collected; conflict checks for snapshots at or below it must be
	// conservative because the trimmed history is unknown.
	gcFloor clock.Timestamp
}

type shard struct {
	mu   sync.Mutex
	objs map[kv.OID]*object
}

type txRecord struct {
	oids []kv.OID
	// replicated: a RecPrepare record for this transaction is in the
	// replication stream, so the decision (commit or abort) must be
	// replicated too.
	replicated bool
	// viaStream: the prepare was staged by a replicated record rather
	// than a native Prepare call. In legacy (epoch-0) groups SweepOrphans
	// gives such prepares a longer leash — the primary normally delivers
	// the decision; only a promoted backup should clean them up itself.
	viaStream bool
	// epoch is the group epoch under which the prepare was accepted. In
	// an epoch-bearing group, SweepOrphans may only TTL-abort a prepare
	// whose epoch has been superseded; while it is current the
	// coordinator may still legitimately drive a decided commit.
	epoch uint64
	// preparedAt drives the orphan-prepare TTL. An epoch bump resets it
	// for prepares of older epochs, so a coordinator gets a full TTL
	// after a failover to redirect its decision.
	preparedAt time.Time
}

// decision is a resolved transaction outcome, kept in the decided-
// transaction table for DecidedTTL so retried phase-two requests are
// answered with the recorded outcome instead of "unknown tx".
type decision struct {
	commit   bool
	commitTS clock.Timestamp
	// replSeq is 1 + the stream sequence number of the record that
	// carried this outcome (0 = none). A retried commit is acknowledged
	// only after that record clears the durability watermark: acking a
	// duplicate for a record the backup never applied would break the
	// acked-writes-survive-failover guarantee the first ack refused to
	// break.
	replSeq uint64
}

// decidedMax bounds the decided-transaction table; beyond it the
// oldest entries are evicted early (before their TTL).
const decidedMax = 1 << 16

// streamOrphanGrace multiplies PrepareTTL for stream-staged prepares:
// while the pair is healthy the primary's own TTL abort arrives over
// the stream well before the backup's local timer fires.
const streamOrphanGrace = 4

// Store is the storage engine of one server. It is safe for concurrent
// use and may also be embedded in-process (the centralized-SQL baseline
// does this).
type Store struct {
	cfg   Config
	clock *clock.HLC
	shard [numShards]shard

	// txMu guards the prepared-transaction table and the decided-
	// transaction table (with its FIFO eviction queue).
	txMu     sync.Mutex
	txs      map[uint64]*txRecord
	decided  map[uint64]decision
	decidedQ []decidedEntry

	wal *wal

	// repMu orders the replication stream: sequence assignment, the
	// synchronous mirror call, the replication log, and the write-ahead
	// log all happen under it, so stream order, log order, and
	// per-object version order agree on every replica. Lock order is
	// repMu before shard mutexes.
	repMu sync.Mutex
	// repSeq is the next sequence number: the number of stream records
	// (commits, prepares, decisions) this store has applied, natively
	// or replicated.
	repSeq uint64
	// commitLog holds the stream's retained tail when cfg.ReplicationLog
	// is set: commitLog[i] is the record at sequence logBase+i. A
	// snapshot checkpoint truncates the log and advances logBase to the
	// stream head; resyncs below logBase are served by state transfer
	// (snapshot + tail) instead of record replay.
	commitLog []kv.ReplRecord
	// logBase is the sequence number of commitLog[0] (records below it
	// were truncated at the last checkpoint).
	logBase uint64
	// commitLogBytes is the estimated wire size of the retained log,
	// maintained incrementally for the ReplicationLogMaxBytes policy.
	commitLogBytes int
	// pending buffers replicated records that arrived ahead of repSeq
	// while a resync is filling in the history below them.
	pending   map[uint64]kv.ReplRecord
	resyncing bool
	// streamEpoch is the epoch installed BY THE STREAM at or below the
	// current head: it advances only when a RecEpoch record is emitted
	// or applied at its position (or a snapshot install seeds it), never
	// by an out-of-band AdoptEpoch. That distinction is the splice
	// guard: a deposed primary adopts the successor epoch from a
	// rejection, but its STREAM still ends in the old epoch's records —
	// so comparing incoming record stamps against streamEpoch (not
	// epoch) still exposes the divergence. Every record applied at the
	// head must be stamped with exactly streamEpoch; any other stamp
	// means the record belongs to a history this replica never
	// installed, rejected with kv.ErrDiverged. Guarded by repMu.
	streamEpoch uint64

	// pipe is the group-commit replication pipeline: emitted records
	// are queued here and a flusher goroutine batches them into mirror
	// RPCs and WAL appends; committers wait on its durability watermark
	// (see pipeline.go). hasMirror mirrors pipe.mirrorOn for lock-free
	// reads on the emit paths.
	pipe      replPipe
	hasMirror atomic.Bool
	// ckptBusy single-flights asynchronous checkpoint rotations: while
	// one is encoding/rotating off-lock, further policy triggers only
	// truncate in memory (the bound holds; the WAL catches up at the
	// next checkpoint).
	ckptBusy atomic.Bool

	// epochMu guards the replication-group configuration and lease
	// clocks. Lock order: repMu (and txMu) before epochMu; epochMu
	// holders never take another store mutex.
	epochMu sync.Mutex
	// epoch is the group's configuration number; 0 means the store
	// predates epoch discipline (legacy mode: no role or lease checks).
	epoch uint64
	// epochMembers is the current membership, acting primary first.
	epochMembers []string
	// self is this member's advertised address (Server.Listen sets it);
	// the role follows from its position in epochMembers.
	self string
	// memberLease is, on a primary, the end of its authority as granted
	// by each backup member (keyed by the member's address): each mirror
	// or lease-renewal ack from that member extends its entry to
	// send-time + LeaseDuration. The primary serves only while a
	// MAJORITY of the group believes in it — its own vote plus
	// unexpired grants from at least len(epochMembers)/2 backups (the
	// quorum lease; a pair reduces to the old rule, one backup grant).
	// grantUntil is, on a backup, the matching promise: no promotion is
	// accepted before it. Each entry is measured from before the
	// renewal was sent and grantUntil from after it was received, so
	// grantUntil >= the granted entry always — the primary stops
	// serving before enough backups may vote it out.
	memberLease map[string]time.Time
	grantUntil  time.Time
	// promoting freezes the grant clock: once a promotion has begun,
	// no mirror record or lease renewal is accepted (and therefore no
	// ack can extend the old primary's authority), so the grant-expiry
	// wait cannot be re-armed between the wait and the epoch install.
	promoting bool

	// snapMu guards the state-transfer sessions: encoded snapshots being
	// served chunk-by-chunk to resyncing peers (see ServeSnapshotChunk),
	// plus the single-flight registry of captures in progress (keyed by
	// stream head; the channel closes when that capture's session is
	// registered). It nests inside nothing — holders take no other
	// store mutex.
	snapMu        sync.Mutex
	snapSessions  map[uint64]*snapSession
	snapLastID    uint64
	snapCapturing map[uint64]chan struct{}

	// dirMu guards the slot directory: the versioned slot→group map
	// this store checks client requests against (see "Slot migration
	// and the directory" in the package comment), plus this store's own
	// group index within it. dirMu is the INNERMOST store mutex — the
	// write-path fence check takes it while holding repMu (so a
	// directory install and a record emission are totally ordered), and
	// dirMu holders take no other mutex.
	dirMu sync.Mutex
	// dir is the installed directory; nil until the cluster installs
	// one (legacy modulo routing — no slot checks, no piggybacks).
	dir *kv.Directory
	// dirGroup is the index in dir.Groups of the group this store
	// belongs to; dir.Routes entries equal to it are the routes this
	// store serves.
	dirGroup uint32
	// routeLoad counts client operations per directory route — the
	// rebalancer's donor-selection signal. Sized len(dir.Routes) at the
	// first install; the route count never changes after that.
	routeLoad []atomic.Uint64

	stats Stats
}

// decidedEntry is one slot of the decided table's FIFO eviction queue.
type decidedEntry struct {
	txid uint64
	at   time.Time
}

// ReplSeq returns the next sequence number in the replication stream
// (equivalently: how many commits this store has applied).
func (s *Store) ReplSeq() uint64 {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	return s.repSeq
}

// Member roles derived from the current epoch's membership.
const (
	// RoleLegacy: the store carries no epoch (epoch 0); pre-epoch
	// behavior applies — any member serves, no leases, TTL orphan sweep.
	RoleLegacy = "legacy"
	// RolePrimary: first member of the current epoch; serves client
	// operations while its lease is valid.
	RolePrimary = "primary"
	// RoleBackup: a non-primary member; applies the replication stream
	// and grants the primary's lease, but rejects client operations.
	RoleBackup = "backup"
	// RoleRemoved: not in the current membership (a deposed primary that
	// learned of its successor, or a member whose address changed);
	// rejects everything with a redirect.
	RoleRemoved = "removed"
)

// SetSelf records this member's advertised address; the epoch role
// (primary / backup / removed) follows from its position in the
// current membership. Server.Listen calls it with the bound address.
func (s *Store) SetSelf(addr string) {
	s.epochMu.Lock()
	s.self = addr
	s.epochMu.Unlock()
}

// Epoch returns the store's current replication-group epoch (0 =
// legacy, no epoch discipline).
func (s *Store) Epoch() uint64 {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.epoch
}

// StreamEpoch returns the epoch this store's replication stream had
// installed at its head — unlike Epoch it never reflects an
// out-of-band AdoptEpoch, only RecEpoch records and snapshot installs.
// A resync request carries it so the source can detect a diverged-but-
// behind history (see SyncRecords).
func (s *Store) StreamEpoch() uint64 {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	return s.streamEpoch
}

// Members returns a copy of the current membership, primary first.
func (s *Store) Members() []string {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return append([]string(nil), s.epochMembers...)
}

// Role reports this member's role under the current epoch.
func (s *Store) Role() string {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.roleLocked()
}

func (s *Store) roleLocked() string {
	if s.epoch == 0 {
		return RoleLegacy
	}
	if len(s.epochMembers) > 0 && s.epochMembers[0] == s.self {
		return RolePrimary
	}
	for _, m := range s.epochMembers {
		if m == s.self {
			return RoleBackup
		}
	}
	return RoleRemoved
}

// LeaseValid reports whether this member currently holds the authority
// a lease confers: true for legacy stores, sole members, and backups
// (their authority questions are answered by role, not lease), and for
// a multi-member primary only while a majority of the group backs it —
// its own vote plus unexpired grants from at least half the remaining
// members (the quorum lease; a pair needs its one backup's grant).
func (s *Store) LeaseValid() bool {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.leaseValidLocked(time.Now())
}

// leaseValidLocked implements LeaseValid. Caller holds epochMu.
func (s *Store) leaseValidLocked(now time.Time) bool {
	if s.epoch == 0 || len(s.epochMembers) <= 1 || s.roleLocked() != RolePrimary {
		return true
	}
	need := len(s.epochMembers) / 2 // backup grants completing a majority with the primary's own vote
	granted := 0
	for _, m := range s.epochMembers[1:] {
		if now.Before(s.memberLease[m]) {
			granted++
		}
	}
	return granted >= need
}

// ExtendLease advances the serving authority granted by one backup
// member to until (never backwards). The caller measures until from
// *before* the renewal request was sent, so that member's matching
// grant always outlasts it.
func (s *Store) ExtendLease(member string, until time.Time) {
	s.epochMu.Lock()
	if s.memberLease == nil {
		s.memberLease = make(map[string]time.Time)
	}
	if until.After(s.memberLease[member]) {
		s.memberLease[member] = until
	}
	s.epochMu.Unlock()
}

// GrantExpiry returns when the lease this member last granted runs
// out; a non-forced promotion must wait until then, which is what
// guarantees the deposed primary stopped serving first.
func (s *Store) GrantExpiry() time.Time {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.grantUntil
}

// BeginPromotion freezes this member's grant clock: from here until
// the next epoch installs (or AbandonPromotion), every mirror record
// and lease renewal is refused, so no in-flight ack can extend the old
// primary's authority past the grant expiry the promotion waits out.
func (s *Store) BeginPromotion() {
	s.epochMu.Lock()
	s.promoting = true
	s.epochMu.Unlock()
}

// AbandonPromotion lifts the BeginPromotion freeze without an epoch
// change (the promotion failed); the pair resumes as before.
func (s *Store) AbandonPromotion() {
	s.epochMu.Lock()
	s.promoting = false
	s.epochMu.Unlock()
}

// RenewLeaseGrant is the backup half of MethodLease: it extends the
// grant for a renewal carrying the current epoch, and refuses — with
// the typed redirect — a renewal from another epoch or one arriving
// after a promotion began (granting then would re-arm the lease the
// promotion is waiting out).
func (s *Store) RenewLeaseGrant(reqEpoch uint64) error {
	until := time.Now().Add(s.cfg.LeaseDuration)
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	if s.promoting || (s.epoch != 0 && reqEpoch != s.epoch) {
		return s.wrongEpochLocked()
	}
	if until.After(s.grantUntil) {
		s.grantUntil = until
	}
	return nil
}

// wrongEpochLocked builds the typed rejection carrying the current
// configuration. Caller holds epochMu.
func (s *Store) wrongEpochLocked() *kv.WrongEpochError {
	s.stats.WrongEpochRejects.Add(1)
	return &kv.WrongEpochError{Epoch: s.epoch, Members: append([]string(nil), s.epochMembers...)}
}

// CheckClientOp gates a client operation (read or write) behind the
// epoch discipline: only the current epoch's primary serves, only
// while its lease is valid, and only for requests stamped with the
// current epoch (or 0, an epoch-unaware client that will learn the
// configuration from the response's piggyback). Every rejection is a
// *WrongEpochError carrying the current epoch and membership, and
// guarantees the operation was not executed. Legacy (epoch-0) stores
// accept everything, preserving pre-epoch behavior for unreplicated
// servers and hand-wired mirror pairs.
func (s *Store) CheckClientOp(reqEpoch uint64) error {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	if s.epoch == 0 {
		return nil
	}
	if s.roleLocked() != RolePrimary {
		return s.wrongEpochLocked()
	}
	if reqEpoch != 0 && reqEpoch != s.epoch {
		return s.wrongEpochLocked()
	}
	if !s.leaseValidLocked(time.Now()) {
		// Quorum lease lost: a majority of the group may already have
		// promoted a successor and be acknowledging writes under a new
		// epoch. Serving anything — even a read — could contradict it.
		return s.wrongEpochLocked()
	}
	return nil
}

// CheckClientRead gates a snapshot READ behind the epoch discipline,
// relaxed for backups: the primary serves any read under the usual
// CheckClientOp rules, and a BACKUP serves a read whose snapshot is at
// or below its durability frontier — everything such a read can
// observe is applied here and quorum-durable, so the answer is exactly
// what the primary would give, and no failover can erase it. A backup
// needs no lease for this (durable snapshot data is valid forever),
// but the request's epoch must still match: a stale-epoch client is
// redirected so it learns the membership before trusting any replica.
// A read above the frontier is refused with the same typed redirect —
// the client falls back to the primary rather than reading
// maybe-durable state. Writes always go through CheckClientOp.
func (s *Store) CheckClientRead(reqEpoch uint64, snap clock.Timestamp) error {
	s.epochMu.Lock()
	if s.epoch == 0 {
		s.epochMu.Unlock()
		return nil
	}
	role := s.roleLocked()
	if role != RoleBackup || s.cfg.NoFollowerReads {
		s.epochMu.Unlock()
		return s.CheckClientOp(reqEpoch)
	}
	if reqEpoch != 0 && reqEpoch != s.epoch {
		defer s.epochMu.Unlock()
		return s.wrongEpochLocked()
	}
	s.epochMu.Unlock()
	if snap > s.DurableFrontier() {
		s.stats.FollowerReadWaits.Add(1)
		if !s.waitFrontierBounded(snap, followerReadPatience) {
			s.epochMu.Lock()
			defer s.epochMu.Unlock()
			return s.wrongEpochLocked()
		}
	}
	s.stats.FollowerReads.Add(1)
	return nil
}

// followerReadPatience bounds how long a backup holds a read whose
// snapshot is slightly above its durability frontier before redirecting
// it to the primary. The gap is a propagation race: the client learned
// the frontier from the primary's latest ack, while this backup's copy
// of the watermark rides the NEXT mirror batch or lease renewal. Under
// write load that batch arrives within a round trip — far cheaper to
// absorb here than to burn a redirect plus a primary round trip — and
// when the group is idle the client's frontier equals ours and no wait
// happens at all.
const followerReadPatience = 5 * time.Millisecond

// waitFrontierBounded parks until the durability frontier reaches snap
// or the patience budget runs out, reporting whether it got there. The
// wait is event-driven — woken by the frontier advance itself — so a
// read held on the piggyback race resumes the moment the mirror batch
// lands rather than a sleep quantum later.
func (s *Store) waitFrontierBounded(snap clock.Timestamp, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		// Channel before check: an advance between the two is then a
		// closed channel, never a lost wakeup.
		ch := s.pipe.frontierChanged()
		if snap <= s.DurableFrontier() {
			return true
		}
		select {
		case <-ch:
		case <-timer.C:
			return snap <= s.DurableFrontier()
		}
	}
}

// WaitDurable blocks until the durability frontier passes snap, so a
// read at snap afterwards observes only quorum-durable writes — the
// DurableReads mode. Observing snap into the clock FIRST is what makes
// the subsequent watermark wait sufficient: any commit proposed after
// the observation lands strictly above snap (the same Clock-SI rule
// Read relies on), so waiting out the records already emitted covers
// everything a read at snap could ever see. On an idle store the wait
// is the in-flight batch's round trip; the fast path is one atomic
// load.
func (s *Store) WaitDurable(snap clock.Timestamp) error {
	if s.DurableFrontier() >= snap {
		return nil
	}
	s.clock.Observe(snap)
	s.repMu.Lock()
	head := s.repSeq
	s.repMu.Unlock()
	if s.DurableFrontier() >= snap || head == 0 {
		return nil
	}
	s.stats.DurableReadWaits.Add(1)
	return s.waitReplicated(head - 1)
}

// InstallEpoch moves the group to a new configuration: the epoch must
// exceed the current one, and the change is a RecEpoch record in the
// replication stream — mirrored to the backup (if attached), appended
// to the replication and write-ahead logs — so the whole group agrees
// on the configuration history in stream order. The emission and
// installation happen under the stream lock, so no record is ever
// stamped with a configuration that was already superseded when it
// entered the stream; InstallEpoch returns only once the record has
// cleared the durability watermark (the backup's ack of the RecEpoch
// batch seeds the new primary's first lease). A replication failure
// leaves the epoch installed locally — the configuration change is
// real — and reports it, so the caller knows the backup has not
// acknowledged the new configuration.
func (s *Store) InstallEpoch(newEpoch uint64, members []string) error {
	s.repMu.Lock()
	s.epochMu.Lock()
	cur := s.epoch
	s.epochMu.Unlock()
	if newEpoch <= cur {
		s.repMu.Unlock()
		return fmt.Errorf("kvserver: epoch %d does not supersede current epoch %d", newEpoch, cur)
	}
	rec := kv.ReplRecord{Kind: kv.RecEpoch, Epoch: newEpoch, Members: append([]string(nil), members...)}
	seq := s.emitLocked(rec)
	s.installEpochState(newEpoch, rec.Members)
	s.maybeCheckpointLocked()
	s.repMu.Unlock()
	if err := s.waitReplicated(seq); err != nil {
		return fmt.Errorf("kvserver: replicating epoch %d: %w", newEpoch, err)
	}
	return nil
}

// AdoptEpoch installs a configuration this member learned out-of-band
// (a deposed primary told of its successor via an ErrWrongEpoch
// rejection). Unlike InstallEpoch it emits no stream record: this
// member is not authoritative for the new epoch, it only needs to stop
// serving the old one and redirect clients. No-op unless newEpoch is
// newer.
func (s *Store) AdoptEpoch(newEpoch uint64, members []string) {
	s.installEpochState(newEpoch, append([]string(nil), members...))
}

// installEpochState applies a configuration change to the in-memory
// epoch state and restarts the orphan TTL for prepares of superseded
// epochs (the coordinator gets a full TTL after a failover to redirect
// its decision before the sweep may reap them). The TTL reset runs
// BEFORE the new epoch is published: a concurrent SweepOrphans that
// already read the new epoch could otherwise win the race for txMu and
// reap a just-superseded prepare with zero post-bump grace. The
// install itself re-checks monotonicity under epochMu — callers'
// own checks run under different locks (or none: AdoptEpoch races the
// stream), and the epoch must never move backwards.
func (s *Store) installEpochState(newEpoch uint64, members []string) bool {
	now := time.Now()
	s.txMu.Lock()
	for _, rec := range s.txs {
		if rec.epoch < newEpoch && rec.preparedAt.Before(now) {
			rec.preparedAt = now
		}
	}
	s.txMu.Unlock()
	s.epochMu.Lock()
	if newEpoch <= s.epoch {
		s.epochMu.Unlock()
		return false
	}
	s.epoch = newEpoch
	s.epochMembers = members
	s.promoting = false
	role := s.roleLocked()
	s.epochMu.Unlock()
	s.stats.EpochBumps.Add(1)
	// Keep the durability pipeline's follower flag in lockstep with the
	// epoch role: a backup's frontier may only advance on the primary's
	// word (its own WAL isn't evidence of quorum durability), while a
	// primary computes the watermark from its members' acks directly.
	s.setFollower(role != RolePrimary && role != RoleLegacy)
	return true
}

// StartResync puts the store in resync mode: replicated records that
// arrive ahead of the contiguous stream are buffered instead of
// rejected. Call before the primary attaches this store as its mirror,
// so live commits and the history stream can interleave safely.
func (s *Store) StartResync() {
	s.repMu.Lock()
	s.resyncing = true
	s.repMu.Unlock()
}

// FinishResync leaves resync mode. It fails if buffered records remain
// unapplied — that means the history stream stopped short of them.
func (s *Store) FinishResync() error {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	s.resyncing = false
	if len(s.pending) > 0 {
		return fmt.Errorf("kvserver: resync incomplete: %d records still pending above seq %d", len(s.pending), s.repSeq)
	}
	return nil
}

// syncBatchBytes caps the estimated payload of one sync response,
// comfortably below the wire frame limit regardless of record count.
const syncBatchBytes = 4 << 20

// SyncRecords returns up to max replication-log records starting at
// sequence number from — fewer when the batch would grow past
// syncBatchBytes — plus the current head of the stream and the oldest
// sequence number still in the log (logBase). At least one record is
// always returned when any exists at from, so a single large commit
// (necessarily under the frame limit, it crossed the wire once
// already) cannot stall a resync.
//
// A from below logBase returns an empty batch with base > from — the
// history was truncated at a snapshot checkpoint, and the caller must
// install a snapshot instead (the server surfaces this as
// SyncResp.TooOld). A from beyond the stream head means the requester
// applied records this store never emitted: the replicas hold
// irreconcilable histories, reported loudly as kv.ErrDiverged
// (mirroring ApplyMirrored's strict check) rather than answered with a
// silently empty batch the requester would mistake for "caught up".
//
// reqEpoch is the requester's STREAM epoch (see streamEpoch) and closes
// the diverged-but-BEHIND hole the seq-only checks left open: an
// isolated old primary whose stranded old-epoch records sit at
// sequence numbers this stream later re-stamped passes every position
// check once the head grows past it. When the retained log still holds
// the record just below from, the epoch in force there is compared
// against reqEpoch; a mismatch means the requester's history below
// from is NOT a prefix of this stream, rejected with kv.ErrDiverged —
// the requester can only rejoin by state transfer. When that record
// was truncated the check is skipped here; the requester's own
// per-record apply check (applyRecordLocked) still catches the splice
// on the first delivered record.
func (s *Store) SyncRecords(from uint64, max int, reqEpoch uint64) (recs []kv.SyncRec, head, base uint64, err error) {
	if max <= 0 {
		max = 512
	}
	s.repMu.Lock()
	defer s.repMu.Unlock()
	if !s.cfg.ReplicationLog {
		return nil, s.repSeq, s.logBase, fmt.Errorf("%w: server keeps no replication log", kv.ErrBadRequest)
	}
	if from > s.repSeq {
		return nil, s.repSeq, s.logBase, fmt.Errorf("%w: requested seq %d is beyond this replica's head %d: the requester applied records never in this stream, re-form the group", kv.ErrDiverged, from, s.repSeq)
	}
	if from > s.logBase && from <= s.logBase+uint64(len(s.commitLog)) {
		// The record below from is retained; its stamp is the epoch this
		// stream had in force there (a RecEpoch's stamp is the epoch it
		// installed, equally the epoch in force after it).
		if srcEpoch := s.commitLog[from-1-s.logBase].Epoch; srcEpoch != reqEpoch {
			return nil, s.repSeq, s.logBase, fmt.Errorf("%w: requester's stream is at epoch %d below seq %d but this stream had epoch %d in force there: the histories diverged, rejoin by state transfer", kv.ErrDiverged, reqEpoch, from, srcEpoch)
		}
	}
	if from < s.logBase || from >= s.logBase+uint64(len(s.commitLog)) {
		return nil, s.repSeq, s.logBase, nil
	}
	end := from + uint64(max)
	if top := s.logBase + uint64(len(s.commitLog)); end > top {
		end = top
	}
	recs = make([]kv.SyncRec, 0, end-from)
	bytes := 0
	for seq := from; seq < end; seq++ {
		rec := s.commitLog[seq-s.logBase]
		sz := recordSize(&rec)
		if len(recs) > 0 && bytes+sz > syncBatchBytes {
			break
		}
		bytes += sz
		recs = append(recs, kv.SyncRec{Seq: seq, Rec: rec})
	}
	return recs, s.repSeq, s.logBase, nil
}

// recordSize estimates the wire size of one replication record,
// including the epoch stamp and — for RecEpoch records — the
// membership list, so an epoch-heavy log tail cannot overshoot
// syncBatchBytes.
func recordSize(rec *kv.ReplRecord) int {
	n := 32 // kind, epoch, txid, ts, commit flag, op/member counts
	for _, m := range rec.Members {
		n += len(m) + 4
	}
	for _, op := range rec.Ops {
		n += 16 + op.Value.EncodedSize() +
			len(op.Cell.Key) + len(op.Cell.Value) +
			len(op.From) + len(op.To) + len(op.Low) + len(op.High)
	}
	return n
}

// LogBounds reports the retained replication log's window: base is the
// oldest sequence number still held, head the next to be assigned, so
// head-base records are in memory (tests and diagnostics).
func (s *Store) LogBounds() (logBase, head uint64) {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	return s.logBase, s.repSeq
}

// Checkpoint captures a snapshot of the store's full state at the
// current stream head, rotates the write-ahead log onto it (restart
// replays snapshot + tail instead of the full history), and truncates
// the ENTIRE in-memory replication log (logBase advances to the head
// — an explicit checkpoint is an operator's full truncation). A
// backup that later asks to sync from below the new logBase is served
// by state transfer. It returns the sequence number the checkpoint
// covers. The automatic policy path instead retains a half-cap tail
// (see checkpointLocked), so a replica that is merely a little behind
// at checkpoint time still catches up by record replay.
func (s *Store) Checkpoint() (uint64, error) {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	if !s.cfg.ReplicationLog {
		// Without the replication log there is nothing to truncate, a
		// mirror-less store applies commits outside the stream lock
		// (commitDetached) so no consistent capture exists, and
		// ServeSnapshotChunk refuses such stores anyway.
		return 0, fmt.Errorf("%w: checkpointing requires the replication log (Config.ReplicationLog)", kv.ErrBadRequest)
	}
	return s.checkpointLocked(false)
}

// checkpointLocked implements Checkpoint, synchronously. Caller holds
// repMu, and the visible state must be consistent with repSeq (every
// emitted record fully applied) — true at the end of any emit-and-apply
// critical section, never in the middle of one. With retainTail, the
// newest half-cap of records is kept (the policy path): truncating to
// empty would force O(state) transfer on any replica even one record
// behind, while retaining half leaves headroom so the next append does
// not immediately re-trip the bound.
//
//yesqlint:allow repmublock -- deliberate: the explicit Checkpoint keeps the rotation inline under repMu (bounded local file work); the policy paths run finishCheckpoint on a goroutine, off-lock
func (s *Store) checkpointLocked(retainTail bool) (uint64, error) {
	if s.wal == nil {
		s.truncateLogLocked(retainTail)
		s.stats.Checkpoints.Add(1)
		return s.repSeq, nil
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		// An asynchronous rotation is still in flight; the memory bound
		// must hold anyway.
		s.truncateLogLocked(retainTail)
		return 0, fmt.Errorf("kvserver: a checkpoint rotation is already in progress")
	}
	sn := s.captureSnapshotLocked()
	s.truncateLogLocked(retainTail)
	if !s.drainWALLocked() {
		// Queued records could not reach the file; rotating now would
		// let a later flush tee them after a snapshot that already
		// covers them (double apply on replay). The truncation stands;
		// the rotation waits for a drain that succeeds.
		s.ckptBusy.Store(false)
		s.stats.CheckpointFailures.Add(1)
		return 0, fmt.Errorf("kvserver: checkpoint aborted: write-ahead log append failing; records re-queued for retry")
	}
	s.wal.beginRotate()
	seq := s.repSeq
	if err := s.finishCheckpoint(s.wal, sn); err != nil {
		return 0, err
	}
	return seq, nil
}

// truncateLogLocked drops the in-memory replication log (keeping the
// newest half-cap of records when retainTail is set), independent of
// any WAL rotation outcome: serving a resync below logBase only needs
// an on-demand snapshot (ServeSnapshotChunk), not the rotated file,
// and a restart replays the old, un-rotated log correctly — longer,
// but complete. The memory bound must hold even when the disk does not
// cooperate. Caller holds repMu.
func (s *Store) truncateLogLocked(retainTail bool) {
	if !s.cfg.ReplicationLog || len(s.commitLog) == 0 {
		return
	}
	keep, keepBytes := 0, 0
	if retainTail {
		keep, keepBytes = s.retainableTailLocked()
	}
	if drop := len(s.commitLog) - keep; drop > 0 {
		s.stats.LogRecordsTruncated.Add(uint64(drop))
		// Copy the tail out so the dropped prefix's backing array is
		// actually freed.
		s.commitLog = append([]kv.ReplRecord(nil), s.commitLog[drop:]...)
		s.commitLogBytes = keepBytes
		s.logBase += uint64(drop)
	}
}

// finishCheckpoint is the off-lock tail of a checkpoint: encode the
// captured snapshot and rotate the write-ahead log onto it. The
// expensive O(state) serialization and file write run WITHOUT repMu —
// the ROADMAP-flagged latency spike where a checkpoint under the
// stream lock could stall mirror applies past the mirror timeout —
// while appends that race the rotation are teed into the new file by
// the wal itself (see wal.finishRotate). The policy paths run it on a
// goroutine; the explicit Checkpoint keeps it inline.
func (s *Store) finishCheckpoint(w *wal, sn *stateSnapshot) error {
	defer s.ckptBusy.Store(false)
	enc := encodeSnapshot(sn)
	if _, err := w.finishRotate(enc); err != nil {
		// The counter is the operator signal: the inline policy
		// callers never see this error (a failed bound must not fail
		// the commit that tripped it), so a climbing value is how a
		// full disk — or a state too large for one checkpoint frame —
		// shows up before memory pressure does.
		s.stats.CheckpointFailures.Add(1)
		return fmt.Errorf("kvserver: rotating log onto checkpoint: %w", err)
	}
	s.stats.Checkpoints.Add(1)
	return nil
}

// retainableTailLocked reports how many of the newest log records fit
// within half of each configured bound, and their estimated byte size
// (so the caller need not rescan them). Caller holds repMu.
func (s *Store) retainableTailLocked() (n, bytes int) {
	if s.cfg.ReplicationLogMaxRecords == 0 && s.cfg.ReplicationLogMaxBytes == 0 {
		return 0, 0
	}
	for i := len(s.commitLog) - 1; i >= 0; i-- {
		sz := recordSize(&s.commitLog[i])
		if s.cfg.ReplicationLogMaxRecords > 0 && n+1 > s.cfg.ReplicationLogMaxRecords/2 {
			break
		}
		if s.cfg.ReplicationLogMaxBytes > 0 && bytes+sz > s.cfg.ReplicationLogMaxBytes/2 {
			break
		}
		n++
		bytes += sz
	}
	return n, bytes
}

// MaybeCheckpoint checkpoints if the retained replication log exceeds
// the configured bounds, reporting whether it did. The emit paths call
// the locked variant inline (the bound is strict on a primary, not
// best-effort); the server runs it on a short ticker too, which is
// what bounds a live-mirror backup between the hard-ceiling triggers
// (see mirrorCheckpointSlack).
func (s *Store) MaybeCheckpoint() (bool, error) {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	return s.maybeCheckpointLocked()
}

// mirrorCheckpointSlack multiplies the configured bounds on the
// live-mirror apply path: an inline checkpoint there runs while the
// primary synchronously waits for the ack, so routine truncation is
// left to the server's checkpoint ticker — but the memory bound must
// not depend on a ticker alone, so past slack times the cap the apply
// path checkpoints anyway, accepting the one delayed ack.
const mirrorCheckpointSlack = 4

func (s *Store) maybeCheckpointLocked() (bool, error) {
	return s.maybeCheckpointSlackLocked(1)
}

func (s *Store) maybeCheckpointSlackLocked(slack int) (bool, error) {
	if !s.cfg.ReplicationLog {
		return false, nil
	}
	overRecords := s.cfg.ReplicationLogMaxRecords > 0 && len(s.commitLog) > slack*s.cfg.ReplicationLogMaxRecords
	overBytes := s.cfg.ReplicationLogMaxBytes > 0 && s.commitLogBytes > slack*s.cfg.ReplicationLogMaxBytes
	if !overRecords && !overBytes {
		return false, nil
	}
	if s.wal == nil {
		s.truncateLogLocked(true)
		s.stats.Checkpoints.Add(1)
		return true, nil
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		// A rotation is still encoding/writing off-lock: truncate in
		// memory now (the bound is strict) and let the in-flight
		// checkpoint — or the next one — bound the file.
		s.truncateLogLocked(true)
		return true, nil
	}
	// Under repMu: capture the minimal in-memory copy and write the
	// already-emitted records into the file (a record left queued
	// across the rotation would land after a snapshot that covers it
	// and double-apply on replay). Off repMu (goroutine): the O(state)
	// encode and the rotation itself.
	sn := s.captureSnapshotLocked()
	s.truncateLogLocked(true)
	if !s.drainWALLocked() {
		s.ckptBusy.Store(false)
		s.stats.CheckpointFailures.Add(1)
		return true, nil
	}
	s.wal.beginRotate()
	go s.finishCheckpoint(s.wal, sn)
	return true, nil
}

// NewStore returns an empty store using hlc for timestamps. A nil hlc
// allocates a fresh clock.
func NewStore(hlc *clock.HLC, cfg Config) *Store {
	if hlc == nil {
		hlc = clock.New()
	}
	s := &Store{
		cfg:     cfg.withDefaults(),
		clock:   hlc,
		txs:     make(map[uint64]*txRecord),
		decided: make(map[uint64]decision),
	}
	for i := range s.shard {
		s.shard[i].objs = make(map[kv.OID]*object)
	}
	s.initPipe()
	return s
}

// Clock returns the store's hybrid logical clock.
func (s *Store) Clock() *clock.HLC { return s.clock }

// Stats returns a snapshot of activity counters.
func (s *Store) Stats() StatsSnapshot {
	return StatsSnapshot{
		Reads:        s.stats.Reads.Load(),
		ReadWaits:    s.stats.ReadWaits.Load(),
		Prepares:     s.stats.Prepares.Load(),
		Commits:      s.stats.Commits.Load(),
		FastCommits:  s.stats.FastCommits.Load(),
		Aborts:       s.stats.Aborts.Load(),
		OrphanAborts: s.stats.OrphanAborts.Load(),
		Conflicts:    s.stats.Conflicts.Load(),
		GCVersions:   s.stats.GCVersions.Load(),

		EpochBumps:        s.stats.EpochBumps.Load(),
		WrongEpochRejects: s.stats.WrongEpochRejects.Load(),

		Checkpoints:         s.stats.Checkpoints.Load(),
		CheckpointFailures:  s.stats.CheckpointFailures.Load(),
		LogRecordsTruncated: s.stats.LogRecordsTruncated.Load(),
		SnapshotsServed:     s.stats.SnapshotsServed.Load(),
		SnapshotsInstalled:  s.stats.SnapshotsInstalled.Load(),

		MirrorBatches:      s.stats.MirrorBatches.Load(),
		MirrorBatchRecords: s.stats.MirrorBatchRecords.Load(),
		WALSyncs:           s.stats.WALSyncs.Load(),
		WALFailures:        s.stats.WALFailures.Load(),

		FollowerReads:     s.stats.FollowerReads.Load(),
		FollowerReadWaits: s.stats.FollowerReadWaits.Load(),
		DurableReadWaits:  s.stats.DurableReadWaits.Load(),

		WrongSlotRejects: s.stats.WrongSlotRejects.Load(),
		MigratedVersions: s.stats.MigratedVersions.Load(),
	}
}

func (s *Store) shardFor(oid kv.OID) *shard {
	// OID locals are assigned sequentially or randomly; fold the bits.
	h := uint64(oid)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &s.shard[h%numShards]
}

// Read returns the newest version of oid visible at snap. The returned
// value must not be mutated by the caller (versions are immutable).
func (s *Store) Read(oid kv.OID, snap clock.Timestamp) (*kv.Value, clock.Timestamp, error) {
	s.stats.Reads.Add(1)
	// Advance the local clock past the snapshot before touching the
	// store: together with assigning proposed timestamps only after all
	// prepare locks are held, this guarantees that any commit that this
	// read could not see lands strictly above snap (Clock-SI).
	s.clock.Observe(snap)
	sh := s.shardFor(oid)
	deadline := time.Now().Add(s.cfg.LockWaitTimeout)
	// One reusable timer for the whole wait loop: time.After leaks a
	// live timer until the deadline on EVERY woken iteration, and a
	// read can be woken once per conflicting transaction.
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		sh.mu.Lock()
		obj := sh.objs[oid]
		if obj == nil {
			sh.mu.Unlock()
			return nil, 0, kv.ErrNotFound
		}
		// Clock-SI read rule: a prepared-but-unresolved transaction with
		// proposed <= snap might commit below our snapshot; wait for it.
		if obj.lock != nil && obj.lock.proposed <= snap {
			ch := obj.lock.done
			sh.mu.Unlock()
			s.stats.ReadWaits.Add(1)
			if timer == nil {
				timer = time.NewTimer(time.Until(deadline))
			} else {
				// The previous wait ended on ch, but the timer may have
				// fired concurrently; drain the stale tick before
				// rearming or the next select would time out instantly.
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(time.Until(deadline))
			}
			select {
			case <-ch:
				continue
			case <-timer.C:
				timer = nil
				return nil, 0, fmt.Errorf("%w: read blocked on prepared transaction", kv.ErrConflict)
			}
		}
		v, ts, ok := visibleVersion(obj, snap)
		sh.mu.Unlock()
		if !ok || v == nil {
			return nil, 0, kv.ErrNotFound
		}
		return v, ts, nil
	}
}

// ReadPart returns a windowed view of oid at snap: attributes and
// bounds always, cells limited to [floor(from), to) capped at max, and
// the node's total cell count. Plain values come back whole.
func (s *Store) ReadPart(oid kv.OID, snap clock.Timestamp, from, to []byte, max uint32) (*kv.Value, int, clock.Timestamp, error) {
	v, ts, err := s.Read(oid, snap)
	if err != nil {
		return nil, 0, 0, err
	}
	if v.Kind != kv.KindSuper {
		return v, 0, ts, nil
	}
	// Versions are immutable; build a shallow partial view.
	part := &kv.Value{
		Kind:    kv.KindSuper,
		Attrs:   v.Attrs,
		LowKey:  v.LowKey,
		HighKey: v.HighKey,
		Cells:   v.WindowCells(from, to, max),
	}
	return part, len(v.Cells), ts, nil
}

func visibleVersion(obj *object, snap clock.Timestamp) (*kv.Value, clock.Timestamp, bool) {
	// versions ascend by ts; find the newest with ts <= snap.
	i := sort.Search(len(obj.versions), func(i int) bool {
		return obj.versions[i].ts > snap
	})
	if i == 0 {
		return nil, 0, false
	}
	ver := obj.versions[i-1]
	return ver.val, ver.ts, true
}

// groupOps partitions ops by OID, preserving per-OID order, and returns
// the distinct OIDs in sorted order (so lock acquisition is
// deterministic).
func groupOps(ops []*kv.Op) ([]kv.OID, map[kv.OID][]*kv.Op) {
	byOID := make(map[kv.OID][]*kv.Op)
	var oids []kv.OID
	for _, op := range ops {
		if _, ok := byOID[op.OID]; !ok {
			oids = append(oids, op.OID)
		}
		byOID[op.OID] = append(byOID[op.OID], op)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	return oids, byOID
}

// Prepare validates and locks the transaction's writes (phase one of
// two-phase commit). On success it returns the proposed commit
// timestamp (a lower bound chosen by this participant) — and, on a
// replicated store, the staged ops and locks have been replicated as a
// RecPrepare record, so a promoted backup holds the prepared
// transaction and can still apply the coordinator's decision. On
// conflict it returns kv.ErrConflict and leaves no state behind.
func (s *Store) Prepare(txid uint64, start clock.Timestamp, ops []*kv.Op) (clock.Timestamp, error) {
	return s.prepare(txid, start, ops, true)
}

// prepare implements Prepare. replicate=false is the one-shot fast-
// commit path: its commit immediately follows, and the single
// RecCommit record carries the ops, so a separate prepare record would
// only double the stream traffic.
func (s *Store) prepare(txid uint64, start clock.Timestamp, ops []*kv.Op, replicate bool) (clock.Timestamp, error) {
	s.stats.Prepares.Add(1)
	oids, byOID := groupOps(ops)

	s.txMu.Lock()
	if _, dup := s.txs[txid]; dup {
		s.txMu.Unlock()
		return 0, fmt.Errorf("%w: duplicate prepare for tx %d", kv.ErrBadRequest, txid)
	}
	rec := &txRecord{oids: oids, epoch: s.Epoch(), preparedAt: time.Now()}
	s.txs[txid] = rec
	s.txMu.Unlock()

	locked := make([]kv.OID, 0, len(oids))
	fail := func(reason error) (clock.Timestamp, error) {
		s.releaseLocks(txid, locked)
		s.txMu.Lock()
		delete(s.txs, txid)
		s.txMu.Unlock()
		s.stats.Conflicts.Add(1)
		return 0, reason
	}

	for _, oid := range oids {
		sh := s.shardFor(oid)
		sh.mu.Lock()
		obj := sh.objs[oid]
		if obj == nil {
			obj = &object{}
			sh.objs[oid] = obj
		}
		if obj.lock != nil {
			holder := obj.lock.txid
			sh.mu.Unlock()
			return fail(fmt.Errorf("%w: %v locked by tx %d", kv.ErrConflict, oid, holder))
		}
		// First-committer-wins at cell granularity: a version committed
		// after our snapshot conflicts if either side is structural or
		// their touch sets intersect. Purely commutative deltas on
		// disjoint cells (concurrent inserts into one DBT leaf) pass.
		if err := conflictLocked(obj, start, byOID[oid]); err != nil {
			sh.mu.Unlock()
			return fail(err)
		}
		// Dry-run the ops so commit cannot fail later: the base cannot
		// change while we hold the lock.
		base, _, _ := visibleVersion(obj, clock.Max)
		ok := true
		var applyErr error
		for _, op := range byOID[oid] {
			base, applyErr = op.Apply(base)
			if applyErr != nil {
				ok = false
				break
			}
		}
		if !ok {
			sh.mu.Unlock()
			return fail(fmt.Errorf("%w: %v", kv.ErrBadRequest, applyErr))
		}
		// proposed stays 0 (sentinel) until every lock is held; readers
		// that hit the lock in this window wait conservatively.
		obj.lock = &lockState{txid: txid, ops: byOID[oid], done: make(chan struct{})}
		sh.mu.Unlock()
		locked = append(locked, oid)
	}

	// All locks held: choose the proposed commit timestamp. Issuing it
	// only now guarantees it exceeds the snapshot of every read already
	// served for these objects (each read Observed its snapshot before
	// finding the object unlocked), so the eventual commit timestamp
	// (>= proposed) cannot land below a snapshot that missed it.
	proposed := s.clock.Observe(start)
	for _, oid := range oids {
		sh := s.shardFor(oid)
		sh.mu.Lock()
		if obj := sh.objs[oid]; obj != nil && obj.lock != nil && obj.lock.txid == txid {
			obj.lock.proposed = proposed
		}
		sh.mu.Unlock()
	}

	// Replicate the prepared state before voting yes: the vote promises
	// the coordinator this participant can commit, so the promise must
	// survive a primary failure. The emission and the replicated-flag
	// publication are one repMu critical section: a state snapshot
	// (captured under repMu) carries exactly the prepares whose
	// RecPrepare is below its sequence number — rec.replicated set —
	// and skips the rest, whose records land in the tail the snapshot
	// installer replays. The durability wait happens after the lock: if
	// the record never clears the watermark (the backup is dead or
	// diverged), the vote is no — but the record DID enter the stream,
	// so the abort owes it a decision record (s.abort emits one).
	if replicate {
		s.repMu.Lock()
		// Migration fence: re-check route ownership under repMu, so the
		// check and the emission are one atomic point in the stream
		// relative to InstallDirectory. A write that loses the race gets
		// the typed redirect and was provably never prepared here.
		if wse := s.fencedOIDsLocked(oids); wse != nil {
			s.repMu.Unlock()
			s.releaseLocks(txid, locked)
			s.txMu.Lock()
			delete(s.txs, txid)
			s.txMu.Unlock()
			return 0, wse
		}
		if !s.replicatingLocked() {
			s.repMu.Unlock()
			return proposed, nil
		}
		seq := s.emitLocked(kv.ReplRecord{Kind: kv.RecPrepare, TxID: txid, TS: proposed, Ops: ops})
		s.txMu.Lock()
		if s.txs[txid] != rec {
			// The orphan sweep (or an early coordinator abort) resolved
			// the transaction while its prepare record was entering the
			// stream — and, having seen an unreplicated prepare, emitted
			// no decision. The stream is owed the abort; the vote is no.
			s.txMu.Unlock()
			s.emitLocked(kv.ReplRecord{Kind: kv.RecDecide, TxID: txid, Commit: false})
			s.repMu.Unlock()
			return 0, fmt.Errorf("%w: tx %d aborted during prepare", kv.ErrConflict, txid)
		}
		rec.replicated = true
		s.txMu.Unlock()
		s.maybeCheckpointLocked()
		s.repMu.Unlock()
		if err := s.waitReplicated(seq); err != nil {
			// abort resolves the prepared transaction if it is still
			// staged (releasing the locks and emitting the owed abort
			// decision) and is a no-op if something else already did.
			s.abort(txid, false)
			return 0, fmt.Errorf("kv: replicating prepare: %w", err)
		}
	}
	return proposed, nil
}

// replicatingLocked reports whether stream records have anywhere to
// go: a write-ahead log, an in-memory replication log, or a live
// mirror. Caller holds repMu.
func (s *Store) replicatingLocked() bool {
	return s.wal != nil || s.cfg.ReplicationLog || s.hasMirror.Load()
}

// emitLocked appends one record to the replication stream: it assigns
// the next sequence number, appends the record to the in-memory
// replication log, and hands it to the group-commit pipeline, which
// batches the mirror RPC and the write-ahead-log append off the stream
// lock. Emission is purely local and cannot fail; callers whose
// acknowledgment promises replication or durability (commits,
// prepares, epoch changes) call waitReplicated with the returned
// sequence number AFTER releasing repMu — that wait, outside the
// stream lock, is what lets concurrent writers share round trips and
// fsyncs. Callers whose record is fire-and-forget (abort decisions,
// which must release locks no matter what) simply do not wait; a
// missed record surfaces on the backup as a loud sequence gap.
//
// Caller holds repMu — the native write paths hold it across the
// emission AND the application of the record's effects, so stream
// order, log order, per-object version order, and any state snapshot
// captured under repMu all agree. Every record is stamped with the
// epoch in effect when it enters the stream — except RecEpoch, whose
// Epoch field carries the new epoch it installs.
func (s *Store) emitLocked(rec kv.ReplRecord) uint64 {
	if rec.Kind != kv.RecEpoch {
		s.epochMu.Lock()
		rec.Epoch = s.epoch
		s.epochMu.Unlock()
	} else if rec.Epoch > s.streamEpoch {
		// The stream itself is installing this epoch; record stamps from
		// here on must match it (see streamEpoch).
		s.streamEpoch = rec.Epoch
	}
	seq := s.repSeq
	s.repSeq++
	if s.cfg.ReplicationLog {
		s.commitLog = append(s.commitLog, rec)
		s.commitLogBytes += recordSize(&rec)
	}
	s.enqueueLocked(seq, rec)
	return seq
}

// conflictLocked applies the first-committer-wins rule for a
// transaction with snapshot start writing ops to obj. Caller holds the
// shard mutex.
func conflictLocked(obj *object, start clock.Timestamp, ops []*kv.Op) error {
	n := len(obj.versions)
	if n == 0 || obj.versions[n-1].ts <= start {
		return nil // nothing committed since the snapshot
	}
	if start <= obj.gcFloor {
		// History below the GC floor is gone; we cannot prove the
		// touched sets are disjoint.
		return fmt.Errorf("%w: snapshot predates GC horizon", kv.ErrConflict)
	}
	txStructural, txTouched := classifyOps(ops)
	for i := n - 1; i >= 0 && obj.versions[i].ts > start; i-- {
		v := &obj.versions[i]
		if txStructural || v.structural {
			return fmt.Errorf("%w: concurrent structural write", kv.ErrConflict)
		}
		for k := range txTouched {
			if _, hit := v.touched[k]; hit {
				return fmt.Errorf("%w: concurrent write to same cell", kv.ErrConflict)
			}
		}
	}
	return nil
}

// Commit applies a prepared transaction's staged operations at commitTS
// and releases its locks (phase two of two-phase commit). Commit is
// idempotent: a retried decision for a transaction already in the
// decided table is acknowledged with the recorded outcome — nil for a
// commit, kv.ErrConflict for an abort — so a coordinator whose first
// acknowledgment was lost can safely re-send the decision, including
// to a promoted backup. Committing a transaction this store has never
// heard of is an error.
func (s *Store) Commit(txid uint64, commitTS clock.Timestamp) error {
	applied, err := s.commit(txid, commitTS)
	if applied {
		s.stats.Commits.Add(1)
	}
	return err
}

func (s *Store) commit(txid uint64, commitTS clock.Timestamp) (applied bool, err error) {
	// On a stream-consistent store the whole transition — emit the
	// decision, apply the staged ops, record the outcome — is one repMu
	// critical section: the stream position and the visible state never
	// disagree, which is what lets a state snapshot captured under
	// repMu (and tagged with repSeq) claim to cover every record below
	// it. Other stores never serve snapshots or resyncs, so they keep
	// the concurrent path (commitDetached): staged ops apply in
	// parallel across shards, outside the stream lock.
	//
	// The DURABILITY WAIT happens after the critical section: the
	// record is emitted and its effects applied under repMu, but the
	// client's acknowledgment is withheld until the record clears the
	// pipeline's watermark (backup ack + fsync). A wait failure returns
	// an error with the record already in the local stream — the caller
	// sees the same uncertainty a lost acknowledgment produces, and the
	// acked-writes-survive-failover guarantee holds because no ack went
	// out.
	s.repMu.Lock()
	if !s.streamConsistentLocked() {
		s.repMu.Unlock()
		return s.commitDetached(txid, commitTS)
	}
	rec, dup, err := s.takePrepared(txid)
	if rec == nil {
		s.repMu.Unlock()
		if err == nil && dup.replSeq > 0 {
			// Duplicate decision for an applied commit: ack only once
			// its record is replicated — the retry may be the client's
			// way of asking "did that really land?".
			if werr := s.waitReplicated(dup.replSeq - 1); werr != nil {
				return false, fmt.Errorf("%w: replicating commit: %v", kv.ErrUncertain, werr)
			}
		}
		return false, err
	}
	s.clock.Observe(commitTS)
	// Migration fence, fast-commit half: an UNREPLICATED prepare's ops
	// enter the stream only now, so the ownership re-check happens here,
	// atomically with the emission. A REPLICATED prepare is exempt by
	// design: its RecPrepare sits below the fence in the stream, the
	// migration tail carries it to the destination, and this decision
	// rides the same tail — fencing it would strand a promised vote.
	if !rec.replicated {
		if wse := s.fencedOIDsLocked(rec.oids); wse != nil {
			s.abortLocked(txid, rec, false)
			s.maybeCheckpointLocked()
			s.repMu.Unlock()
			return false, wse
		}
	}
	// The per-object locks are still held here, so the replication
	// stream order, the log order, and per-object version order all
	// agree — on this store and, because batches apply in sequence, on
	// the backup. A replicated prepare only needs the decision on the
	// wire (RecDecide); otherwise the whole transaction rides in one
	// RecCommit record.
	seq := s.emitLocked(s.commitRecord(txid, rec, commitTS))
	s.applyStaged(txid, rec.oids, commitTS)
	s.recordDecision(txid, decision{commit: true, commitTS: commitTS, replSeq: seq + 1})
	s.maybeCheckpointLocked()
	s.repMu.Unlock()
	if err := s.waitReplicated(seq); err != nil {
		// The record is in the local stream and its effects are
		// visible, but the replication/durability promise behind an
		// acknowledgment cannot be given: the outcome is exactly what
		// ErrUncertain names — applied here, surviving a failover only
		// if the batch reached the backup after all.
		return true, fmt.Errorf("%w: replicating commit: %v", kv.ErrUncertain, err)
	}
	return true, nil
}

// commitRecord builds a committing transaction's stream record: a bare
// RecDecide when the prepare was already replicated, otherwise a
// RecCommit carrying the staged ops gathered from the objects' locks
// (stable — the caller owns the transaction's resolution).
func (s *Store) commitRecord(txid uint64, rec *txRecord, commitTS clock.Timestamp) kv.ReplRecord {
	if rec.replicated {
		return kv.ReplRecord{Kind: kv.RecDecide, TxID: txid, TS: commitTS, Commit: true}
	}
	out := kv.ReplRecord{Kind: kv.RecCommit, TxID: txid, TS: commitTS}
	for _, oid := range rec.oids {
		sh := s.shardFor(oid)
		sh.mu.Lock()
		if obj := sh.objs[oid]; obj != nil && obj.lock != nil && obj.lock.txid == txid {
			out.Ops = append(out.Ops, obj.lock.ops...)
		}
		sh.mu.Unlock()
	}
	return out
}

// takePrepared removes txid's record from the prepared-transaction
// table and returns it. A nil record means the transaction cannot be
// committed, with err saying why: nil for a duplicate decision that
// already committed (ack it again, after its record's durability wait
// — dup carries the recorded outcome), ErrConflict for one that
// already aborted, ErrBadRequest for a transaction this store never
// heard of.
func (s *Store) takePrepared(txid uint64) (*txRecord, decision, error) {
	s.txMu.Lock()
	defer s.txMu.Unlock()
	rec := s.txs[txid]
	if rec == nil {
		d, decided := s.decided[txid]
		switch {
		case decided && d.commit:
			return nil, d, nil // duplicate decision: already committed
		case decided:
			return nil, d, fmt.Errorf("%w: tx %d already aborted", kv.ErrConflict, txid)
		}
		return nil, decision{}, fmt.Errorf("%w: commit of unknown tx %d", kv.ErrBadRequest, txid)
	}
	delete(s.txs, txid)
	return rec, decision{}, nil
}

// streamConsistentLocked reports whether this store maintains the
// snapshot-capture invariant — visible state equals the stream
// position whenever repMu is free. Only stores that can actually serve
// a resync (replication log) or feed one (live mirror) pay for it;
// plain and WAL-only stores trade it for concurrent commit
// application. Caller holds repMu.
func (s *Store) streamConsistentLocked() bool {
	return s.cfg.ReplicationLog || s.hasMirror.Load()
}

// commitDetached is the commit path of stores outside the stream-
// consistency discipline: unreplicated (nothing to emit — the stream
// lock is touched only for the sequence count) and WAL-only
// (durability without resync service — the record is emitted under
// repMu, but staged ops apply outside it, concurrently across shards,
// exactly the pre-snapshot behavior; the LogSync durability wait rides
// the same group-commit watermark as the replicated path).
func (s *Store) commitDetached(txid uint64, commitTS clock.Timestamp) (applied bool, err error) {
	rec, dup, err := s.takePrepared(txid)
	if rec == nil {
		if err == nil && dup.replSeq > 0 {
			if werr := s.waitReplicated(dup.replSeq - 1); werr != nil {
				return false, fmt.Errorf("%w: replicating commit: %v", kv.ErrUncertain, werr)
			}
		}
		return false, err
	}
	s.clock.Observe(commitTS)
	var seq uint64
	hasSeq := false
	s.repMu.Lock()
	if s.replicatingLocked() {
		seq = s.emitLocked(s.commitRecord(txid, rec, commitTS))
		hasSeq = true
	} else {
		// Count the record in the stream even without a log or mirror,
		// so a later AttachMirror reports an honest watermark.
		s.repSeq++
	}
	s.repMu.Unlock()
	s.applyStaged(txid, rec.oids, commitTS)
	d := decision{commit: true, commitTS: commitTS}
	if hasSeq {
		d.replSeq = seq + 1
	}
	s.recordDecision(txid, d)
	if hasSeq {
		if err := s.waitReplicated(seq); err != nil {
			return true, fmt.Errorf("%w: replicating commit: %v", kv.ErrUncertain, err)
		}
	}
	return true, nil
}

// applyStaged turns a prepared transaction's staged ops into visible
// versions at commitTS and releases its locks.
func (s *Store) applyStaged(txid uint64, oids []kv.OID, commitTS clock.Timestamp) {
	for _, oid := range oids {
		sh := s.shardFor(oid)
		sh.mu.Lock()
		obj := sh.objs[oid]
		if obj == nil || obj.lock == nil || obj.lock.txid != txid {
			sh.mu.Unlock()
			continue // defensive; cannot happen with a correct client
		}
		base, _, _ := visibleVersion(obj, clock.Max)
		val := base
		for _, op := range obj.lock.ops {
			next, err := op.Apply(val)
			if err != nil {
				// Validated at prepare; unreachable unless the client
				// mutated ops concurrently. Keep prior value.
				break
			}
			val = next
		}
		structural, touched := classifyOps(obj.lock.ops)
		obj.versions = append(obj.versions, version{ts: commitTS, val: val, structural: structural, touched: touched})
		s.trimLocked(obj)
		close(obj.lock.done)
		obj.lock = nil
		// Tombstones are kept until the retention horizon passes (the
		// sweeper removes them): erasing the object now would also
		// erase the conflict history a concurrent transaction with an
		// older snapshot still needs.
		sh.mu.Unlock()
	}
}

// recordDecision remembers a transaction's outcome for DecidedTTL (and
// at most decidedMax entries), so retried phase-two requests are
// answered instead of rejected.
func (s *Store) recordDecision(txid uint64, d decision) {
	now := time.Now()
	s.txMu.Lock()
	s.decided[txid] = d
	s.decidedQ = append(s.decidedQ, decidedEntry{txid: txid, at: now})
	s.evictDecidedLocked(now)
	s.txMu.Unlock()
}

// evictDecidedLocked drops decided entries past their TTL, and the
// oldest entries beyond the size cap. Caller holds txMu.
func (s *Store) evictDecidedLocked(now time.Time) {
	ttl := s.cfg.DecidedTTL
	for len(s.decidedQ) > 0 {
		head := s.decidedQ[0]
		if now.Sub(head.at) < ttl && len(s.decided) <= decidedMax {
			break
		}
		delete(s.decided, head.txid)
		s.decidedQ = s.decidedQ[1:]
	}
}

// SweepDecided evicts expired decided-transaction entries; the server
// runs it periodically, tests call it directly.
func (s *Store) SweepDecided() {
	s.txMu.Lock()
	s.evictDecidedLocked(time.Now())
	s.txMu.Unlock()
}

// Decided reports whether txid's outcome is in the decided table, and
// whether it committed (tests and diagnostics).
func (s *Store) Decided(txid uint64) (known, committed bool) {
	s.txMu.Lock()
	defer s.txMu.Unlock()
	d, ok := s.decided[txid]
	return ok, d.commit
}

// Abort releases a prepared transaction's locks without applying, and
// records the abort decision. Aborting an unknown transaction is a
// no-op (idempotent, so the coordinator can abort blindly after a
// partial prepare).
func (s *Store) Abort(txid uint64) {
	s.abort(txid, false)
}

func (s *Store) abort(txid uint64, orphan bool) {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	s.txMu.Lock()
	rec := s.txs[txid]
	delete(s.txs, txid)
	s.txMu.Unlock()
	if rec == nil {
		return
	}
	s.abortLocked(txid, rec, orphan)
	s.maybeCheckpointLocked()
}

// abortLocked resolves a transaction already removed from the prepared
// table as aborted: decision emitted if owed, locks released, outcome
// recorded — one repMu critical section. Caller holds repMu.
//
// A replicated prepare owes the stream its decision: the backup (and
// the write-ahead log) must release the staged locks too. The abort
// never waits on the durability watermark — locks must come free even
// when the backup is unreachable; a missed record surfaces as a loud
// sequence gap on the backup's next batch.
func (s *Store) abortLocked(txid uint64, rec *txRecord, orphan bool) {
	if rec.replicated && s.replicatingLocked() {
		s.emitLocked(kv.ReplRecord{Kind: kv.RecDecide, TxID: txid, Commit: false})
	}
	s.releaseLocks(txid, rec.oids)
	s.recordDecision(txid, decision{commit: false})
	s.stats.Aborts.Add(1)
	if orphan {
		s.stats.OrphanAborts.Add(1)
	}
}

// SweepOrphans aborts prepares whose decision never arrived, subject
// to the epoch discipline:
//
// In an epoch-bearing group, a prepare may be TTL-aborted only when
// the epoch under which it was accepted is provably superseded (the
// group moved on — a failover or re-formation happened, and the TTL,
// restarted at the bump, has since given the coordinator a full window
// to redirect its decision to this member). A prepare whose epoch is
// still current is NEVER unilaterally aborted: its coordinator may be
// slow, partitioned, or mid-drive on a decided commit, and aborting
// against a decided commit breaks atomicity — the exact window the
// PR 2 TTL left open. Within a stable epoch, 2PC blocks, safely; an
// operator can force an epoch bump to reap a provably dead
// coordinator's locks.
//
// Legacy (epoch-0) stores keep the old availability-first TTL abort:
// there is no configuration history to consult, and an unreplicated
// server's stranded locks have no safe owner to wait for. Prepares
// staged over the replication stream get streamOrphanGrace times the
// TTL there — while the primary is alive its own TTL abort arrives
// over the stream first.
//
// A transaction with a recorded decision is never swept (it left the
// prepared table when the decision was applied). The server runs this
// periodically; tests call it directly. It returns how many prepares
// were aborted.
func (s *Store) SweepOrphans() int {
	now := time.Now()
	curEpoch := s.Epoch()
	var victims []uint64
	s.txMu.Lock()
	for txid, rec := range s.txs {
		if curEpoch > 0 {
			if rec.epoch >= curEpoch {
				continue // coordinator's epoch still current: block, never abort
			}
			if now.Sub(rec.preparedAt) >= s.cfg.PrepareTTL {
				victims = append(victims, txid)
			}
			continue
		}
		ttl := s.cfg.PrepareTTL
		if rec.viaStream {
			ttl *= streamOrphanGrace
		}
		if now.Sub(rec.preparedAt) >= ttl {
			victims = append(victims, txid)
		}
	}
	s.txMu.Unlock()
	for _, txid := range victims {
		s.abort(txid, true)
	}
	return len(victims)
}

func (s *Store) releaseLocks(txid uint64, oids []kv.OID) {
	for _, oid := range oids {
		sh := s.shardFor(oid)
		sh.mu.Lock()
		obj := sh.objs[oid]
		if obj != nil && obj.lock != nil && obj.lock.txid == txid {
			close(obj.lock.done)
			obj.lock = nil
			if len(obj.versions) == 0 {
				delete(sh.objs, oid)
			}
		}
		sh.mu.Unlock()
	}
}

// FastCommit executes a single-participant transaction in one step:
// prepare and commit without a second round trip. It returns the commit
// timestamp. The prepare is not replicated separately — the whole
// transaction rides in one RecCommit stream record — and the commit
// counts toward FastCommits, not Commits (the counters are disjoint).
func (s *Store) FastCommit(txid uint64, start clock.Timestamp, ops []*kv.Op) (clock.Timestamp, error) {
	proposed, err := s.prepare(txid, start, ops, false)
	if err != nil {
		return 0, err
	}
	if _, err := s.commit(txid, proposed); err != nil {
		return 0, err
	}
	s.stats.FastCommits.Add(1)
	return proposed, nil
}

// trimLocked garbage-collects superseded versions. Caller holds the
// shard mutex. We always keep the newest version, plus the newest
// version at or below the retention horizon (the base any
// within-retention snapshot could need).
func (s *Store) trimLocked(obj *object) {
	if len(obj.versions) <= 1 {
		return
	}
	nowMillis := s.clock.Last().WallMillis()
	var horizon clock.Timestamp
	if nowMillis > s.cfg.RetentionMillis {
		horizon = clock.Make(nowMillis-s.cfg.RetentionMillis, 0)
	}
	// Index of newest version with ts <= horizon; everything before it
	// is unreachable by any snapshot >= horizon.
	cut := 0
	for i, v := range obj.versions {
		if v.ts <= horizon {
			cut = i
		}
	}
	// Hard cap: never let a hot object's chain grow without bound even
	// inside the retention window.
	if over := len(obj.versions) - s.cfg.MaxVersions; over > cut {
		cut = over
	}
	if cut > 0 {
		s.stats.GCVersions.Add(uint64(cut))
		if f := obj.versions[cut-1].ts; f > obj.gcFloor {
			obj.gcFloor = f
		}
		obj.versions = append([]version(nil), obj.versions[cut:]...)
	}
}

// SweepTombstones removes unlocked objects whose only version is a
// tombstone older than the retention horizon. The server runs this
// periodically; tests call it directly.
func (s *Store) SweepTombstones() int {
	nowMillis := s.clock.Last().WallMillis()
	var horizon clock.Timestamp
	if nowMillis > s.cfg.RetentionMillis {
		horizon = clock.Make(nowMillis-s.cfg.RetentionMillis, 0)
	}
	removed := 0
	for i := range s.shard {
		sh := &s.shard[i]
		sh.mu.Lock()
		for oid, obj := range sh.objs {
			n := len(obj.versions)
			if obj.lock == nil && n > 0 &&
				obj.versions[n-1].val == nil && obj.versions[n-1].ts <= horizon {
				// Newest version is a tombstone past the horizon: no
				// snapshot inside retention can see older data.
				delete(sh.objs, oid)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// NumObjects reports the number of live objects (for tests and stats).
func (s *Store) NumObjects() int {
	n := 0
	for i := range s.shard {
		s.shard[i].mu.Lock()
		n += len(s.shard[i].objs)
		s.shard[i].mu.Unlock()
	}
	return n
}

// VersionCount reports the number of stored versions of oid (tests).
func (s *Store) VersionCount(oid kv.OID) int {
	sh := s.shardFor(oid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj := sh.objs[oid]
	if obj == nil {
		return 0
	}
	return len(obj.versions)
}

// StateDigest returns a deterministic digest of the store's full
// multi-version state: every object's version history with commit
// timestamps and encoded values. Two replicas that applied the same
// replication stream have equal digests (per-object hashes are XORed,
// so shard iteration order does not matter).
func (s *Store) StateDigest() uint64 {
	var total uint64
	var tsb [8]byte
	for i := range s.shard {
		sh := &s.shard[i]
		sh.mu.Lock()
		for oid, obj := range sh.objs {
			h := fnv.New64a()
			binary.BigEndian.PutUint64(tsb[:], uint64(oid))
			h.Write(tsb[:])
			for _, v := range obj.versions {
				binary.BigEndian.PutUint64(tsb[:], uint64(v.ts))
				h.Write(tsb[:])
				b := wire.NewBuffer(v.val.EncodedSize())
				kv.EncodeValue(b, v.val)
				h.Write(b.Bytes())
			}
			total ^= h.Sum64()
		}
		sh.mu.Unlock()
	}
	return total
}

// IsLocked reports whether oid currently carries a prepare lock (tests).
func (s *Store) IsLocked(oid kv.OID) bool {
	sh := s.shardFor(oid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj := sh.objs[oid]
	return obj != nil && obj.lock != nil
}
