package kvserver

import (
	"errors"
	"testing"

	"yesquel/internal/kv"
)

// The tests here pin down the cell-granularity conflict rules: delta
// operations on disjoint cells of one supervalue commute (both commit);
// overlapping or structural writes conflict (first committer wins).

func prepCommit(t *testing.T, s *Store, start kv.Timestamp, ops []*kv.Op) error {
	t.Helper()
	tx := newTxID()
	p, err := s.Prepare(tx, start, ops)
	if err != nil {
		return err
	}
	return s.Commit(tx, p)
}

func TestConcurrentDisjointListAddsCommute(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewSuper()}}); err != nil {
		t.Fatal(err)
	}
	// Two transactions with the same snapshot insert different cells.
	start1 := s.Clock().Now()
	start2 := s.Clock().Now()
	if err := prepCommit(t, s, start1, []*kv.Op{{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: []byte("a"), Value: []byte("1")}}}); err != nil {
		t.Fatalf("first delta: %v", err)
	}
	if err := prepCommit(t, s, start2, []*kv.Op{{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: []byte("b"), Value: []byte("2")}}}); err != nil {
		t.Fatalf("second disjoint delta should commute: %v", err)
	}
	v, _, err := s.Read(oid, s.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	if v.NumCells() != 2 {
		t.Fatalf("merged cells = %d, want 2", v.NumCells())
	}
}

func TestConcurrentSameCellConflicts(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewSuper()}}); err != nil {
		t.Fatal(err)
	}
	start1 := s.Clock().Now()
	start2 := s.Clock().Now()
	if err := prepCommit(t, s, start1, []*kv.Op{{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: []byte("k"), Value: []byte("1")}}}); err != nil {
		t.Fatal(err)
	}
	err := prepCommit(t, s, start2, []*kv.Op{{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: []byte("k"), Value: []byte("2")}}})
	if !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("same-cell concurrent write: got %v, want conflict", err)
	}
}

func TestDeltaVsSingleKeyDeleteConflicts(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	base := kv.NewSuper()
	base.ListAdd([]byte("k"), []byte("v"))
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: base}}); err != nil {
		t.Fatal(err)
	}
	start1 := s.Clock().Now()
	start2 := s.Clock().Now()
	// tx1 deletes cell k (single-key DelRange), tx2 updates it.
	if err := prepCommit(t, s, start1, []*kv.Op{{Kind: kv.OpListDelRange, OID: oid, From: []byte("k"), To: []byte("k\x00")}}); err != nil {
		t.Fatal(err)
	}
	err := prepCommit(t, s, start2, []*kv.Op{{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: []byte("k"), Value: []byte("new")}}})
	if !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("update vs delete of same cell: got %v, want conflict", err)
	}
}

func TestDeltaVsStructuralConflicts(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	base := kv.NewSuper()
	for _, k := range []string{"a", "b", "c", "d"} {
		base.ListAdd([]byte(k), []byte(k))
	}
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: base}}); err != nil {
		t.Fatal(err)
	}
	start1 := s.Clock().Now()
	start2 := s.Clock().Now()
	// tx1 performs a split-like structural change (range delete +
	// fence change); tx2 inserts a cell that is not even in the moved
	// range. They must still conflict: the fence moved.
	splitOps := []*kv.Op{
		{Kind: kv.OpListDelRange, OID: oid, From: []byte("c"), To: nil},
		{Kind: kv.OpSetBounds, OID: oid, Low: []byte{}, High: []byte("c")},
	}
	if err := prepCommit(t, s, start1, splitOps); err != nil {
		t.Fatal(err)
	}
	err := prepCommit(t, s, start2, []*kv.Op{{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: []byte("a2"), Value: []byte("x")}}})
	if !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("delta vs structural: got %v, want conflict", err)
	}
	// And the mirror order: structural after delta.
	start3 := s.Clock().Now()
	start4 := s.Clock().Now()
	if err := prepCommit(t, s, start3, []*kv.Op{{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: []byte("a3"), Value: []byte("x")}}}); err != nil {
		t.Fatal(err)
	}
	err = prepCommit(t, s, start4, []*kv.Op{
		{Kind: kv.OpListDelRange, OID: oid, From: []byte("b"), To: nil},
		{Kind: kv.OpSetBounds, OID: oid, Low: []byte{}, High: []byte("b")},
	})
	if !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("structural vs delta: got %v, want conflict", err)
	}
}

func TestAttrSetConflictsOnSameSlotOnly(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewSuper()}}); err != nil {
		t.Fatal(err)
	}
	start1 := s.Clock().Now()
	start2 := s.Clock().Now()
	start3 := s.Clock().Now()
	if err := prepCommit(t, s, start1, []*kv.Op{{Kind: kv.OpAttrSet, OID: oid, Attr: 0, Num: 1}}); err != nil {
		t.Fatal(err)
	}
	// Different attribute slot: commutes.
	if err := prepCommit(t, s, start2, []*kv.Op{{Kind: kv.OpAttrSet, OID: oid, Attr: 1, Num: 2}}); err != nil {
		t.Fatalf("disjoint attrs should commute: %v", err)
	}
	// Same slot: conflicts.
	err := prepCommit(t, s, start3, []*kv.Op{{Kind: kv.OpAttrSet, OID: oid, Attr: 0, Num: 3}})
	if !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("same attr slot: got %v, want conflict", err)
	}
}

func TestDeltaVsTombstoneConflicts(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewSuper()}}); err != nil {
		t.Fatal(err)
	}
	start1 := s.Clock().Now()
	start2 := s.Clock().Now()
	if err := prepCommit(t, s, start1, []*kv.Op{{Kind: kv.OpDelete, OID: oid}}); err != nil {
		t.Fatal(err)
	}
	// A concurrent delta must not silently resurrect the object.
	err := prepCommit(t, s, start2, []*kv.Op{{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: []byte("k")}}})
	if !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("delta vs tombstone: got %v, want conflict", err)
	}
}

func TestSweepTombstones(t *testing.T) {
	s := NewStore(nil, Config{RetentionMillis: 1})
	oid := kv.MakeOID(0, 1)
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("x"))}}); err != nil {
		t.Fatal(err)
	}
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{{Kind: kv.OpDelete, OID: oid}}); err != nil {
		t.Fatal(err)
	}
	// Tombstone survives the delete commit...
	if s.NumObjects() != 1 {
		t.Fatalf("objects after delete = %d", s.NumObjects())
	}
	// ...and is swept once past the horizon. Advance the clock: fake
	// wall time far in the future.
	s.Clock().Observe(makeFutureTS(s))
	if n := s.SweepTombstones(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if s.NumObjects() != 0 {
		t.Fatalf("objects after sweep = %d", s.NumObjects())
	}
}

func makeFutureTS(s *Store) kv.Timestamp {
	cur := s.Clock().Last()
	return kv.Timestamp(uint64(cur) + (1000 << 16)) // +1000ms in wall bits
}

func TestConcurrentInsertsManyWorkersOneLeaf(t *testing.T) {
	// Throughput-critical property: N workers inserting distinct cells
	// into one object with snapshot reuse should (almost) never abort.
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewSuper()}}); err != nil {
		t.Fatal(err)
	}
	// Phase 1: a shared stale snapshot still commutes as long as the
	// version chain stays within the MaxVersions metadata window.
	start := s.Clock().Now()
	for i := 0; i < 50; i++ {
		key := []byte{0, byte(i)}
		ops := []*kv.Op{{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: key, Value: []byte("v")}}}
		if err := prepCommit(t, s, start, ops); err != nil {
			t.Fatalf("insert %d with stale snapshot: %v", i, err)
		}
	}
	// Phase 2: fresh snapshots never conflict regardless of chain
	// length (the common case: each insert begins a new transaction).
	for i := 0; i < 200; i++ {
		key := []byte{1, byte(i / 16), byte(i % 16)}
		ops := []*kv.Op{{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: key, Value: []byte("v")}}}
		if err := prepCommit(t, s, s.Clock().Now(), ops); err != nil {
			t.Fatalf("fresh-snapshot insert %d: %v", i, err)
		}
	}
	v, _, err := s.Read(oid, s.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	if v.NumCells() != 250 {
		t.Fatalf("cells = %d, want 250", v.NumCells())
	}
}
