package kvserver

import (
	"errors"
	"testing"

	"yesquel/internal/clock"
	"yesquel/internal/kv"
)

// testDirectory builds a two-route directory: route 0 owned by group 0,
// route 1 owned by group 1.
func testDirectory(version uint64) *kv.Directory {
	return &kv.Directory{
		Version: version,
		Routes:  []uint32{0, 1},
		Groups:  [][]string{{"g0:1"}, {"g1:1"}},
	}
}

func TestInstallDirectoryVersionGate(t *testing.T) {
	s := NewStore(nil, Config{})
	if s.Directory() != nil || s.DirVersion() != 0 {
		t.Fatal("fresh store has a directory")
	}
	if !s.InstallDirectory(testDirectory(2), 0) {
		t.Fatal("first install refused")
	}
	if s.InstallDirectory(testDirectory(1), 0) {
		t.Fatal("older install accepted")
	}
	if s.InstallDirectory(testDirectory(2), 0) {
		t.Fatal("equal-version install accepted")
	}
	if v := s.DirVersion(); v != 2 {
		t.Fatalf("DirVersion = %d, want 2", v)
	}
	if !s.InstallDirectory(testDirectory(3), 0) {
		t.Fatal("newer install refused")
	}
}

func TestCheckClientSlotAndRouteLoad(t *testing.T) {
	s := NewStore(nil, Config{})
	owned := kv.MakeOID(0, 1)   // route 0 — ours
	foreign := kv.MakeOID(1, 2) // route 1 — group 1's

	// No directory: everything accepted, nothing counted.
	if err := s.CheckClientSlot(foreign); err != nil {
		t.Fatalf("no-directory check: %v", err)
	}

	s.InstallDirectory(testDirectory(1), 0)
	if err := s.CheckClientSlot(owned); err != nil {
		t.Fatalf("owned slot rejected: %v", err)
	}
	err := s.CheckClientSlot(foreign)
	var ws *kv.WrongSlotError
	if !errors.As(err, &ws) {
		t.Fatalf("foreign slot: got %v, want WrongSlotError", err)
	}
	if ws.Version != 1 || ws.Route != 1 || ws.Group != 1 || len(ws.Members) != 1 || ws.Members[0] != "g1:1" {
		t.Fatalf("redirect payload %+v", ws)
	}
	loads := s.RouteLoad()
	if len(loads) != 2 || loads[0] != 1 || loads[1] != 0 {
		t.Fatalf("RouteLoad = %v, want [1 0]", loads)
	}
	if got := s.Stats().WrongSlotRejects; got != 1 {
		t.Fatalf("WrongSlotRejects = %d, want 1", got)
	}
}

func TestPrepareFencedByDirectory(t *testing.T) {
	s := NewStore(nil, Config{})
	s.InstallDirectory(testDirectory(1), 0)

	// Owned route: full write path works.
	commitPut(t, s, kv.MakeOID(0, 1), "mine")

	// Foreign route: prepare is rejected with the typed redirect and
	// leaves no residue.
	foreign := kv.MakeOID(1, 1)
	txid := newTxID()
	_, err := s.Prepare(txid, s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: foreign, Value: kv.NewPlain([]byte("x"))},
	})
	if !errors.Is(err, kv.ErrWrongSlot) {
		t.Fatalf("foreign prepare: got %v, want ErrWrongSlot", err)
	}
	if s.IsLocked(foreign) {
		t.Fatal("fenced prepare left a lock behind")
	}
}

func TestCommitFencedAfterMidFlightInstall(t *testing.T) {
	// A transaction whose prepare did NOT enter the replication stream
	// (the fast-commit staging path) must be fenced at commit time: its
	// ops would otherwise enter the stream above the fence point.
	s := NewStore(nil, Config{ReplicationLog: true})
	oid := kv.MakeOID(1, 7)
	txid := newTxID()
	proposed, err := s.prepare(txid, s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("late"))},
	}, false)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}

	// Route 1 moves away between prepare and commit.
	s.InstallDirectory(testDirectory(1), 0)

	err = s.Commit(txid, proposed)
	if !errors.Is(err, kv.ErrWrongSlot) {
		t.Fatalf("fenced commit: got %v, want ErrWrongSlot", err)
	}
	if s.IsLocked(oid) {
		t.Fatal("fenced commit left a lock behind")
	}
	if _, _, err := s.Read(oid, s.Clock().Now()); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("fenced commit installed a version: %v", err)
	}
}

func TestReplicatedPrepareExemptFromCommitFence(t *testing.T) {
	// A REPLICATED prepare sits below the fence in the stream; the
	// migration tail carries it and its decision to the destination, so
	// fencing the commit would strand a promised vote. The decision must
	// land.
	s := NewStore(nil, Config{ReplicationLog: true})
	oid := kv.MakeOID(1, 8)
	txid := newTxID()
	proposed, err := s.Prepare(txid, s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("voted"))},
	})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s.InstallDirectory(testDirectory(1), 0)
	if err := s.Commit(txid, proposed); err != nil {
		t.Fatalf("replicated prepare's commit fenced: %v", err)
	}
}

func TestCaptureIngestRoundTrip(t *testing.T) {
	src := NewStore(nil, Config{ReplicationLog: true})
	moving1 := kv.MakeOID(1, 1) // route 1 of 2
	moving3 := kv.MakeOID(3, 2) // slot 3 → route 1 of 2
	staying := kv.MakeOID(0, 3) // route 0 of 2

	commitPut(t, src, moving1, "a1")
	commitPut(t, src, moving1, "a2") // two versions; only newest must survive digest-wise
	commitPut(t, src, moving3, "b1")
	commitPut(t, src, staying, "keep")

	enc, head, err := src.CaptureRoute(1, 2)
	if err != nil {
		t.Fatalf("CaptureRoute: %v", err)
	}
	if head == 0 {
		t.Fatal("capture head = 0")
	}

	dst := NewStore(nil, Config{ReplicationLog: true})
	srcHead, preps, err := dst.IngestMigratedObjects(enc)
	if err != nil {
		t.Fatalf("IngestMigratedObjects: %v", err)
	}
	if srcHead != head {
		t.Fatalf("ingest head = %d, want %d", srcHead, head)
	}
	if len(preps) != 0 {
		t.Fatalf("unexpected in-flight prepares: %d", len(preps))
	}

	for oid, want := range map[kv.OID]string{moving1: "a2", moving3: "b1"} {
		v, _, err := dst.Read(oid, dst.Clock().Now())
		if err != nil {
			t.Fatalf("dst read %v: %v", oid, err)
		}
		if string(v.Data) != want {
			t.Fatalf("dst read %v = %q, want %q", oid, v.Data, want)
		}
	}
	if _, _, err := dst.Read(staying, dst.Clock().Now()); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("non-route object leaked to destination: %v", err)
	}

	if sd, dd := src.SlotDigest(1, 2), dst.SlotDigest(1, 2); sd != dd {
		t.Fatalf("slot digests differ after ingest: src=%x dst=%x", sd, dd)
	}
}

func TestCaptureRouteRequiresReplicationLog(t *testing.T) {
	s := NewStore(nil, Config{})
	commitPut(t, s, kv.MakeOID(1, 1), "x")
	if _, _, err := s.CaptureRoute(1, 2); err == nil {
		t.Fatal("capture succeeded without a replication log")
	}
}

func TestIngestMigratedCommitDedupe(t *testing.T) {
	dst := NewStore(nil, Config{ReplicationLog: true})
	oid := kv.MakeOID(1, 9)
	ts := dst.Clock().Now()
	ops := []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("once"))}}

	if err := dst.IngestMigratedCommit(ts, ops); err != nil {
		t.Fatalf("first ingest: %v", err)
	}
	want := dst.SlotDigest(1, 2)
	migrated := dst.Stats().MigratedVersions

	// Replaying the same commit (same timestamp) must be a no-op: the
	// migration tail can deliver a record the bulk capture already
	// carried.
	if err := dst.IngestMigratedCommit(ts, ops); err != nil {
		t.Fatalf("duplicate ingest: %v", err)
	}
	if got := dst.SlotDigest(1, 2); got != want {
		t.Fatalf("duplicate ingest changed the digest: %x vs %x", got, want)
	}
	if got := dst.Stats().MigratedVersions; got != migrated {
		t.Fatalf("duplicate ingest counted: %d vs %d", got, migrated)
	}

	v, _, err := dst.Read(oid, dst.Clock().Now())
	if err != nil || string(v.Data) != "once" {
		t.Fatalf("read after dedupe: %q, %v", v, err)
	}

	// A tombstone ingests as a delete and digests identically on a
	// store that saw it live.
	ts2 := dst.Clock().Now()
	if err := dst.IngestMigratedCommit(ts2, []*kv.Op{{Kind: kv.OpDelete, OID: oid}}); err != nil {
		t.Fatalf("tombstone ingest: %v", err)
	}
	if _, _, err := dst.Read(oid, dst.Clock().Now()); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("read after tombstone: %v", err)
	}
}

func TestSlotDigestOrderIndependent(t *testing.T) {
	// The digest is an XOR combine: ingest order must not matter, and
	// per-object history depth must not matter (newest version only).
	mk := func(vals [][3]uint64) *Store {
		s := NewStore(nil, Config{ReplicationLog: true})
		for _, v := range vals {
			oid := kv.MakeOID(uint16(v[0]), v[1])
			err := s.IngestMigratedCommit(clock.Timestamp(v[2]), []*kv.Op{
				{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte{byte(v[2])})},
			})
			if err != nil {
				t.Fatalf("ingest: %v", err)
			}
		}
		return s
	}
	a := mk([][3]uint64{{1, 1, 10}, {1, 1, 20}, {3, 2, 30}})
	b := mk([][3]uint64{{3, 2, 30}, {1, 1, 20}}) // no stale 10 for (1,1)
	if da, db := a.SlotDigest(1, 2), b.SlotDigest(1, 2); da != db {
		t.Fatalf("digest depends on ingest order/history: %x vs %x", da, db)
	}
	if a.SlotDigest(0, 2) != 0 {
		t.Fatal("empty route digest non-zero")
	}
}

func TestHasPreparedOnRoute(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(1, 4)
	txid := newTxID()
	proposed, err := s.Prepare(txid, s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("p"))},
	})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if !s.HasPreparedOnRoute(1, 2) {
		t.Fatal("prepared tx on route 1 not seen")
	}
	if s.HasPreparedOnRoute(0, 2) {
		t.Fatal("route 0 reported busy")
	}
	if err := s.Commit(txid, proposed); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if s.HasPreparedOnRoute(1, 2) {
		t.Fatal("route 1 still busy after commit")
	}
}
