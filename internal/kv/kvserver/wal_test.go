package kvserver

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"yesquel/internal/kv"
)

func walStore(t *testing.T, path string) *Store {
	t.Helper()
	s, err := OpenStore(nil, Config{LogPath: path, LogSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWALRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s := walStore(t, path)

	oid1 := kv.MakeOID(0, 1)
	oid2 := kv.MakeOID(0, 2)
	commitPut(t, s, oid1, "v1")
	commitPut(t, s, oid1, "v2") // second version
	ts := commitPut(t, s, oid2, "other")
	// Delta commits must replay too.
	oid3 := kv.MakeOID(0, 3)
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpListAdd, OID: oid3, Cell: kv.Cell{Key: []byte("a"), Value: []byte("1")}},
		{Kind: kv.OpAttrSet, OID: oid3, Attr: 2, Num: 9},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseLog(); err != nil {
		t.Fatal(err)
	}

	// Reopen: all committed state is back.
	s2 := walStore(t, path)
	defer s2.CloseLog()
	v, _, err := s2.Read(oid1, s2.Clock().Now())
	if err != nil || string(v.Data) != "v2" {
		t.Fatalf("recovered oid1: %v %v", v, err)
	}
	v, ver, err := s2.Read(oid2, s2.Clock().Now())
	if err != nil || string(v.Data) != "other" {
		t.Fatalf("recovered oid2: %v %v", v, err)
	}
	if ver != ts {
		t.Fatalf("commit timestamp not preserved: %d vs %d", ver, ts)
	}
	v, _, err = s2.Read(oid3, s2.Clock().Now())
	if err != nil || v.NumCells() != 1 || v.Attrs[2] != 9 {
		t.Fatalf("recovered deltas: %+v %v", v, err)
	}
	// MVCC history: the pre-v2 version of oid1 is reachable below ts.
	// (Replay preserves timestamps, so time travel still works.)
	if vv, _, err := s2.Read(oid1, ver-1); err == nil {
		if string(vv.Data) != "v1" && string(vv.Data) != "v2" {
			t.Fatalf("historical read: %q", vv.Data)
		}
	}
}

func TestWALRecoveryAfterDeleteAndNewWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s := walStore(t, path)
	oid := kv.MakeOID(0, 7)
	commitPut(t, s, oid, "x")
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{{Kind: kv.OpDelete, OID: oid}}); err != nil {
		t.Fatal(err)
	}
	s.CloseLog()

	s2 := walStore(t, path)
	if _, _, err := s2.Read(oid, s2.Clock().Now()); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("deleted object resurrected: %v", err)
	}
	// The recovered store continues appending to the same log.
	commitPut(t, s2, oid, "reborn")
	s2.CloseLog()

	s3 := walStore(t, path)
	defer s3.CloseLog()
	v, _, err := s3.Read(oid, s3.Clock().Now())
	if err != nil || string(v.Data) != "reborn" {
		t.Fatalf("second recovery: %v %v", v, err)
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s := walStore(t, path)
	oid := kv.MakeOID(0, 1)
	commitPut(t, s, oid, "good")
	s.CloseLog()

	// Simulate a crash mid-append: garbage header at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x00, 0xff, 0x12})
	f.Close()

	s2 := walStore(t, path)
	defer s2.CloseLog()
	v, _, err := s2.Read(oid, s2.Clock().Now())
	if err != nil || string(v.Data) != "good" {
		t.Fatalf("recovery with torn tail: %v %v", v, err)
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s := walStore(t, path)
	commitPut(t, s, kv.MakeOID(0, 1), "one")
	commitPut(t, s, kv.MakeOID(0, 2), "two")
	s.CloseLog()

	// Flip a byte in the middle of the file: replay keeps everything
	// before the damaged record and drops the rest.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(nil, Config{LogPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseLog()
	// At least one object survives; no panic, no error.
	if s2.NumObjects() == 0 {
		t.Fatal("corrupt middle lost everything before it")
	}
}

func TestWALAbortedTxNotLogged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s := walStore(t, path)
	oid := kv.MakeOID(0, 1)
	txid := newTxID()
	if _, err := s.Prepare(txid, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("no"))}}); err != nil {
		t.Fatal(err)
	}
	s.Abort(txid)
	s.CloseLog()

	s2 := walStore(t, path)
	defer s2.CloseLog()
	if _, _, err := s2.Read(oid, s2.Clock().Now()); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("aborted tx recovered: %v", err)
	}
}

// TestWALCheckpointMultiFrameSnapshot: a rotated snapshot larger than
// one frame chunk is split across consecutive leading frames and
// reassembled on replay — the path that keeps stores bigger than the
// wire frame limit checkpointable.
func TestWALCheckpointMultiFrameSnapshot(t *testing.T) {
	old := walSnapChunkBytes
	walSnapChunkBytes = 128 // force many frames without gigabytes of state
	defer func() { walSnapChunkBytes = old }()

	path := filepath.Join(t.TempDir(), "store.log")
	cfg := Config{LogPath: path, ReplicationLog: true}
	s, err := OpenStore(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		commitPut(t, s, kv.MakeOID(0, uint64(i)), fmt.Sprintf("v%d", i))
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitPut(t, s, kv.MakeOID(0, 99), "tail")
	digest, seq := s.StateDigest(), s.ReplSeq()
	s.CloseLog()

	s2, err := OpenStore(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseLog()
	if got := s2.StateDigest(); got != digest {
		t.Fatalf("multi-frame restart digest %x != %x", got, digest)
	}
	if got := s2.ReplSeq(); got != seq {
		t.Fatalf("multi-frame restart seq %d != %d", got, seq)
	}
}

func TestWALManyCommitsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenStore(nil, Config{LogPath: path}) // no per-commit sync: still ordered
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		commitPut(t, s, kv.MakeOID(0, uint64(i)), fmt.Sprintf("v%d", i))
	}
	s.CloseLog()
	s2 := walStore(t, path)
	defer s2.CloseLog()
	for i := 0; i < n; i++ {
		v, _, err := s2.Read(kv.MakeOID(0, uint64(i)), s2.Clock().Now())
		if err != nil || string(v.Data) != fmt.Sprintf("v%d", i) {
			t.Fatalf("object %d: %v %v", i, v, err)
		}
	}
}
