package kvserver

import (
	"errors"
	"fmt"
	"testing"

	"yesquel/internal/kv"
)

func loadedSuperStore(t *testing.T) (*Store, kv.OID) {
	t.Helper()
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 1)
	v := kv.NewSuper()
	v.Attrs[0] = 5
	v.LowKey = []byte("a")
	v.HighKey = []byte("z")
	for i := 0; i < 10; i++ {
		v.ListAdd([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(i)})
	}
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: v}}); err != nil {
		t.Fatal(err)
	}
	return s, oid
}

func TestReadPartWindow(t *testing.T) {
	s, oid := loadedSuperStore(t)
	snap := s.Clock().Now()

	// Exact-key window returns the cell (floor == the key itself).
	v, total, _, err := s.ReadPart(oid, snap, []byte("k03"), []byte("k03\x00"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	if got, ok := v.ListGet([]byte("k03")); !ok || got[0] != 3 {
		t.Fatalf("cell k03: %v %v", got, ok)
	}
	// Fences and attrs always come back.
	if string(v.LowKey) != "a" || string(v.HighKey) != "z" || v.Attrs[0] != 5 {
		t.Fatalf("header lost: %+v", v)
	}

	// Between keys: the floor (predecessor) is included so routing and
	// absence checks work.
	v, _, _, err = s.ReadPart(oid, snap, []byte("k03x"), []byte("k03x\x00"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.ListGet([]byte("k03x")); ok {
		t.Fatal("phantom cell")
	}
	if _, ok := v.ListGet([]byte("k03")); !ok {
		t.Fatal("floor cell missing")
	}

	// Tail window.
	v, _, _, err = s.ReadPart(oid, snap, []byte("k07"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumCells() != 3 {
		t.Fatalf("tail cells = %d, want 3", v.NumCells())
	}

	// Max cap.
	v, _, _, err = s.ReadPart(oid, snap, []byte("k00"), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumCells() != 4 {
		t.Fatalf("capped cells = %d", v.NumCells())
	}

	// Before the first cell: no floor, window starts at the beginning.
	v, _, _, err = s.ReadPart(oid, snap, []byte("a"), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumCells() != 1 || string(v.Cells[0].Key) != "k00" {
		t.Fatalf("window before first cell: %+v", v.Cells)
	}
}

func TestReadPartPlainValueAndMissing(t *testing.T) {
	s := NewStore(nil, Config{})
	oid := kv.MakeOID(0, 2)
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("p"))}}); err != nil {
		t.Fatal(err)
	}
	v, total, _, err := s.ReadPart(oid, s.Clock().Now(), []byte("x"), nil, 1)
	if err != nil || v.Kind != kv.KindPlain || string(v.Data) != "p" || total != 0 {
		t.Fatalf("plain through ReadPart: %+v %d %v", v, total, err)
	}
	if _, _, _, err := s.ReadPart(kv.MakeOID(0, 99), s.Clock().Now(), nil, nil, 0); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
}

func TestReadPartSnapshotConsistency(t *testing.T) {
	s, oid := loadedSuperStore(t)
	snap := s.Clock().Now()
	// Mutate after the snapshot.
	if err := prepCommit(t, s, s.Clock().Now(), []*kv.Op{{Kind: kv.OpListAdd, OID: oid, Cell: kv.Cell{Key: []byte("k05x"), Value: []byte("new")}}}); err != nil {
		t.Fatal(err)
	}
	v, total, _, err := s.ReadPart(oid, snap, []byte("k05"), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if total != 10 {
		t.Fatalf("old snapshot total = %d", total)
	}
	if _, ok := v.ListGet([]byte("k05x")); ok {
		t.Fatal("future cell visible at old snapshot")
	}
}
