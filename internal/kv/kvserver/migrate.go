package kvserver

// Slot migration: the store-side half of moving a directory route from
// one replica group to another (internal/cluster orchestrates the
// protocol; see its package comment for the full fencing argument).
//
// The source side exports a consistent bulk capture of one route's
// objects (CaptureRoute, taken under repMu at a recorded stream head)
// plus the retained log tail (MigrationRecords) so the orchestrator can
// stream the live delta while writes continue. The destination side
// ingests both through its OWN replication stream: every migrated
// version is re-emitted as an ordinary RecCommit record (a synthetic
// transaction id with the high bit set), so the destination's backups
// converge through the normal mirror/sync machinery and no new record
// kind is needed on the wire — old peers replicate migrated state as
// plain commits. Ingest is idempotent: a version whose timestamp is at
// or below the object's newest is skipped BEFORE emission, so a
// restarted migration (new bulk capture overlapping an already-applied
// tail) never double-applies on the primary or its backups.
//
// The write fence is the directory itself: InstallDirectory takes repMu,
// and the write paths re-check route ownership under repMu immediately
// before emitting (fencedOIDsLocked), so every stream record is totally
// ordered against the fence — emitted entirely before it (the tail
// delivers it to the destination) or rejected with the typed
// WrongSlotError after it. Decisions for already-replicated prepares
// are deliberately NOT fenced: their prepare is in the stream below the
// fence, the destination stages it from the tail, and the decision
// rides the same tail.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"

	"yesquel/internal/clock"
	"yesquel/internal/kv"
	"yesquel/internal/wire"
)

// InstallDirectory installs d (deep-copied) as this store's slot
// directory and records the store's own group index within it,
// reporting whether the install happened (a version at or below the
// current one is a no-op — directories, like epochs, never move
// backwards). Taking repMu orders the install against every record
// emission: a route moved away by d is fenced exactly at this point in
// the stream.
func (s *Store) InstallDirectory(d *kv.Directory, groupIdx uint32) bool {
	d = d.Clone()
	s.repMu.Lock()
	defer s.repMu.Unlock()
	s.dirMu.Lock()
	defer s.dirMu.Unlock()
	if s.dir != nil && d.Version <= s.dir.Version {
		return false
	}
	if len(s.routeLoad) != len(d.Routes) {
		// Route count changes only at formation (e.g. an elastic
		// directory replacing the identity one); new counters start
		// cold.
		s.routeLoad = make([]atomic.Uint64, len(d.Routes))
	}
	s.dir = d
	s.dirGroup = groupIdx
	return true
}

// Directory returns the installed slot directory (nil if none). The
// returned value is shared and must be treated as read-only — installs
// replace the pointer, never mutate in place.
func (s *Store) Directory() *kv.Directory {
	s.dirMu.Lock()
	defer s.dirMu.Unlock()
	return s.dir
}

// DirVersion returns the installed directory's version (0 = none), the
// value every Ack piggybacks.
func (s *Store) DirVersion() uint64 {
	s.dirMu.Lock()
	defer s.dirMu.Unlock()
	if s.dir == nil {
		return 0
	}
	return s.dir.Version
}

// CheckClientSlot gates a client operation on oid behind the slot
// directory: if a directory is installed and oid's route is owned by
// another group, the typed WrongSlotError (carrying the directory
// version and the owner) rejects it — a guarantee the operation was not
// executed. On success the route's load counter is bumped — the
// rebalancer's donor-selection signal. Stores without a directory
// accept everything (legacy modulo routing).
func (s *Store) CheckClientSlot(oid kv.OID) error {
	s.dirMu.Lock()
	defer s.dirMu.Unlock()
	if s.dir == nil {
		return nil
	}
	route := s.dir.RouteFor(oid)
	if s.dir.Routes[route] != s.dirGroup {
		return s.wrongSlotLocked(route)
	}
	s.routeLoad[route].Add(1)
	return nil
}

// wrongSlotLocked builds the typed rejection carrying the current
// directory version and the route's owning group. Caller holds dirMu
// with a directory installed.
func (s *Store) wrongSlotLocked(route uint32) *kv.WrongSlotError {
	s.stats.WrongSlotRejects.Add(1)
	owner := s.dir.Routes[route]
	var members []string
	if int(owner) < len(s.dir.Groups) {
		members = append([]string(nil), s.dir.Groups[owner]...)
	}
	return &kv.WrongSlotError{Version: s.dir.Version, Route: route, Group: owner, Members: members}
}

// fencedOIDsLocked is the write-path fence: it re-checks route
// ownership for every OID a transaction writes, under repMu, so the
// check and the subsequent record emission are one atomic point in the
// stream relative to InstallDirectory. Returns nil when no directory is
// installed or every route is owned. Caller holds repMu.
func (s *Store) fencedOIDsLocked(oids []kv.OID) *kv.WrongSlotError {
	s.dirMu.Lock()
	defer s.dirMu.Unlock()
	if s.dir == nil {
		return nil
	}
	for _, oid := range oids {
		route := s.dir.RouteFor(oid)
		if s.dir.Routes[route] != s.dirGroup {
			return s.wrongSlotLocked(route)
		}
	}
	return nil
}

// RouteLoad returns a copy of the per-route client-operation counters
// (nil before the first directory install).
func (s *Store) RouteLoad() []uint64 {
	s.dirMu.Lock()
	loads := s.routeLoad
	s.dirMu.Unlock()
	out := make([]uint64, len(loads))
	for i := range loads {
		out[i] = loads[i].Load()
	}
	return out
}

// SlotDigest returns a deterministic digest of one route's CURRENT
// state: for every object whose slot maps to route (slot % nroutes),
// the OID and the newest version's timestamp and encoded value,
// XOR-combined like StateDigest. Unlike StateDigest it hashes only the
// newest version of each object: version-history depth differs across
// replicas of DIFFERENT groups (the destination replays old history at
// ingest time, so its retention trims can cut differently than the
// source's incremental ones), while the newest version — the state
// every acknowledged write resolves to — is never trimmed. Migration
// cutover compares source and destination SlotDigests; a mismatch means
// an acked write was lost or duplicated in transfer.
func (s *Store) SlotDigest(route, nroutes uint32) uint64 {
	var total uint64
	var tsb [8]byte
	for i := range s.shard {
		sh := &s.shard[i]
		sh.mu.Lock()
		for oid, obj := range sh.objs {
			if uint32(oid.Slot())%nroutes != route || len(obj.versions) == 0 {
				continue
			}
			newest := obj.versions[len(obj.versions)-1]
			h := fnv.New64a()
			binary.BigEndian.PutUint64(tsb[:], uint64(oid))
			h.Write(tsb[:])
			binary.BigEndian.PutUint64(tsb[:], uint64(newest.ts))
			h.Write(tsb[:])
			b := wire.NewBuffer(newest.val.EncodedSize())
			kv.EncodeValue(b, newest.val)
			h.Write(b.Bytes())
			total ^= h.Sum64()
		}
		sh.mu.Unlock()
	}
	return total
}

// migFormat versions the route-capture encoding (CaptureRoute /
// IngestMigratedObjects). Like snapshots, a capture is all-or-nothing.
const migFormat byte = 1

// MigPrepare is a replicated in-flight prepare touching a captured
// route: the orchestrator seeds its pending-transaction map with these,
// so a decision arriving in the tail can be applied on the destination
// even though the prepare record itself sits below the capture head.
type MigPrepare struct {
	TxID uint64
	TS   clock.Timestamp
	Ops  []*kv.Op // filtered to the captured route's OIDs
}

// CaptureRoute captures one route's objects (and the route-touching
// replicated prepares) at the current stream head, returning the
// canonical encoding and the head sequence number: records below head
// are fully reflected in the capture, records at or above it are the
// live tail the orchestrator streams afterwards. The capture itself is
// pure in-memory copying under repMu (values are immutable and
// aliased, not copied); callers must wait for head's durability
// (WaitSeqDurable) before ingesting, so a failover on the source can
// never retract captured state the destination already holds.
func (s *Store) CaptureRoute(route, nroutes uint32) (enc []byte, head uint64, err error) {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	if !s.cfg.ReplicationLog {
		return nil, 0, fmt.Errorf("%w: route capture requires the replication log (Config.ReplicationLog)", kv.ErrBadRequest)
	}
	head = s.repSeq

	onRoute := func(oid kv.OID) bool { return uint32(oid.Slot())%nroutes == route }

	var objs []snapObject
	for i := range s.shard {
		sh := &s.shard[i]
		sh.mu.Lock()
		for oid, obj := range sh.objs {
			if !onRoute(oid) || len(obj.versions) == 0 {
				// Version-less objects are lock carriers for in-flight
				// prepares; replicated ones are exported below, the rest
				// must not materialize (same rule as captureSnapshotLocked).
				continue
			}
			o := snapObject{OID: oid, GCFloor: obj.gcFloor, Versions: make([]snapVersion, 0, len(obj.versions))}
			for _, v := range obj.versions {
				o.Versions = append(o.Versions, snapVersion{TS: v.ts, Val: v.val})
			}
			objs = append(objs, o)
		}
		sh.mu.Unlock()
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].OID < objs[j].OID })

	var preps []MigPrepare
	s.txMu.Lock()
	type carried struct {
		txid uint64
		rec  *txRecord
	}
	var cs []carried
	for txid, rec := range s.txs {
		if !rec.replicated {
			continue
		}
		for _, oid := range rec.oids {
			if onRoute(oid) {
				cs = append(cs, carried{txid, rec})
				break
			}
		}
	}
	s.txMu.Unlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].txid < cs[j].txid })
	// Staged ops live on the objects' locks and are stable under repMu
	// (resolving a prepare requires it).
	for _, c := range cs {
		p := MigPrepare{TxID: c.txid}
		for _, oid := range c.rec.oids {
			if !onRoute(oid) {
				continue
			}
			sh := s.shardFor(oid)
			sh.mu.Lock()
			if obj := sh.objs[oid]; obj != nil && obj.lock != nil && obj.lock.txid == c.txid {
				p.TS = obj.lock.proposed
				p.Ops = append(p.Ops, obj.lock.ops...)
			}
			sh.mu.Unlock()
		}
		if len(p.Ops) > 0 {
			preps = append(preps, p)
		}
	}

	b := wire.NewBuffer(1 << 12)
	b.PutByte(migFormat)
	b.PutUvarint(head)
	b.PutUvarint(uint64(route))
	b.PutUvarint(uint64(nroutes))
	b.PutUvarint(uint64(len(objs)))
	for i := range objs {
		o := &objs[i]
		b.PutUint64(uint64(o.OID))
		b.PutUint64(uint64(o.GCFloor))
		b.PutUvarint(uint64(len(o.Versions)))
		for j := range o.Versions {
			b.PutUint64(uint64(o.Versions[j].TS))
			kv.EncodeValue(b, o.Versions[j].Val)
		}
	}
	b.PutUvarint(uint64(len(preps)))
	for i := range preps {
		p := &preps[i]
		b.PutUint64(p.TxID)
		b.PutUint64(uint64(p.TS))
		b.PutUvarint(uint64(len(p.Ops)))
		for _, op := range p.Ops {
			kv.EncodeOp(b, op)
		}
	}
	return b.Bytes(), head, nil
}

// decodeRouteCapture is the inverse of CaptureRoute's encoding.
func decodeRouteCapture(enc []byte) (objs []snapObject, preps []MigPrepare, head uint64, err error) {
	r := wire.NewReader(enc)
	format, err := r.Byte()
	if err != nil {
		return nil, nil, 0, err
	}
	if format != migFormat {
		return nil, nil, 0, fmt.Errorf("%w: route capture format %d (want %d)", kv.ErrBadRequest, format, migFormat)
	}
	if head, err = r.Uvarint(); err != nil {
		return nil, nil, 0, err
	}
	if _, err = r.Uvarint(); err != nil { // route (informational)
		return nil, nil, 0, err
	}
	if _, err = r.Uvarint(); err != nil { // nroutes (informational)
		return nil, nil, 0, err
	}
	nobj, err := r.Uvarint()
	if err != nil {
		return nil, nil, 0, err
	}
	if nobj > snapMaxCount {
		return nil, nil, 0, kv.ErrBadRequest
	}
	objs = make([]snapObject, 0, nobj)
	for i := uint64(0); i < nobj; i++ {
		var o snapObject
		oid, err := r.Uint64()
		if err != nil {
			return nil, nil, 0, err
		}
		o.OID = kv.OID(oid)
		floor, err := r.Uint64()
		if err != nil {
			return nil, nil, 0, err
		}
		o.GCFloor = clock.Timestamp(floor)
		nv, err := r.Uvarint()
		if err != nil {
			return nil, nil, 0, err
		}
		if nv > snapMaxCount {
			return nil, nil, 0, kv.ErrBadRequest
		}
		o.Versions = make([]snapVersion, 0, nv)
		for j := uint64(0); j < nv; j++ {
			ts, err := r.Uint64()
			if err != nil {
				return nil, nil, 0, err
			}
			val, err := kv.DecodeValue(r)
			if err != nil {
				return nil, nil, 0, err
			}
			o.Versions = append(o.Versions, snapVersion{TS: clock.Timestamp(ts), Val: val})
		}
		objs = append(objs, o)
	}
	np, err := r.Uvarint()
	if err != nil {
		return nil, nil, 0, err
	}
	if np > snapMaxCount {
		return nil, nil, 0, kv.ErrBadRequest
	}
	preps = make([]MigPrepare, 0, np)
	for i := uint64(0); i < np; i++ {
		var p MigPrepare
		if p.TxID, err = r.Uint64(); err != nil {
			return nil, nil, 0, err
		}
		ts, err := r.Uint64()
		if err != nil {
			return nil, nil, 0, err
		}
		p.TS = clock.Timestamp(ts)
		nops, err := r.Uvarint()
		if err != nil {
			return nil, nil, 0, err
		}
		if nops > snapMaxCount {
			return nil, nil, 0, kv.ErrBadRequest
		}
		for k := uint64(0); k < nops; k++ {
			op, err := kv.DecodeOp(r)
			if err != nil {
				return nil, nil, 0, err
			}
			p.Ops = append(p.Ops, op)
		}
		preps = append(preps, p)
	}
	return objs, preps, head, nil
}

// IngestMigratedObjects installs a route capture on a migration
// destination: every captured version is re-emitted through THIS
// store's replication stream as an ordinary RecCommit (full-value put,
// or delete for a tombstone) and applied in timestamp order, so the
// destination's backups converge through the normal mirror path.
// Versions at or below an object's newest are skipped before emission
// (idempotent restart). It returns the SOURCE stream head the capture
// covers — the tail cursor — and the route-touching prepares in flight
// at capture time, which the orchestrator holds until their decisions
// arrive in the tail.
//
// Conflict metadata is deliberately lossy: migrated versions install as
// structural full-value writes, and the source's GC floor lands only on
// this primary (the floor is not expressible as a stream record). Both
// only make destination conflict checks more conservative or — after a
// destination failover — marginally less so for pre-migration
// snapshots; values, timestamps, and digests are exact.
func (s *Store) IngestMigratedObjects(enc []byte) (srcHead uint64, preps []MigPrepare, err error) {
	objs, preps, srcHead, err := decodeRouteCapture(enc)
	if err != nil {
		return 0, nil, err
	}
	// All versions are emitted under one repMu hold and waited durable
	// ONCE: a per-version durability wait puts a destination-group
	// round trip behind each of a bulk capture's (possibly hundreds of
	// thousands of) versions, and a tail that cannot outpace the live
	// workload never converges.
	s.repMu.Lock()
	var lastSeq uint64
	emitted := false
	for i := range objs {
		o := &objs[i]
		for _, v := range o.Versions {
			op := &kv.Op{Kind: kv.OpPut, OID: o.OID, Value: v.Val}
			if v.Val == nil {
				op = &kv.Op{Kind: kv.OpDelete, OID: o.OID}
			}
			if seq, ok := s.ingestCommitLocked(v.TS, []*kv.Op{op}); ok {
				lastSeq, emitted = seq, true
			}
		}
		if o.GCFloor > 0 {
			sh := s.shardFor(o.OID)
			sh.mu.Lock()
			if obj := sh.objs[o.OID]; obj != nil && o.GCFloor > obj.gcFloor {
				obj.gcFloor = o.GCFloor
			}
			sh.mu.Unlock()
		}
	}
	s.repMu.Unlock()
	if emitted {
		if err := s.waitReplicated(lastSeq); err != nil {
			return 0, nil, fmt.Errorf("kvserver: replicating migrated objects: %w", err)
		}
	}
	return srcHead, preps, nil
}

// MigCommit is one live-tail transaction's route-filtered ops, queued
// for batched ingestion on a migration destination.
type MigCommit struct {
	TS  clock.Timestamp
	Ops []*kv.Op
}

// IngestMigratedCommit applies one live-tail transaction's
// route-filtered ops on a migration destination, re-emitted through
// this store's stream like IngestMigratedObjects. Idempotent by the
// same per-object newest-timestamp skip.
func (s *Store) IngestMigratedCommit(ts clock.Timestamp, ops []*kv.Op) error {
	return s.IngestMigratedCommits([]MigCommit{{TS: ts, Ops: ops}})
}

// IngestMigratedCommits applies a batch of live-tail transactions in
// order under one stream-lock hold and waits the whole prefix durable
// once. Batching is what lets the migration tail outrun the live
// workload: durability is a destination-group round trip, so paying it
// per record caps the tail at the mirror RTT while the source keeps
// accepting writes at full speed.
func (s *Store) IngestMigratedCommits(commits []MigCommit) error {
	s.repMu.Lock()
	var lastSeq uint64
	emitted := false
	for _, c := range commits {
		if seq, ok := s.ingestCommitLocked(c.TS, c.Ops); ok {
			lastSeq, emitted = seq, true
		}
	}
	s.repMu.Unlock()
	if !emitted {
		return nil
	}
	if err := s.waitReplicated(lastSeq); err != nil {
		return fmt.Errorf("kvserver: replicating migrated commit: %w", err)
	}
	return nil
}

// ingestCommitLocked emits and applies one migrated commit; the caller
// holds repMu and is responsible for waiting the returned sequence
// durable. Ops whose object already has a version at or newer than ts
// are dropped before emission; if none survive, nothing is emitted and
// ok is false.
func (s *Store) ingestCommitLocked(ts clock.Timestamp, ops []*kv.Op) (seq uint64, ok bool) {
	s.clock.Observe(ts)
	fresh := ops[:0:0]
	for _, op := range ops {
		sh := s.shardFor(op.OID)
		sh.mu.Lock()
		obj := sh.objs[op.OID]
		newest := clock.Timestamp(0)
		if obj != nil && len(obj.versions) > 0 {
			newest = obj.versions[len(obj.versions)-1].ts
		}
		sh.mu.Unlock()
		if ts > newest {
			fresh = append(fresh, op)
		}
	}
	if len(fresh) == 0 {
		return 0, false
	}
	// The synthetic transaction id (high bit set, low bits the record's
	// own sequence number) is unique per stream and can never collide
	// with a client transaction id in the decided table.
	txid := uint64(1)<<63 | s.repSeq
	seq = s.emitLocked(kv.ReplRecord{Kind: kv.RecCommit, TxID: txid, TS: ts, Ops: fresh})
	s.applyCommittedOpsLocked(ts, fresh)
	s.recordDecision(txid, decision{commit: true, commitTS: ts, replSeq: seq + 1})
	s.stats.MigratedVersions.Add(uint64(len(fresh)))
	s.maybeCheckpointLocked()
	return seq, true
}

// MigrationRecords returns up to max retained-log records starting at
// from, exactly like SyncRecords but WITHOUT the requester-epoch
// divergence check: the migration orchestrator reads the source group's
// own stream in-process (its cursor came from this group's
// CaptureRoute), so cross-history splices are impossible by
// construction. A from below logBase returns an empty batch with
// base > from — the history was truncated and the orchestrator must
// restart from a fresh capture (ingest idempotence makes that safe).
func (s *Store) MigrationRecords(from uint64, max int) (recs []kv.SyncRec, head, base uint64, err error) {
	if max <= 0 {
		max = 512
	}
	s.repMu.Lock()
	defer s.repMu.Unlock()
	if !s.cfg.ReplicationLog {
		return nil, s.repSeq, s.logBase, fmt.Errorf("%w: server keeps no replication log", kv.ErrBadRequest)
	}
	if from > s.repSeq {
		return nil, s.repSeq, s.logBase, fmt.Errorf("%w: migration cursor %d is beyond this replica's head %d", kv.ErrDiverged, from, s.repSeq)
	}
	if from < s.logBase || from >= s.logBase+uint64(len(s.commitLog)) {
		return nil, s.repSeq, s.logBase, nil
	}
	end := from + uint64(max)
	if top := s.logBase + uint64(len(s.commitLog)); end > top {
		end = top
	}
	recs = make([]kv.SyncRec, 0, end-from)
	bytes := 0
	for seq := from; seq < end; seq++ {
		rec := s.commitLog[seq-s.logBase]
		sz := recordSize(&rec)
		if len(recs) > 0 && bytes+sz > syncBatchBytes {
			break
		}
		bytes += sz
		recs = append(recs, kv.SyncRec{Seq: seq, Rec: rec})
	}
	return recs, s.repSeq, s.logBase, nil
}

// WaitSeqDurable blocks until every stream record below head has
// cleared the durability watermark (majority-acked ∧ fsynced). The
// migration orchestrator calls it before ingesting captured or tailed
// state into the destination: a source failover can only retract
// records above the watermark, so nothing the destination ingests can
// ever be un-written on the source group.
func (s *Store) WaitSeqDurable(head uint64) error {
	if head == 0 {
		return nil
	}
	return s.waitReplicated(head - 1)
}

// HasPreparedOnRoute reports whether any in-flight prepared transaction
// writes an OID on the given route — the migration drain condition
// after the fence: once the fence is up no NEW route-touching prepare
// can enter (fencedOIDsLocked), so a false result is stable and the
// stream head is final for the route.
func (s *Store) HasPreparedOnRoute(route, nroutes uint32) bool {
	s.txMu.Lock()
	defer s.txMu.Unlock()
	for _, rec := range s.txs {
		for _, oid := range rec.oids {
			if uint32(oid.Slot())%nroutes == route {
				return true
			}
		}
	}
	return false
}
