package kvserver_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
)

// startServer launches a kvserver on an ephemeral port.
func startServer(t *testing.T) *kvserver.Server {
	t.Helper()
	srv := kvserver.NewServer(kvserver.NewStore(nil, kvserver.Config{}))
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestMirrorReplicatesAndFailsOver(t *testing.T) {
	primary := startServer(t)
	backup := startServer(t)
	if err := primary.SetMirror(backup.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	c, err := kvclient.Open([]string{primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A mix of full writes and deltas, some multi-object.
	oids := make([]kv.OID, 5)
	for i := range oids {
		oids[i] = c.NewOID(0)
	}
	tx := c.Begin()
	tx.Put(oids[0], kv.NewPlain([]byte("zero")))
	tx.Put(oids[1], kv.NewPlain([]byte("one")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	tx = c.Begin()
	tx.ListAdd(oids[2], []byte("cell"), []byte("v"))
	tx.AttrSet(oids[2], 1, 42)
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	tx = c.Begin()
	tx.Put(oids[0], kv.NewPlain([]byte("zero-v2")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	tx = c.Begin()
	tx.Delete(oids[1])
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Fail over: kill the primary, connect to the backup.
	primary.Close()
	c2, err := kvclient.Open([]string{backup.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	check := c2.Begin()
	defer check.Abort()
	if v, err := check.Read(ctx, oids[0]); err != nil || string(v.Data) != "zero-v2" {
		t.Fatalf("failover oids[0]: %v %v", v, err)
	}
	if _, err := check.Read(ctx, oids[1]); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("failover deleted object: %v", err)
	}
	if v, err := check.Read(ctx, oids[2]); err != nil || v.NumCells() != 1 || v.Attrs[1] != 42 {
		t.Fatalf("failover deltas: %+v %v", v, err)
	}
	// The backup accepts new writes (it was a plain server all along).
	tx2 := c2.Begin()
	tx2.Put(oids[3], kv.NewPlain([]byte("after-failover")))
	if err := tx2.Commit(ctx); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
}

func TestMirrorPreservesVersionOrderUnderLoad(t *testing.T) {
	primary := startServer(t)
	backup := startServer(t)
	if err := primary.SetMirror(backup.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c, err := kvclient.Open([]string{primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Many sequential commits to one object plus scattered writes.
	oid := c.NewOID(0)
	for i := 0; i < 50; i++ {
		tx := c.Begin()
		tx.Put(oid, kv.NewPlain([]byte(fmt.Sprintf("v%d", i))))
		other := c.NewOID(0)
		tx.Put(other, kv.NewPlain([]byte("x")))
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	c2, err := kvclient.Open([]string{backup.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	check := c2.Begin()
	defer check.Abort()
	v, err := check.Read(ctx, oid)
	if err != nil || string(v.Data) != "v49" {
		t.Fatalf("backup newest version: %v %v", v, err)
	}
}

func TestMirrorStrictFailure(t *testing.T) {
	primary := startServer(t)
	backup := startServer(t)
	if err := primary.SetMirror(backup.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c, err := kvclient.Open([]string{primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	oid := c.NewOID(0)
	tx := c.Begin()
	tx.Put(oid, kv.NewPlain([]byte("ok")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Backup gone: strict replication refuses to commit.
	backup.Close()
	tx = c.Begin()
	tx.Put(oid, kv.NewPlain([]byte("lost")))
	if err := tx.Commit(ctx); err == nil {
		t.Fatal("commit succeeded with dead backup")
	}
	// Detach the backup: the primary serves alone again.
	if err := primary.SetMirror(""); err != nil {
		t.Fatal(err)
	}
	tx = c.Begin()
	tx.Put(oid, kv.NewPlain([]byte("solo")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatalf("commit after detaching backup: %v", err)
	}
	check := c.Begin()
	defer check.Abort()
	if v, err := check.Read(ctx, oid); err != nil || string(v.Data) != "solo" {
		t.Fatalf("%v %v", v, err)
	}
}
