package kvserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"yesquel/internal/clock"
	"yesquel/internal/kv"
	"yesquel/internal/wire"
)

// Write-ahead log. When Config.LogPath is set, every replication
// stream record (committed transaction, two-phase prepare, phase-two
// decision) is appended (and optionally fsynced) to an append-only
// file *before* its effects become visible, and OpenStore replays the
// log on startup — including reconstructing the prepared-transaction
// table from prepares whose decision had not arrived yet, so a
// restarted participant can still apply the coordinator's outcome. The
// format is length- and checksum-framed, so a torn final record (crash
// mid-append) is detected and dropped rather than corrupting recovery.
//
// File layout:
//
//	8 bytes walMagic — names the record format version. The record
//	        encoding has no self-description, so a log written by a
//	        binary with a different kv.ReplRecord layout would replay
//	        as garbage that the checksums cannot catch (the payloads
//	        are intact, the FIELDS moved); the magic turns that into a
//	        loud refusal to start instead of a silent empty store.
//	then, repeated:
//	uint32  payload length
//	uint32  CRC-32C of payload
//	payload: kv.EncodeReplRecord — the same serialization mirror RPCs
//	         and sync batches use, so the log, the wire, and the
//	         replication log stay byte-for-byte interchangeable

// walMagic identifies the record format; bump the trailing version
// digits whenever kv.EncodeReplRecord's layout changes (v2: epoch-
// stamped records with RecEpoch membership).
const walMagic = "YSQWAL02"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// wal is an append-only commit log.
type wal struct {
	mu   sync.Mutex
	f    *os.File
	sync bool
}

func openWAL(path string, syncEach bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvserver: opening log: %w", err)
	}
	if st, err := f.Stat(); err == nil && st.Size() < int64(len(walMagic)) {
		// Empty log, or a header torn by a crash mid-create (no record
		// can exist before the fully written header): start it fresh.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("kvserver: resetting torn log header: %w", err)
		}
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("kvserver: writing log header: %w", err)
		}
	}
	return &wal{f: f, sync: syncEach}, nil
}

func (w *wal) append(rec kv.ReplRecord) error {
	b := wire.NewBuffer(64)
	kv.EncodeReplRecord(b, &rec)
	payload := b.Bytes()
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))

	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(payload); err != nil {
		return err
	}
	if w.sync {
		return w.f.Sync()
	}
	return nil
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// replayWAL reads records until EOF or the first damaged record (a
// torn tail is normal after a crash; anything after it is ignored).
func replayWAL(path string) ([]kv.ReplRecord, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("kvserver: opening log for replay: %w", err)
	}
	defer f.Close()

	var magic [len(walMagic)]byte
	switch _, err := io.ReadFull(f, magic[:]); {
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		// Empty or torn header: the magic is written before any record,
		// so no durable record can exist yet.
		return nil, nil
	case err != nil:
		return nil, fmt.Errorf("kvserver: reading log header: %w", err)
	case string(magic[:]) != walMagic:
		// A log from a binary with a different record layout must fail
		// loudly: the per-record checksums cannot detect a field-layout
		// change, so "recover what parses" would silently lose durable
		// commits.
		return nil, fmt.Errorf("kvserver: log %s has unrecognized format %q (want %q): written by an incompatible version; migrate or remove it", path, magic[:], walMagic)
	}

	var out []kv.ReplRecord
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return out, nil // clean EOF or torn header: stop
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		want := binary.BigEndian.Uint32(hdr[4:8])
		if n > uint32(wire.MaxFrameSize) {
			return out, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return out, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != want {
			return out, nil // corrupt record: stop replay here
		}
		rec, err := kv.DecodeReplRecord(wire.NewReader(payload))
		if err != nil {
			return out, nil
		}
		out = append(out, rec)
	}
}

// OpenStore builds a store from cfg, replaying the write-ahead log when
// cfg.LogPath is set. Subsequent stream records append to the same
// log. Prepares in the log whose decision never made it are left
// staged in the prepared-transaction table — a retried coordinator
// decision still lands, and SweepOrphans reaps them if none comes.
func OpenStore(hlc *clock.HLC, cfg Config) (*Store, error) {
	s := NewStore(hlc, cfg)
	if cfg.LogPath == "" {
		return s, nil
	}
	recs, err := replayWAL(cfg.LogPath)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if err := s.ApplyReplicated(rec); err != nil {
			// A semantically inconsistent record (e.g. a decision whose
			// prepare was lost to a failed best-effort append on a
			// backup) ends the usable log, like a torn tail: recover
			// the prefix rather than refusing to start.
			break
		}
	}
	w, err := openWAL(cfg.LogPath, cfg.LogSync)
	if err != nil {
		return nil, err
	}
	s.wal = w
	return s, nil
}

// ApplyReplicated installs an externally produced stream record at the
// next position in the replication stream: a write-ahead-log record
// during recovery, where sequence order is the file order. Records
// mirrored over the network carry explicit sequence numbers; use
// ApplyReplicatedSeq for those. Prepares replayed here are this
// node's own (its WAL holds what it emitted or acknowledged), so they
// get the normal orphan TTL, not the stream-staged grace.
func (s *Store) ApplyReplicated(rec kv.ReplRecord) error {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	return s.applyRecordLocked(rec, false)
}

// ApplyReplicatedSeq installs a replicated record carrying its position
// in the primary's stream, from a sync catch-up. Records below the
// local stream head are duplicates and ignored (sync batches re-deliver
// records that a concurrent mirror already buffered); records above it
// are buffered while a resync is filling in the gap, and rejected
// otherwise — a silent gap would diverge the replica forever, so the
// primary's mirror call must fail loudly instead.
func (s *Store) ApplyReplicatedSeq(seq uint64, rec kv.ReplRecord) error {
	return s.applyReplicated(seq, rec, false)
}

// ApplyMirrored is the live-mirror variant of ApplyReplicatedSeq. The
// primary sends each sequence number exactly once and in order, so a
// mirror record below the local stream head means this replica applied
// records the primary never streamed — it served writes of its own
// while the primary was alive (split brain). Acknowledging would make
// the primary believe a record is replicated when this replica dropped
// it, so the duplicate fails loudly and the primary's operation aborts.
func (s *Store) ApplyMirrored(seq uint64, rec kv.ReplRecord) error {
	return s.applyReplicated(seq, rec, true)
}

// acceptStreamRecordLocked is the split-brain guard on the live
// mirror stream, plus the grant bookkeeping that makes acks safe. A
// record stamped with an epoch older than this replica's is from a
// deposed primary (the group moved on while it was partitioned);
// acknowledging it would let the stale primary keep serving. RecEpoch
// records must strictly advance the epoch. Nothing is accepted while a
// promotion is waiting out the grant (the ack would re-arm the lease
// mid-wait). Sync catch-ups are exempt from the epoch comparisons —
// they replay history in sequence order, transitioning epochs as the
// RecEpoch records at the right positions are applied — but resync
// buffering still grants: a buffered record is acknowledged too.
//
// Accepting a record extends the grant HERE, atomically with the
// decision to accept (under repMu+epochMu, before any ack can go
// out): the primary counts the ack as a lease renewal measured from
// before it sent, so the grant must always cover at least what the
// ack confers — even if the apply later fails, an over-extended grant
// only delays a promotion, never endangers it. Caller holds repMu.
func (s *Store) acceptStreamRecordLocked(rec *kv.ReplRecord) error {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	if s.promoting {
		return fmt.Errorf("promotion in progress: %w", s.wrongEpochLocked())
	}
	if !s.resyncing && s.epoch != 0 {
		if rec.Kind == kv.RecEpoch {
			if rec.Epoch <= s.epoch {
				return fmt.Errorf("stale configuration change: %w", s.wrongEpochLocked())
			}
		} else if rec.Epoch < s.epoch {
			return fmt.Errorf("record from deposed primary: %w", s.wrongEpochLocked())
		}
	}
	if until := time.Now().Add(s.cfg.LeaseDuration); until.After(s.grantUntil) {
		s.grantUntil = until
	}
	return nil
}

func (s *Store) applyReplicated(seq uint64, rec kv.ReplRecord, strict bool) error {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	if strict {
		if err := s.acceptStreamRecordLocked(&rec); err != nil {
			return err
		}
	}
	for {
		switch {
		case seq < s.repSeq:
			if strict {
				return fmt.Errorf("%w: replica is ahead of the primary's stream (got seq %d, local head %d): replicas diverged, re-form the pair", kv.ErrBadRequest, seq, s.repSeq)
			}
			return nil // duplicate delivery
		case seq > s.repSeq:
			if !s.resyncing {
				return fmt.Errorf("%w: replication gap: got seq %d, want %d; backup needs resync", kv.ErrBadRequest, seq, s.repSeq)
			}
			if s.pending == nil {
				s.pending = make(map[uint64]kv.ReplRecord)
			}
			s.pending[seq] = rec
			return nil
		}
		if err := s.applyRecordLocked(rec, true); err != nil {
			return err
		}
		next, ok := s.pending[s.repSeq]
		if !ok {
			return nil
		}
		delete(s.pending, s.repSeq)
		seq, rec = s.repSeq, next
	}
}

// applyRecordLocked applies one replicated stream record and advances
// the stream head. Caller holds repMu; per-object version order
// follows from stream order. The record is appended to the replication
// log and this replica's own write-ahead log, so a backup is durable
// and can itself serve resyncs after a failover promotes it.
// viaStream marks prepares staged from another replica's live stream
// (mirror or sync) rather than this node's own log replay; it only
// affects the orphan sweep's grace period.
func (s *Store) applyRecordLocked(rec kv.ReplRecord, viaStream bool) error {
	s.clock.Observe(rec.TS)
	switch rec.Kind {
	case kv.RecCommit:
		s.applyCommittedOpsLocked(rec.TS, rec.Ops)
		if rec.TxID != 0 {
			s.recordDecision(rec.TxID, decision{commit: true, commitTS: rec.TS})
		}
	case kv.RecPrepare:
		if err := s.stageReplicatedPrepare(rec, viaStream); err != nil {
			return err
		}
	case kv.RecDecide:
		s.txMu.Lock()
		txRec := s.txs[rec.TxID]
		delete(s.txs, rec.TxID)
		s.txMu.Unlock()
		if txRec == nil {
			return fmt.Errorf("%w: decision for unknown tx %d: replicas diverged, re-form the pair", kv.ErrBadRequest, rec.TxID)
		}
		if rec.Commit {
			s.applyStaged(rec.TxID, txRec.oids, rec.TS)
		} else {
			s.releaseLocks(rec.TxID, txRec.oids)
		}
		s.recordDecision(rec.TxID, decision{commit: rec.Commit, commitTS: rec.TS})
	case kv.RecEpoch:
		// A configuration change flowing through the stream (or replayed
		// from the log): adopt the new epoch and membership. Roles and
		// lease requirements follow from the membership; no object state
		// changes.
		s.installEpochState(rec.Epoch, append([]string(nil), rec.Members...))
	default:
		return fmt.Errorf("%w: replication record kind %d", kv.ErrBadRequest, rec.Kind)
	}
	s.repSeq++
	if s.cfg.ReplicationLog {
		s.commitLog = append(s.commitLog, rec)
	}
	if s.wal != nil {
		// Best-effort: replicated state is already acknowledged upstream;
		// a write error here only costs durability of this replica.
		s.wal.append(rec)
	}
	return nil
}

// applyCommittedOpsLocked installs one committed transaction's ops as
// new versions at commitTS. Caller holds repMu.
func (s *Store) applyCommittedOpsLocked(commitTS clock.Timestamp, ops []*kv.Op) {
	oids, byOID := groupOps(ops)
	for _, oid := range oids {
		sh := s.shardFor(oid)
		sh.mu.Lock()
		obj := sh.objs[oid]
		if obj == nil {
			obj = &object{}
			sh.objs[oid] = obj
		}
		base, _, _ := visibleVersion(obj, clock.Max)
		val := base
		for _, op := range byOID[oid] {
			next, err := op.Apply(val)
			if err != nil {
				break // a bad record op; keep what we have
			}
			val = next
		}
		structural, touched := classifyOps(byOID[oid])
		obj.versions = append(obj.versions, version{ts: commitTS, val: val, structural: structural, touched: touched})
		s.trimLocked(obj)
		sh.mu.Unlock()
	}
}

// stageReplicatedPrepare reconstructs a primary's prepare from a
// stream record: the transaction enters the prepared table and its
// write locks are taken, with the replicated proposed timestamp, so a
// later promotion finds the in-flight transaction intact. The primary
// validated conflicts before emitting the record and the stream is
// applied in order, so the locks must be free here; a holder means the
// replicas diverged.
func (s *Store) stageReplicatedPrepare(rec kv.ReplRecord, viaStream bool) error {
	oids, byOID := groupOps(rec.Ops)
	s.txMu.Lock()
	if _, dup := s.txs[rec.TxID]; dup {
		s.txMu.Unlock()
		return fmt.Errorf("%w: replicated duplicate prepare for tx %d", kv.ErrBadRequest, rec.TxID)
	}
	s.txs[rec.TxID] = &txRecord{oids: oids, replicated: true, viaStream: viaStream, epoch: rec.Epoch, preparedAt: time.Now()}
	s.txMu.Unlock()
	for _, oid := range oids {
		sh := s.shardFor(oid)
		sh.mu.Lock()
		obj := sh.objs[oid]
		if obj == nil {
			obj = &object{}
			sh.objs[oid] = obj
		}
		if obj.lock != nil {
			holder := obj.lock.txid
			sh.mu.Unlock()
			s.releaseLocks(rec.TxID, oids)
			s.txMu.Lock()
			delete(s.txs, rec.TxID)
			s.txMu.Unlock()
			return fmt.Errorf("%w: replicated prepare for tx %d found %v locked by tx %d: replicas diverged, re-form the pair", kv.ErrBadRequest, rec.TxID, oid, holder)
		}
		obj.lock = &lockState{txid: rec.TxID, proposed: rec.TS, ops: byOID[oid], done: make(chan struct{})}
		sh.mu.Unlock()
	}
	return nil
}

// CloseLog flushes and closes the write-ahead log (if any).
func (s *Store) CloseLog() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.close()
}
