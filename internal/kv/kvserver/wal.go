package kvserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"yesquel/internal/clock"
	"yesquel/internal/kv"
	"yesquel/internal/wire"
)

// Write-ahead log. When Config.LogPath is set, every replication
// stream record (committed transaction, two-phase prepare, phase-two
// decision) is appended (and optionally fsynced) to an append-only
// file *before* its effects become visible, and OpenStore replays the
// log on startup — including reconstructing the prepared-transaction
// table from prepares whose decision had not arrived yet, so a
// restarted participant can still apply the coordinator's outcome. The
// format is length- and checksum-framed, so a torn final record (crash
// mid-append) is detected and dropped rather than corrupting recovery.
//
// A snapshot checkpoint (Store.Checkpoint, or installing a transferred
// snapshot) ROTATES the log: the file is atomically rewritten to hold a
// single snapshot frame covering the stream up to the checkpoint, and
// subsequent records append after it — so a restart replays snapshot +
// tail instead of the full history, and the file's size is bounded by
// the checkpoint cadence rather than the store's lifetime.
//
// File layout:
//
//	8 bytes walMagic — names the format version. The frame payloads
//	        have no self-description, so a log written by a binary
//	        with a different kv.ReplRecord or snapshot layout would
//	        replay as garbage that the checksums cannot catch (the
//	        payloads are intact, the FIELDS moved); the magic turns
//	        that into a loud refusal to start instead of a silent
//	        empty store.
//	then, repeated frames:
//	uint32  payload length
//	uint32  CRC-32C of payload
//	payload: 1 kind byte, then
//	         walFrameRecord:   kv.EncodeReplRecord — the same
//	                           serialization mirror RPCs and sync
//	                           batches use, so the log, the wire, and
//	                           the replication log stay byte-for-byte
//	                           interchangeable
//	         walFrameSnapshot: a piece of the canonical state-snapshot
//	                           encoding (snapshot.go), split across
//	                           consecutive frames when larger than
//	                           walSnapChunkBytes — only ever the
//	                           leading frames (rotation rewrites the
//	                           file); replay concatenates them

// walMagic identifies the format; bump the trailing version digits
// whenever the frame layout or kv.EncodeReplRecord's layout changes
// (v2: epoch-stamped records with RecEpoch membership; v3: kind-tagged
// frames with snapshot checkpoints).
const walMagic = "YSQWAL03"

// Frame kinds (first payload byte).
const (
	walFrameRecord   byte = 1
	walFrameSnapshot byte = 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// wal is an append-only commit log with checkpoint rotation.
type wal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	sync bool

	// rotMu serializes rotations (held from beginRotate to the end of
	// finishRotate); teeing/tail implement the off-lock rotation: while
	// a rotation is writing the snapshot file, appendBatch copies every
	// frame it writes to the (old) log into tail too, and finishRotate
	// appends the accumulated tail after the snapshot frames before
	// swapping the file in — so records appended during the rotation
	// survive it. The checkpoint caller guarantees every record BELOW
	// the snapshot's coverage is already in the old file before
	// beginRotate (Store.drainWALLocked), so the tail holds only
	// records the snapshot does not cover.
	rotMu  sync.Mutex
	teeing bool
	tail   []byte

	// broken latches after a failed append: the file may hold a torn
	// frame, and appending PAST a failure would leave a silent gap
	// that replays as a spliced, mis-sequenced history (the pre-batch
	// path rolled the stream back on append failure for exactly this
	// reason). The next append REPAIRS first: the file is truncated
	// back to good — the byte size after the last fully successful
	// append — removing the torn frame, and the failed batch's records
	// (which the pipeline re-queues, never drops) are rewritten in
	// order. A checkpoint rotation also clears the latch: the
	// replacement file is rebuilt from a state snapshot.
	broken bool
	good   int64
}

func openWAL(path string, syncEach bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvserver: opening log: %w", err)
	}
	if st, err := f.Stat(); err == nil && st.Size() < int64(len(walMagic)) {
		// Empty log, or a header torn by a crash mid-create (no record
		// can exist before the fully written header): start it fresh.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("kvserver: resetting torn log header: %w", err)
		}
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("kvserver: writing log header: %w", err)
		}
	}
	w := &wal{f: f, path: path, sync: syncEach}
	if st, err := f.Stat(); err == nil {
		w.good = st.Size()
	}
	return w, nil
}

// frameHeader builds the 9-byte frame header (length, CRC over kind
// then payload, kind) — the single definition of the frame layout,
// shared by the streaming and in-memory writers.
func frameHeader(kind byte, payload []byte) [9]byte {
	var hdr [9]byte
	hdr[8] = kind
	crc := crc32.Update(crc32.Checksum(hdr[8:9], crcTable), crcTable, payload)
	binary.BigEndian.PutUint32(hdr[0:4], uint32(1+len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	return hdr
}

// writeFrame appends one kind-tagged, checksummed frame to f. The kind
// byte rides in the header write, so the payload — snapshot chunks run
// to many MiB — is never copied.
func writeFrame(f *os.File, kind byte, data []byte) error {
	hdr := frameHeader(kind, data)
	if _, err := f.Write(hdr[:]); err != nil {
		return err
	}
	_, err := f.Write(data)
	return err
}

// appendFrame appends one framed record to out: the same layout
// writeFrame produces, built in memory so a whole batch becomes one
// file write. scratch is reused across the batch.
func appendFrame(out []byte, scratch *wire.Buffer, rec *kv.ReplRecord) []byte {
	scratch.Reset()
	kv.EncodeReplRecord(scratch, rec)
	payload := scratch.Bytes()
	hdr := frameHeader(walFrameRecord, payload)
	out = append(out, hdr[:]...)
	return append(out, payload...)
}

// appendBatch appends recs as consecutive record frames in ONE file
// write under ONE lock acquisition, reusing one encode buffer across
// the batch, and fsyncs once at the end when the log is in sync mode —
// the group-commit amortization (the old per-record append paid a
// fresh buffer, a lock, a write, and an fsync per record). It reports
// whether it fsynced.
//
//yesqlint:blocking
func (w *wal) appendBatch(recs []kv.ReplRecord) (synced bool, err error) {
	if len(recs) == 0 {
		return false, nil
	}
	scratch := wire.NewBuffer(256)
	out := make([]byte, 0, 96*len(recs))
	for i := range recs {
		out = appendFrame(out, scratch, &recs[i])
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return false, fmt.Errorf("kvserver: appending to a closed log")
	}
	if w.broken {
		// Repair first: drop the torn frame the earlier failure may
		// have left (everything at or past good), so this batch —
		// which the pipeline guarantees starts with the failed batch's
		// re-queued records — continues the clean prefix gaplessly.
		if err := w.f.Truncate(w.good); err != nil {
			return false, fmt.Errorf("kvserver: truncating torn log tail: %w", err)
		}
		w.broken = false
	}
	if _, err := w.f.Write(out); err != nil {
		w.broken = true
		return false, err
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			// The bytes are written but not durable; leave good at the
			// pre-batch size so the repair truncates them and the retry
			// rewrites the batch.
			w.broken = true
			return false, err
		}
	}
	w.good += int64(len(out))
	if w.teeing {
		// A rotation is writing the replacement file: these frames
		// hold records the snapshot does not cover, so they must
		// follow it. Teed only on full success — a failed batch is
		// re-queued by the pipeline and teed when its retry lands, so
		// the replacement file gets each record exactly once.
		w.tail = append(w.tail, out...)
	}
	return w.sync, nil
}

// walSnapChunkBytes splits a rotated snapshot across consecutive
// leading frames: a state larger than one wire frame (64 MiB) must
// still checkpoint, or its log could never be bounded. A variable so
// tests can exercise the multi-frame path without gigabytes of state.
var walSnapChunkBytes = 16 << 20

// rotate atomically replaces the log with one that begins at a
// snapshot checkpoint: a fresh file holding the snapshot frames (plus
// any records appended while the rotation ran — see finishRotate's
// tee) is written beside the log, fsynced, and renamed over it;
// subsequent appends continue in the new file. swapped reports whether
// the new file became the log: false on any failure before the rename
// (the old log and its open handle are kept — a failed rotation costs
// log-size bounding, never durability), true once the rename lands,
// even if the follow-up directory fsync fails (the error still reports
// that the rename's own durability is unestablished).
//
// rotate is the synchronous form; the policy checkpoint path splits it
// (beginRotate under the stream lock, finishRotate off it) so the
// O(state) encode and write never stall the stream.
func (w *wal) rotate(snapshot []byte) (swapped bool, err error) {
	w.beginRotate()
	return w.finishRotate(snapshot)
}

// beginRotate opens a rotation window: until the matching finishRotate
// returns, every appendBatch tees its frames into w.tail so they can
// follow the snapshot into the replacement file. The caller must
// already have written every record BELOW the snapshot's coverage to
// the log (Store.drainWALLocked) — the tee captures only what arrives
// after. Rotations are serialized: beginRotate blocks while another is
// in flight.
func (w *wal) beginRotate() {
	w.rotMu.Lock()
	w.mu.Lock()
	w.teeing = true
	w.tail = nil
	w.mu.Unlock()
}

// finishRotate writes the replacement file (magic + chunked snapshot
// frames), then — briefly under the append lock — flushes the teed
// tail after it, fsyncs, and renames it over the log. Appends are
// blocked only for the tail flush and swap, never for the O(snapshot)
// write. Must follow a beginRotate.
func (w *wal) finishRotate(snapshot []byte) (swapped bool, err error) {
	defer w.rotMu.Unlock()
	endTee := func() {
		w.teeing = false
		w.tail = nil
	}
	tmp := w.path + ".ckpt"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		w.mu.Lock()
		endTee()
		w.mu.Unlock()
		return false, fmt.Errorf("kvserver: creating checkpoint log: %w", err)
	}
	err = func() error {
		if _, err := f.WriteString(walMagic); err != nil {
			return err
		}
		for off := 0; ; {
			end := off + walSnapChunkBytes
			if end > len(snapshot) {
				end = len(snapshot)
			}
			if err := writeFrame(f, walFrameSnapshot, snapshot[off:end]); err != nil {
				return err
			}
			if off = end; off >= len(snapshot) {
				break
			}
		}
		return nil
	}()
	if err != nil {
		f.Close()
		os.Remove(tmp)
		w.mu.Lock()
		endTee()
		w.mu.Unlock()
		return false, fmt.Errorf("kvserver: writing checkpoint log: %w", err)
	}

	// Snapshot frames are on disk; take the append lock to flush the
	// teed tail and swap, so no record can slip between the tail and
	// the rename.
	w.mu.Lock()
	defer w.mu.Unlock()
	defer endTee()
	if w.f == nil {
		f.Close()
		os.Remove(tmp)
		return false, fmt.Errorf("kvserver: rotating a closed log")
	}
	err = func() error {
		if len(w.tail) > 0 {
			if _, err := f.Write(w.tail); err != nil {
				return err
			}
		}
		return f.Sync()
	}()
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return false, fmt.Errorf("kvserver: writing checkpoint log: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return false, fmt.Errorf("kvserver: swapping checkpoint log in: %w", err)
	}
	// Make the rename itself durable: fsync the parent directory, or a
	// power loss could resolve the path to the OLD inode — silently
	// dropping every record fsynced into the new file since the
	// rotation, the exact guarantee LogSync promises.
	var dirErr error
	if dir, err := os.Open(filepath.Dir(w.path)); err != nil {
		dirErr = err
	} else {
		dirErr = dir.Sync()
		dir.Close()
	}
	// The rename made the checkpoint file the log regardless of the
	// directory fsync's outcome, so the handle swap must happen either
	// way — appending through the old handle would write to an orphaned
	// inode. A failed directory fsync is reported (the checkpoint
	// counts as failed, CheckpointFailures fires): until a later
	// rotation succeeds, durability rests on which inode the crash
	// leaves at the path — either replays correctly, but the rotation's
	// size bound is not established.
	old := w.f
	w.f = f
	old.Sync()
	old.Close()
	// The new file is snapshot + complete teed tail: whatever append
	// failure broke the old file is repaired by construction.
	w.broken = false
	if st, serr := f.Stat(); serr == nil {
		w.good = st.Size()
	}
	if dirErr != nil {
		return true, fmt.Errorf("kvserver: fsyncing log directory after checkpoint swap: %w", dirErr)
	}
	return true, nil
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// replayWAL reads the log: optional leading snapshot checkpoint
// frames (concatenated — rotation splits a large snapshot), then
// records until EOF or the first damaged frame (a torn tail is normal
// after a crash; anything after it is ignored).
func replayWAL(path string) (snapshot []byte, recs []kv.ReplRecord, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("kvserver: opening log for replay: %w", err)
	}
	defer f.Close()

	var magic [len(walMagic)]byte
	switch _, err := io.ReadFull(f, magic[:]); {
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		// Empty or torn header: the magic is written before any record,
		// so no durable record can exist yet.
		return nil, nil, nil
	case err != nil:
		return nil, nil, fmt.Errorf("kvserver: reading log header: %w", err)
	case string(magic[:]) != walMagic:
		// A log from a binary with a different frame or record layout
		// must fail loudly: the per-frame checksums cannot detect a
		// layout change, so "recover what parses" would silently lose
		// durable commits.
		return nil, nil, fmt.Errorf("kvserver: log %s has unrecognized format %q (want %q): written by an incompatible version; migrate or remove it", path, magic[:], walMagic)
	}

	inSnapshotPrefix := true
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return snapshot, recs, nil // clean EOF or torn header: stop
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		want := binary.BigEndian.Uint32(hdr[4:8])
		if n == 0 || n > uint32(wire.MaxFrameSize) {
			return snapshot, recs, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return snapshot, recs, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != want {
			return snapshot, recs, nil // corrupt frame: stop replay here
		}
		kind, data := payload[0], payload[1:]
		switch kind {
		case walFrameSnapshot:
			if !inSnapshotPrefix {
				// Rotation rewrites the whole file, so snapshot frames
				// can only ever lead it; one mid-file is corruption.
				return snapshot, recs, nil
			}
			snapshot = append(snapshot, data...)
		case walFrameRecord:
			inSnapshotPrefix = false
			rec, err := kv.DecodeReplRecord(wire.NewReader(data))
			if err != nil {
				return snapshot, recs, nil
			}
			recs = append(recs, rec)
		default:
			return snapshot, recs, nil
		}
	}
}

// OpenStore builds a store from cfg, replaying the write-ahead log when
// cfg.LogPath is set: the snapshot checkpoint frame (if the log was
// ever rotated) is installed first, then the record tail on top of it.
// Subsequent stream records append to the same log. Prepares in the
// log whose decision never made it are left staged in the prepared-
// transaction table — a retried coordinator decision still lands, and
// SweepOrphans reaps them if none comes.
func OpenStore(hlc *clock.HLC, cfg Config) (*Store, error) {
	s := NewStore(hlc, cfg)
	if cfg.LogPath == "" {
		return s, nil
	}
	snapEnc, recs, err := replayWAL(cfg.LogPath)
	if err != nil {
		return nil, err
	}
	if snapEnc != nil {
		sn, err := decodeSnapshot(snapEnc)
		if err != nil {
			// A checkpoint frame that passed its checksum but does not
			// decode is a layout incompatibility, not a torn tail: every
			// record in the file builds on the snapshot, so "recover what
			// parses" would be an empty store wearing a real log's name.
			return nil, fmt.Errorf("kvserver: log %s checkpoint snapshot: %w", cfg.LogPath, err)
		}
		// The checkpoint is this node's own log, so its prepares get the
		// normal orphan TTL, not the stream-staged grace.
		s.repMu.Lock()
		err = s.installSnapshotLocked(sn, snapEnc, false)
		s.repMu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("kvserver: log %s checkpoint snapshot: %w", cfg.LogPath, err)
		}
	}
	for _, rec := range recs {
		if err := s.ApplyReplicated(rec); err != nil {
			// A semantically inconsistent record (e.g. a decision whose
			// prepare was lost to a failed best-effort append on a
			// backup) ends the usable log, like a torn tail: recover
			// the prefix rather than refusing to start.
			break
		}
	}
	w, err := openWAL(cfg.LogPath, cfg.LogSync)
	if err != nil {
		return nil, err
	}
	s.repMu.Lock()
	s.wal = w
	s.pipe.mu.Lock()
	// Replayed records are already on disk; the durability watermark
	// starts at the head.
	s.pipe.synced = s.repSeq
	s.pipe.needWAL = true
	s.pipe.wal = w
	s.pipe.mu.Unlock()
	s.startFlusherLocked()
	s.repMu.Unlock()
	return s, nil
}

// ApplyReplicated installs an externally produced stream record at the
// next position in the replication stream: a write-ahead-log record
// during recovery, where sequence order is the file order. Records
// mirrored over the network carry explicit sequence numbers; use
// ApplyReplicatedSeq for those. Prepares replayed here are this
// node's own (its WAL holds what it emitted or acknowledged), so they
// get the normal orphan TTL, not the stream-staged grace.
func (s *Store) ApplyReplicated(rec kv.ReplRecord) error {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	if err := s.applyRecordLocked(rec, false); err != nil {
		return err
	}
	s.maybeCheckpointLocked()
	return nil
}

// ApplyReplicatedSeq installs a replicated record carrying its position
// in the primary's stream, from a sync catch-up. Records below the
// local stream head are duplicates and ignored (sync batches re-deliver
// records that a concurrent mirror already buffered); records above it
// are buffered while a resync is filling in the gap, and rejected
// otherwise — a silent gap would diverge the replica forever, so the
// primary's mirror call must fail loudly instead.
func (s *Store) ApplyReplicatedSeq(seq uint64, rec kv.ReplRecord) error {
	return s.applyReplicated(seq, rec, false)
}

// ApplyMirrored is the live-mirror variant of ApplyReplicatedSeq. The
// primary sends each sequence number exactly once and in order, so a
// mirror record below the local stream head means this replica applied
// records the primary never streamed — it served writes of its own
// while the primary was alive (split brain). Acknowledging would make
// the primary believe a record is replicated when this replica dropped
// it, so the duplicate fails loudly and the primary's operation aborts.
func (s *Store) ApplyMirrored(seq uint64, rec kv.ReplRecord) error {
	return s.applyReplicated(seq, rec, true)
}

// ApplyMirroredBatch applies a contiguous group-commit batch from the
// primary under ONE stream-lock acquisition: each record still passes
// the per-record epoch, grant, and sequence checks (a gap or
// divergence inside a batch fails exactly where a per-record mirror
// would), but the whole batch costs one lock round and one
// acknowledgment — the backup half of the group-commit pipeline. An
// error on record k leaves records 0..k-1 applied (a contiguous,
// consistent prefix of the primary's stream; the backup is merely
// behind) and fails the RPC, which fails every primary-side waiter in
// the batch. The replication-log bound runs once per batch, with the
// live-mirror slack (see mirrorCheckpointSlack).
func (s *Store) ApplyMirroredBatch(recs []kv.SyncRec) error {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	for i := range recs {
		if err := s.applyReplicatedLocked(recs[i].Seq, recs[i].Rec, true); err != nil {
			return err
		}
	}
	s.maybeCheckpointSlackLocked(mirrorCheckpointSlack)
	return nil
}

// acceptStreamRecordLocked is the split-brain guard on the live
// mirror stream, plus the grant bookkeeping that makes acks safe. A
// record stamped with an epoch older than this replica's is from a
// deposed primary (the group moved on while it was partitioned);
// acknowledging it would let the stale primary keep serving. RecEpoch
// records must strictly advance the epoch. Nothing is accepted while a
// promotion is waiting out the grant (the ack would re-arm the lease
// mid-wait). The checks hold even while this replica is RESYNCING:
// sync catch-ups replay history through the non-strict path
// (ApplyReplicatedSeq) and never reach this guard, so the only live
// records a resync exemption would admit here are stale ones — e.g. a
// straggler batch from the primary a failover just deposed, landing in
// the window after the loser adopts the new epoch and before it
// resyncs from the winner, silently growing its stream past the head
// the promotion measured.
//
// Accepting a record extends the grant HERE, atomically with the
// decision to accept (under repMu+epochMu, before any ack can go
// out): the primary counts the ack as a lease renewal measured from
// before it sent, so the grant must always cover at least what the
// ack confers — even if the apply later fails, an over-extended grant
// only delays a promotion, never endangers it. Caller holds repMu.
func (s *Store) acceptStreamRecordLocked(rec *kv.ReplRecord) error {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	if s.promoting {
		return fmt.Errorf("promotion in progress: %w", s.wrongEpochLocked())
	}
	if s.epoch != 0 {
		if rec.Kind == kv.RecEpoch {
			if rec.Epoch <= s.epoch {
				return fmt.Errorf("stale configuration change: %w", s.wrongEpochLocked())
			}
		} else if rec.Epoch < s.epoch {
			return fmt.Errorf("record from deposed primary: %w", s.wrongEpochLocked())
		}
	}
	if until := time.Now().Add(s.cfg.LeaseDuration); until.After(s.grantUntil) {
		s.grantUntil = until
	}
	return nil
}

func (s *Store) applyReplicated(seq uint64, rec kv.ReplRecord, strict bool) error {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	if err := s.applyReplicatedLocked(seq, rec, strict); err != nil {
		return err
	}
	// State is consistent with the stream head here, so this is a safe
	// point for the log-bound policy (backups append to their
	// replication log too and must truncate it likewise). The
	// non-strict path (sync catch-up, WAL replay) enforces the bound
	// exactly — nobody is blocked on those applies. A live mirror
	// record has the primary waiting for the batch ack, and an O(state)
	// capture there could delay it: routine truncation is left to the
	// server's checkpoint ticker, with a hard ceiling at slack times
	// the cap so the memory bound never rests on a ticker alone.
	if strict {
		s.maybeCheckpointSlackLocked(mirrorCheckpointSlack)
	} else {
		s.maybeCheckpointLocked()
	}
	return nil
}

// applyReplicatedLocked installs one replicated record (see
// ApplyReplicatedSeq / ApplyMirrored for the strictness contract) and
// drains any resync-buffered records that become contiguous. Caller
// holds repMu and runs the log-bound policy afterwards.
func (s *Store) applyReplicatedLocked(seq uint64, rec kv.ReplRecord, strict bool) error {
	if strict {
		if err := s.acceptStreamRecordLocked(&rec); err != nil {
			return err
		}
	}
	for {
		switch {
		case seq < s.repSeq:
			// A record below the head is either a duplicate delivery or
			// evidence of divergence, and the two must be told apart by
			// CONTENT, not by timing: a member attaches before its catch-up
			// sync, so a record emitted in between rides BOTH the member's
			// queue and the sync replay, and the second copy can land
			// after the resync window has already closed. The retained
			// replication log settles it — if the epoch stamped on our
			// record at that position matches the incoming record's, the
			// single-writer-per-epoch stream guarantees they are the same
			// record and the duplicate is safe to acknowledge. Legacy
			// epoch-0 pairs have no single-writer guarantee (a stray
			// client can write natively to the backup), so identity is
			// pinned on the full record header — kind, epoch, transaction
			// and timestamp — not the epoch alone. A mismatch means this
			// replica's history holds something else there: genuinely
			// diverged, rejoin by state transfer.
			if strict {
				if seq >= s.logBase && seq-s.logBase < uint64(len(s.commitLog)) {
					have := s.commitLog[seq-s.logBase]
					if have.Epoch != rec.Epoch || have.Kind != rec.Kind || have.TxID != rec.TxID || have.TS != rec.TS {
						return fmt.Errorf("%w: record at seq %d (epoch %d, tx %d) does not match the record this replica's stream holds there (epoch %d, tx %d): the histories diverged, rejoin by state transfer", kv.ErrDiverged, seq, rec.Epoch, rec.TxID, have.Epoch, have.TxID)
					}
				} else if !s.resyncing {
					// Below the retained log and not mid-resync: identity
					// can't be verified, and no legitimate duplicate is
					// that stale (the in-flight window spans the attach,
					// not a checkpoint truncation). Treat as divergence.
					return fmt.Errorf("%w: replica is ahead of the primary's stream (got seq %d, local head %d, log retained from %d): re-form the group", kv.ErrDiverged, seq, s.repSeq, s.logBase)
				}
			}
			return nil
		case seq > s.repSeq:
			if !s.resyncing {
				return fmt.Errorf("%w: replication gap: got seq %d, want %d; backup needs resync", kv.ErrBadRequest, seq, s.repSeq)
			}
			if s.pending == nil {
				s.pending = make(map[uint64]kv.ReplRecord)
			}
			s.pending[seq] = rec
			return nil
		}
		if err := s.applyRecordLocked(rec, true); err != nil {
			return err
		}
		next, ok := s.pending[s.repSeq]
		if !ok {
			return nil
		}
		delete(s.pending, s.repSeq)
		seq, rec = s.repSeq, next
	}
}

// applyRecordLocked applies one replicated stream record and advances
// the stream head. Caller holds repMu; per-object version order
// follows from stream order. The record is appended to the replication
// log and this replica's own write-ahead log, so a backup is durable
// and can itself serve resyncs after a failover promotes it.
// viaStream marks prepares staged from another replica's live stream
// (mirror or sync) rather than this node's own log replay; it only
// affects the orphan sweep's grace period.
func (s *Store) applyRecordLocked(rec kv.ReplRecord, viaStream bool) error {
	// The per-record epoch check — the splice guard. Every record except
	// RecEpoch must be stamped with exactly the epoch this stream
	// installed at or below the current head (streamEpoch; RecEpoch
	// records are the transitions and are vetted by their own strictly-
	// advancing check on the live path). A mismatch means the record
	// belongs to a history this replica never installed: the classic
	// case is a diverged-but-BEHIND replica resyncing from a successor —
	// its stranded old-epoch records sit at sequence numbers the new
	// stream re-stamped, so the seq checks all pass, and the first
	// delivered record (stamped with the successor epoch the replica's
	// stream never installed) is the only tell. Rejected with
	// kv.ErrDiverged: such a replica rejoins by state transfer, never by
	// record replay.
	if rec.Kind != kv.RecEpoch && rec.Epoch != s.streamEpoch {
		return fmt.Errorf("%w: record at seq %d stamped epoch %d but this replica's stream installed epoch %d there: the histories diverged, rejoin by state transfer", kv.ErrDiverged, s.repSeq, rec.Epoch, s.streamEpoch)
	}
	s.clock.Observe(rec.TS)
	switch rec.Kind {
	case kv.RecCommit:
		s.applyCommittedOpsLocked(rec.TS, rec.Ops)
		if rec.TxID != 0 {
			s.recordDecision(rec.TxID, decision{commit: true, commitTS: rec.TS})
		}
	case kv.RecPrepare:
		if err := s.stageReplicatedPrepare(rec, viaStream); err != nil {
			return err
		}
	case kv.RecDecide:
		s.txMu.Lock()
		txRec := s.txs[rec.TxID]
		delete(s.txs, rec.TxID)
		s.txMu.Unlock()
		if txRec == nil {
			return fmt.Errorf("%w: decision for unknown tx %d: re-form the pair", kv.ErrDiverged, rec.TxID)
		}
		if rec.Commit {
			s.applyStaged(rec.TxID, txRec.oids, rec.TS)
		} else {
			s.releaseLocks(rec.TxID, txRec.oids)
		}
		s.recordDecision(rec.TxID, decision{commit: rec.Commit, commitTS: rec.TS})
	case kv.RecEpoch:
		// A configuration change flowing through the stream (or replayed
		// from the log): adopt the new epoch and membership. Roles and
		// lease requirements follow from the membership; no object state
		// changes. streamEpoch advances HERE — this is an epoch the
		// stream itself installed, unlike an out-of-band AdoptEpoch.
		if rec.Epoch > s.streamEpoch {
			s.streamEpoch = rec.Epoch
		}
		s.installEpochState(rec.Epoch, append([]string(nil), rec.Members...))
	default:
		return fmt.Errorf("%w: replication record kind %d", kv.ErrBadRequest, rec.Kind)
	}
	seq := s.repSeq
	s.repSeq++
	if s.cfg.ReplicationLog {
		s.commitLog = append(s.commitLog, rec)
		s.commitLogBytes += recordSize(&rec)
	}
	// Always enqueue, even with no WAL: the pipeline tracks the
	// commit-timestamp marks that turn the durability watermark into an
	// HLC frontier for follower reads, and that bookkeeping must see
	// every record. With a WAL the record also rides the batched flush —
	// best-effort, since replicated state is already acknowledged
	// upstream; a write error here only costs durability of this replica
	// (WALFailures counts it), and batching keeps the backup's apply
	// path — and therefore the primary's batch acknowledgment — off the
	// fsync.
	s.enqueueLocked(seq, rec)
	return nil
}

// applyCommittedOpsLocked installs one committed transaction's ops as
// new versions at commitTS. Caller holds repMu.
func (s *Store) applyCommittedOpsLocked(commitTS clock.Timestamp, ops []*kv.Op) {
	oids, byOID := groupOps(ops)
	for _, oid := range oids {
		sh := s.shardFor(oid)
		sh.mu.Lock()
		obj := sh.objs[oid]
		if obj == nil {
			obj = &object{}
			sh.objs[oid] = obj
		}
		base, _, _ := visibleVersion(obj, clock.Max)
		val := base
		for _, op := range byOID[oid] {
			next, err := op.Apply(val)
			if err != nil {
				break // a bad record op; keep what we have
			}
			val = next
		}
		structural, touched := classifyOps(byOID[oid])
		obj.versions = append(obj.versions, version{ts: commitTS, val: val, structural: structural, touched: touched})
		s.trimLocked(obj)
		sh.mu.Unlock()
	}
}

// stageReplicatedPrepare reconstructs a primary's prepare from a
// stream record: the transaction enters the prepared table and its
// write locks are taken, with the replicated proposed timestamp, so a
// later promotion finds the in-flight transaction intact. The primary
// validated conflicts before emitting the record and the stream is
// applied in order, so the locks must be free here; a holder means the
// replicas diverged.
func (s *Store) stageReplicatedPrepare(rec kv.ReplRecord, viaStream bool) error {
	oids, byOID := groupOps(rec.Ops)
	s.txMu.Lock()
	if _, dup := s.txs[rec.TxID]; dup {
		s.txMu.Unlock()
		return fmt.Errorf("%w: replicated duplicate prepare for tx %d", kv.ErrBadRequest, rec.TxID)
	}
	s.txs[rec.TxID] = &txRecord{oids: oids, replicated: true, viaStream: viaStream, epoch: rec.Epoch, preparedAt: time.Now()}
	s.txMu.Unlock()
	for _, oid := range oids {
		sh := s.shardFor(oid)
		sh.mu.Lock()
		obj := sh.objs[oid]
		if obj == nil {
			obj = &object{}
			sh.objs[oid] = obj
		}
		if obj.lock != nil {
			holder := obj.lock.txid
			sh.mu.Unlock()
			s.releaseLocks(rec.TxID, oids)
			s.txMu.Lock()
			delete(s.txs, rec.TxID)
			s.txMu.Unlock()
			return fmt.Errorf("%w: replicated prepare for tx %d found %v locked by tx %d: re-form the pair", kv.ErrDiverged, rec.TxID, oid, holder)
		}
		obj.lock = &lockState{txid: rec.TxID, proposed: rec.TS, ops: byOID[oid], done: make(chan struct{})}
		sh.mu.Unlock()
	}
	return nil
}

// CloseLog drains the pipeline's queued records into the write-ahead
// log, then flushes and closes it (if any). The flusher goroutine is
// stopped unless a mirror still needs it.
func (s *Store) CloseLog() error {
	if s.wal == nil {
		return nil
	}
	s.repMu.Lock()
	s.drainWALLocked()
	s.repMu.Unlock()
	if !s.hasMirror.Load() {
		s.stopFlusher()
	}
	return s.wal.close()
}
