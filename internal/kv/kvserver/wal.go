package kvserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"yesquel/internal/clock"
	"yesquel/internal/kv"
	"yesquel/internal/wire"
)

// Write-ahead log. When Config.LogPath is set, every committed
// transaction's operations are appended (and optionally fsynced) to an
// append-only file *before* the commit becomes visible, and OpenStore
// replays the log on startup. The format is length- and checksum-
// framed, so a torn final record (crash mid-append) is detected and
// dropped rather than corrupting recovery.
//
// Record layout:
//
//	uint32  payload length
//	uint32  CRC-32C of payload
//	payload:
//	    uint64  commit timestamp
//	    uvarint op count
//	    ops     (kv.EncodeOp)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// wal is an append-only commit log.
type wal struct {
	mu   sync.Mutex
	f    *os.File
	sync bool
}

func openWAL(path string, syncEach bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvserver: opening log: %w", err)
	}
	return &wal{f: f, sync: syncEach}, nil
}

func (w *wal) append(commitTS clock.Timestamp, ops []*kv.Op) error {
	b := wire.NewBuffer(64)
	b.PutUint64(uint64(commitTS))
	b.PutUvarint(uint64(len(ops)))
	for _, op := range ops {
		kv.EncodeOp(b, op)
	}
	payload := b.Bytes()
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))

	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(payload); err != nil {
		return err
	}
	if w.sync {
		return w.f.Sync()
	}
	return nil
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// walRecord is one replayed commit.
type walRecord struct {
	commitTS clock.Timestamp
	ops      []*kv.Op
}

// replayWAL reads records until EOF or the first damaged record (a
// torn tail is normal after a crash; anything after it is ignored).
func replayWAL(path string) ([]walRecord, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("kvserver: opening log for replay: %w", err)
	}
	defer f.Close()

	var out []walRecord
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return out, nil // clean EOF or torn header: stop
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		want := binary.BigEndian.Uint32(hdr[4:8])
		if n > uint32(wire.MaxFrameSize) {
			return out, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return out, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != want {
			return out, nil // corrupt record: stop replay here
		}
		r := wire.NewReader(payload)
		ts, err := r.Uint64()
		if err != nil {
			return out, nil
		}
		cnt, err := r.Uvarint()
		if err != nil {
			return out, nil
		}
		rec := walRecord{commitTS: clock.Timestamp(ts)}
		ok := true
		for i := uint64(0); i < cnt; i++ {
			op, err := kv.DecodeOp(r)
			if err != nil {
				ok = false
				break
			}
			rec.ops = append(rec.ops, op)
		}
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}

// OpenStore builds a store from cfg, replaying the write-ahead log when
// cfg.LogPath is set. Subsequent commits append to the same log.
func OpenStore(hlc *clock.HLC, cfg Config) (*Store, error) {
	s := NewStore(hlc, cfg)
	if cfg.LogPath == "" {
		return s, nil
	}
	recs, err := replayWAL(cfg.LogPath)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		s.ApplyReplicated(rec.commitTS, rec.ops)
	}
	w, err := openWAL(cfg.LogPath, cfg.LogSync)
	if err != nil {
		return nil, err
	}
	s.wal = w
	return s, nil
}

// ApplyReplicated installs an externally committed transaction at the
// next position in the replication stream: a write-ahead-log record
// during recovery, where sequence order is the file order. Commits
// mirrored over the network carry explicit sequence numbers; use
// ApplyReplicatedSeq for those.
func (s *Store) ApplyReplicated(commitTS clock.Timestamp, ops []*kv.Op) {
	s.repMu.Lock()
	s.applyRecordLocked(commitTS, ops)
	s.repMu.Unlock()
}

// ApplyReplicatedSeq installs a replicated commit carrying its position
// in the primary's stream, from a sync catch-up. Records below the
// local stream head are duplicates and ignored (sync batches re-deliver
// records that a concurrent mirror already buffered); records above it
// are buffered while a resync is filling in the gap, and rejected
// otherwise — a silent gap would diverge the replica forever, so the
// primary's mirror call must fail loudly instead.
func (s *Store) ApplyReplicatedSeq(seq uint64, commitTS clock.Timestamp, ops []*kv.Op) error {
	return s.applyReplicated(seq, commitTS, ops, false)
}

// ApplyMirrored is the live-mirror variant of ApplyReplicatedSeq. The
// primary sends each sequence number exactly once and in order, so a
// mirror record below the local stream head means this replica applied
// commits the primary never streamed — it served writes of its own
// while the primary was alive (split brain). Acknowledging would make
// the primary believe a commit is replicated when this replica dropped
// it, so the duplicate fails loudly and the primary's commit aborts.
func (s *Store) ApplyMirrored(seq uint64, commitTS clock.Timestamp, ops []*kv.Op) error {
	return s.applyReplicated(seq, commitTS, ops, true)
}

func (s *Store) applyReplicated(seq uint64, commitTS clock.Timestamp, ops []*kv.Op, strict bool) error {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	for {
		switch {
		case seq < s.repSeq:
			if strict {
				return fmt.Errorf("%w: replica is ahead of the primary's stream (got seq %d, local head %d): replicas diverged, re-form the pair", kv.ErrBadRequest, seq, s.repSeq)
			}
			return nil // duplicate delivery
		case seq > s.repSeq:
			if !s.resyncing {
				return fmt.Errorf("%w: replication gap: got seq %d, want %d; backup needs resync", kv.ErrBadRequest, seq, s.repSeq)
			}
			if s.pending == nil {
				s.pending = make(map[uint64]repRecord)
			}
			s.pending[seq] = repRecord{commitTS: commitTS, ops: ops}
			return nil
		}
		s.applyRecordLocked(commitTS, ops)
		rec, ok := s.pending[s.repSeq]
		if !ok {
			return nil
		}
		delete(s.pending, s.repSeq)
		seq, commitTS, ops = s.repSeq, rec.commitTS, rec.ops
	}
}

// applyRecordLocked applies one replicated commit and advances the
// stream head. Caller holds repMu; per-object version order follows
// from stream order. The record is appended to the replication log and
// this replica's own write-ahead log, so a backup is durable and can
// itself serve resyncs after a failover promotes it.
func (s *Store) applyRecordLocked(commitTS clock.Timestamp, ops []*kv.Op) {
	s.clock.Observe(commitTS)
	oids, byOID := groupOps(ops)
	for _, oid := range oids {
		sh := s.shardFor(oid)
		sh.mu.Lock()
		obj := sh.objs[oid]
		if obj == nil {
			obj = &object{}
			sh.objs[oid] = obj
		}
		base, _, _ := visibleVersion(obj, clock.Max)
		val := base
		for _, op := range byOID[oid] {
			next, err := op.Apply(val)
			if err != nil {
				break // a bad record op; keep what we have
			}
			val = next
		}
		structural, touched := classifyOps(byOID[oid])
		obj.versions = append(obj.versions, version{ts: commitTS, val: val, structural: structural, touched: touched})
		s.trimLocked(obj)
		sh.mu.Unlock()
	}
	s.repSeq++
	if s.cfg.ReplicationLog {
		s.commitLog = append(s.commitLog, repRecord{commitTS: commitTS, ops: ops})
	}
	if s.wal != nil {
		// Best-effort: replicated state is already acknowledged upstream;
		// a write error here only costs durability of this replica.
		s.wal.append(commitTS, ops)
	}
}

// CloseLog flushes and closes the write-ahead log (if any).
func (s *Store) CloseLog() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.close()
}
