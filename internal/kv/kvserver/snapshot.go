package kvserver

// State snapshots: the state-transfer half of the bounded replication
// log. A snapshot is a consistent copy of everything a replica needs to
// continue the stream from a given sequence number without the records
// below it: every object's version history (with conflict metadata and
// GC floor), the prepared-transaction table (staged ops and locks of
// replicated prepares), the decided-transaction table, and the
// replication-group epoch and membership — tagged with the stream
// sequence number it covers.
//
// Snapshots are captured under repMu. The native write paths hold repMu
// across a record's emission AND the application of its effects, so a
// capture always observes a state that equals "every record below
// repSeq applied, none above" — the exact contract a resyncing replica
// needs to install the snapshot and then replay the log tail from
// snapshot.Seq. Prepares whose RecPrepare has not entered the stream
// yet (rec.replicated false) are deliberately skipped: their records
// land at sequence numbers >= snapshot.Seq and reach the installer
// through the tail.
//
// Two consumers share the format: MethodSnap chunked state transfer to
// a too-far-behind backup (ServeSnapshotChunk / InstallSnapshot), and
// the write-ahead log's checkpoint rotation (a restart replays the
// snapshot frame plus the tail instead of the full history).

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"yesquel/internal/clock"
	"yesquel/internal/kv"
	"yesquel/internal/wire"
)

// snapFormat versions the snapshot encoding. Decoders refuse other
// formats loudly — a snapshot is all-or-nothing, there is no "recover
// what parses" for state transfer.
const snapFormat byte = 1

// stateSnapshot is the decoded form of a state snapshot.
type stateSnapshot struct {
	Seq      uint64 // stream position covered: records < Seq are reflected
	Epoch    uint64
	Members  []string
	Clock    clock.Timestamp
	Objects  []snapObject
	Prepared []snapPrepare
	Decided  []snapDecision
}

type snapObject struct {
	OID      kv.OID
	GCFloor  clock.Timestamp
	Versions []snapVersion
}

type snapVersion struct {
	TS         clock.Timestamp
	Val        *kv.Value // nil = tombstone
	Structural bool
	Touched    [][]byte
}

type snapPrepare struct {
	TxID  uint64
	Epoch uint64
	TS    clock.Timestamp
	Ops   []*kv.Op
}

type snapDecision struct {
	TxID   uint64
	Commit bool
	TS     clock.Timestamp
}

// captureSnapshotLocked copies the store's full state. Caller holds
// repMu at a point where visible state is consistent with repSeq (the
// end of any emit-and-apply critical section). Values and op slices
// are aliased, not copied — both are immutable once stored.
func (s *Store) captureSnapshotLocked() *stateSnapshot {
	sn := &stateSnapshot{Seq: s.repSeq, Clock: s.clock.Now()}
	s.epochMu.Lock()
	sn.Epoch = s.epoch
	sn.Members = append([]string(nil), s.epochMembers...)
	s.epochMu.Unlock()

	type carriedTx struct {
		txid uint64
		rec  *txRecord
	}
	var carried []carriedTx
	s.txMu.Lock()
	for txid, rec := range s.txs {
		if rec.replicated {
			carried = append(carried, carriedTx{txid, rec})
		}
	}
	for txid, d := range s.decided {
		sn.Decided = append(sn.Decided, snapDecision{TxID: txid, Commit: d.commit, TS: d.commitTS})
	}
	s.txMu.Unlock()
	sort.Slice(carried, func(i, j int) bool { return carried[i].txid < carried[j].txid })
	sort.Slice(sn.Decided, func(i, j int) bool { return sn.Decided[i].TxID < sn.Decided[j].TxID })

	// The staged ops and proposed timestamp live on the objects' locks;
	// they are stable here because resolving a prepare (commit, abort,
	// replicated decide) requires repMu, which we hold.
	for _, c := range carried {
		p := snapPrepare{TxID: c.txid, Epoch: c.rec.epoch}
		for _, oid := range c.rec.oids {
			sh := s.shardFor(oid)
			sh.mu.Lock()
			if obj := sh.objs[oid]; obj != nil && obj.lock != nil && obj.lock.txid == c.txid {
				p.TS = obj.lock.proposed
				p.Ops = append(p.Ops, obj.lock.ops...)
			}
			sh.mu.Unlock()
		}
		sn.Prepared = append(sn.Prepared, p)
	}

	for i := range s.shard {
		sh := &s.shard[i]
		sh.mu.Lock()
		for oid, obj := range sh.objs {
			if len(obj.versions) == 0 {
				// A version-less object exists only as a lock carrier for
				// an in-flight prepare. Carried (replicated) prepares
				// re-create it on install via stageReplicatedPrepare; an
				// uncarried one (its record not yet in the stream, e.g.
				// mid-FastCommit) must NOT be materialized — if that
				// transaction aborts without a stream decision, nothing
				// would ever delete the installer's copy, and the phantom
				// would diverge StateDigest forever.
				continue
			}
			o := snapObject{OID: oid, GCFloor: obj.gcFloor, Versions: make([]snapVersion, 0, len(obj.versions))}
			for _, v := range obj.versions {
				sv := snapVersion{TS: v.ts, Val: v.val, Structural: v.structural}
				if len(v.touched) > 0 {
					sv.Touched = make([][]byte, 0, len(v.touched))
					for k := range v.touched {
						sv.Touched = append(sv.Touched, []byte(k))
					}
					sort.Slice(sv.Touched, func(a, b int) bool { return string(sv.Touched[a]) < string(sv.Touched[b]) })
				}
				o.Versions = append(o.Versions, sv)
			}
			sn.Objects = append(sn.Objects, o)
		}
		sh.mu.Unlock()
	}
	sort.Slice(sn.Objects, func(i, j int) bool { return sn.Objects[i].OID < sn.Objects[j].OID })
	return sn
}

// encodeSnapshot serializes sn in the canonical snapshot format shared
// by MethodSnap transfers and write-ahead-log checkpoint frames.
func encodeSnapshot(sn *stateSnapshot) []byte {
	b := wire.NewBuffer(1 << 12)
	b.PutByte(snapFormat)
	b.PutUvarint(sn.Seq)
	b.PutUvarint(sn.Epoch)
	b.PutUvarint(uint64(len(sn.Members)))
	for _, m := range sn.Members {
		b.PutString(m)
	}
	b.PutUint64(uint64(sn.Clock))
	b.PutUvarint(uint64(len(sn.Objects)))
	for i := range sn.Objects {
		o := &sn.Objects[i]
		b.PutUint64(uint64(o.OID))
		b.PutUint64(uint64(o.GCFloor))
		b.PutUvarint(uint64(len(o.Versions)))
		for j := range o.Versions {
			v := &o.Versions[j]
			b.PutUint64(uint64(v.TS))
			kv.EncodeValue(b, v.Val)
			b.PutBool(v.Structural)
			b.PutUvarint(uint64(len(v.Touched)))
			for _, k := range v.Touched {
				b.PutBytes(k)
			}
		}
	}
	b.PutUvarint(uint64(len(sn.Prepared)))
	for i := range sn.Prepared {
		p := &sn.Prepared[i]
		b.PutUint64(p.TxID)
		b.PutUvarint(p.Epoch)
		b.PutUint64(uint64(p.TS))
		b.PutUvarint(uint64(len(p.Ops)))
		for _, op := range p.Ops {
			kv.EncodeOp(b, op)
		}
	}
	b.PutUvarint(uint64(len(sn.Decided)))
	for i := range sn.Decided {
		d := &sn.Decided[i]
		b.PutUint64(d.TxID)
		b.PutBool(d.Commit)
		b.PutUint64(uint64(d.TS))
	}
	return b.Bytes()
}

// snapMaxCount sanity-bounds decoded element counts (like the wire
// decoders, this guards against garbage, not policy).
const snapMaxCount = uint64(wire.MaxFrameSize)

// decodeSnapshot is the inverse of encodeSnapshot.
func decodeSnapshot(p []byte) (*stateSnapshot, error) {
	r := wire.NewReader(p)
	format, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if format != snapFormat {
		return nil, fmt.Errorf("%w: snapshot format %d (want %d): written by an incompatible version", kv.ErrBadRequest, format, snapFormat)
	}
	sn := &stateSnapshot{}
	if sn.Seq, err = r.Uvarint(); err != nil {
		return nil, err
	}
	if sn.Epoch, err = r.Uvarint(); err != nil {
		return nil, err
	}
	nm, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nm > snapMaxCount {
		return nil, kv.ErrBadRequest
	}
	for i := uint64(0); i < nm; i++ {
		m, err := r.String()
		if err != nil {
			return nil, err
		}
		sn.Members = append(sn.Members, m)
	}
	ck, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	sn.Clock = clock.Timestamp(ck)

	nobj, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nobj > snapMaxCount {
		return nil, kv.ErrBadRequest
	}
	sn.Objects = make([]snapObject, 0, nobj)
	for i := uint64(0); i < nobj; i++ {
		var o snapObject
		oid, err := r.Uint64()
		if err != nil {
			return nil, err
		}
		o.OID = kv.OID(oid)
		floor, err := r.Uint64()
		if err != nil {
			return nil, err
		}
		o.GCFloor = clock.Timestamp(floor)
		nv, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if nv > snapMaxCount {
			return nil, kv.ErrBadRequest
		}
		o.Versions = make([]snapVersion, 0, nv)
		for j := uint64(0); j < nv; j++ {
			var v snapVersion
			ts, err := r.Uint64()
			if err != nil {
				return nil, err
			}
			v.TS = clock.Timestamp(ts)
			if v.Val, err = kv.DecodeValue(r); err != nil {
				return nil, err
			}
			if v.Structural, err = r.Bool(); err != nil {
				return nil, err
			}
			nt, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			if nt > snapMaxCount {
				return nil, kv.ErrBadRequest
			}
			for k := uint64(0); k < nt; k++ {
				key, err := r.BytesCopy()
				if err != nil {
					return nil, err
				}
				v.Touched = append(v.Touched, key)
			}
			o.Versions = append(o.Versions, v)
		}
		sn.Objects = append(sn.Objects, o)
	}

	np, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if np > snapMaxCount {
		return nil, kv.ErrBadRequest
	}
	sn.Prepared = make([]snapPrepare, 0, np)
	for i := uint64(0); i < np; i++ {
		var pr snapPrepare
		if pr.TxID, err = r.Uint64(); err != nil {
			return nil, err
		}
		if pr.Epoch, err = r.Uvarint(); err != nil {
			return nil, err
		}
		ts, err := r.Uint64()
		if err != nil {
			return nil, err
		}
		pr.TS = clock.Timestamp(ts)
		nops, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if nops > snapMaxCount {
			return nil, kv.ErrBadRequest
		}
		for j := uint64(0); j < nops; j++ {
			op, err := kv.DecodeOp(r)
			if err != nil {
				return nil, err
			}
			pr.Ops = append(pr.Ops, op)
		}
		sn.Prepared = append(sn.Prepared, pr)
	}

	nd, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nd > snapMaxCount {
		return nil, kv.ErrBadRequest
	}
	sn.Decided = make([]snapDecision, 0, nd)
	for i := uint64(0); i < nd; i++ {
		var d snapDecision
		if d.TxID, err = r.Uint64(); err != nil {
			return nil, err
		}
		if d.Commit, err = r.Bool(); err != nil {
			return nil, err
		}
		ts, err := r.Uint64()
		if err != nil {
			return nil, err
		}
		d.TS = clock.Timestamp(ts)
		sn.Decided = append(sn.Decided, d)
	}
	return sn, nil
}

// InstallSnapshot replaces this store's entire state with the encoded
// snapshot: objects and version histories, the prepared- and decided-
// transaction tables, the epoch and membership, and the stream position
// (repSeq becomes the sequence the snapshot covers). Existing state is
// discarded — the caller is a replica whose history is a stale prefix
// of the snapshot source's stream — and any blocked readers are woken.
// The write-ahead log, if any, is rotated onto the snapshot so a later
// restart replays snapshot + tail. Buffered resync records below the
// snapshot's coverage are dropped; those continuing the stream are
// applied.
func (s *Store) InstallSnapshot(enc []byte) error {
	sn, err := decodeSnapshot(enc)
	if err != nil {
		return err
	}
	s.repMu.Lock()
	defer s.repMu.Unlock()
	return s.installSnapshotLocked(sn, enc, true)
}

// InstallSnapshotDiscardingTail installs a snapshot even when it lies
// behind this replica's stream head — the state-transfer path for a
// replica whose history DIVERGED from the group's (kv.ErrDiverged):
// an old primary that kept appending records its group never saw. Its
// stranded suffix — every record above the snapshot's coverage — is
// abandoned wholesale, along with its epoch stamps and any buffered
// out-of-order records; a diverged history is replaced, never merged
// record-wise. The ordinary InstallSnapshot refuses to move the
// stream backwards precisely so that only this explicit path can.
func (s *Store) InstallSnapshotDiscardingTail(enc []byte) error {
	sn, err := decodeSnapshot(enc)
	if err != nil {
		return err
	}
	s.repMu.Lock()
	defer s.repMu.Unlock()
	if sn.Seq < s.repSeq {
		s.repSeq = sn.Seq
		s.streamEpoch = 0
		for seq := range s.pending {
			delete(s.pending, seq)
		}
	}
	return s.installSnapshotLocked(sn, enc, true)
}

// installSnapshotLocked implements InstallSnapshot; OpenStore also uses
// it to replay a write-ahead log's checkpoint frame into a fresh store.
// Caller holds repMu. enc is the snapshot's canonical encoding for the
// WAL rotation (re-encoded if nil). viaStream marks prepares staged
// from another replica's snapshot (the transfer path) rather than this
// node's own checkpoint replay — like the live stream, it only affects
// the orphan sweep's grace period (own prepares get the normal TTL).
//
//yesqlint:allow repmublock -- deliberate: replacing the whole visible state must exclude concurrent stream applies, and the inline WAL rotation/close is bounded local file work, never a network call
func (s *Store) installSnapshotLocked(sn *stateSnapshot, enc []byte, viaStream bool) error {
	if sn.Seq < s.repSeq {
		return fmt.Errorf("%w: snapshot covers seq %d but this replica is already at %d: refusing to move the stream backwards", kv.ErrBadRequest, sn.Seq, s.repSeq)
	}
	// Wipe: release every lock (waking blocked readers into a retry
	// against the installed state) and drop all object and transaction
	// state. The snapshot is the new truth.
	for i := range s.shard {
		sh := &s.shard[i]
		sh.mu.Lock()
		for _, obj := range sh.objs {
			if obj.lock != nil {
				close(obj.lock.done)
				obj.lock = nil
			}
		}
		sh.objs = make(map[kv.OID]*object)
		sh.mu.Unlock()
	}
	now := time.Now()
	s.txMu.Lock()
	s.txs = make(map[uint64]*txRecord)
	s.decided = make(map[uint64]decision)
	s.decidedQ = nil
	for _, d := range sn.Decided {
		s.decided[d.TxID] = decision{commit: d.Commit, commitTS: d.TS}
		s.decidedQ = append(s.decidedQ, decidedEntry{txid: d.TxID, at: now})
	}
	s.txMu.Unlock()

	for i := range sn.Objects {
		o := &sn.Objects[i]
		sh := s.shardFor(o.OID)
		sh.mu.Lock()
		obj := &object{gcFloor: o.GCFloor, versions: make([]version, 0, len(o.Versions))}
		for j := range o.Versions {
			v := &o.Versions[j]
			var touched map[string]struct{}
			if len(v.Touched) > 0 {
				touched = make(map[string]struct{}, len(v.Touched))
				for _, k := range v.Touched {
					touched[string(k)] = struct{}{}
				}
			}
			obj.versions = append(obj.versions, version{ts: v.TS, val: v.Val, structural: v.Structural, touched: touched})
		}
		sh.objs[o.OID] = obj
		sh.mu.Unlock()
	}
	for i := range sn.Prepared {
		p := &sn.Prepared[i]
		rec := kv.ReplRecord{Kind: kv.RecPrepare, Epoch: p.Epoch, TxID: p.TxID, TS: p.TS, Ops: p.Ops}
		if err := s.stageReplicatedPrepare(rec, viaStream); err != nil {
			return fmt.Errorf("kvserver: installing snapshot prepare for tx %d: %w", p.TxID, err)
		}
	}

	s.clock.Observe(sn.Clock)
	s.repSeq = sn.Seq
	// Reinstall the durability-frontier bookkeeping over the new state.
	// The frontier bound comes from the DATA — the highest version or
	// decided-commit timestamp the snapshot actually holds — never from
	// sn.Clock: the source's clock runs ahead of its commits (reads
	// observe their snapshots into it), and a frontier above the real
	// data would vouch for timestamps at which this replica's answer is
	// not yet fixed. Whether the mark ever PUBLISHES still depends on
	// durableSeqLocked: on a follower the reset also drops the remote
	// watermark, so the frontier stays frozen until the current primary
	// vouches for the installed coverage afresh.
	var maxTS clock.Timestamp
	for i := range sn.Objects {
		for j := range sn.Objects[i].Versions {
			if ts := sn.Objects[i].Versions[j].TS; ts > maxTS {
				maxTS = ts
			}
		}
	}
	for i := range sn.Decided {
		if d := &sn.Decided[i]; d.Commit && d.TS > maxTS {
			maxTS = d.TS
		}
	}
	s.resetFrontierLocked(sn.Seq, maxTS)
	if s.cfg.ReplicationLog {
		s.commitLog = nil
		s.commitLogBytes = 0
		s.logBase = sn.Seq
	}
	if sn.Epoch > s.streamEpoch {
		// The snapshot's coverage includes every RecEpoch below its seq;
		// its epoch is what the stream had installed there.
		s.streamEpoch = sn.Epoch
	}
	if sn.Epoch > 0 {
		s.installEpochState(sn.Epoch, append([]string(nil), sn.Members...))
	}
	// Rotate the WAL onto the snapshot before draining buffered records,
	// so their (best-effort) appends land in the new file's tail. A
	// rotation that never swapped files fails the install AND disables
	// the log: the old file holds this replica's pre-install history,
	// and if the orchestrator left this store attached as a mirror
	// despite the error, best-effort appends of post-install records
	// after that stale prefix would replay as a silent semantic splice
	// on restart — no log at all (the old file replays as a plain stale
	// prefix, which a later resync repairs) is strictly safer. A swap
	// whose only failure was the directory fsync proceeds — the WAL at
	// the path IS the snapshot file, and the in-memory install is
	// already complete; the durability doubt is counted, not fatal.
	if s.wal != nil {
		if enc == nil {
			enc = encodeSnapshot(sn)
		}
		// Quiesce the pipeline first: queued (and in-flight) batched
		// appends hold records below the snapshot's coverage; teed into
		// the rotated file they would replay on top of a snapshot that
		// already contains their effects. The snapshot subsumes them, so
		// they are dropped, not written.
		s.discardWALLocked()
		if swapped, err := s.wal.rotate(enc); err != nil {
			s.stats.CheckpointFailures.Add(1)
			if !swapped {
				s.wal.close()
				s.wal = nil
				s.pipe.mu.Lock()
				s.pipe.needWAL = false
				s.pipe.wal = nil
				s.pipe.completeWaitersLocked()
				s.pipe.mu.Unlock()
				return fmt.Errorf("kvserver: rotating log onto installed snapshot (write-ahead logging disabled on this replica): %w", err)
			}
		}
		s.pipe.mu.Lock()
		if sn.Seq > s.pipe.synced {
			s.pipe.synced = sn.Seq
		}
		s.pipe.mu.Unlock()
	}
	for seq := range s.pending {
		if seq < s.repSeq {
			delete(s.pending, seq)
		}
	}
	for {
		rec, ok := s.pending[s.repSeq]
		if !ok {
			break
		}
		delete(s.pending, s.repSeq)
		if err := s.applyRecordLocked(rec, true); err != nil {
			return err
		}
	}
	s.stats.SnapshotsInstalled.Add(1)
	return nil
}

// snapSession is one in-progress state transfer: a consistent encoded
// snapshot being served chunk-by-chunk. lastUsed advances on every
// served chunk, so the idle TTL never expires a transfer that is
// actively (if slowly) making progress.
type snapSession struct {
	seq      uint64
	data     []byte
	lastUsed time.Time
}

const (
	// snapSessionTTL bounds how long an IDLE transfer may hold its
	// snapshot copy in memory (measured since the last served chunk, so
	// a slow but progressing transfer is never cut off mid-install);
	// snapSessionMax caps concurrent transfers (the least recently
	// active is evicted beyond it — its installer gets a loud "expired
	// session" and restarts).
	snapSessionTTL = 2 * time.Minute
	snapSessionMax = 4
)

// ErrSnapshotSessionExpired rejects a chunk request whose session is
// unknown, expired, or was evicted; the transfer must restart from
// scratch (Server.installSnapshotFrom does, bounded). It crosses the
// RPC boundary as an application-error string, so peers match on its
// message text (the same contract kv.ErrDiverged uses).
var ErrSnapshotSessionExpired = errors.New("kvserver: unknown or expired snapshot session")

// SweepSnapshotSessions drops expired state-transfer sessions — an
// abandoned transfer (its installer crashed) must not pin an O(state)
// snapshot copy until the next transfer begins. The server's
// checkpoint ticker runs it.
func (s *Store) SweepSnapshotSessions() {
	s.snapMu.Lock()
	s.expireSnapSessionsLocked(time.Now())
	s.snapMu.Unlock()
}

// expireSnapSessionsLocked is the single TTL-eviction policy, shared
// by the sweeper, the serving path, and session creation. Caller holds
// snapMu.
func (s *Store) expireSnapSessionsLocked(now time.Time) {
	for id, sess := range s.snapSessions {
		if now.Sub(sess.lastUsed) > snapSessionTTL {
			delete(s.snapSessions, id)
		}
	}
}

// ServeSnapshotChunk serves one chunk of a state snapshot to a
// resyncing peer. id 0 begins a transfer: a fresh snapshot is captured
// at the current stream head and cached under a new session id; the
// caller fetches the remaining chunks with that id. Chunks of one
// session slice a single consistent snapshot; an unknown or expired
// session is a loud error (the caller restarts the transfer) rather
// than a risk of splicing two states.
func (s *Store) ServeSnapshotChunk(id uint64, chunk uint32) (outID, seq uint64, chunks uint32, data []byte, err error) {
	if id == 0 {
		// Without the replication log there is no consistent capture
		// (plain and WAL-only commits apply outside the stream lock,
		// see commitDetached) — and SyncRecords could not serve the log
		// tail above a snapshot anyway, so a transfer from such a store
		// could never complete a resync. cfg is immutable, no lock.
		if !s.cfg.ReplicationLog {
			return 0, 0, 0, nil, fmt.Errorf("%w: server keeps no replication log to snapshot from", kv.ErrBadRequest)
		}
		// Share a session already covering the current head: concurrent
		// cold-joiners (an idle source, or several peers starting at
		// once) then read one immutable encoded snapshot instead of
		// capturing per peer and evicting each other past the session
		// cap. Sessions are immutable, so sharing is read-only safe.
		// Captures are single-flighted per head — simultaneous first
		// requests wait for one capture instead of each paying the
		// O(state) pass and thrashing the session table.
		for id == 0 {
			// Re-read the window each iteration: under ongoing writes a
			// capture lands above the head its waiters recorded, and a
			// stale comparison would send every waiter into its own
			// capture. Any session at or above logBase is shareable —
			// the log tail continues from its seq — so concurrent
			// joiners converge on the newest one.
			base, head := s.LogBounds()
			now := time.Now()
			s.snapMu.Lock()
			s.expireSnapSessionsLocked(now)
			for sid, sess := range s.snapSessions {
				if sess.seq >= base && (id == 0 || sess.seq > s.snapSessions[id].seq) {
					id = sid
				}
			}
			if id != 0 {
				s.snapSessions[id].lastUsed = now
				s.snapMu.Unlock()
				break
			}
			if ch, busy := s.snapCapturing[head]; busy {
				// Another request is capturing this head: wait for its
				// session, then re-check.
				s.snapMu.Unlock()
				<-ch
				continue
			}
			if s.snapCapturing == nil {
				s.snapCapturing = make(map[uint64]chan struct{})
			}
			done := make(chan struct{})
			s.snapCapturing[head] = done
			s.snapMu.Unlock()

			s.repMu.Lock()
			sn := s.captureSnapshotLocked()
			s.repMu.Unlock()
			// Serialize outside the stream lock: the capture is a
			// private copy (values aliased but immutable), and encoding
			// is a second O(state) pass the write paths need not wait
			// for.
			enc := encodeSnapshot(sn)
			now = time.Now()
			s.snapMu.Lock()
			delete(s.snapCapturing, head)
			close(done)
			if s.snapSessions == nil {
				s.snapSessions = make(map[uint64]*snapSession)
			}
			s.expireSnapSessionsLocked(now)
			for len(s.snapSessions) >= snapSessionMax {
				oldest, oldestAt := uint64(0), now
				for sid, sess := range s.snapSessions {
					if oldest == 0 || sess.lastUsed.Before(oldestAt) {
						oldest, oldestAt = sid, sess.lastUsed
					}
				}
				delete(s.snapSessions, oldest)
			}
			s.snapLastID++
			id = s.snapLastID
			s.snapSessions[id] = &snapSession{seq: sn.Seq, data: enc, lastUsed: now}
			s.snapMu.Unlock()
			s.stats.SnapshotsServed.Add(1)
		}
	}
	s.snapMu.Lock()
	// Enforce the TTL on the serving path too, not only when a new
	// transfer's eviction sweep happens to run — and mark this session
	// live, so an active transfer never expires mid-install.
	s.expireSnapSessionsLocked(time.Now())
	sess := s.snapSessions[id]
	if sess != nil {
		sess.lastUsed = time.Now()
	}
	s.snapMu.Unlock()
	if sess == nil {
		return 0, 0, 0, nil, fmt.Errorf("%w %d: restart the transfer", ErrSnapshotSessionExpired, id)
	}
	cs := s.cfg.SnapshotChunkBytes
	total := uint32((len(sess.data) + cs - 1) / cs)
	if total == 0 {
		total = 1
	}
	if chunk >= total {
		return 0, 0, 0, nil, fmt.Errorf("%w: snapshot chunk %d of %d", kv.ErrBadRequest, chunk, total)
	}
	start := int(chunk) * cs
	end := start + cs
	if end > len(sess.data) {
		end = len(sess.data)
	}
	return id, sess.seq, total, sess.data[start:end], nil
}
