package kvserver_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
)

// TestGroupCommitConcurrentWritersMirrorExactly drives a hand-wired
// mirror pair with concurrent writers through the group-commit
// pipeline and pins the stream invariant batching must not bend: after
// every write is acknowledged, primary and backup hold byte-identical
// state (batching may coalesce round trips, but it must never reorder
// or splice the stream).
func TestGroupCommitConcurrentWritersMirrorExactly(t *testing.T) {
	primary := startServer(t)
	backup := startServer(t)
	if err := primary.SetMirror(backup.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := kvclient.Open([]string{primary.Addr()})
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < perWorker; i++ {
				tx := c.Begin()
				tx.Put(c.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("w%d-%d", w, i))))
				if err := tx.Commit(ctx); err != nil {
					t.Errorf("worker %d commit %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Every commit was acknowledged, so every record's batch was
	// applied on the backup before the ack: the replicas must agree
	// byte for byte, with the streams at the same head.
	if got, want := backup.Store().StateDigest(), primary.Store().StateDigest(); got != want {
		t.Fatalf("after concurrent group-commit load: backup digest %x != primary digest %x", got, want)
	}
	if got, want := backup.Store().ReplSeq(), primary.Store().ReplSeq(); got != want {
		t.Fatalf("backup stream head %d != primary %d", got, want)
	}
	st := primary.Store().Stats()
	if st.MirrorBatches == 0 {
		t.Fatal("no mirror batches recorded on the group-commit path")
	}
	t.Logf("commits=%d mirror batches=%d (depth %.1f)",
		workers*perWorker, st.MirrorBatches, float64(st.MirrorBatchRecords)/float64(st.MirrorBatches))
}

// TestGroupCommitDeadBackupNeverFalseAcks kills the backup under
// concurrent write load and pins the watermark ack rule: from the
// moment the backup is gone, no commit is acknowledged — a waiter may
// only succeed when its record's batch was applied by the backup, so
// every attempt must surface an error (the client treats it as
// uncertain). Detaching the dead backup restores solo service, exactly
// like the pre-batching strict-mirror behavior.
func TestGroupCommitDeadBackupNeverFalseAcks(t *testing.T) {
	primary := startServer(t)
	backup := startServer(t)
	if err := primary.SetMirror(backup.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Concurrent load first, so the kill lands mid-pipeline rather
	// than on an idle pair.
	const workers = 4
	const perWorker = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := kvclient.Open([]string{primary.Addr()})
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < perWorker; i++ {
				tx := c.Begin()
				tx.Put(c.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("w%d-%d", w, i))))
				if err := tx.Commit(ctx); err != nil {
					t.Errorf("worker %d commit %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Quiescent and fully acknowledged: the replicas agree.
	if got, want := backup.Store().StateDigest(), primary.Store().StateDigest(); got != want {
		t.Fatalf("pre-kill digests differ: %x != %x", got, want)
	}

	backup.Close()

	// The dark window: every commit attempt must fail — the backup can
	// never apply these records, so acking any of them would be a lost
	// acked write waiting to happen.
	c, err := kvclient.Open([]string{primary.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		tx := c.Begin()
		tx.Put(c.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("dark-%d", i))))
		if err := tx.Commit(ctx); err == nil {
			t.Fatalf("commit %d acknowledged with a dead backup", i)
		}
	}

	// Operator detaches the dead backup: replication is no longer a
	// requirement, and the primary serves alone again.
	if err := primary.SetMirror(""); err != nil {
		t.Fatal(err)
	}
	oid := c.NewOID(0)
	tx := c.Begin()
	tx.Put(oid, kv.NewPlain([]byte("solo")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatalf("commit after detaching dead backup: %v", err)
	}
	check := c.Begin()
	defer check.Abort()
	if v, err := check.Read(ctx, oid); err != nil || string(v.Data) != "solo" {
		t.Fatalf("solo write not readable: %v %v", v, err)
	}
}
