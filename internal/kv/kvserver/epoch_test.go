package kvserver

import (
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"yesquel/internal/kv"
)

// TestSweepOrphansEpochGuard is the acceptance test for the PR 2 gap:
// in an epoch-bearing group, SweepOrphans never TTL-aborts a prepare
// whose epoch is still current — its coordinator may legitimately be
// mid-drive on a decided commit — and only reaps it after the epoch is
// provably superseded AND a fresh TTL (restarted at the bump, giving
// the coordinator a redirect window) has passed.
func TestSweepOrphansEpochGuard(t *testing.T) {
	s := NewStore(nil, Config{PrepareTTL: 20 * time.Millisecond})
	s.SetSelf("a")
	if err := s.InstallEpoch(1, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	oid := kv.MakeOID(0, 1)
	txid := newTxID()
	if _, err := s.Prepare(txid, s.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: oid, Value: kv.NewPlain([]byte("in-flight"))},
	}); err != nil {
		t.Fatal(err)
	}

	// Long past the TTL, the prepare's epoch is still current: never
	// unilaterally aborted, no matter how many sweeps run.
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if n := s.SweepOrphans(); n != 0 {
			t.Fatalf("sweep aborted a current-epoch prepare (n=%d)", n)
		}
	}
	if !s.IsLocked(oid) {
		t.Fatal("current-epoch prepare lost its lock")
	}

	// A failover happens: the epoch is superseded. The TTL restarts at
	// the bump, so an immediate sweep still must not reap — the
	// coordinator gets a full window to redirect its decision.
	if err := s.InstallEpoch(2, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if n := s.SweepOrphans(); n != 0 {
		t.Fatalf("sweep reaped a superseded prepare before its post-bump TTL (n=%d)", n)
	}

	// Only after the post-bump TTL does the sweep reap it.
	time.Sleep(50 * time.Millisecond)
	if n := s.SweepOrphans(); n != 1 {
		t.Fatalf("superseded prepare not swept after TTL (n=%d)", n)
	}
	if s.IsLocked(oid) {
		t.Fatal("orphan abort did not release the lock")
	}
	if st := s.Stats(); st.OrphanAborts != 1 {
		t.Fatalf("orphan counters: %+v", st)
	}
	// The late coordinator's commit is answered with the abort outcome,
	// exactly as in the legacy TTL path.
	if err := s.Commit(txid, s.Clock().Now()); !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("late commit after epoch-guarded orphan abort: %v, want ErrConflict", err)
	}
}

// TestCheckClientOpRoles pins the serving matrix of the epoch
// discipline: legacy stores serve anyone; a multi-member primary
// serves only current-epoch (or epoch-unaware) requests and only under
// a valid lease; backups and removed members always redirect.
func TestCheckClientOpRoles(t *testing.T) {
	// Legacy store: epoch 0, everything allowed.
	s := NewStore(nil, Config{})
	s.SetSelf("a")
	if err := s.CheckClientOp(0); err != nil {
		t.Fatalf("legacy store rejected a client op: %v", err)
	}

	// Sole-member primary: no lease needed (no one else could be
	// promoted), stale epochs still rejected.
	if err := s.InstallEpoch(1, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckClientOp(1); err != nil {
		t.Fatalf("sole-member primary rejected a current-epoch op: %v", err)
	}
	if err := s.CheckClientOp(0); err != nil {
		t.Fatalf("sole-member primary rejected an epoch-unaware op: %v", err)
	}
	if err := s.CheckClientOp(7); !errors.Is(err, kv.ErrWrongEpoch) {
		t.Fatalf("future-epoch op: %v, want ErrWrongEpoch", err)
	}

	// Multi-member primary: needs a lease.
	if err := s.InstallEpoch(2, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckClientOp(2); !errors.Is(err, kv.ErrWrongEpoch) {
		t.Fatalf("primary without a lease served: %v, want ErrWrongEpoch", err)
	}
	s.ExtendLease("b", time.Now().Add(time.Minute))
	if err := s.CheckClientOp(2); err != nil {
		t.Fatalf("leased primary rejected a current-epoch op: %v", err)
	}
	if err := s.CheckClientOp(1); !errors.Is(err, kv.ErrWrongEpoch) {
		t.Fatalf("stale-epoch op on leased primary: %v, want ErrWrongEpoch", err)
	}
	// The rejection carries the configuration the client needs.
	we, ok := kv.ParseWrongEpoch(s.CheckClientOp(1).Error())
	if !ok || we.Epoch != 2 || len(we.Members) != 2 || we.Members[0] != "a" {
		t.Fatalf("rejection payload: %+v ok=%v", we, ok)
	}

	// Backup: redirects even current-epoch requests.
	b := NewStore(nil, Config{})
	b.SetSelf("b")
	b.AdoptEpoch(2, []string{"a", "b"})
	if got := b.Role(); got != RoleBackup {
		t.Fatalf("role: %q", got)
	}
	if err := b.CheckClientOp(2); !errors.Is(err, kv.ErrWrongEpoch) {
		t.Fatalf("backup served a client op: %v", err)
	}

	// Removed member (deposed primary that learned of its successor).
	s.AdoptEpoch(3, []string{"b"})
	if got := s.Role(); got != RoleRemoved {
		t.Fatalf("role after deposition: %q", got)
	}
	if err := s.CheckClientOp(3); !errors.Is(err, kv.ErrWrongEpoch) {
		t.Fatalf("removed member served a client op: %v", err)
	}
}

// TestWALPersistsEpoch: configuration changes are stream records, so a
// WAL-restarted member comes back knowing its epoch and membership.
func TestWALPersistsEpoch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{LogPath: dir + "/wal.log"}
	s, err := OpenStore(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSelf("a")
	if err := s.InstallEpoch(1, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	commitPut(t, s, kv.MakeOID(0, 1), "epoch-1-data")
	if err := s.InstallEpoch(2, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseLog(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStore(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.CloseLog()
	if got := r.Epoch(); got != 2 {
		t.Fatalf("recovered epoch: %d, want 2", got)
	}
	if m := r.Members(); len(m) != 1 || m[0] != "a" {
		t.Fatalf("recovered members: %v", m)
	}
	if got, want := r.StateDigest(), s.StateDigest(); got != want {
		t.Fatalf("recovered digest %x != original %x", got, want)
	}
}

// TestWALRefusesUnrecognizedFormat: a log written by a binary with a
// different record layout must refuse to start loudly — the per-record
// checksums cannot catch a field-layout change, so "recover what
// parses" would silently lose durable commits.
func TestWALRefusesUnrecognizedFormat(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/wal.log"
	// A pre-versioning log: record frames with no magic header.
	if err := os.WriteFile(path, []byte("\x00\x00\x00\x10old-format-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(nil, Config{LogPath: path}); err == nil {
		t.Fatal("store opened on an unversioned log")
	} else if !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("refusal should name the incompatibility: %v", err)
	}
	// An empty or header-torn log is fine: no record can predate the
	// fully written header.
	if err := os.WriteFile(path, []byte(walMagic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(nil, Config{LogPath: path})
	if err != nil {
		t.Fatalf("torn-header log refused: %v", err)
	}
	s.CloseLog()
}

// TestMirrorRejectsStalePrimaryEpoch is the stream-level split-brain
// guard in isolation: once a replica has moved to a newer epoch, a
// live mirror record stamped with the old epoch is rejected with
// ErrWrongEpoch (the deposed primary must not get its record
// acknowledged), while sync replays of history remain exempt.
func TestMirrorRejectsStalePrimaryEpoch(t *testing.T) {
	b := NewStore(nil, Config{ReplicationLog: true})
	b.SetSelf("b")
	// The replica applies an epoch-1 record, then is promoted to epoch 2.
	rec1 := kv.ReplRecord{Kind: kv.RecEpoch, Epoch: 1, Members: []string{"a", "b"}}
	if err := b.ApplyMirrored(0, rec1); err != nil {
		t.Fatal(err)
	}
	if err := b.InstallEpoch(2, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	// A stale primary's live record at epoch 1 must be turned away.
	stale := kv.ReplRecord{Kind: kv.RecCommit, Epoch: 1, TS: b.Clock().Now(),
		Ops: []*kv.Op{{Kind: kv.OpPut, OID: kv.MakeOID(0, 9), Value: kv.NewPlain([]byte("split"))}}}
	err := b.ApplyMirrored(2, stale)
	if !errors.Is(err, kv.ErrWrongEpoch) {
		t.Fatalf("stale-epoch mirror record: %v, want ErrWrongEpoch", err)
	}
	// A stale RecEpoch (e.g. the deposed primary trying to re-form its
	// own group) is rejected too.
	err = b.ApplyMirrored(2, kv.ReplRecord{Kind: kv.RecEpoch, Epoch: 2, Members: []string{"a"}})
	if !errors.Is(err, kv.ErrWrongEpoch) {
		t.Fatalf("stale RecEpoch: %v, want ErrWrongEpoch", err)
	}
}
