// Package kv defines the data model of Yesquel's transactional
// key-value storage system — the lowest layer of the architecture
// (boxes 3 in Figure 1 of the paper), where distributed transactions
// are provided.
//
// Objects are identified by 64-bit OIDs. An OID embeds the id of the
// storage server responsible for it, so placement requires no lookup
// service and the DBT layer can choose where each tree node lives.
//
// An object's value is either a plain byte string or a "supervalue": a
// small structure holding fixed 64-bit attributes, optional lower/upper
// bound keys (used by the DBT for fence keys), and an ordered list of
// cells. Supervalues support delta operations (ListAdd, ListDelRange,
// AttrSet, SetBounds) so that a DBT leaf insert updates one cell
// instead of rewriting the node — the mechanism that keeps Yesquel's
// write amplification low.
//
// The store is multi-versioned; transactions run under snapshot
// isolation (Berenson et al.), with versions tagged by hybrid logical
// clock timestamps (internal/clock).
package kv

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"yesquel/internal/clock"
	"yesquel/internal/wire"
)

// OID identifies an object. The top 16 bits name the storage server
// slot; the remainder is assigned by the creator.
type OID uint64

const serverBits = 16

// MakeOID builds an OID owned by server slot, with the given local id.
func MakeOID(slot uint16, local uint64) OID {
	return OID(uint64(slot)<<(64-serverBits) | (local &^ (uint64(0xffff) << (64 - serverBits))))
}

// Slot returns the server slot embedded in the OID.
func (o OID) Slot() uint16 { return uint16(uint64(o) >> (64 - serverBits)) }

// Local returns the server-local part of the OID.
func (o OID) Local() uint64 { return uint64(o) &^ (uint64(0xffff) << (64 - serverBits)) }

func (o OID) String() string { return fmt.Sprintf("oid(%d:%x)", o.Slot(), o.Local()) }

// NumAttrs is the number of 64-bit attribute slots in a supervalue.
// The DBT uses a handful (height, next leaf, tree id); eight matches
// the paper's "small array of attributes".
const NumAttrs = 8

// Cell is one element of a supervalue's ordered list. Cells are kept
// sorted by Key under bytes.Compare; layers above encode typed keys
// order-preservingly.
type Cell struct {
	Key   []byte
	Value []byte
}

// Kind discriminates plain values from supervalues.
type Kind uint8

const (
	// KindPlain is an uninterpreted byte string.
	KindPlain Kind = iota
	// KindSuper is a structured supervalue.
	KindSuper
)

// Value is an object's value at one version.
type Value struct {
	Kind Kind

	// Plain payload (KindPlain only).
	Data []byte

	// Supervalue state (KindSuper only).
	Attrs   [NumAttrs]uint64
	LowKey  []byte // inclusive lower bound (DBT fence); nil = unbounded
	HighKey []byte // exclusive upper bound (DBT fence); nil = unbounded
	Cells   []Cell // sorted by Key
}

// NewSuper returns an empty supervalue.
func NewSuper() *Value { return &Value{Kind: KindSuper} }

// NewPlain returns a plain value holding data (not copied).
func NewPlain(data []byte) *Value { return &Value{Kind: KindPlain, Data: data} }

// Clone returns a deep copy of v. The MVCC store clones the latest
// version before applying delta operations so older versions stay
// immutable.
func (v *Value) Clone() *Value {
	if v == nil {
		return nil
	}
	out := &Value{Kind: v.Kind, Attrs: v.Attrs}
	if v.Data != nil {
		out.Data = append([]byte(nil), v.Data...)
	}
	if v.LowKey != nil {
		out.LowKey = append([]byte(nil), v.LowKey...)
	}
	if v.HighKey != nil {
		out.HighKey = append([]byte(nil), v.HighKey...)
	}
	if v.Cells != nil {
		out.Cells = make([]Cell, len(v.Cells))
		for i, c := range v.Cells {
			out.Cells[i] = Cell{
				Key:   append([]byte(nil), c.Key...),
				Value: append([]byte(nil), c.Value...),
			}
		}
	}
	return out
}

// Equal reports deep equality of two values.
func (v *Value) Equal(o *Value) bool {
	if v == nil || o == nil {
		return v == o
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindPlain:
		return bytes.Equal(v.Data, o.Data)
	case KindSuper:
		if v.Attrs != o.Attrs || !bytes.Equal(v.LowKey, o.LowKey) || !bytes.Equal(v.HighKey, o.HighKey) {
			return false
		}
		if len(v.Cells) != len(o.Cells) {
			return false
		}
		for i := range v.Cells {
			if !bytes.Equal(v.Cells[i].Key, o.Cells[i].Key) || !bytes.Equal(v.Cells[i].Value, o.Cells[i].Value) {
				return false
			}
		}
		return true
	}
	return false
}

// EncodedSize returns an upper bound on the wire size of v, used to
// size buffers and to account node sizes in the DBT.
func (v *Value) EncodedSize() int {
	if v == nil {
		return 1
	}
	n := 1 + len(v.Data) + 8*NumAttrs + len(v.LowKey) + len(v.HighKey) + 24
	for _, c := range v.Cells {
		n += len(c.Key) + len(c.Value) + 8
	}
	return n
}

// Errors shared by the kv client and server.
var (
	// ErrConflict reports a write-write conflict or lock conflict under
	// snapshot isolation; the transaction was aborted and may be
	// retried by the caller.
	ErrConflict = errors.New("kv: transaction conflict")
	// ErrAborted reports that the transaction was already aborted.
	ErrAborted = errors.New("kv: transaction aborted")
	// ErrNotFound reports a read of an object with no visible version.
	ErrNotFound = errors.New("kv: object not found")
	// ErrBadRequest reports a malformed request.
	ErrBadRequest = errors.New("kv: bad request")
	// ErrUncertain reports that a commit was sent but its acknowledgment
	// was lost (the connection died mid-call). The transaction may or
	// may not have committed; callers must reconcile by reading before
	// retrying non-idempotent work.
	ErrUncertain = errors.New("kv: commit outcome uncertain")
	// ErrDiverged reports that two replicas of one group hold
	// irreconcilable streams — a resync requester ahead of its source's
	// head, a mirror record below the replica's (the replica applied
	// records the primary never streamed), a decision for a prepare the
	// replica never staged. Resync cannot repair divergence — the group
	// must be re-formed from the authoritative member.
	ErrDiverged = errors.New("kv: replicas diverged")
	// ErrWrongEpoch reports that a request carried a stale (or unknown)
	// replication-group epoch, or reached a member that may not serve it
	// (a backup, or a primary whose lease expired). The rejection is a
	// guarantee: the operation was NOT executed, so retrying it — after
	// updating the group view from the carried epoch and membership — is
	// always safe, for idempotent and non-idempotent requests alike.
	ErrWrongEpoch = errors.New("kv: wrong epoch")
	// ErrWrongSlot reports that a request reached a group that does not
	// own the OID's slot under the current directory — the client routed
	// with a stale (or absent) slot directory, or the slot migrated away.
	// Like ErrWrongEpoch, the rejection guarantees the operation was NOT
	// executed; the typed form (WrongSlotError) carries the rejecting
	// member's directory version and the slot's owning group, so a stale
	// client re-routes in one round trip.
	ErrWrongSlot = errors.New("kv: wrong slot")
)

// Wire error codes: compact classifications stamped onto application
// errors that cross the RPC boundary (rpc.AppError.Code), so clients
// match errors structurally instead of grepping message text. The
// registry spans every service in the tree — codes 1–49 are the kv
// sentinels above, 50+ belong to server-side sentinels that still
// need client-visible classification (snapshot sessions, the RPC
// layer's own unknown-method rejection). Code 0 means unclassified;
// never assign it. Values are wire protocol: append, never renumber.
const (
	CodeConflict           uint64 = 1
	CodeAborted            uint64 = 2
	CodeNotFound           uint64 = 3
	CodeBadRequest         uint64 = 4
	CodeUncertain          uint64 = 5
	CodeDiverged           uint64 = 6
	CodeWrongEpoch         uint64 = 7
	CodeWrongSlot          uint64 = 8
	CodeSnapSessionExpired uint64 = 50
	CodeUnknownMethod      uint64 = 51
)

// WireErrorCode maps a handler error to its wire code, or 0 if the
// error matches no kv sentinel. ErrUncertain is matched FIRST and
// exclusively: an uncertain commit wraps the underlying batch error,
// which may itself carry wrong-epoch/conflict/bad-request — sentinels
// whose contracts promise the operation was NOT executed, the
// opposite of what an uncertain outcome means. Servers with
// service-local sentinels layer their own cases before delegating
// here (see kvserver's error coder).
func WireErrorCode(err error) uint64 {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, ErrUncertain):
		return CodeUncertain
	case errors.Is(err, ErrConflict):
		return CodeConflict
	case errors.Is(err, ErrAborted):
		return CodeAborted
	case errors.Is(err, ErrNotFound):
		return CodeNotFound
	case errors.Is(err, ErrWrongEpoch):
		return CodeWrongEpoch
	case errors.Is(err, ErrWrongSlot):
		return CodeWrongSlot
	case errors.Is(err, ErrDiverged):
		return CodeDiverged
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	}
	return 0
}

// WrongEpochError is the typed form of ErrWrongEpoch: the rejecting
// member's current epoch and membership (primary first), so a stale
// client can adopt the new configuration and redirect, and a deposed
// primary can learn it was superseded. It crosses the RPC boundary as
// an application-error string in the canonical format produced by
// Error; ParseWrongEpoch recovers it on the other side.
type WrongEpochError struct {
	Epoch   uint64
	Members []string // replica addresses, acting primary first
}

func (e *WrongEpochError) Error() string {
	return fmt.Sprintf("%s: epoch=%d members=%s", ErrWrongEpoch.Error(), e.Epoch, strings.Join(e.Members, ","))
}

func (e *WrongEpochError) Unwrap() error { return ErrWrongEpoch }

// ParseWrongEpoch recovers a WrongEpochError from an error string that
// crossed the RPC boundary (rpc.AppError flattens handler errors to
// text). It tolerates wrapping prefixes; the epoch=/members= pair must
// be the message tail, which the canonical Error format guarantees.
func ParseWrongEpoch(msg string) (*WrongEpochError, bool) {
	i := strings.Index(msg, ErrWrongEpoch.Error()+": epoch=")
	if i < 0 {
		return nil, false
	}
	rest := msg[i+len(ErrWrongEpoch.Error())+len(": epoch="):]
	j := strings.Index(rest, " members=")
	if j < 0 {
		return nil, false
	}
	epoch, err := strconv.ParseUint(rest[:j], 10, 64)
	if err != nil {
		return nil, false
	}
	we := &WrongEpochError{Epoch: epoch}
	if list := rest[j+len(" members="):]; list != "" {
		we.Members = strings.Split(list, ",")
	}
	return we, true
}

// WrongSlotError is the typed form of ErrWrongSlot: the rejecting
// member's directory version, the route (directory index) the request's
// OID maps to, the group that owns it under that version, and that
// group's replica addresses (primary first) — enough for a stale client
// to patch its directory and redirect in one round trip. It crosses the
// RPC boundary as an application-error string in the canonical format
// produced by Error; ParseWrongSlot recovers it on the other side.
type WrongSlotError struct {
	Version uint64   // rejecting member's directory version
	Route   uint32   // directory route index of the OID's slot
	Group   uint32   // owning group index under Version
	Members []string // owning group's replica addresses, primary first
}

func (e *WrongSlotError) Error() string {
	return fmt.Sprintf("%s: dir=%d route=%d group=%d members=%s",
		ErrWrongSlot.Error(), e.Version, e.Route, e.Group, strings.Join(e.Members, ","))
}

func (e *WrongSlotError) Unwrap() error { return ErrWrongSlot }

// ParseWrongSlot recovers a WrongSlotError from an error string that
// crossed the RPC boundary. It tolerates wrapping prefixes; the
// dir=/route=/group=/members= tuple must be the message tail, which
// the canonical Error format guarantees.
func ParseWrongSlot(msg string) (*WrongSlotError, bool) {
	i := strings.Index(msg, ErrWrongSlot.Error()+": dir=")
	if i < 0 {
		return nil, false
	}
	rest := msg[i+len(ErrWrongSlot.Error())+len(": dir="):]
	j := strings.Index(rest, " route=")
	if j < 0 {
		return nil, false
	}
	version, err := strconv.ParseUint(rest[:j], 10, 64)
	if err != nil {
		return nil, false
	}
	rest = rest[j+len(" route="):]
	j = strings.Index(rest, " group=")
	if j < 0 {
		return nil, false
	}
	route, err := strconv.ParseUint(rest[:j], 10, 32)
	if err != nil {
		return nil, false
	}
	rest = rest[j+len(" group="):]
	j = strings.Index(rest, " members=")
	if j < 0 {
		return nil, false
	}
	group, err := strconv.ParseUint(rest[:j], 10, 32)
	if err != nil {
		return nil, false
	}
	ws := &WrongSlotError{Version: version, Route: uint32(route), Group: uint32(group)}
	if list := rest[j+len(" members="):]; list != "" {
		ws.Members = strings.Split(list, ",")
	}
	return ws, true
}

// MarkClock stamps the server's clock onto an error that crosses the
// RPC boundary without a response payload (rpc.AppError flattens
// handler errors to text). The commit handlers use it on their failure
// paths: a commit that failed its replication/durability wait has
// still installed versions at this clock, and a client that does not
// observe it may take its next snapshot below state that exists —
// surfacing as a spurious first-committer-wins conflict, or a read
// that misses an acknowledged write. The stamp leads the message so it
// cannot disturb tail-anchored parsers (ParseWrongEpoch);
// ParseClockMark recovers it on the other side.
func MarkClock(err error, ts clock.Timestamp) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("clock=%d %w", uint64(ts), err)
}

// ParseClockMark recovers a MarkClock stamp from an error string that
// crossed the RPC boundary.
func ParseClockMark(msg string) (clock.Timestamp, bool) {
	const key = "clock="
	if !strings.HasPrefix(msg, key) {
		return 0, false
	}
	v := msg[len(key):]
	if j := strings.IndexByte(v, ' '); j >= 0 {
		v = v[:j]
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, false
	}
	return clock.Timestamp(n), true
}

// OpKind enumerates write operations staged by a transaction.
type OpKind uint8

const (
	// OpPut overwrites the object with a full value.
	OpPut OpKind = iota
	// OpDelete removes the object (a tombstone version).
	OpDelete
	// OpListAdd inserts or replaces one cell in a supervalue.
	OpListAdd
	// OpListDelRange deletes cells with keys in [From, To).
	OpListDelRange
	// OpAttrSet sets one 64-bit attribute.
	OpAttrSet
	// OpSetBounds replaces the supervalue's fence keys.
	OpSetBounds
)

// Op is one staged write operation on an object.
type Op struct {
	Kind OpKind
	OID  OID

	Value *Value // OpPut
	Cell  Cell   // OpListAdd
	From  []byte // OpListDelRange (inclusive)
	To    []byte // OpListDelRange (exclusive)
	Attr  uint8  // OpAttrSet
	Num   uint64 // OpAttrSet value
	Low   []byte // OpSetBounds
	High  []byte // OpSetBounds
}

// Apply applies op to base and returns the resulting value. base may be
// nil (object absent); delta ops on an absent object create an empty
// supervalue first, so a blind ListAdd works without a prior read.
// Apply never mutates base.
func (op *Op) Apply(base *Value) (*Value, error) {
	switch op.Kind {
	case OpPut:
		return op.Value.Clone(), nil
	case OpDelete:
		return nil, nil
	}
	// Delta operations need a supervalue to operate on.
	var v *Value
	switch {
	case base == nil:
		v = NewSuper()
	case base.Kind != KindSuper:
		return nil, fmt.Errorf("%w: delta op on plain value", ErrBadRequest)
	default:
		v = base.Clone()
	}
	switch op.Kind {
	case OpListAdd:
		v.ListAdd(op.Cell.Key, op.Cell.Value)
	case OpListDelRange:
		v.ListDelRange(op.From, op.To)
	case OpAttrSet:
		if op.Attr >= NumAttrs {
			return nil, fmt.Errorf("%w: attr index %d", ErrBadRequest, op.Attr)
		}
		v.Attrs[op.Attr] = op.Num
	case OpSetBounds:
		v.LowKey = append([]byte(nil), op.Low...)
		v.HighKey = append([]byte(nil), op.High...)
	default:
		return nil, fmt.Errorf("%w: op kind %d", ErrBadRequest, op.Kind)
	}
	return v, nil
}

// CommutativeTouch classifies op for conflict detection. Commutative
// operations (a one-cell insert/replace, a one-cell delete, an
// attribute write) return the conflict key they touch: two concurrent
// transactions whose delta operations touch disjoint keys of the same
// supervalue commute and may both commit — this is what lets many
// clients insert into the same DBT leaf without aborting each other.
// Structural operations (full Put, Delete, SetBounds, multi-key
// ListDelRange — the ops a node split performs) return ok=false and
// conflict with every concurrent write to the object.
func (op *Op) CommutativeTouch() ([]byte, bool) {
	switch op.Kind {
	case OpListAdd:
		return op.Cell.Key, true
	case OpAttrSet:
		return attrTouchKey(op.Attr), true
	case OpListDelRange:
		// Single-key form: [k, k+"\x00") deletes exactly k.
		if op.From != nil && op.To != nil &&
			len(op.To) == len(op.From)+1 &&
			op.To[len(op.From)] == 0x00 &&
			bytes.Equal(op.To[:len(op.From)], op.From) {
			return op.From, true
		}
	}
	return nil, false
}

// attrTouchKey is the synthetic conflict key for attribute slot i. A
// real cell key could collide with it, costing only a spurious
// conflict, never a missed one.
func attrTouchKey(i uint8) []byte { return []byte{0xff, 0xfe, 'A', i} }

// --- wire encoding ---

// EncodeValue appends v to b. A nil value encodes as a tombstone.
func EncodeValue(b *wire.Buffer, v *Value) {
	if v == nil {
		b.PutByte(0xff)
		return
	}
	b.PutByte(byte(v.Kind))
	switch v.Kind {
	case KindPlain:
		b.PutBytes(v.Data)
	case KindSuper:
		for _, a := range v.Attrs {
			b.PutUvarint(a)
		}
		b.PutBytes(v.LowKey)
		b.PutBytes(v.HighKey)
		b.PutBool(v.LowKey != nil)
		b.PutBool(v.HighKey != nil)
		b.PutUvarint(uint64(len(v.Cells)))
		for _, c := range v.Cells {
			b.PutBytes(c.Key)
			b.PutBytes(c.Value)
		}
	}
}

// DecodeValue reads a value encoded by EncodeValue. Byte slices are
// copied out of the frame.
func DecodeValue(r *wire.Reader) (*Value, error) {
	k, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if k == 0xff {
		return nil, nil
	}
	v := &Value{Kind: Kind(k)}
	switch v.Kind {
	case KindPlain:
		v.Data, err = r.BytesCopy()
		return v, err
	case KindSuper:
		for i := range v.Attrs {
			v.Attrs[i], err = r.Uvarint()
			if err != nil {
				return nil, err
			}
		}
		low, err := r.BytesCopy()
		if err != nil {
			return nil, err
		}
		high, err := r.BytesCopy()
		if err != nil {
			return nil, err
		}
		hasLow, err := r.Bool()
		if err != nil {
			return nil, err
		}
		hasHigh, err := r.Bool()
		if err != nil {
			return nil, err
		}
		if hasLow {
			v.LowKey = low
		}
		if hasHigh {
			v.HighKey = high
		}
		n, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(wire.MaxFrameSize) {
			return nil, ErrBadRequest
		}
		v.Cells = make([]Cell, 0, n)
		for i := uint64(0); i < n; i++ {
			key, err := r.BytesCopy()
			if err != nil {
				return nil, err
			}
			val, err := r.BytesCopy()
			if err != nil {
				return nil, err
			}
			v.Cells = append(v.Cells, Cell{Key: key, Value: val})
		}
		return v, nil
	default:
		return nil, fmt.Errorf("%w: value kind %d", ErrBadRequest, k)
	}
}

// EncodeOp appends op to b.
func EncodeOp(b *wire.Buffer, op *Op) {
	b.PutByte(byte(op.Kind))
	b.PutUint64(uint64(op.OID))
	switch op.Kind {
	case OpPut:
		EncodeValue(b, op.Value)
	case OpDelete:
	case OpListAdd:
		b.PutBytes(op.Cell.Key)
		b.PutBytes(op.Cell.Value)
	case OpListDelRange:
		b.PutBytes(op.From)
		b.PutBytes(op.To)
		b.PutBool(op.From != nil)
		b.PutBool(op.To != nil)
	case OpAttrSet:
		b.PutByte(op.Attr)
		b.PutUvarint(op.Num)
	case OpSetBounds:
		b.PutBytes(op.Low)
		b.PutBytes(op.High)
		b.PutBool(op.Low != nil)
		b.PutBool(op.High != nil)
	}
}

// DecodeOp reads an op encoded by EncodeOp.
func DecodeOp(r *wire.Reader) (*Op, error) {
	k, err := r.Byte()
	if err != nil {
		return nil, err
	}
	oid, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	op := &Op{Kind: OpKind(k), OID: OID(oid)}
	switch op.Kind {
	case OpPut:
		op.Value, err = DecodeValue(r)
		return op, err
	case OpDelete:
		return op, nil
	case OpListAdd:
		if op.Cell.Key, err = r.BytesCopy(); err != nil {
			return nil, err
		}
		if op.Cell.Value, err = r.BytesCopy(); err != nil {
			return nil, err
		}
		return op, nil
	case OpListDelRange:
		from, err := r.BytesCopy()
		if err != nil {
			return nil, err
		}
		to, err := r.BytesCopy()
		if err != nil {
			return nil, err
		}
		hasFrom, err := r.Bool()
		if err != nil {
			return nil, err
		}
		hasTo, err := r.Bool()
		if err != nil {
			return nil, err
		}
		if hasFrom {
			op.From = from
		}
		if hasTo {
			op.To = to
		}
		return op, nil
	case OpAttrSet:
		if op.Attr, err = r.Byte(); err != nil {
			return nil, err
		}
		if op.Num, err = r.Uvarint(); err != nil {
			return nil, err
		}
		return op, nil
	case OpSetBounds:
		low, err := r.BytesCopy()
		if err != nil {
			return nil, err
		}
		high, err := r.BytesCopy()
		if err != nil {
			return nil, err
		}
		hasLow, err := r.Bool()
		if err != nil {
			return nil, err
		}
		hasHigh, err := r.Bool()
		if err != nil {
			return nil, err
		}
		if hasLow {
			op.Low = low
		}
		if hasHigh {
			op.High = high
		}
		return op, nil
	default:
		return nil, fmt.Errorf("%w: op kind %d", ErrBadRequest, k)
	}
}

// Timestamp re-exports the clock timestamp for convenience of kv users.
type Timestamp = clock.Timestamp
