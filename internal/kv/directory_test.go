package kv

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"yesquel/internal/wire"
)

func sampleDirectory() *Directory {
	return &Directory{
		Version: 7,
		Routes:  []uint32{0, 1, 2, 1},
		Groups: [][]string{
			{"a:1", "a:2"},
			{"b:1"},
			{"c:1", "c:2", "c:3"},
		},
	}
}

func TestDirectoryRoundTrip(t *testing.T) {
	d := sampleDirectory()
	b := wire.NewBuffer(64)
	EncodeDirectory(b, d)
	got, err := DecodeDirectory(wire.NewReader(b.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d)
	}
}

func TestDirectoryDecodeTrailingBytesLeftUnread(t *testing.T) {
	// Messages may append optional fields after an embedded directory;
	// the decoder must stop at the directory's end.
	d := sampleDirectory()
	b := wire.NewBuffer(64)
	EncodeDirectory(b, d)
	b.PutUint64(0xdeadbeef)
	r := wire.NewReader(b.Bytes())
	if _, err := DecodeDirectory(r); err != nil {
		t.Fatalf("decode: %v", err)
	}
	tail, err := r.Uint64()
	if err != nil || tail != 0xdeadbeef {
		t.Fatalf("trailing field consumed by directory decoder: %v %x", err, tail)
	}
}

func TestDirectoryDecodeRejectsBadShapes(t *testing.T) {
	encode := func(d *Directory) []byte {
		b := wire.NewBuffer(64)
		EncodeDirectory(b, d)
		return b.Bytes()
	}
	cases := []struct {
		name string
		p    []byte
	}{
		{"zero routes", encode(&Directory{Version: 1, Routes: nil, Groups: [][]string{{"a"}}})},
		{"route names missing group", encode(&Directory{Version: 1, Routes: []uint32{5}, Groups: [][]string{{"a"}}})},
		{"truncated", encode(sampleDirectory())[:3]},
	}
	for _, tc := range cases {
		if _, err := DecodeDirectory(wire.NewReader(tc.p)); err == nil {
			t.Errorf("%s: decode accepted malformed directory", tc.name)
		}
	}
}

func TestDirectoryRouting(t *testing.T) {
	d := sampleDirectory() // 4 routes
	oid := MakeOID(6, 99)  // slot 6 → route 6%4=2 → group 2
	if r := d.RouteFor(oid); r != 2 {
		t.Fatalf("RouteFor = %d, want 2", r)
	}
	if g := d.GroupFor(oid); g != 2 {
		t.Fatalf("GroupFor = %d, want 2", g)
	}
}

func TestDirectoryClone(t *testing.T) {
	d := sampleDirectory()
	c := d.Clone()
	if !reflect.DeepEqual(c, d) {
		t.Fatalf("clone differs: %+v vs %+v", c, d)
	}
	c.Routes[0] = 9
	c.Groups[0][0] = "mutated"
	if d.Routes[0] == 9 || d.Groups[0][0] == "mutated" {
		t.Fatal("Clone shares storage with the original")
	}
	if (*Directory)(nil).Clone() != nil {
		t.Fatal("nil Clone not nil")
	}
}

func TestDirectoryRespRoundTrip(t *testing.T) {
	m := &DirectoryResp{Dir: sampleDirectory(), Clock: 42}
	got, err := DecodeDirectoryResp(m.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestWrongSlotErrorRoundTrip(t *testing.T) {
	ws := &WrongSlotError{Version: 3, Route: 1, Group: 2, Members: []string{"x:1", "y:2"}}
	if !errors.Is(ws, ErrWrongSlot) {
		t.Fatal("WrongSlotError does not unwrap to ErrWrongSlot")
	}
	if code := WireErrorCode(ws); code != CodeWrongSlot {
		t.Fatalf("WireErrorCode = %d, want %d", code, CodeWrongSlot)
	}

	got, ok := ParseWrongSlot(ws.Error())
	if !ok || !reflect.DeepEqual(got, ws) {
		t.Fatalf("ParseWrongSlot(%q) = %+v, %v", ws.Error(), got, ok)
	}

	// Wrapping prefixes — including a clock mark, which always leads the
	// message — must not disturb the tail-anchored parse.
	marked := MarkClock(fmt.Errorf("handler: %w", ws), 77)
	got, ok = ParseWrongSlot(marked.Error())
	if !ok || !reflect.DeepEqual(got, ws) {
		t.Fatalf("ParseWrongSlot(marked) = %+v, %v", got, ok)
	}

	// Empty member list round-trips as empty, not [""].
	bare := &WrongSlotError{Version: 1, Route: 0, Group: 0}
	got, ok = ParseWrongSlot(bare.Error())
	if !ok || len(got.Members) != 0 {
		t.Fatalf("ParseWrongSlot(bare) = %+v, %v", got, ok)
	}

	if _, ok := ParseWrongSlot("kv: wrong epoch: epoch=3 members=a"); ok {
		t.Fatal("ParseWrongSlot accepted a wrong-epoch message")
	}
}
