package kv

import (
	"fmt"

	"yesquel/internal/wire"
)

// RPC method names served by a storage server.
const (
	MethodRead     = "kv.read"
	MethodReadPart = "kv.readpart"
	// MethodReadBatch serves N object reads — each a whole-object read
	// or a ReadPart window — at one snapshot timestamp in a single RPC.
	// A server that predates the method answers rpc.ErrUnknownMethod;
	// clients fall back to per-object MethodRead/MethodReadPart.
	MethodReadBatch  = "kv.readbatch"
	MethodPrepare    = "kv.prepare"
	MethodCommit     = "kv.commit"
	MethodAbort      = "kv.abort"
	MethodFastCommit = "kv.fastcommit"
	MethodPing       = "kv.ping"
	// MethodMirror carries a committed transaction from a primary to
	// its backup replica (see kvserver.Server.AttachBackup).
	MethodMirror = "kv.mirror"
	// MethodMirrorBatch carries a contiguous run of stream records from
	// a primary to its backup in one round trip — the group-commit
	// replication path. The backup applies the records in order (the
	// per-record sequence check still catches gaps and divergence
	// inside a batch) and one acknowledgment covers, and extends the
	// lease for, the whole batch.
	MethodMirrorBatch = "kv.mirrorbatch"
	// MethodSync streams missed commits from a primary's replication
	// log to a restarted or fresh backup (see kvserver.Server.SyncFrom).
	MethodSync = "kv.sync"
	// MethodSnap transfers a state snapshot, in chunks, to a backup
	// whose requested sync position predates the server's truncated
	// replication log (SyncResp.TooOld). The backup installs the
	// snapshot and resumes a normal log-tail sync from the sequence
	// number the snapshot covers.
	MethodSnap = "kv.snap"
	// MethodLease renews the primary's lease on its backup: the backup
	// promises not to accept a promotion (epoch bump) until the granted
	// lease expires, so a partitioned stale primary provably stops
	// serving before a new epoch starts acknowledging writes.
	MethodLease = "kv.lease"
	// MethodDirectory returns the server's current slot directory (the
	// versioned slot→group map; see Directory). Clients call it when an
	// ack's DirVersion piggyback or an ErrWrongSlot redirect reveals a
	// newer version than the one they hold. A server that predates the
	// method answers rpc.ErrUnknownMethod; such clusters have no
	// directory and clients keep modulo routing.
	MethodDirectory = "kv.directory"
)

// Replication record kinds. The replication stream (mirror RPCs, the
// replication log served by MethodSync, and the write-ahead log) is a
// totally ordered sequence of these records; replicas that apply the
// same prefix hold the same multi-version state *and* the same
// prepared-transaction table, so a promoted backup can finish or roll
// back in-flight two-phase transactions instead of stranding them.
const (
	// RecCommit is a whole committed transaction: ops applied at TS.
	// Single-participant fast commits and commits whose prepare predates
	// replication use it.
	RecCommit uint8 = 0
	// RecPrepare stages a two-phase transaction's ops and write locks
	// (phase one). TS is the participant's proposed commit timestamp.
	RecPrepare uint8 = 1
	// RecDecide resolves a previously replicated prepare (phase two):
	// Commit says whether to apply (at TS) or discard the staged ops.
	RecDecide uint8 = 2
	// RecEpoch installs a new configuration epoch and membership. The
	// record's Epoch field carries the NEW epoch (all other record kinds
	// are stamped with the epoch in effect when they were emitted), and
	// Members lists the replica addresses of the new configuration,
	// acting primary first. Promotion and group re-formation are epoch
	// bumps flowing through the same totally ordered stream as data.
	RecEpoch uint8 = 3
)

// maxMembers bounds a decoded membership list (sanity, not policy).
const maxMembers = 64

// ReplRecord is one record in a primary's replication stream.
type ReplRecord struct {
	Kind    uint8
	Epoch   uint64 // group epoch when emitted; for RecEpoch, the new epoch
	TxID    uint64
	TS      Timestamp // commit timestamp; for RecPrepare, the proposed timestamp
	Commit  bool      // RecDecide only: commit (true) or abort (false)
	Ops     []*Op     // RecCommit / RecPrepare payload; nil for RecDecide
	Members []string  // RecEpoch only: new membership, acting primary first
}

// EncodeReplRecord appends rec's canonical serialization — shared by
// mirror RPCs, sync batches, and the write-ahead log, so the three
// stay byte-for-byte interchangeable.
func EncodeReplRecord(b *wire.Buffer, rec *ReplRecord) {
	b.PutByte(rec.Kind)
	b.PutUvarint(rec.Epoch)
	b.PutUint64(rec.TxID)
	b.PutUint64(uint64(rec.TS))
	b.PutBool(rec.Commit)
	encodeOps(b, rec.Ops)
	encodeMembers(b, rec.Members)
}

// DecodeReplRecord is the inverse of EncodeReplRecord.
func DecodeReplRecord(r *wire.Reader) (ReplRecord, error) {
	var rec ReplRecord
	var err error
	if rec.Kind, err = r.Byte(); err != nil {
		return rec, err
	}
	if rec.Kind > RecEpoch {
		return rec, fmt.Errorf("%w: replication record kind %d", ErrBadRequest, rec.Kind)
	}
	if rec.Epoch, err = r.Uvarint(); err != nil {
		return rec, err
	}
	if rec.TxID, err = r.Uint64(); err != nil {
		return rec, err
	}
	ts, err := r.Uint64()
	if err != nil {
		return rec, err
	}
	rec.TS = Timestamp(ts)
	if rec.Commit, err = r.Bool(); err != nil {
		return rec, err
	}
	if rec.Ops, err = decodeOps(r); err != nil {
		return rec, err
	}
	if rec.Members, err = decodeMembers(r); err != nil {
		return rec, err
	}
	return rec, nil
}

func encodeMembers(b *wire.Buffer, members []string) {
	b.PutUvarint(uint64(len(members)))
	for _, m := range members {
		b.PutString(m)
	}
}

func decodeMembers(r *wire.Reader) ([]string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > maxMembers {
		return nil, fmt.Errorf("%w: membership of %d replicas", ErrBadRequest, n)
	}
	members := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		m, err := r.String()
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	return members, nil
}

// LeaseReq renews the primary's lease on its backup. Epoch is the
// primary's current group epoch; a backup that has moved to a later
// epoch rejects the renewal with ErrWrongEpoch, which is how a deposed
// primary learns it was superseded. Watermark piggybacks the primary's
// durability watermark (every record below it is quorum-acked and
// fsynced), so a backup's follower-read frontier keeps advancing even
// through write-idle periods when no mirror batches flow.
type LeaseReq struct {
	Epoch     uint64
	Watermark uint64
}

func (m *LeaseReq) Encode() []byte {
	b := wire.NewBuffer(12)
	b.PutUvarint(m.Epoch)
	b.PutUvarint(m.Watermark)
	return b.Bytes()
}

func DecodeLeaseReq(p []byte) (*LeaseReq, error) {
	r := wire.NewReader(p)
	epoch, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	m := &LeaseReq{Epoch: epoch}
	if r.Remaining() > 0 {
		if m.Watermark, err = r.Uvarint(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// MirrorReq replicates one stream record to a backup. Seq is the
// record's position in the primary's replication stream; backups apply
// records in strict sequence order, so a gap means the backup missed
// records and must resync before mirroring can resume.
type MirrorReq struct {
	Seq uint64
	Rec ReplRecord
}

func (m *MirrorReq) Encode() []byte {
	b := wire.NewBuffer(64)
	b.PutUvarint(m.Seq)
	EncodeReplRecord(b, &m.Rec)
	return b.Bytes()
}

func DecodeMirrorReq(p []byte) (*MirrorReq, error) {
	r := wire.NewReader(p)
	seq, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	rec, err := DecodeReplRecord(r)
	if err != nil {
		return nil, err
	}
	return &MirrorReq{Seq: seq, Rec: rec}, nil
}

// MirrorBatchReq replicates a contiguous run of stream records to a
// backup in one RPC. Records are in strict sequence order; the backup
// applies them one by one under a single stream-lock acquisition, so a
// gap or divergence inside the batch fails exactly where a per-record
// mirror call would have. Watermark piggybacks the primary's durability
// watermark as of the batch's departure (every record below it is
// quorum-acked and fsynced): the backup advances its follower-read
// frontier with it, at zero extra round trips.
type MirrorBatchReq struct {
	Recs      []SyncRec
	Watermark uint64
}

func (m *MirrorBatchReq) Encode() []byte {
	b := wire.NewBuffer(64 * (1 + len(m.Recs)))
	b.PutUvarint(uint64(len(m.Recs)))
	for i := range m.Recs {
		b.PutUvarint(m.Recs[i].Seq)
		EncodeReplRecord(b, &m.Recs[i].Rec)
	}
	b.PutUvarint(m.Watermark)
	return b.Bytes()
}

func DecodeMirrorBatchReq(p []byte) (*MirrorBatchReq, error) {
	r := wire.NewReader(p)
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	// Each record costs at least two bytes on the wire, so a count the
	// remaining payload cannot possibly hold is garbage — rejected
	// BEFORE the allocation it would otherwise size.
	if n > uint64(len(p))/2 {
		return nil, fmt.Errorf("%w: mirror batch of %d records in %d bytes", ErrBadRequest, n, len(p))
	}
	m := &MirrorBatchReq{Recs: make([]SyncRec, 0, n)}
	for i := uint64(0); i < n; i++ {
		var rec SyncRec
		if rec.Seq, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if rec.Rec, err = DecodeReplRecord(r); err != nil {
			return nil, err
		}
		m.Recs = append(m.Recs, rec)
	}
	if r.Remaining() > 0 {
		if m.Watermark, err = r.Uvarint(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// SyncReq asks a primary for its replication log starting at sequence
// number From, at most Max records per response (0 = server default).
// Epoch is the epoch the requester's own stream had installed at its
// head (its stream epoch, not an out-of-band adopted one): a source
// whose stream carried a different epoch at position From rejects the
// sync with ErrDiverged — the requester holds records the source's
// stream re-stamped, and replaying the tail onto them would splice two
// histories.
type SyncReq struct {
	From  uint64
	Max   uint32
	Epoch uint64
}

func (m *SyncReq) Encode() []byte {
	b := wire.NewBuffer(24)
	b.PutUvarint(m.From)
	b.PutUint32(m.Max)
	b.PutUvarint(m.Epoch)
	return b.Bytes()
}

func DecodeSyncReq(p []byte) (*SyncReq, error) {
	r := wire.NewReader(p)
	m := &SyncReq{}
	var err error
	if m.From, err = r.Uvarint(); err != nil {
		return nil, err
	}
	if m.Max, err = r.Uint32(); err != nil {
		return nil, err
	}
	if m.Epoch, err = r.Uvarint(); err != nil {
		return nil, err
	}
	return m, nil
}

// SyncRec is one replicated stream record in a sync response.
type SyncRec struct {
	Seq uint64
	Rec ReplRecord
}

// SyncResp carries a slice of the primary's replication log. Head is
// the primary's next sequence number at response time, so the caller
// knows how far behind it still is. TooOld reports that the requested
// position predates LogBase — the server truncated its log below it at
// a snapshot checkpoint — so no records can answer the request: the
// caller must install a state snapshot (MethodSnap) and resume the
// log-tail sync from the sequence number the snapshot covers.
type SyncResp struct {
	Records []SyncRec
	Head    uint64
	Clock   Timestamp
	TooOld  bool
	LogBase uint64 // oldest sequence number still in the server's log
}

func (m *SyncResp) Encode() []byte {
	b := wire.NewBuffer(64)
	b.PutUvarint(uint64(len(m.Records)))
	for i := range m.Records {
		rec := &m.Records[i]
		b.PutUvarint(rec.Seq)
		EncodeReplRecord(b, &rec.Rec)
	}
	b.PutUvarint(m.Head)
	b.PutUint64(uint64(m.Clock))
	b.PutBool(m.TooOld)
	b.PutUvarint(m.LogBase)
	return b.Bytes()
}

func DecodeSyncResp(p []byte) (*SyncResp, error) {
	r := wire.NewReader(p)
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	// Same allocation guard as DecodeMirrorBatchReq: a record count the
	// payload cannot hold must not size an allocation.
	if n > uint64(len(p))/2 {
		return nil, ErrBadRequest
	}
	m := &SyncResp{Records: make([]SyncRec, 0, n)}
	for i := uint64(0); i < n; i++ {
		var rec SyncRec
		if rec.Seq, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if rec.Rec, err = DecodeReplRecord(r); err != nil {
			return nil, err
		}
		m.Records = append(m.Records, rec)
	}
	if m.Head, err = r.Uvarint(); err != nil {
		return nil, err
	}
	ck, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	m.Clock = Timestamp(ck)
	if m.TooOld, err = r.Bool(); err != nil {
		return nil, err
	}
	if m.LogBase, err = r.Uvarint(); err != nil {
		return nil, err
	}
	return m, nil
}

// SnapReq asks for one chunk of a state snapshot. ID 0 begins a new
// transfer: the server captures a fresh snapshot at its current stream
// head, assigns a session id, and answers with chunk 0; the caller then
// requests the remaining chunks carrying the assigned ID. Chunks of one
// session are slices of a single consistent snapshot — mixing IDs would
// splice two different states, so the server rejects unknown sessions
// instead of guessing.
type SnapReq struct {
	ID    uint64
	Chunk uint32
}

func (m *SnapReq) Encode() []byte {
	b := wire.NewBuffer(16)
	b.PutUvarint(m.ID)
	b.PutUint32(m.Chunk)
	return b.Bytes()
}

func DecodeSnapReq(p []byte) (*SnapReq, error) {
	r := wire.NewReader(p)
	m := &SnapReq{}
	var err error
	if m.ID, err = r.Uvarint(); err != nil {
		return nil, err
	}
	if m.Chunk, err = r.Uint32(); err != nil {
		return nil, err
	}
	return m, nil
}

// SnapResp carries one chunk of a state snapshot. Seq is the stream
// sequence number the snapshot covers (the installer's log-tail sync
// resumes there); Chunks is the total count, so the caller knows when
// the transfer is complete. Data is an opaque slice of the snapshot's
// canonical encoding — the storage layer owns the format.
type SnapResp struct {
	ID     uint64
	Seq    uint64
	Chunk  uint32
	Chunks uint32
	Data   []byte
	Clock  Timestamp
}

func (m *SnapResp) Encode() []byte {
	b := wire.NewBuffer(48 + len(m.Data))
	b.PutUvarint(m.ID)
	b.PutUvarint(m.Seq)
	b.PutUint32(m.Chunk)
	b.PutUint32(m.Chunks)
	b.PutBytes(m.Data)
	b.PutUint64(uint64(m.Clock))
	return b.Bytes()
}

func DecodeSnapResp(p []byte) (*SnapResp, error) {
	r := wire.NewReader(p)
	m := &SnapResp{}
	var err error
	if m.ID, err = r.Uvarint(); err != nil {
		return nil, err
	}
	if m.Seq, err = r.Uvarint(); err != nil {
		return nil, err
	}
	if m.Chunk, err = r.Uint32(); err != nil {
		return nil, err
	}
	if m.Chunks, err = r.Uint32(); err != nil {
		return nil, err
	}
	if m.Data, err = r.BytesCopy(); err != nil {
		return nil, err
	}
	ck, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	m.Clock = Timestamp(ck)
	return m, nil
}

// ReadReq asks for the newest version of OID visible at Snap. Epoch is
// the replication-group epoch the client believes current (0 = epoch-
// unaware); the server rejects a stale epoch with ErrWrongEpoch so the
// client adopts the new membership before retrying. Durable asks the
// server to answer only from quorum-durable state: a primary whose
// durability frontier has not yet passed Snap blocks (bounded) until it
// does, so the response can never show a write a failover later erases.
type ReadReq struct {
	OID     OID
	Snap    Timestamp
	Epoch   uint64
	Durable bool
}

// ReadResp carries the result of a read. Clock is the server's HLC
// reading, merged into the client clock (every message carries a
// timestamp; see internal/clock).
type ReadResp struct {
	Found   bool
	Version Timestamp
	Value   *Value
	Clock   Timestamp
	// Frontier is the serving replica's own durability frontier, the
	// same value Ack.Frontier piggybacks. A follower-reading client
	// snapshots its next transactions at the highest frontier a backup
	// has REPORTED rather than the primary-fresh one, so steady-state
	// reads never arrive ahead of the backup's watermark copy.
	// Trailing optional field: zero when absent.
	Frontier Timestamp
}

// ReadPartReq asks for a window of a supervalue: the cells with keys in
// [floor(From), To), at most Max cells (0 = unlimited), where floor(From)
// is the greatest cell key <= From. The floor semantics serve both leaf
// point reads (the cell equal to the key, if any) and inner-node routing
// (the child pointer covering the key) without shipping the whole node.
// A bounds/attrs-only header always comes back, plus the node's total
// cell count, so fence checks and split heuristics work on the window.
type ReadPartReq struct {
	OID     OID
	Snap    Timestamp
	From    []byte
	To      []byte // nil = unbounded
	Max     uint32 // 0 = unlimited
	Epoch   uint64 // group epoch the client believes current (0 = unaware)
	Durable bool   // answer only from quorum-durable state (see ReadReq)
}

// ReadPartResp carries the windowed value and the total cell count of
// the full node.
type ReadPartResp struct {
	Found   bool
	Version Timestamp
	Value   *Value // partial supervalue (or full plain value)
	Total   uint32
	Clock   Timestamp
	// Frontier is the serving replica's durability frontier (see
	// ReadResp.Frontier). Trailing optional field: zero when absent.
	Frontier Timestamp
}

func (m *ReadPartReq) Encode() []byte {
	b := wire.NewBuffer(32 + len(m.From) + len(m.To))
	b.PutUint64(uint64(m.OID))
	b.PutUint64(uint64(m.Snap))
	b.PutBytes(m.From)
	b.PutBytes(m.To)
	b.PutBool(m.To != nil)
	b.PutUint32(m.Max)
	b.PutUvarint(m.Epoch)
	b.PutBool(m.Durable)
	return b.Bytes()
}

func DecodeReadPartReq(p []byte) (*ReadPartReq, error) {
	r := wire.NewReader(p)
	m := &ReadPartReq{}
	v, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	m.OID = OID(v)
	if v, err = r.Uint64(); err != nil {
		return nil, err
	}
	m.Snap = Timestamp(v)
	if m.From, err = r.BytesCopy(); err != nil {
		return nil, err
	}
	to, err := r.BytesCopy()
	if err != nil {
		return nil, err
	}
	hasTo, err := r.Bool()
	if err != nil {
		return nil, err
	}
	if hasTo {
		m.To = to
	}
	if m.Max, err = r.Uint32(); err != nil {
		return nil, err
	}
	if m.Epoch, err = r.Uvarint(); err != nil {
		return nil, err
	}
	if r.Remaining() > 0 {
		if m.Durable, err = r.Bool(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *ReadPartResp) Encode() []byte {
	b := wire.NewBuffer(48 + m.Value.EncodedSize())
	b.PutBool(m.Found)
	b.PutUint64(uint64(m.Version))
	EncodeValue(b, m.Value)
	b.PutUint32(m.Total)
	b.PutUint64(uint64(m.Clock))
	b.PutUint64(uint64(m.Frontier))
	return b.Bytes()
}

func DecodeReadPartResp(p []byte) (*ReadPartResp, error) {
	r := wire.NewReader(p)
	m := &ReadPartResp{}
	var err error
	if m.Found, err = r.Bool(); err != nil {
		return nil, err
	}
	ver, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	m.Version = Timestamp(ver)
	if m.Value, err = DecodeValue(r); err != nil {
		return nil, err
	}
	if m.Total, err = r.Uint32(); err != nil {
		return nil, err
	}
	ck, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	m.Clock = Timestamp(ck)
	if r.Remaining() > 0 {
		f, err := r.Uint64()
		if err != nil {
			return nil, err
		}
		m.Frontier = Timestamp(f)
	}
	return m, nil
}

// ReadBatchItem is one read inside a ReadBatchReq: a whole-object read
// of OID, or — when Part is set — a windowed read of the cells in
// [floor(From), To) capped at Max (ReadPartReq documents the floor
// semantics). From/To/Max are ignored when Part is false.
type ReadBatchItem struct {
	OID  OID
	Part bool
	From []byte
	To   []byte // nil = unbounded
	Max  uint32 // 0 = unlimited
}

// ReadBatchReq asks for N objects at one snapshot timestamp in a
// single RPC. Epoch and Durable mean exactly what they mean on ReadReq
// and are checked ONCE for the whole batch: either every item may be
// served under the follower-read rules, or the batch is rejected — a
// batch never mixes replicas or admission decisions mid-flight.
type ReadBatchReq struct {
	Snap    Timestamp
	Epoch   uint64 // group epoch the client believes current (0 = unaware)
	Durable bool   // answer only from quorum-durable state (see ReadReq)
	Items   []ReadBatchItem
}

// ReadBatchResult is one per-item answer, positionally matched to the
// request's Items. Total carries the full-node cell count for windowed
// items (see ReadPartResp); it is zero for whole-object reads.
type ReadBatchResult struct {
	Found   bool
	Version Timestamp
	Value   *Value
	Total   uint32
}

// ReadBatchResp carries the batch's results plus the same Clock and
// Frontier piggybacks a ReadResp carries, so batches advance the
// client's clock and follower-read frontier exactly like single reads.
type ReadBatchResp struct {
	Results []ReadBatchResult
	Clock   Timestamp
	// Frontier is the serving replica's durability frontier (see
	// ReadResp.Frontier). Trailing optional field: zero when absent.
	Frontier Timestamp
}

func (m *ReadBatchReq) Encode() []byte {
	b := wire.NewBuffer(32 + 24*len(m.Items))
	b.PutUint64(uint64(m.Snap))
	b.PutUvarint(m.Epoch)
	b.PutBool(m.Durable)
	b.PutUvarint(uint64(len(m.Items)))
	for i := range m.Items {
		it := &m.Items[i]
		b.PutUint64(uint64(it.OID))
		b.PutBool(it.Part)
		b.PutBytes(it.From)
		b.PutBytes(it.To)
		b.PutBool(it.To != nil)
		b.PutUint32(it.Max)
	}
	return b.Bytes()
}

func DecodeReadBatchReq(p []byte) (*ReadBatchReq, error) {
	r := wire.NewReader(p)
	m := &ReadBatchReq{}
	snap, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	m.Snap = Timestamp(snap)
	if m.Epoch, err = r.Uvarint(); err != nil {
		return nil, err
	}
	if m.Durable, err = r.Bool(); err != nil {
		return nil, err
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	// Each item costs at least two bytes on the wire, so a count the
	// remaining payload cannot possibly hold is garbage — rejected
	// BEFORE the allocation it would otherwise size.
	if n > uint64(len(p))/2 {
		return nil, fmt.Errorf("%w: read batch of %d items in %d bytes", ErrBadRequest, n, len(p))
	}
	m.Items = make([]ReadBatchItem, 0, n)
	for i := uint64(0); i < n; i++ {
		var it ReadBatchItem
		oid, err := r.Uint64()
		if err != nil {
			return nil, err
		}
		it.OID = OID(oid)
		if it.Part, err = r.Bool(); err != nil {
			return nil, err
		}
		if it.From, err = r.BytesCopy(); err != nil {
			return nil, err
		}
		to, err := r.BytesCopy()
		if err != nil {
			return nil, err
		}
		hasTo, err := r.Bool()
		if err != nil {
			return nil, err
		}
		if hasTo {
			it.To = to
		}
		if it.Max, err = r.Uint32(); err != nil {
			return nil, err
		}
		m.Items = append(m.Items, it)
	}
	return m, nil
}

func (m *ReadBatchResp) Encode() []byte {
	size := 32
	for i := range m.Results {
		size += 16 + m.Results[i].Value.EncodedSize()
	}
	b := wire.NewBuffer(size)
	b.PutUvarint(uint64(len(m.Results)))
	for i := range m.Results {
		res := &m.Results[i]
		b.PutBool(res.Found)
		b.PutUint64(uint64(res.Version))
		EncodeValue(b, res.Value)
		b.PutUint32(res.Total)
	}
	b.PutUint64(uint64(m.Clock))
	b.PutUint64(uint64(m.Frontier))
	return b.Bytes()
}

func DecodeReadBatchResp(p []byte) (*ReadBatchResp, error) {
	r := wire.NewReader(p)
	m := &ReadBatchResp{}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p))/2 {
		return nil, fmt.Errorf("%w: read batch of %d results in %d bytes", ErrBadRequest, n, len(p))
	}
	m.Results = make([]ReadBatchResult, 0, n)
	for i := uint64(0); i < n; i++ {
		var res ReadBatchResult
		if res.Found, err = r.Bool(); err != nil {
			return nil, err
		}
		ver, err := r.Uint64()
		if err != nil {
			return nil, err
		}
		res.Version = Timestamp(ver)
		if res.Value, err = DecodeValue(r); err != nil {
			return nil, err
		}
		if res.Total, err = r.Uint32(); err != nil {
			return nil, err
		}
		m.Results = append(m.Results, res)
	}
	ck, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	m.Clock = Timestamp(ck)
	if r.Remaining() > 0 {
		f, err := r.Uint64()
		if err != nil {
			return nil, err
		}
		m.Frontier = Timestamp(f)
	}
	return m, nil
}

// WindowCells returns the cells of v with keys in [floor(from), to),
// capped at max (0 = unlimited), plus the index where the window
// starts. The returned slice aliases v's cells; callers treat it as
// immutable.
func (v *Value) WindowCells(from, to []byte, max uint32) []Cell {
	start := 0
	if from != nil {
		i, found := v.cellIndex(from)
		switch {
		case found:
			start = i
		case i > 0:
			start = i - 1 // floor: include the predecessor cell
		default:
			start = 0
		}
	}
	end := len(v.Cells)
	if to != nil {
		end, _ = v.cellIndex(to)
	}
	if end < start {
		end = start
	}
	if max > 0 && end-start > int(max) {
		end = start + int(max)
	}
	return v.Cells[start:end]
}

// PrepareReq is phase one of two-phase commit: validate write-write
// conflicts and lock the written objects.
type PrepareReq struct {
	TxID  uint64
	Start Timestamp
	Ops   []*Op
	Epoch uint64 // group epoch the client believes current (0 = unaware)
}

// PrepareResp reports the vote. When OK, Proposed is this participant's
// lower bound for the commit timestamp.
type PrepareResp struct {
	OK       bool
	Proposed Timestamp
	Clock    Timestamp
}

// CommitReq is phase two: make the transaction's writes visible at
// CommitTS and release its locks.
type CommitReq struct {
	TxID     uint64
	CommitTS Timestamp
	Epoch    uint64 // group epoch the client believes current (0 = unaware)
}

// AbortReq discards the transaction's locks and staged writes.
type AbortReq struct {
	TxID  uint64
	Epoch uint64 // group epoch the client believes current (0 = unaware)
}

// FastCommitReq commits a single-participant transaction in one round
// trip: validate, choose a commit timestamp, and apply atomically.
type FastCommitReq struct {
	TxID  uint64
	Start Timestamp
	Ops   []*Op
	Epoch uint64 // group epoch the client believes current (0 = unaware)
}

// FastCommitResp reports the outcome of a fast commit. Frontier
// piggybacks the primary's durability frontier like Ack.Frontier does:
// a client that only ever writes through fast commits still keeps its
// follower-read bound fresh at per-commit granularity (trailing
// optional field, zero when absent).
type FastCommitResp struct {
	OK       bool
	CommitTS Timestamp
	Clock    Timestamp
	Frontier Timestamp
}

// Ack is the generic response for commit/abort/ping/mirror/lease. It
// piggybacks the responding member's replication-group epoch and
// membership (acting primary first; empty on epoch-unaware servers), so
// a fresh client learns the live configuration from its opening pings
// and every later ack keeps it current without extra round trips.
// Frontier piggybacks the responder's durability frontier — the highest
// commit timestamp at which a snapshot read is quorum-durable — so
// clients learn where follower reads are safe from ordinary traffic
// (including the idle-client heartbeat ping). DirVersion piggybacks the
// responder's slot-directory version (0 = no directory installed): a
// client holding an older version fetches the full map with
// MethodDirectory. Both are trailing optional fields old peers ignore.
type Ack struct {
	Clock      Timestamp
	Epoch      uint64
	Members    []string
	Frontier   Timestamp
	DirVersion uint64
}

func (m *ReadReq) Encode() []byte {
	b := wire.NewBuffer(32)
	b.PutUint64(uint64(m.OID))
	b.PutUint64(uint64(m.Snap))
	b.PutUvarint(m.Epoch)
	b.PutBool(m.Durable)
	return b.Bytes()
}

func DecodeReadReq(p []byte) (*ReadReq, error) {
	r := wire.NewReader(p)
	oid, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	snap, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	epoch, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	m := &ReadReq{OID: OID(oid), Snap: Timestamp(snap), Epoch: epoch}
	if r.Remaining() > 0 {
		if m.Durable, err = r.Bool(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *ReadResp) Encode() []byte {
	b := wire.NewBuffer(40 + m.Value.EncodedSize())
	b.PutBool(m.Found)
	b.PutUint64(uint64(m.Version))
	EncodeValue(b, m.Value)
	b.PutUint64(uint64(m.Clock))
	b.PutUint64(uint64(m.Frontier))
	return b.Bytes()
}

func DecodeReadResp(p []byte) (*ReadResp, error) {
	r := wire.NewReader(p)
	m := &ReadResp{}
	var err error
	if m.Found, err = r.Bool(); err != nil {
		return nil, err
	}
	ver, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	m.Version = Timestamp(ver)
	if m.Value, err = DecodeValue(r); err != nil {
		return nil, err
	}
	ck, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	m.Clock = Timestamp(ck)
	if r.Remaining() > 0 {
		f, err := r.Uint64()
		if err != nil {
			return nil, err
		}
		m.Frontier = Timestamp(f)
	}
	return m, nil
}

func encodeOps(b *wire.Buffer, ops []*Op) {
	b.PutUvarint(uint64(len(ops)))
	for _, op := range ops {
		EncodeOp(b, op)
	}
}

func decodeOps(r *wire.Reader) ([]*Op, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(wire.MaxFrameSize) {
		return nil, ErrBadRequest
	}
	ops := make([]*Op, 0, n)
	for i := uint64(0); i < n; i++ {
		op, err := DecodeOp(r)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

func (m *PrepareReq) Encode() []byte {
	b := wire.NewBuffer(64)
	b.PutUint64(m.TxID)
	b.PutUint64(uint64(m.Start))
	encodeOps(b, m.Ops)
	b.PutUvarint(m.Epoch)
	return b.Bytes()
}

func DecodePrepareReq(p []byte) (*PrepareReq, error) {
	r := wire.NewReader(p)
	m := &PrepareReq{}
	v, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	m.TxID = v
	if v, err = r.Uint64(); err != nil {
		return nil, err
	}
	m.Start = Timestamp(v)
	if m.Ops, err = decodeOps(r); err != nil {
		return nil, err
	}
	if m.Epoch, err = r.Uvarint(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *PrepareResp) Encode() []byte {
	b := wire.NewBuffer(24)
	b.PutBool(m.OK)
	b.PutUint64(uint64(m.Proposed))
	b.PutUint64(uint64(m.Clock))
	return b.Bytes()
}

func DecodePrepareResp(p []byte) (*PrepareResp, error) {
	r := wire.NewReader(p)
	m := &PrepareResp{}
	var err error
	if m.OK, err = r.Bool(); err != nil {
		return nil, err
	}
	v, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	m.Proposed = Timestamp(v)
	if v, err = r.Uint64(); err != nil {
		return nil, err
	}
	m.Clock = Timestamp(v)
	return m, nil
}

func (m *CommitReq) Encode() []byte {
	b := wire.NewBuffer(28)
	b.PutUint64(m.TxID)
	b.PutUint64(uint64(m.CommitTS))
	b.PutUvarint(m.Epoch)
	return b.Bytes()
}

func DecodeCommitReq(p []byte) (*CommitReq, error) {
	r := wire.NewReader(p)
	tx, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	ts, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	epoch, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	return &CommitReq{TxID: tx, CommitTS: Timestamp(ts), Epoch: epoch}, nil
}

func (m *AbortReq) Encode() []byte {
	b := wire.NewBuffer(20)
	b.PutUint64(m.TxID)
	b.PutUvarint(m.Epoch)
	return b.Bytes()
}

func DecodeAbortReq(p []byte) (*AbortReq, error) {
	r := wire.NewReader(p)
	tx, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	epoch, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	return &AbortReq{TxID: tx, Epoch: epoch}, nil
}

func (m *FastCommitReq) Encode() []byte {
	b := wire.NewBuffer(64)
	b.PutUint64(m.TxID)
	b.PutUint64(uint64(m.Start))
	encodeOps(b, m.Ops)
	b.PutUvarint(m.Epoch)
	return b.Bytes()
}

func DecodeFastCommitReq(p []byte) (*FastCommitReq, error) {
	r := wire.NewReader(p)
	m := &FastCommitReq{}
	v, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	m.TxID = v
	if v, err = r.Uint64(); err != nil {
		return nil, err
	}
	m.Start = Timestamp(v)
	if m.Ops, err = decodeOps(r); err != nil {
		return nil, err
	}
	if m.Epoch, err = r.Uvarint(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *FastCommitResp) Encode() []byte {
	b := wire.NewBuffer(32)
	b.PutBool(m.OK)
	b.PutUint64(uint64(m.CommitTS))
	b.PutUint64(uint64(m.Clock))
	b.PutUint64(uint64(m.Frontier))
	return b.Bytes()
}

func DecodeFastCommitResp(p []byte) (*FastCommitResp, error) {
	r := wire.NewReader(p)
	m := &FastCommitResp{}
	var err error
	if m.OK, err = r.Bool(); err != nil {
		return nil, err
	}
	v, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	m.CommitTS = Timestamp(v)
	if v, err = r.Uint64(); err != nil {
		return nil, err
	}
	m.Clock = Timestamp(v)
	if r.Remaining() > 0 {
		if v, err = r.Uint64(); err != nil {
			return nil, err
		}
		m.Frontier = Timestamp(v)
	}
	return m, nil
}

func (m *Ack) Encode() []byte {
	b := wire.NewBuffer(48)
	b.PutUint64(uint64(m.Clock))
	b.PutUvarint(m.Epoch)
	encodeMembers(b, m.Members)
	b.PutUint64(uint64(m.Frontier))
	b.PutUvarint(m.DirVersion)
	return b.Bytes()
}

func DecodeAck(p []byte) (*Ack, error) {
	r := wire.NewReader(p)
	v, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	epoch, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	members, err := decodeMembers(r)
	if err != nil {
		return nil, err
	}
	m := &Ack{Clock: Timestamp(v), Epoch: epoch, Members: members}
	if r.Remaining() > 0 {
		fr, err := r.Uint64()
		if err != nil {
			return nil, err
		}
		m.Frontier = Timestamp(fr)
	}
	if r.Remaining() > 0 {
		if m.DirVersion, err = r.Uvarint(); err != nil {
			return nil, err
		}
	}
	return m, nil
}
