package kv

import (
	"errors"
	"fmt"
	"testing"
)

// TestWrongEpochErrorRoundTrip pins the contract ErrWrongEpoch relies
// on to cross the RPC boundary: the canonical Error string must parse
// back into the same epoch and membership, including when wrapped by
// intermediate layers (rpc.AppError flattens everything to text).
func TestWrongEpochErrorRoundTrip(t *testing.T) {
	cases := []*WrongEpochError{
		{Epoch: 1, Members: []string{"127.0.0.1:7000", "127.0.0.1:7001"}},
		{Epoch: 1 << 40, Members: []string{"10.0.0.1:9"}},
		{Epoch: 2, Members: nil},
		// A quorum group is not a pair: the membership list must
		// round-trip at rf >= 3 scale with the primary-first order intact.
		{Epoch: 7, Members: []string{"a:1", "b:2", "c:3", "d:4", "e:5"}},
	}
	for i, in := range cases {
		for _, msg := range []string{
			in.Error(),
			fmt.Sprintf("kvserver: rejecting stale request: %v", in),
			fmt.Sprintf("kv: replicating commit: record from deposed primary: %v", in),
		} {
			out, ok := ParseWrongEpoch(msg)
			if !ok {
				t.Fatalf("case %d: %q did not parse", i, msg)
			}
			if out.Epoch != in.Epoch {
				t.Fatalf("case %d: epoch got %d want %d", i, out.Epoch, in.Epoch)
			}
			if len(out.Members) != len(in.Members) {
				t.Fatalf("case %d: members got %v want %v", i, out.Members, in.Members)
			}
			for j := range in.Members {
				if out.Members[j] != in.Members[j] {
					t.Fatalf("case %d: members got %v want %v", i, out.Members, in.Members)
				}
			}
		}
	}
	if !errors.Is(&WrongEpochError{Epoch: 3}, ErrWrongEpoch) {
		t.Fatal("WrongEpochError does not unwrap to ErrWrongEpoch")
	}
	if _, ok := ParseWrongEpoch("kv: transaction conflict"); ok {
		t.Fatal("unrelated error parsed as wrong-epoch")
	}
	if _, ok := ParseWrongEpoch("kv: wrong epoch: epoch=xyz members=a"); ok {
		t.Fatal("malformed epoch parsed")
	}
}

// TestEpochStampedRequestsRoundTrip verifies every client request
// carries its epoch stamp through the wire codec, and that an
// epoch-unaware (zero) stamp survives too.
func TestEpochStampedRequestsRoundTrip(t *testing.T) {
	for _, epoch := range []uint64{0, 1, 1 << 50} {
		r, err := DecodeReadReq((&ReadReq{OID: MakeOID(1, 2), Snap: 7, Epoch: epoch}).Encode())
		if err != nil || r.Epoch != epoch {
			t.Fatalf("ReadReq epoch %d: %+v %v", epoch, r, err)
		}
		rp, err := DecodeReadPartReq((&ReadPartReq{OID: MakeOID(1, 2), Snap: 7, From: []byte("a"), Epoch: epoch}).Encode())
		if err != nil || rp.Epoch != epoch {
			t.Fatalf("ReadPartReq epoch %d: %+v %v", epoch, rp, err)
		}
		p, err := DecodePrepareReq((&PrepareReq{TxID: 9, Start: 3, Ops: sampleOps(), Epoch: epoch}).Encode())
		if err != nil || p.Epoch != epoch || len(p.Ops) != len(sampleOps()) {
			t.Fatalf("PrepareReq epoch %d: %+v %v", epoch, p, err)
		}
		c, err := DecodeCommitReq((&CommitReq{TxID: 9, CommitTS: 11, Epoch: epoch}).Encode())
		if err != nil || c.Epoch != epoch || c.TxID != 9 {
			t.Fatalf("CommitReq epoch %d: %+v %v", epoch, c, err)
		}
		a, err := DecodeAbortReq((&AbortReq{TxID: 9, Epoch: epoch}).Encode())
		if err != nil || a.Epoch != epoch {
			t.Fatalf("AbortReq epoch %d: %+v %v", epoch, a, err)
		}
		f, err := DecodeFastCommitReq((&FastCommitReq{TxID: 9, Start: 3, Ops: sampleOps()[:2], Epoch: epoch}).Encode())
		if err != nil || f.Epoch != epoch || len(f.Ops) != 2 {
			t.Fatalf("FastCommitReq epoch %d: %+v %v", epoch, f, err)
		}
		l, err := DecodeLeaseReq((&LeaseReq{Epoch: epoch}).Encode())
		if err != nil || l.Epoch != epoch {
			t.Fatalf("LeaseReq epoch %d: %+v %v", epoch, l, err)
		}
	}
}

// TestAckPiggybackRoundTrip: acks carry the responder's epoch and
// membership so clients keep their group view fresh.
func TestAckPiggybackRoundTrip(t *testing.T) {
	cases := []Ack{
		{Clock: 5},
		{Clock: 5, Epoch: 2, Members: []string{"127.0.0.1:7000"}},
		{Clock: 1 << 60, Epoch: 9, Members: []string{"a:1", "b:2", "c:3"}},
		// rf >= 3 quorum group: five members, primary first.
		{Clock: 77, Epoch: 12, Members: []string{"p:1", "b:2", "b:3", "b:4", "b:5"}},
	}
	for i, in := range cases {
		out, err := DecodeAck(in.Encode())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if out.Clock != in.Clock || out.Epoch != in.Epoch || len(out.Members) != len(in.Members) {
			t.Fatalf("case %d: got %+v want %+v", i, out, in)
		}
		for j := range in.Members {
			if out.Members[j] != in.Members[j] {
				t.Fatalf("case %d: got %+v want %+v", i, out, in)
			}
		}
	}
	// A membership list over the sanity cap must be rejected.
	big := Ack{Clock: 1, Epoch: 1}
	for i := 0; i < maxMembers+1; i++ {
		big.Members = append(big.Members, "x")
	}
	if _, err := DecodeAck(big.Encode()); err == nil {
		t.Fatal("oversized membership decoded")
	}
}

// TestClockMarkRoundTrip pins the clock-stamp protocol commit handlers
// use on failure paths: the stamp must lead the message, survive the
// flatten-to-text RPC boundary, parse back to the same timestamp, and
// never disturb the tail-anchored wrong-epoch parser when both ride
// the same error.
func TestClockMarkRoundTrip(t *testing.T) {
	base := fmt.Errorf("kvserver: replication quorum lost")
	for _, ts := range []Timestamp{0, 1, 1<<64 - 1} {
		marked := MarkClock(base, ts)
		got, ok := ParseClockMark(marked.Error())
		if !ok || got != ts {
			t.Fatalf("ts %d: parsed (%d, %v) from %q", ts, got, ok, marked)
		}
		if !errors.Is(marked, base) {
			t.Fatalf("ts %d: mark broke the error chain", ts)
		}
	}
	if MarkClock(nil, 5) != nil {
		t.Fatal("marking a nil error produced an error")
	}
	// The stamp must not swallow a wrong-epoch payload further down the
	// message, and must not itself parse from unmarked text.
	we := &WrongEpochError{Epoch: 4, Members: []string{"a:1", "b:2", "c:3"}}
	both := MarkClock(fmt.Errorf("commit rejected: %w", we), 42).Error()
	if ts, ok := ParseClockMark(both); !ok || ts != 42 {
		t.Fatalf("clock mark lost alongside wrong-epoch: %q", both)
	}
	if out, ok := ParseWrongEpoch(both); !ok || out.Epoch != 4 || len(out.Members) != 3 {
		t.Fatalf("wrong-epoch payload lost under clock mark: %q", both)
	}
	if _, ok := ParseClockMark("kv: transaction conflict"); ok {
		t.Fatal("unmarked error parsed as clock mark")
	}
	if _, ok := ParseClockMark("clock=xyz kv: oops"); ok {
		t.Fatal("malformed clock mark parsed")
	}
}
