package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"yesquel/internal/wire"
)

func TestOIDFields(t *testing.T) {
	o := MakeOID(42, 0xabcdef)
	if o.Slot() != 42 {
		t.Fatalf("Slot = %d", o.Slot())
	}
	if o.Local() != 0xabcdef {
		t.Fatalf("Local = %x", o.Local())
	}
	// Local ids that would spill into the slot bits are masked off.
	o = MakeOID(1, ^uint64(0))
	if o.Slot() != 1 {
		t.Fatalf("Slot after overflow local = %d", o.Slot())
	}
}

func TestQuickOIDRoundTrip(t *testing.T) {
	f := func(slot uint16, local uint64) bool {
		local &= (1 << 48) - 1
		o := MakeOID(slot, local)
		return o.Slot() == slot && o.Local() == local
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueEncodeDecodePlain(t *testing.T) {
	for _, data := range [][]byte{nil, {}, []byte("hello world")} {
		v := NewPlain(data)
		b := wire.NewBuffer(64)
		EncodeValue(b, v)
		got, err := DecodeValue(wire.NewReader(b.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, v)
		}
	}
}

func TestValueEncodeDecodeNil(t *testing.T) {
	b := wire.NewBuffer(4)
	EncodeValue(b, nil)
	got, err := DecodeValue(wire.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("tombstone decoded to %+v", got)
	}
}

func makeTestSuper() *Value {
	v := NewSuper()
	v.Attrs[0] = 7
	v.Attrs[7] = 1 << 60
	v.LowKey = []byte("aaa")
	v.HighKey = []byte("zzz")
	v.ListAdd([]byte("foo"), []byte("1"))
	v.ListAdd([]byte("bar"), []byte("2"))
	v.ListAdd([]byte("qux"), nil)
	return v
}

func TestValueEncodeDecodeSuper(t *testing.T) {
	v := makeTestSuper()
	b := wire.NewBuffer(256)
	EncodeValue(b, v)
	got, err := DecodeValue(wire.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, v)
	}
}

func TestValueEncodeDecodeSuperEmptyVsNilBounds(t *testing.T) {
	v := NewSuper()
	v.LowKey = []byte{} // empty but present
	b := wire.NewBuffer(64)
	EncodeValue(b, v)
	got, err := DecodeValue(wire.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.LowKey == nil {
		t.Fatal("empty LowKey decoded as nil")
	}
	if got.HighKey != nil {
		t.Fatal("nil HighKey decoded as non-nil")
	}
}

func TestValueClone(t *testing.T) {
	v := makeTestSuper()
	c := v.Clone()
	if !c.Equal(v) {
		t.Fatal("clone not equal")
	}
	// Mutating the clone must not affect the original.
	c.ListAdd([]byte("new"), []byte("x"))
	c.Cells[0].Value[0] = 'Z'
	c.Attrs[0] = 99
	c.LowKey[0] = 'Z'
	want := makeTestSuper()
	if !v.Equal(want) {
		t.Fatal("mutating clone corrupted original")
	}
}

func TestListAddOrderAndReplace(t *testing.T) {
	v := NewSuper()
	keys := []string{"m", "a", "z", "f", "a", "m"}
	for i, k := range keys {
		v.ListAdd([]byte(k), []byte{byte(i)})
	}
	if v.NumCells() != 4 {
		t.Fatalf("NumCells = %d, want 4 (duplicates replace)", v.NumCells())
	}
	for i := 1; i < len(v.Cells); i++ {
		if bytes.Compare(v.Cells[i-1].Key, v.Cells[i].Key) >= 0 {
			t.Fatalf("cells out of order at %d: %q >= %q", i, v.Cells[i-1].Key, v.Cells[i].Key)
		}
	}
	if got, _ := v.ListGet([]byte("a")); got[0] != 4 {
		t.Fatalf("replace did not keep last value: %v", got)
	}
}

func TestListDelRange(t *testing.T) {
	mk := func() *Value {
		v := NewSuper()
		for _, k := range []string{"a", "b", "c", "d", "e"} {
			v.ListAdd([]byte(k), []byte(k))
		}
		return v
	}
	cases := []struct {
		from, to string // "" means nil
		want     []string
	}{
		{"b", "d", []string{"a", "d", "e"}},
		{"", "c", []string{"c", "d", "e"}},
		{"c", "", []string{"a", "b"}},
		{"", "", nil},
		{"x", "y", []string{"a", "b", "c", "d", "e"}},
		{"d", "b", []string{"a", "b", "c", "d", "e"}}, // inverted: no-op
		{"b", "b", []string{"a", "b", "c", "d", "e"}}, // empty range
	}
	for _, tc := range cases {
		v := mk()
		var from, to []byte
		if tc.from != "" {
			from = []byte(tc.from)
		}
		if tc.to != "" {
			to = []byte(tc.to)
		}
		v.ListDelRange(from, to)
		var got []string
		for _, c := range v.Cells {
			got = append(got, string(c.Key))
		}
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("DelRange(%q,%q) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestListCeil(t *testing.T) {
	v := NewSuper()
	for _, k := range []string{"b", "d", "f"} {
		v.ListAdd([]byte(k), nil)
	}
	if c, ok := v.ListCeil([]byte("a")); !ok || string(c.Key) != "b" {
		t.Fatalf("Ceil(a) = %q %v", c.Key, ok)
	}
	if c, ok := v.ListCeil([]byte("d")); !ok || string(c.Key) != "d" {
		t.Fatalf("Ceil(d) = %q %v", c.Key, ok)
	}
	if c, ok := v.ListCeil([]byte("e")); !ok || string(c.Key) != "f" {
		t.Fatalf("Ceil(e) = %q %v", c.Key, ok)
	}
	if _, ok := v.ListCeil([]byte("g")); ok {
		t.Fatal("Ceil(g) should be absent")
	}
}

func TestInBounds(t *testing.T) {
	v := NewSuper()
	v.LowKey = []byte("b")
	v.HighKey = []byte("d")
	cases := map[string]bool{"a": false, "b": true, "c": true, "d": false, "e": false}
	for k, want := range cases {
		if got := v.InBounds([]byte(k)); got != want {
			t.Errorf("InBounds(%q) = %v, want %v", k, got, want)
		}
	}
	v.LowKey = nil
	if !v.InBounds([]byte("a")) {
		t.Error("nil LowKey should be unbounded")
	}
	v.HighKey = nil
	if !v.InBounds([]byte("zzzz")) {
		t.Error("nil HighKey should be unbounded")
	}
}

func TestOpApplyPutDelete(t *testing.T) {
	put := &Op{Kind: OpPut, Value: NewPlain([]byte("x"))}
	v, err := put.Apply(nil)
	if err != nil || !v.Equal(NewPlain([]byte("x"))) {
		t.Fatalf("Apply put: %+v %v", v, err)
	}
	del := &Op{Kind: OpDelete}
	v, err = del.Apply(v)
	if err != nil || v != nil {
		t.Fatalf("Apply delete: %+v %v", v, err)
	}
}

func TestOpApplyDeltaOnNilCreatesSuper(t *testing.T) {
	// A blind ListAdd without a prior read must create the supervalue:
	// this is what lets a DBT leaf insert cost zero reads.
	add := &Op{Kind: OpListAdd, Cell: Cell{Key: []byte("k"), Value: []byte("v")}}
	v, err := add.Apply(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != KindSuper || v.NumCells() != 1 {
		t.Fatalf("blind ListAdd: %+v", v)
	}
}

func TestOpApplyDeltaOnPlainFails(t *testing.T) {
	add := &Op{Kind: OpListAdd, Cell: Cell{Key: []byte("k")}}
	if _, err := add.Apply(NewPlain([]byte("x"))); err == nil {
		t.Fatal("delta on plain value must fail")
	}
}

func TestOpApplyDoesNotMutateBase(t *testing.T) {
	base := makeTestSuper()
	snapshot := base.Clone()
	ops := []*Op{
		{Kind: OpListAdd, Cell: Cell{Key: []byte("zzz1"), Value: []byte("v")}},
		{Kind: OpListDelRange, From: []byte("a"), To: []byte("z")},
		{Kind: OpAttrSet, Attr: 0, Num: 123},
		{Kind: OpSetBounds, Low: []byte("x"), High: []byte("y")},
	}
	for _, op := range ops {
		if _, err := op.Apply(base); err != nil {
			t.Fatal(err)
		}
		if !base.Equal(snapshot) {
			t.Fatalf("op %d mutated base", op.Kind)
		}
	}
}

func TestOpApplyAttrOutOfRange(t *testing.T) {
	op := &Op{Kind: OpAttrSet, Attr: NumAttrs, Num: 1}
	if _, err := op.Apply(NewSuper()); err == nil {
		t.Fatal("attr index out of range must fail")
	}
}

func TestOpEncodeDecodeAllKinds(t *testing.T) {
	ops := []*Op{
		{Kind: OpPut, OID: MakeOID(1, 2), Value: makeTestSuper()},
		{Kind: OpPut, OID: MakeOID(1, 2), Value: NewPlain([]byte("p"))},
		{Kind: OpDelete, OID: MakeOID(3, 4)},
		{Kind: OpListAdd, OID: MakeOID(5, 6), Cell: Cell{Key: []byte("k"), Value: []byte("v")}},
		{Kind: OpListDelRange, OID: MakeOID(7, 8), From: []byte("a"), To: []byte("b")},
		{Kind: OpListDelRange, OID: MakeOID(7, 8)}, // unbounded both sides
		{Kind: OpAttrSet, OID: MakeOID(9, 10), Attr: 3, Num: 999},
		{Kind: OpSetBounds, OID: MakeOID(11, 12), Low: []byte("l"), High: []byte("h")},
		{Kind: OpSetBounds, OID: MakeOID(11, 12)},
	}
	for i, op := range ops {
		b := wire.NewBuffer(256)
		EncodeOp(b, op)
		got, err := DecodeOp(wire.NewReader(b.Bytes()))
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		// Compare by applying both to the same base.
		base := makeTestSuper()
		v1, err1 := op.Apply(base)
		v2, err2 := got.Apply(base)
		if op.Kind == OpPut && op.Value.Kind == KindPlain {
			base = nil
			v1, err1 = op.Apply(nil)
			v2, err2 = got.Apply(nil)
		}
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("op %d: apply errs %v vs %v", i, err1, err2)
		}
		if err1 == nil && !v1.Equal(v2) {
			t.Fatalf("op %d: decoded op behaves differently", i)
		}
		if got.OID != op.OID {
			t.Fatalf("op %d: OID %v vs %v", i, got.OID, op.OID)
		}
	}
}

func TestQuickListAddSortedUnique(t *testing.T) {
	f := func(keys [][]byte) bool {
		v := NewSuper()
		for _, k := range keys {
			v.ListAdd(k, []byte("x"))
		}
		for i := 1; i < len(v.Cells); i++ {
			if bytes.Compare(v.Cells[i-1].Key, v.Cells[i].Key) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickListDelRangeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		v := NewSuper()
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			v.ListAdd([]byte{byte(rng.Intn(26) + 'a')}, nil)
		}
		var from, to []byte
		if rng.Intn(4) > 0 {
			from = []byte{byte(rng.Intn(26) + 'a')}
		}
		if rng.Intn(4) > 0 {
			to = []byte{byte(rng.Intn(26) + 'a')}
		}
		var want []Cell
		for _, c := range v.Cells {
			inRange := (from == nil || bytes.Compare(c.Key, from) >= 0) &&
				(to == nil || bytes.Compare(c.Key, to) < 0)
			if !inRange {
				want = append(want, c)
			}
		}
		v.ListDelRange(from, to)
		if len(v.Cells) != len(want) {
			t.Fatalf("trial %d: got %d cells want %d", trial, len(v.Cells), len(want))
		}
		for i := range want {
			if !bytes.Equal(v.Cells[i].Key, want[i].Key) {
				t.Fatalf("trial %d: cell %d mismatch", trial, i)
			}
		}
	}
}

func TestEncodedSizeReasonable(t *testing.T) {
	v := makeTestSuper()
	b := wire.NewBuffer(256)
	EncodeValue(b, v)
	if v.EncodedSize() < b.Len() {
		t.Fatalf("EncodedSize %d < actual %d; must be an upper bound", v.EncodedSize(), b.Len())
	}
}
