package kv

import (
	"bytes"
	"errors"
	"testing"

	"yesquel/internal/wire"
)

// TestSnapMessagesRoundTrip covers the chunked state-transfer pair.
func TestSnapMessagesRoundTrip(t *testing.T) {
	req := &SnapReq{ID: 7, Chunk: 3}
	gotReq, err := DecodeSnapReq(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *gotReq != *req {
		t.Fatalf("snap req: %+v != %+v", gotReq, req)
	}
	resp := &SnapResp{ID: 7, Seq: 1234, Chunk: 3, Chunks: 9, Data: []byte("opaque snapshot slice"), Clock: 55}
	gotResp, err := DecodeSnapResp(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if gotResp.ID != resp.ID || gotResp.Seq != resp.Seq || gotResp.Chunk != resp.Chunk ||
		gotResp.Chunks != resp.Chunks || gotResp.Clock != resp.Clock || !bytes.Equal(gotResp.Data, resp.Data) {
		t.Fatalf("snap resp: %+v != %+v", gotResp, resp)
	}
}

// sampleOps covers every op kind, including nil/empty byte-slice edge
// cases the wire format distinguishes.
func sampleOps() []*Op {
	return []*Op{
		{Kind: OpPut, OID: MakeOID(1, 7), Value: NewPlain([]byte("payload"))},
		{Kind: OpPut, OID: MakeOID(1, 8), Value: nil}, // tombstone-valued put
		{Kind: OpDelete, OID: MakeOID(2, 9)},
		{Kind: OpListAdd, OID: MakeOID(0, 1), Cell: Cell{Key: []byte("k"), Value: []byte("v")}},
		{Kind: OpListAdd, OID: MakeOID(0, 2), Cell: Cell{Key: []byte{}, Value: nil}},
		{Kind: OpListDelRange, OID: MakeOID(3, 3), From: []byte("a"), To: []byte("z")},
		{Kind: OpListDelRange, OID: MakeOID(3, 4), From: nil, To: nil},
		{Kind: OpAttrSet, OID: MakeOID(4, 5), Attr: 7, Num: 1<<63 - 1},
		{Kind: OpSetBounds, OID: MakeOID(5, 6), Low: []byte("lo"), High: nil},
	}
}

func opsEqual(t *testing.T, got, want []*Op) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("op count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Kind != w.Kind || g.OID != w.OID || g.Attr != w.Attr || g.Num != w.Num {
			t.Fatalf("op %d scalar fields: got %+v, want %+v", i, g, w)
		}
		if (g.Value == nil) != (w.Value == nil) || (g.Value != nil && !g.Value.Equal(w.Value)) {
			t.Fatalf("op %d value: got %+v, want %+v", i, g.Value, w.Value)
		}
		// Cell contents are plain length-prefixed (nil and empty encode
		// identically); the range/bounds fields carry has-flags, so
		// nil-ness must survive the round trip exactly.
		if !bytes.Equal(g.Cell.Key, w.Cell.Key) || !bytes.Equal(g.Cell.Value, w.Cell.Value) {
			t.Fatalf("op %d cell: got %+v, want %+v", i, g.Cell, w.Cell)
		}
		for _, pair := range [][2][]byte{
			{g.From, w.From}, {g.To, w.To}, {g.Low, w.Low}, {g.High, w.High},
		} {
			if (pair[0] == nil) != (pair[1] == nil) || !bytes.Equal(pair[0], pair[1]) {
				t.Fatalf("op %d byte field: got %v, want %v", i, pair[0], pair[1])
			}
		}
	}
}

// recEqual compares two replication records field by field.
func recEqual(t *testing.T, got, want ReplRecord) {
	t.Helper()
	if got.Kind != want.Kind || got.TxID != want.TxID || got.TS != want.TS || got.Commit != want.Commit {
		t.Fatalf("record scalar fields: got %+v, want %+v", got, want)
	}
	if got.Epoch != want.Epoch {
		t.Fatalf("record epoch: got %d, want %d", got.Epoch, want.Epoch)
	}
	if len(got.Members) != len(want.Members) {
		t.Fatalf("record members: got %v, want %v", got.Members, want.Members)
	}
	for i := range want.Members {
		if got.Members[i] != want.Members[i] {
			t.Fatalf("record members: got %v, want %v", got.Members, want.Members)
		}
	}
	opsEqual(t, got.Ops, want.Ops)
}

func TestMirrorReqRoundTrip(t *testing.T) {
	cases := []MirrorReq{
		{Seq: 0, Rec: ReplRecord{Kind: RecCommit, TxID: 7, TS: 1}},
		{Seq: 1, Rec: ReplRecord{Kind: RecPrepare, TxID: 1 << 63, TS: 123456789, Ops: sampleOps()[:1], Epoch: 3}},
		{Seq: 2, Rec: ReplRecord{Kind: RecDecide, TxID: 42, TS: 99, Commit: true, Epoch: 1 << 32}},
		{Seq: 3, Rec: ReplRecord{Kind: RecDecide, TxID: 42, TS: 0, Commit: false}},
		{Seq: 1 << 40, Rec: ReplRecord{Kind: RecCommit, TS: Timestamp(1) << 60, Ops: sampleOps()}},
		{Seq: 9, Rec: ReplRecord{Kind: RecEpoch, Epoch: 5, Members: []string{"127.0.0.1:7000", "127.0.0.1:7001"}}},
		{Seq: 10, Rec: ReplRecord{Kind: RecEpoch, Epoch: 6, Members: []string{"127.0.0.1:7001"}}},
	}
	for i, in := range cases {
		out, err := DecodeMirrorReq(in.Encode())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if out.Seq != in.Seq {
			t.Fatalf("case %d: got seq=%d, want seq=%d", i, out.Seq, in.Seq)
		}
		recEqual(t, out.Rec, in.Rec)
	}
}

func TestMirrorReqDecodeErrors(t *testing.T) {
	for _, p := range [][]byte{nil, {0x01}, {0x01, 0xff, 0xff}} {
		if _, err := DecodeMirrorReq(p); err == nil {
			t.Fatalf("decode of truncated payload %v succeeded", p)
		}
	}
	// An unknown record kind must be rejected, not decoded as garbage.
	bad := (&MirrorReq{Seq: 1, Rec: ReplRecord{Kind: RecCommit, TxID: 1, TS: 1}}).Encode()
	bad[1] = 0xee // the kind byte follows the one-byte seq uvarint
	if _, err := DecodeMirrorReq(bad); err == nil {
		t.Fatal("decode of unknown record kind succeeded")
	}
}

func TestMirrorBatchReqRoundTrip(t *testing.T) {
	cases := []MirrorBatchReq{
		{Recs: nil},
		{Recs: []SyncRec{{Seq: 0, Rec: ReplRecord{Kind: RecCommit, TxID: 7, TS: 1}}}},
		{Recs: []SyncRec{
			{Seq: 5, Rec: ReplRecord{Kind: RecCommit, TxID: 1, TS: 10, Ops: sampleOps()[:3], Epoch: 2}},
			{Seq: 6, Rec: ReplRecord{Kind: RecPrepare, TxID: 2, TS: 20, Ops: sampleOps()[3:], Epoch: 2}},
			{Seq: 7, Rec: ReplRecord{Kind: RecDecide, TxID: 2, TS: 30, Commit: true, Epoch: 2}},
			{Seq: 8, Rec: ReplRecord{Kind: RecEpoch, Epoch: 3, Members: []string{"127.0.0.1:7000", "127.0.0.1:7001"}}},
			{Seq: 1 << 40, Rec: ReplRecord{Kind: RecCommit, TS: Timestamp(1) << 60, Ops: sampleOps()}},
		}},
	}
	for i, in := range cases {
		out, err := DecodeMirrorBatchReq(in.Encode())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(out.Recs) != len(in.Recs) {
			t.Fatalf("case %d: got %d records, want %d", i, len(out.Recs), len(in.Recs))
		}
		for j := range in.Recs {
			if out.Recs[j].Seq != in.Recs[j].Seq {
				t.Fatalf("case %d record %d: got seq=%d, want seq=%d", i, j, out.Recs[j].Seq, in.Recs[j].Seq)
			}
			recEqual(t, out.Recs[j].Rec, in.Recs[j].Rec)
		}
	}
}

func TestMirrorBatchReqDecodeErrors(t *testing.T) {
	for _, p := range [][]byte{nil, {0x02}, {0x02, 0x01}, {0x01, 0x01, 0xee}} {
		if _, err := DecodeMirrorBatchReq(p); err == nil {
			t.Fatalf("decode of truncated/garbage payload %v succeeded", p)
		}
	}
	// A record-count sanity bound: an absurd count must be rejected
	// before any allocation, not trusted.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	if _, err := DecodeMirrorBatchReq(huge); err == nil {
		t.Fatal("decode of absurd record count succeeded")
	}
	// An unknown record kind inside a batch is rejected, not decoded as
	// garbage.
	bad := (&MirrorBatchReq{Recs: []SyncRec{{Seq: 1, Rec: ReplRecord{Kind: RecCommit, TxID: 1, TS: 1}}}}).Encode()
	bad[2] = 0xee // count uvarint, seq uvarint, then the record's kind byte
	if _, err := DecodeMirrorBatchReq(bad); err == nil {
		t.Fatal("decode of unknown record kind inside a batch succeeded")
	}
}

func TestSyncReqRoundTrip(t *testing.T) {
	cases := []SyncReq{
		{From: 0, Max: 0},
		{From: 42, Max: 512},
		{From: 42, Max: 512, Epoch: 3},
		{From: 1<<64 - 1, Max: 1<<32 - 1, Epoch: 1<<64 - 1},
	}
	for i, in := range cases {
		out, err := DecodeSyncReq(in.Encode())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if *out != in {
			t.Fatalf("case %d: got %+v, want %+v", i, *out, in)
		}
	}
}

func TestSyncRespRoundTrip(t *testing.T) {
	cases := []SyncResp{
		{Records: nil, Head: 0, Clock: 5},
		// The truncation signal a snapshot-era server sends a too-old
		// backup: no records, install a snapshot and resume at LogBase+.
		{Records: nil, Head: 70, Clock: 6, TooOld: true, LogBase: 64},
		{
			Records: []SyncRec{
				{Seq: 0, Rec: ReplRecord{Kind: RecCommit, TxID: 1, TS: 10, Ops: sampleOps()[:3]}},
				{Seq: 1, Rec: ReplRecord{Kind: RecPrepare, TxID: 2, TS: 20, Ops: sampleOps()[3:5]}},
				{Seq: 2, Rec: ReplRecord{Kind: RecDecide, TxID: 2, TS: 30, Commit: true}},
				{Seq: 3, Rec: ReplRecord{Kind: RecCommit, TS: 40, Ops: sampleOps()}},
			},
			Head:  4,
			Clock: 99,
		},
	}
	for i, in := range cases {
		out, err := DecodeSyncResp(in.Encode())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if out.Head != in.Head || out.Clock != in.Clock || len(out.Records) != len(in.Records) {
			t.Fatalf("case %d: got head=%d clock=%d n=%d, want head=%d clock=%d n=%d",
				i, out.Head, out.Clock, len(out.Records), in.Head, in.Clock, len(in.Records))
		}
		if out.TooOld != in.TooOld || out.LogBase != in.LogBase {
			t.Fatalf("case %d: got tooOld=%v base=%d, want tooOld=%v base=%d",
				i, out.TooOld, out.LogBase, in.TooOld, in.LogBase)
		}
		for j := range in.Records {
			if out.Records[j].Seq != in.Records[j].Seq {
				t.Fatalf("case %d record %d: got %+v, want %+v", i, j, out.Records[j], in.Records[j])
			}
			recEqual(t, out.Records[j].Rec, in.Records[j].Rec)
		}
	}
}

func TestSyncRespDecodeErrors(t *testing.T) {
	for _, p := range [][]byte{nil, {0x05}, {0x01, 0x00}} {
		if _, err := DecodeSyncResp(p); err == nil {
			t.Fatalf("decode of truncated payload %v succeeded", p)
		}
	}
}

// TestPiggybackFieldsRoundTrip covers the watermark/frontier fields
// that ride existing messages: the primary's durability watermark on
// lease renewals and mirror batches, the durability frontier on acks,
// fast-commit and read responses, and the Durable read flag.
func TestPiggybackFieldsRoundTrip(t *testing.T) {
	lease := &LeaseReq{Epoch: 7, Watermark: 1 << 40}
	if got, err := DecodeLeaseReq(lease.Encode()); err != nil || *got != *lease {
		t.Fatalf("lease: got %+v (%v), want %+v", got, err, lease)
	}

	batch := &MirrorBatchReq{
		Recs:      []SyncRec{{Seq: 5, Rec: ReplRecord{Kind: RecCommit, TxID: 1, TS: 10}}},
		Watermark: 6,
	}
	if got, err := DecodeMirrorBatchReq(batch.Encode()); err != nil || got.Watermark != batch.Watermark {
		t.Fatalf("mirror batch watermark: got %+v (%v), want %d", got, err, batch.Watermark)
	}

	ack := &Ack{Clock: 99, Epoch: 3, Members: []string{"a:1", "b:2"}, Frontier: 88}
	gotAck, err := DecodeAck(ack.Encode())
	if err != nil || gotAck.Frontier != ack.Frontier || gotAck.Epoch != ack.Epoch {
		t.Fatalf("ack: got %+v (%v), want %+v", gotAck, err, ack)
	}

	fc := &FastCommitResp{OK: true, CommitTS: 50, Clock: 51, Frontier: 49}
	if got, err := DecodeFastCommitResp(fc.Encode()); err != nil || *got != *fc {
		t.Fatalf("fast commit: got %+v (%v), want %+v", got, err, fc)
	}

	rr := &ReadResp{Found: true, Version: 10, Value: NewPlain([]byte("v")), Clock: 11, Frontier: 9}
	gotRR, err := DecodeReadResp(rr.Encode())
	if err != nil || gotRR.Frontier != rr.Frontier || !gotRR.Value.Equal(rr.Value) {
		t.Fatalf("read resp: got %+v (%v), want %+v", gotRR, err, rr)
	}

	rp := &ReadPartResp{Found: true, Version: 10, Value: NewPlain([]byte("v")), Total: 3, Clock: 11, Frontier: 9}
	gotRP, err := DecodeReadPartResp(rp.Encode())
	if err != nil || gotRP.Frontier != rp.Frontier || gotRP.Total != rp.Total {
		t.Fatalf("read part resp: got %+v (%v), want %+v", gotRP, err, rp)
	}

	req := &ReadReq{OID: MakeOID(1, 2), Snap: 77, Epoch: 4, Durable: true}
	if got, err := DecodeReadReq(req.Encode()); err != nil || *got != *req {
		t.Fatalf("read req: got %+v (%v), want %+v", got, err, req)
	}
	preq := &ReadPartReq{OID: MakeOID(1, 2), Snap: 77, From: []byte("a"), Epoch: 4, Durable: true}
	if got, err := DecodeReadPartReq(preq.Encode()); err != nil || got.Durable != preq.Durable || got.Epoch != preq.Epoch {
		t.Fatalf("read part req: got %+v (%v), want %+v", got, err, preq)
	}
}

// TestPiggybackFieldsBackwardCompat decodes payloads in the PRE-
// piggyback layouts (no trailing watermark/frontier/durable field):
// every trailing optional field must come back zero-valued, never an
// error — old and new servers interoperate during a rolling upgrade.
func TestPiggybackFieldsBackwardCompat(t *testing.T) {
	// LeaseReq was once just the epoch uvarint.
	old := (&LeaseReq{Epoch: 7}).Encode()
	old = old[:len(old)-1] // strip the zero watermark uvarint
	if got, err := DecodeLeaseReq(old); err != nil || got.Epoch != 7 || got.Watermark != 0 {
		t.Fatalf("old lease: got %+v (%v)", got, err)
	}

	// MirrorBatchReq without the trailing watermark.
	old = (&MirrorBatchReq{Recs: []SyncRec{{Seq: 5, Rec: ReplRecord{Kind: RecCommit, TxID: 1, TS: 10}}}}).Encode()
	old = old[:len(old)-1]
	if got, err := DecodeMirrorBatchReq(old); err != nil || got.Watermark != 0 || len(got.Recs) != 1 {
		t.Fatalf("old mirror batch: got %+v (%v)", got, err)
	}

	// Ack without the trailing frontier and directory version (strip
	// the zero DirVersion uvarint, then the frontier uint64).
	old = (&Ack{Clock: 99, Epoch: 3, Members: []string{"a:1"}}).Encode()
	old = old[:len(old)-1-8]
	if got, err := DecodeAck(old); err != nil || got.Frontier != 0 || got.DirVersion != 0 || got.Epoch != 3 {
		t.Fatalf("old ack: got %+v (%v)", got, err)
	}

	// Ack with the frontier but without the directory version (the
	// intermediate vintage).
	old = (&Ack{Clock: 99, Epoch: 3, Members: []string{"a:1"}, Frontier: 42}).Encode()
	old = old[:len(old)-1]
	if got, err := DecodeAck(old); err != nil || got.Frontier != 42 || got.DirVersion != 0 {
		t.Fatalf("mid ack: got %+v (%v)", got, err)
	}

	// FastCommitResp without the trailing frontier.
	old = (&FastCommitResp{OK: true, CommitTS: 50, Clock: 51}).Encode()
	old = old[:len(old)-8]
	if got, err := DecodeFastCommitResp(old); err != nil || got.Frontier != 0 || got.CommitTS != 50 {
		t.Fatalf("old fast commit: got %+v (%v)", got, err)
	}

	// ReadResp / ReadPartResp without the trailing frontier.
	old = (&ReadResp{Found: true, Version: 10, Value: NewPlain([]byte("v")), Clock: 11}).Encode()
	old = old[:len(old)-8]
	if got, err := DecodeReadResp(old); err != nil || got.Frontier != 0 || got.Clock != 11 {
		t.Fatalf("old read resp: got %+v (%v)", got, err)
	}
	old = (&ReadPartResp{Found: true, Version: 10, Value: NewPlain([]byte("v")), Total: 3, Clock: 11}).Encode()
	old = old[:len(old)-8]
	if got, err := DecodeReadPartResp(old); err != nil || got.Frontier != 0 || got.Total != 3 {
		t.Fatalf("old read part resp: got %+v (%v)", got, err)
	}

	// ReadReq / ReadPartReq without the trailing durable flag.
	old = (&ReadReq{OID: MakeOID(1, 2), Snap: 77, Epoch: 4}).Encode()
	old = old[:len(old)-1]
	if got, err := DecodeReadReq(old); err != nil || got.Durable || got.Snap != 77 {
		t.Fatalf("old read req: got %+v (%v)", got, err)
	}
	old = (&ReadPartReq{OID: MakeOID(1, 2), Snap: 77, From: []byte("a"), Epoch: 4}).Encode()
	old = old[:len(old)-1]
	if got, err := DecodeReadPartReq(old); err != nil || got.Durable || got.Epoch != 4 {
		t.Fatalf("old read part req: got %+v (%v)", got, err)
	}
}

// TestReadBatchMessagesRoundTrip covers the batched-read pair: mixed
// whole-object and windowed items, nil-vs-set windows, and found-vs-
// absent results.
func TestReadBatchMessagesRoundTrip(t *testing.T) {
	sv := NewSuper()
	sv.ListAdd([]byte("k1"), []byte("v1"))
	req := &ReadBatchReq{
		Snap:    42,
		Epoch:   7,
		Durable: true,
		Items: []ReadBatchItem{
			{OID: MakeOID(1, 10)},
			{OID: MakeOID(2, 20), Part: true, From: []byte("a"), To: []byte("m"), Max: 8},
			{OID: MakeOID(3, 30), Part: true, From: []byte{}, To: nil}, // tail window
		},
	}
	got, err := DecodeReadBatchReq(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Snap != req.Snap || got.Epoch != req.Epoch || got.Durable != req.Durable || len(got.Items) != len(req.Items) {
		t.Fatalf("req header: %+v != %+v", got, req)
	}
	for i := range req.Items {
		g, w := got.Items[i], req.Items[i]
		if g.OID != w.OID || g.Part != w.Part || g.Max != w.Max ||
			!bytes.Equal(g.From, w.From) || (g.To == nil) != (w.To == nil) || !bytes.Equal(g.To, w.To) {
			t.Fatalf("item %d: got %+v, want %+v", i, g, w)
		}
	}

	resp := &ReadBatchResp{
		Results: []ReadBatchResult{
			{Found: true, Version: 9, Value: NewPlain([]byte("payload"))},
			{}, // absent object: Found=false, nil value
			{Found: true, Version: 11, Value: sv, Total: 31},
		},
		Clock:    55,
		Frontier: 44,
	}
	gotR, err := DecodeReadBatchResp(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if gotR.Clock != resp.Clock || gotR.Frontier != resp.Frontier || len(gotR.Results) != len(resp.Results) {
		t.Fatalf("resp header: %+v != %+v", gotR, resp)
	}
	for i := range resp.Results {
		g, w := gotR.Results[i], resp.Results[i]
		if g.Found != w.Found || g.Version != w.Version || g.Total != w.Total {
			t.Fatalf("result %d scalars: got %+v, want %+v", i, g, w)
		}
		if (g.Value == nil) != (w.Value == nil) || (g.Value != nil && !g.Value.Equal(w.Value)) {
			t.Fatalf("result %d value: got %+v, want %+v", i, g.Value, w.Value)
		}
	}
}

// TestReadBatchDecodeErrors exercises the failure paths: truncation at
// every prefix length and the item-count allocation guard.
func TestReadBatchDecodeErrors(t *testing.T) {
	full := (&ReadBatchReq{Snap: 1, Epoch: 2, Items: []ReadBatchItem{
		{OID: MakeOID(1, 1)},
		{OID: MakeOID(1, 2), Part: true, From: []byte("f"), To: []byte("t"), Max: 3},
	}}).Encode()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeReadBatchReq(full[:cut]); err == nil {
			t.Fatalf("req truncated to %d bytes decoded successfully", cut)
		}
	}
	// A claimed item count the payload cannot hold must be rejected
	// before it sizes an allocation.
	b := wireEncodeBatchHeader(1, 2, false, 1<<40)
	if _, err := DecodeReadBatchReq(b); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("absurd item count: err = %v, want ErrBadRequest", err)
	}

	fullR := (&ReadBatchResp{Results: []ReadBatchResult{
		{Found: true, Version: 3, Value: NewPlain([]byte("x"))},
	}, Clock: 9, Frontier: 4}).Encode()
	// The trailing 8 bytes are the optional frontier; every shorter cut
	// must fail cleanly.
	for cut := 0; cut < len(fullR)-8; cut++ {
		if _, err := DecodeReadBatchResp(fullR[:cut]); err == nil {
			t.Fatalf("resp truncated to %d bytes decoded successfully", cut)
		}
	}
	if _, err := DecodeReadBatchResp(wireEncodeBatchCount(1 << 40)); !errors.Is(err, ErrBadRequest) {
		t.Fatal("absurd result count accepted")
	}

	// Frontier-less responses (an older peer) decode with Frontier 0.
	old := fullR[:len(fullR)-8]
	if got, err := DecodeReadBatchResp(old); err != nil || got.Frontier != 0 || got.Clock != 9 {
		t.Fatalf("old read batch resp: got %+v (%v)", got, err)
	}
}

// wireEncodeBatchHeader hand-builds a ReadBatchReq prefix with an
// arbitrary (possibly absurd) item count.
func wireEncodeBatchHeader(snap, epoch uint64, durable bool, count uint64) []byte {
	b := wire.NewBuffer(32)
	b.PutUint64(snap)
	b.PutUvarint(epoch)
	b.PutBool(durable)
	b.PutUvarint(count)
	return b.Bytes()
}

// wireEncodeBatchCount hand-builds a ReadBatchResp prefix with an
// arbitrary result count.
func wireEncodeBatchCount(count uint64) []byte {
	b := wire.NewBuffer(16)
	b.PutUvarint(count)
	return b.Bytes()
}
