// Package lockorder enforces the kvserver Store mutex acquisition
// order so a new code path cannot invert it into a deadlock. The
// order, as documented on the Store struct and verified across the
// replication stack, is:
//
//	repMu → txMu → epochMu → snapMu → dirMu
//
// (prepare holds txMu while reading the epoch; emitLocked takes
// epochMu under repMu; the slot-directory fence takes dirMu under
// repMu on the write path; epochMu, snapMu, and dirMu holders never
// take another store mutex). A function may acquire a mutex only when
// every mutex
// it already holds ranks strictly earlier; calling a function that
// may (transitively, within the package) acquire an earlier-or-equal
// rank while holding a later one is flagged the same way.
package lockorder

import (
	"go/ast"
	"go/types"

	"yesquel/internal/lint/analysis"
	"yesquel/internal/lint/lockflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "enforce the repMu → txMu → epochMu → snapMu → dirMu acquisition order",
	Run:  run,
}

// rank maps each tracked mutex field name to its position in the
// sanctioned order. Lower ranks must be acquired first.
var rank = map[string]int{
	"repMu":   0,
	"txMu":    1,
	"epochMu": 2,
	"snapMu":  3,
	"dirMu":   4,
}

const orderDoc = "repMu → txMu → epochMu → snapMu → dirMu"

func run(pass *analysis.Pass) error {
	names := make(map[string]bool, len(rank))
	for n := range rank {
		names[n] = true
	}
	isMutex := lockflow.FieldMutex(pass.TypesInfo, names)
	acquires := transitiveAcquires(pass, isMutex)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tr := &lockflow.Tracker{
				IsMutex: isMutex,
				OnLock: func(name string, call *ast.CallExpr, held []string) {
					for _, h := range held {
						if rank[name] <= rank[h] {
							pass.Reportf(call.Pos(),
								"lock order violation: acquiring %s while holding %s (order: %s)",
								name, h, orderDoc)
						}
					}
				},
				OnNode: func(n ast.Node, held []string) {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(held) == 0 {
						return
					}
					callee := lockflow.Callee(pass.TypesInfo, call)
					if callee == nil || callee.Pkg() != pass.Pkg {
						return
					}
					acq, ok := acquires[callee]
					if !ok {
						return
					}
					for name := range acq {
						for _, h := range held {
							if rank[name] <= rank[h] {
								pass.Reportf(call.Pos(),
									"lock order violation: %s may acquire %s, but the caller holds %s (order: %s)",
									callee.Name(), name, h, orderDoc)
								return
							}
						}
					}
				},
			}
			tr.Walk(fd.Body)
		}
	}
	return nil
}

// transitiveAcquires computes, for every function declared in the
// package, the set of tracked mutexes it may acquire directly or via
// same-package calls. FuncLit bodies and go statements are excluded:
// work they do is not on the caller's lock path.
func transitiveAcquires(pass *analysis.Pass, isMutex func(*ast.SelectorExpr) (string, bool)) map[*types.Func]map[string]bool {
	direct := make(map[*types.Func]map[string]bool)
	callees := make(map[*types.Func][]*types.Func)
	var fns []*types.Func

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, obj)
			direct[obj] = make(map[string]bool)
			inspectOnPath(fd.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
						if inner, ok := sel.X.(*ast.SelectorExpr); ok {
							if name, ok := isMutex(inner); ok {
								direct[obj][name] = true
								return
							}
						}
					}
				}
				if callee := lockflow.Callee(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
					callees[obj] = append(callees[obj], callee)
				}
			})
		}
	}

	// Fixed point: fold callees' acquire sets into callers until
	// nothing changes.
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			acq := direct[fn]
			for _, c := range callees[fn] {
				for name := range direct[c] {
					if !acq[name] {
						acq[name] = true
						changed = true
					}
				}
			}
		}
	}
	for fn, acq := range direct {
		if len(acq) == 0 {
			delete(direct, fn)
		}
	}
	return direct
}

// inspectOnPath visits nodes on the function's own execution path:
// it descends everywhere except into FuncLit bodies and go
// statements.
func inspectOnPath(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		fn(n)
		return true
	})
}
