package lockorder

import (
	"testing"

	"yesquel/internal/lint/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, Analyzer, "a")
}
