// Package a exercises the lockorder analyzer against the kvserver
// mutex ranking: repMu → txMu → epochMu → snapMu.
package a

import "sync"

type Store struct {
	repMu   sync.Mutex
	txMu    sync.Mutex
	epochMu sync.Mutex
	snapMu  sync.Mutex
	epoch   uint64
}

// nestedInOrder is the sanctioned shape.
func (s *Store) nestedInOrder() {
	s.repMu.Lock()
	s.txMu.Lock()
	s.epochMu.Lock()
	s.epoch++
	s.epochMu.Unlock()
	s.txMu.Unlock()
	s.repMu.Unlock()
}

// inverted acquires against the order.
func (s *Store) inverted() {
	s.epochMu.Lock()
	s.repMu.Lock() // want `acquiring repMu while holding epochMu`
	s.repMu.Unlock()
	s.epochMu.Unlock()
}

// reentry self-deadlocks.
func (s *Store) reentry() {
	s.txMu.Lock()
	s.txMu.Lock() // want `acquiring txMu while holding txMu`
	s.txMu.Unlock()
	s.txMu.Unlock()
}

// sequential is clean: the first mutex is released before the lower
// rank is taken.
func (s *Store) sequential() {
	s.txMu.Lock()
	s.epoch++
	s.txMu.Unlock()
	s.repMu.Lock()
	s.repMu.Unlock()
}

// earlyReturn models the unlock-in-branch idiom: the fall-through
// path still holds repMu, so the nested txMu there is in order and
// clean, while epochMu → txMu after the branch is flagged.
func (s *Store) earlyReturn(bad bool) {
	s.repMu.Lock()
	if bad {
		s.repMu.Unlock()
		return
	}
	s.txMu.Lock()
	s.txMu.Unlock()
	s.repMu.Unlock()

	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	s.txMu.Lock() // want `acquiring txMu while holding epochMu`
	s.txMu.Unlock()
}

// lockRep is a helper whose acquisition callers inherit.
func (s *Store) lockRep() {
	s.repMu.Lock()
	s.repMu.Unlock()
}

// transitiveInversion calls a repMu-acquiring helper under txMu.
func (s *Store) transitiveInversion() {
	s.txMu.Lock()
	s.lockRep() // want `lockRep may acquire repMu, but the caller holds txMu`
	s.txMu.Unlock()
}

// transitiveOK calls an epochMu-acquiring helper under repMu: later
// rank, in order, clean.
func (s *Store) readEpoch() uint64 {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.epoch
}

func (s *Store) transitiveOK() uint64 {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	return s.readEpoch()
}

// snapLeaf: snapMu is the last rank; taking anything under it is
// flagged.
func (s *Store) snapLeaf() {
	s.snapMu.Lock()
	s.epochMu.Lock() // want `acquiring epochMu while holding snapMu`
	s.epochMu.Unlock()
	s.snapMu.Unlock()
}

// goroutineNotOnPath: a goroutine spawned under epochMu acquires
// repMu on its own stack — not this path's order problem.
func (s *Store) goroutineNotOnPath() {
	s.epochMu.Lock()
	go func() {
		s.repMu.Lock()
		s.repMu.Unlock()
	}()
	s.epochMu.Unlock()
}
