// Package a exercises the repmublock analyzer: blocking operations
// under a struct's repMu are flagged, whether detected syntactically,
// through built-in knowledge, through the //yesqlint:blocking
// annotation, or through same-package call-graph propagation.
package a

import (
	"sync"
	"time"
)

type Store struct {
	repMu sync.Mutex
	txMu  sync.Mutex
	wake  chan struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

//yesqlint:blocking
func sendRPC(payload []byte) error { return nil }

// emit is the sanctioned shape: only non-blocking work under repMu,
// the wait happens after release.
func (s *Store) emit(p []byte) error {
	s.repMu.Lock()
	select { // non-blocking wakeup: has a default clause
	case s.wake <- struct{}{}:
	default:
	}
	s.repMu.Unlock()
	<-s.done // waiting after release is fine
	return sendRPC(p)
}

func (s *Store) annotatedUnderLock(p []byte) error {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	return sendRPC(p) // want `sendRPC may block \(annotated //yesqlint:blocking\) while Store\.repMu is held`
}

func (s *Store) sleepUnderLock() {
	s.repMu.Lock()
	time.Sleep(time.Millisecond) // want `Sleep sleeps while Store\.repMu is held`
	s.repMu.Unlock()
}

func (s *Store) waitGroupUnderLock() {
	s.repMu.Lock()
	s.wg.Wait() // want `Wait waits on a WaitGroup while Store\.repMu is held`
	s.repMu.Unlock()
}

func (s *Store) recvUnderLock() {
	s.repMu.Lock()
	<-s.done // want `channel receive blocks while Store\.repMu is held`
	s.repMu.Unlock()
}

func (s *Store) sendUnderLock() {
	s.repMu.Lock()
	s.wake <- struct{}{} // want `channel send blocks while Store\.repMu is held`
	s.repMu.Unlock()
}

func (s *Store) selectUnderLock() {
	s.repMu.Lock()
	select { // want `select without default blocks while Store\.repMu is held`
	case <-s.done:
	case <-s.wake:
	}
	s.repMu.Unlock()
}

// waitDone blocks; callers under repMu inherit the finding via
// call-graph propagation.
func (s *Store) waitDone() { <-s.done }

func (s *Store) propagatedUnderLock() {
	s.repMu.Lock()
	s.waitDone() // want `waitDone receives on a channel while Store\.repMu is held`
	s.repMu.Unlock()
}

// earlyReturn: the fall-through path still holds repMu after the
// branch released-and-returned, so the sleep is flagged.
func (s *Store) earlyReturn(bad bool) {
	s.repMu.Lock()
	if bad {
		s.repMu.Unlock()
		return
	}
	time.Sleep(time.Millisecond) // want `Sleep sleeps while Store\.repMu is held`
	s.repMu.Unlock()
}

// otherMutexFree: blocking under a different mutex is not this
// analyzer's concern.
func (s *Store) otherMutexFree() {
	s.txMu.Lock()
	<-s.done
	s.txMu.Unlock()
}

// spawned goroutines run off the lock path.
func (s *Store) goStmtClean() {
	s.repMu.Lock()
	go func() { <-s.done }()
	s.repMu.Unlock()
}

// drainBounded is the sanctioned escape hatch: a deliberately bounded
// wait under repMu, suppressed with its justification, and treated as
// non-blocking by callers.
//
//yesqlint:allow repmublock -- bounded by design: one fsync, no network
func (s *Store) drainBounded() {
	// Caller holds repMu (the *Locked convention).
	s.wg.Wait()
}

func (s *Store) callsAllowedUnderLock() {
	s.repMu.Lock()
	s.drainBounded()
	s.repMu.Unlock()
}
