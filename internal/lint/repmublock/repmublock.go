// Package repmublock forbids blocking operations on any path that
// holds Store.repMu — the replication stack's central invariant since
// PR 5 decoupled record emission from the durability wait: repMu
// serializes emission and must never be held across an RPC send, a
// WAL fsync, a watermark or channel wait, a sleep, or a network dial,
// or every concurrent committer stalls behind one waiter.
//
// Blocking is established three ways:
//
//  1. Leaf annotation: a function marked //yesqlint:blocking in its
//     doc comment (rpc.(*Client).Call, wal fsync paths, ...). The
//     annotation is visible across packages.
//  2. Built-in knowledge: time.Sleep, sync.(*WaitGroup).Wait,
//     sync.(*Cond).Wait, net dialing, (*os.File).Sync.
//  3. Syntax: channel send/receive, select without a default clause,
//     range over a channel.
//
// A same-package function containing any of these is itself blocking
// for its callers (call-graph propagation). A function annotated
// //yesqlint:allow repmublock is treated as non-blocking everywhere —
// the annotation is the sanctioned escape hatch for deliberately
// bounded waits (the checkpoint WAL drain holds repMu across one
// fsync by design) and must carry its justification.
package repmublock

import (
	"go/ast"
	"go/token"
	"go/types"

	"yesquel/internal/lint/analysis"
	"yesquel/internal/lint/lockflow"
)

const name = "repmublock"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc:  "no blocking operation (RPC, fsync, channel wait, sleep, dial) on a path holding Store.repMu",
	Run:  run,
}

// builtinBlocking lists well-known blocking functions by the same
// canonical keys analysis.FuncKey produces.
var builtinBlocking = map[string]string{
	"time.Sleep":               "sleeps",
	"sync.(WaitGroup).Wait":    "waits on a WaitGroup",
	"sync.(Cond).Wait":         "waits on a Cond",
	"net.Dial":                 "dials the network",
	"net.DialTimeout":          "dials the network",
	"net.(Dialer).Dial":        "dials the network",
	"net.(Dialer).DialContext": "dials the network",
	"os.(File).Sync":           "fsyncs",
}

func run(pass *analysis.Pass) error {
	blocking := classify(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if allowed(pass, fd) {
				continue
			}
			checkFunc(pass, fd, blocking)
		}
	}
	return nil
}

func allowed(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	key := analysis.SyntacticFuncKey(pass.Pkg.Path(), fd)
	return pass.Facts.Allowed[key][name]
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, blocking map[*types.Func]string) {
	// Comm statements of an already-reported select must not be
	// re-reported as bare channel operations.
	commPos := make(map[token.Pos]bool)
	tr := &lockflow.Tracker{
		IsMutex: lockflow.FieldMutex(pass.TypesInfo, map[string]bool{"repMu": true}),
		OnLock:  func(string, *ast.CallExpr, []string) {},
		OnNode: func(n ast.Node, held []string) {
			if sel, ok := n.(*ast.SelectStmt); ok {
				for _, c := range sel.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						commPos[cc.Comm.Pos()] = true
						markChanOps(cc.Comm, commPos)
					}
				}
			}
			if len(held) == 0 {
				return
			}
			switch n := n.(type) {
			case *ast.SelectStmt:
				if !hasDefault(n) {
					pass.Reportf(n.Pos(), "select without default blocks while Store.repMu is held")
				}
			case *ast.SendStmt:
				if !commPos[n.Pos()] {
					pass.Reportf(n.Pos(), "channel send blocks while Store.repMu is held (use a select with default, or move it off the lock)")
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !commPos[n.Pos()] {
					pass.Reportf(n.Pos(), "channel receive blocks while Store.repMu is held")
				}
			case *ast.RangeStmt:
				if isChanType(pass, n.X) {
					pass.Reportf(n.Pos(), "ranging over a channel blocks while Store.repMu is held")
				}
			case *ast.CallExpr:
				callee := lockflow.Callee(pass.TypesInfo, n)
				if callee == nil {
					return
				}
				if why, ok := calleeBlocks(pass, callee, blocking); ok {
					pass.Reportf(n.Pos(), "%s %s while Store.repMu is held; release repMu first (emission under the lock, waiting outside it)",
						callee.Name(), why)
				}
			}
		},
	}
	tr.Walk(fd.Body)
}

// markChanOps records the positions of channel operations that form a
// select comm statement (including the recv inside an AssignStmt
// comm like `v := <-ch`).
func markChanOps(s ast.Stmt, commPos map[token.Pos]bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				commPos[n.Pos()] = true
			}
		case *ast.SendStmt:
			commPos[n.Pos()] = true
		}
		return true
	})
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func isChanType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}

// calleeBlocks decides whether calling fn may block: by annotation,
// by built-in knowledge, or by same-package propagation.
func calleeBlocks(pass *analysis.Pass, fn *types.Func, blocking map[*types.Func]string) (string, bool) {
	key := analysis.FuncKey(fn)
	if pass.Facts.Allowed[key][name] {
		return "", false
	}
	if pass.Facts.Blocking[key] {
		return "may block (annotated //yesqlint:blocking)", true
	}
	if why, ok := builtinBlocking[key]; ok {
		return why, true
	}
	if why, ok := blocking[fn]; ok {
		return why, true
	}
	return "", false
}

// classify computes the blocking set for functions declared in this
// package by fixed-point propagation over the same-package call
// graph.
func classify(pass *analysis.Pass) map[*types.Func]string {
	type funcInfo struct {
		obj     *types.Func
		direct  string // non-empty if the body itself blocks
		callees []*types.Func
	}
	var infos []*funcInfo
	byObj := make(map[*types.Func]*funcInfo)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{obj: obj}
			if pass.Facts.Allowed[analysis.FuncKey(obj)][name] {
				// Sanctioned bounded wait: non-blocking for callers and
				// excluded from propagation.
				infos = append(infos, fi)
				byObj[obj] = fi
				continue
			}
			inspectOnPath(fd.Body, func(n ast.Node) {
				switch n := n.(type) {
				case *ast.SelectStmt:
					if !hasDefault(n) && fi.direct == "" {
						fi.direct = "waits on a select"
					}
				case *ast.SendStmt:
					if !inSelectComm(fd.Body, n.Pos()) && fi.direct == "" {
						fi.direct = "sends on a channel"
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW && !inSelectComm(fd.Body, n.Pos()) && fi.direct == "" {
						fi.direct = "receives on a channel"
					}
				case *ast.RangeStmt:
					if isChanType(pass, n.X) && fi.direct == "" {
						fi.direct = "ranges over a channel"
					}
				case *ast.CallExpr:
					callee := lockflow.Callee(pass.TypesInfo, n)
					if callee == nil {
						return
					}
					key := analysis.FuncKey(callee)
					if pass.Facts.Allowed[key][name] {
						return
					}
					if pass.Facts.Blocking[key] {
						if fi.direct == "" {
							fi.direct = "calls " + callee.Name() + " (annotated //yesqlint:blocking)"
						}
						return
					}
					if _, ok := builtinBlocking[key]; ok {
						if fi.direct == "" {
							fi.direct = "calls " + callee.Name()
						}
						return
					}
					if callee.Pkg() == pass.Pkg {
						fi.callees = append(fi.callees, callee)
					}
				}
			})
			infos = append(infos, fi)
			byObj[obj] = fi
		}
	}

	result := make(map[*types.Func]string)
	for _, fi := range infos {
		if fi.direct != "" {
			result[fi.obj] = fi.direct
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			if _, done := result[fi.obj]; done || fi.direct != "" {
				continue
			}
			for _, c := range fi.callees {
				if _, ok := result[c]; ok {
					result[fi.obj] = "calls " + c.Name() + ", which may block,"
					changed = true
					break
				}
			}
		}
	}
	// Rewrite reasons into caller-facing phrasing.
	for fn, why := range result {
		switch why {
		case "waits on a select", "sends on a channel", "receives on a channel", "ranges over a channel":
			result[fn] = why
		}
	}
	return result
}

// inSelectComm reports whether the channel op at pos is the comm
// statement of some select in the body (those are only blocking when
// the select is, which the SelectStmt case already models).
func inSelectComm(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if cc.Comm.Pos() <= pos && pos < cc.Comm.End() {
				found = true
			}
		}
		return true
	})
	return found
}

// inspectOnPath visits nodes on the function's own execution path:
// not into FuncLit bodies or go statements.
func inspectOnPath(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		fn(n)
		return true
	})
}
