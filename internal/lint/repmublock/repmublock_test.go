package repmublock

import (
	"testing"

	"yesquel/internal/lint/analysistest"
)

func TestRepMuBlock(t *testing.T) {
	analysistest.Run(t, Analyzer, "a")
}
