// Package wirecodec checks Encode/Decode symmetry for the hand-rolled
// wire codecs in internal/kv and internal/wire. Every message is a
// flat sequence of typed primitives written through wire.Buffer and
// read back through wire.Reader; the two sides are written by hand,
// so nothing structural stops an encoder writing a uvarint where the
// decoder reads a uint64, or a new field landing in the middle of a
// message and silently shearing every peer that speaks the old
// layout. This analyzer extracts the ordered primitive-kind sequence
// from both sides of each pair and diffs them.
//
// Pairing is by name: the method (m *T) Encode() pairs with the
// function DecodeT; helper pairs like encodeOps/decodeOps and
// EncodeReplRecord/DecodeReplRecord pair by their shared suffix. A
// helper call inside a codec body is matched as one unit against the
// other side's corresponding helper call.
//
// The second rule is the repository's backward-compat contract
// (PRs 7-8): fields added after a message's base version must be
// TRAILING and optional — the decoder guards them with
// `if r.Remaining() > 0`, so a short buffer from an old peer decodes
// cleanly. Consequently, once a decoder reads one guarded field,
// every later top-level read must be guarded too; an unguarded read
// after a guarded one would fail on exactly the short buffers the
// guard exists for.
//
// Codec bodies whose wire operations sit under data-dependent
// conditionals (e.g. the per-kind switch in EncodeOp/DecodeOp) are
// skipped: their symmetry is not a flat sequence and stays the
// review's job. Loops are compared structurally: a counted or ranged
// loop on one side must match a loop with the same per-iteration
// sequence on the other.
package wirecodec

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"yesquel/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wirecodec",
	Doc:  "Encode/Decode primitive-order symmetry and trailing-optional short-buffer discipline for wire codecs",
	Run:  run,
}

// item is one element of a codec's extracted wire-op sequence.
type item struct {
	kind     string // primitive kind, or "sub:<name>" for a helper call
	loop     bool
	children []item
	optional bool // decode side: guarded by r.Remaining() > 0
	pos      ast.Node
}

// bufferOps maps wire.Buffer methods to primitive kinds.
var bufferOps = map[string]string{
	"PutUvarint": "uvarint",
	"PutVarint":  "varint",
	"PutUint64":  "uint64",
	"PutUint32":  "uint32",
	"PutByte":    "byte",
	"PutBool":    "bool",
	"PutFloat64": "float64",
	"PutBytes":   "bytes",
	"PutString":  "string",
}

// readerOps maps wire.Reader methods to the same kinds.
var readerOps = map[string]string{
	"Uvarint":   "uvarint",
	"Varint":    "varint",
	"Uint64":    "uint64",
	"Uint32":    "uint32",
	"Byte":      "byte",
	"Bool":      "bool",
	"Float64":   "float64",
	"Bytes":     "bytes",
	"BytesCopy": "bytes",
	"String":    "string",
}

type codec struct {
	name string // display name of the function
	fd   *ast.FuncDecl
	seq  []item
	ok   bool // extraction succeeded (no data-dependent conditional)
}

func run(pass *analysis.Pass) error {
	ex := &extractor{pass: pass}
	encoders := make(map[string]*codec)
	decoders := make(map[string]*codec)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if key, isEnc, ok := codecKey(fd); ok {
				c := &codec{name: fd.Name.Name, fd: fd}
				if fd.Recv != nil {
					c.name = recvTypeName(fd) + "." + fd.Name.Name
				}
				c.seq, c.ok = ex.extract(fd.Body.List, isEnc)
				if isEnc {
					encoders[key] = c
				} else {
					decoders[key] = c
				}
			}
		}
	}

	for key, enc := range encoders {
		dec, ok := decoders[key]
		if !ok || !enc.ok || !dec.ok {
			continue
		}
		if msg, pos := compare(enc.seq, dec.seq, enc.name, dec.name); msg != "" {
			if pos == nil {
				pos = dec.fd.Name
			}
			pass.Reportf(pos.Pos(), "%s", msg)
		}
		checkTrailingOptional(pass, dec)
	}
	// Decoders also get the trailing-optional check when their encoder
	// bailed out (or lives elsewhere).
	for key, dec := range decoders {
		if enc, ok := encoders[key]; ok && enc.ok && dec.ok {
			continue // already checked above
		}
		if dec.ok {
			checkTrailingOptional(pass, dec)
		}
	}
	return nil
}

// checkTrailingOptional enforces: once one top-level read is guarded
// by Remaining(), every later top-level read must be too.
func checkTrailingOptional(pass *analysis.Pass, dec *codec) {
	seenOptional := false
	for _, it := range dec.seq {
		if it.optional {
			seenOptional = true
			continue
		}
		if seenOptional {
			pass.Reportf(it.pos.Pos(),
				"%s reads %s unconditionally after a Remaining()-guarded field; trailing-optional fields must stay trailing (guard this read too, or reorder the message)",
				dec.name, describe(it))
			return
		}
	}
}

// codecKey classifies fd as an encoder or decoder and returns the
// pairing key: the lowercased type/suffix name.
func codecKey(fd *ast.FuncDecl) (key string, isEnc, ok bool) {
	name := fd.Name.Name
	if fd.Recv != nil {
		if name == "Encode" {
			return strings.ToLower(recvTypeName(fd)), true, true
		}
		return "", false, false
	}
	lower := strings.ToLower(name)
	switch {
	case strings.HasPrefix(lower, "encode") && len(name) > len("encode"):
		return lower[len("encode"):], true, true
	case strings.HasPrefix(lower, "decode") && len(name) > len("decode"):
		return lower[len("decode"):], false, true
	}
	return "", false, false
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "?"
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}

type extractor struct {
	pass *analysis.Pass
}

// extract linearizes the wire operations in stmts. ok is false when a
// data-dependent conditional contains wire operations (the codec is
// not a flat sequence and is skipped).
func (ex *extractor) extract(stmts []ast.Stmt, isEnc bool) (seq []item, ok bool) {
	ok = true
	for _, s := range stmts {
		items, sok := ex.extractStmt(s, isEnc)
		if !sok {
			return nil, false
		}
		seq = append(seq, items...)
	}
	return seq, ok
}

func (ex *extractor) extractStmt(s ast.Stmt, isEnc bool) ([]item, bool) {
	switch s := s.(type) {
	case nil:
		return nil, true
	case *ast.ExprStmt:
		return ex.extractExpr(s.X, isEnc), true
	case *ast.AssignStmt:
		var items []item
		for _, rhs := range s.Rhs {
			items = append(items, ex.extractExpr(rhs, isEnc)...)
		}
		return items, true
	case *ast.DeclStmt:
		return nil, true
	case *ast.ReturnStmt:
		var items []item
		for _, r := range s.Results {
			items = append(items, ex.extractExpr(r, isEnc)...)
		}
		return items, true
	case *ast.IfStmt:
		items, ok := ex.extractStmt(s.Init, isEnc)
		if !ok {
			return nil, false
		}
		if !isEnc && isRemainingGuard(s.Cond) {
			inner, iok := ex.extract(s.Body.List, isEnc)
			if !iok {
				return nil, false
			}
			for i := range inner {
				inner[i].optional = true
			}
			return append(items, inner...), true
		}
		// Any other conditional: fine while it performs no wire ops
		// (error checks, count-sanity guards); otherwise the codec is
		// not a flat sequence.
		if ex.containsWireOps(s.Body, isEnc) || (s.Else != nil && ex.containsWireOps(s.Else, isEnc)) {
			return nil, false
		}
		return items, true
	case *ast.ForStmt:
		items, ok := ex.extractStmt(s.Init, isEnc)
		if !ok {
			return nil, false
		}
		inner, iok := ex.extract(s.Body.List, isEnc)
		if !iok {
			return nil, false
		}
		if len(inner) > 0 {
			items = append(items, item{kind: "loop", loop: true, children: inner, pos: s})
		}
		return items, true
	case *ast.RangeStmt:
		inner, iok := ex.extract(s.Body.List, isEnc)
		if !iok {
			return nil, false
		}
		if len(inner) > 0 {
			return []item{{kind: "loop", loop: true, children: inner, pos: s}}, true
		}
		return nil, true
	default:
		// switch/select/go/defer/labeled: opaque. Wire ops inside make
		// the codec non-flat.
		if ex.containsWireOps(s, isEnc) {
			return nil, false
		}
		return nil, true
	}
}

// extractExpr pulls wire-op items out of one expression in evaluation
// order (arguments first for nested calls is irrelevant here: codec
// bodies never nest two wire calls in one expression).
func (ex *extractor) extractExpr(e ast.Expr, isEnc bool) []item {
	var items []item
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if it, ok := ex.classify(call, isEnc); ok {
			items = append(items, it)
		}
		return true
	})
	return items
}

// classify maps a call to a wire-op item: a Buffer/Reader primitive
// or a helper codec call.
func (ex *extractor) classify(call *ast.CallExpr, isEnc bool) (item, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if ok {
		if recv := ex.wireRecv(sel.X); recv != "" {
			ops := bufferOps
			if recv == "Reader" {
				ops = readerOps
			}
			if isEnc == (recv == "Reader") {
				// An encoder reading or a decoder writing would be its
				// own kind of wrong; stay out of scope here.
				return item{}, false
			}
			if kind, ok := ops[sel.Sel.Name]; ok {
				return item{kind: kind, pos: call}, true
			}
			return item{}, false
		}
		// Method helper: rec.Encode() pairs with DecodeRec(...) by the
		// receiver's type name.
		if sel.Sel.Name == "Encode" && isEnc {
			if tn := ex.typeName(sel.X); tn != "" {
				return item{kind: "sub:" + strings.ToLower(tn), pos: call}, true
			}
		}
		return item{}, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return item{}, false
	}
	lower := strings.ToLower(id.Name)
	prefix := "decode"
	if isEnc {
		prefix = "encode"
	}
	if strings.HasPrefix(lower, prefix) && len(lower) > len(prefix) {
		return item{kind: "sub:" + lower[len(prefix):], pos: call}, true
	}
	return item{}, false
}

// wireRecv reports whether e has type wire.Buffer or wire.Reader
// (possibly via pointer), returning the type's name.
func (ex *extractor) wireRecv(e ast.Expr) string {
	tv, ok := ex.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	pkg := n.Obj().Pkg().Path()
	if pkg != "yesquel/internal/wire" && !strings.HasSuffix(pkg, "/wire") {
		return ""
	}
	name := n.Obj().Name()
	if name == "Buffer" || name == "Reader" {
		return name
	}
	return ""
}

func (ex *extractor) typeName(e ast.Expr) string {
	tv, ok := ex.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func (ex *extractor) containsWireOps(n ast.Node, isEnc bool) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok {
			if _, ok := ex.classify(call, isEnc); ok {
				found = true
			}
		}
		return true
	})
	return found
}

// isRemainingGuard matches `r.Remaining() > 0` (and != 0) conditions.
func isRemainingGuard(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Remaining" {
				found = true
			}
		}
		return true
	})
	return found
}

// compare diffs the two sequences and returns a description of the
// first asymmetry ("" when symmetric).
func compare(enc, dec []item, encName, decName string) (string, ast.Node) {
	n := len(enc)
	if len(dec) < n {
		n = len(dec)
	}
	for i := 0; i < n; i++ {
		e, d := enc[i], dec[i]
		if e.loop != d.loop {
			return fmt.Sprintf("wire asymmetry: %s op %d is %s but %s op %d is %s",
				encName, i+1, describe(e), decName, i+1, describe(d)), d.pos
		}
		if e.loop {
			if msg, pos := compare(e.children, d.children, encName+" (loop body)", decName+" (loop body)"); msg != "" {
				return msg, pos
			}
			continue
		}
		if e.kind != d.kind {
			return fmt.Sprintf("wire asymmetry: %s writes %s at op %d but %s reads %s",
				encName, describe(e), i+1, decName, describe(d)), d.pos
		}
	}
	if len(enc) != len(dec) {
		if len(enc) > len(dec) {
			return fmt.Sprintf("wire asymmetry: %s writes %d ops but %s reads only %d (first unread: %s)",
				encName, len(enc), decName, len(dec), describe(enc[len(dec)])), enc[len(dec)].pos
		}
		return fmt.Sprintf("wire asymmetry: %s reads %d ops but %s writes only %d (first excess read: %s)",
			decName, len(dec), encName, len(enc), describe(dec[len(enc)])), dec[len(enc)].pos
	}
	return "", nil
}

func describe(it item) string {
	if it.loop {
		return "a loop"
	}
	if strings.HasPrefix(it.kind, "sub:") {
		return "nested codec " + strings.TrimPrefix(it.kind, "sub:")
	}
	return it.kind
}
