// Package a exercises the wirecodec analyzer against the real
// internal/wire primitives.
package a

import "yesquel/internal/wire"

// Sym is a symmetric message with a nested helper, a counted loop,
// and a trailing-optional field: fully clean.
type Sym struct {
	ID    uint64
	Name  string
	Items []uint32
	Mark  uint64 // trailing-optional since v2
}

func encodeHeader(b *wire.Buffer, id uint64, name string) {
	b.PutUvarint(id)
	b.PutString(name)
}

func decodeHeader(r *wire.Reader) (uint64, string, error) {
	id, err := r.Uvarint()
	if err != nil {
		return 0, "", err
	}
	name, err := r.String()
	if err != nil {
		return 0, "", err
	}
	return id, name, nil
}

func (m *Sym) Encode() []byte {
	b := wire.NewBuffer(64)
	encodeHeader(b, m.ID, m.Name)
	b.PutUvarint(uint64(len(m.Items)))
	for _, it := range m.Items {
		b.PutUint32(it)
	}
	b.PutUvarint(m.Mark)
	return b.Bytes()
}

func DecodeSym(p []byte) (*Sym, error) {
	r := wire.NewReader(p)
	id, name, err := decodeHeader(r)
	if err != nil {
		return nil, err
	}
	m := &Sym{ID: id, Name: name}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		v, err := r.Uint32()
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, v)
	}
	if r.Remaining() > 0 {
		if m.Mark, err = r.Uvarint(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Mismatch writes a uvarint where the decoder reads a uint64.
type Mismatch struct {
	Seq uint64
	TS  uint64
}

func (m *Mismatch) Encode() []byte {
	b := wire.NewBuffer(16)
	b.PutUvarint(m.Seq)
	b.PutUvarint(m.TS)
	return b.Bytes()
}

func DecodeMismatch(p []byte) (*Mismatch, error) {
	r := wire.NewReader(p)
	m := &Mismatch{}
	var err error
	if m.Seq, err = r.Uvarint(); err != nil {
		return nil, err
	}
	if m.TS, err = r.Uint64(); err != nil { // want `Mismatch\.Encode writes uvarint at op 2 but DecodeMismatch reads uint64`
		return nil, err
	}
	return m, nil
}

// Short: the encoder writes a field the decoder never reads.
type Short struct {
	A uint64
	B uint64
}

func (m *Short) Encode() []byte {
	b := wire.NewBuffer(16)
	b.PutUvarint(m.A)
	b.PutUvarint(m.B) // want `Short\.Encode writes 2 ops but DecodeShort reads only 1`
	return b.Bytes()
}

func DecodeShort(p []byte) (*Short, error) {
	r := wire.NewReader(p)
	m := &Short{}
	var err error
	if m.A, err = r.Uvarint(); err != nil {
		return nil, err
	}
	return m, nil
}

// MidOpt violates the trailing-optional contract: an unconditional
// read follows a Remaining()-guarded one.
type MidOpt struct {
	A uint64
	B uint64 // optional since v2
	C uint64 // v1 field ordered after the optional one: broken
}

func (m *MidOpt) Encode() []byte {
	b := wire.NewBuffer(24)
	b.PutUvarint(m.A)
	b.PutUvarint(m.B)
	b.PutUvarint(m.C)
	return b.Bytes()
}

func DecodeMidOpt(p []byte) (*MidOpt, error) {
	r := wire.NewReader(p)
	m := &MidOpt{}
	var err error
	if m.A, err = r.Uvarint(); err != nil {
		return nil, err
	}
	if r.Remaining() > 0 {
		if m.B, err = r.Uvarint(); err != nil {
			return nil, err
		}
	}
	if m.C, err = r.Uvarint(); err != nil { // want `DecodeMidOpt reads uvarint unconditionally after a Remaining\(\)-guarded field`
		return nil, err
	}
	return m, nil
}

// Branchy codecs (per-kind switches) are out of scope: skipped, no
// findings even though the arms differ.
type Branchy struct {
	Kind byte
	A    uint64
	S    string
}

func (m *Branchy) Encode() []byte {
	b := wire.NewBuffer(16)
	b.PutByte(m.Kind)
	if m.Kind == 0 {
		b.PutUvarint(m.A)
	} else {
		b.PutString(m.S)
	}
	return b.Bytes()
}

func DecodeBranchy(p []byte) (*Branchy, error) {
	r := wire.NewReader(p)
	m := &Branchy{}
	var err error
	if m.Kind, err = r.Byte(); err != nil {
		return nil, err
	}
	if m.Kind == 0 {
		if m.A, err = r.Uvarint(); err != nil {
			return nil, err
		}
	} else if m.S, err = r.String(); err != nil {
		return nil, err
	}
	return m, nil
}
