package wirecodec

import (
	"testing"

	"yesquel/internal/lint/analysistest"
)

func TestWireCodec(t *testing.T) {
	analysistest.Run(t, Analyzer, "a")
}
