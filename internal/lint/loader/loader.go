// Package loader type-checks Go packages for the yesqlint analyzers
// without golang.org/x/tools. It shells out to `go list -export` to
// make the toolchain compile dependencies into the build cache, then
// parses the target packages' sources and type-checks them against the
// compiler's export data (importer.ForCompiler with a lookup that maps
// import paths to the export files `go list` reported). Everything —
// enumeration, export data, type checking — is the standard toolchain;
// no network, no module downloads.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"yesquel/internal/lint/analysis"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listEntry mirrors the subset of `go list -json` output we consume.
type listEntry struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
}

func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(out)
	var entries []listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return entries, nil
}

// Load type-checks the packages matching patterns (standard go
// patterns: import paths, directories, ./...) rooted at dir, and
// returns them together with the module-wide annotation facts.
func Load(dir string, patterns ...string) ([]*Package, *analysis.Facts, error) {
	jsonFields := "-json=Dir,ImportPath,Export,Standard,GoFiles"
	// One -deps listing serves both needs: the export-data map for the
	// type checker and the module-local file set for the annotation
	// scan. A second, non-deps listing identifies which entries are
	// the requested targets.
	deps, err := goList(dir, append([]string{"-export", "-deps", jsonFields}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}
	targets, err := goList(dir, append([]string{jsonFields}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, e := range deps {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	// Targets are type-checked from source, so their export data (and
	// that of any target importing another) must not shadow the need
	// to compile; the gc importer only resolves IMPORTS, and a target
	// importing a sibling target resolves it from export data too —
	// which is fine: annotations come from the facts scan, not types.
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	facts := &analysis.Facts{
		Blocking: make(map[string]bool),
		Allowed:  make(map[string]map[string]bool),
	}
	for _, e := range deps {
		if e.Standard {
			continue
		}
		scanAnnotations(fset, e, facts)
	}

	var pkgs []*Package
	for _, t := range targets {
		p, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, facts, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, e listEntry) (*Package, error) {
	var files []*ast.File
	for _, name := range e.GoFiles {
		path := filepath.Join(e.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", e.ImportPath, err)
	}
	return &Package{
		ImportPath: e.ImportPath,
		Dir:        e.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// scanAnnotations parses the package's files (syntax only) and records
// //yesqlint:blocking and //yesqlint:allow annotations from function
// doc comments under their canonical keys.
func scanAnnotations(fset *token.FileSet, e listEntry, facts *analysis.Facts) {
	for _, name := range e.GoFiles {
		path := filepath.Join(e.Dir, name)
		src, err := os.ReadFile(path)
		if err != nil || !bytes.Contains(src, []byte("//yesqlint:")) {
			continue
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			key := analysis.SyntacticFuncKey(e.ImportPath, fd)
			for _, c := range fd.Doc.List {
				switch {
				case strings.HasPrefix(c.Text, "//yesqlint:blocking"):
					facts.Blocking[key] = true
				case strings.HasPrefix(c.Text, "//yesqlint:allow "):
					for _, name := range AllowedNames(c.Text) {
						if facts.Allowed[key] == nil {
							facts.Allowed[key] = make(map[string]bool)
						}
						facts.Allowed[key][name] = true
					}
				}
			}
		}
	}
}

// AllowedNames parses a "//yesqlint:allow name1,name2 -- reason"
// comment and returns the suppressed analyzer names.
func AllowedNames(comment string) []string {
	rest := strings.TrimPrefix(comment, "//yesqlint:allow ")
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	var names []string
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}
