// Package lockflow walks a function body in source order while
// tracking which of a named set of mutexes are held, with enough
// control-flow awareness for the kvserver locking idioms: an Unlock
// inside an early-return branch does not end the critical section on
// the fall-through path, and a deferred Unlock holds to the end of
// the function. The repmublock and lockorder analyzers are both built
// on it.
//
// The tracking is deliberately approximate in the direction that
// suits a linter: a path merge that COULD be holding the mutex is
// treated as holding it (union of branch exits), so real violations
// are not lost to branchy code, while the early-return idiom —
//
//	s.repMu.Lock()
//	if bad {
//		s.repMu.Unlock()
//		return err
//	}
//	... still holding ...
//
// — is modeled exactly.
package lockflow

import (
	"go/ast"
	"go/types"
)

// Tracker names the mutexes to follow and receives events.
type Tracker struct {
	// IsMutex reports whether a selector like s.repMu names a tracked
	// mutex, returning its canonical name.
	IsMutex func(sel *ast.SelectorExpr) (name string, ok bool)
	// OnLock is called for each mutex acquisition with the mutexes
	// already held (in acquisition order) at that point.
	OnLock func(name string, call *ast.CallExpr, held []string)
	// OnNode is called for every other expression/statement node
	// reached in source order (excluding nested FuncLit bodies, go
	// statements, and deferred calls) with the mutexes held there.
	OnNode func(n ast.Node, held []string)
}

// Walk runs the tracker over one function body.
func (t *Tracker) Walk(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	t.scanStmts(body.List, &heldSet{})
}

type heldSet struct{ names []string }

func (h *heldSet) clone() *heldSet {
	return &heldSet{names: append([]string(nil), h.names...)}
}

func (h *heldSet) add(name string) {
	for _, n := range h.names {
		if n == name {
			return
		}
	}
	h.names = append(h.names, name)
}

func (h *heldSet) remove(name string) {
	for i, n := range h.names {
		if n == name {
			h.names = append(h.names[:i], h.names[i+1:]...)
			return
		}
	}
}

func (h *heldSet) union(o *heldSet) {
	for _, n := range o.names {
		h.add(n)
	}
}

// lockCall classifies call as Lock/RLock or Unlock/RUnlock on a
// tracked mutex.
func (t *Tracker) lockCall(call *ast.CallExpr) (name string, lock, unlock bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	name, ok = t.IsMutex(inner)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return name, true, false
	case "Unlock", "RUnlock":
		return name, false, true
	}
	return "", false, false
}

func (t *Tracker) scanStmts(stmts []ast.Stmt, held *heldSet) (terminates bool) {
	for _, s := range stmts {
		if t.scanStmt(s, held) {
			return true
		}
	}
	return false
}

// scanStmt processes one statement, mutating held; it reports whether
// the statement terminates the enclosing block (return, branch,
// panic).
func (t *Tracker) scanStmt(s ast.Stmt, held *heldSet) (terminates bool) {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, lock, unlock := t.lockCall(call); lock || unlock {
				if lock {
					t.OnLock(name, call, append([]string(nil), held.names...))
					held.add(name)
				} else {
					held.remove(name)
				}
				return false
			}
			if isPanic(call) {
				t.visit(s.X, held)
				return true
			}
		}
		t.visit(s.X, held)
		return false
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held for the rest of the
		// body; any other deferred call runs at return time, outside
		// this walk's source-order model.
		return false
	case *ast.GoStmt:
		// The spawned goroutine's work is not on this path.
		return false
	case *ast.BlockStmt:
		return t.scanStmts(s.List, held)
	case *ast.IfStmt:
		t.scanStmt(s.Init, held)
		t.visit(s.Cond, held)
		bodyHeld := held.clone()
		bodyTerm := t.scanStmts(s.Body.List, bodyHeld)
		elseHeld := held.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = t.scanStmt(s.Else, elseHeld)
		}
		switch {
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			*held = *elseHeld
		case elseTerm:
			*held = *bodyHeld
		default:
			*held = *bodyHeld
			held.union(elseHeld)
		}
		return false
	case *ast.ForStmt:
		t.scanStmt(s.Init, held)
		t.visit(s.Cond, held)
		bodyHeld := held.clone()
		t.scanStmts(s.Body.List, bodyHeld)
		t.scanStmt(s.Post, bodyHeld)
		held.union(bodyHeld)
		return false
	case *ast.RangeStmt:
		t.visit(s.X, held)
		bodyHeld := held.clone()
		t.scanStmts(s.Body.List, bodyHeld)
		held.union(bodyHeld)
		return false
	case *ast.SwitchStmt:
		t.scanStmt(s.Init, held)
		t.visit(s.Tag, held)
		return t.scanClauses(s.Body, held, false)
	case *ast.TypeSwitchStmt:
		t.scanStmt(s.Init, held)
		t.visit(s.Assign, held)
		return t.scanClauses(s.Body, held, false)
	case *ast.SelectStmt:
		// The select itself is a potentially-blocking event: surface
		// it before descending into the clauses.
		t.OnNode(s, append([]string(nil), held.names...))
		return t.scanClauses(s.Body, held, true)
	case *ast.LabeledStmt:
		return t.scanStmt(s.Stmt, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			t.visit(r, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	default:
		t.visit(s, held)
		return false
	}
}

// scanClauses handles the shared shape of switch/select bodies. Comm
// clauses' communication statements are visited inside the clause.
func (t *Tracker) scanClauses(body *ast.BlockStmt, held *heldSet, isSelect bool) bool {
	exit := held.clone()
	any := false
	for _, c := range body.List {
		clauseHeld := held.clone()
		var term bool
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				t.visit(e, clauseHeld)
			}
			term = t.scanStmts(c.Body, clauseHeld)
		case *ast.CommClause:
			if isSelect && c.Comm != nil {
				// The comm op's expressions (channel operands) are
				// evaluated as part of the blocking select already
				// reported by the caller; still scan for lock calls
				// hidden in them (there are none in practice).
				t.scanStmt(c.Comm, clauseHeld)
			}
			term = t.scanStmts(c.Body, clauseHeld)
		}
		if !term {
			exit.union(clauseHeld)
			any = true
		}
	}
	_ = any
	*held = *exit
	return false
}

// visit walks an expression/statement subtree in source order,
// invoking OnNode on each node but not descending into function
// literals (their bodies run on their own schedule).
func (t *Tracker) visit(n ast.Node, held *heldSet) {
	if n == nil || t.OnNode == nil {
		return
	}
	snapshot := append([]string(nil), held.names...)
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok {
			t.OnNode(c, snapshot)
			return false
		}
		t.OnNode(c, snapshot)
		return true
	})
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// FieldMutex returns an IsMutex classifier matching selector
// expressions whose field name is in names and whose type is
// sync.Mutex or sync.RWMutex.
func FieldMutex(info *types.Info, names map[string]bool) func(sel *ast.SelectorExpr) (string, bool) {
	return func(sel *ast.SelectorExpr) (string, bool) {
		if !names[sel.Sel.Name] {
			return "", false
		}
		tv, ok := info.Types[sel]
		if !ok {
			return "", false
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := t.(*types.Named)
		if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
			return "", false
		}
		if name := n.Obj().Name(); name != "Mutex" && name != "RWMutex" {
			return "", false
		}
		return sel.Sel.Name, true
	}
}

// Callee resolves the *types.Func a call invokes, or nil for builtins,
// function values, and conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
