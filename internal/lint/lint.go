// Package lint is the yesqlint driver: it loads packages, runs the
// analyzer suite over them, and applies the //yesqlint:allow
// suppression discipline. The analyzers themselves live in
// subpackages (repmublock, lockorder, errsentinel, wirecodec,
// timerloop); cmd/yesqlint and the analyzer tests both run them
// through Run.
//
// Suppressions are deliberate, documented exceptions to an invariant:
// a //yesqlint:allow <analyzer> [-- reason] line either in a
// function's doc comment (suppressing the whole function) or on — or
// immediately above — the offending line. Every allow in this
// repository must say why in its reason clause; the linter does not
// enforce that, review does.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"yesquel/internal/lint/analysis"
	"yesquel/internal/lint/loader"
)

// Finding is one unsuppressed diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run loads the packages matching patterns (rooted at dir) and applies
// every analyzer, returning the surviving findings sorted by position.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	pkgs, facts, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		sup := newSuppressions(pkg)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
			}
			pass.Report = func(d analysis.Diagnostic) {
				if sup.suppressed(a.Name, d.Pos, facts, pkg.ImportPath) {
					return
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// suppressions indexes a package's //yesqlint:allow comments: by line
// (same-line or line-above suppressions) and by enclosing function
// (doc-comment suppressions resolved through the facts table).
type suppressions struct {
	pkg *loader.Package
	// lineAllows maps file name -> line -> analyzer names allowed at
	// that line and the one below it.
	lineAllows map[string]map[int]map[string]bool
	funcs      []funcRange
}

type funcRange struct {
	start, end token.Pos
	key        string
}

func newSuppressions(pkg *loader.Package) *suppressions {
	s := &suppressions{pkg: pkg, lineAllows: make(map[string]map[int]map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//yesqlint:allow ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := s.lineAllows[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					s.lineAllows[pos.Filename] = byLine
				}
				if byLine[pos.Line] == nil {
					byLine[pos.Line] = make(map[string]bool)
				}
				for _, name := range loader.AllowedNames(c.Text) {
					byLine[pos.Line][name] = true
				}
			}
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				s.funcs = append(s.funcs, funcRange{
					start: fd.Pos(),
					end:   fd.End(),
					key:   analysis.SyntacticFuncKey(pkg.ImportPath, fd),
				})
			}
		}
	}
	return s
}

func (s *suppressions) suppressed(analyzer string, pos token.Pos, facts *analysis.Facts, pkgPath string) bool {
	p := s.pkg.Fset.Position(pos)
	if byLine := s.lineAllows[p.Filename]; byLine != nil {
		// An allow comment covers its own line (trailing comment) and
		// the line immediately after it (comment-above form).
		if byLine[p.Line][analyzer] || byLine[p.Line-1][analyzer] {
			return true
		}
	}
	for _, fr := range s.funcs {
		if pos >= fr.start && pos < fr.end {
			if facts.Allowed[fr.key][analyzer] {
				return true
			}
		}
	}
	return false
}
