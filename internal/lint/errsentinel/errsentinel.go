// Package errsentinel forbids matching errors by their rendered text
// in non-test code. String matching silently breaks when a message is
// reworded (PR 4's failover bug was exactly that) and cannot survive
// wrapping; the replication stack exports typed sentinels
// (kv.ErrDiverged, kv.ErrWrongEpoch, kv.ErrUncertain, kv.ErrConflict,
// kvserver.ErrSnapshotSessionExpired, ...) and, since this PR, a
// typed code on rpc.AppError, so every cross-process error can be
// classified with errors.Is/errors.As or the code — never the text.
//
// Flagged shapes:
//
//	strings.Contains(x, err.Error())   // and Index/HasPrefix/...
//	strings.Contains(app.Msg, ...)     // AppError's laundered text
//	err.Error() == "..."               // equality on rendered text
//
// The sanctioned decoders that must parse structured payloads out of
// an error string (kv.ParseWrongEpoch, kv.ParseClockMark, the legacy
// pre-code fallback in rpc.AppErrIs) carry //yesqlint:allow
// errsentinel annotations with their justification.
package errsentinel

import (
	"go/ast"
	"go/token"
	"go/types"

	"yesquel/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errsentinel",
	Doc:  "forbid error classification via err.Error() string matching; require errors.Is/errors.As with exported sentinels",
	Run:  run,
}

var stringMatchFuncs = map[string]bool{
	"Contains":  true,
	"HasPrefix": true,
	"HasSuffix": true,
	"Index":     true,
	"LastIndex": true,
	"EqualFold": true,
	"Count":     true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if len(name) >= 8 && name[len(name)-8:] == "_test.go" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkStringsCall(pass, n)
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkStringsCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !stringMatchFuncs[sel.Sel.Name] {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "strings" {
		return
	}
	for _, arg := range call.Args {
		if why := errText(pass, arg); why != "" {
			pass.Reportf(call.Pos(),
				"error classified by strings.%s on %s: match the typed error instead (errors.Is/errors.As with an exported sentinel, or the rpc.AppError code)",
				sel.Sel.Name, why)
			return
		}
	}
}

func checkComparison(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if why := errText(pass, side); why != "" {
			// app.Msg == "" is a presence check, not classification.
			if other := otherSide(be, side); isEmptyString(other) {
				return
			}
			pass.Reportf(be.Pos(),
				"error compared by %s: match the typed error instead (errors.Is/errors.As with an exported sentinel, or the rpc.AppError code)", why)
			return
		}
	}
}

func otherSide(be *ast.BinaryExpr, side ast.Expr) ast.Expr {
	if be.X == side {
		return be.Y
	}
	return be.X
}

func isEmptyString(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.STRING && (lit.Value == `""` || lit.Value == "``")
}

// errText reports whether e is rendered error text — err.Error() on
// an error value, or the Msg field of an AppError — and returns a
// description for the diagnostic ("" if it is neither).
func errText(pass *analysis.Pass, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" || len(e.Args) != 0 {
			return ""
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			return ""
		}
		if implementsError(tv.Type) {
			return "err.Error() text"
		}
	case *ast.SelectorExpr:
		if e.Sel.Name != "Msg" {
			return ""
		}
		tv, ok := pass.TypesInfo.Types[e.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Name() == "AppError" {
			return "AppError.Msg text"
		}
	}
	return ""
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}
