package errsentinel

import (
	"testing"

	"yesquel/internal/lint/analysistest"
)

func TestErrSentinel(t *testing.T) {
	analysistest.Run(t, Analyzer, "a")
}
