// Package a exercises the errsentinel analyzer.
package a

import (
	"errors"
	"strings"
)

// AppError mirrors rpc.AppError: a wire-crossing error whose Msg is
// rendered text.
type AppError struct {
	Msg  string
	Code uint64
}

func (e *AppError) Error() string { return e.Msg }

var ErrDiverged = errors.New("a: replica histories diverged")

func containsOnError(err error) bool {
	return strings.Contains(err.Error(), "diverged") // want `strings\.Contains on err\.Error\(\) text`
}

func containsSentinelText(err error) bool {
	return strings.Contains(err.Error(), ErrDiverged.Error()) // want `strings\.Contains on err\.Error\(\) text`
}

func matchOnAppErrMsg(app *AppError) bool {
	return strings.Contains(app.Msg, ErrDiverged.Error()) // want `strings\.Contains on AppError\.Msg text`
}

func prefixOnMsg(app AppError) bool {
	return strings.HasPrefix(app.Msg, "kv:") // want `strings\.HasPrefix on AppError\.Msg text`
}

func equalityOnError(err error) bool {
	return err.Error() == "a: replica histories diverged" // want `error compared by err\.Error\(\) text`
}

func inequalityOnError(err error) bool {
	return err.Error() != ErrDiverged.Error() // want `error compared by err\.Error\(\) text`
}

// typedMatch is the sanctioned pattern: no findings.
func typedMatch(err error) bool {
	if errors.Is(err, ErrDiverged) {
		return true
	}
	var app *AppError
	return errors.As(err, &app) && app.Code == 7
}

// emptyMsgCheck is a presence check, not classification: clean.
func emptyMsgCheck(app *AppError) bool { return app.Msg == "" }

// nonErrorStrings keeps ordinary string work clean.
func nonErrorStrings(s string) bool {
	return strings.Contains(s, "x") || s == "y"
}

//yesqlint:allow errsentinel -- sanctioned parser: extracts a structured payload from legacy peers
func sanctionedParser(app *AppError) bool {
	return strings.Contains(app.Msg, ErrDiverged.Error())
}
