// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary, just large enough to
// host the yesqlint analyzers. The build environment this repository
// targets is hermetic — the module has no third-party requirements and
// the toolchain cannot reach a module proxy — so the real x/tools
// framework is unavailable; analyzers written against this package use
// the same shape (Analyzer, Pass, Diagnostic, Reportf) and could be
// ported to the upstream API by changing only import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //yesqlint:allow suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the check to one package and reports findings via
	// pass.Report / pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer, plus module-wide facts the driver collected up front.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the parsed source files of the package under
	// analysis (comments included).
	Files []*ast.File
	// Pkg and TypesInfo are the type-checked forms of Files.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts exposes annotations harvested from every module-local
	// package, so an analyzer can see that e.g. rpc.(*Client).Call is
	// //yesqlint:blocking while analyzing kvserver.
	Facts *Facts
	// Report delivers one diagnostic. The driver owns suppression
	// filtering (//yesqlint:allow) and aggregation.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Facts holds module-wide annotation data collected by the loader
// before any analyzer runs.
type Facts struct {
	// Blocking holds the canonical keys (see FuncKey) of functions
	// annotated //yesqlint:blocking anywhere in the module. Analyzers
	// treat a call to any of these as a blocking operation.
	Blocking map[string]bool
	// Allowed maps canonical function keys to the set of analyzer
	// names suppressed for that whole function via a
	// //yesqlint:allow <name> line in its doc comment.
	Allowed map[string]map[string]bool
}

// FuncKey returns the canonical key for a function object:
// "path.Name" for package functions and "path.(Recv).Name" for
// methods (pointerness of the receiver is erased). The same keys are
// produced syntactically by the loader's annotation scan, which is
// what lets source-level comments in one package act as facts in
// another.
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + ".(" + n.Obj().Name() + ")." + fn.Name()
		}
		return fn.Pkg().Path() + ".(?)." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// SyntacticFuncKey builds the same canonical key from a FuncDecl
// without type information.
func SyntacticFuncKey(pkgPath string, d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) > 0 {
		t := d.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		// Generic receivers (Type[T]) index the underlying name.
		if idx, ok := t.(*ast.IndexExpr); ok {
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return pkgPath + ".(" + id.Name + ")." + d.Name.Name
		}
		return pkgPath + ".(?)." + d.Name.Name
	}
	return pkgPath + "." + d.Name.Name
}
