// Package a exercises the timerloop analyzer: per-iteration timer
// allocations are flagged; the reusable-timer and lazy-init patterns
// are clean.
package a

import "time"

func afterInLoop(ch chan int) {
	for {
		select {
		case <-ch:
			return
		case <-time.After(time.Second): // want `time\.After inside a loop`
		}
	}
}

func newTimerInLoop(ch chan int) {
	for i := 0; i < 10; i++ {
		t := time.NewTimer(time.Second) // want `time\.NewTimer inside a loop`
		select {
		case <-ch:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

func tickInRange(xs []int) {
	for range xs {
		<-time.Tick(time.Millisecond) // want `time\.Tick inside a loop`
	}
}

func tickerInNestedLoop(xs []int) {
	for range xs {
		for {
			t := time.NewTicker(time.Second) // want `time\.NewTicker inside a loop`
			t.Stop()
			return
		}
	}
}

// reusableTimer is the sanctioned shape: one timer allocated before
// the loop, Reset per iteration.
func reusableTimer(ch chan int) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	for {
		select {
		case <-ch:
			return
		case <-t.C:
		}
		t.Reset(time.Second)
	}
}

// lazyInit mirrors Store.Read: the timer variable outlives the loop
// and is allocated at most once, on first need.
func lazyInit(ch chan int, deadline time.Time) {
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if timer == nil {
			timer = time.NewTimer(time.Until(deadline))
		} else {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(time.Until(deadline))
		}
		select {
		case <-ch:
			return
		case <-timer.C:
			return
		}
	}
}

// perIterationRedeclared allocates into a variable scoped to the loop
// body even though the assignment uses =: still per-iteration.
func perIterationRedeclared(ch chan int) {
	for {
		var t *time.Timer
		t = time.NewTimer(time.Second) // want `time\.NewTimer inside a loop`
		select {
		case <-ch:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// funcLitResetsScope: an allocation inside a function literal is that
// function's business, not the enclosing loop's.
func funcLitResetsScope(fns []func()) {
	for range fns {
		f := func() {
			t := time.NewTimer(time.Second)
			t.Stop()
		}
		f()
	}
}

// afterOutsideLoop is clean: no enclosing loop.
func afterOutsideLoop(ch chan int) {
	select {
	case <-ch:
	case <-time.After(time.Second):
	}
}

// allowedAfter demonstrates a line-level suppression.
func allowedAfter(ch chan int) {
	for {
		select {
		case <-ch:
			return
		//yesqlint:allow timerloop -- deliberate: demonstrates suppression
		case <-time.After(time.Second):
		}
	}
}
