// Package timerloop forbids allocating a new timer on every iteration
// of a loop. time.After, time.Tick, and a time.NewTimer/time.NewTicker
// whose result lives only for one iteration each allocate (and, for
// After/Tick, leak until firing) a runtime timer per pass — exactly
// the churn PR 8 removed from Store.Read's bounded-wait loop. The
// sanctioned shape is a single reusable timer declared before the
// loop and Reset per iteration (lazily created on first use is fine:
// the assignment targets a variable that outlives the loop).
//
// Test files are exempt: short-lived timer churn in tests is noise,
// not a hot path.
package timerloop

import (
	"go/ast"
	"go/token"
	"go/types"

	"yesquel/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "timerloop",
	Doc:  "forbid per-iteration timer allocation (time.After / time.NewTimer in for loops); reuse one timer as in Store.Read",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				walk(pass, fd.Body, nil)
			}
		}
	}
	return nil
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	return len(name) >= 8 && name[len(name)-8:] == "_test.go"
}

// walk traverses stmts tracking the stack of enclosing for/range
// loops within one function body. FuncLit bodies restart with an
// empty stack: their execution frequency is not the enclosing loop's.
func walk(pass *analysis.Pass, n ast.Node, loops []ast.Node) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		walk(pass, n.Body, nil)
		return
	case *ast.ForStmt:
		walk(pass, n.Init, loops)
		walkExpr(pass, n.Cond, loops)
		walk(pass, n.Post, loops)
		walk(pass, n.Body, append(loops, n))
		return
	case *ast.RangeStmt:
		walkExpr(pass, n.X, loops)
		walk(pass, n.Body, append(loops, n))
		return
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			checkAssigned(pass, n, rhs, loops)
		}
		return
	case *ast.CallExpr:
		walkCall(pass, n, loops)
		return
	}
	// Generic traversal for everything else, stopping at the node
	// kinds handled above.
	children(n, func(c ast.Node) {
		walk(pass, c, loops)
	})
}

// children invokes fn on each direct child node of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c == nil {
			return false
		}
		fn(c)
		return false
	})
}

// walkExpr scans an expression subtree (no statement structure).
func walkExpr(pass *analysis.Pass, e ast.Expr, loops []ast.Node) {
	if e == nil {
		return
	}
	walk(pass, e, loops)
}

// checkAssigned handles `x = time.NewTimer(...)` / `x := ...`: the
// allocation is fine when x is declared outside every enclosing loop
// (the reuse/lazy-init pattern); otherwise it is per-iteration.
func checkAssigned(pass *analysis.Pass, as *ast.AssignStmt, rhs ast.Expr, loops []ast.Node) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(loops) == 0 {
		walkExpr(pass, rhs, loops)
		return
	}
	kind := timeAlloc(pass, call)
	if kind == "" {
		walkExpr(pass, rhs, loops)
		return
	}
	if kind == "NewTimer" || kind == "NewTicker" {
		if as.Tok == token.ASSIGN && len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && obj.Pos() < loops[0].Pos() {
					return // reusable timer declared before the loop
				}
			}
		}
	}
	report(pass, call, kind)
}

func walkCall(pass *analysis.Pass, call *ast.CallExpr, loops []ast.Node) {
	if len(loops) > 0 {
		if kind := timeAlloc(pass, call); kind != "" {
			report(pass, call, kind)
			return
		}
	}
	for _, a := range call.Args {
		walkExpr(pass, a, loops)
	}
	walkExpr(pass, call.Fun, loops)
}

func report(pass *analysis.Pass, call *ast.CallExpr, kind string) {
	hint := "declare one reusable timer before the loop and Reset it per iteration (see Store.Read)"
	if kind == "After" || kind == "Tick" {
		hint = "each call allocates a timer that lives until it fires; " + hint
	}
	pass.Reportf(call.Pos(), "time.%s inside a loop allocates per iteration: %s", kind, hint)
}

// timeAlloc reports which timer-allocating time function call is,
// or "" if it is none of them.
func timeAlloc(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "time" {
		return ""
	}
	switch sel.Sel.Name {
	case "After", "Tick", "NewTimer", "NewTicker":
		return sel.Sel.Name
	}
	return ""
}
