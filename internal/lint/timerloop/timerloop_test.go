package timerloop

import (
	"testing"

	"yesquel/internal/lint/analysistest"
)

func TestTimerLoop(t *testing.T) {
	analysistest.Run(t, Analyzer, "a")
}
