// Package analysistest runs a yesqlint analyzer over a testdata
// package and checks its diagnostics against // want annotations, in
// the style of golang.org/x/tools/go/analysis/analysistest (which the
// hermetic build environment cannot vendor).
//
// A test package lives at testdata/src/<name> relative to the
// analyzer's directory. Because the go tool skips directories named
// "testdata" when expanding ./..., these packages are invisible to
// ordinary builds and to yesqlint's own repository run, yet remain
// valid, compilable module packages when named explicitly — which is
// what lets the loader type-check them with the real toolchain.
//
// Expectations are trailing comments of the form:
//
//	badCall() // want "regexp"
//	worse()   // want "first" "second"
//
// Each quoted regexp must match one diagnostic reported on that line;
// diagnostics with no matching want, and wants with no matching
// diagnostic, fail the test.
package analysistest

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"yesquel/internal/lint"
	"yesquel/internal/lint/analysis"
)

var wantRE = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")
var wantArgRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run applies analyzer to each named testdata package and reports
// mismatches through t.
func Run(t *testing.T, analyzer *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	for _, name := range pkgNames {
		dir := filepath.Join("testdata", "src", name)
		runOne(t, analyzer, name, dir)
	}
}

func runOne(t *testing.T, analyzer *analysis.Analyzer, name, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	expects, err := collectWants(abs)
	if err != nil {
		t.Fatalf("%s: reading want annotations: %v", name, err)
	}
	findings, err := lint.Run(abs, []*analysis.Analyzer{analyzer}, ".")
	if err != nil {
		t.Fatalf("%s: running %s: %v", name, analyzer.Name, err)
	}
	for _, f := range findings {
		base := filepath.Base(f.Pos.Filename)
		matched := false
		for _, e := range expects {
			if e.met || e.file != base || e.line != f.Pos.Line {
				continue
			}
			if e.re.MatchString(f.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", name, base, f.Pos.Line, f.Message)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", name, e.file, e.line, e.raw)
		}
	}
}

func collectWants(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var expects []*expectation
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for lineNo := 1; sc.Scan(); lineNo++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
				pattern := arg[2] // backtick form, taken verbatim
				if arg[1] != "" || arg[2] == "" {
					pattern = strings.ReplaceAll(arg[1], `\"`, `"`)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					f.Close()
					return nil, err
				}
				expects = append(expects, &expectation{
					file: ent.Name(), line: lineNo, re: re, raw: pattern,
				})
			}
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return expects, nil
}
