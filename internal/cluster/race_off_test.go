//go:build !race

package cluster_test

// raceDetector mirrors race_on_test.go for normal builds.
const raceDetector = false
