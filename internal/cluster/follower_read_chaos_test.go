package cluster_test

// Chaos drills for watermark-gated follower reads. The pinned
// guarantees:
//
//   - A follower read never returns a write that a later failover
//     erases: everything below the durability frontier is held by a
//     majority, so it survives any promotion the group can perform.
//   - A write stranded on a deposed primary (locally applied, never
//     quorum-acked) is never visible through the follower-read path —
//     not before the failover (it is above every frontier) and not
//     after (the new epoch's history never contained it).
//   - A backup detached from the replication stream refuses reads
//     above its own frozen frontier (the client falls back to the
//     primary transparently) while still serving reads at or below it.
//   - A fully idle client keeps a fresh follower-read bound through
//     the heartbeat ping's frontier piggyback, across failovers.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"yesquel/internal/clock"
	"yesquel/internal/cluster"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
)

// waitLease blocks until slot 0's current primary holds a valid quorum
// lease — after a failover, nothing is served until then.
func waitLease(t *testing.T, cl *cluster.Cluster) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cl.Groups[0].Primary.Stats().LeaseValid {
		if time.Now().After(deadline) {
			t.Fatal("new primary never obtained a quorum lease")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitFollowerSnapshot pings slot 0 until the client has learned a
// durability frontier at or above want (0 = any nonzero frontier).
func waitFollowerSnapshot(t *testing.T, c *kvclient.Client, want uint64) uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Ping(context.Background(), 0); err == nil {
			if snap := uint64(c.FollowerSnapshot()); snap > 0 && snap >= want {
				return snap
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never learned a durability frontier >= %d", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFollowerReadNeverErasedByFailover is the headline chaos drill:
// concurrent writers bump per-key counters while follower-reading
// clients watch them and the primary is killed mid-run. Every value a
// follower read RETURNS must survive the failover — for each key, the
// re-formed group's final state must be at least as new as the newest
// value any follower read observed. A violation means a follower
// served a write that the promotion then erased: the exact stale-read
// anomaly the durability watermark exists to make impossible.
func TestFollowerReadNeverErasedByFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos drill (-short)")
	}
	cl, err := cluster.StartReplicated(1, 3, kvserver.Config{LeaseDuration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// One counter object per writer; writers never conflict, so every
	// successful Commit is a strictly newer value for its key.
	const writers = 4
	const readers = 3
	seedc, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer seedc.Close()
	oids := make([]kv.OID, writers)
	for i := range oids {
		oids[i] = seedc.NewOID(0)
		tx := seedc.Begin()
		tx.Put(oids[i], kv.NewPlain([]byte("0")))
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	acked := make([]atomic.Int64, writers)    // newest counter value acked per key
	observed := make([]atomic.Int64, writers) // newest value any follower read returned per key

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := cl.NewClient()
			if err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			defer c.Close()
			for n := int64(1); !stop.Load(); n++ {
				tx := c.Begin()
				tx.Put(oids[w], kv.NewPlain([]byte(strconv.FormatInt(n, 10))))
				err := tx.Commit(ctx)
				switch {
				case err == nil:
					acked[w].Store(n)
				case errors.Is(err, kv.ErrUncertain):
					// Unknown fate: the value may or may not survive; it
					// must not be counted as acked, and a follower may
					// only return it if it did survive — the final-state
					// check below covers both.
				default:
					// Failover window: redirects/lease gaps surface as
					// retried or failed commits. The write did not
					// happen; retry the same n.
					n--
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := cl.NewClient()
			if err != nil {
				t.Errorf("reader %d: %v", r, err)
				return
			}
			defer c.Close()
			c.SetFollowerReads(true)
			c.StartHeartbeat(20 * time.Millisecond)
			for i := 0; !stop.Load(); i++ {
				if c.FollowerSnapshot() == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				k := i % writers
				tx := c.BeginFollower()
				v, err := tx.Read(ctx, oids[k])
				if err != nil {
					// Failover window: a read can fail while the group
					// re-forms; correctness is about what reads RETURN,
					// not that every read succeeds.
					continue
				}
				n, err := strconv.ParseInt(string(v.Data), 10, 64)
				if err != nil {
					t.Errorf("reader %d: non-counter value %q", r, v.Data)
					return
				}
				for {
					cur := observed[k].Load()
					if n <= cur || observed[k].CompareAndSwap(cur, n) {
						break
					}
				}
			}
		}(r)
	}

	time.Sleep(300 * time.Millisecond)
	if err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// Settle, then check: the surviving group's state must be at least
	// as new as anything a follower read ever returned (no erased
	// writes), and at least as new as everything acked (no lost acks).
	verify, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	waitLease(t, cl)
	check := verify.Begin()
	defer check.Abort()
	for k := 0; k < writers; k++ {
		v, err := check.Read(ctx, oids[k])
		if err != nil {
			t.Fatalf("final read of key %d: %v", k, err)
		}
		final, err := strconv.ParseInt(string(v.Data), 10, 64)
		if err != nil {
			t.Fatalf("final value of key %d: %q", k, v.Data)
		}
		if obs := observed[k].Load(); final < obs {
			t.Fatalf("key %d: follower read returned %d but the failover left %d — a follower served an erased write", k, obs, final)
		}
		if ack := acked[k].Load(); final < ack {
			t.Fatalf("key %d: acked %d but the failover left %d — an acknowledged write was lost", k, ack, final)
		}
	}
}

// TestStrandedWriteInvisibleToFollowerReads pins read-your-writes
// hygiene across a failover: a write the old primary applied locally
// but never got quorum-acked (its mirror batches died unsent) must
// never surface through a follower read — before the failover it sits
// above every durability frontier, and after it the new epoch's
// history simply never contained it.
func TestStrandedWriteInvisibleToFollowerReads(t *testing.T) {
	cl, err := cluster.StartReplicated(1, 3, kvserver.Config{LeaseDuration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		tx := c.Begin()
		tx.Put(c.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("pre-%d", i))))
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}

	old, err := cl.IsolatePrimary(0)
	if err != nil {
		t.Fatal(err)
	}
	// Strand a write on the deposed primary: the store-level commit
	// bypasses the client gate, applies locally, and fails its
	// durability wait (the group is unreachable).
	oldStore := old.Store()
	strandedOID := kv.MakeOID(0, 1<<52)
	if _, err := oldStore.FastCommit(1<<52, oldStore.Clock().Now(), []*kv.Op{
		{Kind: kv.OpPut, OID: strandedOID, Value: kv.NewPlain([]byte("stranded"))},
	}); err == nil {
		t.Fatal("isolated primary acknowledged a write")
	}

	// Follower reads through the re-formed group: the stranded write
	// must not exist at ANY snapshot the follower path will serve.
	waitLease(t, cl)
	r, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetFollowerReads(true)
	waitFollowerSnapshot(t, r, 0)
	for i := 0; i < 20; i++ {
		tx := r.BeginFollower()
		if v, err := tx.Read(ctx, strandedOID); err == nil {
			t.Fatalf("follower read returned stranded write %q: a value no quorum ever held", v.Data)
		} else if !errors.Is(err, kv.ErrNotFound) {
			t.Fatalf("follower read of stranded oid: %v, want ErrNotFound", err)
		}
		// Keep the group moving so the frontier keeps advancing past
		// fresh commits while we probe.
		tx2 := r.Begin()
		tx2.Put(r.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("post-%d", i))))
		if err := tx2.Commit(ctx); err != nil && !errors.Is(err, kv.ErrUncertain) {
			t.Fatal(err)
		}
	}
	if got := cl.Stats().FollowerReads; got == 0 {
		t.Fatal("probe reads never exercised the follower path")
	}
}

// TestDetachedBackupRefusesReadsAboveItsFrontier pins the stale-backup
// bound: a backup cut off from the replication stream keeps serving
// snapshots at or below the frontier its frozen watermark vouches for,
// and refuses anything newer — the client falls back to the primary
// transparently, so staleness is bounded by the backup's own
// durability knowledge, never by the client's optimism.
func TestDetachedBackupRefusesReadsAboveItsFrontier(t *testing.T) {
	cl, err := cluster.StartReplicated(1, 3, kvserver.Config{LeaseDuration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	g := cl.Groups[0]
	detached := g.Backups[1]

	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	oldOID := c.NewOID(0)
	tx := c.Begin()
	tx.Put(oldOID, kv.NewPlain([]byte("old")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// A frontier the detached backup will still be able to vouch for:
	// wait until the whole group (lease renewals carry the watermark)
	// has seen the pre-detach commit become quorum-durable.
	preDetach := waitFollowerSnapshot(t, c, 0)
	detachDeadline := time.Now().Add(5 * time.Second)
	for uint64(detached.Store().DurableFrontier()) < preDetach {
		if time.Now().After(detachDeadline) {
			t.Fatalf("backup frontier %d never reached %d", detached.Store().DurableFrontier(), preDetach)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Cut the backup off and move the group past it.
	g.Primary.DetachBackupMember(detached.Addr())
	newOID := c.NewOID(0)
	tx = c.Begin()
	tx.Put(newOID, kv.NewPlain([]byte("new")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	postDetach := waitFollowerSnapshot(t, c, preDetach+1)

	// A reader whose only known backup is the detached one: reads at
	// the fresh frontier must be REFUSED by the backup (its own
	// frontier froze at detach) and fall back to the primary for the
	// right answer — the client's optimism never buys a stale read.
	r, err := kvclient.OpenReplicated([][]string{{g.Primary.Addr(), detached.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetFollowerReads(true)
	waitFollowerSnapshot(t, r, postDetach)

	before := detached.Store().Stats().FollowerReads
	tx2 := r.BeginFollower()
	if uint64(tx2.Snapshot()) < postDetach {
		t.Fatalf("follower snapshot %d below the learned frontier %d", tx2.Snapshot(), postDetach)
	}
	v, err := tx2.Read(ctx, newOID)
	if err != nil || string(v.Data) != "new" {
		t.Fatalf("read at fresh frontier through stale backup: %v %v (want transparent primary fallback)", v, err)
	}
	if got := detached.Store().Stats().FollowerReads; got != before {
		t.Fatalf("detached backup served %d reads above its frozen frontier", got-before)
	}

	// The bound itself, at the store gate: above the frozen frontier the
	// detached backup refuses (typed redirect), at or below it it still
	// serves — staleness is bounded by the backup's own durability
	// knowledge.
	st := detached.Store()
	if err := st.CheckClientRead(0, clock.Timestamp(postDetach)); err == nil {
		t.Fatal("detached backup accepted a read above its frozen frontier")
	} else if !errors.Is(err, kv.ErrWrongEpoch) {
		t.Fatalf("refusal above the frontier: %v, want a wrong-epoch redirect", err)
	}
	if err := st.CheckClientRead(0, clock.Timestamp(preDetach)); err != nil {
		t.Fatalf("detached backup refused a read at its own frontier: %v", err)
	}
	if got := st.Stats().FollowerReads; got != before+1 {
		t.Fatalf("detached backup FollowerReads %d, want %d", got, before+1)
	}
}

// TestIdleClientHeartbeatLearnsFrontier pins the heartbeat piggyback:
// a client that never reads or writes still learns the durability
// frontier from its periodic pings — including across a failover — so
// its FIRST follower read routes correctly instead of starting from a
// cold (or stale-epoch) view.
func TestIdleClientHeartbeatLearnsFrontier(t *testing.T) {
	cl, err := cluster.StartReplicated(1, 3, kvserver.Config{LeaseDuration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	w, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	oid := w.NewOID(0)
	tx := w.Begin()
	tx.Put(oid, kv.NewPlain([]byte("v1")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// The idle client: heartbeat only, no traffic.
	idle, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	idle.SetFollowerReads(true)
	idle.StartHeartbeat(20 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for idle.FollowerSnapshot() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle client's heartbeat never learned a durability frontier")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Failover while the client stays idle; its heartbeat must carry it
	// to the new epoch AND keep the frontier fresh enough to cover the
	// pre-failover write.
	preFailover := uint64(idle.FollowerSnapshot())
	if err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}
	waitLease(t, cl)
	deadline = time.Now().Add(5 * time.Second)
	for {
		tx = w.Begin()
		tx.Put(oid, kv.NewPlain([]byte("v2")))
		if err := tx.Commit(ctx); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("write after failover never succeeded: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	deadline = time.Now().Add(5 * time.Second)
	for uint64(idle.FollowerSnapshot()) <= preFailover {
		if time.Now().After(deadline) {
			t.Fatal("idle client's frontier never advanced past the failover")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Let the surviving backup's watermark copy (it rides lease
	// renewals while the group is idle) catch up to what the client
	// learned, so the first read routes to the follower rather than
	// falling back on the piggyback race.
	snap := uint64(idle.FollowerSnapshot())
	deadline = time.Now().Add(5 * time.Second)
	for uint64(cl.Groups[0].Backups[0].Store().DurableFrontier()) < snap {
		if time.Now().After(deadline) {
			t.Fatal("surviving backup's frontier never caught up to the client's")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// First-ever read from the idle client: the follower path must
	// serve it and see the post-failover value.
	before := cl.Stats().FollowerReads
	rtx := idle.BeginFollower()
	v, err := rtx.Read(ctx, oid)
	if err != nil || string(v.Data) != "v2" {
		t.Fatalf("idle client's first follower read: %v %v, want v2", v, err)
	}
	if got := cl.Stats().FollowerReads; got == before {
		t.Fatal("idle client's first read was not served by the follower path")
	}
}
