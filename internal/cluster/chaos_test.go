package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"yesquel/internal/cluster"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvserver"
	"yesquel/internal/rpc"
)

// ackedWrite is one write whose Commit returned nil: the system
// promised it, so it must survive any single failure.
type ackedWrite struct {
	oid kv.OID
	val string
}

// TestKillPrimaryUnderLoadLosesNoAckedWrite is the headline replication
// guarantee: a YCSB-style insert workload runs against a replicated
// cluster, the primary of slot 0 is killed mid-stream, the clients fail
// over to the backup, and every single acknowledged write is still
// readable afterwards. Commits whose acknowledgment was lost in the
// crash surface kv.ErrUncertain and are allowed to have gone either way.
func TestKillPrimaryUnderLoadLosesNoAckedWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos drill (-short)")
	}
	cl, err := cluster.StartReplicated(2, 2, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	const workers = 8
	const writesPerWorker = 120
	const killAfter = 30 // per worker, before the primary dies

	var mu sync.Mutex
	var acked []ackedWrite
	var uncertain, failed int

	killed := make(chan struct{})
	var killOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := cl.NewClient()
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < writesPerWorker; i++ {
				if i == killAfter && w == 0 {
					killOnce.Do(func() {
						if err := cl.KillPrimary(0); err != nil {
							t.Errorf("kill primary: %v", err)
						}
						close(killed)
					})
				}
				// Spread writes over both slots; slot 0 is the one that
				// fails over mid-run.
				oid := c.NewOID(uint16(i % 2))
				val := fmt.Sprintf("w%d-%d", w, i)
				tx := c.Begin()
				tx.Put(oid, kv.NewPlain([]byte(val)))
				err := tx.Commit(ctx)
				mu.Lock()
				switch {
				case err == nil:
					acked = append(acked, ackedWrite{oid, val})
				case errors.Is(err, kv.ErrUncertain):
					uncertain++
				default:
					failed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	select {
	case <-killed:
	default:
		t.Fatal("workload finished before the primary was killed")
	}
	if len(acked) < workers*writesPerWorker/2 {
		t.Fatalf("only %d/%d writes acknowledged (uncertain=%d failed=%d)",
			len(acked), workers*writesPerWorker, uncertain, failed)
	}
	t.Logf("acked=%d uncertain=%d failed=%d", len(acked), uncertain, failed)

	// Every acknowledged write must be readable after the failover —
	// through a fresh client that only knows the surviving replicas.
	verify, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	check := verify.Begin()
	defer check.Abort()
	lost := 0
	for _, aw := range acked {
		v, err := check.Read(ctx, aw.oid)
		if err != nil || string(v.Data) != aw.val {
			lost++
			t.Errorf("acknowledged write %v=%q lost: %v %v", aw.oid, aw.val, v, err)
			if lost > 5 {
				t.Fatal("... giving up")
			}
		}
	}

	// Restart re-forms the pair: a fresh backup streams the whole
	// history from the acting primary and resumes mirroring.
	if err := cl.Restart(0); err != nil {
		t.Fatal(err)
	}
	g := cl.Groups[0]
	if len(g.Backups) == 0 {
		t.Fatal("no backup after Restart")
	}
	if got, want := g.Backups[0].Store().StateDigest(), g.Primary.Store().StateDigest(); got != want {
		t.Fatalf("restarted backup digest %x != acting primary digest %x", got, want)
	}

	// New writes reach the re-formed pair synchronously.
	tx := verify.Begin()
	oid := verify.NewOID(0)
	tx.Put(oid, kv.NewPlain([]byte("post-restart")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := g.Backups[0].Store().StateDigest(), g.Primary.Store().StateDigest(); got != want {
		t.Fatalf("after post-restart write: backup digest %x != primary digest %x", got, want)
	}
}

// TestRestartWhileWritesContinue re-forms a pair while the workload is
// still running: the new backup's catch-up stream and the primary's
// live mirror interleave, and sequence-order buffering must keep the
// replicas identical.
func TestRestartWhileWritesContinue(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos drill (-short)")
	}
	cl, err := cluster.StartReplicated(1, 2, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 40; i++ {
		tx := c.Begin()
		tx.Put(c.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("pre-%d", i))))
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}

	// Writers hammer the acting primary while the pair re-forms.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc, err := cl.NewClient()
			if err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			defer wc.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := wc.Begin()
				tx.Put(wc.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("live-%d-%d", w, i))))
				if err := tx.Commit(ctx); err != nil && !errors.Is(err, kv.ErrUncertain) {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	if err := cl.Restart(0); err != nil {
		close(stop)
		wg.Wait()
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	g := cl.Groups[0]
	if got, want := g.Backups[0].Store().ReplSeq(), g.Primary.Store().ReplSeq(); got != want {
		t.Fatalf("backup seq %d != primary seq %d", got, want)
	}
	if got, want := g.Backups[0].Store().StateDigest(), g.Primary.Store().StateDigest(); got != want {
		t.Fatalf("backup digest %x != primary digest %x", got, want)
	}
}

// TestKillPrimaryBetweenVoteAndPhaseTwo is the 2PC outcome-recovery
// headline through the real client path: a cross-slot transaction's
// participant primary dies after voting yes but before phase two. The
// prepare was replicated with the vote, so the promoted backup holds
// the staged transaction, the coordinator drives the commit decision
// onto it, and the transaction lands atomically on every slot.
func TestKillPrimaryBetweenVoteAndPhaseTwo(t *testing.T) {
	cl, err := cluster.StartReplicated(2, 2, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	oidA, oidB := c.NewOID(0), c.NewOID(1)
	tx := c.Begin()
	tx.Put(oidA, kv.NewPlain([]byte("atomic-a")))
	tx.Put(oidB, kv.NewPlain([]byte("atomic-b")))
	tx.TestHookAfterVote = func() {
		// Both participants voted yes (slot 0's prepare is already on
		// its backup); now slot 0's primary dies before any phase-two
		// request is sent.
		if err := cl.KillPrimary(0); err != nil {
			t.Errorf("kill primary: %v", err)
		}
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatalf("commit across the failover: %v", err)
	}

	// Atomically applied: both halves visible through a fresh client
	// that only knows the surviving replicas.
	verify, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	check := verify.Begin()
	defer check.Abort()
	if v, err := check.Read(ctx, oidA); err != nil || string(v.Data) != "atomic-a" {
		t.Fatalf("slot-0 half after failover: %v %v", v, err)
	}
	if v, err := check.Read(ctx, oidB); err != nil || string(v.Data) != "atomic-b" {
		t.Fatalf("slot-1 half after failover: %v %v", v, err)
	}

	// The re-formed pair streams the prepare and decision records and
	// converges byte for byte.
	if err := cl.Restart(0); err != nil {
		t.Fatal(err)
	}
	g := cl.Groups[0]
	if got, want := g.Backups[0].Store().StateDigest(), g.Primary.Store().StateDigest(); got != want {
		t.Fatalf("re-formed backup digest %x != primary digest %x", got, want)
	}
}

// raw2PC drives two-phase commit by hand over raw RPC connections, so
// the test controls exactly when each phase-two request is sent
// relative to a primary kill. It returns the chosen commit timestamp.
func raw2PC(t *testing.T, cl *cluster.Cluster, txid uint64, start kv.Timestamp, ops map[int][]*kv.Op) kv.Timestamp {
	t.Helper()
	ctx := context.Background()
	var commitTS kv.Timestamp
	for slot, slotOps := range ops {
		conn, err := rpc.Dial(cl.Addrs[slot])
		if err != nil {
			t.Fatal(err)
		}
		req := kv.PrepareReq{TxID: txid, Start: start, Ops: slotOps}
		respB, err := conn.Call(ctx, kv.MethodPrepare, req.Encode())
		conn.Close()
		if err != nil {
			t.Fatalf("prepare on slot %d: %v", slot, err)
		}
		resp, err := kv.DecodePrepareResp(respB)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			t.Fatalf("prepare on slot %d voted no", slot)
		}
		if resp.Proposed > commitTS {
			commitTS = resp.Proposed
		}
	}
	return commitTS
}

// sendCommit delivers one phase-two CommitReq to addr and returns the
// RPC error (nil = acknowledged).
func sendCommit(t *testing.T, addr string, txid uint64, commitTS kv.Timestamp) error {
	t.Helper()
	conn, err := rpc.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	_, err = conn.Call(context.Background(), kv.MethodCommit, (&kv.CommitReq{TxID: txid, CommitTS: commitTS}).Encode())
	return err
}

// TestRaw2PCKillBeforeDecision is scenario (a) at the protocol level:
// the participant primary dies after its vote, the coordinator drives
// the decision to the promoted backup (which staged the prepare from
// the mirror stream), and a duplicate decision is acknowledged from
// the decided-transaction table. A second transaction is aborted after
// the failover and must be fully invisible.
func TestRaw2PCKillBeforeDecision(t *testing.T) {
	cl, err := cluster.StartReplicated(2, 2, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	oidA, oidB := kv.MakeOID(0, 1001), kv.MakeOID(1, 1002)
	start := cl.Servers[0].Store().Clock().Now()
	const txid = uint64(7_000_001)
	commitTS := raw2PC(t, cl, txid, start, map[int][]*kv.Op{
		0: {{Kind: kv.OpPut, OID: oidA, Value: kv.NewPlain([]byte("ra"))}},
		1: {{Kind: kv.OpPut, OID: oidB, Value: kv.NewPlain([]byte("rb"))}},
	})

	// The vote is in; slot 0's primary dies before the decision.
	if err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}
	promoted := cl.Groups[0].Primary.Store()
	if !promoted.IsLocked(oidA) {
		t.Fatal("promoted backup does not hold the replicated prepare")
	}

	// Drive the decision to every participant — slot 0's is now the
	// promoted backup.
	if err := sendCommit(t, cl.Addrs[0], txid, commitTS); err != nil {
		t.Fatalf("decision on promoted backup: %v", err)
	}
	if err := sendCommit(t, cl.Addrs[1], txid, commitTS); err != nil {
		t.Fatalf("decision on slot 1: %v", err)
	}
	// The acceptance check: a retried decision for a decided txid is an
	// acknowledgment, not an error.
	for slot := 0; slot < 2; slot++ {
		if err := sendCommit(t, cl.Addrs[slot], txid, commitTS); err != nil {
			t.Fatalf("replayed decision on slot %d: %v", slot, err)
		}
	}

	verify, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	check := verify.Begin()
	if v, err := check.Read(ctx, oidA); err != nil || string(v.Data) != "ra" {
		t.Fatalf("slot-0 half: %v %v", v, err)
	}
	if v, err := check.Read(ctx, oidB); err != nil || string(v.Data) != "rb" {
		t.Fatalf("slot-1 half: %v %v", v, err)
	}
	check.Abort()

	// An in-flight transaction aborted after the failover is fully
	// invisible and leaves no locks.
	oidC, oidD := kv.MakeOID(0, 2001), kv.MakeOID(1, 2002)
	const txid2 = uint64(7_000_002)
	raw2PC(t, cl, txid2, verify.Clock().Now(), map[int][]*kv.Op{
		0: {{Kind: kv.OpPut, OID: oidC, Value: kv.NewPlain([]byte("never"))}},
		1: {{Kind: kv.OpPut, OID: oidD, Value: kv.NewPlain([]byte("never"))}},
	})
	for slot := 0; slot < 2; slot++ {
		conn, err := rpc.Dial(cl.Addrs[slot])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Call(ctx, kv.MethodAbort, (&kv.AbortReq{TxID: txid2}).Encode()); err != nil {
			t.Fatalf("abort on slot %d: %v", slot, err)
		}
		conn.Close()
	}
	check2 := verify.Begin()
	defer check2.Abort()
	if _, err := check2.Read(ctx, oidC); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("aborted half visible on slot 0: %v", err)
	}
	if _, err := check2.Read(ctx, oidD); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("aborted half visible on slot 1: %v", err)
	}
	if promoted.IsLocked(oidC) || cl.Servers[1].Store().IsLocked(oidD) {
		t.Fatal("aborted transaction stranded locks")
	}
}

// TestRaw2PCKillDuringPhaseTwo is scenario (b): the participant
// primary applies the commit decision (mirroring it to the backup) and
// dies before the coordinator's acknowledgment arrives. The retried
// decision onto the promoted backup is answered from the mirrored
// decided-transaction state — acknowledged, applied exactly once.
func TestRaw2PCKillDuringPhaseTwo(t *testing.T) {
	cl, err := cluster.StartReplicated(2, 2, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	oidA, oidB := kv.MakeOID(0, 3001), kv.MakeOID(1, 3002)
	start := cl.Servers[0].Store().Clock().Now()
	const txid = uint64(7_000_003)
	commitTS := raw2PC(t, cl, txid, start, map[int][]*kv.Op{
		0: {{Kind: kv.OpPut, OID: oidA, Value: kv.NewPlain([]byte("pa"))}},
		1: {{Kind: kv.OpPut, OID: oidB, Value: kv.NewPlain([]byte("pb"))}},
	})

	// Phase two reaches slot 0's primary (the decision is mirrored to
	// the backup), then the primary dies — from the coordinator's view
	// the acknowledgment may have been lost, so it retries.
	if err := sendCommit(t, cl.Addrs[0], txid, commitTS); err != nil {
		t.Fatalf("first decision on slot 0: %v", err)
	}
	if err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}
	if err := sendCommit(t, cl.Addrs[0], txid, commitTS); err != nil {
		t.Fatalf("retried decision on promoted backup: %v", err)
	}
	if err := sendCommit(t, cl.Addrs[1], txid, commitTS); err != nil {
		t.Fatalf("decision on slot 1: %v", err)
	}

	promoted := cl.Groups[0].Primary.Store()
	if n := promoted.VersionCount(oidA); n != 1 {
		t.Fatalf("retried decision applied %d times", n)
	}
	verify, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	check := verify.Begin()
	defer check.Abort()
	if v, err := check.Read(ctx, oidA); err != nil || string(v.Data) != "pa" {
		t.Fatalf("slot-0 half: %v %v", v, err)
	}
	if v, err := check.Read(ctx, oidB); err != nil || string(v.Data) != "pb" {
		t.Fatalf("slot-1 half: %v %v", v, err)
	}
}
