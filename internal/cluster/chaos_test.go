package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"yesquel/internal/cluster"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvserver"
)

// ackedWrite is one write whose Commit returned nil: the system
// promised it, so it must survive any single failure.
type ackedWrite struct {
	oid kv.OID
	val string
}

// TestKillPrimaryUnderLoadLosesNoAckedWrite is the headline replication
// guarantee: a YCSB-style insert workload runs against a replicated
// cluster, the primary of slot 0 is killed mid-stream, the clients fail
// over to the backup, and every single acknowledged write is still
// readable afterwards. Commits whose acknowledgment was lost in the
// crash surface kv.ErrUncertain and are allowed to have gone either way.
func TestKillPrimaryUnderLoadLosesNoAckedWrite(t *testing.T) {
	cl, err := cluster.StartReplicated(2, 2, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	const workers = 8
	const writesPerWorker = 120
	const killAfter = 30 // per worker, before the primary dies

	var mu sync.Mutex
	var acked []ackedWrite
	var uncertain, failed int

	killed := make(chan struct{})
	var killOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := cl.NewClient()
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < writesPerWorker; i++ {
				if i == killAfter && w == 0 {
					killOnce.Do(func() {
						if err := cl.KillPrimary(0); err != nil {
							t.Errorf("kill primary: %v", err)
						}
						close(killed)
					})
				}
				// Spread writes over both slots; slot 0 is the one that
				// fails over mid-run.
				oid := c.NewOID(uint16(i % 2))
				val := fmt.Sprintf("w%d-%d", w, i)
				tx := c.Begin()
				tx.Put(oid, kv.NewPlain([]byte(val)))
				err := tx.Commit(ctx)
				mu.Lock()
				switch {
				case err == nil:
					acked = append(acked, ackedWrite{oid, val})
				case errors.Is(err, kv.ErrUncertain):
					uncertain++
				default:
					failed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	select {
	case <-killed:
	default:
		t.Fatal("workload finished before the primary was killed")
	}
	if len(acked) < workers*writesPerWorker/2 {
		t.Fatalf("only %d/%d writes acknowledged (uncertain=%d failed=%d)",
			len(acked), workers*writesPerWorker, uncertain, failed)
	}
	t.Logf("acked=%d uncertain=%d failed=%d", len(acked), uncertain, failed)

	// Every acknowledged write must be readable after the failover —
	// through a fresh client that only knows the surviving replicas.
	verify, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	check := verify.Begin()
	defer check.Abort()
	lost := 0
	for _, aw := range acked {
		v, err := check.Read(ctx, aw.oid)
		if err != nil || string(v.Data) != aw.val {
			lost++
			t.Errorf("acknowledged write %v=%q lost: %v %v", aw.oid, aw.val, v, err)
			if lost > 5 {
				t.Fatal("... giving up")
			}
		}
	}

	// Restart re-forms the pair: a fresh backup streams the whole
	// history from the acting primary and resumes mirroring.
	if err := cl.Restart(0); err != nil {
		t.Fatal(err)
	}
	g := cl.Groups[0]
	if g.Backup == nil {
		t.Fatal("no backup after Restart")
	}
	if got, want := g.Backup.Store().StateDigest(), g.Primary.Store().StateDigest(); got != want {
		t.Fatalf("restarted backup digest %x != acting primary digest %x", got, want)
	}

	// New writes reach the re-formed pair synchronously.
	tx := verify.Begin()
	oid := verify.NewOID(0)
	tx.Put(oid, kv.NewPlain([]byte("post-restart")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := g.Backup.Store().StateDigest(), g.Primary.Store().StateDigest(); got != want {
		t.Fatalf("after post-restart write: backup digest %x != primary digest %x", got, want)
	}
}

// TestRestartWhileWritesContinue re-forms a pair while the workload is
// still running: the new backup's catch-up stream and the primary's
// live mirror interleave, and sequence-order buffering must keep the
// replicas identical.
func TestRestartWhileWritesContinue(t *testing.T) {
	cl, err := cluster.StartReplicated(1, 2, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 40; i++ {
		tx := c.Begin()
		tx.Put(c.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("pre-%d", i))))
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}

	// Writers hammer the acting primary while the pair re-forms.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc, err := cl.NewClient()
			if err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			defer wc.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := wc.Begin()
				tx.Put(wc.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("live-%d-%d", w, i))))
				if err := tx.Commit(ctx); err != nil && !errors.Is(err, kv.ErrUncertain) {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	if err := cl.Restart(0); err != nil {
		close(stop)
		wg.Wait()
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	g := cl.Groups[0]
	if got, want := g.Backup.Store().ReplSeq(), g.Primary.Store().ReplSeq(); got != want {
		t.Fatalf("backup seq %d != primary seq %d", got, want)
	}
	if got, want := g.Backup.Store().StateDigest(), g.Primary.Store().StateDigest(); got != want {
		t.Fatalf("backup digest %x != primary digest %x", got, want)
	}
}
