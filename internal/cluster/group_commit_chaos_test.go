package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"yesquel/internal/cluster"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvserver"
)

// TestGroupCommitAmortizesMirrorAndFsync is the group-commit
// effectiveness check on a full replicated slot with a durable log:
// 8 concurrent writers, every commit both mirrored and fsynced before
// its acknowledgment — yet the batch counters must show strictly fewer
// mirror round trips and strictly fewer fsyncs than commits (the
// amortization), while primary and backup still end byte-identical
// (batching never reorders or splices the stream).
func TestGroupCommitAmortizesMirrorAndFsync(t *testing.T) {
	dir := t.TempDir()
	// A small group-commit window makes the amortization deterministic:
	// without it, batching depends on commits colliding during the
	// previous batch's round trip, which a starved single-CPU host
	// (e.g. the full suite running package tests in parallel) can
	// serialize into one fsync per commit.
	cl, err := cluster.StartReplicated(1, 2, kvserver.Config{
		LogPath: dir, LogSync: true, GroupCommitInterval: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := cl.NewClient()
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < perWorker; i++ {
				tx := c.Begin()
				tx.Put(c.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("w%d-%d", w, i))))
				if err := tx.Commit(ctx); err != nil {
					t.Errorf("worker %d commit %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	g := cl.Groups[0]
	if got, want := g.Backups[0].Store().StateDigest(), g.Primary.Store().StateDigest(); got != want {
		t.Fatalf("after group-commit load: backup digest %x != primary digest %x", got, want)
	}
	const commits = workers * perWorker
	st := g.Primary.Store().Stats()
	if st.Commits+st.FastCommits != commits {
		t.Fatalf("commit counters %d+%d != %d", st.Commits, st.FastCommits, commits)
	}
	if st.MirrorBatches == 0 || st.MirrorBatches >= commits {
		t.Fatalf("mirror batches = %d for %d commits: no batching happened", st.MirrorBatches, commits)
	}
	if st.WALSyncs == 0 || st.WALSyncs >= commits {
		t.Fatalf("wal syncs = %d for %d commits under -log-sync: fsyncs not amortized", st.WALSyncs, commits)
	}
	if st.WALFailures != 0 {
		t.Fatalf("wal failures: %d", st.WALFailures)
	}
	t.Logf("commits=%d mirror_batches=%d (depth %.1f) wal_syncs=%d (%.2f fsync/commit)",
		commits, st.MirrorBatches, float64(st.MirrorBatchRecords)/float64(st.MirrorBatches),
		st.WALSyncs, float64(st.WALSyncs)/float64(commits))
}

// TestGroupCommitIsolatedPrimaryLosesNoAckedWrite blackholes the
// primary's outbound replication in the middle of a concurrent
// group-commit workload — batches in flight and queued records die
// unsent — then promotes the backup. The pinned guarantees:
//
//   - Zero acked-write loss: every commit acknowledged before or after
//     the partition is readable after the failover. An ack is only
//     ever issued once the record's batch was applied by the backup,
//     so the blackhole can strand records on the isolated primary but
//     never an acknowledged one.
//   - The isolated primary's stranded records (locally committed,
//     never acknowledged) make its stream HEAD run ahead of the new
//     epoch's: any attempt to resync it as a backup must fail loudly
//     with kv.ErrDiverged, never splice.
func TestGroupCommitIsolatedPrimaryLosesNoAckedWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos drill (-short)")
	}
	cl, err := cluster.StartReplicated(1, 2, kvserver.Config{LeaseDuration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	const workers = 8
	const writesPerWorker = 80
	const isolateAfter = 25 // on worker 0

	var mu sync.Mutex
	var acked []ackedWrite
	var uncertain, failed int
	var old *kvserver.Server
	var isolateOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := cl.NewClient()
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < writesPerWorker; i++ {
				if w == 0 && i == isolateAfter {
					isolateOnce.Do(func() {
						o, err := cl.IsolatePrimary(0)
						if err != nil {
							t.Errorf("isolate primary: %v", err)
							return
						}
						old = o
					})
				}
				oid := c.NewOID(0)
				val := fmt.Sprintf("w%d-%d", w, i)
				tx := c.Begin()
				tx.Put(oid, kv.NewPlain([]byte(val)))
				err := tx.Commit(ctx)
				mu.Lock()
				switch {
				case err == nil:
					acked = append(acked, ackedWrite{oid, val})
				case errors.Is(err, kv.ErrUncertain):
					uncertain++
				default:
					failed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if old == nil {
		t.Fatal("workload finished before the primary was isolated")
	}
	if len(acked) == 0 || failed+uncertain == 0 {
		t.Fatalf("degenerate run: acked=%d uncertain=%d failed=%d", len(acked), uncertain, failed)
	}
	t.Logf("acked=%d uncertain=%d failed=%d", len(acked), uncertain, failed)

	// Every acknowledged write survives on the new epoch's primary.
	verify, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	check := verify.Begin()
	defer check.Abort()
	for _, aw := range acked {
		v, err := check.Read(ctx, aw.oid)
		if err != nil || string(v.Data) != aw.val {
			t.Fatalf("acknowledged write %v=%q lost after failover: %v %v", aw.oid, aw.val, v, err)
		}
	}

	// Strand records on the isolated old primary until its stream head
	// is provably ahead of the new epoch's: direct store-level commits
	// bypass the epoch/lease gate, emit into its local stream, and then
	// fail awaiting replication (every batch dies unsent). None of
	// these records exist in the new epoch's stream.
	oldStore := old.Store()
	newPrimary := cl.Groups[0].Primary
	for txid := uint64(1 << 50); oldStore.ReplSeq() <= newPrimary.Store().ReplSeq()+2; txid++ {
		if _, err := oldStore.FastCommit(txid, oldStore.Clock().Now(), []*kv.Op{
			{Kind: kv.OpPut, OID: kv.MakeOID(0, txid), Value: kv.NewPlain([]byte("stranded"))},
		}); err == nil {
			t.Fatal("isolated primary acknowledged a write")
		}
	}

	// Any attempt to resync the diverged old primary from the new one
	// must be refused loudly — its stranded records were never in the
	// new epoch's stream, and syncing past them would splice histories.
	err = old.SyncFrom(newPrimary.Addr(), 0)
	if err == nil || !errors.Is(err, kv.ErrDiverged) && !strings.Contains(err.Error(), kv.ErrDiverged.Error()) {
		t.Fatalf("resync of diverged old primary: %v, want kv.ErrDiverged", err)
	}
}
