package cluster_test

import (
	"context"
	"testing"

	"yesquel/internal/cluster"
	"yesquel/internal/core"
	"yesquel/internal/kv/kvserver"
)

// TestClusterRestartWithWAL exercises whole-cluster durability: a SQL
// database written before a full restart is intact afterwards.
func TestClusterRestartWithWAL(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cfg := kvserver.Config{LogPath: dir, LogSync: false}

	cl, err := cluster.Start(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	yc, err := core.Connect(cl.Addrs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := yc.Session()
	for _, q := range []string{
		"CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)",
		"CREATE INDEX t_v ON t (v)",
		"INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'one')",
	} {
		if _, err := db.Exec(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	yc.Close()
	cl.Close()

	// Restart on the same logs. (Addresses change; clients reconnect.)
	cl2, err := cluster.Start(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	yc2, err := core.Connect(cl2.Addrs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer yc2.Close()
	db2 := yc2.Session()
	rows, err := db2.Query(ctx, "SELECT count(*) FROM t WHERE v = 'one'")
	if err != nil {
		t.Fatal(err)
	}
	if rows.All()[0][0].I != 2 {
		t.Fatalf("recovered index query: %+v", rows.All())
	}
	// The recovered cluster accepts new writes.
	if _, err := db2.Exec(ctx, "INSERT INTO t VALUES (4, 'four')"); err != nil {
		t.Fatal(err)
	}
	rows, err = db2.Query(ctx, "SELECT count(*) FROM t")
	if err != nil || rows.All()[0][0].I != 4 {
		t.Fatalf("post-recovery write: %+v %v", rows.All(), err)
	}
}
