package cluster_test

// Chaos drills for quorum replication groups (rf >= 3) and for the
// diverged-but-behind resync splice — the failure the per-record epoch
// check closes. The pinned guarantees:
//
//   - A replica whose history DIVERGED from the group's — even one
//     whose stream head is BEHIND the group's, so sequence-number
//     checks alone would pass — is rejected with kv.ErrDiverged on
//     resync and converges only by explicit state transfer.
//   - An rf=3 group survives any single member's death or isolation
//     with zero acked-write loss; a dead BACKUP doesn't even surface
//     errors to clients (the quorum watermark advances on the
//     survivors and a majority of lease grants still renews).
//   - Failover promotes the most-caught-up live member, so a write
//     acknowledged by a bare quorum (primary + one of two backups)
//     survives the primary's death.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"yesquel/internal/cluster"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvserver"
)

// TestDivergedButBehindResyncRejected is the regression for the resync
// splice: an isolated old primary strands a FEW records (locally
// committed, never acknowledged), the new epoch then writes MORE than
// it stranded, so the old primary's stream head ends up BEHIND the new
// primary's. Every sequence-number check now passes — before the
// per-record epoch check, SyncFrom would silently splice the new
// epoch's records on top of the stranded ones and the "caught-up
// backup" would differ from its primary at the same stream position.
// The pinned behavior: the resync fails loudly with kv.ErrDiverged
// (the requester's stream epoch does not match the epoch the group's
// stream had in force at its position), and the only road back is
// state transfer, after which the stores are byte-identical.
func TestDivergedButBehindResyncRejected(t *testing.T) {
	cl, err := cluster.StartReplicated(1, 2, kvserver.Config{LeaseDuration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var acked []ackedWrite
	for i := 0; i < 20; i++ {
		oid := c.NewOID(0)
		val := fmt.Sprintf("pre-%d", i)
		tx := c.Begin()
		tx.Put(oid, kv.NewPlain([]byte(val)))
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, ackedWrite{oid, val})
	}

	old, err := cl.IsolatePrimary(0)
	if err != nil {
		t.Fatal(err)
	}
	newPrimary := cl.Groups[0].Primary

	// Strand a small number of records on the isolated old primary:
	// store-level commits bypass the epoch/lease gate, emit into its
	// local stream, and fail awaiting replication (the batch dies
	// unsent). Keep the count SMALL — the point of this drill is that
	// the old primary ends up behind, not ahead.
	const stranded = 3
	oldStore := old.Store()
	for i := uint64(0); i < stranded; i++ {
		txid := uint64(1<<50) + i
		if _, err := oldStore.FastCommit(txid, oldStore.Clock().Now(), []*kv.Op{
			{Kind: kv.OpPut, OID: kv.MakeOID(0, txid), Value: kv.NewPlain([]byte("stranded"))},
		}); err == nil {
			t.Fatal("isolated primary acknowledged a write")
		}
	}

	// Grow the new epoch's stream PAST the old primary's head.
	c2, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; newPrimary.Store().ReplSeq() <= oldStore.ReplSeq()+3; i++ {
		oid := c2.NewOID(0)
		val := fmt.Sprintf("post-%d", i)
		tx := c2.Begin()
		tx.Put(oid, kv.NewPlain([]byte(val)))
		if err := tx.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, ackedWrite{oid, val})
	}
	if oldStore.ReplSeq() >= newPrimary.Store().ReplSeq() {
		t.Fatalf("drill setup failed: old head %d not behind new head %d", oldStore.ReplSeq(), newPrimary.Store().ReplSeq())
	}

	// The splice attempt: every seq check passes (the old primary is
	// strictly behind and above the log base), so only the per-record
	// epoch check can catch the divergence. It must.
	oldStore.StartResync()
	err = old.SyncFrom(newPrimary.Addr(), 0)
	if err == nil {
		t.Fatal("diverged-but-behind old primary resynced cleanly: histories were spliced")
	}
	if !errors.Is(err, kv.ErrDiverged) && !strings.Contains(err.Error(), kv.ErrDiverged.Error()) {
		t.Fatalf("resync of diverged old primary: %v, want kv.ErrDiverged", err)
	}

	// The sanctioned road back: full state transfer, stranded tail
	// discarded, then the log-tail sync — ending byte-identical.
	if err := old.StateTransferFrom(newPrimary.Addr(), 0); err != nil {
		t.Fatalf("state transfer of diverged old primary: %v", err)
	}
	if got, want := oldStore.StateDigest(), newPrimary.Store().StateDigest(); got != want {
		t.Fatalf("after state transfer: old digest %x != new primary digest %x", got, want)
	}

	// Zero acked-write loss throughout.
	check := c2.Begin()
	defer check.Abort()
	for _, aw := range acked {
		v, err := check.Read(ctx, aw.oid)
		if err != nil || string(v.Data) != aw.val {
			t.Fatalf("acknowledged write %v=%q lost: %v %v", aw.oid, aw.val, v, err)
		}
	}
}

// quorumLoad drives concurrent writers against slot 0 of cl, invoking
// disrupt from worker 0 partway through, and returns the writes whose
// Commit was acknowledged plus the uncertain/failed counts.
func quorumLoad(t *testing.T, cl *cluster.Cluster, disrupt func()) (acked []ackedWrite, uncertain, failed int) {
	t.Helper()
	ctx := context.Background()
	const workers = 6
	const writesPerWorker = 50
	const disruptAfter = 15
	var mu sync.Mutex
	var once sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := cl.NewClient()
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < writesPerWorker; i++ {
				if w == 0 && i == disruptAfter {
					once.Do(disrupt)
				}
				oid := c.NewOID(0)
				val := fmt.Sprintf("w%d-%d", w, i)
				tx := c.Begin()
				tx.Put(oid, kv.NewPlain([]byte(val)))
				err := tx.Commit(ctx)
				mu.Lock()
				switch {
				case err == nil:
					acked = append(acked, ackedWrite{oid, val})
				case errors.Is(err, kv.ErrUncertain):
					uncertain++
				default:
					failed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return acked, uncertain, failed
}

// verifyAcked asserts every acknowledged write is readable through a
// FRESH client — which also exercises OpenReplicated against a group
// with dead members in its address list. A just-promoted primary
// serves only under a quorum lease, and its first grants arrive
// asynchronously from the rejoined members' renewal loops, so give it
// a moment to become serviceable first.
func verifyAcked(t *testing.T, cl *cluster.Cluster, acked []ackedWrite) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cl.Groups[0].Primary.Stats().LeaseValid {
		if time.Now().After(deadline) {
			t.Fatal("primary never obtained a quorum lease")
		}
		time.Sleep(10 * time.Millisecond)
	}
	verify, err := cl.NewClient()
	if err != nil {
		t.Fatalf("open fresh client after failure: %v", err)
	}
	defer verify.Close()
	check := verify.Begin()
	defer check.Abort()
	for _, aw := range acked {
		v, err := check.Read(context.Background(), aw.oid)
		if err != nil || string(v.Data) != aw.val {
			t.Fatalf("acknowledged write %v=%q lost: %v %v", aw.oid, aw.val, v, err)
		}
	}
}

// TestQuorumGroupMinorityFailureMatrix kills or isolates each role of
// an rf=3 group in the middle of a concurrent workload and pins the
// quorum guarantees: a dead BACKUP is invisible to clients (every
// commit acknowledged, the quorum watermark advances on the survivors,
// the lease stays renewed by the surviving majority); a dead or
// isolated PRIMARY loses zero acknowledged writes across the failover.
func TestQuorumGroupMinorityFailureMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos drill (-short)")
	}
	t.Run("kill-backup", func(t *testing.T) {
		cl, err := cluster.StartReplicated(1, 3, kvserver.Config{LeaseDuration: 150 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		acked, uncertain, failed := quorumLoad(t, cl, func() {
			if err := cl.KillBackup(0, 1); err != nil {
				t.Errorf("kill backup: %v", err)
			}
		})
		// The whole point of rf=3: one dead backup is a non-event for
		// clients.
		if uncertain != 0 || failed != 0 {
			t.Fatalf("commits failed despite a surviving quorum: acked=%d uncertain=%d failed=%d", len(acked), uncertain, failed)
		}
		verifyAcked(t, cl, acked)
		g := cl.Groups[0]
		if len(g.Backups) != 1 {
			t.Fatalf("backups after kill: %d", len(g.Backups))
		}
		// The surviving backup holds every acked write too (it is the
		// quorum partner for all of them once the dead member broke).
		if got, want := g.Backups[0].Store().ReplSeq(), g.Primary.Store().ReplSeq(); got != want {
			t.Fatalf("surviving backup seq %d != primary seq %d", got, want)
		}
		if got, want := g.Backups[0].Store().StateDigest(), g.Primary.Store().StateDigest(); got != want {
			t.Fatalf("surviving backup digest %x != primary digest %x", got, want)
		}
		// Per-member stats make the dead member visible: one broken
		// replica, quorum still 1.
		st := g.Primary.Stats()
		broken := 0
		for _, r := range st.Replicas {
			if r.Broken {
				broken++
			}
		}
		if broken != 1 || st.QuorumNeed != 1 {
			t.Fatalf("replica stats after backup death: %+v need=%d, want one broken member and need 1", st.Replicas, st.QuorumNeed)
		}
		// Re-form to full strength and converge all three.
		if err := cl.Restart(0); err != nil {
			t.Fatal(err)
		}
		for i, b := range cl.Groups[0].Backups {
			if got, want := b.Store().StateDigest(), g.Primary.Store().StateDigest(); got != want {
				t.Fatalf("re-formed backup %d digest %x != primary digest %x", i, got, want)
			}
		}
	})
	t.Run("kill-primary", func(t *testing.T) {
		cl, err := cluster.StartReplicated(1, 3, kvserver.Config{LeaseDuration: 150 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		acked, uncertain, failed := quorumLoad(t, cl, func() {
			if err := cl.KillPrimary(0); err != nil {
				t.Errorf("kill primary: %v", err)
			}
		})
		if len(acked) == 0 {
			t.Fatalf("degenerate run: acked=%d uncertain=%d failed=%d", len(acked), uncertain, failed)
		}
		t.Logf("acked=%d uncertain=%d failed=%d", len(acked), uncertain, failed)
		verifyAcked(t, cl, acked)
		g := cl.Groups[0]
		if len(g.Backups) != 1 {
			t.Fatalf("backups after failover: %d", len(g.Backups))
		}
		// The loser rejoined the winner's stream and converged.
		if got, want := g.Backups[0].Store().StateDigest(), g.Primary.Store().StateDigest(); got != want {
			t.Fatalf("rejoined backup digest %x != new primary digest %x", got, want)
		}
	})
	t.Run("isolate-primary", func(t *testing.T) {
		cl, err := cluster.StartReplicated(1, 3, kvserver.Config{LeaseDuration: 150 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		var old *kvserver.Server
		acked, uncertain, failed := quorumLoad(t, cl, func() {
			o, err := cl.IsolatePrimary(0)
			if err != nil {
				t.Errorf("isolate primary: %v", err)
				return
			}
			old = o
		})
		if old == nil {
			t.Fatal("workload finished before the primary was isolated")
		}
		if len(acked) == 0 {
			t.Fatalf("degenerate run: acked=%d uncertain=%d failed=%d", len(acked), uncertain, failed)
		}
		verifyAcked(t, cl, acked)
		// The deposed primary's quorum lease is gone (both backups'
		// grants were waited out before the new epoch served): even a
		// direct store-level write fails.
		oldStore := old.Store()
		if _, err := oldStore.FastCommit(1<<51, oldStore.Clock().Now(), []*kv.Op{
			{Kind: kv.OpPut, OID: kv.MakeOID(0, 1<<51), Value: kv.NewPlain([]byte("stale"))},
		}); err == nil {
			t.Fatal("isolated deposed primary acknowledged a write")
		}
	})
}

// TestPromotePicksMostCaughtUpBackup pins the promotion rule that
// makes bare-quorum acks safe: with rf=3 a write is acknowledged once
// the primary plus ONE backup hold it, so if the primary then dies,
// promoting the OTHER backup would lose the write. The drill detaches
// one backup from the replication pipeline (it stops receiving
// records and falls behind), keeps writing — every write now lives on
// exactly primary + the attached backup — then kills the primary.
// Promotion must compare stream heads and pick the caught-up member;
// the laggard rejoins as its backup and converges.
func TestPromotePicksMostCaughtUpBackup(t *testing.T) {
	cl, err := cluster.StartReplicated(1, 3, kvserver.Config{LeaseDuration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	g := cl.Groups[0]
	caughtUp, laggard := g.Backups[0], g.Backups[1]

	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var acked []ackedWrite
	write := func(i int, label string) {
		oid := c.NewOID(0)
		val := fmt.Sprintf("%s-%d", label, i)
		tx := c.Begin()
		tx.Put(oid, kv.NewPlain([]byte(val)))
		if err := tx.Commit(ctx); err != nil {
			t.Fatalf("%s write %d: %v", label, i, err)
		}
		acked = append(acked, ackedWrite{oid, val})
	}
	for i := 0; i < 10; i++ {
		write(i, "shared")
	}
	// The laggard stops receiving records; commits keep succeeding on
	// the bare quorum (primary + caughtUp).
	g.Primary.DetachBackupMember(laggard.Addr())
	for i := 0; i < 25; i++ {
		write(i, "quorum")
	}
	if lag, cu := laggard.Store().ReplSeq(), caughtUp.Store().ReplSeq(); lag >= cu {
		t.Fatalf("drill setup failed: laggard head %d not behind caught-up head %d", lag, cu)
	}

	if err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}
	if got, want := cl.Groups[0].Primary.Addr(), caughtUp.Addr(); got != want {
		t.Fatalf("promotion picked %s, want the most-caught-up member %s", got, want)
	}
	verifyAcked(t, cl, acked)
	// The laggard rejoined the winner's stream during promotion and
	// converged.
	if len(cl.Groups[0].Backups) != 1 || cl.Groups[0].Backups[0] != laggard {
		t.Fatalf("laggard did not rejoin as backup")
	}
	if got, want := laggard.Store().StateDigest(), caughtUp.Store().StateDigest(); got != want {
		t.Fatalf("rejoined laggard digest %x != new primary digest %x", got, want)
	}
}
