package cluster_test

// Live slot-migration drills: the headline elastic-sharding demo (a
// server joins mid-run, the rebalancer moves routes onto it, and
// throughput steps UP while every acknowledged write survives) and the
// chaos variant that kills the source primary in the middle of a
// migration. The pinned guarantees:
//
//   - Scale-out is live: AddServer + Rebalance run under sustained
//     load with zero non-redirect client errors — wrong-slot redirects
//     are absorbed by the client's retry/re-route machinery, never
//     surfaced.
//   - Zero acked-write loss across a migration, and across a source
//     primary failover DURING a migration (the orchestrator only
//     consumes durable records, which promotion retains).
//   - A migrated route ends wholly on exactly one group: the new owner
//     serves it, the old owner rejects it with the typed redirect, and
//     the owning group's replicas agree on the digest.
//   - Post-join steady-state throughput exceeds the before-join
//     steady state (the point of scaling out).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"yesquel/internal/cluster"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvserver"
)

// ackedSample is the newest acknowledged write to one object: worker w
// acked the value fmt.Sprintf("w%d-%d", w, seq). Workers write disjoint
// object sets sequentially, so the newest ack per object is totally
// ordered and the store must hold that write or a later one by the
// same worker (later = a commit whose ack raced the load shutdown, or
// an allowed-uncertain commit that in fact landed).
type ackedSample struct {
	w, seq int
}

// scaleOutLoad runs put-heavy workers against cl until stop closes,
// spreading single-op transactions across nroutes placement slots.
// Commit errors matching allowErr are counted; any other error fails
// the test. Every acknowledged write is recorded (newest per object)
// for loss checking.
type scaleOutLoad struct {
	ops     atomic.Uint64
	allowed atomic.Uint64

	mu    sync.Mutex
	acked map[kv.OID]ackedSample

	stop chan struct{}
	wg   sync.WaitGroup
}

func startScaleOutLoad(t *testing.T, cl *cluster.Cluster, workers, nroutes int, allowErr func(error) bool) *scaleOutLoad {
	t.Helper()
	l := &scaleOutLoad{stop: make(chan struct{}), acked: make(map[kv.OID]ackedSample)}
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		l.wg.Add(1)
		go func(w int) {
			defer l.wg.Done()
			c, err := cl.NewClient()
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer c.Close()
			// A bounded working set (reused OIDs, version chains capped
			// by MaxVersions) keeps the store's size and GC pressure
			// flat, so the before/after measurement windows compare
			// steady states rather than points on a growth curve.
			oids := make([]kv.OID, nroutes*8)
			for k := range oids {
				oids[k] = c.NewOID(uint16(k % nroutes))
			}
			mine := make(map[kv.OID]ackedSample, len(oids))
			defer func() {
				l.mu.Lock()
				for oid, s := range mine {
					l.acked[oid] = s
				}
				l.mu.Unlock()
			}()
			for i := 0; ; i++ {
				select {
				case <-l.stop:
					return
				default:
				}
				oid := oids[(w+i)%len(oids)]
				tx := c.Begin()
				tx.Put(oid, kv.NewPlain([]byte(fmt.Sprintf("w%d-%d", w, i))))
				err := tx.Commit(ctx)
				switch {
				case err == nil:
					l.ops.Add(1)
					mine[oid] = ackedSample{w, i}
				case allowErr != nil && allowErr(err):
					l.allowed.Add(1)
				default:
					t.Errorf("worker %d op %d: non-redirect client error: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	return l
}

func (l *scaleOutLoad) finish() map[kv.OID]ackedSample {
	close(l.stop)
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acked
}

// verifyAckedWrites reads every object's newest acknowledged write
// through a fresh client and fails the test for each one lost. The
// stored value must be the acked write or a later one by the same
// worker; anything older (or missing) is an acknowledged write that
// vanished.
func verifyAckedWrites(t *testing.T, cl *cluster.Cluster, acked map[kv.OID]ackedSample) {
	t.Helper()
	ctx := context.Background()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	check := c.Begin()
	defer check.Abort()
	lost := 0
	for oid, want := range acked {
		v, err := check.Read(ctx, oid)
		var gw, gi int
		ok := err == nil && v != nil
		if ok {
			n, _ := fmt.Sscanf(string(v.Data), "w%d-%d", &gw, &gi)
			ok = n == 2 && gw == want.w && gi >= want.seq
		}
		if !ok {
			lost++
			t.Errorf("acknowledged write %v=w%d-%d lost: have %v (err %v)", oid, want.w, want.seq, v, err)
			if lost > 5 {
				t.Fatal("... giving up")
			}
		}
	}
}

// TestScaleOutLive is the elastic-sharding acceptance demo: an
// elastically formed cluster (more routes than groups) runs a sustained
// write workload, a fresh server group joins mid-run, the rebalancer
// migrates routes onto it live, and steady-state throughput afterwards
// beats the steady state before — with zero non-redirect client errors
// and zero acked-write loss. The migration protocol's own cutover
// digest check runs inside Rebalance: a source/destination mismatch
// fails the move, so a nil error also pins "digests agree at cutover".
func TestScaleOutLive(t *testing.T) {
	if testing.Short() {
		t.Skip("long migration drill (-short)")
	}
	// 2 groups serving 6 routes; the joining third group's fair share
	// is 2 routes, so Rebalance moves two and the route map becomes
	// balanced 2/2/2.
	//
	// MirrorSendDelay makes each group's replication pipeline a
	// bounded-capacity resource (8 records / 2ms = 4k commits/s per
	// group) so that ADDING A GROUP ADDS CAPACITY even on a one-core
	// host, where a purely in-memory pipeline would measure CPU — a
	// resource a new group cannot increase. 32 workers keep the
	// offered load above the post-join capacity, so both windows
	// measure capacity, and the step-up is the new group's. Under the
	// race detector per-op CPU cost grows several-fold, so the delay
	// widens to keep the pipeline (not the CPU) the binding resource.
	delay := 2 * time.Millisecond
	if raceDetector {
		delay = 8 * time.Millisecond
	}
	cl, err := cluster.StartElastic(2, 3, 2, kvserver.Config{
		MaxVersions:           4,
		MirrorBatchMaxRecords: 8,
		MirrorSendDelay:       delay,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const nroutes = 6

	load := startScaleOutLoad(t, cl, 32, nroutes, nil)

	// Steady state before the join.
	time.Sleep(300 * time.Millisecond) // warmup
	const window = 600 * time.Millisecond
	b0 := load.ops.Load()
	time.Sleep(window)
	before := load.ops.Load() - b0

	// A server joins mid-run and takes its share of the keyspace.
	joinStart := time.Now()
	gi, err := cl.AddServer()
	if err != nil {
		t.Fatal(err)
	}
	m0 := load.ops.Load()
	moved, err := cl.Rebalance(gi)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	migDur := time.Since(joinStart)
	during := load.ops.Load() - m0
	if moved != 2 {
		t.Fatalf("Rebalance moved %d routes, want 2", moved)
	}

	// Steady state after the join.
	a0 := load.ops.Load()
	f0 := make([]uint64, len(cl.Servers))
	for i, s := range cl.Servers {
		f0[i] = s.Store().Stats().FastCommits
	}
	time.Sleep(window)
	after := load.ops.Load() - a0
	perServer := make([]uint64, len(cl.Servers))
	for i, s := range cl.Servers {
		perServer[i] = s.Store().Stats().FastCommits - f0[i]
	}
	t.Logf("after-window fast commits per server: %v", perServer)

	acked := load.finish()
	t.Logf("ops/window: before=%d during-join=%d (join+migrations took %v) after=%d; %d acked writes sampled",
		before, during, migDur, after, len(acked))

	if after <= before {
		t.Errorf("throughput did not step up after scale-out: before=%d after=%d ops/%v", before, after, window)
	}

	// The directory now spreads the routes 2/2/2 and the moved routes
	// answer from the new group; the old owners redirect.
	d := cl.Directory()
	ownedByNew := 0
	for route, g := range d.Routes {
		if int(g) == gi {
			ownedByNew++
			// New owner accepts the route; every other group rejects it.
			oid := kv.MakeOID(uint16(route), 1)
			if err := cl.Groups[gi].Primary.Store().CheckClientSlot(oid); err != nil {
				t.Errorf("new owner rejects migrated route %d: %v", route, err)
			}
			for og := range cl.Groups {
				if og == gi {
					continue
				}
				if err := cl.Groups[og].Primary.Store().CheckClientSlot(oid); !errors.Is(err, kv.ErrWrongSlot) {
					t.Errorf("group %d still accepts migrated route %d: %v", og, route, err)
				}
			}
		}
	}
	if ownedByNew != 2 {
		t.Fatalf("new group owns %d routes, want 2 (directory %+v)", ownedByNew, d.Routes)
	}

	verifyAckedWrites(t, cl, acked)

	if s := cl.Stats(); s.MigratedVersions == 0 {
		t.Error("no migrated versions counted across the cluster")
	}
}

// TestMigrationChaosKillSourcePrimary kills the SOURCE group's primary
// at the protocol's most delicate point — right after the fence went
// up, before the final tail — while client load continues. The fence
// was installed on every source member, so the promoted backup keeps
// it; the orchestrator resumes (or restarts bulk) against the promoted
// primary; and the drill pins that the route ends wholly on exactly
// one group, with the owning group's replicas in digest agreement and
// zero acked-write loss.
func TestMigrationChaosKillSourcePrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("long migration chaos drill (-short)")
	}
	cl, err := cluster.StartElastic(2, 2, 2, kvserver.Config{LeaseDuration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const nroutes = 4

	var killedGroup atomic.Int64
	killedGroup.Store(-1)
	cl.TestHookMigration = func(phase string) {
		if phase != "fenced" || killedGroup.Load() >= 0 {
			return
		}
		// The source group is the one whose members carry the fence —
		// a directory version newer than the cluster's published one.
		published := cl.Directory().Version
		for gi, g := range cl.Groups {
			if g.Primary.Store().DirVersion() > published {
				killedGroup.Store(int64(gi))
				if err := cl.KillPrimary(gi); err != nil {
					t.Errorf("killing source primary of group %d: %v", gi, err)
				}
				return
			}
		}
		t.Error("fenced hook fired but no group carries the fence")
	}

	// Failover makes some in-flight commits genuinely uncertain; that
	// is the one loss of information the system is allowed.
	load := startScaleOutLoad(t, cl, 8, nroutes, func(err error) bool {
		return errors.Is(err, kv.ErrUncertain)
	})
	time.Sleep(200 * time.Millisecond)

	gi, err := cl.AddServer()
	if err != nil {
		t.Fatal(err)
	}
	moved, err := cl.Rebalance(gi)
	if err != nil {
		t.Fatalf("Rebalance across source failover: %v", err)
	}
	if moved != 1 {
		t.Fatalf("Rebalance moved %d routes, want 1", moved)
	}
	if killedGroup.Load() < 0 {
		t.Fatal("drill never killed the source primary")
	}

	acked := load.finish()
	t.Logf("killed source group %d's primary; %d acked writes sampled, %d uncertain",
		killedGroup.Load(), len(acked), load.allowed.Load())

	// The moved route lives wholly on the new group: its directory
	// names exactly one owner, the owner serves it, everyone else
	// redirects.
	d := cl.Directory()
	var movedRoutes []int
	for route, g := range d.Routes {
		if int(g) == gi {
			movedRoutes = append(movedRoutes, route)
		}
	}
	if len(movedRoutes) != 1 {
		t.Fatalf("new group owns routes %v, want exactly one (directory %+v)", movedRoutes, d.Routes)
	}
	route := movedRoutes[0]
	probe := kv.MakeOID(uint16(route), 1)
	if err := cl.Groups[gi].Primary.Store().CheckClientSlot(probe); err != nil {
		t.Errorf("new owner rejects migrated route %d: %v", route, err)
	}
	for og := range cl.Groups {
		if og == gi {
			continue
		}
		if err := cl.Groups[og].Primary.Store().CheckClientSlot(probe); !errors.Is(err, kv.ErrWrongSlot) {
			t.Errorf("group %d still accepts migrated route %d: %v", og, route, err)
		}
	}

	verifyAckedWrites(t, cl, acked)

	// The owning group's replicas agree on the migrated route's state.
	// One quiescent write makes sure the mirror pipeline has flushed.
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tx := c.Begin()
	tx.Put(c.NewOID(uint16(route)), kv.NewPlain([]byte("quiesce")))
	if err := tx.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	g := cl.Groups[gi]
	for bi, b := range g.Backups {
		if b == nil {
			continue
		}
		pd := g.Primary.Store().SlotDigest(uint32(route), nroutes)
		bd := b.Store().SlotDigest(uint32(route), nroutes)
		if pd != bd {
			t.Errorf("owner group replica %d digest %016x != primary %016x on route %d", bi, bd, pd, route)
		}
	}
}
