package cluster_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"yesquel/internal/cluster"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvserver"
)

// TestIdleClientHeartbeatFollowsTwoFailovers pins the PR 3 gap: a
// client that is idle across an entire epoch's lifetime used to strand
// — after [A,B] fails over to [B], re-forms as [B,C], and fails over
// again to [C], an idle client still believes [A,B] and both are dead.
// The background heartbeat ping (kv.MethodPing answers from any
// member and piggybacks epoch+membership) keeps the idle client's
// view current, so its first operation after the second failover
// lands on an address it was never configured with.
func TestIdleClientHeartbeatFollowsTwoFailovers(t *testing.T) {
	cl, err := cluster.StartReplicated(1, 2, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Compress the failover timeline: the default 1s interval is for
	// production idling, the discipline under test is the same.
	c.StartHeartbeat(20 * time.Millisecond)
	settle := func() { time.Sleep(200 * time.Millisecond) }

	// Failover 1: [A,B] -> promote B -> re-form as [B,C]. The client
	// stays completely idle; only the heartbeat may talk.
	if err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Restart(0); err != nil {
		t.Fatal(err)
	}
	settle()
	// Failover 2: kill B; the group is now [C] alone — an address the
	// client was never configured with.
	if err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}
	settle()

	// First client operation since startup: without the heartbeat the
	// client would dial only dead addresses and could never recover
	// (retrying would not help — its view contains no live member).
	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	oid := c.NewOID(0)
	for {
		tx := c.Begin()
		tx.Put(oid, kv.NewPlain([]byte("woke-up")))
		err = tx.Commit(ctx)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle client stranded after two failovers: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The write landed on the second failover's sole member.
	g := cl.Groups[0]
	if got := fmt.Sprint(g.Addrs); len(g.Addrs) != 1 {
		t.Fatalf("unexpected final membership: %v", got)
	}
	tx := c.Begin()
	defer tx.Abort()
	if v, err := tx.Read(ctx, oid); err != nil || string(v.Data) != "woke-up" {
		t.Fatalf("read-back on final primary: %v %v", v, err)
	}
}
