package cluster

// Slot migration and the directory.
//
// The cluster is the directory authority: it owns the versioned
// slot→group map (kv.Directory), installs every new version on every
// member store, and runs the live-migration protocol that makes a new
// version true. A route moves from group S to group D in seven steps:
//
//  1. BULK — capture the route's objects on S's primary at stream head
//     H0 (kvserver.CaptureRoute), wait H0's durability, and ingest the
//     capture on D's primary, which re-emits every version through its
//     own replication stream so D's backups converge too.
//  2. TAIL — repeatedly pull S's retained log from H0 forward
//     (MigrationRecords), filter each record to the route, wait the
//     batch durable on S, and apply: commits ingest directly, prepares
//     park in a pending map, decisions resolve parked prepares. Writes
//     continue on S throughout.
//  3. FENCE — install the new directory (version+1, route→D) on every
//     member of S. The install takes S's stream lock, and the write
//     paths re-check ownership under that lock immediately before
//     emitting, so the fence is a single point in S's stream: every
//     route-touching record is either wholly below it (the tail will
//     deliver it) or rejected with kv.WrongSlotError (provably not
//     executed, client re-routes). The only route records above the
//     fence are phase-two decisions for prepares replicated below it.
//  4. DRAIN — wait until S holds no in-flight prepared transaction on
//     the route. No new one can appear (the fence rejects them), so
//     the wait terminates and, once it does, S's stream holds no
//     further route-touching records, ever.
//  5. FINAL TAIL — sample S's head H1, wait it durable, pull the tail
//     to H1. D now holds every durable route-touching record S ever
//     acknowledged; anything S accepted but never made durable is
//     exactly what a failover would have discarded anyway.
//  6. DIGEST — compare SlotDigest(route) on S and D (newest version of
//     every route object). A mismatch rolls the fence back (yet-newer
//     directory pointing the route at S again) and fails loudly.
//  7. PUBLISH — install the new directory on D first (so D stops
//     redirecting before anyone is told to go there), then on every
//     other group, then adopt it as the cluster's own. Clients learn it
//     from Ack.DirVersion piggybacks, redirects, or their heartbeat.
//
// Zero acked-write loss: every acknowledged route write either has its
// record durable below H1 (steps 1-5 deliver it to D, and ingestion is
// deduplicated by per-object newest-timestamp, so replays are
// idempotent) or was never acknowledged at all. A source-primary crash
// mid-migration is survivable for the same reason: the orchestrator
// only ever consumes durable records, which by the promotion rule
// (longest stream among a majority) every successor primary retains —
// so the tail resumes against the promoted primary, and a truncated
// log just restarts the idempotent bulk phase. Migrated data is NOT
// purged from S (follow-on work); it is unreachable there, fenced by
// the directory.

import (
	"errors"
	"fmt"
	"time"

	"yesquel/internal/kv"
	"yesquel/internal/kv/kvserver"
)

// directory returns the cluster's current slot directory (nil before
// buildDirectory, which StartReplicated always runs).
func (cl *Cluster) Directory() *kv.Directory { return cl.dir }

// buildDirectory creates the identity directory: version 1, one route
// per initial slot, Routes[i] = i — exactly the legacy `slot % n` rule,
// so adopting it changes no placement.
func (cl *Cluster) buildDirectory() {
	d := &kv.Directory{Version: 1, Routes: make([]uint32, len(cl.Groups))}
	for i := range cl.Groups {
		d.Routes[i] = uint32(i)
	}
	cl.dir = d
	cl.installDirectory(d.Clone(), -1)
}

// StartElastic launches a cluster built for scale-out: `groups` replica
// groups of the given replication factor, serving groups*routesPerGroup
// directory routes (Routes[r] = r % groups). With more routes than
// groups, every group starts with several routes, so a freshly joined
// group (AddServer + Rebalance) has over-share donors to take routes
// from — the configuration in which adding a machine genuinely adds
// serving capacity.
//
// Placement parity: because groups divides the route count,
// (slot % routes) % groups == slot % groups, so a directory-unaware
// client given the group addresses routes every OID to the same group
// the directory names — until the first migration. Directory-aware
// clients should adopt the directory before allocating OIDs (NumServers
// is the route count, not the group count); Cluster.NewClient does so
// eagerly.
func StartElastic(groups, routesPerGroup, rf int, cfg kvserver.Config) (*Cluster, error) {
	if routesPerGroup < 1 {
		return nil, fmt.Errorf("cluster: need at least one route per group, got %d", routesPerGroup)
	}
	cl, err := StartReplicated(groups, rf, cfg)
	if err != nil {
		return nil, err
	}
	if routesPerGroup > 1 {
		d := cl.dir.Clone()
		d.Version++
		d.Routes = make([]uint32, groups*routesPerGroup)
		for r := range d.Routes {
			d.Routes[r] = uint32(r % groups)
		}
		cl.installDirectory(d, -1)
	}
	return cl, nil
}

// installDirectory refreshes d's advisory group address lists from the
// live topology, installs d on every member store of every group —
// firstGroup's members first, when >= 0 (migration publishes to the
// destination before anyone is redirected there) — and adopts it as the
// cluster's directory.
func (cl *Cluster) installDirectory(d *kv.Directory, firstGroup int) {
	d.Groups = make([][]string, len(cl.Groups))
	for i, g := range cl.Groups {
		d.Groups[i] = append([]string(nil), g.Addrs...)
	}
	install := func(gi int) {
		g := cl.Groups[gi]
		for _, s := range append([]*kvserver.Server{g.Primary}, g.Backups...) {
			if s != nil {
				s.Store().InstallDirectory(d, uint32(gi))
			}
		}
	}
	if firstGroup >= 0 && firstGroup < len(cl.Groups) {
		install(firstGroup)
	}
	for gi := range cl.Groups {
		if gi != firstGroup {
			install(gi)
		}
	}
	cl.dir = d
}

// AddServer starts a fresh replica group (same replication factor and
// config as the original slots), appends it to the cluster, and
// publishes a new directory version naming it. The new group owns no
// routes until Rebalance (or migrateSlot) moves some onto it; until
// then it only rejects with redirects. Returns the new group's index.
func (cl *Cluster) AddServer() (int, error) {
	gi := len(cl.Groups)
	g, err := cl.startGroup(gi)
	if err != nil {
		return 0, fmt.Errorf("cluster: adding server group %d: %w", gi, err)
	}
	cl.Groups = append(cl.Groups, g)
	cl.Servers = append(cl.Servers, g.Primary)
	cl.Addrs = append(cl.Addrs, g.Primary.Addr())
	d := cl.dir.Clone()
	d.Version++
	cl.installDirectory(d, gi)
	return gi, nil
}

// Rebalance moves routes onto group `to` until it owns its fair share
// (len(Routes)/len(Groups), at least one), choosing each time the
// most-loaded route — by the owning primaries' per-route operation
// counters — among groups that own more than their share. Returns how
// many routes moved. Typical use: AddServer, then Rebalance(newGroup)
// to shift the hottest part of the keyspace onto the fresh machine
// while the cluster keeps serving.
func (cl *Cluster) Rebalance(to int) (int, error) {
	if to < 0 || to >= len(cl.Groups) {
		return 0, fmt.Errorf("cluster: no group %d to rebalance onto", to)
	}
	d := cl.dir
	share := len(d.Routes) / len(cl.Groups)
	if share < 1 {
		share = 1
	}
	owned := make([]int, len(cl.Groups))
	for _, g := range d.Routes {
		owned[g]++
	}
	loads := make([][]uint64, len(cl.Groups))
	for gi, g := range cl.Groups {
		loads[gi] = g.Primary.Store().RouteLoad()
	}
	moved := 0
	for owned[to] < share {
		// Hottest route among over-share donors.
		best, bestLoad := -1, uint64(0)
		for r, g := range d.Routes {
			if int(g) == to || owned[g] <= share {
				continue
			}
			var load uint64
			if int(g) < len(loads) && r < len(loads[g]) {
				load = loads[g][r]
			}
			if best < 0 || load > bestLoad {
				best, bestLoad = r, load
			}
		}
		if best < 0 {
			break
		}
		from := int(d.Routes[best])
		if err := cl.migrateSlot(uint32(best), to); err != nil {
			return moved, fmt.Errorf("cluster: migrating route %d from group %d to %d: %w", best, from, to, err)
		}
		owned[from]--
		owned[to]++
		moved++
		d = cl.dir // migrateSlot published a new version
	}
	return moved, nil
}

// migHook fires the migration test hook, if any.
func (cl *Cluster) migHook(phase string) {
	if cl.TestHookMigration != nil {
		cl.TestHookMigration(phase)
	}
}

// Migration tuning knobs. The tail is considered caught up when it is
// within tailCutoverLag records of the source head — then the fence
// goes up and the remainder is drained synchronously.
const (
	tailBatch       = 512
	tailCutoverLag  = 64
	migrateAttempts = 5
	drainTimeout    = 30 * time.Second
)

// pendingTx is a replicated-but-undecided prepare touching the
// migrating route: its ops wait for the decision record in the tail.
type pendingTx struct {
	ops []*kv.Op
}

// routeOps filters ops to those addressing the migrating route.
func routeOps(ops []*kv.Op, route, nroutes uint32) []*kv.Op {
	var out []*kv.Op
	for _, op := range ops {
		if uint32(op.OID.Slot())%nroutes == route {
			out = append(out, op)
		}
	}
	return out
}

// migrateSlot moves one directory route from its current owner to
// group `to` with the live protocol documented at the top of this
// file. Errors before the fence leave routing untouched; a digest
// mismatch after the fence rolls the route back to the source.
func (cl *Cluster) migrateSlot(route uint32, to int) error {
	from := int(cl.dir.Routes[route])
	if from == to {
		return nil
	}
	var lastErr error
	for attempt := 0; attempt < migrateAttempts; attempt++ {
		if err := cl.tryMigrateSlot(route, from, to); err != nil {
			if errors.Is(err, errMigrationRestart) {
				lastErr = err
				continue // source failed over or truncated: bulk restart is idempotent
			}
			return err
		}
		return nil
	}
	return fmt.Errorf("cluster: migration of route %d gave up after %d attempts: %w", route, migrateAttempts, lastErr)
}

// errMigrationRestart says the pre-fence phases must restart from a
// fresh bulk capture (safe: ingestion is idempotent).
var errMigrationRestart = errors.New("cluster: migration restart")

func (cl *Cluster) tryMigrateSlot(route uint32, from, to int) error {
	nroutes := uint32(len(cl.dir.Routes))
	dstStore := cl.Groups[to].Primary.Store()
	srcStore := func() *kvserver.Store { return cl.Groups[from].Primary.Store() }

	// BULK: capture at the source's durable head, ingest on the
	// destination, seed the pending-prepare map.
	src := srcStore()
	enc, head, err := src.CaptureRoute(route, nroutes)
	if err != nil {
		return err
	}
	if err := src.WaitSeqDurable(head); err != nil {
		return fmt.Errorf("%w: waiting capture durability: %v", errMigrationRestart, err)
	}
	cursor, preps, err := dstStore.IngestMigratedObjects(enc)
	if err != nil {
		return err
	}
	pending := make(map[uint64]pendingTx)
	for _, p := range preps {
		if ops := routeOps(p.Ops, route, nroutes); len(ops) > 0 {
			pending[p.TxID] = pendingTx{ops: ops}
		}
	}
	cl.migHook("bulk-done")

	// TAIL: stream the live delta until within striking distance.
	for {
		head, err := cl.pullTail(route, nroutes, from, dstStore, &cursor, pending)
		if err != nil {
			return err
		}
		if head-cursor <= tailCutoverLag {
			break
		}
	}

	// FENCE: new version, route repointed, installed on every SOURCE
	// member. From this instant the source rejects new route writes
	// with the typed redirect.
	newDir := cl.dir.Clone()
	newDir.Version++
	newDir.Routes[route] = uint32(to)
	fence := newDir.Clone()
	fence.Groups = make([][]string, len(cl.Groups))
	for i, g := range cl.Groups {
		fence.Groups[i] = append([]string(nil), g.Addrs...)
	}
	g := cl.Groups[from]
	for _, s := range append([]*kvserver.Server{g.Primary}, g.Backups...) {
		if s != nil {
			s.Store().InstallDirectory(fence, uint32(from))
		}
	}
	cl.migHook("fenced")

	// DRAIN: in-flight prepares on the route resolve (their phase-two
	// decisions are exempt from the fence); no new ones can start.
	deadline := time.Now().Add(drainTimeout)
	for srcStore().HasPreparedOnRoute(route, nroutes) {
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: route %d drain timed out on group %d", route, from)
		}
		time.Sleep(time.Millisecond)
	}
	cl.migHook("drained")

	// FINAL TAIL: everything below the post-drain head, durably.
	for {
		head, err := cl.pullTail(route, nroutes, from, dstStore, &cursor, pending)
		if err != nil {
			return err
		}
		if cursor >= head {
			break
		}
	}

	// DIGEST: source and destination must agree on the route's current
	// state before anyone is told the destination owns it.
	sd := srcStore().SlotDigest(route, nroutes)
	dd := dstStore.SlotDigest(route, nroutes)
	if sd != dd {
		rollback := fence.Clone()
		rollback.Version++
		rollback.Routes[route] = uint32(from)
		cl.installDirectory(rollback, from)
		return fmt.Errorf("cluster: route %d digest mismatch at cutover (src %016x dst %016x); fence rolled back", route, sd, dd)
	}
	cl.migHook("cutover")

	// PUBLISH: destination group first, then everyone.
	cl.installDirectory(newDir, to)
	return nil
}

// pullTail pulls one batch of the source group's replication log at
// *cursor, waits it durable on the source, applies the route-relevant
// records to the destination, and advances the cursor. Returns the
// source head observed with the batch. A truncated log (cursor below
// the retained base) or a source failover surfaces errMigrationRestart.
func (cl *Cluster) pullTail(route, nroutes uint32, from int, dstStore *kvserver.Store, cursor *uint64, pending map[uint64]pendingTx) (uint64, error) {
	src := cl.Groups[from].Primary.Store()
	recs, head, base, err := src.MigrationRecords(*cursor, tailBatch)
	if err != nil {
		return 0, fmt.Errorf("%w: pulling tail at %d: %v", errMigrationRestart, *cursor, err)
	}
	if len(recs) == 0 {
		if *cursor < base {
			return 0, fmt.Errorf("%w: tail cursor %d truncated (base %d)", errMigrationRestart, *cursor, base)
		}
		return head, nil
	}
	// Only durable records may cross: a source failover can retract
	// nothing below the watermark, so nothing the destination ingests
	// can ever be un-written on the source side.
	last := recs[len(recs)-1].Seq
	if err := src.WaitSeqDurable(last + 1); err != nil {
		return 0, fmt.Errorf("%w: waiting tail durability at %d: %v", errMigrationRestart, last, err)
	}
	// Route-relevant commits are collected in stream order and ingested
	// as ONE batch per pull: the destination waits durability once per
	// batch, so the tail drains at batch granularity instead of paying a
	// destination-group round trip per record — without that, a tail
	// racing a saturating workload never converges.
	batch := make([]kvserver.MigCommit, 0, len(recs))
	for _, sr := range recs {
		rec := sr.Rec
		switch rec.Kind {
		case kv.RecCommit:
			if ops := routeOps(rec.Ops, route, nroutes); len(ops) > 0 {
				batch = append(batch, kvserver.MigCommit{TS: rec.TS, Ops: ops})
			}
		case kv.RecPrepare:
			if ops := routeOps(rec.Ops, route, nroutes); len(ops) > 0 {
				pending[rec.TxID] = pendingTx{ops: ops}
			}
		case kv.RecDecide:
			p, ok := pending[rec.TxID]
			if !ok {
				break
			}
			delete(pending, rec.TxID)
			if rec.Commit {
				batch = append(batch, kvserver.MigCommit{TS: rec.TS, Ops: p.ops})
			}
		case kv.RecEpoch:
			// Membership changes are the source group's business.
		}
	}
	if err := dstStore.IngestMigratedCommits(batch); err != nil {
		return 0, err
	}
	*cursor = last + 1
	return head, nil
}
