package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"yesquel/internal/cluster"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
	"yesquel/internal/rpc"
)

// rawFastCommit sends one FastCommitReq straight at addr (bypassing
// the kvclient redirect machinery) and reports whether it was
// acknowledged OK, plus the transport/application error if any.
func rawFastCommit(addr string, txid uint64, epoch uint64, start kv.Timestamp, op *kv.Op) (bool, error) {
	conn, err := rpc.Dial(addr)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	req := kv.FastCommitReq{TxID: txid, Start: start, Ops: []*kv.Op{op}, Epoch: epoch}
	respB, err := conn.Call(context.Background(), kv.MethodFastCommit, req.Encode())
	if err != nil {
		return false, err
	}
	resp, err := kv.DecodeFastCommitResp(respB)
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// TestIsolatedStalePrimaryNeverAcksAfterNewEpoch is the split-brain
// chaos regression: the primary is network-isolated (NOT killed — it
// keeps running and stays reachable from its side of the partition),
// the backup is promoted into a new epoch after waiting out the lease
// it granted, and from the moment the new epoch exists the stale
// primary never acknowledges another write: before its lease expires
// its strict mirror fails (nothing became visible), after expiry the
// lease check rejects outright. Split brain is prevented, not merely
// detected after the fact.
func TestIsolatedStalePrimaryNeverAcksAfterNewEpoch(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos drill (-short)")
	}
	cl, err := cluster.StartReplicated(1, 2, kvserver.Config{LeaseDuration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pre := c.NewOID(0)
	tx := c.Begin()
	tx.Put(pre, kv.NewPlain([]byte("pre-partition")))
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	oldAddr := cl.Addrs[0]
	oldStore := cl.Groups[0].Primary.Store()
	start := oldStore.Clock().Now()

	// Clients on the primary's side of the partition hammer it with
	// writes for the whole failover window.
	var mu sync.Mutex
	var ackTimes []time.Time
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		txid := uint64(9_000_000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			txid++
			op := &kv.Op{Kind: kv.OpPut, OID: kv.MakeOID(0, txid), Value: kv.NewPlain([]byte("stale-side"))}
			ok, _ := rawFastCommit(oldAddr, txid, 1, start, op)
			if ok {
				mu.Lock()
				ackTimes = append(ackTimes, time.Now())
				mu.Unlock()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Partition the primary and promote the backup. IsolatePrimary
	// waits out the lease the backup granted before bumping the epoch,
	// so by the time it returns the new epoch is live AND the stale
	// primary's lease has provably expired.
	isolatedAt := time.Now()
	old, err := cl.IsolatePrimary(0)
	if err != nil {
		t.Fatal(err)
	}
	promotedAt := time.Now()
	if waited := promotedAt.Sub(isolatedAt); waited < 100*time.Millisecond {
		t.Fatalf("promotion did not wait out the lease (took %v)", waited)
	}

	// The new epoch serves: first acked write on the promoted member.
	c2, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	post := c2.NewOID(0)
	tx2 := c2.Begin()
	tx2.Put(post, kv.NewPlain([]byte("new-epoch")))
	if err := tx2.Commit(ctx); err != nil {
		t.Fatalf("write on the new epoch: %v", err)
	}

	// Keep hammering the stale primary a while longer, then stop.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The headline assertion: zero acknowledged writes on the stale
	// primary after the new epoch was established.
	mu.Lock()
	defer mu.Unlock()
	for _, at := range ackTimes {
		if at.After(promotedAt) {
			t.Fatalf("stale primary acknowledged a write %v after the new epoch was established", at.Sub(promotedAt))
		}
	}

	// And the direct probes agree: a write is rejected with
	// ErrWrongEpoch (its lease expired; nothing was executed) ...
	ok, err := rawFastCommit(oldAddr, 9_999_999, 1, start, &kv.Op{
		Kind: kv.OpPut, OID: kv.MakeOID(0, 424242), Value: kv.NewPlain([]byte("never"))})
	if ok {
		t.Fatal("stale primary acknowledged a direct write after promotion")
	}
	if we, parsed := kv.ParseWrongEpoch(err.Error()); !parsed {
		t.Fatalf("stale-primary rejection not a wrong-epoch redirect: %v", err)
	} else if we.Epoch != 1 {
		// The isolated primary cannot have learned epoch 2 (its lease
		// renewals are partitioned too); it rejects on lease expiry,
		// still reporting its own epoch.
		t.Fatalf("stale primary reports epoch %d", we.Epoch)
	}

	// ... reads are refused too (no stale reads from a deposed primary) ...
	conn, err := rpc.Dial(oldAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = conn.Call(ctx, kv.MethodRead, (&kv.ReadReq{OID: pre, Snap: oldStore.Clock().Now(), Epoch: 1}).Encode())
	if err == nil {
		t.Fatal("stale primary served a read after its lease expired")
	}
	if _, parsed := kv.ParseWrongEpoch(err.Error()); !parsed {
		t.Fatalf("stale-read rejection not a wrong-epoch redirect: %v", err)
	}

	// ... and the split-brain counters on the stale primary show the
	// discipline at work.
	if st := old.Stats(); st.WrongEpochRejects == 0 {
		t.Fatalf("stale primary's WrongEpochRejects = 0: %+v", st)
	}
	if got := cl.Groups[0].Epoch(); got != 2 {
		t.Fatalf("promoted member's epoch = %d, want 2", got)
	}

	// Pre-partition acknowledged data survived onto the new epoch.
	check := c2.Begin()
	defer check.Abort()
	if v, err := check.Read(ctx, pre); err != nil || string(v.Data) != "pre-partition" {
		t.Fatalf("pre-partition write after failover: %v %v", v, err)
	}
}

// TestPreFailoverClientFollowsGroup is the live-membership acceptance
// test: a client opened against the original pair follows the group
// through TWO failovers and a re-formation, ending up writing to a
// member address it was never configured with — purely from
// ErrWrongEpoch redirects and ack piggybacks.
func TestPreFailoverClientFollowsGroup(t *testing.T) {
	cl, err := cluster.StartReplicated(1, 2, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// The client opens while the group is [A, B] at epoch 1.
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// write commits tag under a fresh OID. A one-shot commit racing a
	// kill can surface ErrUncertain (the request entered a connection
	// that died before the ack — longstanding lost-ack semantics,
	// orthogonal to epochs); the application-style answer is to abandon
	// that OID and retry under a fresh one, and the retry only succeeds
	// by following the epoch redirect to the new membership.
	write := func(tag string) kv.OID {
		t.Helper()
		for attempt := 0; ; attempt++ {
			oid := c.NewOID(0)
			tx := c.Begin()
			tx.Put(oid, kv.NewPlain([]byte(tag)))
			err := tx.Commit(ctx)
			if err == nil {
				return oid
			}
			if !errors.Is(err, kv.ErrUncertain) || attempt >= 3 {
				t.Fatalf("write %q: %v", tag, err)
			}
		}
	}
	o1 := write("epoch-1")

	// Failover 1: A dies, B is promoted (epoch 2, members [B]).
	if err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}
	o2 := write("epoch-2")

	// Re-formation: fresh member C joins as backup (epoch 3, [B, C]).
	// C's address did not exist when the client opened.
	if err := cl.Restart(0); err != nil {
		t.Fatal(err)
	}
	o3 := write("epoch-3")

	// Failover 2: B dies, C is promoted (epoch 4, members [C]). The
	// client can only reach C because the epoch-3 redirect taught it
	// C's address.
	if err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}
	o4 := write("epoch-4")

	if got := cl.Groups[0].Epoch(); got != 4 {
		t.Fatalf("group epoch = %d, want 4", got)
	}

	// Every write of every configuration is readable through the
	// same original client.
	check := c.Begin()
	defer check.Abort()
	for oid, want := range map[kv.OID]string{o1: "epoch-1", o2: "epoch-2", o3: "epoch-3", o4: "epoch-4"} {
		if v, err := check.Read(ctx, oid); err != nil || string(v.Data) != want {
			t.Fatalf("read %q through the pre-failover client: %v %v", want, v, err)
		}
	}
}

// TestOpenReplicatedToleratesDownReplica: opening a client must succeed
// as long as ONE member of each group answers the opening ping — a
// dead replica in the list (common right after a failover) must not
// fail the open.
func TestOpenReplicatedToleratesDownReplica(t *testing.T) {
	// A dead address that refuses connections immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	srv := kvserver.NewServer(kvserver.NewStore(nil, kvserver.Config{}))
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })

	// Dead replica listed FIRST: the open ping must rotate past it.
	c, err := kvclient.OpenReplicated([][]string{{deadAddr, srv.Addr()}})
	if err != nil {
		t.Fatalf("open with a dead preferred replica: %v", err)
	}
	defer c.Close()
	tx := c.Begin()
	oid := c.NewOID(0)
	tx.Put(oid, kv.NewPlain([]byte("reachable")))
	if err := tx.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Cluster flavor: the backup dies and a fresh client still opens
	// against the stale [primary, backup] address list and reads.
	cl, err := cluster.StartReplicated(2, 2, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Groups[0].Backups[0].Close()
	c2, err := cl.NewClient()
	if err != nil {
		t.Fatalf("open with a dead backup: %v", err)
	}
	defer c2.Close()
	check := c2.Begin()
	defer check.Abort()
	if _, err := check.Read(context.Background(), c2.NewOID(0)); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("read through the fresh client: %v", err)
	}
}

// TestBackupRejectsDirectClientWrites: in an epoch-bearing group, a
// client that reaches the backup directly (the PR 1 failure mode that
// produced divergence for the mirror guard to detect) is turned away
// with a redirect to the primary — the write never lands, so there is
// nothing to detect.
func TestBackupRejectsDirectClientWrites(t *testing.T) {
	cl, err := cluster.StartReplicated(1, 2, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	g := cl.Groups[0]
	backupAddr := g.Backups[0].Addr()
	start := g.Primary.Store().Clock().Now()

	for _, epoch := range []uint64{0, 1} {
		ok, err := rawFastCommit(backupAddr, 8_000_000+epoch, epoch, start, &kv.Op{
			Kind: kv.OpPut, OID: kv.MakeOID(0, 777), Value: kv.NewPlain([]byte("stray"))})
		if ok {
			t.Fatalf("backup acknowledged a direct client write (epoch=%d)", epoch)
		}
		we, parsed := kv.ParseWrongEpoch(err.Error())
		if !parsed {
			t.Fatalf("backup rejection not a wrong-epoch redirect: %v", err)
		}
		if len(we.Members) == 0 || we.Members[0] != g.Primary.Addr() {
			t.Fatalf("redirect does not name the primary: %+v", we)
		}
	}

	// The pair stayed converged: nothing was applied on the backup.
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tx := c.Begin()
	tx.Put(c.NewOID(0), kv.NewPlain([]byte("through-primary")))
	if err := tx.Commit(context.Background()); err != nil {
		t.Fatalf("write through the primary after stray attempts: %v", err)
	}
	if got, want := g.Backups[0].Store().StateDigest(), g.Primary.Store().StateDigest(); got != want {
		t.Fatalf("pair diverged: backup %x primary %x", got, want)
	}
}

// TestEpochStatsExposed: the operator-facing stats name the epoch,
// role, membership, lease state, and the epoch-bump counter.
func TestEpochStatsExposed(t *testing.T) {
	cl, err := cluster.StartReplicated(1, 2, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st := cl.GroupStats()
	if len(st) != 1 {
		t.Fatalf("group stats: %+v", st)
	}
	if st[0].Epoch != 1 || st[0].Role != kvserver.RolePrimary || len(st[0].Members) != 2 || !st[0].LeaseValid {
		t.Fatalf("fresh pair stats: %+v", st[0])
	}
	if err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}
	st = cl.GroupStats()
	if st[0].Epoch != 2 || st[0].Role != kvserver.RolePrimary || len(st[0].Members) != 1 {
		t.Fatalf("post-failover stats: %+v", st[0])
	}
	if agg := cl.Stats(); agg.EpochBumps == 0 {
		t.Fatalf("aggregate epoch bumps: %+v", agg)
	}
	_ = fmt.Sprintf("%+v", st[0]) // stats must be plainly printable for operators
}
