package cluster_test

import (
	"testing"

	"yesquel/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running.
// The chaos tests here kill and restart whole server processes;
// whatever they orphan must still drain by teardown.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
