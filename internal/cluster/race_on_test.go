//go:build race

package cluster_test

// raceDetector reports whether this test binary runs under the race
// detector, whose ~5-10x per-op CPU multiplier changes what a one-core
// host can be bound by. Perf-sensitive drills widen their emulated
// latencies so the resource under test stays the binding one.
const raceDetector = true
