// Package cluster starts a Yesquel storage cluster in-process: N
// logical server slots, each a single server or a primary+backup
// replication group, listening on loopback TCP ports. Tests, examples,
// and benchmarks use it to stand up the system the way the paper's
// testbed stood up N storage machines (see DESIGN.md, substitution 1).
package cluster

import (
	"fmt"

	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
)

// Group is one server slot's replication group: an acting primary and,
// when the replication factor is 2, a synchronously mirrored backup.
// Replicated groups carry an epoch: every membership change
// (promotion after a failure, re-formation with a fresh backup) is an
// explicit epoch bump recorded in the replication stream, and the
// epoch's primary only serves while it holds the lease its backup
// grants. Unreplicated slots stay at epoch 0 (no epoch discipline).
type Group struct {
	Primary *kvserver.Server
	Backup  *kvserver.Server // nil when unreplicated or after a failover
	Addrs   []string         // replica addresses, acting primary first

	gen int // restart generation, for unique log file names
}

// Epoch returns the group's current configuration epoch (as believed
// by the acting primary).
func (g *Group) Epoch() uint64 { return g.Primary.Store().Epoch() }

// Cluster is a set of running storage server slots.
type Cluster struct {
	// Servers holds each slot's acting primary; Addrs its address.
	// (Kept flat for the common unreplicated case and compatibility.)
	Servers []*kvserver.Server
	Addrs   []string
	Groups  []*Group

	cfg kvserver.Config
	rf  int
}

// Start launches n unreplicated storage servers on ephemeral loopback
// ports. Equivalent to StartReplicated(n, 1, cfg).
func Start(n int, cfg kvserver.Config) (*Cluster, error) {
	return StartReplicated(n, 1, cfg)
}

// StartReplicated launches n logical server slots with the given
// replication factor (1 = standalone, 2 = primary+backup pairs wired
// together at startup). With rf 2, every commit is synchronously
// mirrored to the slot's backup before it is acknowledged, and clients
// opened with NewClient fail over to the backup when the primary dies.
func StartReplicated(n, rf int, cfg kvserver.Config) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one server, got %d", n)
	}
	if rf < 1 || rf > 2 {
		return nil, fmt.Errorf("cluster: replication factor must be 1 or 2, got %d", rf)
	}
	cl := &Cluster{cfg: cfg, rf: rf}
	for i := 0; i < n; i++ {
		g := &Group{}
		primary, err := cl.startMember(i, "")
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("cluster: server %d: %w", i, err)
		}
		g.Primary = primary
		g.Addrs = []string{primary.Addr()}
		cl.Groups = append(cl.Groups, g)
		cl.Servers = append(cl.Servers, primary)
		cl.Addrs = append(cl.Addrs, primary.Addr())
		if rf == 2 {
			if err := cl.attachBackup(i); err != nil {
				cl.Close()
				return nil, fmt.Errorf("cluster: server %d backup: %w", i, err)
			}
			// Install epoch 1 with the fresh pair as members. The
			// RecEpoch record mirrors to the backup like any stream
			// record, and its ack doubles as the primary's first lease.
			if _, err := g.Primary.BumpEpoch(append([]string(nil), g.Addrs...)); err != nil {
				cl.Close()
				return nil, fmt.Errorf("cluster: server %d epoch: %w", i, err)
			}
		}
	}
	return cl, nil
}

// startMember launches one storage server for slot i. suffix
// distinguishes the member's log file within the slot ("" for the
// original primary, e.g. "b1" for the first backup generation).
func (cl *Cluster) startMember(i int, suffix string) (*kvserver.Server, error) {
	scfg := cl.cfg
	if scfg.LogPath != "" {
		// LogPath names a directory; each member logs to its own file.
		if suffix == "" {
			scfg.LogPath = fmt.Sprintf("%s/server-%d.log", cl.cfg.LogPath, i)
		} else {
			scfg.LogPath = fmt.Sprintf("%s/server-%d.%s.log", cl.cfg.LogPath, i, suffix)
		}
	}
	// Replicated members keep the replication log so any of them can
	// serve a MethodSync resync after roles swap.
	scfg.ReplicationLog = scfg.ReplicationLog || cl.rf > 1
	store, err := kvserver.OpenStore(nil, scfg)
	if err != nil {
		return nil, err
	}
	srv := kvserver.NewServer(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	go srv.Serve()
	return srv, nil
}

// attachBackup starts a fresh backup for slot i, attaches it to the
// acting primary, and streams any history it is missing. It works both
// at cluster startup (empty stores, the sync is a no-op) and after a
// restart on existing write-ahead logs (the backup catches up from the
// primary's replication log).
func (cl *Cluster) attachBackup(i int) error {
	g := cl.Groups[i]
	g.gen++
	backup, err := cl.startMember(i, fmt.Sprintf("b%d", g.gen))
	if err != nil {
		return err
	}
	// Resync mode first, then attach, then stream: live commits
	// mirrored while history is still streaming are buffered by the
	// backup and applied in sequence order.
	backup.Store().StartResync()
	watermark, err := g.Primary.AttachBackup(backup.Addr())
	if err != nil {
		backup.Close()
		backup.Store().CloseLog()
		return err
	}
	if err := backup.SyncFrom(g.Primary.Addr(), watermark); err != nil {
		g.Primary.SetMirror("")
		backup.Close()
		backup.Store().CloseLog()
		return err
	}
	g.Backup = backup
	g.Addrs = append(g.Addrs, backup.Addr())
	return nil
}

// KillPrimary fails slot's primary: the server is shut down hard and
// the backup is explicitly promoted — an epoch bump whose sole member
// is the promoted backup, recorded in its replication stream.
// Connected clients learn the new configuration from the promoted
// member's ErrWrongEpoch redirects (or ack piggybacks) and fail over;
// every write acknowledged before the kill is readable on the promoted
// backup (commits were mirrored before the acknowledgment). The
// promotion is forced: the orchestrator killed the primary itself, so
// fencing by lease expiry is unnecessary — certainty beats clocks.
func (cl *Cluster) KillPrimary(slot int) error {
	g := cl.Groups[slot]
	if g.Backup == nil {
		return fmt.Errorf("cluster: slot %d has no backup to fail over to", slot)
	}
	g.Primary.Close()
	g.Primary.Store().CloseLog()
	return cl.promote(slot, true)
}

// IsolatePrimary simulates a network partition around slot's primary:
// its outbound replication (mirror records and lease renewals) is
// suppressed, but the process stays up and keeps answering clients on
// its side of the "partition". The backup is then promoted WITHOUT
// force — the promotion waits out the lease the backup granted, so by
// the time the new epoch acknowledges its first write the stale
// primary's lease has provably expired and it can no longer
// acknowledge anything. It returns the isolated old primary so chaos
// tests can keep poking it.
func (cl *Cluster) IsolatePrimary(slot int) (*kvserver.Server, error) {
	g := cl.Groups[slot]
	if g.Backup == nil {
		return nil, fmt.Errorf("cluster: slot %d has no backup to fail over to", slot)
	}
	old := g.Primary
	old.Isolate()
	if err := cl.promote(slot, false); err != nil {
		return nil, err
	}
	return old, nil
}

// promote makes slot's backup the acting primary of a new epoch.
func (cl *Cluster) promote(slot int, force bool) error {
	g := cl.Groups[slot]
	if _, err := g.Backup.Promote(force); err != nil {
		return fmt.Errorf("cluster: promoting slot %d backup: %w", slot, err)
	}
	g.Primary = g.Backup
	g.Backup = nil
	g.Addrs = []string{g.Primary.Addr()}
	cl.Servers[slot] = g.Primary
	cl.Addrs[slot] = g.Primary.Addr()
	return nil
}

// Restart re-forms slot's replication group after a failover: a fresh
// member starts as the new backup of the acting primary, streams the
// missed history via MethodSync, and resumes synchronous mirroring —
// instead of the pre-replication dead end where a broken pair diverged
// forever. (The restarted member starts from an empty store; its
// catch-up is a full replay of the primary's replication log,
// including every past epoch change in stream order.) Re-forming is
// itself a configuration change: the primary bumps the epoch with the
// two-member membership, and the mirrored RecEpoch record both informs
// the new backup and seeds the primary's lease.
func (cl *Cluster) Restart(slot int) error {
	g := cl.Groups[slot]
	if g.Backup != nil {
		return fmt.Errorf("cluster: slot %d already has a backup", slot)
	}
	if err := cl.attachBackup(slot); err != nil {
		return err
	}
	if g.Epoch() > 0 || cl.rf > 1 {
		if _, err := g.Primary.BumpEpoch(append([]string(nil), g.Addrs...)); err != nil {
			return fmt.Errorf("cluster: slot %d epoch bump: %w", slot, err)
		}
	}
	return nil
}

// NewClient opens a kv client connected to every server slot, with
// failover across each slot's replicas.
func (cl *Cluster) NewClient() (*kvclient.Client, error) {
	groups := make([][]string, len(cl.Groups))
	for i, g := range cl.Groups {
		groups[i] = append([]string(nil), g.Addrs...)
	}
	return kvclient.OpenReplicated(groups)
}

// Close shuts all servers down (flushing their logs, if any).
func (cl *Cluster) Close() {
	for _, g := range cl.Groups {
		for _, s := range []*kvserver.Server{g.Primary, g.Backup} {
			if s != nil {
				s.Close()
				s.Store().CloseLog()
			}
		}
	}
}

// Stats aggregates the acting primaries' counters across slots.
func (cl *Cluster) Stats() kvserver.StatsSnapshot {
	var out kvserver.StatsSnapshot
	for _, s := range cl.Servers {
		st := s.Store().Stats()
		out.Reads += st.Reads
		out.ReadWaits += st.ReadWaits
		out.Prepares += st.Prepares
		out.Commits += st.Commits
		out.FastCommits += st.FastCommits
		out.Aborts += st.Aborts
		out.OrphanAborts += st.OrphanAborts
		out.Conflicts += st.Conflicts
		out.GCVersions += st.GCVersions
		out.EpochBumps += st.EpochBumps
		out.WrongEpochRejects += st.WrongEpochRejects
		out.Checkpoints += st.Checkpoints
		out.CheckpointFailures += st.CheckpointFailures
		out.LogRecordsTruncated += st.LogRecordsTruncated
		out.SnapshotsServed += st.SnapshotsServed
		out.SnapshotsInstalled += st.SnapshotsInstalled
		out.MirrorBatches += st.MirrorBatches
		out.MirrorBatchRecords += st.MirrorBatchRecords
		out.WALSyncs += st.WALSyncs
		out.WALFailures += st.WALFailures
	}
	return out
}

// GroupStats reports each slot's acting primary view: epoch, role,
// membership, lease validity, and counters (operator inspection).
func (cl *Cluster) GroupStats() []kvserver.ServerStats {
	out := make([]kvserver.ServerStats, len(cl.Servers))
	for i, s := range cl.Servers {
		out[i] = s.Stats()
	}
	return out
}
