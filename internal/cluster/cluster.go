// Package cluster starts a Yesquel storage cluster in-process: N
// logical server slots, each a single server or a replication group of
// rf members (a primary plus rf-1 synchronously mirrored backups),
// listening on loopback TCP ports. Tests, examples, and benchmarks use
// it to stand up the system the way the paper's testbed stood up N
// storage machines (see DESIGN.md, substitution 1).
package cluster

import (
	"context"
	"fmt"
	"time"

	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
)

// Group is one server slot's replication group: an acting primary and
// its live backups. Replicated groups carry an epoch: every membership
// change (promotion after a failure, re-formation with a fresh backup)
// is an explicit epoch bump recorded in the replication stream, and the
// epoch's primary only serves while it holds a lease granted by a
// majority of its backups. Unreplicated slots stay at epoch 0 (no
// epoch discipline).
type Group struct {
	Primary *kvserver.Server
	Backups []*kvserver.Server // live backups (empty when unreplicated or after failovers)
	Addrs   []string           // replica addresses, acting primary first

	gen int // member-start generation, for unique log file names
}

// Epoch returns the group's current configuration epoch (as believed
// by the acting primary).
func (g *Group) Epoch() uint64 { return g.Primary.Store().Epoch() }

// Cluster is a set of running storage server slots.
type Cluster struct {
	// Servers holds each slot's acting primary; Addrs its address.
	// (Kept flat for the common unreplicated case and compatibility.)
	Servers []*kvserver.Server
	Addrs   []string
	Groups  []*Group

	// orphans are servers deposed out of every group but deliberately
	// left running — an isolated old primary a chaos test keeps poking
	// (IsolatePrimary). Close owns their final shutdown; without this
	// list they would outlive the test (its leak check would fail).
	orphans []*kvserver.Server

	// dir is the cluster's slot directory — the versioned route→group
	// map the cluster authority publishes to every member (see
	// migrate.go, "Slot migration and the directory").
	dir *kv.Directory

	// TestHookMigration, when non-nil, runs at each migration phase
	// boundary ("bulk-done", "fenced", "drained", "cutover"); chaos
	// tests use it to kill servers at the protocol's tender points.
	TestHookMigration func(phase string)

	cfg kvserver.Config
	rf  int
}

// maxReplicationFactor bounds rf to something a loopback test harness
// can plausibly run; the quorum math itself has no such limit.
const maxReplicationFactor = 7

// Start launches n unreplicated storage servers on ephemeral loopback
// ports. Equivalent to StartReplicated(n, 1, cfg).
func Start(n int, cfg kvserver.Config) (*Cluster, error) {
	return StartReplicated(n, 1, cfg)
}

// StartReplicated launches n logical server slots with the given
// replication factor (1 = standalone, 2 = primary+backup pairs, 3 and
// up = quorum groups of one primary and rf-1 backups, wired together
// at startup). With rf >= 2, every commit is synchronously mirrored to
// a majority of the slot's backups before it is acknowledged, and
// clients opened with NewClient fail over across the slot's replicas.
// With rf >= 3 the slot tolerates any minority of members down — one
// dead backup neither blocks writes (the quorum watermark advances on
// the survivors) nor expires the primary's lease (a majority of grants
// still renews).
func StartReplicated(n, rf int, cfg kvserver.Config) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one server, got %d", n)
	}
	if rf < 1 || rf > maxReplicationFactor {
		return nil, fmt.Errorf("cluster: replication factor must be between 1 and %d, got %d", maxReplicationFactor, rf)
	}
	cl := &Cluster{cfg: cfg, rf: rf}
	for i := 0; i < n; i++ {
		g, err := cl.startGroup(i)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("cluster: server %d: %w", i, err)
		}
		cl.Groups = append(cl.Groups, g)
		cl.Servers = append(cl.Servers, g.Primary)
		cl.Addrs = append(cl.Addrs, g.Primary.Addr())
	}
	// Publish the identity directory (version 1, Routes[i] = i): the
	// same placement the legacy modulo rule computes, now explicit,
	// versioned, and movable (see migrate.go).
	cl.buildDirectory()
	return cl, nil
}

// startGroup launches one full replica group for slot/group index i: a
// primary, rf-1 synced backups, and (when replicated) epoch 1 installed
// with the fresh membership. Used by StartReplicated for the initial
// slots and by AddServer for scale-out groups.
//
// NOTE: the group is NOT yet appended to cl.Groups; attachBackup needs
// it there, so the group is appended temporarily during construction
// when called for a new index.
func (cl *Cluster) startGroup(i int) (*Group, error) {
	g := &Group{}
	primary, err := cl.startMember(i, "")
	if err != nil {
		return nil, err
	}
	g.Primary = primary
	g.Addrs = []string{primary.Addr()}
	appended := false
	if i == len(cl.Groups) {
		// attachBackup addresses groups by index; give the nascent group
		// its slot for the duration of construction.
		cl.Groups = append(cl.Groups, g)
		appended = true
	}
	fail := func(err error) (*Group, error) {
		if appended {
			cl.Groups = cl.Groups[:len(cl.Groups)-1]
		}
		for _, s := range append([]*kvserver.Server{g.Primary}, g.Backups...) {
			s.Close()
			s.Store().CloseLog()
		}
		return nil, err
	}
	for len(g.Backups) < cl.rf-1 {
		if err := cl.attachBackup(i); err != nil {
			return fail(err)
		}
	}
	if cl.rf > 1 {
		// Install epoch 1 with the fresh group as members. The RecEpoch
		// record mirrors to every backup like any stream record, and its
		// acks double as the primary's first lease grants.
		if _, err := g.Primary.BumpEpoch(append([]string(nil), g.Addrs...)); err != nil {
			return fail(err)
		}
	}
	if appended {
		cl.Groups = cl.Groups[:len(cl.Groups)-1]
	}
	return g, nil
}

// startMember launches one storage server for slot i. suffix
// distinguishes the member's log file within the slot ("" for the
// original primary, e.g. "b1" for the first backup generation).
func (cl *Cluster) startMember(i int, suffix string) (*kvserver.Server, error) {
	scfg := cl.cfg
	if scfg.LogPath != "" {
		// LogPath names a directory; each member logs to its own file.
		if suffix == "" {
			scfg.LogPath = fmt.Sprintf("%s/server-%d.log", cl.cfg.LogPath, i)
		} else {
			scfg.LogPath = fmt.Sprintf("%s/server-%d.%s.log", cl.cfg.LogPath, i, suffix)
		}
	}
	// Replicated members keep the replication log so any of them can
	// serve a MethodSync resync after roles swap.
	scfg.ReplicationLog = scfg.ReplicationLog || cl.rf > 1
	store, err := kvserver.OpenStore(nil, scfg)
	if err != nil {
		return nil, err
	}
	srv := kvserver.NewServer(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	go srv.Serve()
	return srv, nil
}

// attachBackup starts a fresh backup for slot i, attaches it to the
// acting primary as an additional replication member, and streams any
// history it is missing. It works both at cluster startup (empty
// stores, the sync is a no-op) and after a restart on existing
// write-ahead logs (the backup catches up from the primary's
// replication log).
func (cl *Cluster) attachBackup(i int) error {
	g := cl.Groups[i]
	g.gen++
	backup, err := cl.startMember(i, fmt.Sprintf("b%d", g.gen))
	if err != nil {
		return err
	}
	// Resync mode first, then attach, then stream: live commits
	// mirrored while history is still streaming are buffered by the
	// backup and applied in sequence order.
	backup.Store().StartResync()
	watermark, err := g.Primary.AttachBackupMember(backup.Addr())
	if err != nil {
		backup.Close()
		backup.Store().CloseLog()
		return err
	}
	if err := backup.SyncFrom(g.Primary.Addr(), watermark); err != nil {
		g.Primary.DetachBackupMember(backup.Addr())
		backup.Close()
		backup.Store().CloseLog()
		return err
	}
	g.Backups = append(g.Backups, backup)
	g.Addrs = append(g.Addrs, backup.Addr())
	// A member started after the directory was published needs its own
	// copy — without it the fresh backup would accept follower reads
	// for routes its group no longer owns.
	if cl.dir != nil {
		backup.Store().InstallDirectory(cl.dir, uint32(i))
	}
	return nil
}

// KillPrimary fails slot's primary: the server is shut down hard and
// the most-caught-up surviving backup is explicitly promoted — an
// epoch bump whose membership is the surviving group, recorded in the
// winner's replication stream. Connected clients learn the new
// configuration from the promoted member's ErrWrongEpoch redirects (or
// ack piggybacks) and fail over; every write acknowledged before the
// kill is readable after the promotion (a quorum held it, and the
// winner has the longest stream among the survivors). The promotion is
// forced: the orchestrator killed the primary itself, so fencing by
// lease expiry is unnecessary — certainty beats clocks.
func (cl *Cluster) KillPrimary(slot int) error {
	g := cl.Groups[slot]
	if len(g.Backups) == 0 {
		return fmt.Errorf("cluster: slot %d has no backup to fail over to", slot)
	}
	g.Primary.Close()
	g.Primary.Store().CloseLog()
	return cl.promote(slot, true)
}

// KillBackup hard-kills slot's backup at index i WITHOUT telling the
// primary: the next mirror batch to it fails, marking the member
// broken in the primary's pipeline, and with rf >= 3 the primary keeps
// acknowledging writes on the surviving quorum (the dead member stays
// in the epoch membership as a silent minority). Restart re-forms the
// group to full strength.
func (cl *Cluster) KillBackup(slot, i int) error {
	g := cl.Groups[slot]
	if i < 0 || i >= len(g.Backups) {
		return fmt.Errorf("cluster: slot %d has no backup %d", slot, i)
	}
	b := g.Backups[i]
	b.Close()
	b.Store().CloseLog()
	g.Backups = append(g.Backups[:i], g.Backups[i+1:]...)
	for j, a := range g.Addrs {
		if a == b.Addr() {
			g.Addrs = append(g.Addrs[:j], g.Addrs[j+1:]...)
			break
		}
	}
	return nil
}

// IsolatePrimary simulates a network partition around slot's primary:
// its outbound replication (mirror records and lease renewals) is
// suppressed, but the process stays up and keeps answering clients on
// its side of the "partition". A backup is then promoted WITHOUT force
// — the promotion first freezes every surviving member's grant clock
// and waits out the leases they granted, so by the time the new epoch
// acknowledges its first write the stale primary's quorum lease has
// provably expired (a majority of its grants are gone) and it can no
// longer acknowledge anything. It returns the isolated old primary so
// chaos tests can keep poking it.
func (cl *Cluster) IsolatePrimary(slot int) (*kvserver.Server, error) {
	g := cl.Groups[slot]
	if len(g.Backups) == 0 {
		return nil, fmt.Errorf("cluster: slot %d has no backup to fail over to", slot)
	}
	old := g.Primary
	old.Isolate()
	if err := cl.promote(slot, false); err != nil {
		return nil, err
	}
	// The deposed primary is out of the group but still running by
	// design; Close shuts it down when the harness is torn down.
	cl.orphans = append(cl.orphans, old)
	return old, nil
}

// promote fails slot over to the most-caught-up surviving backup.
//
// Order matters. Every live backup is frozen FIRST (BeginPromotion:
// it stops granting or re-arming leases and stops accepting stream
// records), so the stream heads being compared cannot move and the old
// primary cannot keep its quorum lease alive through a member that was
// not yet frozen. Only then — after waiting out the granted leases,
// unless force says the old primary is known dead — are the heads
// compared and the longest stream promoted. Because acknowledged
// records reached a majority of the group and every backup holds a
// prefix of the old primary's stream, the longest surviving prefix
// contains every acknowledged write; promoting anything less would
// silently drop acknowledged data, which is exactly what the old
// blind "promote the backup" did for pairs and what this replaces.
//
// The losers then ADOPT the new epoch out-of-band (not merely abandon
// their frozen promotion state: a loser left at the old epoch would
// keep granting the deposed primary's lease renewals and hold its
// quorum lease alive — split-brain by politeness) and rejoin the
// winner's stream as its backups, resyncing the gap between their
// heads and the winner's.
func (cl *Cluster) promote(slot int, force bool) error {
	g := cl.Groups[slot]
	live := g.Backups
	if len(live) == 0 {
		return fmt.Errorf("cluster: slot %d has no live backup to promote", slot)
	}
	for _, b := range live {
		b.Store().BeginPromotion()
	}
	if !force {
		for _, b := range live {
			for {
				wait := time.Until(b.Store().GrantExpiry())
				if wait <= 0 {
					break
				}
				time.Sleep(wait)
			}
		}
	}
	win := 0
	for i, b := range live {
		if b.Store().ReplSeq() > live[win].Store().ReplSeq() {
			win = i
		}
	}
	winner := live[win]
	newEpoch := uint64(0)
	for _, b := range live {
		if e := b.Store().Epoch(); e > newEpoch {
			newEpoch = e
		}
	}
	newEpoch++
	members := []string{winner.Addr()}
	var losers []*kvserver.Server
	for i, b := range live {
		if i != win {
			members = append(members, b.Addr())
			losers = append(losers, b)
		}
	}
	if err := winner.BumpEpochTo(newEpoch, members); err != nil {
		for _, b := range live {
			b.Store().AbandonPromotion()
		}
		return fmt.Errorf("cluster: promoting slot %d: %w", slot, err)
	}
	var firstErr error
	kept := losers[:0]
	for _, b := range losers {
		b.Store().AdoptEpoch(newEpoch, members)
		b.Store().StartResync()
		watermark, err := winner.AttachBackupMember(b.Addr())
		if err == nil {
			err = b.SyncFrom(winner.Addr(), watermark)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: rejoining %s to promoted slot %d: %w", b.Addr(), slot, err)
			}
			winner.DetachBackupMember(b.Addr())
			b.Close()
			b.Store().CloseLog()
			continue
		}
		kept = append(kept, b)
	}
	if len(kept) < len(losers) {
		// Some losers could not rejoin and were dropped; the epoch just
		// installed still lists them, and the winner would wait forever
		// for lease grants from members that no longer exist. Re-form
		// with the membership that actually survived.
		members = []string{winner.Addr()}
		for _, b := range kept {
			members = append(members, b.Addr())
		}
		if _, err := winner.BumpEpoch(members); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: re-forming promoted slot %d without failed members: %w", slot, err)
		}
	}
	g.Primary = winner
	g.Backups = append([]*kvserver.Server(nil), kept...)
	g.Addrs = []string{winner.Addr()}
	for _, b := range g.Backups {
		g.Addrs = append(g.Addrs, b.Addr())
	}
	cl.Servers[slot] = winner
	cl.Addrs[slot] = winner.Addr()
	return firstErr
}

// Restart re-forms slot's replication group back to full strength
// after failovers: fresh members start as new backups of the acting
// primary, stream the missed history via MethodSync, and resume
// synchronous mirroring — instead of the pre-replication dead end
// where a broken pair diverged forever. (Each restarted member starts
// from an empty store; its catch-up is a full replay of the primary's
// replication log, including every past epoch change in stream order,
// or a state transfer when the log was truncated.) Re-forming is
// itself a configuration change: the primary bumps the epoch with the
// full membership, and the mirrored RecEpoch record both informs the
// new backups and seeds the primary's lease.
func (cl *Cluster) Restart(slot int) error {
	g := cl.Groups[slot]
	if len(g.Backups) >= cl.rf-1 {
		return fmt.Errorf("cluster: slot %d already has %d backups", slot, len(g.Backups))
	}
	for len(g.Backups) < cl.rf-1 {
		if err := cl.attachBackup(slot); err != nil {
			return err
		}
	}
	if g.Epoch() > 0 || cl.rf > 1 {
		if _, err := g.Primary.BumpEpoch(append([]string(nil), g.Addrs...)); err != nil {
			return fmt.Errorf("cluster: slot %d epoch bump: %w", slot, err)
		}
	}
	return nil
}

// NewClient opens a kv client connected to every server slot, with
// failover across each slot's replicas. The client eagerly adopts the
// cluster's slot directory (best-effort), so its placement spreads over
// every directory route — not just the groups — from the first OID it
// allocates.
func (cl *Cluster) NewClient() (*kvclient.Client, error) {
	groups := make([][]string, len(cl.Groups))
	for i, g := range cl.Groups {
		groups[i] = append([]string(nil), g.Addrs...)
	}
	c, err := kvclient.OpenReplicated(groups)
	if err != nil {
		return nil, err
	}
	if cl.dir != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = c.FetchDirectory(ctx, 0)
		cancel()
	}
	return c, nil
}

// Close shuts all servers down (flushing their logs, if any),
// including deposed primaries left running by IsolatePrimary.
func (cl *Cluster) Close() {
	for _, g := range cl.Groups {
		servers := append([]*kvserver.Server{g.Primary}, g.Backups...)
		for _, s := range servers {
			if s != nil {
				s.Close()
				s.Store().CloseLog()
			}
		}
	}
	for _, s := range cl.orphans {
		s.Close()
		s.Store().CloseLog()
	}
	cl.orphans = nil
}

// Stats aggregates the acting primaries' counters across slots. The
// follower-read counters additionally sum over each slot's BACKUPS —
// that is where follower reads are served — so Reads counts every
// read the cluster answered and FollowerReads says how many of them
// the backups absorbed.
func (cl *Cluster) Stats() kvserver.StatsSnapshot {
	var out kvserver.StatsSnapshot
	for _, g := range cl.Groups {
		for _, b := range g.Backups {
			st := b.Store().Stats()
			out.Reads += st.Reads
			out.FollowerReads += st.FollowerReads
			out.FollowerReadWaits += st.FollowerReadWaits
			out.DurableReadWaits += st.DurableReadWaits
		}
	}
	for _, s := range cl.Servers {
		st := s.Store().Stats()
		out.Reads += st.Reads
		out.ReadWaits += st.ReadWaits
		out.FollowerReads += st.FollowerReads
		out.FollowerReadWaits += st.FollowerReadWaits
		out.DurableReadWaits += st.DurableReadWaits
		out.Prepares += st.Prepares
		out.Commits += st.Commits
		out.FastCommits += st.FastCommits
		out.Aborts += st.Aborts
		out.OrphanAborts += st.OrphanAborts
		out.Conflicts += st.Conflicts
		out.GCVersions += st.GCVersions
		out.EpochBumps += st.EpochBumps
		out.WrongEpochRejects += st.WrongEpochRejects
		out.WrongSlotRejects += st.WrongSlotRejects
		out.MigratedVersions += st.MigratedVersions
		out.Checkpoints += st.Checkpoints
		out.CheckpointFailures += st.CheckpointFailures
		out.LogRecordsTruncated += st.LogRecordsTruncated
		out.SnapshotsServed += st.SnapshotsServed
		out.SnapshotsInstalled += st.SnapshotsInstalled
		out.MirrorBatches += st.MirrorBatches
		out.MirrorBatchRecords += st.MirrorBatchRecords
		out.WALSyncs += st.WALSyncs
		out.WALFailures += st.WALFailures
	}
	return out
}

// GroupStats reports each slot's acting primary view: epoch, role,
// membership, lease validity, per-member replication progress, and
// counters (operator inspection).
func (cl *Cluster) GroupStats() []kvserver.ServerStats {
	out := make([]kvserver.ServerStats, len(cl.Servers))
	for i, s := range cl.Servers {
		out[i] = s.Stats()
	}
	return out
}
