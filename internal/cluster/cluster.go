// Package cluster starts a Yesquel storage cluster in-process: N
// storage servers, each listening on its own loopback TCP port. Tests,
// examples, and benchmarks use it to stand up the system the way the
// paper's testbed stood up N storage machines (see DESIGN.md,
// substitution 1).
package cluster

import (
	"fmt"

	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
)

// Cluster is a set of running storage servers.
type Cluster struct {
	Servers []*kvserver.Server
	Addrs   []string
}

// Start launches n storage servers on ephemeral loopback ports.
func Start(n int, cfg kvserver.Config) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one server, got %d", n)
	}
	cl := &Cluster{}
	for i := 0; i < n; i++ {
		scfg := cfg
		if scfg.LogPath != "" {
			// LogPath names a directory; each server logs to its own
			// file inside it.
			scfg.LogPath = fmt.Sprintf("%s/server-%d.log", cfg.LogPath, i)
		}
		store, err := kvserver.OpenStore(nil, scfg)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("cluster: server %d: %w", i, err)
		}
		srv := kvserver.NewServer(store)
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			cl.Close()
			return nil, fmt.Errorf("cluster: server %d: %w", i, err)
		}
		go srv.Serve()
		cl.Servers = append(cl.Servers, srv)
		cl.Addrs = append(cl.Addrs, srv.Addr())
	}
	return cl, nil
}

// NewClient opens a kv client connected to every server.
func (cl *Cluster) NewClient() (*kvclient.Client, error) {
	return kvclient.Open(cl.Addrs)
}

// Close shuts all servers down (flushing their logs, if any).
func (cl *Cluster) Close() {
	for _, s := range cl.Servers {
		if s != nil {
			s.Close()
			s.Store().CloseLog()
		}
	}
}

// Stats aggregates the stores' counters across servers.
func (cl *Cluster) Stats() kvserver.StatsSnapshot {
	var out kvserver.StatsSnapshot
	for _, s := range cl.Servers {
		st := s.Store().Stats()
		out.Reads += st.Reads
		out.ReadWaits += st.ReadWaits
		out.Prepares += st.Prepares
		out.Commits += st.Commits
		out.FastCommits += st.FastCommits
		out.Aborts += st.Aborts
		out.Conflicts += st.Conflicts
		out.GCVersions += st.GCVersions
	}
	return out
}
