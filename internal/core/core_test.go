package core_test

import (
	"context"
	"sync"
	"testing"

	"yesquel/internal/cluster"
	"yesquel/internal/core"
	"yesquel/internal/kv/kvserver"
)

func connect(t *testing.T, servers int) *core.Client {
	t.Helper()
	cl, err := cluster.Start(servers, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	yc, err := core.Connect(cl.Addrs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { yc.Close() })
	return yc
}

func TestConnectAndQuery(t *testing.T) {
	yc := connect(t, 3)
	ctx := context.Background()
	db := yc.Session()
	if _, err := db.Exec(ctx, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ctx, "INSERT INTO t VALUES (?, ?)", core.Int(1), core.Text("hello")); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(ctx, "SELECT v FROM t WHERE id = ?", core.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.All()[0][0].S != "hello" {
		t.Fatalf("rows: %+v", rows.All())
	}
}

func TestManySessionsConcurrently(t *testing.T) {
	// The architecture's core claim: many clients, each with an
	// embedded query processor, sharing the storage engine.
	yc := connect(t, 4)
	ctx := context.Background()
	setup := yc.Session()
	if _, err := setup.Exec(ctx, "CREATE TABLE counters (id INTEGER PRIMARY KEY, n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			db := yc.Session()
			for i := 0; i < 25; i++ {
				id := int64(w*1000 + i)
				if _, err := db.Exec(ctx, "INSERT INTO counters VALUES (?, ?)", core.Int(id), core.Int(0)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	rows, err := yc.Session().Query(ctx, "SELECT count(*) FROM counters")
	if err != nil {
		t.Fatal(err)
	}
	if rows.All()[0][0].I != workers*25 {
		t.Fatalf("count = %d", rows.All()[0][0].I)
	}
}

func TestDirectTreeAccess(t *testing.T) {
	yc := connect(t, 2)
	ctx := context.Background()
	tree, err := yc.CreateTree(ctx, 3, core.Options{}.TreeConfig)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	tx := yc.KV().Begin()
	if err := tree.Put(ctx, tx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	tx = yc.KV().Begin()
	defer tx.Abort()
	v, err := tree.Get(ctx, tx, []byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("%q %v", v, err)
	}
}
