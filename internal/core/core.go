// Package core is Yesquel's public client API — what a Web application
// links against. A Client embeds the full query processor (package sql)
// and the YDBT storage-engine library (package dbt), per the paper's
// architecture: "each client has its own embedded query processor ...
// the query processors all share a common storage engine".
//
// Typical use:
//
//	yc, err := core.Connect([]string{"10.0.0.1:7000", "10.0.0.2:7000"}, core.Options{})
//	defer yc.Close()
//	db := yc.Session()
//	db.Exec(ctx, "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT)")
//	db.Exec(ctx, "INSERT INTO users VALUES (?, ?)", core.Int(1), core.Text("ada"))
//	rows, err := db.Query(ctx, "SELECT name FROM users WHERE id = ?", core.Int(1))
//
// Sessions from one Client share the schema catalog and the client-side
// DBT node cache; each session is single-goroutine (open one per
// worker, like one connection per request handler).
package core

import (
	"context"
	"fmt"

	"yesquel/internal/dbt"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/sql"
)

// Options tunes a Client.
type Options struct {
	// TreeConfig configures the DBT handles (node size, caching,
	// split policy). The zero value is the full Yesquel behaviour.
	TreeConfig dbt.Config
}

// Client is a Yesquel client: a kv connection to the storage servers
// plus the shared catalog used by its sessions.
type Client struct {
	kv  *kvclient.Client
	cat *sql.Catalog
}

// Connect dials the storage servers.
func Connect(addrs []string, opts Options) (*Client, error) {
	kvc, err := kvclient.Open(addrs)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Client{kv: kvc, cat: sql.NewCatalog(kvc, opts.TreeConfig)}, nil
}

// Close releases the catalog and closes server connections.
func (c *Client) Close() error {
	c.cat.Close()
	return c.kv.Close()
}

// Session returns a new SQL session. Sessions are cheap; they share the
// client's catalog, caches, and connections.
func (c *Client) Session() *sql.DB {
	return sql.NewDBWithCatalog(c.kv, c.cat)
}

// KV exposes the transactional key-value client for applications that
// want to bypass SQL (or mix SQL and direct DBT access).
func (c *Client) KV() *kvclient.Client { return c.kv }

// OpenTree opens an existing DBT by id for direct tree access.
func (c *Client) OpenTree(ctx context.Context, id uint64, cfg dbt.Config) (*dbt.Tree, error) {
	return dbt.Open(ctx, c.kv, id, cfg)
}

// CreateTree creates a DBT by id for direct tree access. User tree ids
// must not collide with ids allocated by the SQL catalog; use ids below
// 16 or coordinate through the catalog.
func (c *Client) CreateTree(ctx context.Context, id uint64, cfg dbt.Config) (*dbt.Tree, error) {
	return dbt.Create(ctx, c.kv, id, cfg)
}

// Null is the SQL NULL value, re-exported for application convenience.
var Null = sql.Null

// Int wraps an int64 as a SQL value.
func Int(i int64) sql.Value { return sql.Int(i) }

// Float wraps a float64 as a SQL value.
func Float(f float64) sql.Value { return sql.Float(f) }

// Text wraps a string as a SQL value.
func Text(s string) sql.Value { return sql.Text(s) }

// Blob wraps bytes as a SQL value.
func Blob(b []byte) sql.Value { return sql.Blob(b) }
