package wiki_test

import (
	"context"
	"testing"

	"yesquel/internal/baseline"
	"yesquel/internal/cluster"
	"yesquel/internal/core"
	"yesquel/internal/dbt"
	"yesquel/internal/kv/kvserver"
	"yesquel/internal/wiki"
)

func setup(t *testing.T, servers, pages int) (*core.Client, wiki.DBExecutor) {
	t.Helper()
	cl, err := cluster.Start(servers, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	yc, err := core.Connect(cl.Addrs, core.Options{TreeConfig: dbt.Config{MaxCells: 32}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { yc.Close() })
	ex := wiki.DBExecutor{DB: yc.Session()}
	if err := wiki.Load(context.Background(), ex, pages, 3); err != nil {
		t.Fatal(err)
	}
	return yc, ex
}

func TestLoadAndRead(t *testing.T) {
	_, ex := setup(t, 2, 20)
	w := wiki.NewWorker(ex, 20, 0, 1)
	ctx := context.Background()
	for p := int64(0); p < 20; p++ {
		if err := w.Read(ctx, p); err != nil {
			t.Fatalf("read page %d: %v", p, err)
		}
	}
}

func TestEditUpdatesLatestRevision(t *testing.T) {
	_, ex := setup(t, 2, 5)
	ctx := context.Background()
	w := wiki.NewWorker(ex, 5, 1.0, 7)

	before, err := ex.Query(ctx, "SELECT latest FROM page WHERE title = ?", core.Text(wiki.Title(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Edit(ctx, 3); err != nil {
		t.Fatal(err)
	}
	after, err := ex.Query(ctx, "SELECT latest FROM page WHERE title = ?", core.Text(wiki.Title(3)))
	if err != nil {
		t.Fatal(err)
	}
	if before[0][0].I == after[0][0].I {
		t.Fatal("edit did not advance latest revision")
	}
	// The revision count for the page grew.
	revs, err := ex.Query(ctx, "SELECT count(*) FROM revision WHERE page_id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if revs[0][0].I != 2 {
		t.Fatalf("revisions = %d, want 2", revs[0][0].I)
	}
	// Reading still works after the edit.
	if err := w.Read(ctx, 3); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerMixedSteps(t *testing.T) {
	_, ex := setup(t, 2, 10)
	w := wiki.NewWorker(ex, 10, 0.2, 42)
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if err := w.Step(ctx); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if w.Reads == 0 || w.Edits == 0 {
		t.Fatalf("mix not exercised: reads=%d edits=%d", w.Reads, w.Edits)
	}
}

func TestWorkloadAgainstCentralSQLComparator(t *testing.T) {
	// The same workload must run unchanged against the centralized
	// comparator — that is the point of the Executor interface.
	srv, err := baseline.NewCentralSQLServer(2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	c, err := baseline.DialCentralSQL(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	if err := wiki.Load(ctx, c, 8, 2); err != nil {
		t.Fatal(err)
	}
	w := wiki.NewWorker(c, 8, 0.25, 5)
	for i := 0; i < 30; i++ {
		if err := w.Step(ctx); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if w.Reads == 0 || w.Edits == 0 {
		t.Fatalf("mix not exercised: reads=%d edits=%d", w.Reads, w.Edits)
	}
}
