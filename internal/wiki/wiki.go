// Package wiki implements the Wikipedia-style Web application workload
// of the paper's SQL evaluation: a page table keyed by title, a
// revision history, and inter-page links, exercised with a read-heavy
// mix (render a page: 3 queries; edit a page: read + 2 writes) under
// zipfian page popularity. Real Wikipedia dumps are replaced by
// synthetic articles (DESIGN.md, substitution 4) — the schema, query
// shapes, and skew are what the experiment measures.
package wiki

import (
	"context"
	"fmt"
	"math/rand"

	"yesquel/internal/sql"
	"yesquel/internal/ycsb"
)

// Schema is the DDL of the wiki database.
var Schema = []string{
	`CREATE TABLE page (
		id INTEGER PRIMARY KEY,
		title TEXT NOT NULL,
		latest INTEGER NOT NULL
	)`,
	`CREATE UNIQUE INDEX page_title ON page (title)`,
	`CREATE TABLE revision (
		id INTEGER PRIMARY KEY,
		page_id INTEGER NOT NULL,
		content TEXT NOT NULL,
		author TEXT
	)`,
	`CREATE INDEX rev_page ON revision (page_id)`,
	`CREATE TABLE pagelink (
		id INTEGER PRIMARY KEY,
		src INTEGER NOT NULL,
		dst_title TEXT NOT NULL
	)`,
	`CREATE INDEX link_src ON pagelink (src)`,
}

// Executor abstracts the SQL endpoint so the workload runs unchanged
// against Yesquel sessions and the centralized comparator.
type Executor interface {
	Query(ctx context.Context, query string, args ...sql.Value) ([][]sql.Value, error)
	Exec(ctx context.Context, query string, args ...sql.Value) error
}

// DBExecutor adapts a Yesquel session to Executor.
type DBExecutor struct{ DB *sql.DB }

// Query implements Executor.
func (d DBExecutor) Query(ctx context.Context, query string, args ...sql.Value) ([][]sql.Value, error) {
	rows, err := d.DB.Query(ctx, query, args...)
	if err != nil {
		return nil, err
	}
	return rows.All(), nil
}

// Exec implements Executor.
func (d DBExecutor) Exec(ctx context.Context, query string, args ...sql.Value) error {
	_, err := d.DB.Exec(ctx, query, args...)
	return err
}

// Title formats page n's title.
func Title(n int64) string { return fmt.Sprintf("Article_%06d", n) }

// Load creates the schema and pages 0..numPages-1, each with one
// revision and linksPerPage outgoing links.
func Load(ctx context.Context, ex Executor, numPages int, linksPerPage int) error {
	for _, ddl := range Schema {
		if err := ex.Exec(ctx, ddl); err != nil {
			return fmt.Errorf("wiki: schema: %w", err)
		}
	}
	rng := rand.New(rand.NewSource(99))
	for p := 0; p < numPages; p++ {
		revID := int64(p)*1000 + 1
		if err := ex.Exec(ctx, "INSERT INTO revision VALUES (?, ?, ?, ?)",
			sql.Int(revID), sql.Int(int64(p)), sql.Text(articleBody(int64(p), 1)), sql.Text("loader")); err != nil {
			return err
		}
		if err := ex.Exec(ctx, "INSERT INTO page VALUES (?, ?, ?)",
			sql.Int(int64(p)), sql.Text(Title(int64(p))), sql.Int(revID)); err != nil {
			return err
		}
		for l := 0; l < linksPerPage; l++ {
			dst := rng.Int63n(int64(numPages))
			if err := ex.Exec(ctx, "INSERT INTO pagelink (id, src, dst_title) VALUES (?, ?, ?)",
				sql.Int(int64(p)*100+int64(l)), sql.Int(int64(p)), sql.Text(Title(dst))); err != nil {
				return err
			}
		}
	}
	return nil
}

func articleBody(page, rev int64) string {
	return fmt.Sprintf("== Article %d ==\nrevision %d\n%s", page, rev, loremBody)
}

const loremBody = "Lorem ipsum dolor sit amet, consectetur adipiscing elit, " +
	"sed do eiusmod tempor incididunt ut labore et dolore magna aliqua."

// Worker drives the request mix against one Executor. Not safe for
// concurrent use; one Worker per client goroutine.
type Worker struct {
	ex       Executor
	rng      *rand.Rand
	zipf     *ycsb.Zipfian
	numPages int64
	editFrac float64
	nextRev  int64

	Reads, Edits, Errors uint64
}

// NewWorker returns a workload driver. editFrac is the fraction of
// operations that edit (the paper's mix is read-heavy; 0.1 by default
// if negative). seed differentiates concurrent workers; revBase makes
// their revision ids disjoint.
func NewWorker(ex Executor, numPages int64, editFrac float64, seed int64) *Worker {
	if editFrac < 0 {
		editFrac = 0.1
	}
	rng := rand.New(rand.NewSource(seed))
	return &Worker{
		ex:       ex,
		rng:      rng,
		zipf:     ycsb.NewZipfian(rng, numPages, ycsb.DefaultTheta),
		numPages: numPages,
		editFrac: editFrac,
		nextRev:  seed<<40 | 1<<39, // disjoint per-worker revision ids
	}
}

// Step performs one operation (a page render or an edit).
func (w *Worker) Step(ctx context.Context) error {
	page := w.zipf.Next()
	var err error
	if w.rng.Float64() < w.editFrac {
		err = w.Edit(ctx, page)
		if err == nil {
			w.Edits++
		}
	} else {
		err = w.Read(ctx, page)
		if err == nil {
			w.Reads++
		}
	}
	if err != nil {
		w.Errors++
	}
	return err
}

// Read renders a page: look up the page row by title (secondary
// index), fetch its latest revision (primary key), and list its links
// (secondary index) — the paper's three-query page view.
func (w *Worker) Read(ctx context.Context, page int64) error {
	rows, err := w.ex.Query(ctx, "SELECT id, latest FROM page WHERE title = ?", sql.Text(Title(page)))
	if err != nil {
		return err
	}
	if len(rows) != 1 {
		return fmt.Errorf("wiki: page %d not found", page)
	}
	id, latest := rows[0][0], rows[0][1]
	revs, err := w.ex.Query(ctx, "SELECT content FROM revision WHERE id = ?", latest)
	if err != nil {
		return err
	}
	if len(revs) != 1 {
		return fmt.Errorf("wiki: revision %d of page %d missing", latest.I, page)
	}
	_, err = w.ex.Query(ctx, "SELECT dst_title FROM pagelink WHERE src = ?", id)
	return err
}

// Edit adds a revision to a page and points the page at it.
func (w *Worker) Edit(ctx context.Context, page int64) error {
	rows, err := w.ex.Query(ctx, "SELECT id FROM page WHERE title = ?", sql.Text(Title(page)))
	if err != nil {
		return err
	}
	if len(rows) != 1 {
		return fmt.Errorf("wiki: page %d not found", page)
	}
	id := rows[0][0]
	revID := w.nextRev
	w.nextRev++
	if err := w.ex.Exec(ctx, "INSERT INTO revision VALUES (?, ?, ?, ?)",
		sql.Int(revID), id, sql.Text(articleBody(page, revID)), sql.Text("worker")); err != nil {
		return err
	}
	return w.ex.Exec(ctx, "UPDATE page SET latest = ? WHERE id = ?", sql.Int(revID), id)
}
